// Command relint runs the repo's invariant-checker pack (internal/relint)
// over Go packages. It works two ways:
//
//	relint ./...                      # standalone: re-execs go vet -vettool=<self>
//	go vet -vettool=$(which relint) ./...
//
// In both cases the heavy lifting — package loading, export data, build
// caching — is done by the go command: relint implements the vet tool
// protocol (it is invoked once per package with a JSON config file and
// type-checks against the compiler's export data), so it needs no
// third-party loader and works offline.
//
// Exit status: 0 when clean, 1 on operational errors, 2 when findings
// were reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"relcomp/internal/relint"
)

func main() {
	// Vet tool protocol probes, handled before normal flag parsing: the
	// go command asks for the tool's identity with -V=full (stdout must
	// be "<name> version <ver>", used as a build cache key) and for its
	// flag set with -flags (a JSON array; the pack adds no flags).
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V" || strings.HasPrefix(os.Args[1], "-V="):
			fmt.Println("relint version v0.1.0")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		}
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: relint [packages]\n       go vet -vettool=relint [packages]\n\nAnalyzers:\n")
		for _, a := range relint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// runStandalone re-execs the go command with this binary as the vet tool,
// inheriting go's package pattern handling and build cache.
func runStandalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "relint: cannot locate own binary: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "relint: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for vet tools
// (cmd/go/internal/work.vetConfig). Fields we don't use are kept so the
// struct documents the full protocol.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package as directed by a vet config file.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "relint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "relint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command runs the tool over dependencies just to produce
	// facts ("vetx"); the pack has none, so emit an empty file and stop.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("relint.vetx\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "relint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := loadFromVetConfig(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "relint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := relint.Run(pkg, relint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "relint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// loadFromVetConfig parses and type-checks the package using the export
// data the go command already built for its imports.
func loadFromVetConfig(cfg *vetConfig) (*relint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	tc := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " // indirect"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &relint.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
