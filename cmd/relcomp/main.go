// Command relcomp answers a single s-t reliability query with any of the
// six estimators of the paper, over either a synthetic dataset or a graph
// file in the text format.
//
// Examples:
//
//	relcomp -dataset lastFM -s 10 -t 25 -estimator RSS -k 1000
//	relcomp -graph my.graph -s 0 -t 42 -estimator all -k 500
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"relcomp"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "synthetic dataset name (see -list)")
		graphFile = flag.String("graph", "", "graph file in text format (overrides -dataset)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		src       = flag.Int("s", 0, "source node")
		dst       = flag.Int("t", 1, "target node")
		estimator = flag.String("estimator", "RSS", "MC | BFSSharing | ProbTree | LP+ | RHH | RSS | all")
		k         = flag.Int("k", 1000, "number of samples")
		seed      = flag.Uint64("seed", 42, "random seed")
		exactFlag = flag.Bool("exact", false, "also compute the exact reliability (exponential; small graphs only)")
		list      = flag.Bool("list", false, "list available datasets and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range relcomp.DatasetNames() {
			fmt.Println(n)
		}
		return
	}

	g, err := loadGraph(*graphFile, *dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %s (%d nodes, %d edges; edge prob %s)\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.ProbSummary())

	s, t := relcomp.NodeID(*src), relcomp.NodeID(*dst)
	ests, err := pickEstimators(g, *estimator, *seed, *k)
	if err != nil {
		fatal(err)
	}
	for _, est := range ests {
		start := time.Now()
		r := est.Estimate(s, t, *k)
		fmt.Printf("%-12s R(%d,%d) = %.6f   (K=%d, %v)\n", est.Name(), s, t, r, *k, time.Since(start).Round(time.Microsecond))
	}
	if *exactFlag {
		start := time.Now()
		r, err := relcomp.ExactReliability(g, s, t)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s R(%d,%d) = %.6f   (%v)\n", "exact", s, t, r, time.Since(start).Round(time.Microsecond))
	}
}

func loadGraph(file, dataset string, scale float64, seed uint64) (*relcomp.Graph, error) {
	if file != "" {
		return relcomp.ReadGraphFile(file)
	}
	if dataset == "" {
		return nil, fmt.Errorf("need -dataset or -graph (try -list)")
	}
	return relcomp.Dataset(dataset, scale, seed)
}

func pickEstimators(g *relcomp.Graph, name string, seed uint64, k int) ([]relcomp.Estimator, error) {
	if name == "all" {
		return relcomp.Estimators(g, seed, k), nil
	}
	for _, est := range relcomp.Estimators(g, seed, k) {
		if est.Name() == name {
			return []relcomp.Estimator{est}, nil
		}
	}
	return nil, fmt.Errorf("unknown estimator %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relcomp:", err)
	os.Exit(1)
}
