// Command datagen generates the synthetic stand-in datasets and writes
// them in the text graph format, printing the Table 2 style summary.
//
// Examples:
//
//	datagen -dataset BioMine -scale 1.0 -out biomine.graph
//	datagen -all -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"relcomp"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset to generate (see relcomp -list)")
		all     = flag.Bool("all", false, "generate all six datasets")
		scale   = flag.Float64("scale", 1.0, "scale factor (1.0 = laptop default)")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "output file (default <dataset>.graph)")
		dir     = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	names := relcomp.DatasetNames()
	if !*all {
		if *dataset == "" {
			fmt.Fprintln(os.Stderr, "datagen: need -dataset or -all")
			os.Exit(2)
		}
		names = []string{*dataset}
	}

	fmt.Printf("%-12s %8s %9s  %s\n", "Dataset", "#Nodes", "#Edges", "Edge Prob: Mean±SD, Quartiles")
	for _, name := range names {
		g, err := relcomp.Dataset(name, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" || *all {
			path = filepath.Join(*dir, sanitize(name)+".graph")
		}
		if err := relcomp.WriteGraphFile(path, g); err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %8d %9d  %s  -> %s\n", name, g.NumNodes(), g.NumEdges(), g.ProbSummary(), path)
	}
}

func sanitize(name string) string {
	return strings.NewReplacer("/", "_", " ", "_", ".", "_").Replace(name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
