package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: relcomp/internal/core
cpu: AMD EPYC 7B13
BenchmarkSnapshotLoad-8   	      22	  51234567 ns/op	 823.45 MB/s	  102400 B/op	      12 allocs/op
BenchmarkSnapshotBuildIndexes-8  	       2	 734567890 ns/op
some unrelated line
PASS
ok  	relcomp/internal/core	3.456s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "EPYC") {
		t.Errorf("context fields: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkSnapshotLoad" || b.Procs != 8 || b.Runs != 22 {
		t.Errorf("first benchmark: %+v", b)
	}
	if b.Pkg != "relcomp/internal/core" {
		t.Errorf("pkg = %q", b.Pkg)
	}
	if b.Metrics["ns/op"] != 51234567 || b.Metrics["MB/s"] != 823.45 || b.Metrics["allocs/op"] != 12 {
		t.Errorf("metrics: %v", b.Metrics)
	}
	if doc.Benchmarks[1].Name != "BenchmarkSnapshotBuildIndexes" || doc.Benchmarks[1].Metrics["ns/op"] != 734567890 {
		t.Errorf("second benchmark: %+v", doc.Benchmarks[1])
	}
}

func TestParseIgnoresMalformedLines(t *testing.T) {
	in := `BenchmarkBroken-8 notanumber 12 ns/op
BenchmarkOdd-8 3 12
BenchmarkGood-4 100 250 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkGood" {
		t.Errorf("benchmarks: %+v", doc.Benchmarks)
	}
}
