package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: relcomp/internal/core
cpu: AMD EPYC 7B13
BenchmarkSnapshotLoad-8   	      22	  51234567 ns/op	 823.45 MB/s	  102400 B/op	      12 allocs/op
BenchmarkSnapshotBuildIndexes-8  	       2	 734567890 ns/op
some unrelated line
PASS
ok  	relcomp/internal/core	3.456s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "EPYC") {
		t.Errorf("context fields: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkSnapshotLoad" || b.Procs != 8 || b.Runs != 22 {
		t.Errorf("first benchmark: %+v", b)
	}
	if b.Pkg != "relcomp/internal/core" {
		t.Errorf("pkg = %q", b.Pkg)
	}
	if b.Metrics["ns/op"] != 51234567 || b.Metrics["MB/s"] != 823.45 || b.Metrics["allocs/op"] != 12 {
		t.Errorf("metrics: %v", b.Metrics)
	}
	if doc.Benchmarks[1].Name != "BenchmarkSnapshotBuildIndexes" || doc.Benchmarks[1].Metrics["ns/op"] != 734567890 {
		t.Errorf("second benchmark: %+v", doc.Benchmarks[1])
	}
}

func bench(pkg, name string, procs int, nsop float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: procs, Runs: 1,
		Metrics: map[string]float64{"ns/op": nsop}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		bench("relcomp", "BenchmarkPackMC/DBLP_0.2/h=2/PackMC256", 8, 1000),
		bench("relcomp", "BenchmarkPackMC/DBLP_0.2/h=2/PackMC", 8, 2000),
		bench("relcomp", "BenchmarkGone", 8, 500),
	}}
	cur := &Doc{Benchmarks: []Benchmark{
		bench("relcomp", "BenchmarkPackMC/DBLP_0.2/h=2/PackMC256", 8, 1200), // +20%: regressed
		bench("relcomp", "BenchmarkPackMC/DBLP_0.2/h=2/PackMC", 8, 2100),    // +5%: within threshold
		bench("relcomp", "BenchmarkNew", 8, 100),
	}}
	var buf strings.Builder
	if got := compare(&buf, base, cur, 10); got != 1 {
		t.Fatalf("compare = %d regressions, want 1\n%s", got, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"PackMC256", "+20.00%", "REGRESSED",
		"BenchmarkNew", "(new, no baseline)",
		"BenchmarkGone", "(removed, baseline only)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkPackMC/DBLP_0.2/h=2/PackMC \u0020") &&
		strings.Count(out, "REGRESSED") != 1 {
		t.Errorf("only the +20%% row should be flagged:\n%s", out)
	}
}

func TestCompareMatchesByPkgAndProcs(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		bench("relcomp/internal/core", "BenchmarkX", 8, 1000),
		bench("relcomp", "BenchmarkX", 8, 9999),
	}}
	cur := &Doc{Benchmarks: []Benchmark{
		bench("relcomp/internal/core", "BenchmarkX", 8, 1010),
	}}
	var buf strings.Builder
	if got := compare(&buf, base, cur, 10); got != 0 {
		t.Fatalf("compare = %d regressions, want 0 (must match the same-pkg row)\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "(removed, baseline only)") {
		t.Errorf("other-pkg row should be reported as unmatched:\n%s", buf.String())
	}
}

func TestCompareImprovementNotFlagged(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{bench("p", "BenchmarkFast", 4, 2000)}}
	cur := &Doc{Benchmarks: []Benchmark{bench("p", "BenchmarkFast", 4, 900)}}
	var buf strings.Builder
	if got := compare(&buf, base, cur, 10); got != 0 {
		t.Fatalf("a 2.2x speedup must not count as a regression\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "-55.00%") {
		t.Errorf("delta column: %s", buf.String())
	}
}

func TestParseIgnoresMalformedLines(t *testing.T) {
	in := `BenchmarkBroken-8 notanumber 12 ns/op
BenchmarkOdd-8 3 12
BenchmarkGood-4 100 250 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkGood" {
		t.Errorf("benchmarks: %+v", doc.Benchmarks)
	}
}
