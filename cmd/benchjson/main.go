// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark results as BENCH_*.json
// artifacts and the repo can keep a perf trajectory on disk.
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/core | benchjson -o BENCH_core.json
//
// The parser follows the standard benchmark line format: a name column,
// an iteration count, then (value, unit) pairs. Context lines (goos,
// goarch, pkg, cpu) annotate the benchmarks that follow them.
//
// With -baseline, benchjson additionally compares the fresh results
// against a previously archived document and prints a per-benchmark
// ns/op delta table:
//
//	go test -run '^$' -bench . ./... | benchjson -o new.json -baseline bench/old.json
//
// Benchmarks are matched by (pkg, name); ones that exist on only one
// side are listed but never fail the run. The exit status is nonzero
// iff some matched benchmark slowed down by more than -threshold
// percent, so CI can surface regressions without hard-failing on the
// noise floor (pair it with `|| true` or a non-blocking job to taste).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "archived BENCH_*.json to diff the fresh results against")
	threshold := flag.Float64("threshold", 10, "ns/op regression percentage above which the exit status is nonzero")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *baseline == "" {
		return
	}
	base, err := loadDoc(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	regressed := compare(os.Stdout, base, doc, *threshold)
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%% vs %s\n",
			regressed, *threshold, *baseline)
		os.Exit(1)
	}
}

func loadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// benchKey identifies a benchmark across documents. Procs is included so
// a -cpu sweep does not collapse distinct rows.
func benchKey(b Benchmark) string {
	return b.Pkg + "\x00" + b.Name + "\x00" + strconv.Itoa(b.Procs)
}

// compare prints a per-benchmark ns/op delta table of cur against base and
// returns how many matched benchmarks slowed down by more than threshold
// percent. Benchmarks present on only one side are reported but never
// counted as regressions.
func compare(w io.Writer, base, cur *Doc, threshold float64) int {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[benchKey(b)] = b
	}
	matched := make(map[string]bool)

	type row struct {
		name  string
		old   float64
		cur   float64
		delta float64
	}
	var rows []row
	var added []string
	for _, c := range cur.Benchmarks {
		key := benchKey(c)
		b, ok := baseBy[key]
		if !ok {
			added = append(added, c.Name)
			continue
		}
		matched[key] = true
		oldNs, okOld := b.Metrics["ns/op"]
		newNs, okNew := c.Metrics["ns/op"]
		if !okOld || !okNew || oldNs <= 0 {
			continue
		}
		rows = append(rows, row{
			name:  c.Name,
			old:   oldNs,
			cur:   newNs,
			delta: (newNs - oldNs) / oldNs * 100,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].delta > rows[j].delta })

	regressed := 0
	fmt.Fprintf(w, "benchmark comparison (threshold %.1f%%):\n", threshold)
	for _, r := range rows {
		flag := ""
		if r.delta > threshold {
			flag = "  REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "  %-60s %14.0f -> %14.0f ns/op  %+7.2f%%%s\n",
			r.name, r.old, r.cur, r.delta, flag)
	}
	for _, name := range added {
		fmt.Fprintf(w, "  %-60s (new, no baseline)\n", name)
	}
	for _, b := range base.Benchmarks {
		if !matched[benchKey(b)] {
			fmt.Fprintf(w, "  %-60s (removed, baseline only)\n", b.Name)
		}
	}
	return regressed
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkSnapshotLoad/DBLP_0.2-8   1   52147939 ns/op   1234 B/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, runs, and at least one (value, unit) pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: make(map[string]float64)}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
			b.Procs = procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
