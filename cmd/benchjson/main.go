// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark results as BENCH_*.json
// artifacts and the repo can keep a perf trajectory on disk.
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/core | benchjson -o BENCH_core.json
//
// The parser follows the standard benchmark line format: a name column,
// an iteration count, then (value, unit) pairs. Context lines (goos,
// goarch, pkg, cpu) annotate the benchmarks that follow them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkSnapshotLoad/DBLP_0.2-8   1   52147939 ns/op   1234 B/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Name, runs, and at least one (value, unit) pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: make(map[string]float64)}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
			b.Procs = procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
