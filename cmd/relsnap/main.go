// Command relsnap builds, inspects, and verifies persistent snapshot
// files: the container format of internal/snapshot holding a graph's CSR
// arrays plus the offline indexes of the index-based estimators. A
// snapshot built here starts relserver (-snapshot) without paying index
// construction, and is bit-compatible with the indexes an engine with
// the same seed and maxk would build itself.
//
//	relsnap build -dataset DBLP_0.2 -seed 42 -maxk 2000 -o dblp02.snap
//	relsnap build -graph edges.txt -o graph.snap
//	relsnap inspect dblp02.snap
//	relsnap verify dblp02.snap
//	relserver -snapshot dblp02.snap
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"relcomp"
	"relcomp/internal/uncertain"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "relsnap: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "relsnap: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  relsnap build   [-dataset NAME | -graph FILE] [-scale F] [-seed N] [-maxk N] -o OUT
  relsnap inspect FILE
  relsnap verify  FILE

build writes a snapshot containing the graph, the BFS Sharing index
(width maxk, seeded exactly as an engine with the same seed would), and
the ProbTree decomposition. inspect prints the manifest and section
table. verify checksums every section and reloads all structures.

datasets: `+strings.Join(relcomp.DatasetNames(), ", ")+"\n")
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		dataset   = fs.String("dataset", "lastFM", "synthetic dataset to snapshot")
		graphFile = fs.String("graph", "", "graph file in text format (overrides -dataset)")
		scale     = fs.Float64("scale", 1.0, "dataset scale factor")
		seed      = fs.Uint64("seed", 42, "engine seed the indexes are built under")
		maxK      = fs.Int("maxk", 2000, "maximum samples per query (BFS Sharing index width)")
		out       = fs.String("o", "", "output file (required)")
	)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build: -o is required")
	}

	var (
		g   *relcomp.Graph
		err error
	)
	if *graphFile != "" {
		g, err = relcomp.ReadGraphFile(*graphFile)
	} else {
		g, err = relcomp.Dataset(*dataset, *scale, *seed)
	}
	if err != nil {
		return err
	}
	fmt.Printf("building indexes for %s (%d nodes, %d edges, maxk=%d, seed=%d)\n",
		g.Name(), g.NumNodes(), g.NumEdges(), *maxK, *seed)

	start := time.Now()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	cfg := relcomp.EngineConfig{Seed: *seed, MaxK: *maxK}
	if err := relcomp.WriteEngineSnapshot(f, g, cfg); err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes) in %s\n", *out, st.Size(), time.Since(start).Round(time.Millisecond))
	return nil
}

func openArg(cmd string, args []string) (*relcomp.Snapshot, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%s: want exactly one snapshot file argument", cmd)
	}
	return relcomp.OpenSnapshot(args[0])
}

func runInspect(args []string) error {
	snap, err := openArg("inspect", args)
	if err != nil {
		return err
	}
	defer snap.Close()
	man, err := json.MarshalIndent(snap.Manifest, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("manifest: %s\n", man)
	fmt.Printf("mapped:   %v\nsize:     %d bytes\n", snap.Mapped(), snap.SizeBytes())
	fmt.Printf("epoch:    %d\n", snap.Manifest.Epoch)

	// A sidecar mutation log (<snapshot>.mutlog) carries batches committed
	// after the snapshot was taken; relserver replays it at startup.
	side := relcomp.MutationSidecarPath(args[0])
	switch batches, found, serr := readSidecarFile(side); {
	case serr != nil:
		fmt.Printf("sidecar:  %s (unreadable: %v)\n", side, serr)
	case !found:
		fmt.Printf("sidecar:  none\n")
	case len(batches) == 0:
		fmt.Printf("sidecar:  %s (header only, no batches)\n", side)
	default:
		muts := 0
		for _, b := range batches {
			muts += len(b.Muts)
		}
		fmt.Printf("sidecar:  %s (%d batches, %d mutations, epochs %d..%d)\n",
			side, len(batches), muts, batches[0].Epoch, batches[len(batches)-1].Epoch)
	}

	// Degree shape drives estimator cache behavior (the wide kernels walk
	// the out-CSR), so inspect surfaces it next to the layout provenance.
	maxD, meanD, p99 := uncertain.DegreeStats(snap.Graph)
	fmt.Printf("degree:   out max=%d mean=%.2f p99=%d\n", maxD, meanD, p99)
	switch {
	case snap.Manifest.DegreeRelabeled:
		fmt.Printf("relabel:  degree-sorted (relabel.* sections carry the id translation)\n")
	case uncertain.IsDegreeSorted(snap.Graph):
		fmt.Printf("relabel:  layout is degree-sorted, but the manifest does not mark a relabel\n")
	default:
		fmt.Printf("relabel:  original node order\n")
	}

	fmt.Printf("\n%-22s %10s %12s %12s %10s\n", "SECTION", "OFFSET", "BYTES", "COUNT", "CRC32C")
	for _, s := range snap.Sections() {
		fmt.Printf("%-22s %10d %12d %12d   %08x\n", s.Name, s.Offset, s.Length, s.Count, s.CRC)
	}
	return nil
}

func runVerify(args []string) error {
	// OpenSnapshot already revalidated the structure: header, table, graph
	// CSR invariants, index shapes. Verify adds the full checksum sweep.
	start := time.Now()
	snap, err := openArg("verify", args)
	if err != nil {
		return err
	}
	defer snap.Close()
	if err := snap.Verify(); err != nil {
		return err
	}

	// A sidecar mutation log is part of the served state: verify fails if
	// it is unreadable or its first batch does not chain from the
	// snapshot's manifest epoch (relserver would refuse to replay it).
	sideName := "none"
	side := relcomp.MutationSidecarPath(args[0])
	batches, found, err := readSidecarFile(side)
	if err != nil {
		return fmt.Errorf("sidecar %s: %v", side, err)
	}
	if found {
		sideName = "ok(empty)"
		if len(batches) > 0 {
			if batches[0].Epoch != snap.Manifest.Epoch+1 {
				return fmt.Errorf("sidecar %s starts at epoch %d, which does not chain from snapshot epoch %d",
					side, batches[0].Epoch, snap.Manifest.Epoch)
			}
			sideName = fmt.Sprintf("ok(epochs %d..%d)", batches[0].Epoch, batches[len(batches)-1].Epoch)
		}
	}
	fmt.Printf("ok: %s n=%d m=%d epoch=%d bfs=%v probtree=%v sidecar=%s (%d bytes, verified in %s)\n",
		snap.Manifest.GraphName, snap.Graph.NumNodes(), snap.Graph.NumEdges(), snap.Manifest.Epoch,
		snap.BFS != nil, snap.ProbTree != nil, sideName, snap.SizeBytes(),
		time.Since(start).Round(time.Millisecond))
	return nil
}

// readSidecarFile loads the sidecar mutation log at path. A missing file
// reports found=false: snapshots without mutation history are the common
// case, not an error.
func readSidecarFile(path string) (batches []relcomp.MutationBatch, found bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	batches, err = relcomp.ReadMutationSidecar(f)
	return batches, true, err
}
