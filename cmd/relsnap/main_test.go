package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relcomp"
)

func buildTestSnapshot(t *testing.T) string {
	t.Helper()
	g, err := relcomp.Dataset("lastFM", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, relcomp.EngineConfig{Seed: 1, MaxK: 100}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeSidecar(t *testing.T, snapPath string, batches []relcomp.MutationBatch) {
	t.Helper()
	f, err := os.Create(relcomp.MutationSidecarPath(snapPath))
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteMutationSidecar(f, batches); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifySidecarChain: verify accepts a missing or chaining sidecar
// and rejects one whose first batch does not follow the manifest epoch.
func TestVerifySidecarChain(t *testing.T) {
	path := buildTestSnapshot(t)
	if err := runVerify([]string{path}); err != nil {
		t.Fatalf("verify without sidecar: %v", err)
	}

	chain := []relcomp.MutationBatch{
		{Epoch: 1, Muts: []relcomp.Mutation{{Op: relcomp.OpUpdateEdgeProb, From: 0, To: 1, P: 0.5}}},
		{Epoch: 2, Muts: []relcomp.Mutation{{Op: relcomp.OpRemoveEdge, From: 0, To: 1}}},
	}
	writeSidecar(t, path, chain)
	if err := runVerify([]string{path}); err != nil {
		t.Fatalf("verify with chaining sidecar: %v", err)
	}

	writeSidecar(t, path, []relcomp.MutationBatch{chain[1]}) // starts at 2, manifest is 0
	err := runVerify([]string{path})
	if err == nil || !strings.Contains(err.Error(), "chain") {
		t.Fatalf("non-chaining sidecar: err = %v, want chain error", err)
	}
}

func TestInspectRuns(t *testing.T) {
	path := buildTestSnapshot(t)
	if err := runInspect([]string{path}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	writeSidecar(t, path, []relcomp.MutationBatch{
		{Epoch: 1, Muts: []relcomp.Mutation{{Op: relcomp.OpRemoveEdge, From: 0, To: 1}}},
	})
	if err := runInspect([]string{path}); err != nil {
		t.Fatalf("inspect with sidecar: %v", err)
	}
}
