package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"relcomp"
)

// server exposes reliability queries over a fixed uncertain graph as a
// small JSON HTTP API:
//
//	POST /v1/query                             the unified typed query endpoint:
//	     {"kind":"reliability|distance|topk|single_source|kterminal",
//	      "s":0, "t":5, "k":1000, "d":3, "topk":10, "targets":[3,4],
//	      "estimator":"RSS", "eps":0.01, "deadline_ms":50,
//	      "evidence":{"include":[edgeID,...],"exclude":[...]}}
//	     Per-kind response fields: "reliability" for the scalar kinds,
//	     "reliabilities" (one value per node) for single_source,
//	     "targets" ([{node, reliability}]) for topk.
//	POST /v1/batch                             {"queries":[<query objects as above>]} — kinds may be mixed;
//	     top-level "eps"/"deadline_ms" supply batch-wide defaults
//	GET  /v1/graph                             graph statistics
//	GET  /v1/estimators                        available estimator names + query kinds
//	GET  /v1/reliability?s=0&t=5&k=1000&estimator=RSS
//	     (omit estimator= to let the engine route adaptively; add
//	     eps=0.01 and/or deadline_ms=50 for anytime estimation — k
//	     becomes the sample cap, the default cap rises to the engine
//	     maximum, and the response reports samples_used and stop_reason)
//	GET  /v1/estimate                          alias of /v1/reliability
//	GET  /v1/bounds?s=0&t=5                    analytic bounds + best path
//	GET  /v1/topk?s=0&n=10&k=1000              alias of /v1/query with kind=topk
//	POST /v1/mutate                            commit a batch of edge mutations (see mutate.go)
//	GET  /v1/subscribe?s=0&t=5                 SSE continuous query: re-estimates per relevant mutation batch
//	GET  /v1/engine/stats                      engine counters (cache, routing, latency, anytime savings, kind mix, mutations)
//
// All query traffic — every kind — goes through the concurrent batch
// query engine (relcomp.Engine): per-estimator instance pools replace the
// old per-estimator mutexes, so queries to the same estimator no longer
// serialize behind one in-flight request; batch requests amortize
// per-source work; repeated queries hit the LRU result cache, which keys
// the query kind and evidence set. Each request's context is threaded
// into the engine, so a client disconnect cancels its queued and anytime
// in-flight work.
type server struct {
	graph  *relcomp.Graph
	engine *relcomp.Engine
	// ready gates /readyz: true once serving, flipped false when the
	// drain starts so load balancers stop routing before in-flight
	// requests finish.
	ready atomic.Bool

	// The dynamic-graph surface (mutate.go). sidecar, when non-nil, is
	// the snapshot's on-disk mutation log; mutMu orders commits and their
	// sidecar appends so on-disk epochs stay contiguous.
	mutMu   sync.Mutex
	sidecar *os.File
}

// maxBatchQueries bounds the work and result memory one POST /v1/batch
// request can demand; maxBatchBytes bounds the body size before
// decoding. Global admission control — queue, concurrency, and sample
// budgets across all concurrent requests — lives in the engine (the
// -max-inflight family of flags); these per-request limits only keep a
// single body from being unboundedly large.
const (
	maxBatchQueries = 4096
	maxBatchBytes   = 4 << 20
)

func newServerWith(g *relcomp.Graph, cfg relcomp.EngineConfig) *server {
	eng, err := relcomp.NewEngine(g, cfg)
	if err != nil {
		// The default estimator set is statically known; a failure here is
		// a programming error, not an input error.
		panic(err)
	}
	return newServer(g, eng)
}

func newServer(g *relcomp.Graph, eng *relcomp.Engine) *server {
	return &server{graph: g, engine: eng}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graph", s.handleGraph)
	mux.HandleFunc("/v1/estimators", s.handleEstimators)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/reliability", s.handleReliability)
	mux.HandleFunc("/v1/estimate", s.handleReliability)
	mux.HandleFunc("/v1/bounds", s.handleBounds)
	mux.HandleFunc("/v1/topk", s.handleTopK)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/mutate", s.handleMutate)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/engine/stats", s.handleEngineStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// handleHealthz is the liveness probe: the process is up and the handler
// goroutine runs. It stays 200 through drain — a draining server is alive.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while the server accepts new
// query traffic, 503 before startup completes and from the moment a
// drain begins, so load balancers stop routing ahead of the listener
// closing.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeEngineError maps an engine result error to its HTTP status.
// Overload is backpressure, not a client mistake: a full admission queue
// is 429 (the client should back off and retry) and a queue-wait timeout
// is 503 (the server gave up on this one), both with Retry-After so
// well-behaved clients pace their retries. A contained estimator panic is
// a server fault (500). Everything else — validation, unknown estimator,
// cancellation — keeps the 400 the engine's error text explains.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, relcomp.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, relcomp.ErrQueueTimeout):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.Is(err, relcomp.ErrEstimatorPanic):
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// intParamDefault parses an optional integer query parameter.
func intParamDefault(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// epsParam parses the optional anytime accuracy target: the relative 95%
// CI half-width at which sampling stops. 0 (the default) keeps the exact
// fixed budget.
func epsParam(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("eps")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter \"eps\": %v", err)
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("parameter \"eps\": %v outside [0, 1)", v)
	}
	return v, nil
}

// deadlineParam parses the optional anytime latency target in
// milliseconds; 0 (the default) means unbounded.
func deadlineParam(r *http.Request) (time.Duration, error) {
	ms, err := intParamDefault(r, "deadline_ms", 0)
	if err != nil {
		return 0, err
	}
	if ms < 0 {
		return 0, fmt.Errorf("parameter \"deadline_ms\": %d must not be negative", ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// checkNode validates a node id at int width, before any int32 NodeID
// conversion could silently truncate huge values onto a valid node.
func (s *server) checkNode(name string, v int) error {
	if v < 0 || v >= s.graph.NumNodes() {
		return fmt.Errorf("parameter %q: node %d out of range [0,%d)", name, v, s.graph.NumNodes())
	}
	return nil
}

func (s *server) nodeParam(r *http.Request, name string) (relcomp.NodeID, error) {
	v, err := intParam(r, name)
	if err != nil {
		return 0, err
	}
	if err := s.checkNode(name, v); err != nil {
		return 0, err
	}
	return relcomp.NodeID(v), nil
}

// defaultK is the implicit sample budget when a request omits k, clamped
// to the engine's cap.
func (s *server) defaultK() int {
	if k := s.engine.MaxK(); k < 1000 {
		return k
	}
	return 1000
}

// samplesParam parses the sample budget. Anytime requests (eps or
// deadline_ms set) default the cap to the engine maximum — they pay only
// for the samples their stopping rule needs, so the cap should be
// generous — while fixed requests keep the conservative default.
func (s *server) samplesParam(r *http.Request, anytime bool) (int, error) {
	def := s.defaultK()
	if anytime {
		def = s.engine.MaxK()
	}
	k, err := intParamDefault(r, "k", def)
	if err != nil {
		return 0, err
	}
	if k <= 0 || k > s.engine.MaxK() {
		return 0, fmt.Errorf("parameter \"k\": %d outside (0,%d]", k, s.engine.MaxK())
	}
	return k, nil
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	sum := s.graph.ProbSummary()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":         s.graph.Name(),
		"nodes":        s.graph.NumNodes(),
		"edges":        s.graph.NumEdges(),
		"probMean":     sum.Mean,
		"probStdDev":   sum.StdDev,
		"probQuartile": []float64{sum.Q1, sum.Q2, sum.Q3},
		"maxSamples":   s.engine.MaxK(),
	})
}

func (s *server) handleEstimators(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"estimators": s.engine.Names(),
		"adaptive":   true, // omit estimator= and the engine routes per query
		// Also accepted: the no-sampling analytic-bounds pseudo-estimator.
		"pseudoEstimators": []string{relcomp.EngineBoundsName},
		// The query kinds POST /v1/query and /v1/batch accept.
		"kinds": relcomp.QueryKinds(),
	})
}

// targetJSON is one entry of a top-k ranking on the wire.
type targetJSON struct {
	Node        relcomp.NodeID `json:"node"`
	Reliability float64        `json:"reliability"`
}

// resultJSON is the wire form of one engine response. Exactly one payload
// field is populated per kind: "reliability" for the scalar kinds
// (reliability, distance, kterminal), "reliabilities" for single_source,
// "targets" for topk. samples_used and stop_reason report the anytime
// termination: how many of the k-sample cap were actually drawn and which
// rule ("eps", "deadline", "max_k", "separated", ...) ended sampling;
// stop_reason is empty for fixed-budget queries.
type resultJSON struct {
	Kind          string       `json:"kind"`
	S             int          `json:"s"`
	T             int          `json:"t"`
	K             int          `json:"k"`
	D             int          `json:"d,omitempty"`
	TopK          int          `json:"topk,omitempty"`
	Targets       []targetJSON `json:"targets,omitempty"`
	Estimator     string       `json:"estimator"`
	Reliability   float64      `json:"reliability"`
	Reliabilities []float64    `json:"reliabilities,omitempty"`
	Cached        bool         `json:"cached"`
	Degraded      bool         `json:"degraded,omitempty"`
	// Epoch is the mutation epoch the answer was computed under; cached
	// answers for sources no mutation has touched may report an earlier
	// epoch than the engine's current one (the value is identical).
	Epoch       uint64  `json:"epoch"`
	TimeMs      float64 `json:"timeMs"`
	SamplesUsed int     `json:"samples_used"`
	StopReason  string  `json:"stop_reason,omitempty"`
	Error       string  `json:"error,omitempty"`
}

func toJSON(res relcomp.Response) resultJSON {
	used := res.Used
	if used == "" {
		// Engine-rejected queries never resolve an estimator; echo the
		// requested one so clients can still correlate failures.
		used = res.Request.Estimator
	}
	kind := res.Request.Kind
	if kind == "" {
		kind = relcomp.KindReliability
	}
	out := resultJSON{
		Kind: string(kind),
		S:    int(res.S), T: int(res.T), K: res.K,
		D: res.D, TopK: res.Request.TopK,
		Estimator:     used,
		Reliability:   res.Reliability,
		Reliabilities: res.Reliabilities,
		Cached:        res.Cached,
		Degraded:      res.Degraded,
		Epoch:         res.Epoch,
		TimeMs:        float64(res.Latency.Microseconds()) / 1000,
		SamplesUsed:   res.SamplesUsed,
		StopReason:    res.StopReason,
	}
	for _, tgt := range res.TopTargets {
		out.Targets = append(out.Targets, targetJSON{tgt.Node, tgt.R})
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

// queryJSON is the wire form of one Request, shared by POST /v1/query and
// the items of POST /v1/batch. K, Eps, and DeadlineMs are pointers so an
// omitted field (defaulted) is distinguishable from an explicit zero.
type queryJSON struct {
	Kind       string        `json:"kind"`
	S          int           `json:"s"`
	T          int           `json:"t"`
	K          *int          `json:"k"`
	D          int           `json:"d"`
	TopK       int           `json:"topk"`
	Targets    []int         `json:"targets"`
	Estimator  string        `json:"estimator"`
	Eps        *float64      `json:"eps"`
	DeadlineMs *int          `json:"deadline_ms"`
	Evidence   *evidenceJSON `json:"evidence"`
}

type evidenceJSON struct {
	Include []int `json:"include"`
	Exclude []int `json:"exclude"`
}

// checkEdge validates an edge id at int width, like checkNode for nodes.
func (s *server) checkEdge(name string, v int) error {
	if v < 0 || v >= s.graph.NumEdges() {
		return fmt.Errorf("parameter %q: edge %d out of range [0,%d)", name, v, s.graph.NumEdges())
	}
	return nil
}

// needsTarget reports whether the kind reads the T field.
func needsTarget(kind relcomp.QueryKind) bool {
	return kind == "" || kind == relcomp.KindReliability || kind == relcomp.KindDistance
}

// buildRequest turns one wire query into an engine Request, validating
// everything that must be checked at int width before the int32
// conversions (node ids, target ids, evidence edge ids) and applying the
// batch-wide eps/deadline defaults. Shape errors the engine can diagnose
// itself (unknown kinds, negative d or k, missing targets) are left to
// engine validation, whose errors the handlers surface as 400s.
func (s *server) buildRequest(q queryJSON, defEps *float64, defDeadlineMs *int) (relcomp.Request, error) {
	var req relcomp.Request
	req.Kind = relcomp.QueryKind(q.Kind)
	req.Estimator = q.Estimator
	req.D = q.D
	req.TopK = q.TopK

	if err := s.checkNode("s", q.S); err != nil {
		return req, err
	}
	req.S = relcomp.NodeID(q.S)
	if needsTarget(req.Kind) {
		if err := s.checkNode("t", q.T); err != nil {
			return req, err
		}
		req.T = relcomp.NodeID(q.T)
	}
	for _, tgt := range q.Targets {
		if err := s.checkNode("targets", tgt); err != nil {
			return req, err
		}
		req.Targets = append(req.Targets, relcomp.NodeID(tgt))
	}
	if q.Evidence != nil {
		for _, e := range q.Evidence.Include {
			if err := s.checkEdge("evidence.include", e); err != nil {
				return req, err
			}
			req.Evidence.Include = append(req.Evidence.Include, relcomp.EdgeID(e))
		}
		for _, e := range q.Evidence.Exclude {
			if err := s.checkEdge("evidence.exclude", e); err != nil {
				return req, err
			}
			req.Evidence.Exclude = append(req.Evidence.Exclude, relcomp.EdgeID(e))
		}
	}

	eps := 0.0
	if defEps != nil {
		eps = *defEps
	}
	if q.Eps != nil {
		eps = *q.Eps
	}
	if eps < 0 || eps >= 1 {
		return req, fmt.Errorf("parameter \"eps\": %v outside [0, 1)", eps)
	}
	req.Eps = eps
	deadlineMs := 0
	if defDeadlineMs != nil {
		deadlineMs = *defDeadlineMs
	}
	if q.DeadlineMs != nil {
		deadlineMs = *q.DeadlineMs
	}
	if deadlineMs < 0 {
		return req, fmt.Errorf("parameter \"deadline_ms\": %d must not be negative", deadlineMs)
	}
	req.Deadline = time.Duration(deadlineMs) * time.Millisecond

	// Anytime queries default their cap to the engine maximum, like the
	// GET endpoints; an explicit k always wins (and an explicit k:0 is
	// rejected by the engine, not silently defaulted).
	k := s.defaultK()
	if eps > 0 || deadlineMs > 0 {
		k = s.engine.MaxK()
	}
	if q.K != nil {
		k = *q.K
	}
	req.K = k
	return req, nil
}

// handleQuery is the unified typed query endpoint: every kind, one POST
// body, per-kind response fields.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST required"})
		return
	}
	var q queryJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&q); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("query body exceeds %d bytes", maxBatchBytes)})
			return
		}
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	req, err := s.buildRequest(q, nil, nil)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	res := s.engine.Estimate(r.Context(), req)
	if res.Err != nil {
		writeEngineError(w, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(res))
}

func (s *server) handleReliability(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	name := r.URL.Query().Get("estimator")
	eps, err := epsParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	deadline, err := deadlineParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	var k int
	if name == relcomp.EngineBoundsName {
		// The bounds pseudo-estimator draws no samples; accept any k so
		// the same query succeeds here and on /v1/batch.
		k, err = intParamDefault(r, "k", s.defaultK())
	} else {
		k, err = s.samplesParam(r, eps > 0 || deadline > 0)
	}
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	res := s.engine.Estimate(r.Context(), relcomp.Query{
		S: src, T: dst, K: k,
		Estimator: name,
		Eps:       eps,
		Deadline:  deadline,
	})
	if res.Err != nil {
		writeEngineError(w, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(res))
}

// batchRequest is the POST /v1/batch body: a list of query objects in the
// same wire shape as POST /v1/query — kinds may be mixed freely; the
// engine groups them by (kind, source, parameters) so same-source work
// still amortizes. The top-level Eps and DeadlineMs supply batch-wide
// anytime defaults that per-query fields override.
type batchRequest struct {
	Eps        *float64    `json:"eps"`
	DeadlineMs *int        `json:"deadline_ms"`
	Queries    []queryJSON `json:"queries"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST required"})
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("batch body exceeds %d bytes; split into smaller batches", maxBatchBytes)})
			return
		}
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		badRequest(w, "batch of %d queries exceeds limit %d", len(req.Queries), maxBatchQueries)
		return
	}
	// Range-check node and edge ids at int width before the int32
	// conversions — a converted-then-validated id would silently truncate
	// huge values onto a valid id instead of failing.
	out := make([]resultJSON, len(req.Queries))
	failed := 0
	queries := make([]relcomp.Request, 0, len(req.Queries))
	engineIdx := make([]int, 0, len(req.Queries)) // out position per engine query
	for i, q := range req.Queries {
		built, err := s.buildRequest(q, req.Eps, req.DeadlineMs)
		kind := string(built.Kind)
		if kind == "" {
			kind = string(relcomp.KindReliability)
		}
		out[i] = resultJSON{Kind: kind, S: q.S, T: q.T, K: built.K, D: q.D, TopK: q.TopK, Estimator: q.Estimator}
		if err != nil {
			out[i].Error = err.Error()
			failed++
			continue
		}
		queries = append(queries, built)
		engineIdx = append(engineIdx, i)
	}
	start := time.Now()
	results := s.engine.EstimateBatch(r.Context(), queries)
	elapsed := time.Since(start)

	for j, res := range results {
		out[engineIdx[j]] = toJSON(res)
		if res.Err != nil {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"results": out,
		"queries": len(out),
		"failed":  failed,
		"timeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}

func (s *server) handleEngineStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) handleBounds(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	lo, hi, err := relcomp.ReliabilityBounds(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	path, err := relcomp.MostReliablePath(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "t": dst,
		"lower":           lo,
		"upper":           hi,
		"bestPath":        path.Nodes,
		"bestPathProb":    path.Prob,
		"samplingAdvised": hi-lo > 0.05,
	})
}

// handleTopK is the GET alias of POST /v1/query with kind=topk: the same
// engine Request, the same response shape, query parameters instead of a
// body (s, n, k, and optionally estimator/eps/deadline_ms).
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	n, err := intParamDefault(r, "n", 10)
	if err != nil || n <= 0 {
		badRequest(w, "parameter \"n\" must be a positive integer")
		return
	}
	eps, err := epsParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	deadline, err := deadlineParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := s.samplesParam(r, eps > 0 || deadline > 0)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	res := s.engine.Estimate(r.Context(), relcomp.Request{
		Kind: relcomp.KindTopK, S: src, TopK: n, K: k,
		Estimator: r.URL.Query().Get("estimator"),
		Eps:       eps, Deadline: deadline,
	})
	if res.Err != nil {
		writeEngineError(w, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(res))
}
