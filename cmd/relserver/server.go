package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"relcomp"
)

// server exposes reliability queries over a fixed uncertain graph as a
// small JSON HTTP API:
//
//	GET  /v1/graph                             graph statistics
//	GET  /v1/estimators                        available estimator names
//	GET  /v1/reliability?s=0&t=5&k=1000&estimator=RSS
//	     (omit estimator= to let the engine route adaptively; add
//	     eps=0.01 and/or deadline_ms=50 for anytime estimation — k
//	     becomes the sample cap, the default cap rises to the engine
//	     maximum, and the response reports samples_used and stop_reason)
//	GET  /v1/estimate                          alias of /v1/reliability
//	GET  /v1/bounds?s=0&t=5                    analytic bounds + best path
//	GET  /v1/topk?s=0&n=10&k=1000              top-n reliable targets
//	POST /v1/batch                             {"queries":[{"s":..,"t":..,"k":..,"estimator":"..","eps":..,"deadline_ms":..}]}
//	GET  /v1/engine/stats                      engine counters (cache, routing, latency, anytime savings)
//
// All query traffic goes through the concurrent batch query engine
// (relcomp.Engine): per-estimator instance pools replace the old
// per-estimator mutexes, so queries to the same estimator no longer
// serialize behind one in-flight request; batch requests amortize
// per-source work; repeated queries hit the LRU result cache. Each
// request's context is threaded into the engine, so a client disconnect
// cancels its queued and anytime in-flight work.
type server struct {
	graph  *relcomp.Graph
	engine *relcomp.Engine
}

// maxBatchQueries bounds the work and result memory one POST /v1/batch
// request can demand; maxBatchBytes bounds the body size before
// decoding. Neither is global admission control — concurrent requests
// each get their own engine workers; put rate limiting in front of the
// server for that.
const (
	maxBatchQueries = 4096
	maxBatchBytes   = 4 << 20
)

func newServerWith(g *relcomp.Graph, cfg relcomp.EngineConfig) *server {
	eng, err := relcomp.NewEngine(g, cfg)
	if err != nil {
		// The default estimator set is statically known; a failure here is
		// a programming error, not an input error.
		panic(err)
	}
	return &server{graph: g, engine: eng}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graph", s.handleGraph)
	mux.HandleFunc("/v1/estimators", s.handleEstimators)
	mux.HandleFunc("/v1/reliability", s.handleReliability)
	mux.HandleFunc("/v1/estimate", s.handleReliability)
	mux.HandleFunc("/v1/bounds", s.handleBounds)
	mux.HandleFunc("/v1/topk", s.handleTopK)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/engine/stats", s.handleEngineStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// intParamDefault parses an optional integer query parameter.
func intParamDefault(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// epsParam parses the optional anytime accuracy target: the relative 95%
// CI half-width at which sampling stops. 0 (the default) keeps the exact
// fixed budget.
func epsParam(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("eps")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter \"eps\": %v", err)
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("parameter \"eps\": %v outside [0, 1)", v)
	}
	return v, nil
}

// deadlineParam parses the optional anytime latency target in
// milliseconds; 0 (the default) means unbounded.
func deadlineParam(r *http.Request) (time.Duration, error) {
	ms, err := intParamDefault(r, "deadline_ms", 0)
	if err != nil {
		return 0, err
	}
	if ms < 0 {
		return 0, fmt.Errorf("parameter \"deadline_ms\": %d must not be negative", ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// checkNode validates a node id at int width, before any int32 NodeID
// conversion could silently truncate huge values onto a valid node.
func (s *server) checkNode(name string, v int) error {
	if v < 0 || v >= s.graph.NumNodes() {
		return fmt.Errorf("parameter %q: node %d out of range [0,%d)", name, v, s.graph.NumNodes())
	}
	return nil
}

func (s *server) nodeParam(r *http.Request, name string) (relcomp.NodeID, error) {
	v, err := intParam(r, name)
	if err != nil {
		return 0, err
	}
	if err := s.checkNode(name, v); err != nil {
		return 0, err
	}
	return relcomp.NodeID(v), nil
}

// defaultK is the implicit sample budget when a request omits k, clamped
// to the engine's cap.
func (s *server) defaultK() int {
	if k := s.engine.MaxK(); k < 1000 {
		return k
	}
	return 1000
}

// samplesParam parses the sample budget. Anytime requests (eps or
// deadline_ms set) default the cap to the engine maximum — they pay only
// for the samples their stopping rule needs, so the cap should be
// generous — while fixed requests keep the conservative default.
func (s *server) samplesParam(r *http.Request, anytime bool) (int, error) {
	def := s.defaultK()
	if anytime {
		def = s.engine.MaxK()
	}
	k, err := intParamDefault(r, "k", def)
	if err != nil {
		return 0, err
	}
	if k <= 0 || k > s.engine.MaxK() {
		return 0, fmt.Errorf("parameter \"k\": %d outside (0,%d]", k, s.engine.MaxK())
	}
	return k, nil
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	sum := s.graph.ProbSummary()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":         s.graph.Name(),
		"nodes":        s.graph.NumNodes(),
		"edges":        s.graph.NumEdges(),
		"probMean":     sum.Mean,
		"probStdDev":   sum.StdDev,
		"probQuartile": []float64{sum.Q1, sum.Q2, sum.Q3},
		"maxSamples":   s.engine.MaxK(),
	})
}

func (s *server) handleEstimators(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"estimators": s.engine.Names(),
		"adaptive":   true, // omit estimator= and the engine routes per query
		// Also accepted: the no-sampling analytic-bounds pseudo-estimator.
		"pseudoEstimators": []string{relcomp.EngineBoundsName},
	})
}

// resultJSON is the wire form of one engine result. samples_used and
// stop_reason report the anytime termination: how many of the k-sample
// cap were actually drawn and which rule ("eps", "deadline", "max_k", ...)
// ended sampling; stop_reason is empty for fixed-budget queries.
type resultJSON struct {
	S           int     `json:"s"`
	T           int     `json:"t"`
	K           int     `json:"k"`
	Estimator   string  `json:"estimator"`
	Reliability float64 `json:"reliability"`
	Cached      bool    `json:"cached"`
	TimeMs      float64 `json:"timeMs"`
	SamplesUsed int     `json:"samples_used"`
	StopReason  string  `json:"stop_reason,omitempty"`
	Error       string  `json:"error,omitempty"`
}

func toJSON(res relcomp.Result) resultJSON {
	used := res.Used
	if used == "" {
		// Engine-rejected queries never resolve an estimator; echo the
		// requested one so clients can still correlate failures.
		used = res.Query.Estimator
	}
	out := resultJSON{
		S: int(res.S), T: int(res.T), K: res.K,
		Estimator:   used,
		Reliability: res.Reliability,
		Cached:      res.Cached,
		TimeMs:      float64(res.Latency.Microseconds()) / 1000,
		SamplesUsed: res.SamplesUsed,
		StopReason:  res.StopReason,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

func (s *server) handleReliability(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	name := r.URL.Query().Get("estimator")
	eps, err := epsParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	deadline, err := deadlineParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	var k int
	if name == relcomp.EngineBoundsName {
		// The bounds pseudo-estimator draws no samples; accept any k so
		// the same query succeeds here and on /v1/batch.
		k, err = intParamDefault(r, "k", s.defaultK())
	} else {
		k, err = s.samplesParam(r, eps > 0 || deadline > 0)
	}
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	res := s.engine.Estimate(r.Context(), relcomp.Query{
		S: src, T: dst, K: k,
		Estimator: name,
		Eps:       eps,
		Deadline:  deadline,
	})
	if res.Err != nil {
		badRequest(w, "%v", res.Err)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(res))
}

// batchRequest is the POST /v1/batch body. K is a pointer so an omitted
// budget (defaulted) is distinguishable from an explicit k:0 (rejected,
// as on the single-query endpoint). Eps and DeadlineMs make a query
// anytime, exactly as on /v1/reliability; the top-level pair supplies
// batch-wide defaults that per-query fields override.
type batchRequest struct {
	Eps        *float64 `json:"eps"`
	DeadlineMs *int     `json:"deadline_ms"`
	Queries    []struct {
		S          int      `json:"s"`
		T          int      `json:"t"`
		K          *int     `json:"k"`
		Estimator  string   `json:"estimator"`
		Eps        *float64 `json:"eps"`
		DeadlineMs *int     `json:"deadline_ms"`
	} `json:"queries"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST required"})
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("batch body exceeds %d bytes; split into smaller batches", maxBatchBytes)})
			return
		}
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		badRequest(w, "batch of %d queries exceeds limit %d", len(req.Queries), maxBatchQueries)
		return
	}
	// Range-check node ids at int width before the int32 NodeID
	// conversion — a converted-then-validated id would silently truncate
	// huge values onto a valid node instead of failing.
	out := make([]resultJSON, len(req.Queries))
	failed := 0
	queries := make([]relcomp.Query, 0, len(req.Queries))
	engineIdx := make([]int, 0, len(req.Queries)) // out position per engine query
	for i, q := range req.Queries {
		eps := 0.0
		if req.Eps != nil {
			eps = *req.Eps
		}
		if q.Eps != nil {
			eps = *q.Eps
		}
		deadlineMs := 0
		if req.DeadlineMs != nil {
			deadlineMs = *req.DeadlineMs
		}
		if q.DeadlineMs != nil {
			deadlineMs = *q.DeadlineMs
		}
		// Anytime queries default their cap to the engine maximum, like
		// the single-query endpoint.
		k := s.defaultK()
		if eps > 0 || deadlineMs > 0 {
			k = s.engine.MaxK()
		}
		if q.K != nil {
			k = *q.K
		}
		out[i] = resultJSON{S: q.S, T: q.T, K: k, Estimator: q.Estimator}
		err := s.checkNode("s", q.S)
		if err == nil {
			err = s.checkNode("t", q.T)
		}
		if err == nil && deadlineMs < 0 {
			err = fmt.Errorf("parameter \"deadline_ms\": %d must not be negative", deadlineMs)
		}
		if err != nil {
			out[i].Error = err.Error()
			failed++
			continue
		}
		queries = append(queries, relcomp.Query{
			S: relcomp.NodeID(q.S), T: relcomp.NodeID(q.T),
			K: k, Estimator: q.Estimator,
			Eps:      eps,
			Deadline: time.Duration(deadlineMs) * time.Millisecond,
		})
		engineIdx = append(engineIdx, i)
	}
	start := time.Now()
	results := s.engine.EstimateBatch(r.Context(), queries)
	elapsed := time.Since(start)

	for j, res := range results {
		out[engineIdx[j]] = toJSON(res)
		if res.Err != nil {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"results": out,
		"queries": len(out),
		"failed":  failed,
		"timeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}

func (s *server) handleEngineStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) handleBounds(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	lo, hi, err := relcomp.ReliabilityBounds(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	path, err := relcomp.MostReliablePath(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "t": dst,
		"lower":           lo,
		"upper":           hi,
		"bestPath":        path.Nodes,
		"bestPathProb":    path.Prob,
		"samplingAdvised": hi-lo > 0.05,
	})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	n, err := intParamDefault(r, "n", 10)
	if err != nil || n <= 0 {
		badRequest(w, "parameter \"n\" must be a positive integer")
		return
	}
	k, err := s.samplesParam(r, false)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	var top []relcomp.Reliability
	start := time.Now()
	err = relcomp.BorrowEstimator(s.engine, "BFSSharing", func(est relcomp.Estimator) error {
		var err error
		top, err = relcomp.TopKReliableTargets(est, s.graph, src, n, k)
		return err
	})
	elapsed := time.Since(start)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	type entry struct {
		Node        relcomp.NodeID `json:"node"`
		Reliability float64        `json:"reliability"`
	}
	out := make([]entry, len(top))
	for i, t := range top {
		out[i] = entry{t.Node, t.R}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "k": k,
		"targets": out,
		"timeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}
