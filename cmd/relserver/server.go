package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"relcomp"
)

// server exposes reliability queries over a fixed uncertain graph as a
// small JSON HTTP API:
//
//	GET /v1/graph                             graph statistics
//	GET /v1/estimators                        available estimator names
//	GET /v1/reliability?s=0&t=5&k=1000&estimator=RSS
//	GET /v1/bounds?s=0&t=5                    analytic bounds + best path
//	GET /v1/topk?s=0&n=10&k=1000              top-n reliable targets
//
// Estimators keep per-instance scratch state and are not safe for
// concurrent use, so the server serializes queries per estimator with a
// mutex; concurrent requests across different estimators proceed in
// parallel.
type server struct {
	graph *relcomp.Graph
	maxK  int
	seed  uint64

	mu   sync.Mutex
	ests map[string]*guardedEstimator
}

type guardedEstimator struct {
	mu  sync.Mutex
	est relcomp.Estimator
}

func newServer(g *relcomp.Graph, seed uint64, maxK int) *server {
	s := &server{
		graph: g,
		maxK:  maxK,
		seed:  seed,
		ests:  make(map[string]*guardedEstimator),
	}
	for _, est := range relcomp.Estimators(g, seed, maxK) {
		s.ests[est.Name()] = &guardedEstimator{est: est}
	}
	s.ests["ParallelMC"] = &guardedEstimator{est: relcomp.NewParallelMC(g, seed, 0)}
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graph", s.handleGraph)
	mux.HandleFunc("/v1/estimators", s.handleEstimators)
	mux.HandleFunc("/v1/reliability", s.handleReliability)
	mux.HandleFunc("/v1/bounds", s.handleBounds)
	mux.HandleFunc("/v1/topk", s.handleTopK)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// intParamDefault parses an optional integer query parameter.
func intParamDefault(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func (s *server) nodeParam(r *http.Request, name string) (relcomp.NodeID, error) {
	v, err := intParam(r, name)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= s.graph.NumNodes() {
		return 0, fmt.Errorf("parameter %q: node %d out of range [0,%d)", name, v, s.graph.NumNodes())
	}
	return relcomp.NodeID(v), nil
}

func (s *server) samplesParam(r *http.Request) (int, error) {
	k, err := intParamDefault(r, "k", 1000)
	if err != nil {
		return 0, err
	}
	if k <= 0 || k > s.maxK {
		return 0, fmt.Errorf("parameter \"k\": %d outside (0,%d]", k, s.maxK)
	}
	return k, nil
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	sum := s.graph.ProbSummary()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":         s.graph.Name(),
		"nodes":        s.graph.NumNodes(),
		"edges":        s.graph.NumEdges(),
		"probMean":     sum.Mean,
		"probStdDev":   sum.StdDev,
		"probQuartile": []float64{sum.Q1, sum.Q2, sum.Q3},
		"maxSamples":   s.maxK,
	})
}

func (s *server) handleEstimators(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.ests))
	for n := range s.ests {
		names = append(names, n)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"estimators": names})
}

func (s *server) handleReliability(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := s.samplesParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	name := r.URL.Query().Get("estimator")
	if name == "" {
		name = "RSS"
	}
	s.mu.Lock()
	ge := s.ests[name]
	s.mu.Unlock()
	if ge == nil {
		badRequest(w, "unknown estimator %q", name)
		return
	}

	ge.mu.Lock()
	start := time.Now()
	est := ge.est.Estimate(src, dst, k)
	elapsed := time.Since(start)
	ge.mu.Unlock()

	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "t": dst, "k": k,
		"estimator":   name,
		"reliability": est,
		"timeMs":      float64(elapsed.Microseconds()) / 1000,
	})
}

func (s *server) handleBounds(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	lo, hi, err := relcomp.ReliabilityBounds(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	path, err := relcomp.MostReliablePath(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "t": dst,
		"lower":           lo,
		"upper":           hi,
		"bestPath":        path.Nodes,
		"bestPathProb":    path.Prob,
		"samplingAdvised": hi-lo > 0.05,
	})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	n, err := intParamDefault(r, "n", 10)
	if err != nil || n <= 0 {
		badRequest(w, "parameter \"n\" must be a positive integer")
		return
	}
	k, err := s.samplesParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	s.mu.Lock()
	ge := s.ests["BFSSharing"]
	s.mu.Unlock()

	ge.mu.Lock()
	start := time.Now()
	top, err := relcomp.TopKReliableTargets(ge.est, s.graph, src, n, k)
	elapsed := time.Since(start)
	ge.mu.Unlock()
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	type entry struct {
		Node        relcomp.NodeID `json:"node"`
		Reliability float64        `json:"reliability"`
	}
	out := make([]entry, len(top))
	for i, t := range top {
		out[i] = entry{t.Node, t.R}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "k": k,
		"targets": out,
		"timeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}
