package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"relcomp"
)

// server exposes reliability queries over a fixed uncertain graph as a
// small JSON HTTP API:
//
//	GET  /v1/graph                             graph statistics
//	GET  /v1/estimators                        available estimator names
//	GET  /v1/reliability?s=0&t=5&k=1000&estimator=RSS
//	     (omit estimator= to let the engine route adaptively)
//	GET  /v1/bounds?s=0&t=5                    analytic bounds + best path
//	GET  /v1/topk?s=0&n=10&k=1000              top-n reliable targets
//	POST /v1/batch                             {"queries":[{"s":..,"t":..,"k":..,"estimator":".."}]}
//	GET  /v1/engine/stats                      engine counters (cache, routing, latency)
//
// All query traffic goes through the concurrent batch query engine
// (relcomp.Engine): per-estimator instance pools replace the old
// per-estimator mutexes, so queries to the same estimator no longer
// serialize behind one in-flight request; batch requests amortize
// per-source work; repeated queries hit the LRU result cache.
type server struct {
	graph  *relcomp.Graph
	engine *relcomp.Engine
}

// maxBatchQueries bounds the work and result memory one POST /v1/batch
// request can demand; maxBatchBytes bounds the body size before
// decoding. Neither is global admission control — concurrent requests
// each get their own engine workers; put rate limiting in front of the
// server for that.
const (
	maxBatchQueries = 4096
	maxBatchBytes   = 4 << 20
)

func newServerWith(g *relcomp.Graph, cfg relcomp.EngineConfig) *server {
	eng, err := relcomp.NewEngine(g, cfg)
	if err != nil {
		// The default estimator set is statically known; a failure here is
		// a programming error, not an input error.
		panic(err)
	}
	return &server{graph: g, engine: eng}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graph", s.handleGraph)
	mux.HandleFunc("/v1/estimators", s.handleEstimators)
	mux.HandleFunc("/v1/reliability", s.handleReliability)
	mux.HandleFunc("/v1/bounds", s.handleBounds)
	mux.HandleFunc("/v1/topk", s.handleTopK)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/engine/stats", s.handleEngineStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func badRequest(w http.ResponseWriter, format string, args ...interface{}) {
	writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// intParamDefault parses an optional integer query parameter.
func intParamDefault(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// checkNode validates a node id at int width, before any int32 NodeID
// conversion could silently truncate huge values onto a valid node.
func (s *server) checkNode(name string, v int) error {
	if v < 0 || v >= s.graph.NumNodes() {
		return fmt.Errorf("parameter %q: node %d out of range [0,%d)", name, v, s.graph.NumNodes())
	}
	return nil
}

func (s *server) nodeParam(r *http.Request, name string) (relcomp.NodeID, error) {
	v, err := intParam(r, name)
	if err != nil {
		return 0, err
	}
	if err := s.checkNode(name, v); err != nil {
		return 0, err
	}
	return relcomp.NodeID(v), nil
}

// defaultK is the implicit sample budget when a request omits k, clamped
// to the engine's cap.
func (s *server) defaultK() int {
	if k := s.engine.MaxK(); k < 1000 {
		return k
	}
	return 1000
}

func (s *server) samplesParam(r *http.Request) (int, error) {
	k, err := intParamDefault(r, "k", s.defaultK())
	if err != nil {
		return 0, err
	}
	if k <= 0 || k > s.engine.MaxK() {
		return 0, fmt.Errorf("parameter \"k\": %d outside (0,%d]", k, s.engine.MaxK())
	}
	return k, nil
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	sum := s.graph.ProbSummary()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":         s.graph.Name(),
		"nodes":        s.graph.NumNodes(),
		"edges":        s.graph.NumEdges(),
		"probMean":     sum.Mean,
		"probStdDev":   sum.StdDev,
		"probQuartile": []float64{sum.Q1, sum.Q2, sum.Q3},
		"maxSamples":   s.engine.MaxK(),
	})
}

func (s *server) handleEstimators(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"estimators": s.engine.Names(),
		"adaptive":   true, // omit estimator= and the engine routes per query
		// Also accepted: the no-sampling analytic-bounds pseudo-estimator.
		"pseudoEstimators": []string{relcomp.EngineBoundsName},
	})
}

// resultJSON is the wire form of one engine result.
type resultJSON struct {
	S           int     `json:"s"`
	T           int     `json:"t"`
	K           int     `json:"k"`
	Estimator   string  `json:"estimator"`
	Reliability float64 `json:"reliability"`
	Cached      bool    `json:"cached"`
	TimeMs      float64 `json:"timeMs"`
	Error       string  `json:"error,omitempty"`
}

func toJSON(res relcomp.Result) resultJSON {
	used := res.Used
	if used == "" {
		// Engine-rejected queries never resolve an estimator; echo the
		// requested one so clients can still correlate failures.
		used = res.Query.Estimator
	}
	out := resultJSON{
		S: int(res.S), T: int(res.T), K: res.K,
		Estimator:   used,
		Reliability: res.Reliability,
		Cached:      res.Cached,
		TimeMs:      float64(res.Latency.Microseconds()) / 1000,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

func (s *server) handleReliability(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	name := r.URL.Query().Get("estimator")
	var k int
	if name == relcomp.EngineBoundsName {
		// The bounds pseudo-estimator draws no samples; accept any k so
		// the same query succeeds here and on /v1/batch.
		k, err = intParamDefault(r, "k", s.defaultK())
	} else {
		k, err = s.samplesParam(r)
	}
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	res := s.engine.Estimate(relcomp.Query{
		S: src, T: dst, K: k,
		Estimator: name,
	})
	if res.Err != nil {
		badRequest(w, "%v", res.Err)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(res))
}

// batchRequest is the POST /v1/batch body. K is a pointer so an omitted
// budget (defaulted) is distinguishable from an explicit k:0 (rejected,
// as on the single-query endpoint).
type batchRequest struct {
	Queries []struct {
		S         int    `json:"s"`
		T         int    `json:"t"`
		K         *int   `json:"k"`
		Estimator string `json:"estimator"`
	} `json:"queries"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST required"})
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("batch body exceeds %d bytes; split into smaller batches", maxBatchBytes)})
			return
		}
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		badRequest(w, "batch of %d queries exceeds limit %d", len(req.Queries), maxBatchQueries)
		return
	}
	// Range-check node ids at int width before the int32 NodeID
	// conversion — a converted-then-validated id would silently truncate
	// huge values onto a valid node instead of failing.
	out := make([]resultJSON, len(req.Queries))
	failed := 0
	queries := make([]relcomp.Query, 0, len(req.Queries))
	engineIdx := make([]int, 0, len(req.Queries)) // out position per engine query
	for i, q := range req.Queries {
		k := s.defaultK()
		if q.K != nil {
			k = *q.K
		}
		out[i] = resultJSON{S: q.S, T: q.T, K: k, Estimator: q.Estimator}
		err := s.checkNode("s", q.S)
		if err == nil {
			err = s.checkNode("t", q.T)
		}
		if err != nil {
			out[i].Error = err.Error()
			failed++
			continue
		}
		queries = append(queries, relcomp.Query{
			S: relcomp.NodeID(q.S), T: relcomp.NodeID(q.T),
			K: k, Estimator: q.Estimator,
		})
		engineIdx = append(engineIdx, i)
	}
	start := time.Now()
	results := s.engine.EstimateBatch(queries)
	elapsed := time.Since(start)

	for j, res := range results {
		out[engineIdx[j]] = toJSON(res)
		if res.Err != nil {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"results": out,
		"queries": len(out),
		"failed":  failed,
		"timeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}

func (s *server) handleEngineStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) handleBounds(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	lo, hi, err := relcomp.ReliabilityBounds(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	path, err := relcomp.MostReliablePath(s.graph, src, dst)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "t": dst,
		"lower":           lo,
		"upper":           hi,
		"bestPath":        path.Nodes,
		"bestPathProb":    path.Prob,
		"samplingAdvised": hi-lo > 0.05,
	})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	n, err := intParamDefault(r, "n", 10)
	if err != nil || n <= 0 {
		badRequest(w, "parameter \"n\" must be a positive integer")
		return
	}
	k, err := s.samplesParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	var top []relcomp.Reliability
	start := time.Now()
	err = relcomp.BorrowEstimator(s.engine, "BFSSharing", func(est relcomp.Estimator) error {
		var err error
		top, err = relcomp.TopKReliableTargets(est, s.graph, src, n, k)
		return err
	})
	elapsed := time.Since(start)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	type entry struct {
		Node        relcomp.NodeID `json:"node"`
		Reliability float64        `json:"reliability"`
	}
	out := make([]entry, len(top))
	for i, t := range top {
		out[i] = entry{t.Node, t.R}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"s": src, "k": k,
		"targets": out,
		"timeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}
