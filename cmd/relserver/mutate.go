package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"relcomp"
)

// The dynamic-graph endpoints:
//
//	POST /v1/mutate      {"mutations":[{"op":"update|add|remove","from":0,"to":1,"p":0.5}]}
//	     commits the batch atomically and returns {"epoch":N,"applied":M}.
//	     Admission-controlled like query traffic: an overloaded engine
//	     sheds the batch with 429/503 + Retry-After rather than queueing
//	     unbounded mutation work.
//	GET  /v1/subscribe?s=0&t=5&k=1000[&estimator=MC&eps=0.01&heartbeat_ms=15000]
//	     a Server-Sent Events stream: one "estimate" event immediately,
//	     then one per committed batch that could change the answer.
//	     Heartbeat comments keep proxies from idling the stream out; a
//	     slow consumer loses oldest-first (the engine's drop-oldest
//	     coalescing), never stalls the server.
//
// When the server was started from -snapshot, committed batches are also
// appended to the snapshot's sidecar mutation log (<snapshot>.mutlog), and
// startup replays an existing sidecar to catch the engine up from the
// manifest epoch to the live epoch.

// defaultHeartbeat paces SSE keep-alive comments; tests shrink it via
// heartbeat_ms.
const defaultHeartbeat = 15 * time.Second

// mutationJSON is one wire mutation. P is a pointer so "p omitted" on an
// update/add is a client error, not a silent zero.
type mutationJSON struct {
	Op   string   `json:"op"`
	From int      `json:"from"`
	To   int      `json:"to"`
	P    *float64 `json:"p"`
}

type mutateRequest struct {
	Mutations []mutationJSON `json:"mutations"`
}

func (s *server) buildMutations(in []mutationJSON) ([]relcomp.Mutation, error) {
	muts := make([]relcomp.Mutation, len(in))
	for i, m := range in {
		op, err := relcomp.ParseMutationOp(m.Op)
		if err != nil {
			return nil, fmt.Errorf("mutation %d: %v", i, err)
		}
		if err := s.checkNode("from", m.From); err != nil {
			return nil, fmt.Errorf("mutation %d: %v", i, err)
		}
		if err := s.checkNode("to", m.To); err != nil {
			return nil, fmt.Errorf("mutation %d: %v", i, err)
		}
		muts[i] = relcomp.Mutation{Op: op, From: relcomp.NodeID(m.From), To: relcomp.NodeID(m.To)}
		switch op {
		case relcomp.OpUpdateEdgeProb, relcomp.OpAddEdge:
			if m.P == nil {
				return nil, fmt.Errorf("mutation %d: %q requires \"p\"", i, m.Op)
			}
			muts[i].P = *m.P
		default:
			if m.P != nil {
				return nil, fmt.Errorf("mutation %d: \"remove\" takes no \"p\"", i)
			}
		}
	}
	return muts, nil
}

func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, apiError{Error: "POST required"})
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("mutation body exceeds %d bytes", maxBatchBytes)})
			return
		}
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	if len(req.Mutations) == 0 {
		badRequest(w, "empty mutation batch")
		return
	}
	if len(req.Mutations) > maxBatchQueries {
		badRequest(w, "batch of %d mutations exceeds limit %d", len(req.Mutations), maxBatchQueries)
		return
	}
	muts, err := s.buildMutations(req.Mutations)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	// One lock around commit + sidecar append keeps on-disk batches in
	// epoch order even when mutation requests race.
	s.mutMu.Lock()
	epoch, err := s.engine.Apply(r.Context(), muts)
	if err != nil {
		s.mutMu.Unlock()
		writeEngineError(w, err)
		return
	}
	var sideErr error
	if s.sidecar != nil {
		sideErr = relcomp.AppendMutationSidecar(s.sidecar, relcomp.MutationBatch{Epoch: epoch, Muts: muts})
		if sideErr == nil {
			sideErr = s.sidecar.Sync()
		}
	}
	s.mutMu.Unlock()
	if sideErr != nil {
		// The in-memory commit stands (subscribers were already notified);
		// what failed is durability. Surface it loudly — a restart from
		// the snapshot would lose this batch.
		log.Printf("relserver: ERROR: sidecar append for epoch %d failed: %v", epoch, sideErr)
		writeJSON(w, http.StatusInternalServerError, apiError{
			Error: fmt.Sprintf("batch committed at epoch %d but sidecar persistence failed: %v", epoch, sideErr)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":   epoch,
		"applied": len(muts),
	})
}

// handleSubscribe is the SSE continuous-query endpoint.
func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	src, err := s.nodeParam(r, "s")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	dst, err := s.nodeParam(r, "t")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	eps, err := epsParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	k, err := s.samplesParam(r, eps > 0)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	heartbeatMs, err := intParamDefault(r, "heartbeat_ms", int(defaultHeartbeat/time.Millisecond))
	if err != nil || heartbeatMs <= 0 {
		badRequest(w, "parameter \"heartbeat_ms\" must be a positive integer")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported by this connection"})
		return
	}

	sub, err := s.engine.Subscribe(r.Context(), relcomp.Query{
		S: src, T: dst, K: k,
		Estimator: r.URL.Query().Get("estimator"),
		Eps:       eps,
	})
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // tell reverse proxies not to buffer
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(time.Duration(heartbeatMs) * time.Millisecond)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case res, open := <-sub.C:
			if !open {
				return
			}
			payload, err := json.Marshal(toJSON(res))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: estimate\ndata: %s\n\n", payload); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
