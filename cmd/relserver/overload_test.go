package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"relcomp"
	"relcomp/internal/faultinject"
)

// Tests of the overload and failure surface: health probes, oversized
// bodies, and the 429/503 backpressure statuses the admission controller
// produces under injected load.

func TestHealthEndpoints(t *testing.T) {
	s := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	// readyz starts false (main flips it true once serving) and follows
	// the ready bit — it must go 503 the moment a drain begins.
	if code, _ := get(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready: %d, want 503", code)
	}
	s.ready.Store(true)
	if code, body := get(t, h, "/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz while serving: %d %v", code, body)
	}
	s.ready.Store(false) // drain start
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz during drain: %d %v", code, body)
	}
	// Liveness is unaffected by drain.
	if code, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d", code)
	}
}

// TestQueryBodyTooLarge: an oversized /v1/query body is 413, like batch.
func TestQueryBodyTooLarge(t *testing.T) {
	h := testServer(t).handler()
	body := `{"s":0,"t":5,"k":100,"pad":"` + strings.Repeat("x", maxBatchBytes) + `"}`
	code, out := post(t, h, "/v1/query", body)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query body: %d %v, want 413", code, out)
	}
}

// overloadServer builds a server whose engine admits one request at a
// time, with every estimator slowed by injection so a single in-flight
// request reliably occupies the slot while the test probes a second one.
func overloadServer(t *testing.T, admission relcomp.AdmissionConfig) *server {
	t.Helper()
	g, err := relcomp.Dataset("lastFM", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	return newServerWith(g, relcomp.EngineConfig{
		Seed: 42, MaxK: 500, Workers: 2, CacheSize: 0, Admission: admission,
	})
}

// occupy sends one slow request in the background and blocks until the
// admission controller shows it inflight; the returned wait function
// joins it.
func occupy(t *testing.T, s *server) (wait func()) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/v1/reliability?s=0&t=5&k=100&estimator=MC", nil)
		s.handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	for i := 0; s.engine.Stats().Admission.Inflight == 0; i++ {
		if i > 5000 {
			t.Fatal("occupier never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	return wg.Wait
}

// TestOverloadShed429: with no queue, a request past the inflight limit
// is shed with 429 and a Retry-After hint.
func TestOverloadShed429(t *testing.T) {
	inj := faultinject.NewSeeded(1).
		WithRate(faultinject.SlowReplica, 1).WithDelay(300 * time.Millisecond)
	defer faultinject.Set(inj)()

	s := overloadServer(t, relcomp.AdmissionConfig{MaxInflight: 1, MaxQueue: 0})
	wait := occupy(t, s)
	defer wait()

	req := httptest.NewRequest(http.MethodGet, "/v1/reliability?s=1&t=6&k=100&estimator=MC", nil)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request: %d %s, want 429", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := s.engine.Stats().Admission; st.Shed == 0 {
		t.Fatalf("shed not counted: %+v", st)
	}
}

// TestOverloadQueueTimeout503: a queued request whose wait expires gets
// 503 with Retry-After.
func TestOverloadQueueTimeout503(t *testing.T) {
	inj := faultinject.NewSeeded(1).
		WithRate(faultinject.SlowReplica, 1).WithDelay(500 * time.Millisecond)
	defer faultinject.Set(inj)()

	s := overloadServer(t, relcomp.AdmissionConfig{
		MaxInflight: 1, MaxQueue: 8, QueueWait: 20 * time.Millisecond,
	})
	wait := occupy(t, s)
	defer wait()

	req := httptest.NewRequest(http.MethodGet, "/v1/reliability?s=1&t=6&k=100&estimator=MC", nil)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: %d %s, want 503", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if st := s.engine.Stats().Admission; st.TimedOut == 0 {
		t.Fatalf("timeout not counted: %+v", st)
	}
}

// TestSnapshotVerifyFallback: a snapshot whose mapped image fails Verify
// (injected bit-flip) must not kill the server — startup degrades to a
// heap re-read, and the rebuilt engine answers identically to a healthy
// mapped one.
func TestSnapshotVerifyFallback(t *testing.T) {
	g, err := relcomp.Dataset("lastFM", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := relcomp.EngineConfig{Seed: 42, MaxK: 500}
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Healthy path first: verified, stays mapped.
	snap, eng, err := openVerifiedSnapshot(path, relcomp.EngineConfig{})
	if err != nil {
		t.Fatalf("healthy snapshot: %v", err)
	}
	want := eng.Estimate(t.Context(), relcomp.Query{S: 0, T: 5, K: 200, Estimator: "BFSSharing"})
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	snap.Close()

	// Now every Verify checksum "flips": the mapped image is rejected and
	// startup must fall back to the heap.
	inj := faultinject.NewSeeded(1).WithRate(faultinject.SnapshotFlip, 1)
	restore := faultinject.Set(inj)
	snap2, eng2, err := openVerifiedSnapshot(path, relcomp.EngineConfig{})
	restore()
	if err != nil {
		t.Fatalf("verify-failure fallback: %v", err)
	}
	defer snap2.Close()
	if snap2.Mapped() {
		t.Fatal("fallback snapshot still mapped")
	}
	got := eng2.Estimate(t.Context(), relcomp.Query{S: 0, T: 5, K: 200, Estimator: "BFSSharing"})
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.Reliability != want.Reliability {
		t.Fatalf("heap-rebuilt answer %v != mapped answer %v", got.Reliability, want.Reliability)
	}
}

// TestDegradedOnWire: a degraded answer reports "degraded": true in the
// JSON response.
func TestDegradedOnWire(t *testing.T) {
	res := relcomp.Response{
		Request:     relcomp.Request{S: 0, T: 5, K: 100},
		Used:        relcomp.EngineBoundsName,
		Reliability: 0.5,
		Degraded:    true,
		StopReason:  string(relcomp.StopDegraded),
	}
	out := toJSON(res)
	if !out.Degraded || out.StopReason != "degraded" {
		t.Fatalf("wire form lost degradation: %+v", out)
	}
}
