// Command relserver serves s-t reliability queries over a fixed uncertain
// graph as a JSON HTTP API, backed by the concurrent batch query engine.
// See server.go for the endpoint list.
//
// Example:
//
//	relserver -dataset BioMine -addr :8080 -workers 8
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000&estimator=RSS'
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000'   # adaptive routing
//	curl -d '{"queries":[{"s":10,"t":250,"k":1000},{"s":10,"t":251,"k":1000,"estimator":"BFSSharing"}]}' \
//	     'localhost:8080/v1/batch'
//	curl 'localhost:8080/v1/engine/stats'
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// new connections, drains in-flight requests (bounded by -shutdown-grace),
// then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"relcomp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "lastFM", "synthetic dataset to serve")
		graphFile = flag.String("graph", "", "graph file in text format (overrides -dataset)")
		snapPath  = flag.String("snapshot", "", "prebuilt snapshot file (see relsnap); serves its graph with the indexes memory-mapped, skipping index build")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		maxK      = flag.Int("maxk", 2000, "maximum samples per query (BFS Sharing index width)")
		workers   = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 4096, "result cache capacity (0 disables)")
		readTO    = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout (full request, headers and body)")
		writeTO   = flag.Duration("write-timeout", 2*time.Minute, "HTTP write timeout (covers batch computation)")
		grace     = flag.Duration("shutdown-grace", 30*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	var (
		g   *relcomp.Graph
		srv *server
	)
	if *snapPath != "" {
		// A snapshot carries its own graph, seed, and MaxK; flags that
		// would contradict it are rejected rather than silently ignored.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"dataset", "graph", "scale"} {
			if set[name] {
				log.Fatalf("relserver: -%s conflicts with -snapshot (the snapshot defines the graph)", name)
			}
		}
		start := time.Now()
		snap, err := relcomp.OpenSnapshot(*snapPath)
		if err != nil {
			log.Fatal(err)
		}
		defer snap.Close()
		cfg := relcomp.EngineConfig{Workers: *workers, CacheSize: *cacheSize}
		if set["seed"] {
			cfg.Seed = *seed // NewEngineFromSnapshot rejects a mismatch
		}
		if set["maxk"] {
			cfg.MaxK = *maxK
		}
		eng, err := relcomp.NewEngineFromSnapshot(snap, cfg)
		if err != nil {
			log.Fatal(err)
		}
		g = snap.Graph
		srv = newServer(g, eng)
		log.Printf("relserver: snapshot %s loaded in %s (mapped=%v, %d bytes)",
			*snapPath, time.Since(start).Round(time.Millisecond), snap.Mapped(), snap.SizeBytes())
	} else {
		var err error
		if *graphFile != "" {
			g, err = relcomp.ReadGraphFile(*graphFile)
		} else {
			g, err = relcomp.Dataset(*dataset, *scale, *seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		srv = newServerWith(g, relcomp.EngineConfig{
			Seed:      *seed,
			MaxK:      *maxK,
			Workers:   *workers,
			CacheSize: *cacheSize,
		})
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.handler(),
		// Slow-client protection: a stalled reader or writer must not pin
		// a connection (and its engine work) forever. The write timeout is
		// sized for batch requests, which compute before responding.
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		IdleTimeout:  2 * time.Minute,
	}

	fmt.Printf("relserver: serving %s (%d nodes, %d edges) on %s\n",
		g.Name(), g.NumNodes(), g.NumEdges(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener failed outright (e.g. address in use).
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("relserver: signal received, draining in-flight requests (up to %s)", *grace)
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Fatalf("relserver: shutdown: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("relserver: serve: %v", err)
		}
		log.Print("relserver: drained, bye")
	}
}
