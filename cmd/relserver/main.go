// Command relserver serves s-t reliability queries over a fixed uncertain
// graph as a JSON HTTP API. See server.go for the endpoint list.
//
// Example:
//
//	relserver -dataset BioMine -addr :8080
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000&estimator=RSS'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"relcomp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "lastFM", "synthetic dataset to serve")
		graphFile = flag.String("graph", "", "graph file in text format (overrides -dataset)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		maxK      = flag.Int("maxk", 2000, "maximum samples per query (BFS Sharing index width)")
	)
	flag.Parse()

	var (
		g   *relcomp.Graph
		err error
	)
	if *graphFile != "" {
		g, err = relcomp.ReadGraphFile(*graphFile)
	} else {
		g, err = relcomp.Dataset(*dataset, *scale, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	srv := newServer(g, *seed, *maxK)
	fmt.Printf("relserver: serving %s (%d nodes, %d edges) on %s\n",
		g.Name(), g.NumNodes(), g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}
