// Command relserver serves s-t reliability queries over a fixed uncertain
// graph as a JSON HTTP API, backed by the concurrent batch query engine.
// See server.go for the endpoint list.
//
// Example:
//
//	relserver -dataset BioMine -addr :8080 -workers 8
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000&estimator=RSS'
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000'   # adaptive routing
//	curl -d '{"queries":[{"s":10,"t":250,"k":1000},{"s":10,"t":251,"k":1000,"estimator":"BFSSharing"}]}' \
//	     'localhost:8080/v1/batch'
//	curl 'localhost:8080/v1/engine/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"relcomp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "lastFM", "synthetic dataset to serve")
		graphFile = flag.String("graph", "", "graph file in text format (overrides -dataset)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		maxK      = flag.Int("maxk", 2000, "maximum samples per query (BFS Sharing index width)")
		workers   = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 4096, "result cache capacity (0 disables)")
	)
	flag.Parse()

	var (
		g   *relcomp.Graph
		err error
	)
	if *graphFile != "" {
		g, err = relcomp.ReadGraphFile(*graphFile)
	} else {
		g, err = relcomp.Dataset(*dataset, *scale, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	srv := newServerWith(g, relcomp.EngineConfig{
		Seed:      *seed,
		MaxK:      *maxK,
		Workers:   *workers,
		CacheSize: *cacheSize,
	})
	fmt.Printf("relserver: serving %s (%d nodes, %d edges) on %s\n",
		g.Name(), g.NumNodes(), g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}
