// Command relserver serves s-t reliability queries over a fixed uncertain
// graph as a JSON HTTP API, backed by the concurrent batch query engine.
// See server.go for the endpoint list.
//
// Example:
//
//	relserver -dataset BioMine -addr :8080 -workers 8
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000&estimator=RSS'
//	curl 'localhost:8080/v1/reliability?s=10&t=250&k=1000'   # adaptive routing
//	curl -d '{"queries":[{"s":10,"t":250,"k":1000},{"s":10,"t":251,"k":1000,"estimator":"BFSSharing"}]}' \
//	     'localhost:8080/v1/batch'
//	curl 'localhost:8080/v1/engine/stats'
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// new connections, drains in-flight requests (bounded by -shutdown-grace),
// then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"relcomp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "lastFM", "synthetic dataset to serve")
		graphFile = flag.String("graph", "", "graph file in text format (overrides -dataset)")
		snapPath  = flag.String("snapshot", "", "prebuilt snapshot file (see relsnap); serves its graph with the indexes memory-mapped, skipping index build")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		maxK      = flag.Int("maxk", 2000, "maximum samples per query (BFS Sharing index width)")
		workers   = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cache", 4096, "result cache capacity (0 disables)")
		readTO    = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout (full request, headers and body)")
		writeTO   = flag.Duration("write-timeout", 2*time.Minute, "HTTP write timeout (covers batch computation)")
		grace     = flag.Duration("shutdown-grace", 30*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")

		// Admission control: bounds on concurrent engine work. The defaults
		// keep the server overload-safe out of the box; -max-inflight 0
		// disables admission entirely (every request runs immediately).
		maxInflight = flag.Int("max-inflight", 64, "max concurrently executing engine requests (0 disables admission control)")
		maxQueue    = flag.Int("max-queue", 256, "max requests waiting for admission before new ones are shed with 429")
		queueWait   = flag.Duration("queue-wait", 50*time.Millisecond, "max time a request waits for admission before 503 (0 = engine default)")
		maxSamples  = flag.Int64("max-inflight-samples", 0, "budget of concurrently in-flight sample work, in samples (0 = unlimited)")
		softMemMB   = flag.Int64("soft-mem-mb", 0, "soft heap watermark in MiB above which answers degrade (0 = unlimited)")
	)
	flag.Parse()

	admission := relcomp.AdmissionConfig{
		MaxInflight:        *maxInflight,
		MaxQueue:           *maxQueue,
		QueueWait:          *queueWait,
		MaxInflightSamples: *maxSamples,
		SoftMemBytes:       *softMemMB << 20,
	}

	var (
		g   *relcomp.Graph
		srv *server
	)
	if *snapPath != "" {
		// A snapshot carries its own graph, seed, and MaxK; flags that
		// would contradict it are rejected rather than silently ignored.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"dataset", "graph", "scale"} {
			if set[name] {
				log.Fatalf("relserver: -%s conflicts with -snapshot (the snapshot defines the graph)", name)
			}
		}
		start := time.Now()
		cfg := relcomp.EngineConfig{Workers: *workers, CacheSize: *cacheSize, Admission: admission}
		if set["seed"] {
			cfg.Seed = *seed // NewEngineFromSnapshot rejects a mismatch
		}
		if set["maxk"] {
			cfg.MaxK = *maxK
		}
		snap, eng, err := openVerifiedSnapshot(*snapPath, cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer snap.Close()
		g = snap.Graph
		srv = newServer(g, eng)
		if err := attachSidecar(srv, *snapPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("relserver: snapshot %s loaded in %s (mapped=%v, %d bytes, epoch %d)",
			*snapPath, time.Since(start).Round(time.Millisecond), snap.Mapped(), snap.SizeBytes(), eng.Epoch())
	} else {
		var err error
		if *graphFile != "" {
			g, err = relcomp.ReadGraphFile(*graphFile)
		} else {
			g, err = relcomp.Dataset(*dataset, *scale, *seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		srv = newServerWith(g, relcomp.EngineConfig{
			Seed:      *seed,
			MaxK:      *maxK,
			Workers:   *workers,
			CacheSize: *cacheSize,
			Admission: admission,
		})
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.handler(),
		// Slow-client protection: a stalled reader or writer must not pin
		// a connection (and its engine work) forever. The write timeout is
		// sized for batch requests, which compute before responding; the
		// header timeout and size cap shut out slowloris-style clients
		// before a request body is ever read.
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTO,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	fmt.Printf("relserver: serving %s (%d nodes, %d edges) on %s\n",
		g.Name(), g.NumNodes(), g.NumEdges(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	srv.ready.Store(true)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// The listener failed outright (e.g. address in use).
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		// Flip readiness before closing the listener, so /readyz tells
		// load balancers to stop routing while in-flight work drains.
		srv.ready.Store(false)
		log.Printf("relserver: signal received, draining in-flight requests (up to %s)", *grace)
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Fatalf("relserver: shutdown: %v", err)
		}
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("relserver: serve: %v", err)
		}
		log.Print("relserver: drained, bye")
	}
}

// attachSidecar wires the snapshot's sidecar mutation log into the
// server: an existing sidecar is replayed — its first batch must chain
// from the snapshot's manifest epoch — catching the engine up from the
// snapshot state to the live epoch, and the file is then held open for
// append so future /v1/mutate batches persist across restarts. A missing
// sidecar is created (header only).
func attachSidecar(srv *server, snapPath string) error {
	path := relcomp.MutationSidecarPath(snapPath)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("relserver: sidecar %s: %v", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("relserver: sidecar %s: %v", path, err)
	}
	if info.Size() == 0 {
		if err := relcomp.WriteMutationSidecarHeader(f); err != nil {
			f.Close()
			return fmt.Errorf("relserver: sidecar %s: %v", path, err)
		}
	} else {
		batches, err := relcomp.ReadMutationSidecar(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("relserver: sidecar %s: %v", path, err)
		}
		if len(batches) > 0 {
			if want := srv.engine.Epoch() + 1; batches[0].Epoch != want {
				f.Close()
				return fmt.Errorf("relserver: sidecar %s starts at epoch %d, which does not chain from snapshot epoch %d",
					path, batches[0].Epoch, srv.engine.Epoch())
			}
			for _, b := range batches {
				epoch, err := srv.engine.Apply(context.Background(), b.Muts)
				if err != nil {
					f.Close()
					return fmt.Errorf("relserver: sidecar %s replay of epoch %d: %v", path, b.Epoch, err)
				}
				if epoch != b.Epoch {
					f.Close()
					return fmt.Errorf("relserver: sidecar %s replay desynced: applied epoch %d, recorded %d", path, epoch, b.Epoch)
				}
			}
			log.Printf("relserver: replayed %d sidecar batches to epoch %d", len(batches), srv.engine.Epoch())
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return fmt.Errorf("relserver: sidecar %s: %v", path, err)
		}
	}
	srv.sidecar = f
	return nil
}

// openVerifiedSnapshot opens and verifies the snapshot, preferring the
// memory-mapped fast path. When the mapped image fails to open or verify
// with a corruption error, the server degrades instead of crashing: it
// re-reads the file onto the heap, where every section is
// checksum-verified as its structure is rebuilt, and logs a warning. Only
// when the heap rebuild fails too — the file really is damaged — does
// startup fail.
func openVerifiedSnapshot(path string, cfg relcomp.EngineConfig) (*relcomp.Snapshot, *relcomp.Engine, error) {
	snap, verr := relcomp.OpenSnapshot(path)
	if verr == nil {
		if verr = snap.Verify(); verr == nil {
			eng, err := relcomp.NewEngineFromSnapshot(snap, cfg)
			if err != nil {
				snap.Close()
				return nil, nil, err
			}
			return snap, eng, nil
		}
		snap.Close()
	}
	if !errors.Is(verr, relcomp.ErrSnapshotCorrupt) {
		return nil, nil, verr
	}
	log.Printf("relserver: WARNING: snapshot %s failed verification (%v); degrading to a heap rebuild", path, verr)
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("relserver: snapshot heap rebuild: %v (mapped open failed: %v)", err, verr)
	}
	defer f.Close()
	heapSnap, err := relcomp.ReadSnapshot(f)
	if err != nil {
		return nil, nil, fmt.Errorf("relserver: snapshot heap rebuild failed: %v (mapped: %v)", err, verr)
	}
	eng, err := relcomp.NewEngineFromSnapshot(heapSnap, cfg)
	if err != nil {
		return nil, nil, err
	}
	return heapSnap, eng, nil
}
