package main

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"relcomp"
)

// TestServeFromSnapshot drives the -snapshot serving path end to end:
// build a snapshot the way relsnap does, open it, start an engine over
// it, and check that the HTTP answers match a server that built its
// indexes from scratch under the same config.
func TestServeFromSnapshot(t *testing.T) {
	g, err := relcomp.Dataset("lastFM", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := relcomp.EngineConfig{Seed: 42, MaxK: 500}

	path := filepath.Join(t.TempDir(), "lastfm.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, cfg); err != nil {
		t.Fatalf("WriteEngineSnapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := relcomp.OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer snap.Close()
	eng, err := relcomp.NewEngineFromSnapshot(snap, relcomp.EngineConfig{})
	if err != nil {
		t.Fatalf("NewEngineFromSnapshot: %v", err)
	}
	fromSnap := newServer(snap.Graph, eng).handler()
	fromScratch := newServerWith(g, cfg).handler()

	for _, q := range []string{
		"/v1/reliability?s=0&t=5&k=200&estimator=BFSSharing",
		"/v1/reliability?s=1&t=7&k=200&estimator=ProbTree",
		"/v1/reliability?s=2&t=9&k=200&estimator=MC",
	} {
		codeA, bodyA := get(t, fromSnap, q)
		codeB, bodyB := get(t, fromScratch, q)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: status %d / %d (%v / %v)", q, codeA, codeB, bodyA, bodyB)
		}
		if bodyA["reliability"] != bodyB["reliability"] {
			t.Errorf("%s: snapshot-served %v != from-scratch %v", q, bodyA["reliability"], bodyB["reliability"])
		}
	}

	// The graph endpoint serves the snapshot's graph.
	code, body := get(t, fromSnap, "/v1/graph")
	if code != http.StatusOK {
		t.Fatalf("graph endpoint status %d", code)
	}
	if int(body["nodes"].(float64)) != g.NumNodes() || int(body["edges"].(float64)) != g.NumEdges() {
		t.Errorf("graph endpoint %v, want n=%d m=%d", body, g.NumNodes(), g.NumEdges())
	}

	// Batch answers agree too.
	batch := `{"queries":[{"s":0,"t":5,"k":150,"estimator":"BFSSharing"},{"s":3,"t":8,"k":150,"estimator":"ProbTree"}]}`
	codeA, bodyA := post(t, fromSnap, "/v1/batch", batch)
	codeB, bodyB := post(t, fromScratch, "/v1/batch", batch)
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("batch status %d / %d", codeA, codeB)
	}
	ra, rb := bodyA["results"].([]interface{}), bodyB["results"].([]interface{})
	if len(ra) != len(rb) {
		t.Fatalf("batch sizes %d / %d", len(ra), len(rb))
	}
	for i := range ra {
		a, b := ra[i].(map[string]interface{}), rb[i].(map[string]interface{})
		if !reflect.DeepEqual(a["reliability"], b["reliability"]) {
			t.Errorf("batch result %d: %v != %v", i, a["reliability"], b["reliability"])
		}
	}
}

// TestSnapshotSeedMismatch mirrors main.go's contract: an explicitly set
// seed that contradicts the snapshot manifest must be rejected.
func TestSnapshotSeedMismatch(t *testing.T) {
	g, err := relcomp.Dataset("lastFM", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, relcomp.EngineConfig{Seed: 42, MaxK: 100}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	snap, err := relcomp.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := relcomp.NewEngineFromSnapshot(snap, relcomp.EngineConfig{Seed: 7}); err == nil {
		t.Error("conflicting seed accepted")
	}
	if _, err := relcomp.NewEngineFromSnapshot(snap, relcomp.EngineConfig{MaxK: 999}); err == nil {
		t.Error("conflicting maxk accepted")
	}
}

// TestSnapshotCorruptFileRejected confirms a truncated snapshot file
// fails loudly at open, with the typed corruption error.
func TestSnapshotCorruptFileRejected(t *testing.T) {
	g, err := relcomp.Dataset("lastFM", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, relcomp.EngineConfig{Seed: 1, MaxK: 50}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := relcomp.OpenSnapshot(path); !errors.Is(err, relcomp.ErrSnapshotCorrupt) {
		t.Fatalf("truncated snapshot: err = %v, want ErrSnapshotCorrupt", err)
	}
}
