package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"relcomp"
)

// outEdge picks a live out-edge of s, so mutating it is guaranteed to
// invalidate queries sourced at s.
func outEdge(t *testing.T, g *relcomp.Graph, s int) relcomp.Edge {
	t.Helper()
	ids := g.OutEdgeIDs(relcomp.NodeID(s))
	if len(ids) == 0 {
		t.Fatalf("node %d has no out-edges", s)
	}
	return g.Edge(ids[0])
}

func TestMutateEndpoint(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	e := outEdge(t, srv.graph, 0)

	q := "/v1/reliability?s=0&t=5&k=200&estimator=MC"
	code, before := get(t, h, q)
	if code != http.StatusOK {
		t.Fatalf("baseline query: status %d", code)
	}
	if before["epoch"].(float64) != 0 {
		t.Fatalf("pre-mutation epoch %v, want 0", before["epoch"])
	}

	newP := 0.5 * e.P
	body := fmt.Sprintf(`{"mutations":[{"op":"update","from":%d,"to":%d,"p":%g}]}`, e.From, e.To, newP)
	code, out := post(t, h, "/v1/mutate", body)
	if code != http.StatusOK {
		t.Fatalf("mutate: status %d body %v", code, out)
	}
	if out["epoch"].(float64) != 1 || out["applied"].(float64) != 1 {
		t.Fatalf("mutate response %v, want epoch 1 applied 1", out)
	}

	// The source was invalidated: the re-query recomputes at epoch 1.
	code, after := get(t, h, q)
	if code != http.StatusOK {
		t.Fatalf("post-mutation query: status %d", code)
	}
	if after["cached"].(bool) {
		t.Error("query sourced at a mutated edge was served from cache")
	}
	if after["epoch"].(float64) != 1 {
		t.Errorf("post-mutation epoch %v, want 1", after["epoch"])
	}

	// Stats surface the new epoch and the batch counter.
	code, stats := get(t, h, "/v1/engine/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	mut, ok := stats["mutations"].(map[string]interface{})
	if !ok {
		t.Fatalf("stats carry no mutations section: %v", stats)
	}
	if mut["epoch"].(float64) != 1 || mut["batches"].(float64) != 1 {
		t.Errorf("mutation stats %v, want epoch 1 / batches 1", mut)
	}
}

func TestMutateValidation(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	e := outEdge(t, srv.graph, 0)
	n := srv.graph.NumNodes()

	for name, body := range map[string]string{
		"empty batch":   `{"mutations":[]}`,
		"unknown op":    fmt.Sprintf(`{"mutations":[{"op":"upsert","from":%d,"to":%d,"p":0.5}]}`, e.From, e.To),
		"update no p":   fmt.Sprintf(`{"mutations":[{"op":"update","from":%d,"to":%d}]}`, e.From, e.To),
		"remove with p": fmt.Sprintf(`{"mutations":[{"op":"remove","from":%d,"to":%d,"p":0.5}]}`, e.From, e.To),
		"p out of range": fmt.Sprintf(
			`{"mutations":[{"op":"update","from":%d,"to":%d,"p":1.5}]}`, e.From, e.To),
		"node out of range": fmt.Sprintf(`{"mutations":[{"op":"add","from":0,"to":%d,"p":0.5}]}`, n),
		"absent update":     `{"mutations":[{"op":"update","from":0,"to":0,"p":0.5}]}`,
		"not json":          `mutations=yes`,
	} {
		code, out := post(t, h, "/v1/mutate", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d body %v, want 400", name, code, out)
		}
	}

	// A rejected batch must not have moved the epoch.
	_, stats := get(t, h, "/v1/engine/stats")
	if mut := stats["mutations"].(map[string]interface{}); mut["epoch"].(float64) != 0 {
		t.Errorf("rejected batches moved the epoch: %v", mut["epoch"])
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/mutate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/mutate: status %d, want 405", rec.Code)
	}
}

// sseEvent is one parsed server-sent event (or keep-alive comment).
type sseEvent struct {
	kind string // "estimate" or "heartbeat"
	data map[string]interface{}
}

// sseReader feeds parsed SSE events into a channel so tests can select
// with timeouts instead of blocking on a read.
func sseReader(t *testing.T, r *bufio.Reader) <-chan sseEvent {
	t.Helper()
	ch := make(chan sseEvent, 16)
	go func() {
		defer close(ch)
		event := ""
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, ": heartbeat"):
				ch <- sseEvent{kind: "heartbeat"}
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var body map[string]interface{}
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &body); err != nil {
					t.Errorf("bad SSE data %q: %v", line, err)
					return
				}
				ch <- sseEvent{kind: event, data: body}
			}
		}
	}()
	return ch
}

// nextEstimate drains heartbeats until an estimate event arrives.
func nextEstimate(t *testing.T, ch <-chan sseEvent) map[string]interface{} {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				t.Fatal("SSE stream closed before an estimate arrived")
			}
			if ev.kind == "estimate" {
				return ev.data
			}
		case <-deadline:
			t.Fatal("no estimate event within 30s")
		}
	}
}

func TestSubscribeSSE(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/subscribe?s=0&t=5&k=200&estimator=MC&heartbeat_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := sseReader(t, bufio.NewReader(resp.Body))

	first := nextEstimate(t, events)
	if first["epoch"].(float64) != 0 {
		t.Fatalf("initial estimate at epoch %v, want 0", first["epoch"])
	}

	// An update on an out-edge of the subscribed source triggers exactly
	// one re-estimate at the new epoch.
	e := outEdge(t, srv.graph, 0)
	body := fmt.Sprintf(`{"mutations":[{"op":"update","from":%d,"to":%d,"p":%g}]}`, e.From, e.To, 0.5*e.P)
	mresp, err := http.Post(ts.URL+"/v1/mutate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", mresp.StatusCode)
	}

	second := nextEstimate(t, events)
	if second["epoch"].(float64) != 1 {
		t.Fatalf("re-estimate at epoch %v, want 1", second["epoch"])
	}

	// The 50ms heartbeat keeps the stream warm between batches.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, open := <-events:
			if !open {
				t.Fatal("stream closed before a heartbeat")
			}
			if ev.kind == "heartbeat" {
				return
			}
		case <-deadline:
			t.Fatal("no heartbeat within 10s at heartbeat_ms=50")
		}
	}
}

// TestSidecarPersistAndReplay drives the -snapshot durability loop:
// serve from a snapshot, commit batches (which append to the sidecar),
// then "restart" — a fresh engine over the same snapshot plus sidecar
// replay must come back at the same epoch with bit-identical answers.
func TestSidecarPersistAndReplay(t *testing.T) {
	g, err := relcomp.Dataset("lastFM", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := relcomp.EngineConfig{Seed: 42, MaxK: 500}
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	boot := func() (*server, func()) {
		snap, err := relcomp.OpenSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := relcomp.NewEngineFromSnapshot(snap, relcomp.EngineConfig{})
		if err != nil {
			snap.Close()
			t.Fatal(err)
		}
		s := newServer(snap.Graph, eng)
		if err := attachSidecar(s, path); err != nil {
			snap.Close()
			t.Fatal(err)
		}
		return s, func() { s.sidecar.Close(); snap.Close() }
	}

	srv1, close1 := boot()
	h1 := srv1.handler()
	e := outEdge(t, g, 0)
	for i, body := range []string{
		fmt.Sprintf(`{"mutations":[{"op":"update","from":%d,"to":%d,"p":%g}]}`, e.From, e.To, 0.5*e.P),
		fmt.Sprintf(`{"mutations":[{"op":"remove","from":%d,"to":%d}]}`, e.From, e.To),
	} {
		code, out := post(t, h1, "/v1/mutate", body)
		if code != http.StatusOK || out["epoch"].(float64) != float64(i+1) {
			t.Fatalf("batch %d: status %d body %v", i, code, out)
		}
	}
	q := "/v1/reliability?s=0&t=5&k=200&estimator=MC"
	_, want := get(t, h1, q)
	close1()

	srv2, close2 := boot()
	defer close2()
	if got := srv2.engine.Epoch(); got != 2 {
		t.Fatalf("replayed engine at epoch %d, want 2", got)
	}
	_, got := get(t, srv2.handler(), q)
	if got["reliability"] != want["reliability"] || got["epoch"] != want["epoch"] {
		t.Errorf("replayed answer %v/%v, want %v/%v",
			got["reliability"], got["epoch"], want["reliability"], want["epoch"])
	}
}

// TestSidecarChainMismatch: a sidecar whose first batch does not chain
// from the snapshot's manifest epoch must abort startup.
func TestSidecarChainMismatch(t *testing.T) {
	g, err := relcomp.Dataset("lastFM", 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := relcomp.WriteEngineSnapshot(f, g, relcomp.EngineConfig{Seed: 1, MaxK: 100}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	side, err := os.Create(relcomp.MutationSidecarPath(path))
	if err != nil {
		t.Fatal(err)
	}
	e := outEdge(t, g, 0)
	err = relcomp.WriteMutationSidecar(side, []relcomp.MutationBatch{
		{Epoch: 5, Muts: []relcomp.Mutation{{Op: relcomp.OpRemoveEdge, From: e.From, To: e.To}}},
	})
	side.Close()
	if err != nil {
		t.Fatal(err)
	}

	snap, err := relcomp.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	eng, err := relcomp.NewEngineFromSnapshot(snap, relcomp.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := attachSidecar(newServer(snap.Graph, eng), path); err == nil ||
		!strings.Contains(err.Error(), "chain") {
		t.Fatalf("non-chaining sidecar accepted (err=%v)", err)
	}
}
