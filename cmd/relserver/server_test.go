package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"relcomp"
)

func testServer(t *testing.T) *server {
	t.Helper()
	g, err := relcomp.Dataset("lastFM", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(g, 42, 500)
}

func get(t *testing.T, h http.Handler, url string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

func TestGraphEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/graph")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["nodes"].(float64) <= 0 || body["edges"].(float64) <= 0 {
		t.Errorf("graph stats %v", body)
	}
}

func TestEstimatorsEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/estimators")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	names := body["estimators"].([]interface{})
	if len(names) < 7 { // six from the paper + ParallelMC
		t.Errorf("only %d estimators: %v", len(names), names)
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	h := testServer(t).handler()
	for _, est := range []string{"MC", "RSS", "ProbTree", "LP+", "ParallelMC"} {
		code, body := get(t, h, "/v1/reliability?s=0&t=5&k=200&estimator="+url.QueryEscape(est))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d body %v", est, code, body)
		}
		r := body["reliability"].(float64)
		if r < 0 || r > 1 {
			t.Errorf("%s: reliability %v", est, r)
		}
		if body["estimator"].(string) != est {
			t.Errorf("wrong estimator echoed: %v", body["estimator"])
		}
	}
}

func TestReliabilityValidation(t *testing.T) {
	h := testServer(t).handler()
	cases := []string{
		"/v1/reliability",                         // missing params
		"/v1/reliability?s=0&t=999999",            // t out of range
		"/v1/reliability?s=-1&t=3",                // s negative
		"/v1/reliability?s=0&t=3&k=0",             // k zero
		"/v1/reliability?s=0&t=3&k=100000",        // k above index width
		"/v1/reliability?s=0&t=3&estimator=bogus", // unknown estimator
		"/v1/reliability?s=abc&t=3",               // non-numeric
	}
	for _, url := range cases {
		code, body := get(t, h, url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d body %v", url, code, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: no error message", url)
		}
	}
}

func TestBoundsEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/bounds?s=0&t=5")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	lo := body["lower"].(float64)
	hi := body["upper"].(float64)
	if lo < 0 || hi > 1 || lo > hi {
		t.Errorf("bounds [%v, %v]", lo, hi)
	}
}

func TestTopKEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/topk?s=0&n=5&k=200")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	targets := body["targets"].([]interface{})
	if len(targets) > 5 {
		t.Errorf("%d targets", len(targets))
	}
	prev := 2.0
	for _, raw := range targets {
		e := raw.(map[string]interface{})
		r := e["reliability"].(float64)
		if r > prev {
			t.Error("targets not sorted")
		}
		prev = r
	}
	if code, _ := get(t, h, "/v1/topk?s=0&n=0"); code != http.StatusBadRequest {
		t.Error("n=0 accepted")
	}
}

// TestConcurrentRequests: the per-estimator mutexes must make concurrent
// queries safe (run with -race).
func TestConcurrentRequests(t *testing.T) {
	h := testServer(t).handler()
	var wg sync.WaitGroup
	urls := []string{
		"/v1/reliability?s=0&t=5&k=100&estimator=MC",
		"/v1/reliability?s=1&t=6&k=100&estimator=MC",
		"/v1/reliability?s=0&t=5&k=100&estimator=RSS",
		"/v1/topk?s=0&n=3&k=100",
		"/v1/bounds?s=0&t=5",
		"/v1/graph",
	}
	for i := 0; i < 4; i++ {
		for _, url := range urls {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodGet, url, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d", url, rec.Code)
				}
			}(url)
		}
	}
	wg.Wait()
}
