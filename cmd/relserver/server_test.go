package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"

	"relcomp"
)

func testServer(t *testing.T) *server {
	t.Helper()
	g, err := relcomp.Dataset("lastFM", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	return newServerWith(g, relcomp.EngineConfig{Seed: 42, MaxK: 500, CacheSize: 4096})
}

func get(t *testing.T, h http.Handler, url string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, body
}

func post(t *testing.T, h http.Handler, url, body string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", url, rec.Body.String(), err)
	}
	return rec.Code, out
}

func TestGraphEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/graph")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["nodes"].(float64) <= 0 || body["edges"].(float64) <= 0 {
		t.Errorf("graph stats %v", body)
	}
}

func TestEstimatorsEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/estimators")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	names := body["estimators"].([]interface{})
	if len(names) < 7 { // six from the paper + ParallelMC
		t.Errorf("only %d estimators: %v", len(names), names)
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	h := testServer(t).handler()
	for _, est := range []string{"MC", "RSS", "ProbTree", "LP+", "ParallelMC"} {
		code, body := get(t, h, "/v1/reliability?s=0&t=5&k=200&estimator="+url.QueryEscape(est))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d body %v", est, code, body)
		}
		r := body["reliability"].(float64)
		if r < 0 || r > 1 {
			t.Errorf("%s: reliability %v", est, r)
		}
		if body["estimator"].(string) != est {
			t.Errorf("wrong estimator echoed: %v", body["estimator"])
		}
	}
}

// TestReliabilityAdaptive: omitting estimator= routes the query through
// the engine's adaptive router, which reports what answered it.
func TestReliabilityAdaptive(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/reliability?s=0&t=5&k=200")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	if body["estimator"].(string) == "" {
		t.Error("adaptive query reports no estimator")
	}
	r := body["reliability"].(float64)
	if r < 0 || r > 1 {
		t.Errorf("reliability %v", r)
	}
}

// TestReliabilityCached: the second identical query must be a cache hit
// with the identical value.
func TestReliabilityCached(t *testing.T) {
	h := testServer(t).handler()
	url := "/v1/reliability?s=0&t=5&k=200&estimator=MC"
	_, first := get(t, h, url)
	_, second := get(t, h, url)
	if !second["cached"].(bool) {
		t.Fatal("second query not cached")
	}
	if first["reliability"] != second["reliability"] {
		t.Errorf("cache changed the answer: %v vs %v", first["reliability"], second["reliability"])
	}
}

func TestReliabilityValidation(t *testing.T) {
	h := testServer(t).handler()
	cases := []string{
		"/v1/reliability",                         // missing params
		"/v1/reliability?s=0&t=999999",            // t out of range
		"/v1/reliability?s=-1&t=3",                // s negative
		"/v1/reliability?s=0&t=3&k=0",             // k zero
		"/v1/reliability?s=0&t=3&k=100000",        // k above index width
		"/v1/reliability?s=0&t=3&estimator=bogus", // unknown estimator
		"/v1/reliability?s=abc&t=3",               // non-numeric
	}
	for _, url := range cases {
		code, body := get(t, h, url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d body %v", url, code, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: no error message", url)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	h := testServer(t).handler()
	body := `{"queries":[
		{"s":0,"t":5,"k":200,"estimator":"MC"},
		{"s":0,"t":6,"k":200,"estimator":"BFSSharing"},
		{"s":1,"t":6,"k":200,"estimator":"BFSSharing"},
		{"s":2,"t":7,"k":200}
	]}`
	code, out := post(t, h, "/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, out)
	}
	results := out["results"].([]interface{})
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	if out["failed"].(float64) != 0 {
		t.Fatalf("failures: %v", out)
	}
	for i, raw := range results {
		res := raw.(map[string]interface{})
		r := res["reliability"].(float64)
		if r < 0 || r > 1 {
			t.Errorf("result %d: reliability %v", i, r)
		}
		if res["estimator"].(string) == "" {
			t.Errorf("result %d: no estimator", i)
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	h := testServer(t).handler()
	// Second query: out-of-range target. Third: explicit k:0 must be
	// rejected like the single-query endpoint, not silently defaulted —
	// only an omitted k takes the default.
	code, out := post(t, h, "/v1/batch",
		`{"queries":[{"s":0,"t":5,"k":200,"estimator":"MC"},{"s":0,"t":999999,"k":200},{"s":0,"t":5,"k":0}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, out)
	}
	if out["failed"].(float64) != 2 {
		t.Fatalf("failed = %v, want 2", out["failed"])
	}
	results := out["results"].([]interface{})
	for _, i := range []int{1, 2} {
		if results[i].(map[string]interface{})["error"].(string) == "" {
			t.Errorf("failed query %d has no error message", i)
		}
	}
}

// TestBatchHugeNodeID: ids beyond int32 must be rejected, not silently
// truncated onto a valid node by the NodeID conversion.
func TestBatchHugeNodeID(t *testing.T) {
	h := testServer(t).handler()
	code, out := post(t, h, "/v1/batch",
		`{"queries":[{"s":4294967296,"t":5,"k":200},{"s":0,"t":-4294967291,"k":200}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, out)
	}
	if out["failed"].(float64) != 2 {
		t.Fatalf("failed = %v, want 2: %v", out["failed"], out)
	}
	for i, raw := range out["results"].([]interface{}) {
		if raw.(map[string]interface{})["error"].(string) == "" {
			t.Errorf("query %d: huge id accepted", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	h := testServer(t).handler()
	if code, _ := post(t, h, "/v1/batch", `{"queries":[]}`); code != http.StatusBadRequest {
		t.Error("empty batch accepted")
	}
	if code, _ := post(t, h, "/v1/batch", `{bogus`); code != http.StatusBadRequest {
		t.Error("malformed JSON accepted")
	}
	code, _ := get(t, h, "/v1/batch")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: status %d", code)
	}
}

func TestEngineStatsEndpoint(t *testing.T) {
	h := testServer(t).handler()
	get(t, h, "/v1/reliability?s=0&t=5&k=200&estimator=MC")
	get(t, h, "/v1/reliability?s=0&t=5&k=200&estimator=MC") // cache hit
	code, body := get(t, h, "/v1/engine/stats")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["queries"].(float64) < 2 {
		t.Errorf("queries %v", body["queries"])
	}
	if body["cacheHits"].(float64) < 1 {
		t.Errorf("cacheHits %v", body["cacheHits"])
	}
	ests := body["estimators"].(map[string]interface{})
	if _, ok := ests["MC"]; !ok {
		t.Errorf("no MC stats: %v", ests)
	}
}

func TestBoundsEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/bounds?s=0&t=5")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	lo := body["lower"].(float64)
	hi := body["upper"].(float64)
	if lo < 0 || hi > 1 || lo > hi {
		t.Errorf("bounds [%v, %v]", lo, hi)
	}
}

func TestTopKEndpoint(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/topk?s=0&n=5&k=200")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	targets := body["targets"].([]interface{})
	if len(targets) > 5 {
		t.Errorf("%d targets", len(targets))
	}
	prev := 2.0
	for _, raw := range targets {
		e := raw.(map[string]interface{})
		r := e["reliability"].(float64)
		if r > prev {
			t.Error("targets not sorted")
		}
		prev = r
	}
	if code, _ := get(t, h, "/v1/topk?s=0&n=0"); code != http.StatusBadRequest {
		t.Error("n=0 accepted")
	}
}

// TestConcurrentMatchesSequential is the rewired server's
// sequential-equivalence check (run with -race): concurrent mixed
// single/batch traffic against one server must return exactly the values
// a second, identically configured server returns sequentially. Holds
// because engine results are deterministic per query given the seed.
func TestConcurrentMatchesSequential(t *testing.T) {
	sequential := testServer(t).handler()
	concurrent := testServer(t).handler()

	type stq struct{ s, t, k int }
	var queries []stq
	for s := 0; s < 4; s++ {
		for d := 4; d < 8; d++ {
			queries = append(queries, stq{s, d, 100 + 50*(s%2)})
		}
	}
	ests := []string{"MC", "BFSSharing", "RSS", "LP+"}

	relURL := func(q stq, est string) string {
		return fmt.Sprintf("/v1/reliability?s=%d&t=%d&k=%d&estimator=%s",
			q.s, q.t, q.k, url.QueryEscape(est))
	}
	batchBody := func(est string) string {
		parts := make([]string, len(queries))
		for i, q := range queries {
			parts[i] = fmt.Sprintf(`{"s":%d,"t":%d,"k":%d,"estimator":%q}`, q.s, q.t, q.k, est)
		}
		return `{"queries":[` + strings.Join(parts, ",") + `]}`
	}

	// Sequential ground truth per (query, estimator).
	want := make(map[string]float64)
	for _, est := range ests {
		for _, q := range queries {
			code, body := get(t, sequential, relURL(q, est))
			if code != http.StatusOK {
				t.Fatalf("%v/%s: status %d", q, est, code)
			}
			want[relURL(q, est)] = body["reliability"].(float64)
		}
	}

	var wg sync.WaitGroup
	fail := t.Errorf // goroutine-safe per the testing package
	for round := 0; round < 2; round++ {
		for _, est := range ests {
			// Single-query clients.
			for _, q := range queries {
				wg.Add(1)
				go func(q stq, est string) {
					defer wg.Done()
					req := httptest.NewRequest(http.MethodGet, relURL(q, est), nil)
					rec := httptest.NewRecorder()
					concurrent.ServeHTTP(rec, req)
					var body map[string]interface{}
					if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || rec.Code != http.StatusOK {
						fail("%s: status %d err %v", relURL(q, est), rec.Code, err)
						return
					}
					if got := body["reliability"].(float64); got != want[relURL(q, est)] {
						fail("%s: concurrent %v != sequential %v", relURL(q, est), got, want[relURL(q, est)])
					}
				}(q, est)
			}
			// Batch clients.
			wg.Add(1)
			go func(est string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(batchBody(est)))
				rec := httptest.NewRecorder()
				concurrent.ServeHTTP(rec, req)
				var out map[string]interface{}
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || rec.Code != http.StatusOK {
					fail("batch %s: status %d err %v", est, rec.Code, err)
					return
				}
				for i, raw := range out["results"].([]interface{}) {
					res := raw.(map[string]interface{})
					if got := res["reliability"].(float64); got != want[relURL(queries[i], est)] {
						fail("batch %s query %d: %v != %v", est, i, got, want[relURL(queries[i], est)])
					}
				}
			}(est)
		}
		// Stats and topk readers race along.
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/v1/engine/stats", nil)
			concurrent.ServeHTTP(httptest.NewRecorder(), req)
			req = httptest.NewRequest(http.MethodGet, "/v1/topk?s=0&n=3&k=100", nil)
			rec := httptest.NewRecorder()
			concurrent.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				fail("topk: status %d", rec.Code)
			}
		}()
	}
	wg.Wait()
}

// TestQueryEndpointEveryKind: POST /v1/query accepts every kind and
// returns the kind's own payload field.
func TestQueryEndpointEveryKind(t *testing.T) {
	h := testServer(t).handler()
	cases := []struct {
		body    string
		payload string // response field the kind must populate
	}{
		{`{"kind":"reliability","s":0,"t":5,"k":200,"estimator":"MC"}`, "reliability"},
		{`{"s":0,"t":5,"k":200}`, "reliability"}, // kind defaults to reliability
		{`{"kind":"distance","s":0,"t":5,"d":3,"k":200}`, "reliability"},
		{`{"kind":"topk","s":0,"topk":5,"k":200}`, "targets"},
		{`{"kind":"single_source","s":0,"k":200}`, "reliabilities"},
		{`{"kind":"kterminal","s":0,"targets":[3,4],"k":200}`, "reliability"},
		{`{"kind":"reliability","s":0,"t":5,"k":200,"estimator":"MC","evidence":{"exclude":[0]}}`, "reliability"},
	}
	for _, c := range cases {
		code, body := post(t, h, "/v1/query", c.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d body %v", c.body, code, body)
		}
		if _, ok := body[c.payload]; !ok {
			t.Errorf("%s: response missing %q: %v", c.body, c.payload, body)
		}
		if body["kind"].(string) == "" {
			t.Errorf("%s: response missing kind", c.body)
		}
	}
	// single_source returns one value per node, source = 1.
	_, body := post(t, h, "/v1/query", `{"kind":"single_source","s":0,"k":100}`)
	rs := body["reliabilities"].([]interface{})
	if len(rs) == 0 || rs[0].(float64) != 1 {
		t.Errorf("single_source payload wrong: %d values, R(s,s)=%v", len(rs), rs[0])
	}
}

// TestQueryEndpointRejects: unknown kinds and malformed shape parameters
// are 400s, as are GETs.
func TestQueryEndpointRejects(t *testing.T) {
	h := testServer(t).handler()
	bad := []string{
		`{"kind":"bogus","s":0,"t":5,"k":100}`,                                      // unknown kind
		`{"kind":"distance","s":0,"t":5,"k":100}`,                                   // d missing
		`{"kind":"distance","s":0,"t":5,"d":-3,"k":100}`,                            // negative d
		`{"kind":"reliability","s":0,"t":5,"k":-5}`,                                 // negative k
		`{"kind":"topk","s":0,"k":100}`,                                             // topk missing
		`{"kind":"topk","s":0,"topk":-2,"k":100}`,                                   // negative topk
		`{"kind":"kterminal","s":0,"k":100}`,                                        // no targets
		`{"kind":"kterminal","s":0,"targets":[99999],"k":5}`,                        // target range
		`{"s":0,"t":5,"k":100,"evidence":{"include":[999999]}}`,                     // evidence range
		`{"s":0,"t":5,"k":100,"estimator":"BFSSharing","evidence":{"exclude":[0]}}`, // index-based + evidence
		`{bogus`, // malformed JSON
	}
	for _, body := range bad {
		code, out := post(t, h, "/v1/query", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %v)", body, code, out)
		}
		if out["error"] == "" {
			t.Errorf("%s: no error message", body)
		}
	}
	if code, _ := get(t, h, "/v1/query"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: status %d, want 405", code)
	}
}

// TestTopKAliasMatchesQueryEndpoint: GET /v1/topk is an alias of
// POST /v1/query with kind=topk — identical ranking, identical shape.
func TestTopKAliasMatchesQueryEndpoint(t *testing.T) {
	h := testServer(t).handler()
	_, alias := get(t, h, "/v1/topk?s=0&n=5&k=200")
	_, unified := post(t, h, "/v1/query", `{"kind":"topk","s":0,"topk":5,"k":200}`)
	if !reflect.DeepEqual(alias["targets"], unified["targets"]) {
		t.Errorf("alias ranking %v != unified ranking %v", alias["targets"], unified["targets"])
	}
	if alias["kind"].(string) != "topk" {
		t.Errorf("alias response kind %v", alias["kind"])
	}
	// The alias accepts anytime parameters too.
	code, body := get(t, h, "/v1/topk?s=0&n=5&eps=0.3")
	if code != http.StatusOK {
		t.Fatalf("anytime alias: status %d body %v", code, body)
	}
	if body["stop_reason"].(string) == "" {
		t.Error("anytime alias reported no stop_reason")
	}
}

// TestBatchMixedKinds: one POST /v1/batch may mix every kind; results are
// positionally aligned and carry per-kind payloads.
func TestBatchMixedKinds(t *testing.T) {
	h := testServer(t).handler()
	code, out := post(t, h, "/v1/batch", `{"queries":[
		{"s":0,"t":5,"k":200,"estimator":"MC"},
		{"kind":"topk","s":0,"topk":3,"k":200},
		{"kind":"single_source","s":1,"k":200},
		{"kind":"distance","s":0,"t":5,"d":3,"k":200},
		{"kind":"kterminal","s":0,"targets":[3,4],"k":200},
		{"kind":"topk","s":0,"topk":3,"k":200}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, out)
	}
	if out["failed"].(float64) != 0 {
		t.Fatalf("failures: %v", out)
	}
	results := out["results"].([]interface{})
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	kinds := []string{"reliability", "topk", "single_source", "distance", "kterminal", "topk"}
	for i, raw := range results {
		res := raw.(map[string]interface{})
		if res["kind"].(string) != kinds[i] {
			t.Errorf("result %d: kind %v, want %s", i, res["kind"], kinds[i])
		}
	}
	if !reflect.DeepEqual(results[1].(map[string]interface{})["targets"],
		results[5].(map[string]interface{})["targets"]) {
		t.Error("duplicate top-k queries disagree")
	}
	if results[5].(map[string]interface{})["cached"] != true {
		t.Error("duplicate top-k not deduplicated")
	}
	if rs := results[2].(map[string]interface{})["reliabilities"].([]interface{}); len(rs) == 0 {
		t.Error("single_source batch result missing reliabilities")
	}
	// Partial failure: a bad kind fails its own slot only.
	code, out = post(t, h, "/v1/batch", `{"queries":[
		{"s":0,"t":5,"k":100,"estimator":"MC"},
		{"kind":"bogus","s":0,"t":5,"k":100}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("partial batch: status %d", code)
	}
	if out["failed"].(float64) != 1 {
		t.Errorf("failed = %v, want 1", out["failed"])
	}
	// Engine stats expose the kind mix.
	_, stats := get(t, h, "/v1/engine/stats")
	km, ok := stats["kinds"].(map[string]interface{})
	if !ok || km["topk"].(float64) <= 0 {
		t.Errorf("stats missing kind counters: %v", stats["kinds"])
	}
}

// TestAnytimeReliability: eps turns the query anytime — the response
// reports samples_used and a stop_reason, and an easy (high-reliability,
// short-range) pair stops well under the cap.
func TestAnytimeReliability(t *testing.T) {
	h := testServer(t).handler()
	code, body := get(t, h, "/v1/estimate?s=0&t=5&eps=0.3&estimator=MC")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	used, ok := body["samples_used"].(float64)
	if !ok || used <= 0 {
		t.Fatalf("samples_used missing or zero: %v", body)
	}
	reason, _ := body["stop_reason"].(string)
	if reason == "" {
		t.Fatalf("stop_reason missing: %v", body)
	}
	// k defaults to the engine cap for anytime requests.
	if k := body["k"].(float64); int(k) != 500 {
		t.Errorf("anytime default cap %v, want engine MaxK 500", k)
	}
	if used > body["k"].(float64) {
		t.Errorf("samples_used %v exceeds cap %v", used, body["k"])
	}

	// A fixed query reports its full budget and no stop reason.
	code, body = get(t, h, "/v1/reliability?s=0&t=5&k=200&estimator=MC")
	if code != http.StatusOK {
		t.Fatalf("fixed: status %d", code)
	}
	if got := body["samples_used"].(float64); got != 200 {
		t.Errorf("fixed query samples_used %v, want 200", got)
	}
	if _, has := body["stop_reason"]; has {
		t.Errorf("fixed query reported stop_reason: %v", body)
	}
}

// TestAnytimeReliabilityDeadline: deadline_ms bounds the query and is
// reported as the stop reason when it fires first.
func TestAnytimeReliabilityDeadline(t *testing.T) {
	h := testServer(t).handler()
	// An effectively-zero deadline: the estimate returns immediately with
	// whatever was drawn, reason "deadline" (or eps if it won the race).
	code, body := get(t, h, "/v1/reliability?s=0&t=5&deadline_ms=1&eps=0.000001&estimator=MC")
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	if reason, _ := body["stop_reason"].(string); reason == "" {
		t.Errorf("no stop_reason on deadline query: %v", body)
	}
	if _, bad := get(t, h, "/v1/reliability?s=0&t=5&deadline_ms=-4"); bad["error"] == nil {
		t.Error("negative deadline accepted")
	}
	if _, bad := get(t, h, "/v1/reliability?s=0&t=5&eps=1.5"); bad["error"] == nil {
		t.Error("eps >= 1 accepted")
	}
}

// TestAnytimeBatch: per-query and batch-wide eps/deadline_ms fields reach
// the engine, and the responses carry the termination report.
func TestAnytimeBatch(t *testing.T) {
	h := testServer(t).handler()
	code, body := post(t, h, "/v1/batch",
		`{"eps": 0.3, "queries": [
			{"s":0,"t":5,"estimator":"PackMC"},
			{"s":0,"t":6,"estimator":"PackMC"},
			{"s":0,"t":5,"estimator":"MC","eps":0}
		]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d body %v", code, body)
	}
	results := body["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, raw := range results {
		r := raw.(map[string]interface{})
		if r["error"] != nil {
			t.Fatalf("result %d error %v", i, r["error"])
		}
		used := r["samples_used"].(float64)
		if used <= 0 {
			t.Errorf("result %d samples_used %v", i, used)
		}
		_, hasReason := r["stop_reason"]
		if i < 2 && !hasReason {
			t.Errorf("anytime result %d missing stop_reason: %v", i, r)
		}
		if i == 2 {
			// The per-query eps:0 override makes the last query fixed.
			if hasReason {
				t.Errorf("fixed result reported stop_reason: %v", r)
			}
			if used != 500 {
				t.Errorf("fixed result samples_used %v, want full default cap 500", used)
			}
		}
	}
	// Engine stats expose the anytime savings and the bounds memo.
	_, stats := get(t, h, "/v1/engine/stats")
	if stats["anytimeQueries"].(float64) <= 0 {
		t.Errorf("stats missing anytime accounting: %v", stats["anytimeQueries"])
	}
	if _, ok := stats["boundsMemo"].(map[string]interface{}); !ok {
		t.Errorf("stats missing boundsMemo: %v", stats)
	}
}
