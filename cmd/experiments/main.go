// Command experiments regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md §8 for the experiment index).
//
// Examples:
//
//	experiments -list
//	experiments -exp table3
//	experiments -exp all -pairs 20 -repeats 15
//	experiments -exp fig7 -paper          # the paper's 100×100 setting
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"relcomp/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment name (fig5..fig17, table3..table16) or \"all\"")
		list    = flag.Bool("list", false, "list experiments and exit")
		paper   = flag.Bool("paper", false, "use the paper's workload scale (100 pairs, T=100; hours of compute)")
		scale   = flag.Float64("scale", 0, "dataset scale factor (default 1.0)")
		pairs   = flag.Int("pairs", 0, "s-t pairs per dataset (default 20)")
		repeats = flag.Int("repeats", 0, "repetitions T behind each variance (default 15)")
		maxK    = flag.Int("maxk", 0, "sweep cap and BFS Sharing index width (default 2500)")
		seed    = flag.Uint64("seed", 0, "random seed (default 42)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-9s %s\n", e.Name, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "experiments: need -exp <name> or -list")
		os.Exit(2)
	}

	opts := harness.Defaults()
	if *paper {
		opts = harness.PaperScale()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *pairs > 0 {
		opts.Pairs = *pairs
	}
	if *repeats > 0 {
		opts.Repeats = *repeats
	}
	if *maxK > 0 {
		opts.MaxK = *maxK
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	r := harness.NewRunner(opts)
	fmt.Printf("# options: scale=%.2f pairs=%d hops=%d repeats=%d K=%d..%d step %d rho<%g seed=%d\n\n",
		opts.Scale, opts.Pairs, opts.Hops, opts.Repeats, opts.InitialK, opts.MaxK, opts.StepK, opts.Rho, opts.Seed)

	start := time.Now()
	var err error
	if *exp == "all" {
		err = harness.RunAll(r, os.Stdout)
	} else {
		var e harness.Experiment
		e, err = harness.ByName(*exp)
		if err == nil {
			fmt.Printf("=== %s — %s ===\n", e.Name, e.Title)
			err = e.Run(r, os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("\n# done in %v\n", time.Since(start).Round(time.Millisecond))
}
