// Package relcomp is a Go reproduction of "An In-Depth Comparison of s-t
// Reliability Algorithms over Uncertain Graphs" (Ke, Khan, Lim; 2019).
//
// An uncertain graph assigns every directed edge an independent existence
// probability; the s-t reliability R(s,t) is the probability that t is
// reachable from s across the exponentially many possible worlds. Exact
// computation is #P-complete, so this package provides the six
// state-of-the-art estimators the paper compares — Monte Carlo sampling,
// BFS Sharing, ProbTree indexing, corrected lazy propagation (LP+), and
// the two recursive estimators RHH and RSS — together with exact baselines
// for small graphs, dataset generators, query workloads, and the full
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	b := relcomp.NewGraphBuilder(4)
//	b.AddEdge(0, 1, 0.9)
//	b.AddEdge(1, 3, 0.8)
//	b.AddEdge(0, 2, 0.5)
//	b.AddEdge(2, 3, 0.7)
//	g := b.Build()
//	est := relcomp.NewRSS(g, 42)
//	r := est.Estimate(0, 3, 1000)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture and the experiment index.
package relcomp

import (
	"relcomp/internal/convergence"
	"relcomp/internal/core"
	"relcomp/internal/datasets"
	"relcomp/internal/exact"
	"relcomp/internal/uncertain"
	"relcomp/internal/workload"
)

// Core graph types, re-exported from the internal substrate.
type (
	// Graph is an immutable uncertain (probabilistic) directed graph.
	Graph = uncertain.Graph
	// GraphBuilder accumulates probabilistic edges into a Graph.
	GraphBuilder = uncertain.Builder
	// Edge is one directed probabilistic edge.
	Edge = uncertain.Edge
	// NodeID identifies a node (dense integers from 0).
	NodeID = uncertain.NodeID
	// EdgeID identifies an edge (dense integers from 0).
	EdgeID = uncertain.EdgeID

	// Estimator estimates s-t reliability with a sample budget.
	Estimator = core.Estimator
	// Sampler is an open incremental estimation session for one (s, t)
	// query: Advance draws further samples, Snapshot reports the running
	// estimate, sample count, and confidence half-width.
	Sampler = core.Sampler
	// SampleSnapshot is a Sampler's running state.
	SampleSnapshot = core.SampleSnapshot
	// AdaptiveOptions configures AdaptiveEstimate's stopping rules.
	AdaptiveOptions = core.AdaptiveOptions
	// AdaptiveResult reports an adaptive estimate and why it stopped.
	AdaptiveResult = core.AdaptiveResult
	// StopReason names the rule that ended an adaptive estimate.
	StopReason = core.StopReason
	// Pair is one s-t reliability query.
	Pair = workload.Pair

	// ConvergenceConfig controls a variance-convergence sweep.
	ConvergenceConfig = convergence.Config
	// ConvergenceResult is the outcome of a sweep.
	ConvergenceResult = convergence.Result
)

// NewGraphBuilder returns a builder for an uncertain graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return uncertain.NewBuilder(n) }

// ReadGraphFile loads a graph from the text format ("n m" header followed
// by "from to prob" lines).
func ReadGraphFile(path string) (*Graph, error) { return uncertain.ReadFile(path) }

// WriteGraphFile stores a graph in the text format.
func WriteGraphFile(path string, g *Graph) error { return uncertain.WriteFile(path, g) }

// NewMC returns the baseline Monte Carlo estimator (Alg. 1 of the paper).
func NewMC(g *Graph, seed uint64) Estimator { return core.NewMC(g, seed) }

// NewBFSSharing builds the BFS Sharing index with `width` pre-sampled
// possible worlds and returns its estimator (Alg. 2–3). Estimate calls may
// use any k <= width.
func NewBFSSharing(g *Graph, seed uint64, width int) Estimator {
	return core.NewBFSSharing(g, seed, width)
}

// NewRHH returns the recursive sampling estimator of Jin et al. (Alg. 4).
func NewRHH(g *Graph, seed uint64) Estimator { return core.NewRHH(g, seed) }

// NewRSS returns the recursive stratified sampling estimator of Li et al.
// (Alg. 5).
func NewRSS(g *Graph, seed uint64) Estimator { return core.NewRSS(g, seed) }

// NewLazyProp returns the corrected lazy propagation estimator LP+
// (Alg. 6 with the paper's c_v+1 fix).
func NewLazyProp(g *Graph, seed uint64) Estimator { return core.NewLazyProp(g, seed) }

// NewProbTree builds the FWD ProbTree index (w = 2, lossless) and returns
// its estimator with MC as the inner sampler (Alg. 7–8).
func NewProbTree(g *Graph, seed uint64) Estimator { return core.NewProbTree(g, seed) }

// NewPackMC returns the bit-parallel world-packed Monte Carlo estimator:
// statistically identical to MC at equal K, but it samples 64 possible
// worlds per traversal as machine-word lanes, with per-edge existence
// masks drawn lazily by geometric skips and packs terminated early once
// the target's mask can no longer change.
func NewPackMC(g *Graph, seed uint64) Estimator { return core.NewPackMC(g, seed) }

// NewParallelPackMC returns a PackMC that shards its 64-world packs over
// `workers` goroutines (0 means GOMAXPROCS). Its estimates are
// bit-identical to NewPackMC with the same seed, for any worker count.
func NewParallelPackMC(g *Graph, seed uint64, workers int) Estimator {
	return core.NewParallelPackMC(g, seed, workers)
}

// NewWidePackMC returns the wide-lane world-packed estimator: lanes (256
// or 512) worlds per traversal as unrolled lane groups, with fused
// multi-word mask draws (AVX-512 accelerated where available), a dense
// bitmap sweep for saturated frontiers, and arena-recycled scratch. Its
// estimates are bit-identical to NewPackMC's repeated 64-world packs
// with the same seed at every width.
func NewWidePackMC(g *Graph, seed uint64, lanes int) Estimator {
	return core.NewWidePackMC(g, seed, lanes)
}

// Estimators returns fresh instances of the paper's six estimators, in
// table order, sharing the graph. The BFS Sharing index is sized for
// Estimate calls up to maxK samples.
func Estimators(g *Graph, seed uint64, maxK int) []Estimator {
	return []Estimator{
		core.NewMC(g, seed),
		core.NewBFSSharing(g, seed, maxK),
		core.NewProbTree(g, seed),
		core.NewLazyProp(g, seed),
		core.NewRHH(g, seed),
		core.NewRSS(g, seed),
	}
}

// ExactReliability computes R(s,t) exactly by the factoring recursion.
// It is exponential in the worst case; intended for small graphs and
// validation.
func ExactReliability(g *Graph, s, t NodeID) (float64, error) {
	return exact.Factoring(g, s, t)
}

// QueryPairs draws count s-t pairs at exact hop distance hops, the
// workload shape of the paper's evaluation.
func QueryPairs(g *Graph, count, hops int, seed uint64) ([]Pair, error) {
	return workload.Pairs(g, count, hops, seed)
}

// DatasetNames lists the six synthetic stand-in datasets in the paper's
// order.
func DatasetNames() []string {
	specs := datasets.All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Dataset generates the named synthetic dataset at the given scale
// (1.0 = laptop default size) and seed.
func Dataset(name string, scale float64, seed uint64) (*Graph, error) {
	spec, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale, seed), nil
}

// ConvergenceSweep runs the paper's variance-convergence procedure
// (ρ_K = V_K/R_K < 0.001) for one estimator over a workload, resuming
// incremental samplers between sweep points instead of re-running every
// point from K = 0.
func ConvergenceSweep(est Estimator, pairs []Pair, cfg ConvergenceConfig) ConvergenceResult {
	return convergence.Sweep(est, pairs, cfg)
}

// Stop reasons reported by AdaptiveEstimate and the engine's anytime
// queries.
const (
	StopEps      = core.StopEps      // accuracy target reached
	StopRho      = core.StopRho      // dispersion criterion fired
	StopDeadline = core.StopDeadline // wall-clock deadline expired
	StopMaxK     = core.StopMaxK     // sample budget exhausted
	StopCanceled = core.StopCanceled // context canceled
)

// NewSampler opens an incremental estimation session for (s, t) on est:
// the estimator's native sampler when it supports chunked advancement
// (MC, PackMC, BFS Sharing, LP+, ProbTree — all bit-identical to their
// one-shot Estimate at equal total samples), or a restart-doubling
// adapter (RHH, RSS). At most one session per estimator instance may be
// open at a time.
func NewSampler(est Estimator, s, t NodeID) Sampler { return core.NewSampler(est, s, t) }

// AdaptiveEstimate advances a sampler in geometrically growing chunks
// until the relative 95% CI half-width reaches opts.Eps, the paper's
// dispersion criterion fires, the deadline expires, or the budget
// opts.MaxK is exhausted — anytime s-t reliability with a termination
// report. With every stopping rule disabled the result is bit-identical
// to a fixed-K Estimate at opts.MaxK.
func AdaptiveEstimate(sp Sampler, opts AdaptiveOptions) AdaptiveResult {
	return core.AdaptiveEstimate(sp, opts)
}
