package relcomp

import (
	"math"
	"path/filepath"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	b := NewGraphBuilder(4)
	for _, e := range []Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 3, P: 0.8},
		{From: 0, To: 2, P: 0.5},
		{From: 2, To: 3, P: 0.7},
	} {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	want, err := ExactReliability(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k = 20000
	for _, est := range Estimators(g, 42, k) {
		got := est.Estimate(0, 3, k)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s: %.4f vs exact %.4f", est.Name(), got, want)
		}
	}
}

func TestFacadeConstructors(t *testing.T) {
	g, err := Dataset("lastFM", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []Estimator{
		NewMC(g, 1), NewBFSSharing(g, 1, 100), NewRHH(g, 1),
		NewRSS(g, 1), NewLazyProp(g, 1), NewProbTree(g, 1),
	} {
		r := est.Estimate(0, NodeID(g.NumNodes()-1), 100)
		if r < 0 || r > 1 {
			t.Errorf("%s: estimate %v out of range", est.Name(), r)
		}
	}
}

func TestFacadeDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("%d datasets", len(names))
	}
	if _, err := Dataset("bogus", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFacadeWorkloadAndSweep(t *testing.T) {
	g, err := Dataset("lastFM", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := QueryPairs(g, 5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("%d pairs", len(pairs))
	}
	res := ConvergenceSweep(NewRSS(g, 3), pairs, ConvergenceConfig{
		InitialK: 100, StepK: 100, MaxK: 2000, Repeats: 8, SeedBase: 4,
	})
	if len(res.Curve) == 0 {
		t.Error("empty sweep curve")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.graph")
	b := NewGraphBuilder(3)
	if err := b.AddEdge(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 1 || g2.Edge(0).P != 0.5 {
		t.Error("round trip changed the graph")
	}
}
