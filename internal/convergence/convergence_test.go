package convergence

import (
	"math"
	"testing"

	"relcomp/internal/core"
	"relcomp/internal/datasets"
	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
	"relcomp/internal/workload"
)

func smallGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	r := rng.New(19)
	b := uncertain.NewBuilder(10)
	for i := 0; i < 24; i++ {
		u, v := uncertain.NodeID(r.Intn(10)), uncertain.NodeID(r.Intn(10))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.2+0.6*r.Float64())
	}
	return b.Build()
}

func TestEvaluateUnbiased(t *testing.T) {
	g := smallGraph(t)
	pairs := []workload.Pair{{S: 0, T: 1}, {S: 1, T: 4}}
	est := core.NewMC(g, 3)
	ps := Evaluate(est, pairs, 2000, 20, 77)
	if len(ps.Mean) != 2 || len(ps.Var) != 2 {
		t.Fatalf("wrong shape: %d/%d", len(ps.Mean), len(ps.Var))
	}
	for i, p := range pairs {
		want, err := exact.Factoring(g, p.S, p.T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ps.Mean[i]-want) > 0.05 {
			t.Errorf("pair %d: mean %.4f, exact %.4f", i, ps.Mean[i], want)
		}
		if ps.Var[i] < 0 {
			t.Errorf("pair %d: negative variance", i)
		}
	}
	if ps.RK() <= 0 || ps.VK() < 0 || ps.Rho() < 0 {
		t.Error("aggregate metrics out of range")
	}
}

// TestVarianceShrinksWithK: the defining property behind the paper's
// convergence criterion.
func TestVarianceShrinksWithK(t *testing.T) {
	g := smallGraph(t)
	pairs := []workload.Pair{{S: 0, T: 1}}
	est := core.NewMC(g, 3)
	small := Evaluate(est, pairs, 100, 40, 5).VK()
	large := Evaluate(est, pairs, 3200, 40, 5).VK()
	if large >= small {
		t.Errorf("variance did not shrink: V(100)=%.3g V(3200)=%.3g", small, large)
	}
}

func TestSweepConverges(t *testing.T) {
	g := datasets.LastFM(0.05, 3)
	pairs, err := workload.Pairs(g, 5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	est := core.NewRSS(g, 3)
	res := Sweep(est, pairs, Config{
		InitialK: 100, StepK: 100, MaxK: 3000, Repeats: 10, SeedBase: 9,
	})
	if res.Name != "RSS" {
		t.Errorf("name %q", res.Name)
	}
	if res.ConvergedAt == 0 {
		t.Fatalf("RSS did not converge by K=3000; curve: %+v", res.Curve)
	}
	if res.AtConverged == nil {
		t.Fatal("no stats at convergence")
	}
	last := res.Curve[len(res.Curve)-1]
	if last.K != res.ConvergedAt || last.Rho >= DefaultRho {
		t.Errorf("curve end %+v inconsistent with convergence at %d", last, res.ConvergedAt)
	}
}

func TestSweepMaxKWithoutConvergence(t *testing.T) {
	g := smallGraph(t)
	pairs := []workload.Pair{{S: 0, T: 1}}
	est := core.NewMC(g, 3)
	// One step with tiny K and an impossible threshold.
	res := Sweep(est, pairs, Config{
		InitialK: 10, StepK: 10, MaxK: 20, Repeats: 5, Rho: 1e-12, SeedBase: 9,
	})
	if res.ConvergedAt != 0 || res.AtConverged != nil {
		t.Error("impossible threshold reported convergence")
	}
	if len(res.Curve) != 2 {
		t.Errorf("curve has %d points, want 2", len(res.Curve))
	}
}

// TestSweepCoversEveryPoint: the resumed sweep's doubling rounds must
// visit each configured sweep point exactly once, in order, whatever the
// InitialK/StepK/MaxK geometry.
func TestSweepCoversEveryPoint(t *testing.T) {
	g := smallGraph(t)
	pairs := []workload.Pair{{S: 0, T: 1}}
	for _, cfg := range []Config{
		{InitialK: 100, StepK: 100, MaxK: 800, Repeats: 2, Rho: 1e-12, SeedBase: 5},
		{InitialK: 50, StepK: 175, MaxK: 900, Repeats: 2, Rho: 1e-12, SeedBase: 5},
		{InitialK: 300, StepK: 50, MaxK: 450, Repeats: 2, Rho: 1e-12, SeedBase: 5},
	} {
		res := Sweep(core.NewMC(g, 3), pairs, cfg)
		var want []int
		for k := cfg.InitialK; k <= cfg.MaxK; k += cfg.StepK {
			want = append(want, k)
		}
		if len(res.Curve) != len(want) {
			t.Fatalf("cfg %+v: %d curve points, want %d", cfg, len(res.Curve), len(want))
		}
		for i, pt := range res.Curve {
			if pt.K != want[i] {
				t.Errorf("cfg %+v: point %d at K=%d, want %d", cfg, i, pt.K, want[i])
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitialK != 250 || c.StepK != 250 || c.Repeats != 100 || c.Rho != DefaultRho {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.MaxK <= c.InitialK {
		t.Errorf("MaxK default %d", c.MaxK)
	}
}

func TestRelativeError(t *testing.T) {
	re, err := RelativeError([]float64{0.11, 0.22}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re-0.1) > 1e-9 {
		t.Errorf("RE = %v, want 0.1", re)
	}
	// Zero baselines are skipped.
	re, err = RelativeError([]float64{0.5, 0.11}, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re-0.1) > 1e-6 {
		t.Errorf("RE with zero baseline = %v", re)
	}
	if _, err = RelativeError([]float64{0.5}, []float64{0}); err == nil {
		t.Error("all-zero baseline accepted")
	}
	if _, err = RelativeError([]float64{0.5}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPairwiseDeviation(t *testing.T) {
	if d := PairwiseDeviation(nil); d != 0 {
		t.Errorf("empty deviation %v", d)
	}
	if d := PairwiseDeviation([]float64{1}); d != 0 {
		t.Errorf("singleton deviation %v", d)
	}
	// Two estimators at RE 1 and 3: D = (|1-3|+|3-1|)/(2*1) = 2.
	if d := PairwiseDeviation([]float64{1, 3}); math.Abs(d-2) > 1e-12 {
		t.Errorf("deviation %v, want 2", d)
	}
	// Identical errors deviate by zero.
	if d := PairwiseDeviation([]float64{2, 2, 2}); d != 0 {
		t.Errorf("uniform deviation %v", d)
	}
}

func TestPairStatsRhoZeroReliability(t *testing.T) {
	ps := PairStats{K: 10, Mean: []float64{0}, Var: []float64{0}}
	if ps.Rho() != 0 {
		t.Errorf("rho of zero-reliability workload = %v, want 0 (converged)", ps.Rho())
	}
}

// TestFreshenResamplesIndex: BFS Sharing must give different estimates
// across freshen calls (new worlds), while reseeding MC changes its stream.
func TestFreshenResamplesIndex(t *testing.T) {
	g := smallGraph(t)
	bs := core.NewBFSSharing(g, 3, 400)
	seen := map[float64]bool{}
	for rep := 0; rep < 8; rep++ {
		freshen(bs, uint64(rep)*7919, 400)
		seen[bs.Estimate(0, 1, 400)] = true
	}
	if len(seen) < 2 {
		t.Error("freshen did not vary the BFS Sharing estimate")
	}
}

// TestEvaluateThenLargerKStaysFresh is the regression test for the BFS
// Sharing stale-tail hazard: Evaluate at a small K ends with the index
// prefix-resampled to that K, and a later estimate at a larger K used to
// read the zeroed slack of the prefix draw's last word plus a stale tail.
// On a certain graph (every edge probability 1) any such leftover shows
// up as an estimate below 1.
func TestEvaluateThenLargerKStaysFresh(t *testing.T) {
	b := uncertain.NewBuilder(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	g := b.Build()
	bs := core.NewBFSSharing(g, 3, 400)
	pairs := []workload.Pair{{S: 0, T: 2}}

	// Sweep-style increasing K: each Evaluate prefix-resamples to its K.
	for _, k := range []int{100, 150} {
		ps := Evaluate(bs, pairs, k, 3, 11)
		if ps.Mean[0] != 1 {
			t.Fatalf("K=%d: mean %v on a certain graph, want 1", k, ps.Mean[0])
		}
	}
	// A direct estimate above the last evaluated K must see only fully
	// drawn worlds.
	if got := bs.Estimate(0, 2, 400); got != 1 {
		t.Fatalf("Estimate at K=400 after prefix resamples = %v, want 1 (stale/zeroed tail)", got)
	}
}
