// Package convergence implements the paper's evaluation metrics and
// convergence criterion (Section 3.1.4):
//
//   - per-pair estimator variance over T repeated runs (Eq. 11),
//   - the averages V_K and R_K over the query workload (Eq. 12–13),
//   - the index of dispersion ρ_K = V_K / R_K, with convergence declared
//     when ρ_K < 0.001,
//   - relative error against MC at convergence (Eq. 14), and
//   - the pairwise deviation of relative errors across estimators (Eq. 15).
package convergence

import (
	"fmt"

	"relcomp/internal/core"
	"relcomp/internal/rng"
	"relcomp/internal/stats"
	"relcomp/internal/workload"
)

// DefaultRho is the paper's convergence threshold on the index of
// dispersion V_K / R_K.
const DefaultRho = 0.001

// Config controls a convergence sweep.
type Config struct {
	InitialK int     // first sample size (paper: 250)
	StepK    int     // increment between sweep points (paper: 250)
	MaxK     int     // hard cap on the sweep (0 means 10×InitialK steps)
	Repeats  int     // T, the repetitions behind each variance (paper: 100)
	Rho      float64 // convergence threshold (paper: 0.001)
	SeedBase uint64  // master seed for the repeat streams
}

// withDefaults fills unset fields with the paper's settings.
func (c Config) withDefaults() Config {
	if c.InitialK <= 0 {
		c.InitialK = 250
	}
	if c.StepK <= 0 {
		c.StepK = 250
	}
	if c.MaxK <= 0 {
		c.MaxK = c.InitialK + 10*c.StepK
	}
	if c.Repeats <= 0 {
		c.Repeats = 100
	}
	if c.Rho <= 0 {
		c.Rho = DefaultRho
	}
	if c.SeedBase == 0 {
		c.SeedBase = 0x5eed
	}
	return c
}

// resampler matches index-based estimators (BFS Sharing) whose pre-sampled
// worlds must be redrawn between independent runs; prefixResampler lets
// them redraw only the k bits a subsequent Estimate(k) will read.
type resampler interface{ Resample() }

type prefixResampler interface{ ResamplePrefix(k int) }

// freshen gives est a new random stream (and new index worlds) for one
// independent run at sample size k.
func freshen(est core.Estimator, seed uint64, k int) {
	if s, ok := est.(core.Seeder); ok {
		s.Reseed(seed)
	}
	if pr, ok := est.(prefixResampler); ok {
		pr.ResamplePrefix(k)
	} else if r, ok := est.(resampler); ok {
		r.Resample()
	}
}

// PairStats holds, per workload pair, the mean and variance of the T
// repeated estimates at one sample size K.
type PairStats struct {
	K    int
	Mean []float64 // R̄(s_i, t_i, K) over the T runs
	Var  []float64 // V(s_i, t_i, K), Eq. 11
}

// RK returns the workload-average reliability (Eq. 13).
func (p PairStats) RK() float64 { return stats.Mean(p.Mean) }

// VK returns the workload-average variance (Eq. 12).
func (p PairStats) VK() float64 { return stats.Mean(p.Var) }

// Rho returns the index of dispersion V_K / R_K (∞-guarded: 0 reliability
// with 0 variance counts as converged).
func (p PairStats) Rho() float64 {
	rk := p.RK()
	if rk == 0 {
		return 0
	}
	return p.VK() / rk
}

// Evaluate runs est T times on every pair with sample size k, reseeding
// between runs, and returns the per-pair means and variances.
func Evaluate(est core.Estimator, pairs []workload.Pair, k, repeats int, seedBase uint64) PairStats {
	if repeats < 1 {
		repeats = 1
	}
	master := rng.New(seedBase)
	ps := PairStats{
		K:    k,
		Mean: make([]float64, len(pairs)),
		Var:  make([]float64, len(pairs)),
	}
	for i, pr := range pairs {
		var w stats.Welford
		for rep := 0; rep < repeats; rep++ {
			freshen(est, master.Uint64(), k)
			w.Add(est.Estimate(pr.S, pr.T, k))
		}
		ps.Mean[i] = w.Mean()
		ps.Var[i] = w.Variance()
	}
	return ps
}

// Point is one sweep sample of the convergence curve (Fig. 7).
type Point struct {
	K   int
	VK  float64
	RK  float64
	Rho float64
}

// Result is a full convergence sweep for one estimator.
type Result struct {
	Name        string
	Curve       []Point
	ConvergedAt int        // K at convergence; 0 if MaxK reached without convergence
	AtConverged *PairStats // stats at the convergence K (nil if none)
}

// Sweep increases K from InitialK in steps of StepK until ρ_K < Rho or
// MaxK is exceeded, computing the variance of est at each point.
//
// Rather than re-running every sweep point from k = 0 (the historical
// behavior, quadratic in the number of points), the sweep resumes
// samplers between points: each (pair, repeat) run opens one incremental
// core.Sampler session and advances it through consecutive sweep points,
// recording the running estimate at each — for the natively incremental
// estimators a whole run costs one full-budget estimate instead of one
// per point. To keep the early-exit property (a sweep that converges at
// the first point must not pay for the last), points are processed in
// geometrically growing rounds: round r resumes runs through all points
// up to roughly 2^r·InitialK, convergence is checked after each round,
// and only unconverged sweeps start the next round. The restart cost at
// round boundaries is a constant factor of the converged budget — never
// more than the old per-point restarts, and up to points/2 times less.
func Sweep(est core.Estimator, pairs []workload.Pair, cfg Config) Result {
	cfg = cfg.withDefaults()
	res := Result{Name: est.Name()}

	// All sweep points, then their partition into doubling rounds.
	var ks []int
	for k := cfg.InitialK; k <= cfg.MaxK; k += cfg.StepK {
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return res
	}
	master := rng.New(cfg.SeedBase)
	lo := 0 // ks[lo:] not yet evaluated
	for round := 0; lo < len(ks); round++ {
		// This round covers the points in (prev target, target].
		target := cfg.InitialK << uint(round)
		hi := lo
		for hi < len(ks) && ks[hi] <= target {
			hi++
		}
		if hi == lo {
			continue // no sweep point in this doubling window
		}
		points := evaluateResumed(est, pairs, ks[lo:hi], cfg.Repeats, master)
		for i, ps := range points {
			pt := Point{K: ps.K, VK: ps.VK(), RK: ps.RK(), Rho: ps.Rho()}
			res.Curve = append(res.Curve, pt)
			if pt.Rho < cfg.Rho {
				res.ConvergedAt = ps.K
				res.AtConverged = &points[i]
				return res
			}
		}
		lo = hi
	}
	return res
}

// evaluateResumed computes the per-pair means and variances at every
// sample size in ks (ascending) with one resumed sampler session per
// (pair, repeat): the session is freshened once, then advanced through
// the points, recording its running estimate at each. For the natively
// incremental estimators the recorded estimates are bit-identical to
// fresh fixed-K runs of the same stream; the restart-adapted recursive
// estimators re-run per point exactly as the historical sweep did.
func evaluateResumed(est core.Estimator, pairs []workload.Pair, ks []int, repeats int, master *rng.Source) []PairStats {
	if repeats < 1 {
		repeats = 1
	}
	maxK := ks[len(ks)-1]
	welford := make([][]stats.Welford, len(ks)) // [point][pair]
	for j := range welford {
		welford[j] = make([]stats.Welford, len(pairs))
	}
	for i, pr := range pairs {
		for rep := 0; rep < repeats; rep++ {
			// One freshen per run: new stream, and for index-based
			// estimators new pre-sampled worlds covering the whole round
			// (the run reads bits [0, maxK) exactly once).
			freshen(est, master.Uint64(), maxK)
			sp := core.NewSampler(est, pr.S, pr.T)
			n := 0
			for j, k := range ks {
				sp.Advance(k - n)
				n = k
				welford[j][i].Add(sp.Snapshot().Estimate)
			}
		}
	}
	out := make([]PairStats, len(ks))
	for j, k := range ks {
		ps := PairStats{
			K:    k,
			Mean: make([]float64, len(pairs)),
			Var:  make([]float64, len(pairs)),
		}
		for i := range pairs {
			ps.Mean[i] = welford[j][i].Mean()
			ps.Var[i] = welford[j][i].Variance()
		}
		out[j] = ps
	}
	return out
}

// RelativeError computes Eq. 14: the mean over pairs of
// |R(s_i,t_i,K) − base_i| / base_i, where base is MC's per-pair reliability
// at convergence. Pairs whose baseline is zero are skipped (their relative
// error is undefined); an error is returned if every baseline is zero.
func RelativeError(estimate, base []float64) (float64, error) {
	if len(estimate) != len(base) {
		return 0, fmt.Errorf("convergence: %d estimates vs %d baselines", len(estimate), len(base))
	}
	sum, n := 0.0, 0
	for i := range base {
		if base[i] == 0 {
			continue
		}
		d := estimate[i] - base[i]
		if d < 0 {
			d = -d
		}
		sum += d / base[i]
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("convergence: all baseline reliabilities are zero")
	}
	return sum / float64(n), nil
}

// PairwiseDeviation computes Eq. 15 over the relative errors of the
// estimators: D = 1/(k(k-1)) ΣΣ |RE(i) − RE(j)| for k estimators.
func PairwiseDeviation(res []float64) float64 {
	k := len(res)
	if k < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			d := res[i] - res[j]
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum / float64(k*(k-1))
}
