// Package convergence implements the paper's evaluation metrics and
// convergence criterion (Section 3.1.4):
//
//   - per-pair estimator variance over T repeated runs (Eq. 11),
//   - the averages V_K and R_K over the query workload (Eq. 12–13),
//   - the index of dispersion ρ_K = V_K / R_K, with convergence declared
//     when ρ_K < 0.001,
//   - relative error against MC at convergence (Eq. 14), and
//   - the pairwise deviation of relative errors across estimators (Eq. 15).
package convergence

import (
	"fmt"

	"relcomp/internal/core"
	"relcomp/internal/rng"
	"relcomp/internal/stats"
	"relcomp/internal/workload"
)

// DefaultRho is the paper's convergence threshold on the index of
// dispersion V_K / R_K.
const DefaultRho = 0.001

// Config controls a convergence sweep.
type Config struct {
	InitialK int     // first sample size (paper: 250)
	StepK    int     // increment between sweep points (paper: 250)
	MaxK     int     // hard cap on the sweep (0 means 10×InitialK steps)
	Repeats  int     // T, the repetitions behind each variance (paper: 100)
	Rho      float64 // convergence threshold (paper: 0.001)
	SeedBase uint64  // master seed for the repeat streams
}

// withDefaults fills unset fields with the paper's settings.
func (c Config) withDefaults() Config {
	if c.InitialK <= 0 {
		c.InitialK = 250
	}
	if c.StepK <= 0 {
		c.StepK = 250
	}
	if c.MaxK <= 0 {
		c.MaxK = c.InitialK + 10*c.StepK
	}
	if c.Repeats <= 0 {
		c.Repeats = 100
	}
	if c.Rho <= 0 {
		c.Rho = DefaultRho
	}
	if c.SeedBase == 0 {
		c.SeedBase = 0x5eed
	}
	return c
}

// resampler matches index-based estimators (BFS Sharing) whose pre-sampled
// worlds must be redrawn between independent runs; prefixResampler lets
// them redraw only the k bits a subsequent Estimate(k) will read.
type resampler interface{ Resample() }

type prefixResampler interface{ ResamplePrefix(k int) }

// freshen gives est a new random stream (and new index worlds) for one
// independent run at sample size k.
func freshen(est core.Estimator, seed uint64, k int) {
	if s, ok := est.(core.Seeder); ok {
		s.Reseed(seed)
	}
	if pr, ok := est.(prefixResampler); ok {
		pr.ResamplePrefix(k)
	} else if r, ok := est.(resampler); ok {
		r.Resample()
	}
}

// PairStats holds, per workload pair, the mean and variance of the T
// repeated estimates at one sample size K.
type PairStats struct {
	K    int
	Mean []float64 // R̄(s_i, t_i, K) over the T runs
	Var  []float64 // V(s_i, t_i, K), Eq. 11
}

// RK returns the workload-average reliability (Eq. 13).
func (p PairStats) RK() float64 { return stats.Mean(p.Mean) }

// VK returns the workload-average variance (Eq. 12).
func (p PairStats) VK() float64 { return stats.Mean(p.Var) }

// Rho returns the index of dispersion V_K / R_K (∞-guarded: 0 reliability
// with 0 variance counts as converged).
func (p PairStats) Rho() float64 {
	rk := p.RK()
	if rk == 0 {
		return 0
	}
	return p.VK() / rk
}

// Evaluate runs est T times on every pair with sample size k, reseeding
// between runs, and returns the per-pair means and variances.
func Evaluate(est core.Estimator, pairs []workload.Pair, k, repeats int, seedBase uint64) PairStats {
	if repeats < 1 {
		repeats = 1
	}
	master := rng.New(seedBase)
	ps := PairStats{
		K:    k,
		Mean: make([]float64, len(pairs)),
		Var:  make([]float64, len(pairs)),
	}
	for i, pr := range pairs {
		var w stats.Welford
		for rep := 0; rep < repeats; rep++ {
			freshen(est, master.Uint64(), k)
			w.Add(est.Estimate(pr.S, pr.T, k))
		}
		ps.Mean[i] = w.Mean()
		ps.Var[i] = w.Variance()
	}
	return ps
}

// Point is one sweep sample of the convergence curve (Fig. 7).
type Point struct {
	K   int
	VK  float64
	RK  float64
	Rho float64
}

// Result is a full convergence sweep for one estimator.
type Result struct {
	Name        string
	Curve       []Point
	ConvergedAt int        // K at convergence; 0 if MaxK reached without convergence
	AtConverged *PairStats // stats at the convergence K (nil if none)
}

// Sweep increases K from InitialK in steps of StepK until ρ_K < Rho or
// MaxK is exceeded, computing the variance of est at each point.
func Sweep(est core.Estimator, pairs []workload.Pair, cfg Config) Result {
	cfg = cfg.withDefaults()
	res := Result{Name: est.Name()}
	for k := cfg.InitialK; k <= cfg.MaxK; k += cfg.StepK {
		ps := Evaluate(est, pairs, k, cfg.Repeats, cfg.SeedBase+uint64(k))
		pt := Point{K: k, VK: ps.VK(), RK: ps.RK(), Rho: ps.Rho()}
		res.Curve = append(res.Curve, pt)
		if pt.Rho < cfg.Rho {
			res.ConvergedAt = k
			res.AtConverged = &ps
			return res
		}
	}
	return res
}

// RelativeError computes Eq. 14: the mean over pairs of
// |R(s_i,t_i,K) − base_i| / base_i, where base is MC's per-pair reliability
// at convergence. Pairs whose baseline is zero are skipped (their relative
// error is undefined); an error is returned if every baseline is zero.
func RelativeError(estimate, base []float64) (float64, error) {
	if len(estimate) != len(base) {
		return 0, fmt.Errorf("convergence: %d estimates vs %d baselines", len(estimate), len(base))
	}
	sum, n := 0.0, 0
	for i := range base {
		if base[i] == 0 {
			continue
		}
		d := estimate[i] - base[i]
		if d < 0 {
			d = -d
		}
		sum += d / base[i]
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("convergence: all baseline reliabilities are zero")
	}
	return sum / float64(n), nil
}

// PairwiseDeviation computes Eq. 15 over the relative errors of the
// estimators: D = 1/(k(k-1)) ΣΣ |RE(i) − RE(j)| for k estimators.
func PairwiseDeviation(res []float64) float64 {
	k := len(res)
	if k < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			d := res[i] - res[j]
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum / float64(k*(k-1))
}
