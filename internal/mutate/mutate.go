// Package mutate is the dynamic-graph subsystem's bookkeeping layer: the
// typed mutation vocabulary (UpdateEdgeProb / AddEdge / RemoveEdge), the
// append-only epoch-stamped mutation log with a bounded replay buffer,
// and the sidecar text format that persists a log next to a snapshot so
// a cold start can replay itself forward to the live epoch.
//
// The package is deliberately mechanism-free: translating mutations into
// a successor graph is uncertain.ApplyDeltas, and index repair plus cache
// invalidation live in the engine. Everything here is the durable,
// replayable record of what changed and in which order.
package mutate

import (
	"fmt"
	"sync"

	"relcomp/internal/uncertain"
)

// Op identifies one mutation verb.
type Op uint8

const (
	// OpUpdate replaces an existing edge's probability (p in (0,1]; use
	// OpRemove for 0).
	OpUpdate Op = iota + 1
	// OpAdd creates the edge (p in (0,1]): a brand-new adjacency gets a
	// fresh edge id, a tombstoned pair is resurrected under its old id,
	// and an existing live pair is treated as an update.
	OpAdd
	// OpRemove tombstones the edge: it keeps its id and adjacency slot
	// but drops to probability 0, existing in no possible world.
	OpRemove
)

// String returns the wire name of the op ("update", "add", "remove").
func (o Op) String() string {
	switch o {
	case OpUpdate:
		return "update"
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp inverts String.
func ParseOp(s string) (Op, error) {
	switch s {
	case "update":
		return OpUpdate, nil
	case "add":
		return OpAdd, nil
	case "remove":
		return OpRemove, nil
	}
	return 0, fmt.Errorf("mutate: unknown op %q", s)
}

// Mutation is one edge change, addressed by endpoints (ids stay stable
// across mutations, but endpoints survive degree relabeling and are what
// clients naturally speak).
type Mutation struct {
	Op   Op
	From uncertain.NodeID
	To   uncertain.NodeID
	P    float64 // OpUpdate / OpAdd only
}

// Delta translates the mutation into the uncertain-layer edit.
func (m Mutation) Delta() uncertain.EdgeDelta {
	d := uncertain.EdgeDelta{From: m.From, To: m.To, P: m.P}
	if m.Op == OpRemove {
		d.P = 0
	}
	return d
}

// Check validates the mutation's shape against a graph: op known,
// endpoints in range, no self loop, probability legal for the op.
// Existence checks (update of an absent pair) are left to ApplyDeltas,
// which sees the batch's cumulative state.
func (m Mutation) Check(g *uncertain.Graph) error {
	n := uncertain.NodeID(g.NumNodes())
	switch m.Op {
	case OpUpdate, OpAdd:
		if !(m.P > 0 && m.P <= 1) {
			return fmt.Errorf("mutate: %s (%d,%d) probability %v outside (0,1]", m.Op, m.From, m.To, m.P)
		}
	case OpRemove:
	default:
		return fmt.Errorf("mutate: unknown op %d", m.Op)
	}
	if m.From < 0 || m.From >= n || m.To < 0 || m.To >= n {
		return fmt.Errorf("mutate: %s edge (%d,%d) out of range [0,%d)", m.Op, m.From, m.To, n)
	}
	if m.From == m.To {
		return fmt.Errorf("mutate: %s self loop at node %d", m.Op, m.From)
	}
	if m.Op == OpUpdate && g.FindEdge(m.From, m.To) < 0 {
		return fmt.Errorf("mutate: update of absent edge (%d,%d); use add", m.From, m.To)
	}
	return nil
}

// Batch is one committed group of mutations: the unit of atomicity and
// epoch numbering. Epoch e is the state after applying batches 1..e in
// order to the epoch-0 base graph.
type Batch struct {
	Epoch uint64
	Muts  []Mutation
}

// Log is the append-only, epoch-stamped mutation log with a bounded
// replay buffer: the most recent Limit batches stay replayable; older
// ones are trimmed (their effect lives on in the graph, only replay
// loses reach). Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	base    uint64 // epoch of the state before batches[0]
	batches []Batch
	limit   int
}

// DefaultLogLimit bounds the replay buffer when NewLog is given no
// explicit limit.
const DefaultLogLimit = 1024

// NewLog returns an empty log whose replay buffer keeps up to limit
// batches (<= 0 selects DefaultLogLimit). base is the epoch of the
// initial state — 0 for a fresh graph, the manifest epoch when resuming
// from a snapshot-plus-sidecar pair.
func NewLog(base uint64, limit int) *Log {
	if limit <= 0 {
		limit = DefaultLogLimit
	}
	return &Log{base: base, limit: limit}
}

// Append records a committed batch. Epochs must chain: the batch's epoch
// is exactly the log's latest epoch plus one.
func (l *Log) Append(b Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if want := l.latestLocked() + 1; b.Epoch != want {
		return fmt.Errorf("mutate: batch epoch %d does not chain (want %d)", b.Epoch, want)
	}
	l.batches = append(l.batches, b)
	if len(l.batches) > l.limit {
		drop := len(l.batches) - l.limit
		l.base += uint64(drop)
		l.batches = append(l.batches[:0], l.batches[drop:]...)
	}
	return nil
}

func (l *Log) latestLocked() uint64 {
	return l.base + uint64(len(l.batches))
}

// LatestEpoch returns the epoch of the newest recorded batch (the base
// epoch if none).
func (l *Log) LatestEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.latestLocked()
}

// Since returns copies of every retained batch with epoch > epoch, in
// order. ok is false when the request reaches behind the replay buffer
// (trimmed history): the caller cannot catch up by replay alone.
func (l *Log) Since(epoch uint64) (batches []Batch, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch < l.base {
		return nil, false
	}
	if epoch >= l.latestLocked() {
		return nil, true
	}
	return append([]Batch(nil), l.batches[epoch-l.base:]...), true
}

// Len returns the number of retained batches.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.batches)
}
