package mutate

import (
	"strings"
	"testing"

	"relcomp/internal/uncertain"
)

func testGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(4)
	for _, e := range []uncertain.Edge{
		{From: 0, To: 1, P: 0.5}, {From: 1, To: 2, P: 0.25},
	} {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{OpUpdate, OpAdd, OpRemove} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOp("upsert"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestMutationCheck(t *testing.T) {
	g := testGraph(t)
	ok := []Mutation{
		{Op: OpUpdate, From: 0, To: 1, P: 0.9},
		{Op: OpAdd, From: 2, To: 3, P: 1},
		{Op: OpRemove, From: 0, To: 1},
		{Op: OpRemove, From: 2, To: 3}, // absent remove: shape-valid, ApplyDeltas decides
	}
	for _, m := range ok {
		if err := m.Check(g); err != nil {
			t.Errorf("Check(%+v) = %v", m, err)
		}
	}
	bad := []Mutation{
		{Op: OpUpdate, From: 0, To: 1, P: 0},
		{Op: OpUpdate, From: 0, To: 1, P: 1.01},
		{Op: OpAdd, From: 0, To: 9, P: 0.5},
		{Op: OpAdd, From: -1, To: 1, P: 0.5},
		{Op: OpAdd, From: 1, To: 1, P: 0.5},
		{Op: OpUpdate, From: 0, To: 3, P: 0.5}, // absent pair
		{Op: Op(9), From: 0, To: 1},
	}
	for _, m := range bad {
		if err := m.Check(g); err == nil {
			t.Errorf("Check(%+v) accepted", m)
		}
	}
	if d := (Mutation{Op: OpRemove, From: 0, To: 1, P: 0.7}).Delta(); d.P != 0 {
		t.Fatalf("remove delta carries probability %v", d.P)
	}
}

func TestLogChainingAndTrim(t *testing.T) {
	l := NewLog(10, 3)
	if got := l.LatestEpoch(); got != 10 {
		t.Fatalf("empty log latest = %d, want base 10", got)
	}
	if err := l.Append(Batch{Epoch: 12}); err == nil {
		t.Fatal("gap epoch accepted")
	}
	for ep := uint64(11); ep <= 15; ep++ {
		if err := l.Append(Batch{Epoch: ep, Muts: []Mutation{{Op: OpRemove, From: 0, To: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 3 || l.LatestEpoch() != 15 {
		t.Fatalf("after trim: len=%d latest=%d, want 3/15", l.Len(), l.LatestEpoch())
	}

	// Replay from inside the buffer works; from behind it reports !ok.
	if got, ok := l.Since(13); !ok || len(got) != 2 || got[0].Epoch != 14 {
		t.Fatalf("Since(13) = %d batches, ok=%v", len(got), ok)
	}
	if got, ok := l.Since(15); !ok || got != nil {
		t.Fatalf("Since(latest) = %v, ok=%v", got, ok)
	}
	if _, ok := l.Since(11); ok {
		t.Fatal("Since behind the trimmed buffer claimed ok")
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	// 0.1 has no short decimal float64 representation: the 'g'/-1
	// formatting must still round-trip it bit-exactly.
	batches := []Batch{
		{Epoch: 3, Muts: []Mutation{
			{Op: OpUpdate, From: 0, To: 1, P: 0.1},
			{Op: OpRemove, From: 1, To: 2},
		}},
		{Epoch: 4, Muts: []Mutation{{Op: OpAdd, From: 2, To: 3, P: 1e-9}}},
	}
	var sb strings.Builder
	if err := WriteSidecar(&sb, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSidecar(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("%d batches, want %d", len(got), len(batches))
	}
	for i, b := range batches {
		if got[i].Epoch != b.Epoch || len(got[i].Muts) != len(b.Muts) {
			t.Fatalf("batch %d shape mismatch: %+v", i, got[i])
		}
		for j, m := range b.Muts {
			if got[i].Muts[j] != m {
				t.Fatalf("batch %d mut %d: got %+v, want %+v", i, j, got[i].Muts[j], m)
			}
		}
	}
}

func TestSidecarRejectsCorruption(t *testing.T) {
	for name, text := range map[string]string{
		"bad magic":     "RELMUT9\nbatch 1 0\n",
		"epoch gap":     "RELMUT1\nbatch 1 0\nbatch 3 0\n",
		"truncated":     "RELMUT1\nbatch 1 2\nu 0 1 0.5\n",
		"bad verb":      "RELMUT1\nbatch 1 1\nx 0 1 0.5\n",
		"bad prob":      "RELMUT1\nbatch 1 1\nu 0 1 zero\n",
		"short line":    "RELMUT1\nbatch 1 1\nu 0\n",
		"remove with p": "RELMUT1\nbatch 1 1\nr 0 1 0.5\n",
	} {
		if _, err := ReadSidecar(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Header-only and comment/blank-tolerant files are fine.
	if got, err := ReadSidecar(strings.NewReader("RELMUT1\n\n# trailing comment\n")); err != nil || got != nil {
		t.Fatalf("header-only sidecar: %v, %v", got, err)
	}
}
