package mutate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"relcomp/internal/uncertain"
)

// Sidecar format: the on-disk mutation log that rides next to a snapshot
// (<snapshot>.mutlog by convention) so a -snapshot start can replay
// itself from the manifest epoch to the live epoch. The format is
// line-oriented text — a mutation log is small relative to the snapshot
// it chases, and a format an operator can read and truncate with a text
// editor beats a binary one here:
//
//	RELMUT1
//	batch <epoch> <count>
//	u <from> <to> <p>      (update)
//	a <from> <to> <p>      (add)
//	r <from> <to>          (remove)
//
// Probabilities are written with strconv 'g'/-1 so they round-trip to
// the exact float64, preserving the bit-identity contract across a
// write/replay cycle. Epochs within a file must be contiguous; chaining
// against the snapshot's manifest epoch is the caller's check
// (relsnap verify, the server's replay path).

// SidecarMagic is the first line of every sidecar file.
const SidecarMagic = "RELMUT1"

// SidecarPath returns the conventional sidecar path for a snapshot file.
func SidecarPath(snapshot string) string { return snapshot + ".mutlog" }

// WriteSidecarHeader starts a new sidecar file.
func WriteSidecarHeader(w io.Writer) error {
	_, err := io.WriteString(w, SidecarMagic+"\n")
	return err
}

// AppendSidecar appends one committed batch. The caller is responsible
// for ordering (epochs must stay contiguous) and durability (flush).
func AppendSidecar(w io.Writer, b Batch) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch %d %d\n", b.Epoch, len(b.Muts))
	for _, m := range b.Muts {
		switch m.Op {
		case OpUpdate:
			fmt.Fprintf(&sb, "u %d %d %s\n", m.From, m.To, strconv.FormatFloat(m.P, 'g', -1, 64))
		case OpAdd:
			fmt.Fprintf(&sb, "a %d %d %s\n", m.From, m.To, strconv.FormatFloat(m.P, 'g', -1, 64))
		case OpRemove:
			fmt.Fprintf(&sb, "r %d %d\n", m.From, m.To)
		default:
			return fmt.Errorf("mutate: sidecar cannot encode op %d", m.Op)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteSidecar writes a complete sidecar file: header plus every batch.
func WriteSidecar(w io.Writer, batches []Batch) error {
	if err := WriteSidecarHeader(w); err != nil {
		return err
	}
	for _, b := range batches {
		if err := AppendSidecar(w, b); err != nil {
			return err
		}
	}
	return nil
}

// ReadSidecar parses a sidecar file, checking the magic, per-line shape,
// and that batch epochs are contiguous within the file. It returns the
// batches in order; an empty file (header only) returns nil.
func ReadSidecar(r io.Reader) ([]Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}

	head, ok := next()
	if !ok || head != SidecarMagic {
		return nil, fmt.Errorf("mutate: sidecar line %d: bad magic (want %q)", line, SidecarMagic)
	}

	var batches []Batch
	for {
		s, ok := next()
		if !ok {
			break
		}
		var epoch uint64
		var count int
		if n, err := fmt.Sscanf(s, "batch %d %d", &epoch, &count); n != 2 || err != nil {
			return nil, fmt.Errorf("mutate: sidecar line %d: want %q, got %q", line, "batch <epoch> <count>", s)
		}
		if count < 0 {
			return nil, fmt.Errorf("mutate: sidecar line %d: negative count %d", line, count)
		}
		if len(batches) > 0 && epoch != batches[len(batches)-1].Epoch+1 {
			return nil, fmt.Errorf("mutate: sidecar line %d: epoch %d does not chain from %d", line, epoch, batches[len(batches)-1].Epoch)
		}
		b := Batch{Epoch: epoch, Muts: make([]Mutation, 0, count)}
		for i := 0; i < count; i++ {
			s, ok := next()
			if !ok {
				return nil, fmt.Errorf("mutate: sidecar truncated inside batch %d (%d/%d mutations)", epoch, i, count)
			}
			m, err := parseMutLine(s)
			if err != nil {
				return nil, fmt.Errorf("mutate: sidecar line %d: %v", line, err)
			}
			b.Muts = append(b.Muts, m)
		}
		batches = append(batches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mutate: sidecar read: %v", err)
	}
	return batches, nil
}

func parseMutLine(s string) (Mutation, error) {
	f := strings.Fields(s)
	if len(f) < 3 {
		return Mutation{}, fmt.Errorf("short mutation line %q", s)
	}
	from, err1 := strconv.ParseInt(f[1], 10, 32)
	to, err2 := strconv.ParseInt(f[2], 10, 32)
	if err1 != nil || err2 != nil {
		return Mutation{}, fmt.Errorf("bad endpoints in %q", s)
	}
	m := Mutation{From: uncertain.NodeID(from), To: uncertain.NodeID(to)}
	switch f[0] {
	case "u", "a":
		if len(f) != 4 {
			return Mutation{}, fmt.Errorf("want \"%s <from> <to> <p>\", got %q", f[0], s)
		}
		p, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return Mutation{}, fmt.Errorf("bad probability in %q", s)
		}
		m.P = p
		if f[0] == "u" {
			m.Op = OpUpdate
		} else {
			m.Op = OpAdd
		}
	case "r":
		if len(f) != 3 {
			return Mutation{}, fmt.Errorf("want \"r <from> <to>\", got %q", s)
		}
		m.Op = OpRemove
	default:
		return Mutation{}, fmt.Errorf("unknown mutation verb %q", f[0])
	}
	return m, nil
}
