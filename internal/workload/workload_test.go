package workload

import (
	"testing"

	"relcomp/internal/datasets"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

func chain(n int) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 0.5)
	}
	return b.Build()
}

func TestPairsExactDistance(t *testing.T) {
	g := datasets.LastFM(0.05, 3)
	for _, h := range []int{1, 2, 3} {
		pairs, err := Pairs(g, 20, h, 7)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if len(pairs) != 20 {
			t.Fatalf("h=%d: got %d pairs", h, len(pairs))
		}
		seen := map[Pair]bool{}
		for _, p := range pairs {
			if seen[p] {
				t.Errorf("duplicate pair %v", p)
			}
			seen[p] = true
			d := g.HopDistances(p.S, h)
			if int(d[p.T]) != h {
				t.Errorf("pair %v at distance %d, want %d", p, d[p.T], h)
			}
		}
	}
}

func TestPairsDeterministic(t *testing.T) {
	g := datasets.NetHEPT(0.05, 3)
	a, err := Pairs(g, 10, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pairs(g, 10, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c, err := Pairs(g, 10, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestPairsValidation(t *testing.T) {
	g := chain(5)
	if _, err := Pairs(g, 0, 2, 1); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := Pairs(g, 5, 0, 1); err == nil {
		t.Error("hops 0 accepted")
	}
	if _, err := Pairs(uncertain.NewBuilder(1).Build(), 1, 1, 1); err == nil {
		t.Error("single-node graph accepted")
	}
}

func TestPairsInfeasible(t *testing.T) {
	// A 3-node chain has only two pairs at distance 1 and one at distance
	// 2; asking for more must fail rather than loop forever.
	g := chain(3)
	if _, err := Pairs(g, 5, 2, 1); err == nil {
		t.Error("infeasible workload accepted")
	}
	// Distance beyond the diameter.
	if _, err := Pairs(g, 1, 10, 1); err == nil {
		t.Error("unreachable distance accepted")
	}
}

func TestPairsSmallFeasible(t *testing.T) {
	g := chain(4)
	pairs, err := Pairs(g, 1, 3, rng.New(1).Uint64())
	if err != nil {
		t.Fatal(err)
	}
	if pairs[0].S != 0 || pairs[0].T != 3 {
		t.Errorf("unique distance-3 pair is (0,3), got %v", pairs[0])
	}
}
