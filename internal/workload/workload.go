// Package workload generates the s-t query workloads of the paper's
// evaluation: pairs of distinct nodes whose shortest-path distance over the
// graph skeleton is exactly h hops (h = 2 by default; the sensitivity study
// of Section 3.9 uses h up to 8). The same pairs are used for every
// estimator on a dataset, which is the paper's central fairness requirement.
package workload

import (
	"fmt"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// Pair is one s-t reliability query.
type Pair struct {
	S, T uncertain.NodeID
}

// Pairs draws count distinct s-t pairs at exact hop distance h: sources are
// sampled uniformly, and for each source one target is picked uniformly
// among the nodes exactly h hops away (paper §3.1.3). Sources without any
// h-hop target are redrawn. It returns an error if the graph cannot supply
// count distinct pairs within a bounded number of attempts.
func Pairs(g *uncertain.Graph, count, h int, seed uint64) ([]Pair, error) {
	if count <= 0 {
		return nil, fmt.Errorf("workload: pair count %d must be positive", count)
	}
	if h <= 0 {
		return nil, fmt.Errorf("workload: hop distance %d must be positive", h)
	}
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("workload: graph has %d nodes, need at least 2", n)
	}
	r := rng.New(seed)
	seen := make(map[Pair]bool, count)
	pairs := make([]Pair, 0, count)
	candidates := make([]uncertain.NodeID, 0, 256)

	maxAttempts := 200 * count
	for attempt := 0; attempt < maxAttempts && len(pairs) < count; attempt++ {
		s := uncertain.NodeID(r.Intn(n))
		dist := g.HopDistances(s, h)
		candidates = candidates[:0]
		for v, d := range dist {
			if int(d) == h {
				candidates = append(candidates, uncertain.NodeID(v))
			}
		}
		if len(candidates) == 0 {
			continue
		}
		t := candidates[r.Intn(len(candidates))]
		p := Pair{S: s, T: t}
		if seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	if len(pairs) < count {
		return nil, fmt.Errorf("workload: only found %d/%d pairs at distance %d", len(pairs), count, h)
	}
	return pairs, nil
}
