package engine

import (
	"sync"

	"relcomp/internal/bounds"
	"relcomp/internal/uncertain"
)

// router picks an estimator for queries that do not name one, following
// the paper's selection guidance (§7, Table 17):
//
//   - The polynomial-time path/cut bounds are computed first. When they
//     pinch the reliability into a narrow interval, sampling is pointless
//     (the paper's "theory" branch answers the query outright) and the
//     router short-circuits with the interval midpoint.
//   - Hard queries — wide bounds mean high estimator variance — go to the
//     most accurate method available. The paper ranks RSS first on
//     accuracy, then RHH, with MC the robust baseline.
//   - Easy-but-unbounded queries go to whichever candidate currently has
//     the lowest observed latency. Candidates without a sample yet are
//     explored first, ordered by the paper's online-time ranking
//     (ProbTree and LP+ fastest per query, BFSSharing fast but K-bound,
//     MC the slowest of the recommended set), so every estimator gets
//     measured before EWMAs decide.
//
// Online latency is tracked per estimator as an exponentially weighted
// moving average fed by the engine after every non-cached query, so the
// routing adapts to the actual graph: e.g. on dense graphs where lazy
// propagation degenerates, LP+'s EWMA grows and traffic shifts away from
// it without configuration.
type router struct {
	cutoff     float64  // bounds width below which no sampling is needed
	hardWidth  float64  // bounds width above which accuracy dominates
	candidates []string // estimator names the router may pick, engine order

	// memo caches the (lo, hi) bounds per (s, t, source-epoch tag): the
	// bounds are static properties of one epoch's graph, and computing
	// them walks a large part of it, so repeated adaptive queries
	// (including bounds-pinched ones) must not pay that walk every time.
	// The caller passes the graph per call (it changes across mutation
	// epochs) and the source's invalidation tag, which keys entries so a
	// mutation reachable from s orphans s's memoized bounds while every
	// other source keeps hitting. There is no in-flight dedup —
	// concurrent first queries for one (s, t) may race to fill the entry
	// (benign: the walks return identical values).
	memo *lruCache[[2]float64]

	mu      sync.Mutex
	latency map[string]float64 // EWMA seconds per query; 0 = no sample yet
	routed  map[string]uint64  // decisions per estimator
	pinched uint64             // bounds short-circuits
}

// accuracyRank orders estimators by the paper's measured relative error at
// convergence (lower is better). Unlisted estimators rank last.
var accuracyRank = map[string]int{
	"RSS":            0,
	"RHH":            1,
	"MC":             2,
	"PackMC":         2, // statistically identical to MC
	"PackMC256":      2, // bit-identical to PackMC
	"PackMC512":      2, // bit-identical to PackMC
	"ParallelMC":     2, // statistically identical to MC
	"ParallelPackMC": 2, // bit-identical to PackMC
	"ProbTree":       3,
	"BFSSharing":     4,
	"LP+":            5,
}

// latencyPrior orders estimators by per-query online time (the paper's
// measurements, with the word-packed extensions slotted in: PackMC does
// MC's work ~64 worlds per traversal, and the wide kernels amortize that
// traversal over 256/512 worlds, so the widest sits first among the
// samplers); it only breaks ties until real measurements arrive.
var latencyPrior = map[string]int{
	"ProbTree":       0,
	"PackMC512":      1,
	"PackMC256":      2,
	"PackMC":         3,
	"LP+":            4,
	"BFSSharing":     5,
	"RSS":            6,
	"RHH":            7,
	"ParallelPackMC": 8,
	"ParallelMC":     9,
	"MC":             10,
}

const (
	defaultBoundsCutoff = 0.02
	defaultHardWidth    = 0.25
	latencyEWMAWeight   = 0.2
)

func newRouter(candidates []string, cutoff, hardWidth float64, memoSize int) *router {
	if cutoff <= 0 {
		cutoff = defaultBoundsCutoff
	}
	if hardWidth <= 0 {
		hardWidth = defaultHardWidth
	}
	return &router{
		cutoff:     cutoff,
		hardWidth:  hardWidth,
		candidates: candidates,
		memo:       newLRUCache[[2]float64](memoSize),
		latency:    make(map[string]float64, len(candidates)),
		routed:     make(map[string]uint64, len(candidates)),
	}
}

// decision is the router's verdict for one query.
type decision struct {
	estimator string  // chosen estimator; "" when pinched
	pinched   bool    // bounds answered the query outright
	value     float64 // midpoint estimate when pinched
	// width and prior carry the bounds interval forward: the adaptive
	// stopping layer seeds its chunk schedule from the midpoint prior and
	// classifies the query hard/easy from the width.
	width float64
	prior float64
}

// hard reports whether the decision's bounds interval marks the query as
// hard (high estimator variance expected).
func (d decision) hard(hardWidth float64) bool { return d.width > hardWidth }

// boundsFor returns the memoized analytic bounds for (s, t) on g, keyed
// by the source's invalidation tag.
func (r *router) boundsFor(g *uncertain.Graph, tag uint64, s, t uncertain.NodeID) (lo, hi float64) {
	memoKey := cacheKey{s: s, t: t, epoch: tag}
	if b, ok := r.memo.get(memoKey); ok {
		return b[0], b[1]
	}
	lo, hi, err := bounds.Bounds(g, s, t)
	if err != nil {
		// Out-of-range queries are caught by engine validation before
		// routing; a bounds failure here means a degenerate graph, so
		// fall through to the accuracy-ranked choice with a maximally
		// wide interval.
		lo, hi = 0, 1
	}
	r.memo.put(memoKey, [2]float64{lo, hi})
	return lo, hi
}

// peekBounds returns the memoized bounds for (s, t) at the source tag
// without computing, filling, or counting anything — the admission
// controller's cost estimator consults it on every request, and a cost
// estimate must neither pay the bounds walk nor skew the memo stats. ok
// is false when the pair has not been routed yet (at this tag).
func (r *router) peekBounds(tag uint64, s, t uncertain.NodeID) (lo, hi float64, ok bool) {
	b, ok := r.memo.peek(cacheKey{s: s, t: t, epoch: tag})
	if !ok {
		return 0, 1, false
	}
	return b[0], b[1], true
}

// midpoint answers a query from the bounds alone, regardless of width —
// the explicitly requested "bounds" pseudo-estimator.
func (r *router) midpoint(g *uncertain.Graph, tag uint64, s, t uncertain.NodeID) float64 {
	lo, hi := r.boundsFor(g, tag, s, t)
	r.notePinched()
	return (lo + hi) / 2
}

// route decides how to answer an s-t query with no named estimator.
func (r *router) route(g *uncertain.Graph, tag uint64, s, t uncertain.NodeID) decision {
	lo, hi := r.boundsFor(g, tag, s, t)
	width := hi - lo
	if width <= r.cutoff {
		r.notePinched()
		return decision{pinched: true, value: (lo + hi) / 2, width: width, prior: (lo + hi) / 2}
	}
	name := r.pick(width)
	r.noteRouted(name)
	return decision{estimator: name, width: width, prior: (lo + hi) / 2}
}

// memoStats snapshots the bounds memo counters, so operators can size the
// LRU from engine stats.
func (r *router) memoStats() CacheStats { return r.memo.stats() }

// pick chooses among the candidates: accuracy-first for hard queries,
// measured-latency-first otherwise.
func (r *router) pick(width float64) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	best := r.candidates[0]
	for _, name := range r.candidates[1:] {
		if r.better(name, best, width) {
			best = name
		}
	}
	return best
}

// better reports whether candidate a should be preferred over b for a
// query whose bounds width is width. Candidates with no latency sample
// yet are explored before measured EWMAs are trusted — otherwise the
// first estimator to get a sample would win every comparison forever,
// however slow it turns out to be, and traffic could never shift away.
func (r *router) better(a, b string, width float64) bool {
	if width > r.hardWidth {
		return rank(accuracyRank, a) < rank(accuracyRank, b)
	}
	la, lb := r.latency[a], r.latency[b]
	switch {
	case la > 0 && lb > 0:
		return la < lb
	case la == 0 && lb == 0:
		return rank(latencyPrior, a) < rank(latencyPrior, b)
	case la == 0:
		return true // explore a before trusting b's measurement
	default:
		return false
	}
}

func rank(table map[string]int, name string) int {
	if v, ok := table[name]; ok {
		return v
	}
	return len(table)
}

// notePinched counts one more bounds-answered query.
func (r *router) notePinched() {
	r.mu.Lock()
	r.pinched++
	r.mu.Unlock()
}

// noteRouted counts one more routing decision for name.
func (r *router) noteRouted(name string) {
	r.mu.Lock()
	r.routed[name]++
	r.mu.Unlock()
}

// observe feeds one measured query latency into the EWMA for name.
func (r *router) observe(name string, seconds float64) {
	if seconds <= 0 {
		// Coarse clocks can measure a fast query as exactly 0, which the
		// EWMA map reserves for "no sample yet"; floor so a measured
		// estimator never masquerades as unexplored.
		seconds = 1e-9
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev := r.latency[name]; prev > 0 {
		r.latency[name] = (1-latencyEWMAWeight)*prev + latencyEWMAWeight*seconds
	} else {
		r.latency[name] = seconds
	}
}

// snapshot returns the per-estimator routing counts, EWMA latencies, and
// the number of bounds short-circuits.
func (r *router) snapshot() (routed map[string]uint64, latency map[string]float64, pinched uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	routed = make(map[string]uint64, len(r.routed))
	for k, v := range r.routed { //lint:allow maprange commutative map-to-map copy for a stats snapshot
		routed[k] = v
	}
	latency = make(map[string]float64, len(r.latency))
	for k, v := range r.latency { //lint:allow maprange commutative map-to-map copy for a stats snapshot
		latency[k] = v
	}
	return routed, latency, r.pinched
}
