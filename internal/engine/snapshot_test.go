package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"relcomp/internal/core"
	"relcomp/internal/mutate"
	"relcomp/internal/uncertain"
)

// snapshotPair builds an engine the ordinary way and a second engine from
// a snapshot written under the same config, over the same graph content.
func snapshotPair(t *testing.T, cfg Config) (*Engine, *Engine, *core.Snapshot) {
	t.Helper()
	g := testGraph(t)
	built, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, cfg); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	loaded, err := NewFromSnapshot(snap, Config{Workers: cfg.Workers, CacheSize: cfg.CacheSize})
	if err != nil {
		t.Fatalf("NewFromSnapshot: %v", err)
	}
	return built, loaded, snap
}

func TestNewFromSnapshotBitIdentical(t *testing.T) {
	cfg := Config{Seed: 42, MaxK: 300, Workers: 2}
	built, loaded, snap := snapshotPair(t, cfg)
	if loaded.MaxK() != built.MaxK() {
		t.Fatalf("loaded MaxK %d, built %d", loaded.MaxK(), built.MaxK())
	}
	if !snap.Manifest.HasBFS || !snap.Manifest.HasProbTree {
		t.Fatalf("snapshot manifest %+v missing indexes", snap.Manifest)
	}

	ctx := context.Background()
	// Every estimator, several (s,t,k) points: the snapshot-loaded engine
	// must answer exactly what the self-built engine answers.
	for _, name := range built.Names() {
		for s := 0; s < 3; s++ {
			q := Query{S: uncertain.NodeID(s), T: uncertain.NodeID(s + 4), K: 120, Estimator: name}
			a, b := built.Estimate(ctx, q), loaded.Estimate(ctx, q)
			if a.Err != nil || b.Err != nil {
				t.Fatalf("%s (%d): built err %v, loaded err %v", name, s, a.Err, b.Err)
			}
			if a.Reliability != b.Reliability {
				t.Errorf("%s s=%d: built %v, loaded %v — not bit-identical", name, s, a.Reliability, b.Reliability)
			}
		}
	}

	// And through the batch path, which exercises the shared-index fast
	// lane of the BFS Sharing pool.
	qs := testQueries([]string{"BFSSharing", "ProbTree", "MC"})
	ra, rb := built.EstimateBatch(ctx, qs), loaded.EstimateBatch(ctx, qs)
	for i := range qs {
		if ra[i].Err != nil || rb[i].Err != nil {
			t.Fatalf("batch %d: errs %v / %v", i, ra[i].Err, rb[i].Err)
		}
		if ra[i].Reliability != rb[i].Reliability {
			t.Errorf("batch %d (%s): built %v, loaded %v", i, qs[i].Estimator, ra[i].Reliability, rb[i].Reliability)
		}
	}
}

func TestNewFromSnapshotRejectsConflicts(t *testing.T) {
	cfg := Config{Seed: 42, MaxK: 200}
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, cfg); err != nil {
		t.Fatal(err)
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromSnapshot(snap, Config{Seed: 43}); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("conflicting seed: err = %v", err)
	}
	if _, err := NewFromSnapshot(snap, Config{MaxK: 999}); err == nil || !strings.Contains(err.Error(), "MaxK") {
		t.Errorf("conflicting MaxK: err = %v", err)
	}
	// Matching values (and zero values) are fine.
	if _, err := NewFromSnapshot(snap, Config{Seed: 42, MaxK: 200}); err != nil {
		t.Errorf("matching config rejected: %v", err)
	}
}

// TestSnapshotEpochPinned: a snapshot taken at a nonzero epoch (e.g. by
// a mutated engine) restarts the loaded engine at exactly that epoch, and
// a contradicting BaseEpoch is rejected.
func TestSnapshotEpochPinned(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Seed: 42, MaxK: 200, BaseEpoch: 7}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, cfg); err != nil {
		t.Fatal(err)
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Manifest.Epoch != 7 {
		t.Fatalf("manifest epoch %d, want 7", snap.Manifest.Epoch)
	}
	eng, err := NewFromSnapshot(snap, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 7 {
		t.Fatalf("loaded engine at epoch %d, want 7", eng.Epoch())
	}
	// The next committed batch continues the chain.
	e0 := g.Edge(g.OutEdgeIDs(0)[0])
	if ep, err := eng.Apply(context.Background(), []mutate.Mutation{
		{Op: mutate.OpUpdate, From: e0.From, To: e0.To, P: 0.42},
	}); err != nil || ep != 8 {
		t.Fatalf("Apply after snapshot restore: epoch %d, err %v (want 8)", ep, err)
	}
	if _, err := NewFromSnapshot(snap, Config{BaseEpoch: 3}); err == nil ||
		!strings.Contains(err.Error(), "BaseEpoch") {
		t.Errorf("conflicting BaseEpoch: err = %v", err)
	}
}

func TestValidatePreloaded(t *testing.T) {
	g := testGraph(t)
	other := testGraph(t)
	if _, err := New(g, Config{MaxK: 100, Preloaded: &PreloadedIndexes{
		BFS: core.NewBFSIndex(g, 1, 50),
	}}); err == nil || !strings.Contains(err.Error(), "width") {
		t.Errorf("width-mismatched preloaded BFS index: err = %v", err)
	}
	if _, err := New(g, Config{MaxK: 100, Preloaded: &PreloadedIndexes{
		BFS: core.NewBFSIndex(other, 1, 100),
	}}); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Errorf("foreign preloaded BFS index: err = %v", err)
	}
	if _, err := New(g, Config{MaxK: 100, Preloaded: &PreloadedIndexes{
		ProbTree: core.NewProbTreeIndex(other, core.DefaultTreeWidth),
	}}); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Errorf("foreign preloaded ProbTree index: err = %v", err)
	}
	// A correctly matched pair passes.
	pre := BuildIndexes(g, Config{Seed: 9, MaxK: 100})
	if _, err := New(g, Config{Seed: 9, MaxK: 100, Preloaded: pre}); err != nil {
		t.Errorf("valid preloaded indexes rejected: %v", err)
	}
}
