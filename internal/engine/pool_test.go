package engine

import (
	"testing"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// TestPoolPanickingFactoryReleasesCapacity: a factory panic must give the
// capacity slot back. Before the fix, get() incremented created and then
// panicked out of factory(), permanently burning the slot — with capacity
// 1, every later borrower blocked forever on an idle channel nothing
// would ever feed.
func TestPoolPanickingFactoryReleasesCapacity(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	calls := 0
	p := newPool(1, func() core.Estimator {
		calls++
		if calls <= 2 {
			panic("factory boom")
		}
		return core.NewMC(g, 1)
	})

	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("factory panic swallowed")
				}
			}()
			p.get()
		}()
		if n := p.size(); n != 0 {
			t.Fatalf("after panic %d: %d replicas accounted, want 0", i+1, n)
		}
	}

	// The slot must still be buildable: this get has to construct a fresh
	// replica rather than block forever on the never-fed idle channel.
	got := make(chan core.Estimator, 1)
	go func() { got <- p.get() }()
	select {
	case est := <-got:
		p.put(est)
	case <-time.After(10 * time.Second):
		t.Fatal("get blocked after factory panics — capacity slot leaked")
	}
	if n := p.size(); n != 1 {
		t.Fatalf("replicas %d, want 1", n)
	}
}

// TestEngineSurvivesWorkerPanicCapacity: the engine-level view of the same
// bug — a query that panics mid-batch (here: forced through a panicking
// estimator path) must not eat pool capacity. Exercised via forEachParallel
// already; this guards the pool contract directly under repeated borrows.
func TestPoolReusesInstancesAfterPanic(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	fail := true
	p := newPool(2, func() core.Estimator {
		if fail {
			panic("first build fails")
		}
		return core.NewMC(g, 1)
	})
	func() {
		defer func() { recover() }()
		p.get()
	}()
	fail = false
	a, b := p.get(), p.get()
	if a == nil || b == nil {
		t.Fatal("pool failed to build after factory recovered")
	}
	p.put(a)
	p.put(b)
	if n := p.size(); n != 2 {
		t.Fatalf("replicas %d, want 2 (panicked build must not count)", n)
	}
}

// TestPoolWakesParkedWaiterAfterPanic: a borrower parked because the pool
// was at capacity must be woken when a concurrent factory panic frees the
// build slot, and must then retry the build itself — not sleep forever on
// an idle list nothing will ever feed.
func TestPoolWakesParkedWaiterAfterPanic(t *testing.T) {
	g := uncertain.NewBuilder(2).Build()
	firstBuild := make(chan struct{})   // closed when the doomed build starts
	releaseBuild := make(chan struct{}) // closed to let the doomed build panic
	call := 0
	p := newPool(1, func() core.Estimator {
		call++
		if call == 1 {
			close(firstBuild)
			<-releaseBuild
			panic("factory boom")
		}
		return core.NewMC(g, 1)
	})

	panicked := make(chan struct{})
	go func() {
		defer func() {
			if recover() != nil {
				close(panicked)
			}
		}()
		p.get()
	}()
	<-firstBuild // the build slot is now claimed

	// Park a second borrower: capacity is exhausted and nothing is idle.
	got := make(chan core.Estimator, 1)
	go func() { got <- p.get() }()

	close(releaseBuild) // first build panics, freeing the slot
	<-panicked
	select {
	case est := <-got:
		p.put(est)
	case <-time.After(10 * time.Second):
		t.Fatal("parked borrower never woken after the factory panic freed the slot")
	}
	if n := p.size(); n != 1 {
		t.Fatalf("replicas %d, want 1", n)
	}
}
