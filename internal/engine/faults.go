package engine

import (
	"errors"
	"fmt"
	"runtime/debug"

	"relcomp/internal/core"
)

// Fault isolation. A panicking estimator replica — a real bug or an
// injected fault — must cost exactly the work item that hit it, never the
// process: panics are captured at the borrow boundary, surfaced as typed
// per-unit errors, and the faulted replica is discarded (its scratch
// state is suspect) so the pool rebuilds the slot with backoff.

// ErrEstimatorPanic wraps every contained estimator panic, so callers can
// errors.Is a failed unit back to "a replica faulted" (relserver maps it
// to a 500 without dying).
var ErrEstimatorPanic = errors.New("engine: estimator fault")

// capturePanic runs fn and converts a panic into an
// ErrEstimatorPanic-wrapped error carrying the faulting goroutine's
// stack — the panic would otherwise unwind frames away from the bug.
func capturePanic(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrEstimatorPanic, r, debug.Stack())
		}
	}()
	fn()
	return nil
}

// withReplica borrows a replica from p for fn, containing panics: a
// faulting factory (the borrow itself) or a faulting replica (inside fn)
// becomes an error instead of unwinding the caller. A replica that
// faulted mid-query is discarded rather than returned — whatever state
// the panic left behind must never serve another query — and the pool
// rebuilds the slot with backoff. Healthy replicas return to the pool as
// before, so the fault-free path is unchanged.
func (e *Engine) withReplica(p *pool, fn func(core.Estimator)) error {
	var inst core.Estimator
	if err := capturePanic(func() { inst = p.get() }); err != nil {
		// The factory panicked before an instance existed; get already
		// released the build slot on its way out.
		return err
	}
	if err := capturePanic(func() { fn(inst) }); err != nil {
		p.discard()
		return err
	}
	p.put(inst)
	return nil
}
