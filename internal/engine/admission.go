package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"relcomp/internal/faultinject"
	"relcomp/internal/memtrack"
)

// Overload admission control. The engine bounds the work it accepts with
// three coupled limits — concurrent requests, a cost-weighted inflight
// sample budget, and a FIFO admission queue with a wait deadline — and
// couples them to the degradation ladder (degradeRequest): as pressure
// builds, admitted requests shed precision first (wider ε, smaller
// budgets, cheaper estimators, finally the analytic-bounds floor), and
// only when the queue itself is full are requests shed outright. The
// zero AdmissionConfig disables all of it, so existing embedders see no
// behavior change.

var (
	// ErrOverloaded reports a request shed at admission: the engine was at
	// its inflight limit and the admission queue was full. Clients should
	// back off and retry (relserver maps it to 429 + Retry-After).
	ErrOverloaded = errors.New("engine: overloaded")
	// ErrQueueTimeout reports a queued request whose admission-queue wait
	// exceeded the configured deadline without an inflight slot freeing
	// (relserver maps it to 503 + Retry-After).
	ErrQueueTimeout = errors.New("engine: admission queue wait exceeded")
)

// AdmissionConfig bounds the work an engine accepts at once. The zero
// value disables admission control (and with it the degradation ladder).
type AdmissionConfig struct {
	// MaxInflight caps the requests running past admission at once; one
	// Estimate call or one EstimateBatch call counts as one request.
	// <= 0 disables admission control entirely.
	MaxInflight int
	// MaxQueue caps the requests parked waiting for an inflight slot.
	// <= 0 means no queue: at the inflight limit, requests shed
	// immediately with ErrOverloaded.
	MaxQueue int
	// QueueWait caps how long a queued request waits for admission before
	// failing with ErrQueueTimeout; <= 0 means 50ms.
	QueueWait time.Duration
	// MaxInflightSamples caps the summed estimated sample cost of the
	// admitted requests (estimates come from the router's bounds memo;
	// see costEstimate). <= 0 means unlimited. A request costing more
	// than the whole budget still admits when it is alone, so no request
	// can starve forever.
	MaxInflightSamples int64
	// SoftMemBytes is the Go-heap watermark (memtrack.Monitor) above
	// which the degradation ladder engages regardless of queue state;
	// <= 0 disables the memory signal.
	SoftMemBytes int64
}

// defaultQueueWait bounds queue time when the config does not: long
// enough to absorb a burst, short enough that a queued client learns its
// fate well inside a typical request timeout.
const defaultQueueWait = 50 * time.Millisecond

// waiter is one request parked in the admission queue. grant is closed —
// under the admission lock, after the waiter has been popped and its cost
// admitted — when a slot frees up.
type waiter struct {
	cost  int64
	grant chan struct{}
}

// admission is the engine's admission controller. A nil *admission admits
// everything at level 0, so the engine wires it unconditionally.
type admission struct {
	cfg AdmissionConfig
	mem *memtrack.Monitor

	degraded atomic.Uint64 // requests answered below requested fidelity

	mu       sync.Mutex
	inflight int
	samples  int64 // summed cost of admitted requests
	waiters  []*waiter
	admitted uint64
	queued   uint64 // admissions that had to queue first
	shed     uint64 // rejected outright (queue full)
	timedOut uint64 // rejected after exhausting QueueWait
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = defaultQueueWait
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	return &admission{cfg: cfg, mem: memtrack.NewMonitor(cfg.SoftMemBytes, 0)}
}

// memOver reports the memory-pressure signal: the real heap watermark, or
// the injected one (the soak exercises the ladder without inflating the
// heap).
func (a *admission) memOver(key uint64) bool {
	return a.mem.Over() || faultinject.FireAt(faultinject.MemPressure, key)
}

// fitsLocked reports whether a request of the given cost can be admitted
// now. The inflight == 0 escape keeps an over-budget request from
// starving: alone, anything runs.
func (a *admission) fitsLocked(cost int64) bool {
	if a.inflight >= a.cfg.MaxInflight {
		return false
	}
	if a.cfg.MaxInflightSamples > 0 && a.inflight > 0 && a.samples+cost > a.cfg.MaxInflightSamples {
		return false
	}
	return true
}

func (a *admission) admitLocked(cost int64) {
	a.inflight++
	a.samples += cost
	a.admitted++
}

// grantLocked admits queued waiters in FIFO order while they fit. Only
// the head is considered — skipping a large head for a small successor
// would starve it — so admission order equals arrival order.
func (a *admission) grantLocked() {
	for len(a.waiters) > 0 && a.fitsLocked(a.waiters[0].cost) {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.admitLocked(w.cost)
		close(w.grant)
	}
}

// abandon removes w from the queue, reporting false when w was already
// granted (its grant channel is closed, or will be before the admission
// lock is released — the caller must then consume the grant).
func (a *admission) abandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, x := range a.waiters {
		if x == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			return true
		}
	}
	return false
}

func (a *admission) release(cost int64) {
	a.mu.Lock()
	a.inflight--
	a.samples -= cost
	a.grantLocked()
	a.mu.Unlock()
}

// levelLocked maps the controller's pressure signals to a degradation
// ladder level (degradeRequest interprets it):
//
//	0 — no pressure: full-fidelity anytime run.
//	1 — queueing (this request waited, or the queue is half full):
//	    widen ε / halve the sample budget.
//	2 — near saturation (queue ≥ 90% full) or the memory watermark is
//	    exceeded: additionally route to the cheapest estimator.
//	3 — memory pressure with queueing on top: plain queries fall to the
//	    analytic-bounds floor (StopDegraded), everything else stays at 2.
func (a *admission) levelLocked(waited, memOver bool) int {
	q := len(a.waiters)
	full := a.cfg.MaxQueue
	switch {
	case memOver && (waited || q > 0):
		return 3
	case memOver:
		return 2
	case full > 0 && q*10 >= full*9:
		return 2
	case waited || (full > 0 && q*2 >= full):
		return 1
	}
	return 0
}

// acquire admits one request of the given estimated cost, queueing it —
// up to MaxQueue deep, for up to QueueWait — when the engine is at
// capacity. It returns a release the caller must invoke exactly once
// after the request finishes, and the degradation ladder level in force
// at admission. key identifies the request for the deterministic
// fault-injection points (MemPressure, ClockSkew). A nil *admission
// admits everything immediately at level 0.
func (a *admission) acquire(ctx context.Context, cost int64, key uint64) (release func(), level int, err error) {
	if a == nil {
		return func() {}, 0, nil
	}
	if cost < 1 {
		cost = 1
	}
	memOver := a.memOver(key)
	a.mu.Lock()
	if len(a.waiters) == 0 && a.fitsLocked(cost) {
		a.admitLocked(cost)
		level = a.levelLocked(false, memOver)
		a.mu.Unlock()
		return func() { a.release(cost) }, level, nil
	}
	if len(a.waiters) >= a.cfg.MaxQueue {
		a.shed++
		inflight, depth := a.inflight, len(a.waiters)
		a.mu.Unlock()
		return nil, 0, fmt.Errorf("%w (%d inflight, %d queued)", ErrOverloaded, inflight, depth)
	}
	w := &waiter{cost: cost, grant: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.queued++
	a.mu.Unlock()

	// The queue-wait deadline is where a skewed clock bites: positive
	// injected skew shortens the wait this request is actually allowed,
	// as if the deadline were computed on a clock running ahead.
	wait := a.cfg.QueueWait
	if skew := faultinject.SkewAt(faultinject.ClockSkew, key); skew != 0 {
		wait -= skew
		if wait < 0 {
			wait = 0
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	admitted := func() (func(), int, error) {
		over := a.memOver(key)
		a.mu.Lock()
		lvl := a.levelLocked(true, over)
		a.mu.Unlock()
		return func() { a.release(cost) }, lvl, nil
	}
	select {
	case <-w.grant:
		return admitted()
	case <-timer.C:
		if a.abandon(w) {
			a.mu.Lock()
			a.timedOut++
			a.mu.Unlock()
			return nil, 0, fmt.Errorf("%w (waited %v)", ErrQueueTimeout, wait)
		}
		// Granted concurrently with the timer: the slot is ours, serve.
		<-w.grant
		return admitted()
	case <-ctx.Done():
		if a.abandon(w) {
			return nil, 0, ctx.Err()
		}
		// Granted concurrently with cancellation: the caller will not
		// run, so give the slot straight back.
		<-w.grant
		a.release(cost)
		return nil, 0, ctx.Err()
	}
}

// noteDegraded counts one request answered below its requested fidelity.
func (a *admission) noteDegraded() {
	if a == nil {
		return
	}
	a.degraded.Add(1)
}

// AdmissionStats snapshots the admission controller for Stats: cumulative
// outcome counters plus the live inflight/queue gauges.
type AdmissionStats struct {
	Enabled         bool   `json:"enabled"`
	Admitted        uint64 `json:"admitted"`
	Queued          uint64 `json:"queued"`
	Shed            uint64 `json:"shed"`
	TimedOut        uint64 `json:"timedOut"`
	Degraded        uint64 `json:"degraded"`
	Inflight        int    `json:"inflight"`
	InflightSamples int64  `json:"inflightSamples"`
	QueueLen        int    `json:"queueLen"`
	SoftMemBytes    int64  `json:"softMemBytes"`
}

func (a *admission) stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Enabled:         true,
		Admitted:        a.admitted,
		Queued:          a.queued,
		Shed:            a.shed,
		TimedOut:        a.timedOut,
		Degraded:        a.degraded.Load(),
		Inflight:        a.inflight,
		InflightSamples: a.samples,
		QueueLen:        len(a.waiters),
		SoftMemBytes:    a.mem.Soft(),
	}
}
