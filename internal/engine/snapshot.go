package engine

import (
	"fmt"
	"io"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/snapshot"
	"relcomp/internal/uncertain"
)

// Snapshot integration: building the engine's offline indexes ahead of
// time, persisting them with the graph in one container, and starting an
// engine from a loaded container so cold start skips index construction
// entirely.
//
// Determinism contract: the engine builds its BFS Sharing index with
// seed replicaSeed(cfg.Seed, "BFSSharing") and width cfg.MaxK, and its
// ProbTree index deterministically at the default width. BuildIndexes
// reproduces exactly that, and the snapshot manifest records cfg.Seed
// and cfg.MaxK — so an engine started by NewFromSnapshot (which pins its
// seed and MaxK from the manifest) answers every query bit-identically
// to an engine with the same Config that built the indexes itself.

// validatePreloaded checks cfg.Preloaded against the graph and the
// normalized config (called by New after defaults are applied).
func validatePreloaded(g *uncertain.Graph, cfg Config) error {
	pre := cfg.Preloaded
	if pre == nil {
		return nil
	}
	if ix := pre.BFS; ix != nil {
		if ix.Graph() != g {
			return fmt.Errorf("engine: preloaded BFSSharing index was built over a different graph")
		}
		if ix.Width() != cfg.MaxK {
			return fmt.Errorf("engine: preloaded BFSSharing index width %d != engine MaxK %d", ix.Width(), cfg.MaxK)
		}
	}
	if ix := pre.ProbTree; ix != nil {
		if ix.Graph() != g {
			return fmt.Errorf("engine: preloaded ProbTree index was built over a different graph")
		}
		if ix.Width() != core.DefaultTreeWidth {
			return fmt.Errorf("engine: preloaded ProbTree index width %d != engine width %d", ix.Width(), core.DefaultTreeWidth)
		}
	}
	return nil
}

// BuildIndexes constructs the offline indexes an engine with this config
// would build lazily: the BFS Sharing index (seeded exactly like the
// engine's own pool) and the ProbTree decomposition.
func BuildIndexes(g *uncertain.Graph, cfg Config) *PreloadedIndexes {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 2000
	}
	return &PreloadedIndexes{
		BFS:      core.NewBFSIndex(g, replicaSeed(cfg.Seed, sharedName), cfg.MaxK),
		ProbTree: core.NewProbTreeIndex(g, core.DefaultTreeWidth),
	}
}

// WriteSnapshot builds the indexes for (g, cfg) and writes the complete
// container — graph, BFS Sharing index, ProbTree index, manifest — to w.
//
// Under cfg.DegreeRelabel the snapshot stores the degree-sorted rename —
// graph, indexes, and the id translation back to the caller's original
// ids — and NewFromSnapshot restores the translating engine without
// re-relabeling.
func WriteSnapshot(w io.Writer, g *uncertain.Graph, cfg Config) error {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 2000
	}
	var toOld32, edgeToNew32 []int32
	if cfg.DegreeRelabel {
		perm := uncertain.DegreePerm(g)
		rg, edgeMap, err := uncertain.Relabel(g, perm)
		if err != nil {
			return fmt.Errorf("engine: degree relabel failed: %w", err)
		}
		toOld := uncertain.InversePerm(perm)
		toOld32 = make([]int32, len(toOld))
		for i, v := range toOld {
			toOld32[i] = int32(v)
		}
		edgeToNew32 = make([]int32, len(edgeMap))
		for i, v := range edgeMap {
			edgeToNew32[i] = int32(v)
		}
		g = rg
	}
	pre := BuildIndexes(g, cfg)
	return core.WriteSnapshotWithRelabel(w, g, pre.BFS, pre.ProbTree, snapshot.Manifest{
		Tool:        "relsnap",
		EngineSeed:  cfg.Seed,
		MaxK:        cfg.MaxK,
		PTWidth:     core.DefaultTreeWidth,
		CreatedUnix: time.Now().Unix(),
		Epoch:       cfg.BaseEpoch,
	}, toOld32, edgeToNew32)
}

// NewFromSnapshot starts an engine over a loaded snapshot: the snapshot's
// graph, its indexes preloaded into the estimator pools, and the seed and
// MaxK pinned from the manifest (the values the indexes were built
// under). Other Config fields (Workers, CacheSize, Estimators, ...) apply
// as usual; setting cfg.Seed or cfg.MaxK to a conflicting non-zero value
// is an error rather than a silent override.
//
// The engine aliases the snapshot's mapping; the caller must keep the
// snapshot open for the engine's lifetime.
//
// A snapshot written under Config.DegreeRelabel restores a translating
// engine (the stored rename is served, the query surface speaks the
// original ids) whether or not cfg.DegreeRelabel is set — the snapshot,
// not the flag, is authoritative. Setting cfg.DegreeRelabel against an
// un-relabeled snapshot is an error: the graph must be renamed when the
// indexes are built, so rewrite the snapshot instead.
func NewFromSnapshot(snap *core.Snapshot, cfg Config) (*Engine, error) {
	man := snap.Manifest
	if cfg.Seed != 0 && cfg.Seed != man.EngineSeed {
		return nil, fmt.Errorf("engine: config seed %d conflicts with snapshot seed %d", cfg.Seed, man.EngineSeed)
	}
	if cfg.MaxK > 0 && cfg.MaxK != man.MaxK {
		return nil, fmt.Errorf("engine: config MaxK %d conflicts with snapshot MaxK %d", cfg.MaxK, man.MaxK)
	}
	if cfg.DegreeRelabel && !man.DegreeRelabeled {
		return nil, fmt.Errorf("engine: DegreeRelabel is set but the snapshot holds an un-relabeled graph; rebuild the snapshot with DegreeRelabel")
	}
	if cfg.BaseEpoch != 0 && cfg.BaseEpoch != man.Epoch {
		return nil, fmt.Errorf("engine: config BaseEpoch %d conflicts with snapshot epoch %d", cfg.BaseEpoch, man.Epoch)
	}
	cfg.Seed = man.EngineSeed
	cfg.MaxK = man.MaxK
	cfg.BaseEpoch = man.Epoch
	cfg.Preloaded = &PreloadedIndexes{BFS: snap.BFS, ProbTree: snap.ProbTree}
	var relab *relabelMap
	if man.DegreeRelabeled {
		toOld := make([]uncertain.NodeID, len(snap.RelabelToOld))
		for i, v := range snap.RelabelToOld {
			toOld[i] = uncertain.NodeID(v)
		}
		edgeToNew := make([]uncertain.EdgeID, len(snap.RelabelEdgeToNew))
		for i, v := range snap.RelabelEdgeToNew {
			edgeToNew[i] = uncertain.EdgeID(v)
		}
		relab = &relabelMap{toNew: uncertain.InversePerm(toOld), toOld: toOld, edgeToNew: edgeToNew}
	}
	cfg.DegreeRelabel = relab != nil
	return newEngine(snap.Graph, cfg, relab)
}
