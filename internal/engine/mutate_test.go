package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relcomp/internal/mutate"
	"relcomp/internal/uncertain"
)

// mutTestGraph is a two-component graph whose source sets are separable,
// so invalidation precision is observable: mutating inside one component
// must not touch the other's cached answers.
//
//	0 -0.8-> 1 -0.7-> 2 -0.6-> 3      4 -0.9-> 5 -0.5-> 6 -0.4-> 7
func mutTestGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(8)
	for _, e := range []uncertain.Edge{
		{From: 0, To: 1, P: 0.8}, {From: 1, To: 2, P: 0.7}, {From: 2, To: 3, P: 0.6},
		{From: 4, To: 5, P: 0.9}, {From: 5, To: 6, P: 0.5}, {From: 6, To: 7, P: 0.4},
	} {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// findAbsentPair returns a node pair with no edge in either direction, so
// an OpAdd creates a genuinely new adjacency.
func findAbsentPair(t *testing.T, g *uncertain.Graph) (uncertain.NodeID, uncertain.NodeID) {
	t.Helper()
	n := uncertain.NodeID(g.NumNodes())
	for a := uncertain.NodeID(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.FindEdge(a, b) < 0 && g.FindEdge(b, a) < 0 {
				return a, b
			}
		}
	}
	t.Fatal("no absent pair in test graph")
	return 0, 0
}

// TestApplyBitIdentity is the tentpole's determinism contract: after
// Apply, the mutated engine answers every request bit-identically to an
// engine built from scratch over the post-mutation graph — across the
// repaired BFSSharing index, the re-spliced (or rebuilt) ProbTree index,
// and the sampling estimators, on the single and the batch path. Cache
// hits that predate the batch (sources the mutation cannot reach) report
// their computing epoch and must match a from-scratch engine on *that*
// epoch's graph.
func TestApplyBitIdentity(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t)
	cfg := Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 256,
		Estimators: []string{"MC", "PackMC", "BFSSharing", "ProbTree", "RSS"}}
	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := testQueries(e.Names())

	// Warm every estimator so Apply exercises index repair, not laziness.
	for _, q := range queries {
		if res := e.Estimate(ctx, q); res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	// Batch 1 preserves topology (update + remove): both indexes repair.
	e0, e1 := g.Edge(0), g.Edge(1)
	epoch1, err := e.Apply(ctx, []mutate.Mutation{
		{Op: mutate.OpUpdate, From: e0.From, To: e0.To, P: 0.95},
		{Op: mutate.OpRemove, From: e1.From, To: e1.To},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 != 1 || e.Epoch() != 1 {
		t.Fatalf("epoch after first batch = %d/%d, want 1", epoch1, e.Epoch())
	}
	ms := e.Stats().Mutations
	if ms.IndexRepairs != 2 || ms.IndexRebuilds != 0 {
		t.Fatalf("topology-preserving batch: repairs=%d rebuilds=%d, want 2/0", ms.IndexRepairs, ms.IndexRebuilds)
	}

	// Batch 2 appends a new adjacency: BFS repairs its appended rows,
	// ProbTree falls back to a rebuild (its decomposition is structural).
	na, nb := findAbsentPair(t, e.Graph())
	epoch2, err := e.Apply(ctx, []mutate.Mutation{{Op: mutate.OpAdd, From: na, To: nb, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	ms = e.Stats().Mutations
	if ms.Epoch != 2 || ms.Batches != 2 || ms.Applied != 3 {
		t.Fatalf("mutation counters = %+v", ms)
	}
	if ms.IndexRepairs != 3 || ms.IndexRebuilds != 1 {
		t.Fatalf("append batch: repairs=%d rebuilds=%d, want 3/1", ms.IndexRepairs, ms.IndexRebuilds)
	}

	// References: from-scratch engines on the pre-mutation graph (for old
	// cached answers) and on the post-mutation graph.
	pre, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	postCfg := cfg
	postCfg.BaseEpoch = epoch2
	post, err := New(e.Graph(), postCfg)
	if err != nil {
		t.Fatal(err)
	}
	refFor := func(res Response) *Engine {
		if res.Epoch == epoch2 {
			return post
		}
		if res.Epoch == 0 {
			return pre
		}
		t.Fatalf("answer from unexpected epoch %d", res.Epoch)
		return nil
	}

	sawPost := false
	for i, q := range queries {
		res := e.Estimate(ctx, q)
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		want := refFor(res).Estimate(ctx, q)
		if want.Err != nil {
			t.Fatalf("reference query %d: %v", i, want.Err)
		}
		if res.Reliability != want.Reliability || res.SamplesUsed != want.SamplesUsed {
			t.Fatalf("query %d (%s s=%d t=%d, epoch %d): got %v/%d samples, from-scratch %v/%d",
				i, q.Estimator, q.S, q.T, res.Epoch, res.Reliability, res.SamplesUsed, want.Reliability, want.SamplesUsed)
		}
		sawPost = sawPost || res.Epoch == epoch2
	}
	if !sawPost {
		t.Fatal("no query was answered on the post-mutation epoch")
	}

	// The batch path must agree with the same references.
	for i, res := range e.EstimateBatch(ctx, queries) {
		if res.Err != nil {
			t.Fatalf("batch query %d: %v", i, res.Err)
		}
		want := refFor(res).Estimate(ctx, queries[i])
		if res.Reliability != want.Reliability {
			t.Fatalf("batch query %d (epoch %d): got %v, from-scratch %v", i, res.Epoch, res.Reliability, want.Reliability)
		}
	}
}

// TestApplyInvalidation pins the precision of cache invalidation
// (satellite: result cache + bounds memo): after a mutation, queries from
// sources that can reach a changed edge miss and recompute on the new
// epoch, while untouched sources — including evidence-conditioned entries
// — keep hitting their pre-mutation entries.
func TestApplyInvalidation(t *testing.T) {
	ctx := context.Background()
	g := mutTestGraph(t)
	e, err := New(g, Config{Workers: 2, MaxK: 200, Seed: 7, CacheSize: 64, Estimators: []string{"MC"}})
	if err != nil {
		t.Fatal(err)
	}

	affected := Query{S: 0, T: 3, K: 100, Estimator: "MC"}
	unaffected := Query{S: 4, T: 7, K: 100, Estimator: "MC"}
	evidence := Query{S: 4, T: 7, K: 100, Estimator: "MC",
		Evidence: Evidence{Include: []uncertain.EdgeID{3}}} // edge 4->5
	for _, q := range []Query{affected, unaffected, evidence} {
		if res := e.Estimate(ctx, q); res.Err != nil || res.Cached {
			t.Fatalf("fill %+v: err=%v cached=%v", q, res.Err, res.Cached)
		}
		if res := e.Estimate(ctx, q); res.Err != nil || !res.Cached {
			t.Fatalf("refill %+v: err=%v cached=%v, want hit", q, res.Err, res.Cached)
		}
	}
	boundsBefore := e.Estimate(ctx, Query{S: 0, T: 3, Estimator: BoundsName})
	if boundsBefore.Err != nil {
		t.Fatal(boundsBefore.Err)
	}
	if res := e.Estimate(ctx, Query{S: 4, T: 7, Estimator: BoundsName}); res.Err != nil {
		t.Fatal(res.Err)
	}

	// Mutate edge 1->2: reachable from sources {0, 1} only.
	epoch, err := e.Apply(ctx, []mutate.Mutation{{Op: mutate.OpUpdate, From: 1, To: 2, P: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	ms := e.Stats().Mutations
	if ms.InvalidatedSources != 2 {
		t.Fatalf("invalidated %d sources, want 2 (nodes 0 and 1)", ms.InvalidatedSources)
	}

	if res := e.Estimate(ctx, affected); res.Cached || res.Epoch != epoch {
		t.Fatalf("affected source after mutation: cached=%v epoch=%d, want fresh on epoch %d", res.Cached, res.Epoch, epoch)
	}
	if res := e.Estimate(ctx, unaffected); !res.Cached || res.Epoch != 0 {
		t.Fatalf("unaffected source after mutation: cached=%v epoch=%d, want pre-mutation hit", res.Cached, res.Epoch)
	}
	if res := e.Estimate(ctx, evidence); !res.Cached || res.Epoch != 0 {
		t.Fatalf("unaffected evidence entry after mutation: cached=%v epoch=%d, want pre-mutation hit", res.Cached, res.Epoch)
	}

	// Bounds memo: the affected pair's entry is orphaned (its tag moved)
	// and the fresh bounds see the new probability; the untouched pair's
	// entry is still reachable under its old tag.
	st := e.state.Load()
	if _, _, ok := e.router.peekBounds(st.srcTag(0), 0, 3); ok {
		t.Fatal("affected (0,3) bounds entry still reachable under the new tag")
	}
	if _, _, ok := e.router.peekBounds(st.srcTag(4), 4, 7); !ok {
		t.Fatal("unaffected (4,7) bounds entry was lost")
	}
	boundsAfter := e.Estimate(ctx, Query{S: 0, T: 3, Estimator: BoundsName})
	if boundsAfter.Err != nil {
		t.Fatal(boundsAfter.Err)
	}
	if boundsAfter.Reliability == boundsBefore.Reliability {
		t.Fatalf("bounds answer %v did not move with the edge probability", boundsAfter.Reliability)
	}
}

// TestApplyRejectsBadBatches: validation failures reject the whole batch
// atomically — no epoch bump, no partial application, no log entry.
func TestApplyRejectsBadBatches(t *testing.T) {
	ctx := context.Background()
	e, err := New(mutTestGraph(t), Config{Workers: 1, MaxK: 100, Seed: 1, Estimators: []string{"MC"}})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Graph()
	for _, muts := range [][]mutate.Mutation{
		nil,
		{{Op: mutate.OpUpdate, From: 0, To: 1, P: 1.5}},
		{{Op: mutate.OpUpdate, From: 0, To: 1, P: 0.5}, {Op: mutate.OpAdd, From: 0, To: 99, P: 0.5}},
		{{Op: mutate.OpUpdate, From: 0, To: 7, P: 0.5}}, // absent pair
	} {
		if _, err := e.Apply(ctx, muts); err == nil {
			t.Fatalf("batch %+v was accepted", muts)
		}
	}
	if e.Epoch() != 0 || e.Graph() != before || e.MutationLog().Len() != 0 {
		t.Fatalf("rejected batches left state behind: epoch=%d log=%d", e.Epoch(), e.MutationLog().Len())
	}
}

// TestApplyNoOpBatchSharesState: a batch whose net effect is nil still
// advances and logs the epoch but shares every piece of serving state.
func TestApplyNoOpBatchSharesState(t *testing.T) {
	ctx := context.Background()
	g := mutTestGraph(t)
	e, err := New(g, Config{Workers: 1, MaxK: 100, Seed: 1, CacheSize: 16, Estimators: []string{"MC"}})
	if err != nil {
		t.Fatal(err)
	}
	fill := e.Estimate(ctx, Query{S: 0, T: 3, K: 50, Estimator: "MC"})
	if fill.Err != nil {
		t.Fatal(fill.Err)
	}
	epoch, err := e.Apply(ctx, []mutate.Mutation{{Op: mutate.OpUpdate, From: 0, To: 1, P: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || e.Graph() != g {
		t.Fatalf("no-op batch: epoch=%d, graph replaced=%v", epoch, e.Graph() != g)
	}
	if ms := e.Stats().Mutations; ms.InvalidatedSources != 0 || ms.IndexRepairs != 0 {
		t.Fatalf("no-op batch did invalidation work: %+v", ms)
	}
	if res := e.Estimate(ctx, Query{S: 0, T: 3, K: 50, Estimator: "MC"}); !res.Cached {
		t.Fatal("no-op batch dropped the result cache")
	}
}

// recvSub reads one response from a subscription with a timeout.
func recvSub(t *testing.T, sub *Subscription) Response {
	t.Helper()
	select {
	case res, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription channel closed early")
		}
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for subscription delivery")
	}
	return Response{}
}

// TestSubscribe covers the continuous-query surface: an immediate initial
// estimate, a re-estimate after every batch that can move the answer,
// coalescing-away of batches that provably cannot, and a clean close.
func TestSubscribe(t *testing.T) {
	ctx := context.Background()
	e, err := New(mutTestGraph(t), Config{Workers: 2, MaxK: 200, Seed: 7, CacheSize: 64, Estimators: []string{"MC"}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := e.Subscribe(ctx, Query{S: 0, T: 3, K: 100, Estimator: "MC"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe(ctx, Query{S: 99, T: 3, K: 100}); err == nil {
		t.Fatal("subscription to an out-of-range source was accepted")
	}

	initial := recvSub(t, sub)
	if initial.Err != nil || initial.Epoch != 0 {
		t.Fatalf("initial estimate: err=%v epoch=%d", initial.Err, initial.Epoch)
	}

	// Epoch 1 cannot affect source 0 (other component); epoch 2 can. The
	// subscriber must deliver exactly one re-estimate, on epoch 2 — seeing
	// an epoch-1 delivery here would mean the irrelevant batch was not
	// coalesced away.
	if _, err := e.Apply(ctx, []mutate.Mutation{{Op: mutate.OpUpdate, From: 6, To: 7, P: 0.45}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(ctx, []mutate.Mutation{{Op: mutate.OpUpdate, From: 1, To: 2, P: 0.95}}); err != nil {
		t.Fatal(err)
	}
	re := recvSub(t, sub)
	if re.Err != nil || re.Epoch != 2 {
		t.Fatalf("re-estimate: err=%v epoch=%d, want epoch 2", re.Err, re.Epoch)
	}
	if re.Reliability == initial.Reliability {
		t.Fatalf("re-estimate %v did not move with the mutation", re.Reliability)
	}

	if n := e.Stats().Mutations.Subscribers; n != 1 {
		t.Fatalf("subscriber gauge = %d, want 1", n)
	}
	sub.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-sub.C:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscription channel not closed after Close")
		}
	}
}

// TestMutationSoak (satellite: run under -race) drives concurrent Apply
// batches against single-query, batch-query, and subscription clients.
// Every answer must match a from-scratch engine on the epoch the answer
// reports — never a blend of worlds. Scaled by RELCOMP_SOAK_MS.
func TestMutationSoak(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t)
	cfg := Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 256,
		Estimators: []string{"MC", "PackMC", "BFSSharing", "ProbTree"}}

	// The mutation script: topology-preserving edits plus a tombstone
	// resurrection, each batch valid against the state the previous one
	// left. Epoch i's graph is gs[i].
	ea, eb := g.Edge(2), g.Edge(5)
	script := [][]mutate.Mutation{
		{{Op: mutate.OpUpdate, From: ea.From, To: ea.To, P: 0.9}},
		{{Op: mutate.OpRemove, From: eb.From, To: eb.To}},
		{{Op: mutate.OpAdd, From: eb.From, To: eb.To, P: eb.P},
			{Op: mutate.OpUpdate, From: ea.From, To: ea.To, P: 0.2}},
		{{Op: mutate.OpUpdate, From: ea.From, To: ea.To, P: ea.P}},
	}
	gs := []*uncertain.Graph{g}
	for _, batch := range script {
		deltas := make([]uncertain.EdgeDelta, len(batch))
		for i, m := range batch {
			deltas[i] = m.Delta()
		}
		ng, _, err := uncertain.ApplyDeltas(gs[len(gs)-1], deltas)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, ng)
	}

	queries := []Query{
		{S: 0, T: 5, K: 60, Estimator: "MC"},
		{S: 1, T: 6, K: 60, Estimator: "PackMC"},
		{S: 2, T: 5, K: 60, Estimator: "BFSSharing"},
		{S: 0, T: 6, K: 60, Estimator: "ProbTree"},
		{S: 1, T: 5, K: 90, Estimator: "MC"},
		{S: 2, T: 6, K: 90, Estimator: "ProbTree"},
	}
	// ref[epoch][i] is the from-scratch answer to queries[i] on gs[epoch].
	ref := make([][]float64, len(gs))
	for ep, eg := range gs {
		fresh, err := New(eg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref[ep] = make([]float64, len(queries))
		for i, q := range queries {
			res := fresh.Estimate(ctx, q)
			if res.Err != nil {
				t.Fatalf("reference epoch %d query %d: %v", ep, i, res.Err)
			}
			ref[ep][i] = res.Reliability
		}
	}

	e, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	check := func(who string, i int, res Response) {
		if res.Err != nil {
			t.Errorf("%s query %d: %v", who, i, res.Err)
			failures.Add(1)
			return
		}
		if res.Epoch >= uint64(len(ref)) {
			t.Errorf("%s query %d: impossible epoch %d", who, i, res.Epoch)
			failures.Add(1)
			return
		}
		if want := ref[res.Epoch][i]; res.Reliability != want {
			t.Errorf("%s query %d on epoch %d: got %v, from-scratch %v (blended worlds?)",
				who, i, res.Epoch, res.Reliability, want)
			failures.Add(1)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: walk the script across the soak window, then rest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		interval := soakDuration() / time.Duration(len(script)+1)
		for _, batch := range script {
			select {
			case <-stop:
				return
			case <-time.After(interval):
			}
			if _, err := e.Apply(ctx, batch); err != nil {
				t.Errorf("apply: %v", err)
				failures.Add(1)
				return
			}
		}
	}()

	// Two single-query clients and one batch client.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := c; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := n % len(queries)
				check("single", i, e.Estimate(ctx, queries[i]))
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, res := range e.EstimateBatch(ctx, queries) {
				check("batch", i, res)
			}
		}
	}()

	// A subscriber on queries[0]: every delivery is checked like a query.
	sub, err := e.Subscribe(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for res := range sub.C {
			check("subscribe", 0, res)
		}
	}()

	time.Sleep(soakDuration())
	close(stop)
	sub.Close()
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d soak failures", n)
	}
	ms := e.Stats().Mutations
	if ms.Epoch != uint64(len(script)) && ms.Epoch != 0 {
		// The mutator may not finish the script on a very short soak, but
		// whatever it committed must be fully accounted.
		t.Logf("soak ended at epoch %d of %d", ms.Epoch, len(script))
	}
	if ms.IndexRebuilds != 0 && ms.Epoch > 0 {
		// Only batch 3 resurrects within existing topology; no batch adds
		// a new adjacency, so ProbTree must never have rebuilt... except
		// the resurrection batch keeps edge count constant, so any rebuild
		// here is a regression in the repair path.
		t.Errorf("topology-preserving soak performed %d full rebuilds", ms.IndexRebuilds)
	}
}
