package engine

import (
	"context"
	"sync"
	"testing"

	"relcomp/internal/uncertain"
)

// TestConcurrentMatchesSequential is the engine's sequential-equivalence
// guarantee under -race: a storm of parallel mixed single/batch queries
// must return exactly the results sequential execution returns. The
// workload names its estimators explicitly — adaptive routing is
// deliberately latency-dependent and is exercised separately in
// TestConcurrentRoutedQueries.
func TestConcurrentMatchesSequential(t *testing.T) {
	cfg := Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 128}
	queries := testQueries(DefaultEstimators())

	// Sequential ground truth on a fresh engine.
	seq := testEngine(t, cfg)
	want := make([]float64, len(queries))
	for i, q := range queries {
		res := seq.Estimate(context.Background(), q)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[i] = res.Reliability
	}

	// Concurrent mixed execution on another fresh engine: goroutines
	// interleave single Estimate calls, EstimateBatch slices, and Stats
	// reads, with the cache in play.
	conc := testEngine(t, cfg)
	var wg sync.WaitGroup
	errs := make(chan string, 1024)
	check := func(i int, got Result) {
		if got.Err != nil {
			errs <- got.Err.Error()
			return
		}
		if got.Reliability != want[i] {
			errs <- "mismatch"
		}
	}
	for round := 0; round < 3; round++ {
		// Single-query callers.
		for i := range queries {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				check(i, conc.Estimate(context.Background(), queries[i]))
			}(i)
		}
		// Batch callers, one per chunk of the workload.
		const chunk = 10
		for lo := 0; lo < len(queries); lo += chunk {
			hi := lo + chunk
			if hi > len(queries) {
				hi = len(queries)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for off, res := range conc.EstimateBatch(context.Background(), queries[lo:hi]) {
					check(lo+off, res)
				}
			}(lo, hi)
		}
		// Stats readers race with the writers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = conc.Stats()
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatalf("concurrent execution diverged from sequential: %s", msg)
	}
}

// TestConcurrentRoutedQueries races adaptively routed traffic (whose
// estimator choice is timing-dependent) purely for data-race and sanity
// coverage.
func TestConcurrentRoutedQueries(t *testing.T) {
	e := testEngine(t, Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				res := e.Estimate(context.Background(), Query{
					S: uncertain.NodeID((w + i) % 6),
					T: uncertain.NodeID(6 + (w*i)%6),
					K: 100,
				})
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
				if res.Reliability < 0 || res.Reliability > 1 {
					t.Errorf("reliability %v", res.Reliability)
				}
			}
		}(w)
	}
	wg.Wait()
}
