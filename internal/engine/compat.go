package engine

import (
	"hash/fnv"

	"relcomp/internal/uncertain"
)

// Legacy-compatibility seeding. The engine derives every sampling stream
// from Config.Seed through the splitmix64 finalizer chains replicaSeed and
// querySeed, so an engine-served query draws a different stream than a
// hand-constructed estimator seeded with the same raw value. Both chains
// are bijections on uint64, which makes them invertible: CompatReplicaSeed
// and CompatQuerySeed return the Config.Seed for which the engine's
// derived seed equals a caller-chosen raw seed. This is the bridge that
// lets the legacy relcomp query helpers (SingleSourceReliability,
// KTerminalReliability, ...) route through the engine's pooled machinery
// while returning bit-identical values to their pre-engine
// implementations — and what the equivalence tests assert with.

// unmix64 inverts mix64 (the splitmix64 finalizer): each xor-shift and
// odd-constant multiply is individually invertible, applied in reverse.
func unmix64(z uint64) uint64 {
	z = z ^ (z >> 31) ^ (z >> 62)
	z *= 0x319642b2d24d8ec3 // modular inverse of 0x94d049bb133111eb
	z = z ^ (z >> 27) ^ (z >> 54)
	z *= 0x96de1b173f119089 // modular inverse of 0xbf58476d1ce4e5b9
	z = z ^ (z >> 30) ^ (z >> 60)
	return z
}

// nameHash is the FNV-1a fold replicaSeed applies to the estimator name.
func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// CompatReplicaSeed returns the Config.Seed for which the engine's replica
// construction seed for the named estimator equals raw — i.e.
// replicaSeed(CompatReplicaSeed(name, raw), name) == raw. Use it to make a
// pooled index-based estimator (whose values depend only on its
// construction seed) reproduce a hand-built instance bit for bit.
func CompatReplicaSeed(name string, raw uint64) uint64 {
	return unmix64(raw) ^ nameHash(name)
}

// CompatQuerySeed returns the Config.Seed for which the engine's per-query
// stream seed for (name, s, t, k) equals raw — i.e.
// querySeed(CompatQuerySeed(...), name, s, t, k) == raw. Use it to make an
// engine-served sampling query reproduce a hand-seeded estimator's
// Estimate bit for bit.
func CompatQuerySeed(name string, s, t uncertain.NodeID, k int, raw uint64) uint64 {
	z := unmix64(raw) - 0x94d049bb133111eb*uint64(k)
	z = unmix64(z) - 0xbf58476d1ce4e5b9*uint64(t)
	z = unmix64(z) - 0x9e3779b97f4a7c15*uint64(s)
	return unmix64(z) ^ nameHash(name)
}

// CompatRequestSeed returns the Config.Seed for which the engine's
// sampling-stream seed for the given request (estimator resolved to the
// kind's default when unnamed) equals raw — the request-level form of
// CompatQuerySeed the legacy relcomp helpers use. For the kinds whose
// values depend on an index construction seed instead (BFS Sharing
// single-source/top-k), use CompatReplicaSeed.
func CompatRequestSeed(q Request, raw uint64) uint64 {
	name := kindEstimatorFor(q)
	switch q.kind() {
	case KindReliability, KindDistance:
		return CompatQuerySeed(name, q.S, q.T, q.K, raw)
	default: // source-rooted kinds seed target-less
		return CompatQuerySeed(name, q.S, q.S, q.K, raw)
	}
}
