package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"relcomp/internal/faultinject"
)

// admissionFor builds a bare admission controller for unit tests.
func admissionFor(t *testing.T, cfg AdmissionConfig) *admission {
	t.Helper()
	a := newAdmission(cfg)
	if a == nil {
		t.Fatalf("newAdmission(%+v) disabled", cfg)
	}
	return a
}

func TestAdmissionImmediate(t *testing.T) {
	a := admissionFor(t, AdmissionConfig{MaxInflight: 2, MaxQueue: 4})
	rel1, lvl, err := a.acquire(context.Background(), 10, 1)
	if err != nil || lvl != 0 {
		t.Fatalf("first acquire: lvl=%d err=%v", lvl, err)
	}
	rel2, _, err := a.acquire(context.Background(), 10, 2)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	st := a.stats()
	if st.Inflight != 2 || st.InflightSamples != 20 || st.Admitted != 2 {
		t.Fatalf("stats after two admits: %+v", st)
	}
	rel1()
	rel2()
	st = a.stats()
	if st.Inflight != 0 || st.InflightSamples != 0 {
		t.Fatalf("stats after release: %+v", st)
	}
}

// TestAdmissionShed: with no queue, a request past the inflight limit is
// rejected immediately with ErrOverloaded.
func TestAdmissionShed(t *testing.T) {
	a := admissionFor(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 0})
	rel, _, err := a.acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, _, err := a.acquire(context.Background(), 1, 2); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if st := a.stats(); st.Shed != 1 {
		t.Fatalf("shed counter: %+v", st)
	}
}

// TestAdmissionQueueGrant: a queued request is granted when the slot
// frees, FIFO, and reports that it waited (level >= 1).
func TestAdmissionQueueGrant(t *testing.T) {
	a := admissionFor(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Second})
	rel, _, err := a.acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	type got struct {
		lvl int
		err error
	}
	done := make(chan got, 1)
	go func() {
		rel2, lvl, err := a.acquire(context.Background(), 1, 2)
		if err == nil {
			rel2()
		}
		done <- got{lvl, err}
	}()
	// Wait until the second request is parked, then free the slot.
	for i := 0; a.stats().QueueLen == 0; i++ {
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	g := <-done
	if g.err != nil {
		t.Fatalf("queued acquire failed: %v", g.err)
	}
	if g.lvl < 1 {
		t.Fatalf("waited request reports level %d, want >= 1", g.lvl)
	}
	if st := a.stats(); st.Queued != 1 || st.Admitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestAdmissionQueueTimeout: a queued request whose wait expires fails
// with ErrQueueTimeout and leaves the queue clean.
func TestAdmissionQueueTimeout(t *testing.T) {
	a := admissionFor(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Millisecond})
	rel, _, err := a.acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, _, err := a.acquire(context.Background(), 1, 2); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	if st := a.stats(); st.TimedOut != 1 || st.QueueLen != 0 {
		t.Fatalf("stats after timeout: %+v", st)
	}
}

// TestAdmissionCtxCancel: cancelling a queued request returns its context
// error and removes it from the queue without leaking the slot.
func TestAdmissionCtxCancel(t *testing.T) {
	a := admissionFor(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Second})
	rel, _, err := a.acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(ctx, 1, 2)
		done <- err
	}()
	for i := 0; a.stats().QueueLen == 0; i++ {
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	rel()
	// The slot must be reusable afterwards.
	rel2, _, err := a.acquire(context.Background(), 1, 3)
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	rel2()
}

// TestAdmissionSampleBudget: the inflight-samples budget rejects work that
// would overflow it while anything admits when the engine is idle (the
// starvation escape).
func TestAdmissionSampleBudget(t *testing.T) {
	a := admissionFor(t, AdmissionConfig{MaxInflight: 8, MaxQueue: 0, MaxInflightSamples: 100})
	relBig, _, err := a.acquire(context.Background(), 1000, 1)
	if err != nil {
		t.Fatalf("over-budget request must admit when alone: %v", err)
	}
	if _, _, err := a.acquire(context.Background(), 50, 2); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("budget overflow must shed, got %v", err)
	}
	relBig()
	rel1, _, err := a.acquire(context.Background(), 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rel1()
	rel2, _, err := a.acquire(context.Background(), 40, 4)
	if err != nil {
		t.Fatalf("60+40 fits the 100 budget: %v", err)
	}
	rel2()
}

// TestAdmissionMemPressureLevels: the injected memory-pressure signal
// drives the ladder — level 2 when admitted immediately, level 3 after
// queueing on top of it.
func TestAdmissionMemPressureLevels(t *testing.T) {
	inj := faultinject.NewSeeded(1).WithRate(faultinject.MemPressure, 1)
	defer faultinject.Set(inj)()

	a := admissionFor(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Second})
	rel, lvl, err := a.acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 2 {
		t.Fatalf("memory pressure alone: level %d, want 2", lvl)
	}
	done := make(chan int, 1)
	go func() {
		rel2, lvl2, err := a.acquire(context.Background(), 1, 2)
		if err != nil {
			done <- -1
			return
		}
		rel2()
		done <- lvl2
	}()
	for i := 0; a.stats().QueueLen == 0; i++ {
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	if lvl2 := <-done; lvl2 != 3 {
		t.Fatalf("memory pressure + queueing: level %d, want 3", lvl2)
	}
}

// TestAdmissionClockSkew: positive injected skew shortens the queue wait,
// so a request that would have been granted times out instead.
func TestAdmissionClockSkew(t *testing.T) {
	inj := faultinject.NewSeeded(1).
		WithRate(faultinject.ClockSkew, 1).
		WithSkew(time.Hour) // shrinks any wait to zero
	defer faultinject.Set(inj)()

	a := admissionFor(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Second})
	rel, _, err := a.acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, _, err = a.acquire(context.Background(), 1, 2)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout under skew, got %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("skewed wait took %v, want ~0", waited)
	}
}

// TestDegradeRequest covers the ladder's request rewriting.
func TestDegradeRequest(t *testing.T) {
	e := testEngine(t, Config{Seed: 42, MaxK: 2000, Workers: 1})

	// Level 0 touches nothing.
	q := Query{S: 0, T: 5, K: 1000}
	if dq, changed := e.degradeRequest(q, 0); changed || dq.K != q.K || dq.Eps != q.Eps || dq.Estimator != q.Estimator {
		t.Fatalf("level 0 changed the request: %+v", dq)
	}

	// Level 1 halves a fixed budget, with a floor.
	dq, changed := e.degradeRequest(Query{S: 0, T: 5, K: 1000}, 1)
	if !changed || dq.K != 500 {
		t.Fatalf("level 1 fixed budget: K=%d changed=%v", dq.K, changed)
	}
	dq, _ = e.degradeRequest(Query{S: 0, T: 5, K: 70}, 1)
	if dq.K != degradeKFloor {
		t.Fatalf("level 1 floor: K=%d want %d", dq.K, degradeKFloor)
	}
	if dq, changed := e.degradeRequest(Query{S: 0, T: 5, K: degradeKFloor}, 1); changed {
		t.Fatalf("budget at the floor still degraded: %+v", dq)
	}

	// Level 1 widens an anytime target instead, capped.
	dq, _ = e.degradeRequest(Query{S: 0, T: 5, K: 1000, Eps: 0.05}, 1)
	if dq.Eps != 0.1 || dq.K != 1000 {
		t.Fatalf("level 1 anytime: eps=%v K=%d", dq.Eps, dq.K)
	}
	dq, _ = e.degradeRequest(Query{S: 0, T: 5, K: 1000, Eps: 0.4}, 1)
	if dq.Eps != degradeEpsCap {
		t.Fatalf("level 1 eps cap: eps=%v want %v", dq.Eps, degradeEpsCap)
	}

	// Level 2 also forces routed plain queries to the cheapest estimator.
	dq, _ = e.degradeRequest(Query{S: 0, T: 5, K: 1000}, 2)
	if dq.Estimator == "" {
		t.Fatal("level 2 left the routed query unrouted")
	}
	if _, ok := e.state.Load().pools[dq.Estimator]; !ok {
		t.Fatalf("level 2 picked unknown estimator %q", dq.Estimator)
	}
	// An explicit estimator choice is respected at level 2.
	dq, _ = e.degradeRequest(Query{S: 0, T: 5, K: 1000, Estimator: "MC"}, 2)
	if dq.Estimator != "MC" {
		t.Fatalf("level 2 overrode the explicit estimator: %q", dq.Estimator)
	}

	// Level 3 sends plain queries to the bounds floor; other kinds stay
	// at level-2 treatment (bounds cannot answer them).
	dq, changed = e.degradeRequest(Query{S: 0, T: 5, K: 1000}, 3)
	if !changed || dq.Estimator != BoundsName {
		t.Fatalf("level 3 plain: estimator=%q", dq.Estimator)
	}
	dq, _ = e.degradeRequest(Query{Kind: KindTopK, S: 0, TopK: 3, K: 1000}, 3)
	if dq.Estimator == BoundsName {
		t.Fatal("level 3 sent a top-k query to the bounds floor")
	}
	if dq.K != 500 {
		t.Fatalf("level 3 top-k budget: K=%d want 500", dq.K)
	}
}

// TestDegradedBoundsFloor drives the full path end to end: a request that
// queues under injected memory pressure is served from the analytic
// bounds, flagged Degraded with StopReason "degraded", and the original
// request shape is echoed back.
func TestDegradedBoundsFloor(t *testing.T) {
	inj := faultinject.NewSeeded(1).WithRate(faultinject.MemPressure, 1)
	defer faultinject.Set(inj)()

	e := testEngine(t, Config{
		Seed: 42, MaxK: 2000, Workers: 1, CacheSize: 64,
		Admission: AdmissionConfig{MaxInflight: 1, MaxQueue: 4, QueueWait: 5 * time.Second},
	})
	// Occupy the only slot directly so the query below must queue.
	rel, _, err := e.adm.acquire(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for e.adm.stats().QueueLen == 0 {
			time.Sleep(time.Millisecond)
		}
		rel()
	}()
	q := Query{S: 0, T: 5, K: 1000}
	res := e.Estimate(context.Background(), q)
	if res.Err != nil {
		t.Fatalf("degraded query failed: %v", res.Err)
	}
	if !res.Degraded {
		t.Fatal("level-3 answer not flagged Degraded")
	}
	if res.Used != BoundsName {
		t.Fatalf("level-3 answer used %q, want the bounds floor", res.Used)
	}
	if res.StopReason != "degraded" {
		t.Fatalf("stop reason %q, want degraded", res.StopReason)
	}
	if res.Request.Estimator != q.Estimator || res.Request.K != q.K {
		t.Fatalf("degraded response mutated the echoed request: %+v", res.Request)
	}
	if res.Reliability < 0 || res.Reliability > 1 {
		t.Fatalf("bounds-floor reliability %v", res.Reliability)
	}
	if st := e.adm.stats(); st.Degraded == 0 {
		t.Fatalf("degraded counter not bumped: %+v", st)
	}
}

// TestAdmissionDisabledUnchanged: an engine without admission config
// serves exactly as before — no level, no Degraded flag, stats disabled.
func TestAdmissionDisabledUnchanged(t *testing.T) {
	e := testEngine(t, Config{Seed: 42, MaxK: 500, Workers: 2})
	if e.adm != nil {
		t.Fatal("zero AdmissionConfig built a controller")
	}
	res := e.Estimate(context.Background(), Query{S: 0, T: 5, K: 200})
	if res.Err != nil || res.Degraded {
		t.Fatalf("unadmitted serve: err=%v degraded=%v", res.Err, res.Degraded)
	}
	if st := e.Stats(); st.Admission.Enabled {
		t.Fatalf("admission stats claim enabled: %+v", st.Admission)
	}
}
