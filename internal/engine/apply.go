package engine

import (
	"context"
	"errors"
	"fmt"

	"relcomp/internal/core"
	"relcomp/internal/mutate"
	"relcomp/internal/uncertain"
)

// errEmptyBatch rejects Apply calls with nothing to commit: an empty
// batch would burn an epoch (invalidating nothing, notifying every
// subscriber) without recording any change.
var errEmptyBatch = errors.New("engine: empty mutation batch")

// mutationAdmitCost is the admission cost of one mutation, in the sample
// units the MaxInflightSamples budget is denominated in. A mutation batch
// competes with queries for the same budget: applying a batch rebuilds
// pools and repairs indexes, work on the order of a medium sampling query
// per mutation, so batches are costed accordingly instead of slipping
// past admission at zero weight.
const mutationAdmitCost = 64

// Apply commits one batch of mutations atomically: it validates every
// mutation against the current graph (rejecting the whole batch on the
// first bad one), derives the successor graph, repairs whichever offline
// indexes have been built (incrementally — see core.BFSIndex.Repair and
// core.ProbTreeIndex.Repair — falling back to a rebuild only above the
// ProbTree churn threshold), bumps the invalidation tag of exactly the
// sources that can reach a changed edge, publishes the successor state,
// and records the batch in the mutation log. It returns the new epoch.
//
// Concurrent queries are never torn: each query works against the state
// snapshot it loaded, so it observes the pre-batch world or the
// post-batch world in full. Batches serialize against each other.
// Mutations speak caller-side node ids (translated internally under
// DegreeRelabel); new edges get engine-internal ids and are therefore
// not addressable as evidence.
func (e *Engine) Apply(ctx context.Context, muts []mutate.Mutation) (uint64, error) {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx compatibility defaulting at the API boundary itself
	}
	if len(muts) == 0 {
		return 0, errEmptyBatch
	}
	if e.adm != nil {
		release, _, err := e.adm.acquire(ctx, int64(len(muts))*mutationAdmitCost, e.mutationKey(muts))
		if err != nil {
			return 0, err
		}
		defer release()
	}

	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	st := e.state.Load()

	internal := muts
	if e.relab != nil {
		internal = make([]mutate.Mutation, len(muts))
		for i, m := range muts {
			m.From = e.relab.nodeIn(m.From)
			m.To = e.relab.nodeIn(m.To)
			internal[i] = m
		}
	}
	deltas := make([]uncertain.EdgeDelta, len(internal))
	for i, m := range internal {
		if err := m.Check(st.g); err != nil {
			return 0, err
		}
		deltas[i] = m.Delta()
	}

	ng, changed, err := uncertain.ApplyDeltas(st.g, deltas)
	if err != nil {
		return 0, err
	}

	epoch := st.epoch + 1
	var next *epochState
	var affected []uncertain.NodeID
	var repairs, rebuilds uint64
	if ng == st.g {
		// The batch had no net effect on the graph (e.g. updates writing
		// the current probability): the epoch still advances and the batch
		// is still logged, but every piece of serving state is shared.
		next = st.sharedSuccessor(epoch)
	} else {
		bfsIx := newLazyIndex(func() *core.BFSIndex {
			return core.NewBFSIndex(ng, replicaSeed(e.cfg.Seed, sharedName), e.cfg.MaxK)
		})
		if old, ok := st.bfsIx.peek(); ok {
			bfsIx = resolvedIndex(old.Repair(ng, changed))
			repairs++
		}
		ptIx := newLazyIndex(func() *core.ProbTreeIndex {
			return core.NewProbTreeIndex(ng, core.DefaultTreeWidth)
		})
		if old, ok := st.ptIx.peek(); ok {
			nix, rebuilt := old.Repair(ng, changed, 0)
			ptIx = resolvedIndex(nix)
			if rebuilt {
				rebuilds++
			} else {
				repairs++
			}
		}

		affected = affectedSources(ng, changed)
		srcEpoch := append([]uint64(nil), st.srcEpoch...)
		for _, u := range affected {
			srcEpoch[u] = epoch
		}

		next, err = buildEpochState(e.cfg, ng, epoch, srcEpoch, bfsIx, ptIx)
		if err != nil {
			return 0, err
		}
	}

	e.state.Store(next)
	rec := mutate.Batch{Epoch: epoch, Muts: append([]mutate.Mutation(nil), muts...)}
	if err := e.log.Append(rec); err != nil {
		// applyMu serializes commits, so the log's chain can only break if
		// the engine's own bookkeeping is wrong.
		panic(fmt.Sprintf("engine: mutation log out of sync: %v", err))
	}

	e.mu.Lock()
	e.mutBatches++
	e.mutApplied += uint64(len(muts))
	e.srcInvalidated += uint64(len(affected))
	e.idxRepairs += repairs
	e.idxRebuilds += rebuilds
	e.mu.Unlock()

	e.notifySubs()
	return epoch, nil
}

// affectedSources returns every node from which some changed edge is
// reachable — the sources whose reliability answers a batch may have
// moved, found by one multi-source BFS over the reverse adjacency seeded
// at the changed edges' tails. The walk is over topology alone (tombstoned
// edges are traversed), which makes it conservative in both directions:
// an edge that was removed still invalidates the sources that could reach
// it before, and an edge that was added invalidates the sources that can
// reach it now. R(s, ·), the analytic bounds, and every source-rooted
// kind depend only on s's reachable subgraph, so sources outside this set
// provably answer identically pre- and post-batch.
func affectedSources(g *uncertain.Graph, changed []uncertain.EdgeID) []uncertain.NodeID {
	if len(changed) == 0 {
		return nil
	}
	seen := make([]bool, g.NumNodes())
	var queue []uncertain.NodeID
	for _, id := range changed {
		if u := g.Edge(id).From; !seen[u] {
			seen[u] = true
			queue = append(queue, u)
		}
	}
	for i := 0; i < len(queue); i++ {
		for _, u := range g.InNeighbors(queue[i]) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return queue
}

// mutationKey folds a batch into the deterministic key the admission
// controller's fault-injection points are consulted with, mirroring
// admissionKey for queries.
func (e *Engine) mutationKey(muts []mutate.Mutation) uint64 {
	var key uint64
	for _, m := range muts {
		key = mix64(key ^ querySeed(e.cfg.Seed, "mutate", m.From, m.To, int(m.Op)))
	}
	return key
}
