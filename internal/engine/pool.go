package engine

import (
	"sync"

	"relcomp/internal/core"
)

// pool hands out estimator instances of one kind. The paper's estimators
// keep per-instance scratch state (visited sets, node bit-vectors, lazy
// propagation heaps) and are not goroutine-safe, so every borrower gets an
// instance for its exclusive use and returns it when done.
//
// Instances are replicas: they are all constructed with the same seed, so
// an index-based estimator (BFSSharing, ProbTree) builds the identical
// index in every replica and any replica answers a query with the same
// value. The sampling estimators are made query-deterministic by the
// engine, which reseeds the borrowed instance from the query key before
// every Estimate call (see querySeed). Together these make results
// independent of which worker serves which query — the property the
// engine's sequential-equivalence guarantee rests on.
//
// Construction is lazy: a replica is built the first time demand exceeds
// the number of existing idle instances, up to capacity. This matters for
// the index-based estimators, whose per-replica build cost (and index
// memory) is only paid at the concurrency level actually reached.
type pool struct {
	factory func() core.Estimator
	idle    chan core.Estimator

	mu       sync.Mutex
	created  int
	capacity int
}

func newPool(capacity int, factory func() core.Estimator) *pool {
	return &pool{
		factory:  factory,
		idle:     make(chan core.Estimator, capacity),
		capacity: capacity,
	}
}

// get returns an idle instance, builds a new one if under capacity, or
// blocks until an instance is returned.
func (p *pool) get() core.Estimator {
	select {
	case est := <-p.idle:
		return est
	default:
	}
	p.mu.Lock()
	// Recheck idle under the lock: an instance may have been returned
	// between the poll above and here, and building a redundant replica
	// costs index construction plus permanently retained index memory.
	select {
	case est := <-p.idle:
		p.mu.Unlock()
		return est
	default:
	}
	if p.created < p.capacity {
		p.created++
		p.mu.Unlock()
		// Build outside the lock: index construction can be slow and must
		// not serialize unrelated borrowers.
		return p.factory()
	}
	p.mu.Unlock()
	return <-p.idle
}

// put returns an instance to the pool.
func (p *pool) put(est core.Estimator) { p.idle <- est }

// size reports how many replicas have been constructed so far.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
