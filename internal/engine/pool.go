package engine

import (
	"sync"
	"time"

	"relcomp/internal/core"
)

// pool hands out estimator instances of one kind. The paper's estimators
// keep per-instance scratch state (visited sets, node bit-vectors, lazy
// propagation heaps) and are not goroutine-safe, so every borrower gets an
// instance for its exclusive use and returns it when done.
//
// Instances are replicas: they are all constructed with the same seed, so
// any replica answers a query with the same value. The index-based
// estimators (BFSSharing, ProbTree) share one immutable offline index
// across all of a pool's replicas — each replica is a cheap online-scratch
// handle over it (see factoryFor) — so pool memory stays O(index), not
// O(capacity × index). The sampling estimators are made
// query-deterministic by the engine, which reseeds the borrowed instance
// from the query key before every Estimate call (see querySeed). Together
// these make results independent of which worker serves which query — the
// property the engine's sequential-equivalence guarantee rests on.
//
// Construction is lazy: a replica is built the first time demand exceeds
// the number of existing idle instances, up to capacity. The shared index
// is built once, on the pool's first borrow; every further replica costs
// only its online scratch.
type pool struct {
	factory func() core.Estimator

	mu       sync.Mutex
	cond     *sync.Cond // signaled when idle gains an instance or a build slot frees
	idle     []core.Estimator
	created  int
	capacity int
	// Fault accounting: discard drops a replica that panicked mid-query
	// (its scratch state is suspect) and frees its capacity slot, so the
	// pool rebuilds on the next demand instead of leaking capacity. Each
	// discard doubles rebuildDelay — a replica faulting deterministically
	// (a poisoned index, a bad page) must not spin build-fault-build at
	// full speed — and any successful build resets it.
	discards     int
	rebuildDelay time.Duration
}

// rebuildBackoffBase and rebuildBackoffMax bound the build backoff after
// a discarded replica: exponential from 1ms, capped low enough that a
// recovered pool returns to full capacity quickly.
const (
	rebuildBackoffBase = time.Millisecond
	rebuildBackoffMax  = 250 * time.Millisecond
)

func newPool(capacity int, factory func() core.Estimator) *pool {
	p := &pool{
		factory:  factory,
		idle:     make([]core.Estimator, 0, capacity),
		capacity: capacity,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// get returns an idle instance, builds a new one if under capacity, or
// blocks until an instance is returned (or a build slot frees up).
func (p *pool) get() core.Estimator {
	p.mu.Lock()
	for {
		if n := len(p.idle); n > 0 {
			est := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			return est
		}
		if p.created < p.capacity {
			p.created++
			delay := p.rebuildDelay
			p.mu.Unlock()
			// Build outside the lock: index construction can be slow and
			// must not serialize unrelated borrowers. A panicking factory
			// must give its capacity slot back on the way out — and wake a
			// parked borrower so it can retry the build — otherwise every
			// panic permanently burns a slot and waiters block forever.
			if delay > 0 {
				// A replica was recently discarded after a fault: back off
				// before rebuilding so a deterministically faulting replica
				// cannot spin the pool through build-fault-build at full
				// speed.
				time.Sleep(delay)
			}
			built := false
			defer func() {
				if !built {
					p.mu.Lock()
					p.created--
					p.cond.Signal()
					p.mu.Unlock()
				}
			}()
			est := p.factory()
			built = true
			p.mu.Lock()
			p.rebuildDelay = 0
			p.mu.Unlock()
			return est
		}
		p.cond.Wait()
	}
}

// put returns an instance to the pool.
func (p *pool) put(est core.Estimator) {
	p.mu.Lock()
	p.idle = append(p.idle, est)
	p.cond.Signal()
	p.mu.Unlock()
}

// discard drops a borrowed instance instead of returning it — the caller
// observed it fault (panic mid-query) and its scratch state must never
// serve again. The capacity slot is freed so get can rebuild (after the
// backoff), and a parked borrower is woken to take the freed slot;
// without both, every fault would permanently shrink the pool toward a
// deadlock at zero replicas.
func (p *pool) discard() {
	p.mu.Lock()
	p.created--
	p.discards++
	if p.rebuildDelay == 0 {
		p.rebuildDelay = rebuildBackoffBase
	} else if p.rebuildDelay < rebuildBackoffMax {
		p.rebuildDelay *= 2
		if p.rebuildDelay > rebuildBackoffMax {
			p.rebuildDelay = rebuildBackoffMax
		}
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// faults reports how many replicas have been discarded after faults.
func (p *pool) faults() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.discards
}

// size reports how many replicas have been constructed so far.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
