package engine

import (
	"sync"

	"relcomp/internal/core"
)

// pool hands out estimator instances of one kind. The paper's estimators
// keep per-instance scratch state (visited sets, node bit-vectors, lazy
// propagation heaps) and are not goroutine-safe, so every borrower gets an
// instance for its exclusive use and returns it when done.
//
// Instances are replicas: they are all constructed with the same seed, so
// any replica answers a query with the same value. The index-based
// estimators (BFSSharing, ProbTree) share one immutable offline index
// across all of a pool's replicas — each replica is a cheap online-scratch
// handle over it (see factoryFor) — so pool memory stays O(index), not
// O(capacity × index). The sampling estimators are made
// query-deterministic by the engine, which reseeds the borrowed instance
// from the query key before every Estimate call (see querySeed). Together
// these make results independent of which worker serves which query — the
// property the engine's sequential-equivalence guarantee rests on.
//
// Construction is lazy: a replica is built the first time demand exceeds
// the number of existing idle instances, up to capacity. The shared index
// is built once, on the pool's first borrow; every further replica costs
// only its online scratch.
type pool struct {
	factory func() core.Estimator

	mu       sync.Mutex
	cond     *sync.Cond // signaled when idle gains an instance or a build slot frees
	idle     []core.Estimator
	created  int
	capacity int
}

func newPool(capacity int, factory func() core.Estimator) *pool {
	p := &pool{
		factory:  factory,
		idle:     make([]core.Estimator, 0, capacity),
		capacity: capacity,
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// get returns an idle instance, builds a new one if under capacity, or
// blocks until an instance is returned (or a build slot frees up).
func (p *pool) get() core.Estimator {
	p.mu.Lock()
	for {
		if n := len(p.idle); n > 0 {
			est := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			return est
		}
		if p.created < p.capacity {
			p.created++
			p.mu.Unlock()
			// Build outside the lock: index construction can be slow and
			// must not serialize unrelated borrowers. A panicking factory
			// must give its capacity slot back on the way out — and wake a
			// parked borrower so it can retry the build — otherwise every
			// panic permanently burns a slot and waiters block forever.
			built := false
			defer func() {
				if !built {
					p.mu.Lock()
					p.created--
					p.cond.Signal()
					p.mu.Unlock()
				}
			}()
			est := p.factory()
			built = true
			return est
		}
		p.cond.Wait()
	}
}

// put returns an instance to the pool.
func (p *pool) put(est core.Estimator) {
	p.mu.Lock()
	p.idle = append(p.idle, est)
	p.cond.Signal()
	p.mu.Unlock()
}

// size reports how many replicas have been constructed so far.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
