package engine

import (
	"container/list"
	"sync"

	"relcomp/internal/uncertain"
)

// cacheKey identifies one answered query (or, with est/k zeroed, one
// (s,t) pair for the router's bounds memo). Results are deterministic
// given the engine seed (replica pools + per-query reseeding), so a
// cached value is exactly the value a fresh computation would return and
// caching is invisible to callers except in latency and the Cached flag.
type cacheKey struct {
	s, t uncertain.NodeID
	est  string
	k    int
}

// lruCache is a bounded least-recently-used cache with hit/miss
// counters. All methods are safe for concurrent use.
type lruCache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheEntry[V any] struct {
	key   cacheKey
	value V
}

// newLRUCache returns a cache holding up to capacity values; capacity <=
// 0 returns nil, and a nil *lruCache is a valid always-miss cache.
func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &lruCache[V]{
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// get looks the key up, promoting it to most-recently-used on a hit.
func (c *lruCache[V]) get(key cacheKey) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).value, true
}

// put inserts or refreshes the key, evicting the least-recently-used
// entry when the cache is full.
func (c *lruCache[V]) put(key cacheKey, value V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry[V]).value = value
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry[V]).key)
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry[V]{key: key, value: value})
}

// counters returns (hits, misses, current length, capacity).
func (c *lruCache[V]) counters() (hits, misses uint64, length, capacity int) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len(), c.capacity
}
