package engine

import (
	"container/list"
	"sync"

	"relcomp/internal/uncertain"
)

// cacheKey identifies one answered query (or, with the non-(s,t) fields
// zeroed, one (s,t) pair for the router's bounds memo). Results are
// deterministic given the engine seed (replica pools + per-query
// reseeding), so a cached value is exactly the value a fresh computation
// with the same key would return and caching is invisible to callers
// except in latency and the Cached flag. Anytime (ε-targeted) answers
// stop at a different sample count than fixed-budget ones, so ε is part
// of the key — and because a routed anytime query runs a bounds-seeded
// chunk schedule (prior + first chunk) that stops at different boundaries
// than the default schedule a named query uses, the schedule is part of
// the key too; entries from the two paths never mix. Deadline-truncated
// answers are timing-dependent and never cached at all.
type cacheKey struct {
	s, t uncertain.NodeID
	est  string
	k    int
	eps  float64
	// The anytime chunk schedule that produced the answer: zero for
	// fixed-budget queries and for anytime queries on the default
	// schedule; the bounds-derived seed for routed anytime queries.
	chunk int
	prior float64
	// The request-union dimensions: all zero for a plain s-t reliability
	// query (so pre-union keys are unchanged). kind separates the query
	// kinds, d and topk carry the distance bound and ranking size, and
	// targets/evidence are 128-bit set fingerprints (see fingerprintIDs) —
	// a k-terminal target set or an evidence overlay is part of a query's
	// identity, so answers under different sets never alias.
	kind     Kind
	d        int
	topk     int
	targets  [2]uint64
	evidence [2]uint64
	// epoch is the source's mutation-invalidation tag (epochState.srcEpoch):
	// a mutation reachable from s bumps the tag, so s's old entries become
	// unreachable and age out of the LRU, while untouched sources keep
	// hitting across the epoch bump. The router's bounds memo keys carry
	// the same tag.
	epoch uint64
}

// lruCache is a bounded least-recently-used cache with hit/miss
// counters. All methods are safe for concurrent use.
type lruCache[V any] struct {
	mu        sync.Mutex
	capacity  int
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry[V any] struct {
	key   cacheKey
	value V
}

// newLRUCache returns a cache holding up to capacity values; capacity <=
// 0 returns nil, and a nil *lruCache is a valid always-miss cache.
func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &lruCache[V]{
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element, capacity),
		order:    list.New(),
	}
}

// get looks the key up, promoting it to most-recently-used on a hit.
func (c *lruCache[V]) get(key cacheKey) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).value, true
}

// peek looks the key up without promoting it and without touching the
// hit/miss counters — for advisory consumers (the admission controller's
// cost estimator peeks the router's bounds memo) that must not skew the
// stats operators size the caches from, nor perturb the LRU order real
// traffic establishes.
func (c *lruCache[V]) peek(key cacheKey) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	return el.Value.(*cacheEntry[V]).value, true
}

// put inserts or refreshes the key, evicting the least-recently-used
// entry when the cache is full.
func (c *lruCache[V]) put(key cacheKey, value V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry[V]).value = value
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry[V]).key)
			c.evictions++
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry[V]{key: key, value: value})
}

// CacheStats is a point-in-time snapshot of one bounded cache's counters,
// exported so operators can size the LRUs (the result cache and the
// router's bounds memo) from /v1/engine/stats.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
	Cap       int    `json:"cap"`
}

// stats snapshots the cache counters.
func (c *lruCache[V]) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.order.Len(),
		Cap:       c.capacity,
	}
}
