package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// The dynamic-graph serving state. Everything derived from the graph —
// the graph itself, the estimator replica pools, the lazily built offline
// indexes, the evidence-overlay memo, the per-hop-bound distance pools,
// and the per-source invalidation epochs — lives in one immutable
// epochState behind an atomic pointer. A query loads the pointer once and
// works against that consistent snapshot for its whole lifetime;
// Engine.Apply builds the successor state off to the side (repairing the
// built indexes incrementally) and swaps the pointer, so concurrent
// queries see either the pre-mutation world or the post-mutation world,
// never a blend. Engine-global concerns that must survive mutations —
// the result cache (epoch-tagged keys make stale entries unreachable),
// the router's latency EWMAs, admission control, counters, the id
// relabel map (the node set never changes) — stay on the Engine.

// lazyIndex is a peekable once-cell: get() builds on first use (like
// sync.OnceValue), and peek() reports the built value without forcing the
// build — which is what lets Apply repair an index incrementally exactly
// when someone has paid for it, and keep laziness when nobody has.
type lazyIndex[T any] struct {
	once  sync.Once
	build func() T
	built atomic.Bool
	v     T
}

// newLazyIndex returns a cell that builds on first get.
func newLazyIndex[T any](build func() T) *lazyIndex[T] {
	return &lazyIndex[T]{build: build}
}

// resolvedIndex returns a cell already holding v (a preloaded or repaired
// index); get returns it immediately and peek reports it built.
func resolvedIndex[T any](v T) *lazyIndex[T] {
	l := &lazyIndex[T]{v: v}
	l.once.Do(func() { l.built.Store(true) })
	return l
}

func (l *lazyIndex[T]) get() T {
	l.once.Do(func() {
		l.v = l.build()
		l.built.Store(true)
	})
	return l.v
}

func (l *lazyIndex[T]) peek() (v T, ok bool) {
	if !l.built.Load() {
		return v, false
	}
	return l.v, true
}

// distPoolSet is the per-hop-bound distance pool map of one epoch's
// graph. It is a separate mutex-guarded object (not inline epochState
// fields) so a no-op mutation can share it between adjacent states
// without two locks guarding one map.
type distPoolSet struct {
	mu    sync.Mutex
	pools map[int]*pool
	g     *uncertain.Graph
}

// epochState is one epoch's immutable serving state; see the package
// comment above. Fields are set once by buildEpochState (or shared from
// the predecessor when the graph did not change) and never written after
// the state is published, with the one exception of the internally
// synchronized lazy/memo members (bfsIx, ptIx, overlays, dist).
type epochState struct {
	// epoch is the number of mutation batches applied to reach this
	// state, counted from the engine's base epoch (0 for a fresh graph,
	// the manifest epoch for a snapshot start).
	epoch uint64
	g     *uncertain.Graph
	pools map[string]*pool
	// overlays memoizes evidence-conditioned probability overlays of g
	// (kinds.go). Overlay probabilities come from g, so the memo belongs
	// to the epoch: a mutation drops it wholesale with the state.
	overlays *lruCache[*uncertain.Graph]
	dist     *distPoolSet
	// srcEpoch[v] is the epoch of the last mutation whose edges were
	// reachable from v — the conservative invalidation vector. It tags
	// result-cache and bounds-memo keys: a mutation bumps the tag of
	// every source that could observe it, so those sources' old entries
	// become unreachable (and age out of the LRU), while untouched
	// sources keep hitting their entries across the epoch bump.
	srcEpoch []uint64
	bfsIx    *lazyIndex[*core.BFSIndex]
	ptIx     *lazyIndex[*core.ProbTreeIndex]
}

// srcTag returns the invalidation tag for source s, tolerating
// out-of-range ids (admission cost estimates run before validation).
func (st *epochState) srcTag(s uncertain.NodeID) uint64 {
	if s < 0 || int(s) >= len(st.srcEpoch) {
		return 0
	}
	return st.srcEpoch[s]
}

// indexHolders builds the lazy offline-index cells for a graph, honoring
// preloaded indexes when given (epoch 0 under Config.Preloaded).
func indexHolders(cfg Config, g *uncertain.Graph) (*lazyIndex[*core.BFSIndex], *lazyIndex[*core.ProbTreeIndex]) {
	bfs := newLazyIndex(func() *core.BFSIndex {
		return core.NewBFSIndex(g, replicaSeed(cfg.Seed, sharedName), cfg.MaxK)
	})
	pt := newLazyIndex(func() *core.ProbTreeIndex {
		return core.NewProbTreeIndex(g, core.DefaultTreeWidth)
	})
	if pre := cfg.Preloaded; pre != nil {
		if pre.BFS != nil {
			bfs = resolvedIndex(pre.BFS)
		}
		if pre.ProbTree != nil {
			pt = resolvedIndex(pre.ProbTree)
		}
	}
	return bfs, pt
}

// buildEpochState assembles one epoch's serving state over g: fresh
// replica pools wired to the given index cells, a fresh overlay memo, and
// fresh distance pools. cfg must already be normalized (newEngine does
// that once).
func buildEpochState(cfg Config, g *uncertain.Graph, epoch uint64, srcEpoch []uint64, bfsIx *lazyIndex[*core.BFSIndex], ptIx *lazyIndex[*core.ProbTreeIndex]) (*epochState, error) {
	st := &epochState{
		epoch:    epoch,
		g:        g,
		pools:    make(map[string]*pool, len(cfg.Estimators)),
		overlays: newLRUCache[*uncertain.Graph](overlayCacheCap),
		dist:     &distPoolSet{pools: make(map[int]*pool), g: g},
		srcEpoch: srcEpoch,
		bfsIx:    bfsIx,
		ptIx:     ptIx,
	}
	for _, name := range cfg.Estimators {
		if _, dup := st.pools[name]; dup {
			return nil, fmt.Errorf("engine: estimator %q configured twice", name)
		}
		factory, err := factoryFor(name, g, replicaSeed(cfg.Seed, name), cfg.Workers, bfsIx, ptIx)
		if err != nil {
			return nil, err
		}
		capacity := cfg.Workers
		if internallyParallel(name) {
			capacity = 1
		}
		st.pools[name] = newPool(capacity, factory)
	}
	return st, nil
}

// sharedSuccessor returns a successor state for a mutation with no net
// graph effect: the epoch advances (the batch is recorded and reported),
// but every piece of serving state — pools, indexes, memos, invalidation
// tags — is shared with the predecessor.
func (st *epochState) sharedSuccessor(epoch uint64) *epochState {
	return &epochState{
		epoch:    epoch,
		g:        st.g,
		pools:    st.pools,
		overlays: st.overlays,
		dist:     st.dist,
		srcEpoch: st.srcEpoch,
		bfsIx:    st.bfsIx,
		ptIx:     st.ptIx,
	}
}
