package engine

import (
	"context"
	"fmt"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/faultinject"
	"relcomp/internal/uncertain"
)

// Execution of the non-plain request kinds: distance-constrained
// reachability, top-k ranking, single-source, k-terminal, and any kind
// conditioned on evidence. Plain s-t reliability (no evidence) keeps the
// original engine paths in engine.go — routing, source-grouped batching —
// untouched and bit-identical; everything else funnels through runKind,
// which reuses the same machinery at the next level up: pooled estimator
// replicas (per-d pools for distance), the LRU result cache keyed on the
// full request identity (kind, parameters, evidence fingerprint), anytime
// sequential stopping over the core sampler sessions, and per-estimator
// stats accounting.

// ktName is the display/cache name of the k-terminal sampler, and distName
// builds the per-hop-bound name distance pools and stats rows use. Neither
// is a routable pool estimator; they exist in the name space so stats,
// cache keys, and per-query seeds stay uniform across kinds.
const ktName = "KTerminal"

func distName(d int) string { return fmt.Sprintf("MC(d<=%d)", d) }

// overlayCacheCap bounds the engine's evidence-overlay LRU: one entry per
// distinct evidence set seen recently, each holding an O(m) probability
// copy over the shared topology.
const overlayCacheCap = 64

// evidenceCapable reports whether the named estimator can answer
// evidence-conditioned requests: it must be index-free (an offline index
// bakes the base probabilities in) and constructible in O(n) per overlay.
func evidenceCapable(name string) bool { return name == "MC" || packLike(name) }

// kindEstimator resolves the estimator name a non-plain request runs on.
// Resolution is deterministic (no latency-dependent routing): the analytic
// bounds router is an s-t device, so the other kinds default to the
// estimator whose core API serves them best — one shared BFS Sharing
// traversal for the source-rooted kinds, the index-free PackMC under
// evidence, the MC family for the per-sample kinds.
func (e *Engine) kindEstimator(q Request) string { return kindEstimatorFor(q) }

// kindEstimatorFor is the static (engine-independent) kind resolution;
// the compat seeding helpers reuse it so callers can predict the name.
func kindEstimatorFor(q Request) string {
	switch q.kind() {
	case KindDistance:
		return distName(q.D)
	case KindKTerminal:
		return ktName
	case KindTopK, KindSingleSource:
		if q.Estimator != "" {
			return q.Estimator
		}
		if !q.Evidence.Empty() {
			return packName
		}
		return sharedName
	default: // KindReliability under evidence
		if q.Estimator != "" {
			return q.Estimator
		}
		return packName
	}
}

// kindKey builds the result-cache key for a non-plain request: the full
// request identity, with the estimator name resolved so an explicit
// default and an omitted one share the entry, tagged with the source's
// invalidation epoch like every other key.
func (e *Engine) kindKey(st *epochState, q Request, name string) cacheKey {
	return cacheKey{
		s: q.S, t: q.T, est: name, k: q.K, eps: q.Eps,
		kind: q.kind(), d: q.D, topk: q.TopK,
		targets:  fingerprintIDs(0x7a6e75, q.Targets),
		evidence: fingerprintEvidence(q.Evidence),
		epoch:    st.srcTag(q.S),
	}
}

// graphFor resolves the request's effective graph: the epoch's shared
// graph, or — under evidence — a probability overlay from the epoch's
// bounded overlay LRU, built on first use (overlay probabilities come
// from the epoch's graph, so the memo lives and dies with the state).
// Concurrent first requests for one evidence set may race to build the
// overlay; the race is benign (the overlays are identical) and the LRU
// keeps one.
func (e *Engine) graphFor(st *epochState, ev Evidence) (*uncertain.Graph, error) {
	if ev.Empty() {
		return st.g, nil
	}
	key := cacheKey{evidence: fingerprintEvidence(ev)}
	if g, ok := st.overlays.get(key); ok {
		return g, nil
	}
	g, err := uncertain.Overlay(st.g, ev.Include, ev.Exclude)
	if err != nil {
		return nil, err
	}
	st.overlays.put(key, g)
	return g, nil
}

// distPoolCap bounds the number of per-hop-bound distance pools an engine
// keeps alive: d is client-controlled, and each pool retains O(n) replica
// scratch, so an unbounded map would let a client sweeping hop bounds grow
// server memory without limit (the evidence overlays are bounded by an LRU
// for the same reason).
const distPoolCap = 32

// distPool returns the epoch's replica pool for the hop bound d, creating
// it on first demand. Distance pools are keyed per d — the hop bound is
// baked into the estimator — and sized like every named pool. At most
// distPoolCap distinct hop bounds are pooled at once; beyond that an
// arbitrary pool is evicted (in-flight borrowers keep their own pool
// pointer, so eviction never disturbs a running query).
func (e *Engine) distPool(st *epochState, d int) *pool {
	ds := st.dist
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if p, ok := ds.pools[d]; ok {
		return p
	}
	if len(ds.pools) >= distPoolCap {
		// Evict the largest-d pool. Any fixed rule works for capacity
		// control (evicted pools rebuild deterministically from their
		// seed); picking one by map iteration order would make eviction —
		// and therefore rebuild cost — vary run to run.
		evict := -1
		for k := range ds.pools { //lint:allow maprange commutative max over keys; eviction choice is order-independent
			if k > evict {
				evict = k
			}
		}
		delete(ds.pools, evict)
	}
	seed := replicaSeed(e.cfg.Seed, distName(d))
	g := ds.g
	p := newPool(e.cfg.Workers, func() core.Estimator {
		return core.NewDistanceConstrainedMC(g, seed, d)
	})
	ds.pools[d] = p
	return p
}

// kindSeed derives the deterministic sampling-stream seed of a non-plain
// request: the same querySeed chain the plain path uses, with the
// source-rooted kinds keyed target-less (their one traversal serves every
// target). Evidence does not enter the seed — two requests differing only
// in evidence draw common random numbers over different overlays, which
// is statistically sound and lets scenario comparisons share noise — and
// it is what makes the legacy-compat seeding (CompatQuerySeed) reach the
// evidence path too.
func (e *Engine) kindSeed(name string, q Request) uint64 {
	switch q.kind() {
	case KindReliability, KindDistance:
		return querySeed(e.cfg.Seed, name, q.S, q.T, q.K)
	default: // source-rooted: top-k, single-source, k-terminal
		return querySeed(e.cfg.Seed, name, q.S, q.S, q.K)
	}
}

// runKind answers one validated non-plain request: cache lookup on the
// full request identity, then per-kind computation, cache fill, and
// accounting. The deadline rule matches the plain path: deadline-truncated
// answers are timing-dependent and never cached.
func (e *Engine) runKind(ctx context.Context, st *epochState, q Request, res *Response) {
	name := e.kindEstimator(q)
	res.Used = name
	dl := effectiveDeadline(ctx, q.Deadline)
	key := e.kindKey(st, q, name)
	if dl.IsZero() {
		if v, ok := e.cache.get(key); ok {
			res.Reliability = v.r
			res.Reliabilities = v.all
			res.TopTargets = v.top
			res.SamplesUsed = v.samples
			res.StopReason = v.reason
			res.Cached = true
			res.Epoch = v.epoch
			e.record(name, 0, true)
			return
		}
	}
	start := time.Now()
	if err := capturePanic(func() { e.computeKind(ctx, st, name, q, dl, res) }); err != nil {
		// Panics on the non-pooled kind paths (overlay estimators,
		// k-terminal samplers) are contained here; pooled borrows inside
		// computeKind contain and discard via withReplica before this.
		res.Err = err
	}
	res.Latency = time.Since(start)
	if res.Err == nil && dl.IsZero() {
		e.cache.put(key, cacheVal{
			r: res.Reliability, all: res.Reliabilities, top: res.TopTargets,
			samples: res.SamplesUsed, reason: res.StopReason, epoch: st.epoch,
		})
	}
	e.record(name, res.Latency.Seconds(), false)
}

// computeKind dispatches one non-plain request to its kind's execution.
func (e *Engine) computeKind(ctx context.Context, st *epochState, name string, q Request, dl time.Time, res *Response) {
	if faultinject.Enabled() {
		// Keyed by the kind's deterministic stream seed; the injected
		// panic fires before any pool borrow and is contained by runKind.
		fkey := e.kindSeed(name, q)
		faultinject.Sleep(faultinject.SlowReplica, fkey)
		faultinject.MaybePanic(faultinject.EstimatorPanic, fkey)
	}
	g, err := e.graphFor(st, q.Evidence)
	if err != nil {
		res.Err = err
		return
	}
	anytime := q.Eps > 0 || !dl.IsZero()
	opts := core.AdaptiveOptions{Eps: q.Eps, MaxK: q.K, Deadline: dl, Ctx: ctx}
	switch q.kind() {
	case KindReliability: // evidence-conditioned s-t
		inst := e.overlayEstimator(name, g, q)
		e.runScalar(ctx, q, inst.Estimate, stSampler(inst, q), anytime, opts, res)
	case KindDistance:
		if q.Evidence.Empty() {
			p := e.distPool(st, q.D)
			if err := e.withReplica(p, func(inst core.Estimator) {
				inst.(core.Seeder).Reseed(e.kindSeed(name, q))
				e.runScalar(ctx, q, inst.Estimate, stSampler(inst, q), anytime, opts, res)
			}); err != nil {
				res.Err = err
			}
			return
		}
		inst := core.NewDistanceConstrainedMC(g, e.kindSeed(name, q), q.D)
		e.runScalar(ctx, q, inst.Estimate, stSampler(inst, q), anytime, opts, res)
	case KindKTerminal:
		kt, err := core.NewKTerminal(g, e.kindSeed(name, q), q.Targets)
		if err != nil {
			res.Err = err
			return
		}
		est := func(s, _ uncertain.NodeID, k int) float64 { return kt.Estimate(s, k) }
		e.runScalar(ctx, q, est, func() core.Sampler { return kt.Sampler(q.S) }, anytime, opts, res)
	case KindTopK, KindSingleSource:
		e.runSourceRooted(ctx, st, name, g, q, anytime, opts, res)
	default:
		res.Err = fmt.Errorf("engine: unknown kind %q", q.Kind)
	}
}

// stSampler defers opening an s-t sampler session until the anytime path
// actually needs it: opening a session can advance estimator stream state
// (PackMC's round counter), which would knock the fixed path off the
// bit-identical stream a hand-constructed estimator draws.
func stSampler(inst core.Estimator, q Request) func() core.Sampler {
	return func() core.Sampler { return core.NewSampler(inst, q.S, q.T) }
}

// runScalar answers the scalar kinds (s-t under evidence, distance,
// k-terminal): one fixed-budget call, or an anytime session under the
// request's stopping rules. The fixed path calls the estimator's own
// Estimate, so it stays bit-identical to a hand-constructed run with the
// same stream seed.
func (e *Engine) runScalar(ctx context.Context, q Request, est func(s, t uncertain.NodeID, k int) float64, open func() core.Sampler, anytime bool, opts core.AdaptiveOptions, res *Response) {
	if !anytime {
		res.Reliability = est(q.S, q.T, q.K)
		res.SamplesUsed = q.K
		return
	}
	ar := core.AdaptiveEstimate(open(), opts)
	res.Reliability = ar.Estimate
	res.SamplesUsed = ar.Samples
	res.StopReason = string(ar.Reason)
	if ar.Reason == core.StopCanceled {
		res.Err = ctx.Err()
	}
	e.recordAnytime(q.K, ar.Samples)
}

// runSourceRooted answers top-k and single-source: one shared multi-target
// traversal on a SourceSampler estimator — the pooled BFS Sharing querier
// over the shared index, the pooled PackMC, or an index-free PackMC built
// over the evidence overlay.
func (e *Engine) runSourceRooted(ctx context.Context, st *epochState, name string, g *uncertain.Graph, q Request, anytime bool, opts core.AdaptiveOptions, res *Response) {
	if q.Evidence.Empty() {
		p := st.pools[name]
		if err := e.withReplica(p, func(pooled core.Estimator) {
			e.sourceRootedOn(ctx, name, g, q, pooled, anytime, opts, res)
		}); err != nil {
			res.Err = err
		}
		return
	}
	// Under evidence, validate restricted name to a PackMC width; build the
	// index-free kernel at that width over the overlay.
	inst := newPackLike(name, g, replicaSeed(e.cfg.Seed, name))
	e.sourceRootedOn(ctx, name, g, q, inst, anytime, opts, res)
}

// sourceRootedOn runs the source-rooted kinds on an instance the caller
// owns (a pooled replica or an overlay-built estimator).
func (e *Engine) sourceRootedOn(ctx context.Context, name string, g *uncertain.Graph, q Request, inst core.Estimator, anytime bool, opts core.AdaptiveOptions, res *Response) {
	// PackMC is reseeded target-less exactly like the plain batch path, so
	// its traversal draws the world ensemble each single s-t query would.
	// The BFS querier has no per-query stream — its worlds are the shared
	// pre-sampled index — which is what makes engine answers reproduce a
	// hand-built BFSSharing with the matching index seed bit for bit.
	if s, ok := inst.(core.Seeder); ok {
		s.Reseed(e.kindSeed(name, q))
	}
	ss, ok := inst.(core.SourceSampler)
	if !ok {
		res.Err = fmt.Errorf("engine: estimator %q has no multi-target traversal", name)
		return
	}
	if q.kind() == KindTopK {
		if !anytime {
			top, err := core.TopKReliableTargets(ss, g, q.S, q.TopK, q.K)
			if err != nil {
				res.Err = err
				return
			}
			res.TopTargets = top
			res.SamplesUsed = q.K
			return
		}
		tk := core.AdaptiveTopK(ss.AllSampler(q.S), otherNodes(g, q.S), q.TopK, opts)
		res.TopTargets = tk.Top
		res.SamplesUsed = tk.Samples
		res.StopReason = string(tk.Reason)
		if tk.Reason == core.StopCanceled {
			res.Err = ctx.Err()
		}
		e.recordAnytime(q.K, tk.Samples)
		return
	}
	// Single-source.
	if !anytime {
		res.Reliabilities = ss.EstimateAll(q.S, q.K)
		res.SamplesUsed = q.K
		return
	}
	targets := otherNodes(g, q.S)
	ars := core.AdaptiveEstimateAll(ss.AllSampler(q.S), targets, opts)
	all := make([]float64, g.NumNodes())
	all[q.S] = 1
	maxSamples := 0
	reason := core.StopEps
	for i, ar := range ars {
		all[targets[i]] = ar.Estimate
		if ar.Samples > maxSamples {
			maxSamples = ar.Samples
		}
		reason = worseReason(reason, ar.Reason)
	}
	res.Reliabilities = all
	res.SamplesUsed = maxSamples
	res.StopReason = string(reason)
	if reason == core.StopCanceled {
		res.Err = ctx.Err()
	}
	e.recordAnytime(q.K, maxSamples)
}

// otherNodes lists every node except s — the candidate (or target) set of
// the source-rooted kinds.
func otherNodes(g *uncertain.Graph, s uncertain.NodeID) []uncertain.NodeID {
	out := make([]uncertain.NodeID, 0, g.NumNodes()-1)
	for v := uncertain.NodeID(0); int(v) < g.NumNodes(); v++ {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}

// reasonSeverity orders stop reasons for the single-source aggregate
// report: a shared sweep that was cut off (canceled, deadline, budget)
// must not report itself converged because some targets retired early.
var reasonSeverity = map[core.StopReason]int{
	core.StopCanceled: 5, core.StopDeadline: 4, core.StopMaxK: 3,
	core.StopSeparated: 2, core.StopRho: 1, core.StopEps: 0,
}

func worseReason(a, b core.StopReason) core.StopReason {
	if reasonSeverity[b] > reasonSeverity[a] {
		return b
	}
	return a
}

// overlayEstimator constructs the index-free estimator an
// evidence-conditioned s-t request runs on, seeded with the same per-query
// stream seed the pooled path would use.
func (e *Engine) overlayEstimator(name string, g *uncertain.Graph, q Request) core.Estimator {
	seed := e.kindSeed(name, q)
	if packLike(name) {
		return newPackLike(name, g, seed)
	}
	return core.NewMC(g, seed)
}
