package engine

import (
	"context"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// Degree-sorted relabeling (Config.DegreeRelabel): the engine serves a
// cache-friendly rename of the caller's graph — hubs first, per
// uncertain.DegreePerm — while the query surface keeps speaking the
// caller's original ids. Requests are translated in (S, T, Targets,
// evidence edge ids) and responses are translated out (single-source
// vectors re-permuted, top-k node ids restored, Response.Request left as
// the caller wrote it), so turning the flag on changes performance, not
// meaning. What it does change is the sampled worlds: edge ids are
// positional in the sorted CSR, and the counter-based streams are keyed
// by edge id, so a relabeled engine draws a different (identically
// distributed) world ensemble than an unrelabeled one. Determinism is
// unaffected — the permutation is a pure function of the graph, so equal
// (graph, config) still means equal answers.
//
// Internal surfaces that hand out raw estimators or the served graph
// (Graph, Do, WriteSnapshot's index builds) speak the internal relabeled
// ids; Graph() documents this.

// relabelMap is the engine's id-translation state, present only when the
// served graph is a rename of the caller's.
type relabelMap struct {
	toNew     []uncertain.NodeID // external node id -> internal (perm[old] = new)
	toOld     []uncertain.NodeID // internal node id -> external
	edgeToNew []uncertain.EdgeID // external edge id -> internal
}

// newRelabelMap builds the translation state from the node permutation
// (perm[old] = new) and the edge id map Relabel returned.
func newRelabelMap(perm []uncertain.NodeID, edgeMap []uncertain.EdgeID) *relabelMap {
	return &relabelMap{toNew: perm, toOld: uncertain.InversePerm(perm), edgeToNew: edgeMap}
}

// nodeIn translates one caller-side node id to the internal rename. Ids
// outside the graph pass through untranslated so validate rejects them
// with the caller's own value in the message.
func (r *relabelMap) nodeIn(v uncertain.NodeID) uncertain.NodeID {
	if v < 0 || int(v) >= len(r.toNew) {
		return v
	}
	return r.toNew[v]
}

func (r *relabelMap) edgeIn(e uncertain.EdgeID) uncertain.EdgeID {
	if e < 0 || int(e) >= len(r.edgeToNew) {
		return e
	}
	return r.edgeToNew[e]
}

func (r *relabelMap) edgesIn(ids []uncertain.EdgeID) []uncertain.EdgeID {
	if len(ids) == 0 {
		return ids
	}
	out := make([]uncertain.EdgeID, len(ids))
	for i, e := range ids {
		out[i] = r.edgeIn(e)
	}
	return out
}

// requestIn returns q with every id the engine will act on renamed to the
// internal layout. The caller's Request value is not mutated.
func (r *relabelMap) requestIn(q Request) Request {
	q.S = r.nodeIn(q.S)
	q.T = r.nodeIn(q.T)
	if len(q.Targets) > 0 {
		ts := make([]uncertain.NodeID, len(q.Targets))
		for i, t := range q.Targets {
			ts[i] = r.nodeIn(t)
		}
		q.Targets = ts
	}
	if !q.Evidence.Empty() {
		q.Evidence.Include = r.edgesIn(q.Evidence.Include)
		q.Evidence.Exclude = r.edgesIn(q.Evidence.Exclude)
	}
	return q
}

// responseOut restores the caller's id surface on a computed response:
// Request reads back exactly as submitted, single-source vectors are
// re-permuted to external indexing, and top-k entries name external
// nodes. Scalar fields need no translation.
func (r *relabelMap) responseOut(res *Response, orig Request) {
	res.Request = orig
	if len(res.Reliabilities) > 0 {
		ext := make([]float64, len(res.Reliabilities))
		for old := range ext {
			ext[old] = res.Reliabilities[r.toNew[old]]
		}
		res.Reliabilities = ext
	}
	if len(res.TopTargets) > 0 {
		top := make([]core.Reliability, len(res.TopTargets))
		copy(top, res.TopTargets)
		for i := range top {
			if n := top[i].Node; n >= 0 && int(n) < len(r.toOld) {
				top[i].Node = r.toOld[n]
			}
		}
		res.TopTargets = top
	}
}

// Estimate answers one query; see estimateInternal for the semantics.
// Under DegreeRelabel it translates the request into the internal rename
// and the response back out, so callers never see internal ids.
func (e *Engine) Estimate(ctx context.Context, q Request) Response {
	if e.relab == nil {
		return e.estimateInternal(ctx, q)
	}
	res := e.estimateInternal(ctx, e.relab.requestIn(q))
	e.relab.responseOut(&res, q)
	return res
}

// EstimateBatch answers a set of queries concurrently; see
// estimateBatchInternal. Under DegreeRelabel every query is translated in
// and every result translated out, preserving positional alignment.
func (e *Engine) EstimateBatch(ctx context.Context, queries []Query) []Result {
	if e.relab == nil {
		return e.estimateBatchInternal(ctx, queries)
	}
	internal := make([]Query, len(queries))
	for i, q := range queries {
		internal[i] = e.relab.requestIn(q)
	}
	results := e.estimateBatchInternal(ctx, internal)
	for i := range results {
		e.relab.responseOut(&results[i], queries[i])
	}
	return results
}

// DegreeRelabeled reports whether the engine serves a degree-sorted
// rename of the constructor's graph (and therefore translates ids at the
// query surface).
func (e *Engine) DegreeRelabeled() bool { return e.relab != nil }
