package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// The relabeling transparency contract: an engine with DegreeRelabel set
// is exactly a plain engine over the pre-relabeled graph, wrapped in id
// translation. These tests hold the two side by side and require
// bit-identical answers under the mapping, across every query shape the
// translation layer touches (scalar, single-source vectors, top-k node
// ids, evidence edge ids).

// relabeledPair returns an engine with DegreeRelabel on over g, a plain
// engine over the degree-sorted rename of g, and the permutation and edge
// map between them.
func relabeledPair(t *testing.T, cfg Config) (*Engine, *Engine, []uncertain.NodeID, []uncertain.EdgeID) {
	t.Helper()
	g := testGraph(t)
	rcfg := cfg
	rcfg.DegreeRelabel = true
	relabeled, err := New(g, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := uncertain.DegreePerm(g)
	rg, edgeMap, err := uncertain.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(rg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return relabeled, plain, perm, edgeMap
}

func TestDegreeRelabelServesDegreeSortedGraph(t *testing.T) {
	relabeled, _, _, _ := relabeledPair(t, Config{Seed: 42, MaxK: 300})
	if !relabeled.DegreeRelabeled() {
		t.Fatal("DegreeRelabeled() false on a relabeling engine")
	}
	if !uncertain.IsDegreeSorted(relabeled.Graph()) {
		t.Fatal("served graph is not degree-sorted")
	}
	plainOnly := testEngine(t, Config{Seed: 42, MaxK: 300})
	if plainOnly.DegreeRelabeled() {
		t.Fatal("DegreeRelabeled() true without the flag")
	}
}

// TestDegreeRelabelTransparent: for every estimator and every query kind,
// the relabeling engine's answer to a query in original ids equals the
// plain engine's answer to the hand-translated query, with vectors and
// node ids mapped back.
func TestDegreeRelabelTransparent(t *testing.T) {
	cfg := Config{Seed: 42, MaxK: 300, Workers: 2, CacheSize: 0}
	relabeled, plain, perm, edgeMap := relabeledPair(t, cfg)
	ctx := context.Background()

	// Scalar s-t reliability, every estimator.
	for _, name := range relabeled.Names() {
		for s := uncertain.NodeID(0); s < 3; s++ {
			q := Query{S: s, T: s + 4, K: 150, Estimator: name}
			got := relabeled.Estimate(ctx, q)
			want := plain.Estimate(ctx, Query{S: perm[q.S], T: perm[q.T], K: q.K, Estimator: name})
			if got.Err != nil || want.Err != nil {
				t.Fatalf("%s s=%d: %v / %v", name, s, got.Err, want.Err)
			}
			if got.Reliability != want.Reliability {
				t.Errorf("%s s=%d: relabeled %v != plain-over-renamed %v", name, s, got.Reliability, want.Reliability)
			}
			if got.Request.S != q.S || got.Request.T != q.T {
				t.Errorf("%s: response echoes S=%d T=%d, want the submitted ids S=%d T=%d",
					name, got.Request.S, got.Request.T, q.S, q.T)
			}
		}
	}

	// Single-source: the external vector must be the internal one
	// re-permuted, i.e. got[v] == want[perm[v]].
	for _, name := range []string{"BFSSharing", "PackMC256", "PackMC512"} {
		got := relabeled.Estimate(ctx, Query{Kind: KindSingleSource, S: 1, K: 200, Estimator: name})
		want := plain.Estimate(ctx, Query{Kind: KindSingleSource, S: perm[1], K: 200, Estimator: name})
		if got.Err != nil || want.Err != nil {
			t.Fatalf("single-source %s: %v / %v", name, got.Err, want.Err)
		}
		if len(got.Reliabilities) != len(want.Reliabilities) {
			t.Fatalf("single-source %s: vector sizes %d / %d", name, len(got.Reliabilities), len(want.Reliabilities))
		}
		for v := range got.Reliabilities {
			if got.Reliabilities[v] != want.Reliabilities[perm[v]] {
				t.Fatalf("single-source %s: got[%d]=%v, plain[perm]=%v",
					name, v, got.Reliabilities[v], want.Reliabilities[perm[v]])
			}
		}
	}

	// Top-k: values identical, node ids mapped back to original names.
	gotTop := relabeled.Estimate(ctx, Query{Kind: KindTopK, S: 0, K: 200, TopK: 4, Estimator: "PackMC512"})
	wantTop := plain.Estimate(ctx, Query{Kind: KindTopK, S: perm[0], K: 200, TopK: 4, Estimator: "PackMC512"})
	if gotTop.Err != nil || wantTop.Err != nil {
		t.Fatalf("top-k: %v / %v", gotTop.Err, wantTop.Err)
	}
	if len(gotTop.TopTargets) != len(wantTop.TopTargets) {
		t.Fatalf("top-k sizes %d / %d", len(gotTop.TopTargets), len(wantTop.TopTargets))
	}
	for i := range gotTop.TopTargets {
		if gotTop.TopTargets[i].R != wantTop.TopTargets[i].R {
			t.Errorf("top-k %d: R %v != %v", i, gotTop.TopTargets[i].R, wantTop.TopTargets[i].R)
		}
		if perm[gotTop.TopTargets[i].Node] != wantTop.TopTargets[i].Node {
			t.Errorf("top-k %d: node %d does not map to internal %d",
				i, gotTop.TopTargets[i].Node, wantTop.TopTargets[i].Node)
		}
	}

	// K-terminal: target sets translated element-wise.
	targets := []uncertain.NodeID{3, 5, 6}
	internalTargets := make([]uncertain.NodeID, len(targets))
	for i, v := range targets {
		internalTargets[i] = perm[v]
	}
	gotKT := relabeled.Estimate(ctx, Query{Kind: KindKTerminal, S: 0, Targets: targets, K: 200})
	wantKT := plain.Estimate(ctx, Query{Kind: KindKTerminal, S: perm[0], Targets: internalTargets, K: 200})
	if gotKT.Err != nil || wantKT.Err != nil {
		t.Fatalf("k-terminal: %v / %v", gotKT.Err, wantKT.Err)
	}
	if gotKT.Reliability != wantKT.Reliability {
		t.Errorf("k-terminal: %v != %v", gotKT.Reliability, wantKT.Reliability)
	}

	// Evidence: edge ids translated through the edge map.
	ev := Evidence{Include: []uncertain.EdgeID{2}, Exclude: []uncertain.EdgeID{7}}
	internalEv := Evidence{
		Include: []uncertain.EdgeID{edgeMap[2]},
		Exclude: []uncertain.EdgeID{edgeMap[7]},
	}
	gotEv := relabeled.Estimate(ctx, Query{S: 0, T: 5, K: 150, Estimator: "PackMC256", Evidence: ev})
	wantEv := plain.Estimate(ctx, Query{S: perm[0], T: perm[5], K: 150, Estimator: "PackMC256", Evidence: internalEv})
	if gotEv.Err != nil || wantEv.Err != nil {
		t.Fatalf("evidence: %v / %v", gotEv.Err, wantEv.Err)
	}
	if gotEv.Reliability != wantEv.Reliability {
		t.Errorf("evidence: %v != %v", gotEv.Reliability, wantEv.Reliability)
	}
	if len(gotEv.Request.Evidence.Include) != 1 || gotEv.Request.Evidence.Include[0] != 2 {
		t.Errorf("evidence request echoed as %+v, want the caller's edge ids", gotEv.Request.Evidence)
	}
}

// TestDegreeRelabelBatchMatchesSingle: the translation layer preserves
// positional alignment through EstimateBatch.
func TestDegreeRelabelBatchMatchesSingle(t *testing.T) {
	cfg := Config{Seed: 42, MaxK: 300, Workers: 4, CacheSize: 0, DegreeRelabel: true}
	single, err := New(testGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(testGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs := testQueries([]string{"PackMC", "PackMC256", "PackMC512", "BFSSharing"})
	results := batch.EstimateBatch(ctx, qs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d: %v", i, r.Err)
		}
		want := single.Estimate(ctx, qs[i])
		if r.Reliability != want.Reliability {
			t.Errorf("query %d: batch %v != single %v", i, r.Reliability, want.Reliability)
		}
		if r.Request.S != qs[i].S || r.Request.T != qs[i].T {
			t.Errorf("query %d: request echoed as S=%d T=%d", i, r.Request.S, r.Request.T)
		}
	}
}

// TestDegreeRelabelValidationSpeaksCallerIds: out-of-range ids must be
// rejected with the caller's value, not a translated one.
func TestDegreeRelabelValidationSpeaksCallerIds(t *testing.T) {
	e, err := New(testGraph(t), Config{Seed: 1, MaxK: 200, DegreeRelabel: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Estimate(context.Background(), Query{S: 0, T: 999999, K: 100})
	if res.Err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if !strings.Contains(res.Err.Error(), "999999") {
		t.Errorf("validation error %q does not name the caller's id", res.Err)
	}
}

func TestDegreeRelabelRejectsPreloaded(t *testing.T) {
	g := testGraph(t)
	pre := BuildIndexes(g, Config{Seed: 9, MaxK: 100})
	_, err := New(g, Config{Seed: 9, MaxK: 100, Preloaded: pre, DegreeRelabel: true})
	if err == nil || !strings.Contains(err.Error(), "DegreeRelabel") {
		t.Fatalf("Preloaded+DegreeRelabel: err = %v", err)
	}
}

// TestDegreeRelabelSnapshotRoundTrip: a snapshot written under
// DegreeRelabel restores a translating engine that answers bit-identically
// to one that relabeled and built its indexes itself — and the manifest
// and sections carry the permutation.
func TestDegreeRelabelSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Seed: 42, MaxK: 300, Workers: 2, DegreeRelabel: true}
	g := testGraph(t)
	built, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, cfg); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !snap.Manifest.DegreeRelabeled {
		t.Fatal("manifest not marked DegreeRelabeled")
	}
	if len(snap.RelabelToOld) != g.NumNodes() || len(snap.RelabelEdgeToNew) != g.NumEdges() {
		t.Fatalf("relabel sections sized %d/%d, want %d/%d",
			len(snap.RelabelToOld), len(snap.RelabelEdgeToNew), g.NumNodes(), g.NumEdges())
	}
	// The flag is optional on load — the snapshot is authoritative.
	loaded, err := NewFromSnapshot(snap, Config{Workers: 2})
	if err != nil {
		t.Fatalf("NewFromSnapshot: %v", err)
	}
	if !loaded.DegreeRelabeled() {
		t.Fatal("loaded engine does not translate ids")
	}

	ctx := context.Background()
	for _, name := range built.Names() {
		q := Query{S: 0, T: 5, K: 150, Estimator: name}
		a, b := built.Estimate(ctx, q), loaded.Estimate(ctx, q)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: %v / %v", name, a.Err, b.Err)
		}
		if a.Reliability != b.Reliability {
			t.Errorf("%s: built %v, loaded %v — not bit-identical", name, a.Reliability, b.Reliability)
		}
	}
	ga := built.Estimate(ctx, Query{Kind: KindSingleSource, S: 0, K: 200, Estimator: "BFSSharing"})
	gb := loaded.Estimate(ctx, Query{Kind: KindSingleSource, S: 0, K: 200, Estimator: "BFSSharing"})
	if ga.Err != nil || gb.Err != nil {
		t.Fatalf("single-source: %v / %v", ga.Err, gb.Err)
	}
	for v := range ga.Reliabilities {
		if ga.Reliabilities[v] != gb.Reliabilities[v] {
			t.Fatalf("single-source[%d]: built %v, loaded %v", v, ga.Reliabilities[v], gb.Reliabilities[v])
		}
	}
}

// TestDegreeRelabelSnapshotFlagMismatch: asking for DegreeRelabel over an
// un-relabeled snapshot is an error (the indexes were built over the
// original layout; the snapshot must be rebuilt).
func TestDegreeRelabelSnapshotFlagMismatch(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, Config{Seed: 42, MaxK: 200}); err != nil {
		t.Fatal(err)
	}
	snap, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromSnapshot(snap, Config{DegreeRelabel: true}); err == nil ||
		!strings.Contains(err.Error(), "un-relabeled") {
		t.Fatalf("DegreeRelabel over plain snapshot: err = %v", err)
	}
	// And the plain load still works.
	if _, err := NewFromSnapshot(snap, Config{}); err != nil {
		t.Fatal(err)
	}
}
