package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"relcomp/internal/core"
	"relcomp/internal/datasets"
	"relcomp/internal/uncertain"
)

func testGraph(t testing.TB) *uncertain.Graph {
	t.Helper()
	spec, err := datasets.ByName("lastFM")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(0.03, 7)
}

func testEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := New(testGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// testQueries returns a mixed workload: several sources, several targets
// per source, two sample budgets, across all six estimators.
func testQueries(names []string) []Query {
	var qs []Query
	for i, name := range names {
		for s := 0; s < 3; s++ {
			for t := 3; t < 7; t++ {
				k := 100
				if (s+t+i)%2 == 1 {
					k = 150
				}
				qs = append(qs, Query{
					S: uncertain.NodeID(s), T: uncertain.NodeID(t),
					K: k, Estimator: name,
				})
			}
		}
	}
	return qs
}

func TestEstimateBasic(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 64})
	for _, name := range e.Names() {
		res := e.Estimate(context.Background(), Query{S: 0, T: 5, K: 100, Estimator: name})
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		if res.Used != name {
			t.Errorf("%s: answered by %q", name, res.Used)
		}
		if res.Reliability < 0 || res.Reliability > 1 {
			t.Errorf("%s: reliability %v", name, res.Reliability)
		}
	}
}

func TestEstimateValidation(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 200, Seed: 1})
	bad := []Query{
		{S: -1, T: 5, K: 100},                      // s out of range
		{S: 0, T: 999999, K: 100},                  // t out of range
		{S: 0, T: 5, K: 0},                         // no budget
		{S: 0, T: 5, K: 500},                       // budget above MaxK
		{S: 0, T: 5, K: 100, Estimator: "Unknown"}, // unknown estimator
	}
	for _, q := range bad {
		if res := e.Estimate(context.Background(), q); res.Err == nil {
			t.Errorf("query %+v accepted", q)
		}
	}
	results := e.EstimateBatch(context.Background(), bad)
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("batch query %+v accepted", bad[i])
		}
	}
}

func TestUnknownConfiguredEstimator(t *testing.T) {
	if _, err := New(testGraph(t), Config{Estimators: []string{"Nope"}}); err == nil {
		t.Fatal("unknown estimator accepted at construction")
	}
	if _, err := New(testGraph(t), Config{Estimators: []string{"MC", "MC"}}); err == nil {
		t.Fatal("duplicate estimator accepted at construction")
	}
}

// TestDeterministicAcrossInstances: equal configs answer equally, and the
// same engine answers a repeated query equally (via cache and without).
func TestDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 0}
	a := testEngine(t, cfg)
	b := testEngine(t, cfg)
	for _, q := range testQueries(a.Names()) {
		ra, rb := a.Estimate(context.Background(), q), b.Estimate(context.Background(), q)
		if ra.Err != nil || rb.Err != nil {
			t.Fatalf("%+v: %v / %v", q, ra.Err, rb.Err)
		}
		if ra.Reliability != rb.Reliability {
			t.Errorf("%+v: %v vs %v across engines", q, ra.Reliability, rb.Reliability)
		}
		again := a.Estimate(context.Background(), q)
		if again.Reliability != ra.Reliability {
			t.Errorf("%+v: %v vs %v on repeat", q, again.Reliability, ra.Reliability)
		}
	}
}

// TestBatchMatchesSingle: EstimateBatch must return exactly what
// per-query Estimate calls return, including for the amortized BFS
// Sharing path.
func TestBatchMatchesSingle(t *testing.T) {
	cfg := Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 0}
	single := testEngine(t, cfg)
	batch := testEngine(t, cfg)
	queries := testQueries(single.Names())
	want := make([]float64, len(queries))
	for i, q := range queries {
		res := single.Estimate(context.Background(), q)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[i] = res.Reliability
	}
	results := batch.EstimateBatch(context.Background(), queries)
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Reliability != want[i] {
			t.Errorf("query %d (%+v): batch %v vs single %v",
				i, queries[i], r.Reliability, want[i])
		}
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 300, Seed: 42, CacheSize: 2})
	q := Query{S: 0, T: 5, K: 100, Estimator: "MC"}
	first := e.Estimate(context.Background(), q)
	if first.Cached {
		t.Fatal("first answer marked cached")
	}
	second := e.Estimate(context.Background(), q)
	if !second.Cached {
		t.Fatal("second answer not cached")
	}
	if second.Reliability != first.Reliability {
		t.Fatalf("cache returned %v, computed %v", second.Reliability, first.Reliability)
	}
	// Fill the 2-entry cache with two other keys; q must be evicted.
	e.Estimate(context.Background(), Query{S: 1, T: 5, K: 100, Estimator: "MC"})
	e.Estimate(context.Background(), Query{S: 2, T: 5, K: 100, Estimator: "MC"})
	third := e.Estimate(context.Background(), q)
	if third.Cached {
		t.Fatal("evicted entry still cached")
	}
	if third.Reliability != first.Reliability {
		t.Fatalf("recomputed %v, originally %v", third.Reliability, first.Reliability)
	}
	st := e.Stats()
	if st.CacheHits != 1 {
		t.Errorf("cache hits %d, want 1", st.CacheHits)
	}
	if st.CacheLen > st.CacheCap {
		t.Errorf("cache len %d above cap %d", st.CacheLen, st.CacheCap)
	}
}

func TestAdaptiveRouting(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 64})
	sawEstimator := false
	for s := 0; s < 4; s++ {
		for d := 4; d < 8; d++ {
			res := e.Estimate(context.Background(), Query{S: uncertain.NodeID(s), T: uncertain.NodeID(d), K: 100})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Used == "" {
				t.Fatalf("routed query reports no estimator")
			}
			if res.Reliability < 0 || res.Reliability > 1 {
				t.Errorf("routed reliability %v", res.Reliability)
			}
			if res.Used != BoundsName {
				sawEstimator = true
			}
		}
	}
	st := e.Stats()
	var routed uint64
	for _, es := range st.Estimators {
		routed += es.Routed
	}
	if routed+st.BoundsAnswered == 0 {
		t.Error("router recorded no decisions")
	}
	if sawEstimator && routed == 0 {
		t.Error("estimator answered routed queries but Routed counters are zero")
	}
}

// TestRouterPrefersAccuracyOnWideBounds pins the paper-guided policy: a
// maximally wide interval routes to RSS (the accuracy ranking's best).
func TestRouterPrefersAccuracyOnWideBounds(t *testing.T) {
	r := newRouter(DefaultEstimators(), 0.02, 0.25, 0)
	if got := r.pick(0.9); got != "RSS" {
		t.Errorf("wide bounds routed to %s, want RSS", got)
	}
	// Narrow-but-not-pinched bounds with no latency observations fall back
	// to the paper's online-time prior: ProbTree.
	if got := r.pick(0.1); got != "ProbTree" {
		t.Errorf("narrow bounds routed to %s, want ProbTree", got)
	}
	// Unmeasured candidates are explored before measured EWMAs are
	// trusted: once ProbTree has a sample, the next-best unmeasured
	// candidate by the online-time prior (the widest word-packed kernel)
	// is tried.
	r.observe("ProbTree", 0.5)
	if got := r.pick(0.1); got != "PackMC512" {
		t.Errorf("exploration chose %s, want PackMC512", got)
	}
	// Once every candidate is measured, the lowest EWMA wins — routing
	// can shift away from a slow first choice.
	r2 := newRouter([]string{"ProbTree", "MC"}, 0.02, 0.25, 0)
	r2.observe("ProbTree", 0.5)
	r2.observe("MC", 0.001)
	if got := r2.pick(0.1); got != "MC" {
		t.Errorf("measured-latency routing chose %s, want MC", got)
	}
}

// TestRoutedBatchUsesSharedGroups: adaptive batch queries resolved to
// BFS Sharing must join its amortized source groups and still return
// exactly what explicit single queries return.
func TestRoutedBatchUsesSharedGroups(t *testing.T) {
	cfg := Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 0,
		Estimators: []string{"BFSSharing"}}
	batch := testEngine(t, cfg)
	single := testEngine(t, cfg)
	var qs []Query
	for d := 3; d < 15; d++ {
		qs = append(qs, Query{S: 0, T: uncertain.NodeID(d), K: 100})
	}
	for i, res := range batch.EstimateBatch(context.Background(), qs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		switch res.Used {
		case BoundsName: // pinched by the bounds; nothing to compare
		case "BFSSharing":
			want := single.Estimate(context.Background(), Query{S: qs[i].S, T: qs[i].T, K: qs[i].K,
				Estimator: "BFSSharing"})
			if res.Reliability != want.Reliability {
				t.Errorf("query %d: routed batch %v vs explicit single %v",
					i, res.Reliability, want.Reliability)
			}
		default:
			t.Errorf("query %d answered by %q", i, res.Used)
		}
	}
}

// TestExplicitBoundsEstimator: the BoundsName the engine reports for
// pinched queries must itself be accepted as Query.Estimator, in both
// single and batch calls.
func TestExplicitBoundsEstimator(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 64})
	q := Query{S: 0, T: 9, K: 100, Estimator: BoundsName}
	res := e.Estimate(context.Background(), q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// K is unused on the bounds path, so its zero value must be accepted.
	if zeroK := e.Estimate(context.Background(), Query{S: 0, T: 9, Estimator: BoundsName}); zeroK.Err != nil {
		t.Fatalf("bounds query with zero K rejected: %v", zeroK.Err)
	} else if zeroK.Reliability != res.Reliability {
		t.Errorf("zero-K bounds answer %v != %v", zeroK.Reliability, res.Reliability)
	}
	if res.Used != BoundsName {
		t.Errorf("answered by %q", res.Used)
	}
	if res.Reliability < 0 || res.Reliability > 1 {
		t.Errorf("reliability %v", res.Reliability)
	}
	for _, r := range e.EstimateBatch(context.Background(), []Query{q, q}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Used != BoundsName || r.Reliability != res.Reliability {
			t.Errorf("batch answer %+v vs single %v", r, res.Reliability)
		}
	}
}

// TestRouterBoundsMemo: repeated adaptive queries for the same (s, t)
// must not recompute the analytic bounds (a large-graph walk) each time.
func TestRouterBoundsMemo(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 300, Seed: 42, CacheSize: 64})
	q := Query{S: 0, T: 9, K: 100}
	first := e.Estimate(context.Background(), q)
	second := e.Estimate(context.Background(), q) // may explore a different estimator; only the
	// bounds walk must be memoized
	if first.Err != nil || second.Err != nil {
		t.Fatalf("%v / %v", first.Err, second.Err)
	}
	ms := e.router.memoStats()
	if ms.Misses != 1 || ms.Hits < 1 {
		t.Errorf("bounds memo hits=%d misses=%d, want 1 miss then hits", ms.Hits, ms.Misses)
	}
	// The memo stats surface through engine Stats for operators.
	if st := e.Stats(); st.BoundsMemo != ms {
		t.Errorf("Stats().BoundsMemo %+v != router memo %+v", st.BoundsMemo, ms)
	}
}

func TestStatsCounters(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 64})
	qs := testQueries([]string{"MC", "RSS"})
	e.EstimateBatch(context.Background(), qs)
	e.Estimate(context.Background(), qs[0]) // cache hit
	st := e.Stats()
	if st.Batches != 1 {
		t.Errorf("batches %d", st.Batches)
	}
	if st.BatchQueries != uint64(len(qs)) {
		t.Errorf("batch queries %d, want %d", st.BatchQueries, len(qs))
	}
	if st.Queries != uint64(len(qs))+1 {
		t.Errorf("queries %d, want %d", st.Queries, len(qs)+1)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hit recorded")
	}
	mc := st.Estimators["MC"]
	if mc.Queries == 0 || mc.PoolReplicas == 0 {
		t.Errorf("MC stats %+v", mc)
	}
}

// TestDo borrows a concrete estimator instance for an advanced query.
func TestDo(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 300, Seed: 42})
	err := e.Do("BFSSharing", func(est core.Estimator) error {
		bs, ok := est.(*core.BFSQuerier)
		if !ok {
			t.Fatalf("borrowed %T", est)
		}
		if got := bs.EstimateAll(0, 100); len(got) != e.Graph().NumNodes() {
			t.Errorf("EstimateAll returned %d entries", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Do("Unknown", func(core.Estimator) error { return nil }); err == nil {
		t.Error("unknown estimator accepted")
	}
	// Borrowed sampling estimators are reseeded, so results depend only
	// on the engine seed, never on earlier traffic.
	borrowed := func() float64 {
		var v float64
		if err := e.Do("MC", func(est core.Estimator) error {
			v = est.Estimate(0, 5, 100)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return v
	}
	first := borrowed()
	e.Estimate(context.Background(), Query{S: 1, T: 6, K: 150, Estimator: "MC"}) // perturb the replica
	if again := borrowed(); again != first {
		t.Errorf("borrowed result drifted with traffic: %v vs %v", again, first)
	}
}

// TestBatchDedupesIdenticalQueries: N identical queries in one batch
// compute once and fan out with cache-hit semantics, even with the cache
// disabled — on both the per-query and the shared BFS Sharing paths.
func TestBatchDedupesIdenticalQueries(t *testing.T) {
	for _, est := range []string{"MC", "BFSSharing"} {
		e := testEngine(t, Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 0})
		q := Query{S: 0, T: 5, K: 100, Estimator: est}
		results := e.EstimateBatch(context.Background(), []Query{q, q, q, q})
		computed := 0
		for i, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.Reliability != results[0].Reliability {
				t.Errorf("%s result %d: %v != %v", est, i, r.Reliability, results[0].Reliability)
			}
			if !r.Cached {
				computed++
			}
		}
		if computed != 1 {
			t.Errorf("%s: %d computations for 4 identical queries, want 1", est, computed)
		}
	}
}

// TestForEachParallelPanicContained: a panic on an engine worker must be
// contained to its work item — reported through onPanic as a typed error
// carrying the original message — while every other item still runs;
// nothing may escape to the caller's goroutine or kill the process.
func TestForEachParallelPanicContained(t *testing.T) {
	e := testEngine(t, Config{Workers: 4, MaxK: 300, Seed: 1})
	var mu sync.Mutex
	ran := make([]bool, 8)
	var faults []error
	e.forEachParallel(8, func(j int) {
		mu.Lock()
		ran[j] = true
		mu.Unlock()
		if j == 3 {
			panic("boom")
		}
	}, func(j int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if j != 3 {
			t.Errorf("panic attributed to unit %d, want 3", j)
		}
		faults = append(faults, err)
	})
	for j, ok := range ran {
		if !ok {
			t.Errorf("unit %d did not run after unit 3 panicked", j)
		}
	}
	if len(faults) != 1 {
		t.Fatalf("%d fault reports, want 1", len(faults))
	}
	if !errors.Is(faults[0], ErrEstimatorPanic) {
		t.Errorf("fault %v does not wrap ErrEstimatorPanic", faults[0])
	}
	if !strings.Contains(faults[0].Error(), "boom") {
		t.Errorf("panic message lost: %v", faults[0])
	}
}

func TestPoolBoundsReplicaCount(t *testing.T) {
	e := testEngine(t, Config{Workers: 3, MaxK: 300, Seed: 42, CacheSize: 0})
	qs := make([]Query, 0, 64)
	for i := 0; i < 64; i++ {
		qs = append(qs, Query{
			S: uncertain.NodeID(i % 8), T: uncertain.NodeID(8 + i%5),
			K: 100, Estimator: "MC",
		})
	}
	e.EstimateBatch(context.Background(), qs)
	if n := e.Stats().Estimators["MC"].PoolReplicas; n > 3 {
		t.Errorf("pool built %d replicas, cap 3", n)
	}
}
