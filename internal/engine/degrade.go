package engine

import (
	"context"
)

// The degradation ladder. Under overload the engine sheds precision
// before it sheds requests: an admitted request may be answered with a
// widened accuracy target, a reduced sample budget, a cheaper estimator,
// or — at the floor — the analytic-bounds midpoint, which is always
// available for a plain s-t query and always inside the true interval.
// Requests are rejected only when the admission queue itself overflows.
// Degraded answers are flagged (Response.Degraded; the bounds floor also
// reports StopReason "degraded"), so clients can distinguish a cheap
// answer from the one they asked for.

// degradeKFloor is the smallest sample budget degradation will cut to —
// below a few dozen samples a Monte Carlo answer is noise, not a cheaper
// estimate — and degradeEpsCap the widest accuracy target it will
// request.
const (
	degradeKFloor = 64
	degradeEpsCap = 0.5
)

// degradeRequest applies ladder level lvl to q, returning the request to
// actually execute and whether it differs from what was asked. Level 1
// widens ε (doubled, capped) or halves K (floored); level 2 additionally
// sends routed plain queries to the cheapest candidate instead of the
// adaptive choice; level 3 answers plain evidence-free queries from the
// analytic bounds alone and treats every other kind at level 2. The
// request stays valid by construction: budgets only shrink, ε stays
// inside [0, 1), and the forced estimators are always configured.
func (e *Engine) degradeRequest(q Request, lvl int) (Request, bool) {
	if lvl <= 0 {
		return q, false
	}
	if lvl >= 3 && q.plainReliability() && q.Estimator != BoundsName {
		q.Estimator = BoundsName
		return q, true
	}
	changed := false
	if q.Eps > 0 {
		if w := q.Eps * 2; w < degradeEpsCap {
			q.Eps, changed = w, true
		} else if q.Eps < degradeEpsCap {
			q.Eps, changed = degradeEpsCap, true
		}
	} else if q.K > degradeKFloor {
		k := q.K / 2
		if k < degradeKFloor {
			k = degradeKFloor
		}
		q.K, changed = k, true
	}
	if lvl >= 2 && q.plainReliability() && q.Estimator == "" {
		// pick with width 0 is the router's latency-first choice: the
		// measured-cheapest candidate (or the latency prior's best before
		// measurements exist).
		q.Estimator, changed = e.router.pick(0), true
	}
	return q, changed
}

// costEstimate predicts a request's admission cost in samples, the unit
// the MaxInflightSamples budget is denominated in. The default is the
// request's sample budget; for routed plain queries the router's bounds
// memo sharpens it — a memoized pinched pair costs nothing (the bounds
// answer it), and an easy pair under an anytime target converges well
// under its cap. The memo is only peeked: estimating cost must not pay
// the bounds walk the estimate exists to predict.
func (e *Engine) costEstimate(st *epochState, q Request) int64 {
	cost := int64(q.K)
	if cost < 1 {
		cost = 1
	}
	if !q.plainReliability() {
		return cost
	}
	if q.Estimator == BoundsName {
		return 1
	}
	if q.Estimator == "" {
		if lo, hi, ok := e.router.peekBounds(st.srcTag(q.S), q.S, q.T); ok {
			switch width := hi - lo; {
			case width <= e.router.cutoff:
				cost = 1
			case q.anytime() && width <= e.router.hardWidth:
				if cost > 1 {
					cost /= 2
				}
			}
		}
	}
	return cost
}

// admissionKey derives the deterministic key the admission controller's
// fault-injection points (MemPressure, ClockSkew) are consulted with, so
// a seeded injector pressures the same requests on every run.
func (e *Engine) admissionKey(q Request) uint64 {
	return querySeed(e.cfg.Seed, "admission", q.S, q.T, q.K)
}

// admit runs one request through admission control; see admission.acquire.
func (e *Engine) admit(ctx context.Context, st *epochState, q Request) (release func(), level int, err error) {
	if e.adm == nil {
		return func() {}, 0, nil
	}
	return e.adm.acquire(ctx, e.costEstimate(st, q), e.admissionKey(q))
}

// admitBatch admits a whole batch as one request costed at the sum of its
// queries — a thousand-query batch must compete against single queries at
// its true weight, not as one unit — keyed by a fold of the per-query
// admission keys so batch-level injection decisions are as deterministic
// as per-query ones.
func (e *Engine) admitBatch(ctx context.Context, st *epochState, queries []Query) (release func(), level int, err error) {
	if e.adm == nil {
		return func() {}, 0, nil
	}
	var cost int64
	var key uint64
	for _, q := range queries {
		cost += e.costEstimate(st, q)
		key = mix64(key ^ e.admissionKey(q))
	}
	return e.adm.acquire(ctx, cost, key)
}
