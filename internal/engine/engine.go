// Package engine is the concurrent batch query engine layered over the
// paper's six s-t reliability estimators. It exists to serve estimator
// traffic at production concurrency, which the estimators themselves
// cannot: each keeps per-instance scratch state and is not goroutine-safe.
//
// Queries arrive through one typed Request union (request.go): plain s-t
// reliability, distance-constrained reachability (Request.D), top-k
// ranking (Request.TopK), single-source, and k-terminal (Request.Targets)
// — each optionally conditioned on per-request Evidence applied as a
// probability overlay over the shared graph. Every kind is served by the
// same machinery: pooled replicas, the result cache (keyed on the full
// request identity including kind and evidence), anytime stopping, and
// batch grouping (kinds.go).
//
// The engine combines four mechanisms:
//
//   - Estimator pooling: per-estimator pools of replica instances (same
//     graph, same seed) hand every worker an exclusive instance, so
//     concurrent queries never contend on scratch state (pool.go). The
//     index-based estimators share one immutable offline index per
//     estimator kind; replicas are cheap online-scratch handles over it,
//     so index memory is O(index), not O(Workers × index), and only the
//     first borrow pays index build latency.
//   - Batching: EstimateBatch groups queries by (estimator, source) so the
//     source-rooted methods amortize their per-source work — one BFS
//     Sharing traversal answers every target of a source via EstimateAll,
//     one ProbTree group splice (QueryGraphAll) expands the source-side
//     bag chain once for every target of a source, and one PackMC pack
//     sweep (EstimateAll) serves every target of a source from the same
//     counter-seeded world ensemble its single queries draw.
//   - Result caching: a bounded LRU keyed by (s, t, estimator, k, ε) with
//     hit/miss/eviction counters (cache.go).
//   - Adaptive routing: queries that do not name an estimator are routed
//     from the analytic bounds width and online latency statistics,
//     following the paper's selection guidance (router.go).
//   - Anytime estimation: queries carrying an accuracy target (Eps) or a
//     latency target (Deadline) run the incremental core.Sampler sessions
//     under sequential stopping instead of a fixed budget — K becomes the
//     sample cap, easy pairs stop after a few hundred samples, and hard
//     pairs keep sampling until ε, the deadline, or the cap. The router's
//     bounds interval seeds the stopping layer's chunk schedule; the
//     source-grouped batch paths advance per-target samplers in lockstep
//     and retire targets as they converge. Results report the samples
//     actually used and the rule that stopped them.
//
// Results are deterministic given Config.Seed: replicas are identical and
// every Estimate call reseeds the instance from the query key, so a query
// returns the same value no matter which worker runs it, whether it was
// batched, and whether it was cached. Concurrent execution is therefore
// observationally equivalent to sequential execution (asserted by the
// package's -race tests), with the one exception of adaptively routed
// queries, whose estimator choice depends on latencies observed so far.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/faultinject"
	"relcomp/internal/mutate"
	"relcomp/internal/uncertain"
)

// BoundsName is the pseudo-estimator name reported when the analytic
// bounds pinch a routed query tightly enough to answer it outright. It
// is also accepted as Query.Estimator: such queries are answered by the
// bounds-interval midpoint with no sampling, whatever the width.
const BoundsName = "bounds"

// DefaultEstimators lists the estimators an engine builds when Config
// leaves the set empty: the paper's six, in table order, plus the
// word-packed PackMC at every lane width (64/256/512 — rankable variants
// for the router) and the multi-core ParallelMC / ParallelPackMC
// extensions.
func DefaultEstimators() []string {
	return []string{"MC", "BFSSharing", "ProbTree", "LP+", "RHH", "RSS", "PackMC", "PackMC256", "PackMC512", "ParallelMC", "ParallelPackMC"}
}

// internallyParallel reports whether the named estimator fans its sample
// budget out over its own goroutines per Estimate. Such pools are capped
// at one replica — pooling them Workers-deep would run up to
// Workers x GOMAXPROCS CPU-bound samplers at once — and excluded from
// adaptive routing.
func internallyParallel(name string) bool {
	return name == "ParallelMC" || name == "ParallelPackMC"
}

// Config configures an Engine.
type Config struct {
	// Workers bounds the number of concurrently processed batch groups
	// and the replica count of every estimator pool. <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxK caps the per-query sample budget and sizes the BFS Sharing
	// index width. <= 0 means 2000 (the paper's safe L bound is 1500).
	MaxK int
	// Seed drives every estimator replica and per-query reseed; engines
	// with equal configs return identical results. (ParallelMC shards
	// its sample budget over Workers goroutines, so its values — unlike
	// every other estimator's — also change if Workers changes.)
	Seed uint64
	// CacheSize bounds the LRU result cache; <= 0 disables caching.
	CacheSize int
	// Estimators names the pools to build; empty means DefaultEstimators.
	Estimators []string
	// BoundsCutoff is the bounds width at or below which a routed query
	// is answered by the interval midpoint without sampling; <= 0 means
	// 0.02.
	BoundsCutoff float64
	// HardWidth is the bounds width above which routing prefers accuracy
	// over speed; <= 0 means 0.25.
	HardWidth float64
	// Preloaded supplies pre-built offline indexes (typically loaded from
	// a snapshot) for the index-based estimator pools, which then skip
	// their lazy first-borrow build. Nil fields fall back to building.
	Preloaded *PreloadedIndexes
	// Admission bounds the work the engine accepts at once and arms the
	// overload degradation ladder; the zero value disables both (every
	// request admitted immediately, full fidelity). See AdmissionConfig.
	Admission AdmissionConfig
	// DegreeRelabel serves a degree-sorted rename of the graph (hubs get
	// the lowest ids, clustering the hot CSR rows and kernel scratch at
	// the front of their arrays) while the query surface keeps the
	// caller's ids; see relabel.go. The rename changes which worlds the
	// counter-based samplers draw (edge ids move), not their distribution,
	// and stays deterministic per (graph, config). Incompatible with
	// Preloaded indexes built over the un-relabeled graph; snapshots
	// written by a relabeling engine carry the permutation, and
	// NewFromSnapshot restores it without re-relabeling.
	DegreeRelabel bool
	// BaseEpoch is the mutation epoch of the supplied graph: 0 for a
	// fresh build, the manifest epoch when resuming from a snapshot (set
	// by NewFromSnapshot). Engine.Apply numbers committed batches from
	// here, and the engine's mutation log chains from it.
	BaseEpoch uint64
	// MutationLogLimit bounds the in-memory replay buffer of committed
	// mutation batches; <= 0 selects mutate.DefaultLogLimit.
	MutationLogLimit int
}

// PreloadedIndexes carries pre-built offline indexes into New. Each index
// must have been built over the exact graph the engine serves, and the
// BFS index's width must equal the engine's MaxK — with the same engine
// seed, answers are then bit-identical to an engine that built its own
// indexes (see NewFromSnapshot, which pins seed and MaxK from the
// snapshot manifest).
type PreloadedIndexes struct {
	BFS      *core.BFSIndex
	ProbTree *core.ProbTreeIndex
}

// Query and Result — the typed Request union and its Response — are
// defined in request.go; the names Query and Result remain as aliases.

// Engine is the concurrent batch query engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg   Config
	names []string // configured estimators, stable order
	// state is the current epoch's graph-derived serving state (graph,
	// pools, indexes, memos, invalidation tags); see state.go. Queries
	// load it once and run against that consistent snapshot; Apply swaps
	// in a successor.
	state  atomic.Pointer[epochState]
	cache  *lruCache[cacheVal]
	router *router
	// relab translates ids between the caller's graph and the served
	// degree-sorted rename; nil when DegreeRelabel is off (relabel.go).
	// Mutations never change the node set, so the map survives every
	// epoch (new edges are engine-internal and not evidence-addressable).
	relab *relabelMap
	// adm is the admission controller (admission.go); nil when disabled,
	// which every acquire/noteDegraded call handles.
	adm *admission
	// log records committed mutation batches for replay and subscriber
	// catch-up; applyMu serializes Apply so epochs chain (apply.go).
	log     *mutate.Log
	applyMu sync.Mutex

	// subs is the live subscription registry (subscribe.go); Apply pings
	// every entry after publishing a new state.
	subMu  sync.Mutex
	subs   map[uint64]*Subscription
	subSeq uint64

	mu      sync.Mutex
	queries uint64
	batches uint64
	batched uint64 // queries answered (not rejected) via EstimateBatch
	deduped uint64 // intra-batch duplicates answered by reuse
	// Anytime accounting: queries computed under a stopping rule, the
	// budget they were allowed, and the samples they actually drew — the
	// samples-saved-vs-MaxK view Stats reports.
	anytimeQueries uint64
	samplesBudget  uint64
	samplesDrawn   uint64
	// Mutation accounting (apply.go): committed batches, individual
	// mutations applied, sources whose invalidation tag was bumped, and
	// the incremental-repair vs full-rebuild split of index maintenance.
	mutBatches     uint64
	mutApplied     uint64
	srcInvalidated uint64
	idxRepairs     uint64
	idxRebuilds    uint64
	perEst         map[string]*estCounter
	perKind        map[Kind]uint64
}

// cacheVal is the result cache's stored answer: the per-kind payload (the
// scalar reliability, a single-source vector, or a top-k ranking) plus the
// anytime termination report, so cached replays carry the same metadata
// as the computation that filled the entry. The slice payloads are shared
// between the cache and every hit that returns them; Response documents
// them as read-only.
type cacheVal struct {
	r       float64
	all     []float64
	top     []core.Reliability
	samples int
	reason  string
	// epoch is the engine epoch the filling computation ran under,
	// reported on hits via Response.Epoch: a hit for a mutation-unaffected
	// source may legitimately predate the current epoch.
	epoch uint64
}

type estCounter struct {
	queries   uint64
	computed  uint64 // queries answered by running the estimator (not cached)
	totalSecs float64
}

// New builds an engine over g. It constructs one replica per configured
// estimator lazily on first demand, so construction is cheap — except
// under Config.DegreeRelabel, which rebuilds the CSR in degree-sorted
// order up front (O(m log m)).
func New(g *uncertain.Graph, cfg Config) (*Engine, error) {
	var relab *relabelMap
	if cfg.DegreeRelabel {
		if cfg.Preloaded != nil {
			return nil, fmt.Errorf("engine: DegreeRelabel cannot be combined with Preloaded indexes built over the original graph; load a relabeled snapshot with NewFromSnapshot instead")
		}
		perm := uncertain.DegreePerm(g)
		rg, edgeMap, err := uncertain.Relabel(g, perm)
		if err != nil {
			return nil, err
		}
		relab = newRelabelMap(perm, edgeMap)
		g = rg
	}
	return newEngine(g, cfg, relab)
}

// newEngine is New's body over the graph actually served (possibly a
// degree-sorted rename); NewFromSnapshot calls it directly with the
// relabel map restored from the snapshot, never re-relabeling.
func newEngine(g *uncertain.Graph, cfg Config, relab *relabelMap) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 2000
	}
	if len(cfg.Estimators) == 0 {
		cfg.Estimators = DefaultEstimators()
	}
	if err := validatePreloaded(g, cfg); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		relab:   relab,
		cache:   newLRUCache[cacheVal](cfg.CacheSize),
		log:     mutate.NewLog(cfg.BaseEpoch, cfg.MutationLogLimit),
		subs:    make(map[uint64]*Subscription),
		perEst:  make(map[string]*estCounter, len(cfg.Estimators)),
		perKind: make(map[Kind]uint64),
	}
	srcEpoch := make([]uint64, g.NumNodes())
	for i := range srcEpoch {
		srcEpoch[i] = cfg.BaseEpoch
	}
	bfsIx, ptIx := indexHolders(cfg, g)
	st, err := buildEpochState(cfg, g, cfg.BaseEpoch, srcEpoch, bfsIx, ptIx)
	if err != nil {
		return nil, err
	}
	e.state.Store(st)
	for _, name := range cfg.Estimators {
		e.names = append(e.names, name)
		e.perEst[name] = &estCounter{}
	}
	// The router's bounds memo is not result caching — it amortizes a
	// static, expensive graph walk — so it stays on even when the result
	// cache is disabled, and a small result cache must not shrink it.
	memoSize := cfg.CacheSize
	if memoSize < 1024 {
		memoSize = 1024
	}
	// Pools capped below the worker count (ParallelMC) are excluded from
	// routing: steering adaptive traffic at a single-replica pool would
	// serialize concurrent queries behind one instance — exactly the
	// bottleneck the engine exists to remove. They stay reachable by
	// explicit request.
	var candidates []string
	for _, name := range e.names {
		if st.pools[name].capacity >= cfg.Workers {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		candidates = e.names
	}
	e.router = newRouter(candidates, cfg.BoundsCutoff, cfg.HardWidth, memoSize)
	e.adm = newAdmission(cfg.Admission)
	return e, nil
}

// factoryFor maps an estimator name to its replica constructor. workers
// sizes ParallelMC's internal fan-out, pinning its (otherwise
// GOMAXPROCS-dependent) sample sharding to the engine config.
//
// The index-based estimators share the epoch's lazy index cells (see
// state.go): the immutable offline index is built exactly once per
// estimator kind — lazily, on the pool's first borrow, or repaired
// incrementally across mutations — and every replica is a lightweight
// online-scratch handle over that shared index. Engine memory for an
// index is therefore O(index) regardless of Workers, and only the first
// borrow pays build latency; all later replicas construct in near-zero
// time. A preloaded index (validated by New) resolves the cell up front,
// so the first borrow costs nothing.
func factoryFor(name string, g *uncertain.Graph, seed uint64, workers int, bfsIx *lazyIndex[*core.BFSIndex], ptIx *lazyIndex[*core.ProbTreeIndex]) (func() core.Estimator, error) {
	switch name {
	case "MC":
		return func() core.Estimator { return core.NewMC(g, seed) }, nil
	case "BFSSharing":
		return func() core.Estimator { return bfsIx.get().Querier() }, nil
	case "ProbTree":
		return func() core.Estimator { return ptIx.get().Querier(seed, nil) }, nil
	case "LP+":
		return func() core.Estimator { return core.NewLazyProp(g, seed) }, nil
	case "RHH":
		return func() core.Estimator { return core.NewRHH(g, seed) }, nil
	case "RSS":
		return func() core.Estimator { return core.NewRSS(g, seed) }, nil
	case "PackMC", pack256Name, pack512Name:
		return func() core.Estimator { return newPackLike(name, g, seed) }, nil
	case "ParallelMC":
		return func() core.Estimator { return core.NewParallelMC(g, seed, workers) }, nil
	case "ParallelPackMC":
		return func() core.Estimator { return core.NewParallelPackMC(g, seed, workers) }, nil
	default:
		return nil, fmt.Errorf("engine: unknown estimator %q", name)
	}
}

// replicaSeed derives the shared construction seed of a pool's replicas.
func replicaSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return mix64(seed ^ h.Sum64())
}

// querySeed derives the deterministic per-query stream seed: equal for
// equal (engine seed, estimator, s, t, k) and uncorrelated otherwise.
func querySeed(seed uint64, name string, s, t uncertain.NodeID, k int) uint64 {
	z := replicaSeed(seed, name)
	z = mix64(z + 0x9e3779b97f4a7c15*uint64(s))
	z = mix64(z + 0xbf58476d1ce4e5b9*uint64(t))
	return mix64(z + 0x94d049bb133111eb*uint64(k))
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Names returns the configured estimator names in stable order.
func (e *Engine) Names() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Graph returns the graph the engine currently serves (the newest epoch's
// graph under mutation). Under Config.DegreeRelabel this is the
// degree-sorted rename, not the constructor's graph — its node and edge
// ids are the internal ones (Do-borrowed estimators speak them too); the
// Estimate/EstimateBatch surface translates, this accessor does not.
func (e *Engine) Graph() *uncertain.Graph { return e.state.Load().g }

// Epoch returns the current mutation epoch: BaseEpoch plus the number of
// batches Apply has committed.
func (e *Engine) Epoch() uint64 { return e.state.Load().epoch }

// MutationLog returns the engine's committed-batch log (bounded replay
// buffer); see mutate.Log.
func (e *Engine) MutationLog() *mutate.Log { return e.log }

// MaxK returns the per-query sample budget cap.
func (e *Engine) MaxK() int { return e.cfg.MaxK }

// validate rejects malformed requests before they can reach an estimator
// (which would panic): the shared budget/stopping/evidence rules, then the
// kind's own shape. st is the epoch snapshot the request will run under.
func (e *Engine) validate(st *epochState, q Request) error {
	if err := validateEvidence(st.g, q.Evidence); err != nil {
		return err
	}
	if q.Eps < 0 || q.Eps >= 1 {
		return fmt.Errorf("engine: accuracy target eps %v outside [0, 1)", q.Eps)
	}
	if q.Deadline < 0 {
		return fmt.Errorf("engine: negative deadline %v", q.Deadline)
	}
	checkBudget := func(t uncertain.NodeID) error {
		if err := core.CheckQuery(st.g, q.S, t, q.K); err != nil {
			return err
		}
		if q.K > e.cfg.MaxK {
			return fmt.Errorf("engine: sample budget %d exceeds engine maximum %d", q.K, e.cfg.MaxK)
		}
		return nil
	}
	switch q.kind() {
	case KindReliability:
		if q.Estimator == BoundsName {
			if !q.Evidence.Empty() {
				return fmt.Errorf("engine: the %q pseudo-estimator is computed on the base graph and cannot honor evidence", BoundsName)
			}
			// The bounds path draws no samples, so K is unused and a zero
			// value must not be an error; only the endpoints matter.
			return core.CheckQuery(st.g, q.S, q.T, 1)
		}
		if err := checkBudget(q.T); err != nil {
			return err
		}
		if !q.Evidence.Empty() {
			if q.Estimator != "" && !evidenceCapable(q.Estimator) {
				return fmt.Errorf("engine: estimator %q cannot honor per-request evidence (index-based; use MC or PackMC, or omit the estimator)", q.Estimator)
			}
			return nil
		}
		if q.Estimator != "" {
			if _, ok := st.pools[q.Estimator]; !ok {
				return fmt.Errorf("engine: unknown estimator %q", q.Estimator)
			}
		}
		return nil
	case KindDistance:
		if q.D < 1 {
			return fmt.Errorf("engine: distance bound d %d must be >= 1", q.D)
		}
		if q.Estimator != "" && q.Estimator != "MC" {
			return fmt.Errorf("engine: distance queries run on the MC family; estimator %q not supported", q.Estimator)
		}
		return checkBudget(q.T)
	case KindTopK, KindSingleSource:
		if q.kind() == KindTopK && q.TopK < 1 {
			return fmt.Errorf("engine: topk %d must be >= 1", q.TopK)
		}
		switch {
		case q.Estimator == "":
		case !q.Evidence.Empty():
			if !packLike(q.Estimator) {
				return fmt.Errorf("engine: estimator %q cannot honor per-request evidence for %s (use a PackMC width or omit the estimator)", q.Estimator, q.kind())
			}
		case q.Estimator != sharedName && !packLike(q.Estimator):
			return fmt.Errorf("engine: %s queries need a multi-target estimator (BFSSharing or a PackMC width); %q is not one", q.kind(), q.Estimator)
		default:
			if _, ok := st.pools[q.Estimator]; !ok {
				return fmt.Errorf("engine: estimator %q not configured", q.Estimator)
			}
		}
		if q.Evidence.Empty() {
			if _, ok := st.pools[e.kindEstimator(q)]; !ok {
				return fmt.Errorf("engine: estimator %q not configured", e.kindEstimator(q))
			}
		}
		return checkBudget(q.S)
	case KindKTerminal:
		if len(q.Targets) == 0 {
			return fmt.Errorf("engine: k-terminal query needs at least one target")
		}
		n := uncertain.NodeID(st.g.NumNodes())
		for _, t := range q.Targets {
			if t < 0 || t >= n {
				return fmt.Errorf("engine: k-terminal target %d out of range [0,%d)", t, n)
			}
		}
		if q.Estimator != "" && q.Estimator != "MC" {
			return fmt.Errorf("engine: k-terminal queries run on the MC family; estimator %q not supported", q.Estimator)
		}
		return checkBudget(q.S)
	default:
		return fmt.Errorf("engine: unknown query kind %q", q.Kind)
	}
}

// noteKind counts one answered request per kind for Stats.
func (e *Engine) noteKind(k Kind) {
	e.mu.Lock()
	e.perKind[k]++
	e.mu.Unlock()
}

// Estimate answers one query: route if unnamed, consult the cache, then
// borrow a pooled instance, reseed it from the query key, and run it.
// The context cancels queued and anytime work: a canceled context fails
// the query up front and stops an anytime query between sample chunks
// (fixed-budget estimates are not interruptible once started). A context
// deadline acts like Query.Deadline; the earlier of the two wins.
//
// With admission control configured the query first passes the admission
// controller: at capacity it queues (bounded, deadline-bounded), sheds
// with ErrOverloaded or ErrQueueTimeout when the queue overflows or the
// wait expires, and under pressure the degradation ladder may answer
// below the requested fidelity, flagged via Response.Degraded.
func (e *Engine) estimateInternal(ctx context.Context, q Request) Response {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx compatibility defaulting at the API boundary itself
	}
	// One state load per query: the whole call — validation, routing,
	// pool borrow, cache keys — runs against this epoch snapshot, so a
	// concurrent Apply can never hand it a blend of two worlds.
	st := e.state.Load()
	res := Response{Request: q, Epoch: st.epoch}
	if err := e.validate(st, q); err != nil {
		res.Err = err
		return res
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	release, lvl, err := e.admit(ctx, st, q)
	if err != nil {
		res.Err = err
		return res
	}
	defer release()
	e.noteKind(q.kind())
	dq, degraded := e.degradeRequest(q, lvl)
	if degraded {
		res.Degraded = true
		e.adm.noteDegraded()
	}
	if !dq.plainReliability() {
		e.runKind(ctx, st, dq, &res)
		return res
	}
	start := time.Now()
	name, d, done := e.resolve(st, dq, &res)
	if done {
		if degraded && res.Used == BoundsName && q.Estimator != BoundsName {
			// The ladder floor: the request asked for sampling and got the
			// bounds midpoint instead.
			res.StopReason = string(core.StopDegraded)
		}
		res.Latency = time.Since(start)
		return res
	}
	e.runSingle(ctx, st, name, d, dq, &res)
	// Report the full cost including any routing bounds walk; the
	// estimator-only time was already fed to the router inside.
	res.Latency = time.Since(start)
	return res
}

// resolve names the estimator for a validated query, routing adaptively
// when the query names none. When the analytic bounds pinch the answer —
// or the query explicitly asks for the BoundsName pseudo-estimator — it
// fills res in and reports done; no sampling runs at all. For routed
// queries the returned decision carries the bounds interval, which seeds
// the anytime stopping layer's prior and chunk schedule.
func (e *Engine) resolve(st *epochState, q Query, res *Result) (name string, d decision, done bool) {
	if q.Estimator == BoundsName {
		start := time.Now()
		res.Used = BoundsName
		res.Reliability = e.router.midpoint(st.g, st.srcTag(q.S), q.S, q.T)
		res.Latency = time.Since(start)
		e.record(BoundsName, res.Latency.Seconds(), false)
		return "", d, true
	}
	if q.Estimator != "" {
		return q.Estimator, d, false
	}
	start := time.Now()
	d = e.router.route(st.g, st.srcTag(q.S), q.S, q.T)
	if d.pinched {
		res.Used = BoundsName
		res.Reliability = d.value
		// The bounds walk is the whole cost of a pinched answer; record
		// it so the "bounds" stats row reflects reality, not zero.
		res.Latency = time.Since(start)
		e.record(BoundsName, res.Latency.Seconds(), false)
		return "", d, true
	}
	return d.estimator, d, false
}

// effectiveDeadline resolves a query's wall-clock bound from its Deadline
// field and the context's deadline; the zero time means unbounded.
func effectiveDeadline(ctx context.Context, d time.Duration) time.Time {
	var dl time.Time
	if d > 0 {
		dl = time.Now().Add(d)
	}
	if cd, ok := ctx.Deadline(); ok && (dl.IsZero() || cd.Before(dl)) {
		dl = cd
	}
	return dl
}

// adaptiveOpts builds the stopping configuration for one anytime query.
// Routed queries seed the prior from the bounds midpoint and pick the
// chunk schedule from the hard/easy classification: hard queries (wide
// bounds) start with larger chunks, since their convergence checks cannot
// succeed early anyway.
func (e *Engine) adaptiveOpts(ctx context.Context, q Query, dl time.Time, d decision) core.AdaptiveOptions {
	opts := core.AdaptiveOptions{
		Eps:      q.Eps,
		MaxK:     q.K,
		Deadline: dl,
		Ctx:      ctx,
	}
	if d.width > 0 { // routed: the bounds interval is known
		opts.Prior = d.prior
		if d.hard(e.router.hardWidth) {
			opts.Chunk = hardChunk
		} else {
			opts.Chunk = easyChunk
		}
	}
	return opts
}

// easyChunk and hardChunk are the anytime layer's starting chunk sizes by
// routed hard/easy classification; unclassified (named-estimator) queries
// use the core default.
const (
	easyChunk = 256
	hardChunk = 1024
)

// queryKey builds the result-cache key for a query running under the
// given stopping configuration: the schedule fields keep bounds-seeded
// (routed) anytime runs apart from default-schedule ones, since the two
// stop at different chunk boundaries. The source's invalidation tag makes
// entries outdated by a mutation unreachable (cache.go).
func (e *Engine) queryKey(st *epochState, name string, q Query, opts core.AdaptiveOptions) cacheKey {
	return cacheKey{
		s: q.S, t: q.T, est: name, k: q.K, eps: q.Eps,
		chunk: opts.Chunk, prior: opts.Prior, epoch: st.srcTag(q.S),
	}
}

// runSingle answers one validated query with the named estimator: cache
// lookup, then a borrowed, per-query-reseeded instance.
func (e *Engine) runSingle(ctx context.Context, st *epochState, name string, d decision, q Query, res *Result) {
	res.Used = name
	dl := effectiveDeadline(ctx, q.Deadline)
	var opts core.AdaptiveOptions
	if q.Eps > 0 || !dl.IsZero() {
		opts = e.adaptiveOpts(ctx, q, dl, d)
	}
	key := e.queryKey(st, name, q, opts)
	// Deadline-truncated results are timing-dependent: never cached.
	if dl.IsZero() {
		if v, ok := e.cache.get(key); ok {
			res.Reliability = v.r
			res.SamplesUsed = v.samples
			res.StopReason = v.reason
			res.Cached = true
			res.Epoch = v.epoch
			e.record(name, 0, true)
			return
		}
	}
	p := st.pools[name]
	if err := e.withReplica(p, func(inst core.Estimator) {
		e.runBorrowed(ctx, st, inst, name, q, dl, opts, key, res)
	}); err != nil {
		// A faulted replica (or factory) costs exactly this query: the
		// replica was discarded, the error is typed, nothing is cached.
		res.Err = err
	}
}

// runBorrowed answers one query on an already-borrowed instance and does
// the full accounting: timing, cache fill, router observation, counters.
func (e *Engine) runBorrowed(ctx context.Context, st *epochState, inst core.Estimator, name string, q Query, dl time.Time, opts core.AdaptiveOptions, key cacheKey, res *Result) {
	start := time.Now()
	e.runOne(ctx, inst, name, q, dl, opts, res)
	res.Latency = time.Since(start)
	if res.Err == nil && dl.IsZero() {
		e.cache.put(key, cacheVal{r: res.Reliability, samples: res.SamplesUsed, reason: res.StopReason, epoch: st.epoch})
	}
	e.router.observe(name, res.Latency.Seconds())
	e.record(name, res.Latency.Seconds(), false)
}

// runOne reseeds inst for the query and runs the estimate: one fixed-K
// call for a plain query, an incremental session under the given stopping
// configuration for an anytime one. With Eps = 0 and no deadline the
// fixed path runs, so plain queries stay bit-identical to the estimators'
// own Estimate.
func (e *Engine) runOne(ctx context.Context, inst core.Estimator, name string, q Query, dl time.Time, opts core.AdaptiveOptions, res *Result) {
	if faultinject.Enabled() {
		// Injection points keyed by the per-query stream seed, so a seeded
		// injector faults the same queries on every run regardless of
		// scheduling. The panic is contained by withReplica above.
		fkey := e.querySeedFor(name, q.S, q.T, q.K)
		faultinject.Sleep(faultinject.SlowReplica, fkey)
		faultinject.MaybePanic(faultinject.EstimatorPanic, fkey)
	}
	if s, ok := inst.(core.Seeder); ok {
		s.Reseed(e.querySeedFor(name, q.S, q.T, q.K))
	}
	if q.Eps <= 0 && dl.IsZero() {
		res.Reliability = inst.Estimate(q.S, q.T, q.K)
		res.SamplesUsed = q.K
		return
	}
	ar := core.AdaptiveEstimate(core.NewSampler(inst, q.S, q.T), opts)
	res.Reliability = ar.Estimate
	res.SamplesUsed = ar.Samples
	res.StopReason = string(ar.Reason)
	if ar.Reason == core.StopCanceled {
		res.Err = ctx.Err()
	}
	e.recordAnytime(q.K, ar.Samples)
}

// recordAnytime accumulates the samples-saved-vs-budget accounting for
// one computed anytime answer.
func (e *Engine) recordAnytime(budget, drawn int) {
	e.mu.Lock()
	e.anytimeQueries++
	e.samplesBudget += uint64(budget)
	e.samplesDrawn += uint64(drawn)
	e.mu.Unlock()
}

// querySeedFor derives the stream seed runOne reseeds with. PackMC's
// source-grouped batch path answers every target of an (s, k) group from
// one reseeded pack sweep (EstimateAll), so its seed must ignore the
// target — single and grouped execution then draw the same world ensemble
// and, because PackMC's masks are counter-based, return identical values.
// Every other estimator keeps the full (s, t, k) key.
func (e *Engine) querySeedFor(name string, s, t uncertain.NodeID, k int) uint64 {
	if packLike(name) {
		t = s
	}
	return querySeed(e.cfg.Seed, name, s, t, k)
}

// workUnit is one batch work item. Two shapes:
//   - a groupable estimator (BFS Sharing, ProbTree, PackMC): a (source,
//     k, ε, deadline) group — every same-source, same-budget,
//     same-stopping-rule query of the batch, answered with the per-source
//     work amortized across the group;
//   - otherwise: one distinct (estimator, s, t, k, ε, deadline) query,
//     computed once and fanned out to every batch position that asked
//     for it.
//
// Routed (unnamed-estimator) queries are resolved in a parallel phase
// before units are built, so queries the router sends to a groupable
// estimator join its amortized source groups too.
type workUnit struct {
	est      string
	s        uncertain.NodeID
	k        int
	eps      float64
	deadline time.Duration
	idxs     []int // query indices the unit answers
	// isKind marks a non-plain request unit (any kind other than plain
	// s-t reliability, or any request under evidence): one runKind call
	// answers the representative query and fans out to duplicates. Such
	// units are already deduped on the full request identity, so mixed
	// batches group by (kind, source, parameters) — a top-k and a
	// single-source request of one source are distinct units, while
	// identical requests collapse to one computation.
	isKind bool
}

// groupKey identifies one batch work unit: the cache key (whose target is
// zeroed for amortized source groups) plus the deadline, which shapes
// anytime execution but never enters the result cache.
type groupKey struct {
	key      cacheKey
	deadline time.Duration
}

// sharedName, ptName, and packName are the estimators whose core API
// exposes multi-target amortization: one BFS Sharing traversal computes
// every target's reliability at once (EstimateAll), one ProbTree group
// splice expands the source-side bag chain once for all targets
// (QueryGraphAll), and one PackMC pack sweep leaves every reached node's
// per-world hit counts behind (EstimateAll again). All other estimators
// answer per query, so their batch queries become individual work units
// and spread over all workers instead of serializing behind a shared
// source.
const (
	sharedName  = "BFSSharing"
	ptName      = "ProbTree"
	packName    = "PackMC"
	pack256Name = "PackMC256"
	pack512Name = "PackMC512"
)

// packLike reports whether name is a world-packed kernel at any lane
// width. All three share PackMC's counter-based stream properties: the
// target-less query seed, the amortized EstimateAll batch path, and
// evidence capability (index-free, O(n) construction per overlay).
func packLike(name string) bool {
	return name == packName || name == pack256Name || name == pack512Name
}

// newPackLike builds the named world-packed kernel over g.
func newPackLike(name string, g *uncertain.Graph, seed uint64) core.Estimator {
	switch name {
	case pack256Name:
		return core.NewWidePackMC(g, seed, 256)
	case pack512Name:
		return core.NewWidePackMC(g, seed, 512)
	default:
		return core.NewPackMC(g, seed)
	}
}

// groupable reports whether name's batch queries are amortized per
// (source, k) group rather than answered per query.
func groupable(name string) bool {
	return name == sharedName || name == ptName || packLike(name)
}

// orderedGroups accumulates query indices per key, remembering the keys'
// first-appearance order so iteration — and with it unit execution order
// — is deterministic run to run.
type orderedGroups[K comparable] struct {
	groups map[K][]int
	order  []K
}

func newOrderedGroups[K comparable]() *orderedGroups[K] {
	return &orderedGroups[K]{groups: make(map[K][]int)}
}

func (g *orderedGroups[K]) add(key K, i int) {
	if _, seen := g.groups[key]; !seen {
		g.order = append(g.order, key)
	}
	g.groups[key] = append(g.groups[key], i)
}

// EstimateBatch answers a set of queries concurrently: validated up
// front, adaptively routed in a parallel resolve phase, turned into work
// units (amortized (source, k, ε, deadline) groups for the groupable
// estimators, per-query units otherwise), and spread over the engine's
// workers. Results are positionally aligned with the input and identical
// to what sequential Estimate calls would return (modulo adaptive
// routing, which is latency-dependent). A canceled context fails the
// not-yet-started units with the context error; in-flight fixed-budget
// units finish, in-flight anytime units stop at the next chunk.
//
// Under admission control the batch admits as one request costed at the
// sum of its queries; a shed batch fails every position with the
// admission error, and a degradation level in force at admission applies
// to every query (per-position Degraded flags report which were actually
// reduced).
func (e *Engine) estimateBatchInternal(ctx context.Context, queries []Query) []Result {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx compatibility defaulting at the API boundary itself
	}
	// The whole batch runs against one epoch snapshot: admission costing,
	// validation, routing, amortized groups, and cache keys all agree on
	// the graph, whatever Apply does concurrently.
	st := e.state.Load()
	results := make([]Response, len(queries))
	release, lvl, aerr := e.admitBatch(ctx, st, queries)
	if aerr != nil {
		for i := range results {
			results[i].Request = queries[i]
			results[i].Err = aerr
		}
		return results
	}
	defer release()
	orig := queries
	var degradedAt []bool
	if lvl > 0 {
		dq := make([]Query, len(queries))
		degradedAt = make([]bool, len(queries))
		for i, q := range queries {
			dq[i], degradedAt[i] = e.degradeRequest(q, lvl)
		}
		queries = dq
	}
	names := make([]string, len(queries))
	decisions := make([]decision, len(queries))
	routed := newOrderedGroups[cacheKey]() // adaptive queries by (s, t)
	kinds := newOrderedGroups[groupKey]()  // non-plain requests by identity
	for i, q := range queries {
		// Results echo the request as asked, not the degraded variant
		// actually executed.
		results[i].Request = orig[i]
		if err := e.validate(st, q); err != nil {
			results[i].Err = err
			continue
		}
		results[i].Epoch = st.epoch
		e.noteKind(q.kind())
		if !q.plainReliability() {
			// Non-plain requests dedupe on their full identity; each
			// distinct request is one work unit, answered by runKind.
			kinds.add(groupKey{key: e.kindKey(st, q, e.kindEstimator(q)), deadline: q.Deadline}, i)
			continue
		}
		if q.Estimator == "" || q.Estimator == BoundsName {
			// Routing depends only on (s, t) — dedupe so a batch full of
			// one hot pair pays the bounds walk once, not once per query.
			// The estimator field keeps explicit bounds requests in their
			// own group, apart from adaptive ones.
			routed.add(cacheKey{s: q.S, t: q.T, est: q.Estimator}, i)
			continue
		}
		names[i] = q.Estimator
	}
	// Resolve adaptive queries across the workers first — the analytic
	// bounds walk dominates routing cost and must not run serially —
	// so routed queries join the amortized groups below like named ones.
	e.forEachParallel(len(routed.order), func(j int) {
		idxs := routed.groups[routed.order[j]]
		if err := ctx.Err(); err != nil {
			for _, i := range idxs {
				results[i].Err = err
			}
			return
		}
		first := idxs[0]
		name, d, done := e.resolve(st, queries[first], &results[first])
		if !done {
			names[first] = name
			decisions[first] = d
		}
		for _, i := range idxs[1:] {
			if done {
				// Duplicates reuse the first answer with the same
				// cache-hit semantics as every other dedup path, and
				// count in the bounds counters like separate calls.
				results[i].Used = results[first].Used
				results[i].Reliability = results[first].Reliability
				results[i].Epoch = results[first].Epoch
				results[i].Cached = true
				e.router.notePinched()
				e.noteDeduped()
				e.record(BoundsName, 0, true)
			} else {
				names[i] = name
				decisions[i] = d
				e.router.noteRouted(name)
			}
		}
	}, func(j int, err error) {
		for _, i := range routed.groups[routed.order[j]] {
			results[i].Err = err
		}
	})

	// Units are built in first-appearance order so execution order (and
	// with it replica construction and stats accumulation) is the same
	// on every run of an identical batch. Group keys extend cacheKey with
	// the deadline; for amortized groups the target is zeroed, keying on
	// (estimator, s, k, ε, deadline).
	shared := newOrderedGroups[groupKey]()
	single := newOrderedGroups[groupKey]()
	for i, q := range queries {
		switch {
		case names[i] == "": // invalid or already answered by the bounds
		case groupable(names[i]):
			shared.add(groupKey{
				key:      cacheKey{s: q.S, est: names[i], k: q.K, eps: q.Eps},
				deadline: q.Deadline,
			}, i)
		default:
			// Dedup identical queries: one computation fans out to every
			// batch position that asked for it.
			single.add(groupKey{
				key:      cacheKey{s: q.S, t: q.T, est: names[i], k: q.K, eps: q.Eps},
				deadline: q.Deadline,
			}, i)
		}
	}
	units := make([]workUnit, 0, len(single.order)+len(shared.order)+len(kinds.order))
	asUnit := func(gk groupKey, idxs []int) workUnit {
		return workUnit{
			est: gk.key.est, s: gk.key.s, k: gk.key.k,
			eps: gk.key.eps, deadline: gk.deadline, idxs: idxs,
		}
	}
	for _, key := range single.order {
		units = append(units, asUnit(key, single.groups[key]))
	}
	// One unit per (estimator, source, k, ε, deadline): same-source
	// groups with different budgets (or estimators, or stopping rules)
	// are independent, so they parallelize too.
	for _, key := range shared.order {
		units = append(units, asUnit(key, shared.groups[key]))
	}
	// Non-plain kind units parallelize like any other; their estimator
	// pools (BFS Sharing, PackMC, per-d distance) are Workers-deep.
	for _, key := range kinds.order {
		u := asUnit(key, kinds.groups[key])
		u.isKind = true
		units = append(units, u)
	}
	// Units of single-instance pools (ParallelMC) run last: placed
	// earlier they would pile all workers up blocked on the one replica
	// while runnable units wait in the queue.
	var unconstrained, constrained []workUnit
	for _, u := range units {
		if p := st.pools[u.est]; p != nil && p.capacity == 1 {
			constrained = append(constrained, u)
		} else {
			unconstrained = append(unconstrained, u)
		}
	}
	units = append(unconstrained, constrained...)

	e.forEachParallel(len(units), func(j int) {
		u := units[j]
		if err := ctx.Err(); err != nil {
			for _, i := range u.idxs {
				results[i].Err = err
			}
			return
		}
		if u.isKind {
			first := u.idxs[0]
			e.runKind(ctx, st, queries[first], &results[first])
			for _, i := range u.idxs[1:] {
				// Duplicates reuse the computed value, per-kind payloads
				// included (the slices are shared, read-only). An errored
				// representative (context cancellation) propagates its
				// error without posing as a cache hit.
				results[i].Used = results[first].Used
				results[i].Reliability = results[first].Reliability
				results[i].Reliabilities = results[first].Reliabilities
				results[i].TopTargets = results[first].TopTargets
				results[i].SamplesUsed = results[first].SamplesUsed
				results[i].StopReason = results[first].StopReason
				results[i].Epoch = results[first].Epoch
				results[i].Err = results[first].Err
				if results[first].Err == nil {
					results[i].Cached = true
					e.noteDeduped()
					e.record(results[first].Used, 0, true)
				}
			}
			return
		}
		if groupable(u.est) {
			e.runShared(ctx, st, u, queries, results)
			return
		}
		first := u.idxs[0]
		e.runSingle(ctx, st, u.est, decisions[first], queries[first], &results[first])
		for _, i := range u.idxs[1:] {
			// Duplicates reuse the computed value — cache-hit semantics,
			// whether or not the cache itself is enabled. An errored
			// representative (context cancellation) propagates its error
			// without posing as a cache hit.
			results[i].Used = results[first].Used
			results[i].Reliability = results[first].Reliability
			results[i].SamplesUsed = results[first].SamplesUsed
			results[i].StopReason = results[first].StopReason
			results[i].Epoch = results[first].Epoch
			results[i].Err = results[first].Err
			if results[first].Err == nil {
				results[i].Cached = true
				e.noteDeduped()
				e.record(u.est, 0, true)
			}
		}
	}, func(j int, err error) {
		// A unit that still panicked past the replica-level containment
		// (an engine bug, not a replica fault) costs its own positions
		// only; the rest of the batch is unaffected.
		for _, i := range units[j].idxs {
			results[i].Err = err
		}
	})

	if degradedAt != nil {
		for i := range results {
			if !degradedAt[i] || results[i].Err != nil {
				continue
			}
			results[i].Degraded = true
			e.adm.noteDegraded()
			if results[i].Used == BoundsName && orig[i].Estimator != BoundsName && results[i].StopReason == "" {
				results[i].StopReason = string(core.StopDegraded)
			}
		}
	}

	answered := uint64(0)
	for i := range results {
		if results[i].Err == nil {
			answered++
		}
	}
	e.mu.Lock()
	e.batches++
	e.batched += answered
	e.mu.Unlock()
	return results
}

// forEachParallel runs fn(0..n-1) across up to Workers goroutines,
// returning when all calls complete. A panic in fn is contained to its
// work item: capturePanic converts it to a typed error and onPanic(j,
// err) reports it, so one faulting unit costs exactly that unit's
// results — never the process (an unrecovered panic on an engine-spawned
// goroutine would kill it) and never the batch's other units.
func (e *Engine) forEachParallel(n int, fn func(int), onPanic func(int, error)) {
	if n == 0 {
		return
	}
	run := func(j int) {
		if err := capturePanic(func() { fn(j) }); err != nil && onPanic != nil {
			onPanic(j, err)
		}
	}
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for j := 0; j < n; j++ {
			run(j)
		}
		return
	}
	work := make(chan int, n)
	for j := 0; j < n; j++ {
		work <- j
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				run(j)
			}
		}()
	}
	wg.Wait()
}

// runShared amortizes a groupable (estimator, source, k, ε, deadline)
// group: every query shares the estimator, source, budget, and stopping
// rule, so the per-source work is paid once for the whole group. For BFS
// Sharing one EstimateAll traversal answers all targets at once —
// EstimateAll(s, k)[t] is exactly Estimate(s, t, k), the s-t query just
// reads one entry of the traversal the method computes anyway. For
// ProbTree one QueryGraphAll call expands the s-side bag chain once and
// splices every target against it, producing per-target query graphs
// identical to per-query splicing; each target's inner estimate then runs
// under its own per-query reseed. On both paths amortization does not
// change results.
//
// Anytime groups (ε or deadline set) run the same amortized traversals
// incrementally: BFS Sharing and PackMC advance one multi-target session
// in lockstep and retire each target as its stopping rule fires, ending
// the shared sweep once every target is retired; ProbTree splices the
// source side once and runs each target's inner session under its own
// stopping. Grouped execution always uses the default chunk schedule —
// one lockstep sweep cannot honor per-target bounds priors — so a named
// anytime query's answer is bit-identical to the single path's (which
// also uses the default schedule; the sessions share streams and chunk
// boundaries), while a routed anytime query may stop at different
// boundaries than its bounds-seeded single run, consistent with the
// engine's routing carve-out from the determinism guarantee. The cache
// keys schedule fields, so the two variants never mix entries.
func (e *Engine) runShared(ctx context.Context, st *epochState, u workUnit, queries []Query, results []Result) {
	name, s, k := u.est, u.s, u.k
	dl := effectiveDeadline(ctx, u.deadline)
	anytime := u.eps > 0 || !dl.IsZero()
	cacheable := dl.IsZero()
	// Dedupe by target first, then consult the cache once per unique
	// target — duplicates never touch the cache counters, matching the
	// per-query dedup path.
	byTarget := newOrderedGroups[uncertain.NodeID]()
	for _, i := range u.idxs {
		results[i].Used = name
		byTarget.add(queries[i].T, i)
	}
	reuse := func(first int, dups []int) {
		for _, i := range dups {
			results[i].Reliability = results[first].Reliability
			results[i].SamplesUsed = results[first].SamplesUsed
			results[i].StopReason = results[first].StopReason
			results[i].Epoch = results[first].Epoch
			results[i].Err = results[first].Err
			if results[first].Err == nil {
				results[i].Cached = true
				e.noteDeduped()
				e.record(name, 0, true)
			}
		}
	}
	var missTargets []uncertain.NodeID
	for _, t := range byTarget.order {
		grp := byTarget.groups[t]
		if cacheable {
			if v, hit := e.cache.get(cacheKey{s: s, t: t, est: name, k: k, eps: u.eps, epoch: st.srcTag(s)}); hit {
				results[grp[0]].Reliability = v.r
				results[grp[0]].SamplesUsed = v.samples
				results[grp[0]].StopReason = v.reason
				results[grp[0]].Cached = true
				results[grp[0]].Epoch = v.epoch
				e.record(name, 0, true)
				reuse(grp[0], grp[1:])
				continue
			}
		}
		missTargets = append(missTargets, t)
	}
	if len(missTargets) == 0 {
		return
	}

	p := st.pools[name]
	perr := e.withReplica(p, func(inst core.Estimator) {
		e.runSharedOn(ctx, st, inst, u, queries, results, byTarget, missTargets, dl, anytime, cacheable, reuse)
	})
	if perr != nil {
		// The replica faulted (and was discarded): every miss target of
		// the group fails with the typed error — the cache-served targets
		// above already have their answers and keep them.
		for _, t := range missTargets {
			for _, i := range byTarget.groups[t] {
				results[i].Err = perr
			}
		}
	}
}

// runSharedOn is runShared's borrowed-replica body: the amortized
// multi-target traversal (or the lone-target fallback) on an instance the
// caller owns for the duration.
func (e *Engine) runSharedOn(ctx context.Context, st *epochState, inst core.Estimator, u workUnit, queries []Query, results []Result, byTarget *orderedGroups[uncertain.NodeID], missTargets []uncertain.NodeID, dl time.Time, anytime, cacheable bool, reuse func(int, []int)) {
	name, s, k := u.est, u.s, u.k
	if faultinject.Enabled() {
		// The whole group is one traversal, so it faults (or drags) as a
		// unit, keyed by the group's target-less stream seed.
		fkey := e.querySeedFor(name, s, s, k)
		faultinject.Sleep(faultinject.SlowReplica, fkey)
		faultinject.MaybePanic(faultinject.EstimatorPanic, fkey)
	}
	if len(missTargets) == 1 {
		// A lone target gains nothing from amortization; answer it like
		// any other estimator would — on the group path's default chunk
		// schedule (decision{}), so its cache key matches the lockstep
		// path's entries for the same (s, t, k, ε).
		grp := byTarget.groups[missTargets[0]]
		q0 := queries[grp[0]]
		var opts core.AdaptiveOptions
		if anytime {
			opts = e.adaptiveOpts(ctx, q0, dl, decision{})
		}
		e.runBorrowed(ctx, st, inst, name, q0, dl, opts, e.queryKey(st, name, q0, opts), &results[grp[0]])
		reuse(grp[0], grp[1:])
		return
	}
	start := time.Now()
	vals := make([]float64, len(missTargets))
	samples := make([]int, len(missTargets))
	reasons := make([]string, len(missTargets))
	for i := range samples {
		samples[i] = k // the fixed paths below draw the full budget
	}
	opts := core.AdaptiveOptions{Eps: u.eps, MaxK: k, Deadline: dl, Ctx: ctx}
	fillAdaptive := func(ars []core.AdaptiveResult) {
		for i, ar := range ars {
			vals[i] = ar.Estimate
			samples[i] = ar.Samples
			reasons[i] = string(ar.Reason)
			e.recordAnytime(k, ar.Samples)
		}
	}
	switch est := inst.(type) { // factoryFor guarantees the concrete types
	case *core.BFSQuerier:
		if anytime {
			fillAdaptive(core.AdaptiveEstimateAll(est.AllSampler(s), missTargets, opts))
			break
		}
		all := est.EstimateAll(s, k)
		for i, t := range missTargets {
			vals[i] = all[t]
		}
	case *core.ProbTreeQuerier:
		// Streamed so only one spliced graph is alive at a time, however
		// wide the group.
		est.QueryGraphEach(s, missTargets, func(i int, sq core.SplicedQuery) {
			// The same per-query reseed as runOne, so the inner sampler
			// stream — and with it the estimate — matches a single
			// Estimate call bit for bit.
			est.Reseed(e.querySeedFor(name, s, missTargets[i], k))
			if anytime {
				ar := core.AdaptiveEstimate(est.SplicedSampler(sq), opts)
				vals[i] = ar.Estimate
				samples[i] = ar.Samples
				reasons[i] = string(ar.Reason)
				e.recordAnytime(k, ar.Samples)
				return
			}
			vals[i] = est.EstimateSpliced(sq, k)
		})
	case *core.PackMC:
		// The same target-less reseed as runOne uses for PackMC, so the
		// pack sweep draws the exact world ensemble each single query
		// would, and EstimateAll[t] matches Estimate(s, t, k) bit for bit.
		est.Reseed(e.querySeedFor(name, s, s, k))
		if anytime {
			fillAdaptive(core.AdaptiveEstimateAll(est.AllSampler(s), missTargets, opts))
			break
		}
		all := est.EstimateAll(s, k)
		for i, t := range missTargets {
			vals[i] = all[t]
		}
	case *core.WidePackMC:
		// Identical contract at 256/512 lanes: counter-based streams make
		// the wide group sweep bit-identical to per-target queries.
		est.Reseed(e.querySeedFor(name, s, s, k))
		if anytime {
			fillAdaptive(core.AdaptiveEstimateAll(est.AllSampler(s), missTargets, opts))
			break
		}
		all := est.EstimateAll(s, k)
		for i, t := range missTargets {
			vals[i] = all[t]
		}
	default:
		panic(fmt.Sprintf("engine: estimator %q grouped without an amortized path", name))
	}
	elapsed := time.Since(start)
	// Each query's Latency reports its amortized share of the shared
	// group, but the router sees the full group cost once: a single
	// adaptive query routed here would pay all of it.
	share := elapsed / time.Duration(len(missTargets))
	e.router.observe(name, elapsed.Seconds())
	canceled := ctx.Err()
	for i, t := range missTargets {
		grp := byTarget.groups[t]
		first := grp[0]
		results[first].Reliability = vals[i]
		results[first].SamplesUsed = samples[i]
		results[first].StopReason = reasons[i]
		results[first].Latency = share
		if reasons[i] == string(core.StopCanceled) {
			results[first].Err = canceled
		} else if cacheable {
			e.cache.put(cacheKey{s: s, t: t, est: name, k: k, eps: u.eps, epoch: st.srcTag(s)},
				cacheVal{r: vals[i], samples: samples[i], reason: reasons[i], epoch: st.epoch})
		}
		e.record(name, share.Seconds(), false)
		reuse(first, grp[1:])
	}
}

// Do borrows an instance of the named estimator for fn's exclusive use —
// the escape hatch for advanced queries (top-k, single-source) that need
// the concrete estimator rather than one Estimate call. The instance is
// reseeded before fn runs, so a borrowed sampling estimator's stream
// depends only on the engine seed, never on the queries the replica
// happened to serve earlier.
//
// fn must not call back into the engine for the same estimator: it holds
// one of a bounded pool of replicas, and on a single-replica pool
// (Workers = 1, or ParallelMC) a re-entrant borrow blocks forever.
func (e *Engine) Do(name string, fn func(core.Estimator) error) error {
	p, ok := e.state.Load().pools[name]
	if !ok {
		return fmt.Errorf("engine: unknown estimator %q", name)
	}
	inst := p.get()
	defer p.put(inst)
	if s, ok := inst.(core.Seeder); ok {
		s.Reseed(mix64(replicaSeed(e.cfg.Seed, name) + 0xD0e5eed))
	}
	return fn(inst)
}

// noteDeduped counts one intra-batch duplicate answered by reuse, so the
// per-result Cached flags reconcile with Stats even when the LRU is
// disabled (CacheHits + DedupedQueries covers every reused answer).
func (e *Engine) noteDeduped() {
	e.mu.Lock()
	e.deduped++
	e.mu.Unlock()
}

// perEstCap bounds the per-estimator stats map: the distance kind mints a
// row per client-chosen hop bound ("MC(d<=7)"), so without a cap a client
// sweeping hop bounds would grow Stats.Estimators without limit. Rows
// beyond the cap accumulate under the overflow name.
const (
	perEstCap      = 256
	perEstOverflow = "other"
)

// record accumulates per-estimator counters. Cached answers count as
// queries but contribute no latency.
func (e *Engine) record(name string, seconds float64, cached bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries++
	c := e.perEst[name]
	if c == nil {
		if len(e.perEst) >= perEstCap {
			name = perEstOverflow
			c = e.perEst[name]
		}
	}
	if c == nil {
		c = &estCounter{}
		e.perEst[name] = c
	}
	c.queries++
	if !cached {
		c.computed++
		c.totalSecs += seconds
	}
}

// EstimatorStats reports one estimator's share of engine traffic.
type EstimatorStats struct {
	Queries       uint64  `json:"queries"`
	AvgLatencyMs  float64 `json:"avgLatencyMs"`
	EwmaLatencyMs float64 `json:"ewmaLatencyMs"`
	Routed        uint64  `json:"routed"`
	PoolReplicas  int     `json:"poolReplicas"`
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Queries        uint64 `json:"queries"`
	Batches        uint64 `json:"batches"`
	BatchQueries   uint64 `json:"batchQueries"`
	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	CacheEvictions uint64 `json:"cacheEvictions"`
	DedupedQueries uint64 `json:"dedupedQueries"`
	CacheLen       int    `json:"cacheLen"`
	CacheCap       int    `json:"cacheCap"`
	BoundsAnswered uint64 `json:"boundsAnswered"`
	// BoundsMemo reports the router's bounds-memo LRU (hits, misses,
	// evictions, occupancy) so operators can size it: the memoized
	// analytic bounds walk is the dominant routing cost, and a memo
	// churning through evictions means repeated adaptive traffic is
	// re-paying it.
	BoundsMemo CacheStats `json:"boundsMemo"`
	// Anytime accounting: queries computed under a stopping rule (ε or
	// deadline), the total samples their budgets allowed, and the samples
	// actually drawn — AnytimeSamplesSaved is the work the stopping rules
	// avoided versus running every such query to its full budget.
	AnytimeQueries      uint64 `json:"anytimeQueries"`
	AnytimeSampleCap    uint64 `json:"anytimeSampleCap"`
	AnytimeSamplesDrawn uint64 `json:"anytimeSamplesDrawn"`
	AnytimeSamplesSaved uint64 `json:"anytimeSamplesSaved"`
	Workers             int    `json:"workers"`
	// Admission reports the overload controller: requests admitted,
	// queued, shed (429-class), timed out in the queue (503-class), and
	// answered degraded, plus the live inflight and queue gauges. All
	// zero (Enabled false) when admission control is off.
	Admission AdmissionStats `json:"admission"`
	// Mutations reports the dynamic-graph subsystem: the current epoch
	// and the cumulative mutation/invalidation/repair counters.
	Mutations  MutationStats             `json:"mutations"`
	Estimators map[string]EstimatorStats `json:"estimators"`
	// Kinds counts accepted requests per query kind ("reliability",
	// "distance", "topk", "single_source", "kterminal"), so operators see
	// the workload mix the unified surface carries.
	Kinds map[string]uint64 `json:"kinds"`
}

// MutationStats is Stats' dynamic-graph section: the current epoch, the
// committed batch / applied mutation counts, how many source invalidation
// tags mutations have bumped (the precise-invalidation work), the
// incremental-repair vs full-rebuild split of index maintenance, the
// mutation log's retained batch count, and the live subscriber gauge.
type MutationStats struct {
	Epoch              uint64 `json:"epoch"`
	Batches            uint64 `json:"batches"`
	Applied            uint64 `json:"applied"`
	InvalidatedSources uint64 `json:"invalidatedSources"`
	IndexRepairs       uint64 `json:"indexRepairs"`
	IndexRebuilds      uint64 `json:"indexRebuilds"`
	LogRetained        int    `json:"logRetained"`
	Subscribers        int    `json:"subscribers"`
}

// Stats snapshots the engine's counters. The cache, router, and engine
// counters are sampled under their own locks without a global freeze, so
// a snapshot taken under concurrent traffic can be skewed by in-flight
// queries (e.g. CacheHits momentarily exceeding Queries).
func (e *Engine) Stats() Stats {
	routed, ewma, pinched := e.router.snapshot()
	cs := e.cache.stats()
	memo := e.router.memoStats()
	st := e.state.Load()
	e.subMu.Lock()
	subscribers := len(e.subs)
	e.subMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	out := Stats{
		Queries:             e.queries,
		Batches:             e.batches,
		BatchQueries:        e.batched,
		CacheHits:           cs.Hits,
		CacheMisses:         cs.Misses,
		CacheEvictions:      cs.Evictions,
		DedupedQueries:      e.deduped,
		CacheLen:            cs.Len,
		CacheCap:            cs.Cap,
		BoundsAnswered:      pinched,
		BoundsMemo:          memo,
		AnytimeQueries:      e.anytimeQueries,
		AnytimeSampleCap:    e.samplesBudget,
		AnytimeSamplesDrawn: e.samplesDrawn,
		AnytimeSamplesSaved: e.samplesBudget - e.samplesDrawn,
		Workers:             e.cfg.Workers,
		Admission:           e.adm.stats(),
		Mutations: MutationStats{
			Epoch:              st.epoch,
			Batches:            e.mutBatches,
			Applied:            e.mutApplied,
			InvalidatedSources: e.srcInvalidated,
			IndexRepairs:       e.idxRepairs,
			IndexRebuilds:      e.idxRebuilds,
			LogRetained:        e.log.Len(),
			Subscribers:        subscribers,
		},
		Estimators: make(map[string]EstimatorStats, len(e.perEst)),
		Kinds:      make(map[string]uint64, len(e.perKind)),
	}
	for k, v := range e.perKind { //lint:allow maprange commutative map-to-map copy for a stats snapshot
		out.Kinds[string(k)] = v
	}
	for name, c := range e.perEst { //lint:allow maprange commutative map-to-map copy for a stats snapshot
		es := EstimatorStats{
			Queries:       c.queries,
			Routed:        routed[name],
			EwmaLatencyMs: ewma[name] * 1000,
		}
		if c.computed > 0 {
			es.AvgLatencyMs = c.totalSecs / float64(c.computed) * 1000
		}
		if p := st.pools[name]; p != nil {
			es.PoolReplicas = p.size()
		}
		out.Estimators[name] = es
	}
	return out
}
