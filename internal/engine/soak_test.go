package engine

import (
	"context"
	"errors"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relcomp/internal/faultinject"
	"relcomp/internal/uncertain"
)

// The fault soak: the serving runtime under deterministic injected chaos
// (estimator panics, slow replicas, memory pressure) must never crash,
// must fail only with typed errors, and must answer every uninjected,
// undegraded request bit-identically to a fault-free run with the same
// seed. Identity is asserted for explicit-estimator and non-plain-kind
// requests, whose streams are pure functions of (engine seed, request);
// router-chosen estimators depend on live latency statistics, so routed
// requests are checked for sanity (range, typed errors) only.

// soakWorkload is the mixed request set every soak round replays. All
// requests avoid Deadline: deadline-truncated sampling is timing-
// dependent by design and would break the bit-identity assertion.
func soakWorkload() []Query {
	var qs []Query
	for i, name := range []string{"MC", "BFSSharing", "ProbTree", "RSS", "PackMC"} {
		for s := 0; s < 3; s++ {
			for t := 4; t < 8; t++ {
				qs = append(qs, Query{
					S: uncertain.NodeID(s), T: uncertain.NodeID(t),
					K: 100 + 50*(i%2), Estimator: name,
				})
			}
		}
	}
	// Anytime (ε-only) requests: stopping depends only on the sample
	// stream, so they stay deterministic.
	qs = append(qs,
		Query{S: 0, T: 5, K: 1000, Eps: 0.2, Estimator: "MC"},
		Query{S: 1, T: 6, K: 1000, Eps: 0.2, Estimator: "RSS"},
		Query{S: 2, T: 7, K: 1000, Eps: 0.25, Estimator: "BFSSharing"},
	)
	// The advanced kinds, on their deterministic default estimators.
	qs = append(qs,
		Query{Kind: KindDistance, S: 0, T: 6, K: 100, D: 3},
		Query{Kind: KindTopK, S: 1, TopK: 3, K: 100},
		Query{Kind: KindKTerminal, S: 0, Targets: []uncertain.NodeID{4, 5}, K: 100},
		Query{Kind: KindSingleSource, S: 2, K: 100},
	)
	// Routed requests: sanity-checked only (the router's choice is
	// latency-dependent), but they exercise admission costing, the bounds
	// memo, and the level-2/3 ladder paths.
	for t := 4; t < 8; t++ {
		qs = append(qs, Query{S: 0, T: uncertain.NodeID(t), K: 200})
	}
	return qs
}

// identityEligible reports whether the request's answer is a pure
// function of the engine seed, so the soak may demand bit-identity.
func identityEligible(q Query) bool {
	return !(q.plainReliability() && q.Estimator == "")
}

// soakDuration is ~1.5s by default; CI's chaos-smoke job stretches it via
// RELCOMP_SOAK_MS for a long soak under -race.
func soakDuration() time.Duration {
	if ms, err := strconv.Atoi(os.Getenv("RELCOMP_SOAK_MS")); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return 1500 * time.Millisecond
}

func TestFaultSoak(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Seed: 42, MaxK: 2000, Workers: 4, CacheSize: 512}

	// Fault-free baseline, admission off: the reference answers.
	base, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := soakWorkload()
	baseline := make([]Response, len(queries))
	for i, q := range queries {
		baseline[i] = base.Estimate(context.Background(), q)
		if baseline[i].Err != nil {
			t.Fatalf("baseline query %d failed: %v", i, baseline[i].Err)
		}
	}

	inj := faultinject.NewSeeded(99).
		WithRate(faultinject.EstimatorPanic, 0.04).
		WithRate(faultinject.SlowReplica, 0.08).WithDelay(200*time.Microsecond).
		WithRate(faultinject.MemPressure, 0.03)
	defer faultinject.Set(inj)()

	acfg := cfg
	acfg.Admission = AdmissionConfig{
		MaxInflight: 4, MaxQueue: 64, QueueWait: 2 * time.Second,
		MaxInflightSamples: 50_000,
	}
	eng, err := New(g, acfg)
	if err != nil {
		t.Fatal(err)
	}

	var failures atomic.Int64
	check := func(i int, res Response) {
		q := queries[i]
		if res.Err != nil {
			if !errors.Is(res.Err, ErrEstimatorPanic) &&
				!errors.Is(res.Err, ErrOverloaded) &&
				!errors.Is(res.Err, ErrQueueTimeout) &&
				!errors.Is(res.Err, context.Canceled) &&
				!errors.Is(res.Err, context.DeadlineExceeded) {
				if failures.Add(1) < 10 {
					t.Errorf("query %d: untyped error under faults: %v", i, res.Err)
				}
			}
			return
		}
		if res.Reliability < 0 || res.Reliability > 1 || math.IsNaN(res.Reliability) {
			if failures.Add(1) < 10 {
				t.Errorf("query %d: reliability %v out of range", i, res.Reliability)
			}
			return
		}
		if res.Degraded || !identityEligible(q) {
			return
		}
		want := baseline[i]
		switch {
		case math.Float64bits(res.Reliability) != math.Float64bits(want.Reliability),
			res.SamplesUsed != want.SamplesUsed,
			res.StopReason != want.StopReason,
			res.Used != want.Used,
			len(res.TopTargets) != len(want.TopTargets),
			len(res.Reliabilities) != len(want.Reliabilities):
			if failures.Add(1) < 10 {
				t.Errorf("query %d (%s %s→%d): served answer diverged from fault-free run:\n got %v/%d/%q/%q\nwant %v/%d/%q/%q",
					i, q.Estimator, q.Kind, q.K,
					res.Reliability, res.SamplesUsed, res.StopReason, res.Used,
					want.Reliability, want.SamplesUsed, want.StopReason, want.Used)
			}
			return
		}
		for j := range res.TopTargets {
			if res.TopTargets[j] != want.TopTargets[j] {
				if failures.Add(1) < 10 {
					t.Errorf("query %d: top-k entry %d diverged: %v vs %v", i, j, res.TopTargets[j], want.TopTargets[j])
				}
				return
			}
		}
		for j := range res.Reliabilities {
			if math.Float64bits(res.Reliabilities[j]) != math.Float64bits(want.Reliabilities[j]) {
				if failures.Add(1) < 10 {
					t.Errorf("query %d: single-source entry %d diverged", i, j)
				}
				return
			}
		}
	}

	deadline := time.Now().Add(soakDuration())
	ctx := context.Background()
	for round := 0; time.Now().Before(deadline); round++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(queries); i += 4 {
					check(i, eng.Estimate(ctx, queries[i]))
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results := eng.EstimateBatch(ctx, queries)
			if len(results) != len(queries) {
				t.Errorf("batch returned %d results for %d queries", len(results), len(queries))
				return
			}
			for i, res := range results {
				check(i, res)
			}
		}()
		wg.Wait()
		if failures.Load() > 0 {
			t.Fatalf("soak failed after %d rounds", round+1)
		}
	}

	// The engine must come out of the soak fully serviceable: with
	// injection removed, answers return to the fault-free baseline.
	faultinject.Set(nil)
	for i, q := range queries {
		if !identityEligible(q) {
			continue
		}
		res := eng.Estimate(ctx, q)
		if res.Err != nil {
			t.Fatalf("post-soak query %d failed: %v", i, res.Err)
		}
		if !res.Degraded && math.Float64bits(res.Reliability) != math.Float64bits(baseline[i].Reliability) {
			t.Fatalf("post-soak query %d diverged: %v vs %v", i, res.Reliability, baseline[i].Reliability)
		}
	}
	st := eng.Stats()
	if st.Admission.Inflight != 0 || st.Admission.QueueLen != 0 {
		t.Fatalf("admission state leaked after soak: %+v", st.Admission)
	}
	t.Logf("soak: admission %+v, injected panics=%d slow=%d mem=%d",
		st.Admission, inj.Fired(faultinject.EstimatorPanic),
		inj.Fired(faultinject.SlowReplica), inj.Fired(faultinject.MemPressure))
}

// TestPoolDiscardAccounting: every faulted replica is discarded and its
// capacity slot freed — repeated panics far past the pool capacity never
// leak a slot (a leak would deadlock the final query forever), and the
// pool rebuilds to serve again once the fault clears.
func TestPoolDiscardAccounting(t *testing.T) {
	inj := faultinject.NewSeeded(7).WithRate(faultinject.EstimatorPanic, 1)
	restore := faultinject.Set(inj)
	defer restore()

	e := testEngine(t, Config{Seed: 42, MaxK: 500, Workers: 2})
	ctx := context.Background()
	const faultsWanted = 6 // 3× the pool capacity
	for i := 0; i < faultsWanted; i++ {
		res := e.Estimate(ctx, Query{S: 0, T: uncertain.NodeID(4 + i), K: 100, Estimator: "MC"})
		if !errors.Is(res.Err, ErrEstimatorPanic) {
			t.Fatalf("query %d: want ErrEstimatorPanic, got %v", i, res.Err)
		}
		if res.Cached {
			t.Fatalf("query %d: faulted result claims cached", i)
		}
	}
	p := e.state.Load().pools["MC"]
	if got := p.faults(); got != faultsWanted {
		t.Fatalf("pool discards = %d, want %d", got, faultsWanted)
	}
	if size := p.size(); size != 0 {
		t.Fatalf("pool still holds %d replicas after discarding every fault", size)
	}

	restore() // clear injection: the pool must rebuild and serve
	res := e.Estimate(ctx, Query{S: 0, T: 5, K: 100, Estimator: "MC"})
	if res.Err != nil {
		t.Fatalf("post-fault query failed: %v", res.Err)
	}
	if size := p.size(); size < 1 || size > 2 {
		t.Fatalf("pool rebuilt to %d replicas, capacity 2", size)
	}
	// A faulted result must never have poisoned the cache.
	res2 := e.Estimate(ctx, Query{S: 0, T: 4, K: 100, Estimator: "MC"})
	if res2.Err != nil || res2.Cached {
		t.Fatalf("first clean serve of a previously-faulted query: err=%v cached=%v", res2.Err, res2.Cached)
	}
}

// cancelAfter is a test injector that cancels a context on the Nth
// SlowReplica consultation — the deterministic way to cancel exactly
// mid-batch, after some units completed and before others started.
type cancelAfter struct {
	cancel context.CancelFunc
	left   atomic.Int64
}

func (c *cancelAfter) At(p faultinject.Point, key uint64) faultinject.Outcome {
	if p == faultinject.SlowReplica && c.left.Add(-1) == 0 {
		c.cancel()
	}
	return faultinject.Outcome{}
}

// TestBatchCancelMidFlight: cancelling mid-EstimateBatch fails exactly
// the untouched units with the context error, serves the completed units
// with fault-free values, and never lets a cancelled unit into the cache.
func TestBatchCancelMidFlight(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Seed: 42, MaxK: 500, Workers: 1, CacheSize: 256}
	base, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for i := 0; i < 8; i++ {
		queries = append(queries, Query{S: uncertain.NodeID(i % 3), T: uncertain.NodeID(4 + i), K: 100, Estimator: "MC"})
	}
	baseline := base.EstimateBatch(context.Background(), queries)

	eng, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := &cancelAfter{cancel: cancel}
	inj.left.Store(3) // cancel as the third unit begins
	restore := faultinject.Set(inj)
	results := eng.EstimateBatch(ctx, queries)
	restore()

	served, cancelled := 0, 0
	for i, res := range results {
		switch {
		case res.Err == nil:
			served++
			if math.Float64bits(res.Reliability) != math.Float64bits(baseline[i].Reliability) {
				t.Errorf("unit %d served %v, fault-free run served %v", i, res.Reliability, baseline[i].Reliability)
			}
		case errors.Is(res.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("unit %d: unexpected error %v", i, res.Err)
		}
	}
	if served < 2 || cancelled < 1 {
		t.Fatalf("served=%d cancelled=%d: cancellation did not land mid-batch", served, cancelled)
	}

	// Cancelled units must not have been cached: re-asking each one on a
	// live context computes fresh (and matches the fault-free value).
	for i, res := range results {
		if res.Err == nil {
			continue
		}
		re := eng.Estimate(context.Background(), queries[i])
		if re.Err != nil {
			t.Fatalf("re-serve of cancelled unit %d failed: %v", i, re.Err)
		}
		if re.Cached {
			t.Fatalf("cancelled unit %d was found in the cache", i)
		}
		if math.Float64bits(re.Reliability) != math.Float64bits(baseline[i].Reliability) {
			t.Fatalf("re-served unit %d diverged: %v vs %v", i, re.Reliability, baseline[i].Reliability)
		}
	}
}
