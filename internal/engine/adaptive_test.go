package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// anytimeQueries builds a named-estimator anytime workload over several
// sources and targets. Named (non-routed) queries are the ones the
// batch==single determinism guarantee covers: routing is
// latency-dependent by design.
func anytimeQueries(names []string, eps float64, k int) []Query {
	var qs []Query
	for _, name := range names {
		for s := 0; s < 3; s++ {
			for t := 3; t < 7; t++ {
				qs = append(qs, Query{
					S: uncertain.NodeID(s), T: uncertain.NodeID(t),
					K: k, Estimator: name, Eps: eps,
				})
			}
		}
	}
	return qs
}

// TestAnytimeFixedBitIdentity: an ε=0, no-deadline query must return
// exactly what the pre-refactor fixed-K path returns, for every
// configured estimator.
func TestAnytimeFixedBitIdentity(t *testing.T) {
	a := testEngine(t, Config{Workers: 2, MaxK: 400, Seed: 42})
	b := testEngine(t, Config{Workers: 2, MaxK: 400, Seed: 42})
	ctx := context.Background()
	for _, name := range a.Names() {
		q := Query{S: 0, T: 5, K: 300, Estimator: name}
		fixed := a.Estimate(ctx, q)
		// Same query with an explicit (disabled) anytime configuration.
		anytime := b.Estimate(ctx, Query{S: 0, T: 5, K: 300, Estimator: name, Eps: 0})
		if fixed.Err != nil || anytime.Err != nil {
			t.Fatalf("%s: %v / %v", name, fixed.Err, anytime.Err)
		}
		if fixed.Reliability != anytime.Reliability {
			t.Errorf("%s: fixed %v != eps-0 %v", name, fixed.Reliability, anytime.Reliability)
		}
		if anytime.SamplesUsed != 300 {
			t.Errorf("%s: SamplesUsed %d, want full budget 300", name, anytime.SamplesUsed)
		}
	}
}

// TestAnytimeSavesSamples: with a real ε on an easy workload, queries
// stop under the cap, report their termination, and the engine accounts
// for the savings.
func TestAnytimeSavesSamples(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 2000, Seed: 42})
	ctx := context.Background()
	res := e.Estimate(ctx, Query{S: 0, T: 5, K: 2000, Estimator: "MC", Eps: 0.25})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SamplesUsed <= 0 || res.SamplesUsed > 2000 {
		t.Fatalf("SamplesUsed %d", res.SamplesUsed)
	}
	if res.StopReason == "" {
		t.Error("anytime result has no StopReason")
	}
	st := e.Stats()
	if st.AnytimeQueries != 1 {
		t.Errorf("AnytimeQueries %d", st.AnytimeQueries)
	}
	if st.AnytimeSampleCap != 2000 || st.AnytimeSamplesDrawn != uint64(res.SamplesUsed) {
		t.Errorf("anytime accounting cap=%d drawn=%d, want 2000/%d",
			st.AnytimeSampleCap, st.AnytimeSamplesDrawn, res.SamplesUsed)
	}
	if st.AnytimeSamplesSaved != st.AnytimeSampleCap-st.AnytimeSamplesDrawn {
		t.Errorf("AnytimeSamplesSaved %d inconsistent", st.AnytimeSamplesSaved)
	}
}

// TestAnytimeBatchMatchesSingle: for named estimators, an anytime batch
// must return exactly what sequential anytime Estimate calls return —
// including the amortized lockstep groups (PackMC, BFSSharing) and the
// spliced per-target path (ProbTree).
func TestAnytimeBatchMatchesSingle(t *testing.T) {
	const eps, k = 0.2, 400
	names := []string{"MC", "PackMC", "BFSSharing", "ProbTree", "LP+", "RSS"}
	qs := anytimeQueries(names, eps, k)
	ctx := context.Background()

	single := testEngine(t, Config{Workers: 1, MaxK: k, Seed: 9, Estimators: names})
	batch := testEngine(t, Config{Workers: 4, MaxK: k, Seed: 9, Estimators: names})
	results := batch.EstimateBatch(ctx, qs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		want := single.Estimate(ctx, qs[i])
		if want.Err != nil {
			t.Fatalf("single %d: %v", i, want.Err)
		}
		if res.Reliability != want.Reliability {
			t.Errorf("query %d (%s %d->%d): batch %v != single %v",
				i, qs[i].Estimator, qs[i].S, qs[i].T, res.Reliability, want.Reliability)
		}
		if res.SamplesUsed != want.SamplesUsed {
			t.Errorf("query %d (%s): batch used %d, single used %d",
				i, qs[i].Estimator, res.SamplesUsed, want.SamplesUsed)
		}
		if res.StopReason != want.StopReason {
			t.Errorf("query %d (%s): batch reason %q, single %q",
				i, qs[i].Estimator, res.StopReason, want.StopReason)
		}
	}
}

// TestAnytimeBatchDeterministicUnderRace: concurrent anytime batches on
// one engine return identical values run to run (exercised with -race in
// CI). Each goroutine gets its own expectation from a single-worker twin.
func TestAnytimeBatchDeterministicUnderRace(t *testing.T) {
	const eps, k = 0.2, 300
	names := []string{"PackMC", "BFSSharing", "MC"}
	qs := anytimeQueries(names, eps, k)

	ref := testEngine(t, Config{Workers: 1, MaxK: k, Seed: 3, Estimators: names})
	want := ref.EstimateBatch(context.Background(), qs)

	e := testEngine(t, Config{Workers: 4, MaxK: k, Seed: 3, Estimators: names, CacheSize: 256})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for rep := 0; rep < 4; rep++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, res := range e.EstimateBatch(context.Background(), qs) {
				if res.Err != nil {
					errs <- res.Err.Error()
					return
				}
				if res.Reliability != want[i].Reliability || res.SamplesUsed != want[i].SamplesUsed {
					errs <- "concurrent anytime batch diverged from sequential reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestAnytimeDeadline: a query with an immediate deadline still returns
// an estimate, reports the deadline stop, and is never cached.
func TestAnytimeDeadline(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 2000, Seed: 4, CacheSize: 64})
	ctx := context.Background()
	q := Query{S: 0, T: 5, K: 2000, Estimator: "MC", Eps: 1e-9, Deadline: time.Nanosecond}
	res := e.Estimate(ctx, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.StopReason != string(core.StopDeadline) {
		t.Fatalf("StopReason %q, want deadline", res.StopReason)
	}
	if res.SamplesUsed >= 2000 {
		t.Errorf("deadline query drew the full budget (%d samples)", res.SamplesUsed)
	}
	// Deadline results are timing-dependent: the second call must compute
	// afresh, not replay a cached truncation.
	again := e.Estimate(ctx, q)
	if again.Cached {
		t.Error("deadline-truncated result was cached")
	}
}

// TestContextCancellation: a canceled context fails single queries up
// front and batch units with the context error.
func TestContextCancellation(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 300, Seed: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.Estimate(ctx, Query{S: 0, T: 5, K: 100, Estimator: "MC"})
	if res.Err == nil {
		t.Fatal("canceled context accepted")
	}
	results := e.EstimateBatch(ctx, []Query{
		{S: 0, T: 5, K: 100, Estimator: "MC"},
		{S: 1, T: 5, K: 100, Estimator: "PackMC"},
		{S: 0, T: 6, K: 100}, // routed
	})
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("batch query %d survived canceled context", i)
		}
	}
	// A context deadline acts as the anytime deadline.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	slow := e.Estimate(dctx, Query{S: 0, T: 5, K: 300, Estimator: "MC", Eps: 1e-12})
	if slow.Err != nil {
		t.Fatalf("deadline ctx: %v", slow.Err)
	}
	if slow.StopReason != string(core.StopDeadline) && slow.StopReason != string(core.StopMaxK) && slow.StopReason != string(core.StopEps) {
		t.Errorf("ctx-deadline StopReason %q", slow.StopReason)
	}
}

// TestAnytimeValidation: malformed anytime parameters are rejected before
// reaching an estimator.
func TestAnytimeValidation(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 300, Seed: 4})
	ctx := context.Background()
	for _, q := range []Query{
		{S: 0, T: 5, K: 100, Eps: -0.1},
		{S: 0, T: 5, K: 100, Eps: 1},
		{S: 0, T: 5, K: 100, Deadline: -time.Second},
	} {
		if res := e.Estimate(ctx, q); res.Err == nil {
			t.Errorf("query %+v accepted", q)
		}
	}
}

// TestAnytimeCachedReplay: an ε-keyed cache hit replays the termination
// report, and different ε values occupy different entries.
func TestAnytimeCachedReplay(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 2000, Seed: 4, CacheSize: 64})
	ctx := context.Background()
	q := Query{S: 0, T: 5, K: 2000, Estimator: "MC", Eps: 0.25}
	first := e.Estimate(ctx, q)
	if first.Err != nil || first.Cached {
		t.Fatalf("first: %+v", first)
	}
	second := e.Estimate(ctx, q)
	if !second.Cached {
		t.Fatal("anytime result not cached")
	}
	if second.Reliability != first.Reliability || second.SamplesUsed != first.SamplesUsed || second.StopReason != first.StopReason {
		t.Errorf("cached replay %+v != original %+v", second, first)
	}
	// A different ε must not reuse the entry.
	other := e.Estimate(ctx, Query{S: 0, T: 5, K: 2000, Estimator: "MC", Eps: 0.5})
	if other.Cached {
		t.Error("eps=0.5 hit the eps=0.25 cache entry")
	}
}

// TestAnytimeRoutedAndNamedCacheApart: a routed anytime query runs a
// bounds-seeded chunk schedule that can stop at different boundaries than
// a named query's default schedule, so the two must never share a cache
// entry — each must stay self-consistent on replay instead.
func TestAnytimeRoutedAndNamedCacheApart(t *testing.T) {
	// MC-only engine: routing always resolves to MC, so the routed and
	// named variants name the same estimator and differ only in schedule.
	e := testEngine(t, Config{Workers: 1, MaxK: 2000, Seed: 4, CacheSize: 256, Estimators: []string{"MC"}})
	ctx := context.Background()
	routedQ := Query{S: 0, T: 5, K: 2000, Eps: 0.3}
	namedQ := Query{S: 0, T: 5, K: 2000, Eps: 0.3, Estimator: "MC"}

	routed := e.Estimate(ctx, routedQ)
	if routed.Err != nil || routed.Used != "MC" {
		t.Fatalf("routed: %+v", routed)
	}
	named := e.Estimate(ctx, namedQ)
	if named.Err != nil {
		t.Fatal(named.Err)
	}
	if named.Cached {
		t.Fatal("named anytime query served from the routed query's cache entry")
	}
	// Replays are self-consistent within each variant.
	for _, q := range []Query{routedQ, namedQ} {
		first := e.Estimate(ctx, q)
		again := e.Estimate(ctx, q)
		if !again.Cached && first.Used == again.Used {
			t.Errorf("replay of %+v not cached", q)
		}
		if again.Reliability != first.Reliability || again.SamplesUsed != first.SamplesUsed {
			t.Errorf("replay of %+v diverged: %+v vs %+v", q, again, first)
		}
	}
}
