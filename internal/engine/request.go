package engine

import (
	"fmt"
	"sort"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// The unified request surface: every query kind the system answers —
// the paper's s-t reliability plus the advanced queries its related-work
// section motivates (distance-constrained reachability of Jin et al.,
// top-k reliability search of Zhu et al., single-source and k-terminal
// reliability, conditional reliability under evidence of Khan et al.) —
// flows through one typed Request union and one Response shape, so every
// kind is a first-class citizen of the serving machinery: estimator
// pools, the result cache, adaptive routing, anytime stopping, and batch
// amortization.

// Kind names a query kind. The zero value is KindReliability, so a plain
// s-t Request (and every pre-union Query literal) keeps its meaning.
type Kind string

const (
	// KindReliability is the paper's s-t reliability query R(s,t).
	KindReliability Kind = "reliability"
	// KindDistance is distance-constrained reachability R_d(s,t): the
	// probability that t is reachable from s within Request.D hops
	// (Jin et al., PVLDB 2011).
	KindDistance Kind = "distance"
	// KindTopK ranks the Request.TopK most reliable targets from s
	// (Zhu et al., ICDM 2015).
	KindTopK Kind = "topk"
	// KindSingleSource estimates the reliability of every node from s in
	// one shared traversal.
	KindSingleSource Kind = "single_source"
	// KindKTerminal estimates the probability that every node of
	// Request.Targets is reachable from s (source-rooted k-terminal
	// reliability).
	KindKTerminal Kind = "kterminal"
)

// Kinds lists the query kinds the engine accepts, in documentation order.
func Kinds() []Kind {
	return []Kind{KindReliability, KindDistance, KindTopK, KindSingleSource, KindKTerminal}
}

// Evidence conditions a request on partial knowledge of the world: edges
// in Include definitely exist, edges in Exclude definitely do not.
// Reliability under evidence equals the conditional reliability
// R(· | Include ⊆ world, Exclude ∩ world = ∅) — the conditional
// reliability query of Khan et al. (TKDE 2018). The engine applies
// evidence as a probability overlay over the shared graph (no rebuild;
// see uncertain.Overlay) and keys the result cache on the evidence set,
// so any kind can be conditioned per request.
type Evidence struct {
	Include []uncertain.EdgeID
	Exclude []uncertain.EdgeID
}

// Empty reports whether no evidence is attached.
func (ev Evidence) Empty() bool { return len(ev.Include) == 0 && len(ev.Exclude) == 0 }

// Request is one typed query. Kind selects the query shape; the zero Kind
// is KindReliability, which keeps every pre-union Query literal valid.
// Fields beyond the kind's shape are rejected by validation only when
// they would be ambiguous (e.g. a negative D); unused zero fields are
// simply ignored.
type Request struct {
	// Kind selects the query kind; empty means KindReliability.
	Kind Kind
	// S is the source node (all kinds). T is the target node
	// (KindReliability and KindDistance; ignored by the source-rooted
	// kinds).
	S, T uncertain.NodeID
	// K is the sample budget: the exact count drawn for a fixed query,
	// the cap for an anytime one (Eps or Deadline set).
	K int
	// Estimator names the method to use; empty selects the kind's default
	// (adaptive routing for KindReliability, BFS Sharing for the
	// source-rooted kinds, the MC family for distance/k-terminal).
	// BoundsName requests the no-sampling analytic answer
	// (KindReliability only).
	Estimator string
	// Eps, when positive, turns the query anytime: s-t kinds stop at the
	// relative 95% CI half-width target, single-source retires each
	// target at its own target, and top-k stops at CI separation of the
	// ranking boundary. Must be in [0, 1).
	Eps float64
	// Deadline, when positive, bounds the query's sampling wall-clock
	// time. Combined with a context deadline, the earlier one wins.
	Deadline time.Duration
	// D is the hop bound of KindDistance; must be >= 1 for that kind.
	D int
	// TopK is the ranking size of KindTopK; must be >= 1 for that kind.
	TopK int
	// Targets is the target set of KindKTerminal; must be non-empty for
	// that kind. Order and duplicates are irrelevant to both the value
	// (the sampling stream is seeded from (s, k) alone) and the cache
	// identity (the key fingerprints the set).
	Targets []uncertain.NodeID
	// Evidence conditions the request on known edges; see Evidence.
	Evidence Evidence
}

// Query is the pre-union name of Request, kept as an alias so existing
// call sites (and the plain s-t literal shape) continue to compile.
type Query = Request

// kind returns the request's kind with the zero value normalized.
func (q Request) kind() Kind {
	if q.Kind == "" {
		return KindReliability
	}
	return q.Kind
}

// anytime reports whether the query asks for early stopping rather than
// an exact fixed budget.
func (q Request) anytime() bool { return q.Eps > 0 || q.Deadline > 0 }

// plainReliability reports whether the request is a pre-union s-t query:
// reliability kind, no evidence. Those take the original engine paths
// (routing, source-grouped batching) untouched and bit-identical.
func (q Request) plainReliability() bool {
	return q.kind() == KindReliability && q.Evidence.Empty()
}

// Response is the engine's answer to one Request. Exactly one of the
// per-kind payload fields is populated: Reliability for the scalar kinds
// (reliability, distance, k-terminal), Reliabilities for single-source,
// TopTargets for top-k.
type Response struct {
	Request
	// Used is the estimator that produced the value (BoundsName when the
	// analytic bounds answered a routed query outright).
	Used string
	// Epoch is the engine epoch the answer was computed under: the current
	// epoch for fresh computations, the filling computation's epoch for
	// cache hits. A hit for a source no mutation has touched may
	// legitimately predate the current epoch — the value is identical to a
	// fresh computation's, but callers correlating answers with mutation
	// epochs (subscriptions, the soak harness) can see which world answered.
	Epoch uint64
	// Reliability is the scalar answer of KindReliability, KindDistance,
	// and KindKTerminal.
	Reliability float64
	// Reliabilities is KindSingleSource's answer: one value per node
	// (index = NodeID; the source reports 1).
	Reliabilities []float64
	// TopTargets is KindTopK's answer: up to TopK nodes with positive
	// estimated reliability, ordered by reliability descending, ties by
	// ascending NodeID.
	TopTargets []core.Reliability
	// Cached reports the value was reused rather than computed: an LRU
	// result-cache hit, or an intra-batch duplicate answered by the
	// first copy's computation (counted in Stats.DedupedQueries).
	Cached bool
	// Degraded reports the answer was served below the requested
	// fidelity by the overload degradation ladder (widened ε, reduced
	// sample budget, a cheaper estimator, or the analytic-bounds floor,
	// whose StopReason is "degraded"). Full-fidelity answers report
	// false, including answers served under load without shedding
	// precision.
	Degraded bool
	// Latency covers routing plus estimation for single Estimate calls;
	// batch results report each query's estimation (or amortized
	// traversal) share, with the parallel routing phase excluded.
	Latency time.Duration
	// SamplesUsed is the number of samples actually drawn: K for a fixed
	// query, possibly fewer for an anytime one, 0 for bounds-answered and
	// rejected queries. Multi-target kinds report the shared traversal's
	// sample count. Cached results report the sample count of the
	// computation that filled the cache.
	SamplesUsed int
	// StopReason reports the rule that ended an anytime query's sampling
	// ("eps", "rho", "deadline", "max_k", "canceled", and "separated" for
	// top-k CI separation); empty for fixed, bounds-answered, and
	// rejected queries.
	StopReason string
	Err        error
}

// Result is the pre-union name of Response, kept as an alias.
type Result = Response

// fingerprintIDs hashes a set of ids into 128 bits, insensitive to order
// and duplicates: the ids are sorted and deduped into two independent
// accumulating hashes (FNV-1a and a splitmix chain) plus the set size.
// The empty set maps to the all-zero fingerprint, so "no evidence" and
// "no targets" key exactly like pre-union queries. 128 bits make an
// accidental collision between two distinct sets in one cache lifetime
// vanishingly unlikely.
func fingerprintIDs(salt uint64, ids []uncertain.NodeID) [2]uint64 {
	if len(ids) == 0 {
		return [2]uint64{}
	}
	sorted := make([]uncertain.NodeID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3
	h1 := uint64(fnvOffset) ^ salt
	h2 := mix64(salt + 0x9e3779b97f4a7c15)
	n := 0
	var prev uncertain.NodeID
	for i, id := range sorted {
		if i > 0 && id == prev {
			continue
		}
		prev = id
		n++
		h1 = (h1 ^ uint64(uint32(id))) * fnvPrime
		h2 = mix64(h2 + uint64(uint32(id))*0xbf58476d1ce4e5b9)
	}
	h1 = (h1 ^ uint64(n)) * fnvPrime
	h2 = mix64(h2 ^ uint64(n))
	if h1 == 0 && h2 == 0 {
		h1 = 1 // reserve all-zero for the empty set
	}
	return [2]uint64{h1, h2}
}

// fingerprintEvidence folds an evidence set into one 128-bit fingerprint,
// with include and exclude salted apart (including edge 3 is different
// evidence from excluding it).
func fingerprintEvidence(ev Evidence) [2]uint64 {
	if ev.Empty() {
		return [2]uint64{}
	}
	inc := fingerprintIDs(0x1c1de, ev.Include)
	exc := fingerprintIDs(0xe8c1de, ev.Exclude)
	return [2]uint64{mix64(inc[0] ^ (exc[0] * 0x94d049bb133111eb)), mix64(inc[1] + exc[1])}
}

// validateEvidence rejects malformed evidence up front, before any
// fingerprinting or cache work. The contract itself (id ranges, no edge
// both included and excluded) lives in one place, uncertain.CheckCondition
// — the same rules Condition and Overlay enforce.
func validateEvidence(g *uncertain.Graph, ev Evidence) error {
	if ev.Empty() {
		return nil
	}
	if err := uncertain.CheckCondition(g, ev.Include, ev.Exclude); err != nil {
		return fmt.Errorf("engine: evidence: %w", err)
	}
	return nil
}
