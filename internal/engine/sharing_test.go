package engine

import (
	"context"
	"testing"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// TestSharedIndexAcrossReplicas: an engine with Workers = N must hold
// exactly one BFS Sharing edge-bit arena and one ProbTree bag set — every
// pool replica is a scratch handle over the same index object. This is
// the memory guarantee of the Index/Scratch split: index bytes are
// O(index), not O(Workers × index).
func TestSharedIndexAcrossReplicas(t *testing.T) {
	const workers = 4
	e := testEngine(t, Config{Workers: workers, MaxK: 200, Seed: 42,
		Estimators: []string{"BFSSharing", "ProbTree"}})

	// Force every replica into existence by borrowing up to capacity.
	borrowAll := func(name string) []core.Estimator {
		p := e.state.Load().pools[name]
		insts := make([]core.Estimator, workers)
		for i := range insts {
			insts[i] = p.get()
		}
		return insts
	}
	returnAll := func(name string, insts []core.Estimator) {
		for _, inst := range insts {
			e.state.Load().pools[name].put(inst)
		}
	}

	bss := borrowAll("BFSSharing")
	first := bss[0].(*core.BFSQuerier)
	for i, inst := range bss {
		q := inst.(*core.BFSQuerier)
		if q == first && i > 0 {
			t.Fatalf("replica %d is the same handle as replica 0", i)
		}
		if q.Index() != first.Index() {
			t.Fatalf("BFS replica %d holds its own index copy", i)
		}
		// Each handle must answer through the shared arena.
		if r := q.Estimate(0, 5, 200); r < 0 || r > 1 {
			t.Fatalf("replica %d estimate %v", i, r)
		}
	}
	if e.state.Load().pools["BFSSharing"].size() != workers {
		t.Fatalf("built %d BFS replicas, want %d", e.state.Load().pools["BFSSharing"].size(), workers)
	}
	// Total index memory across all replicas is one arena: every handle
	// reports the same index object, whose size is one index.
	if got, want := first.MemoryBytes()-first.ScratchBytes(), first.Index().Bytes(); got != want {
		t.Fatalf("index accounting %d, want %d", got, want)
	}
	returnAll("BFSSharing", bss)

	pts := borrowAll("ProbTree")
	pfirst := pts[0].(*core.ProbTreeQuerier)
	for i, inst := range pts {
		q := inst.(*core.ProbTreeQuerier)
		if q.Index() != pfirst.Index() {
			t.Fatalf("ProbTree replica %d holds its own bag set", i)
		}
	}
	returnAll("ProbTree", pts)
}

// TestRunSharedAccounting pins the counter semantics of the amortized
// batch path for both groupable estimators: intra-batch duplicates count
// in DedupedQueries only (never as cache hits), unique targets touch the
// LRU exactly once per batch, and nothing is double-counted when the same
// batch repeats against a warm cache.
func TestRunSharedAccounting(t *testing.T) {
	for _, est := range []string{"BFSSharing", "ProbTree", "PackMC"} {
		t.Run(est, func(t *testing.T) {
			e := testEngine(t, Config{Workers: 2, MaxK: 200, Seed: 42, CacheSize: 64,
				Estimators: []string{est}})
			q := func(s, d int) Query {
				return Query{S: uncertain.NodeID(s), T: uncertain.NodeID(d), K: 100, Estimator: est}
			}
			batch := []Query{q(0, 5), q(0, 5), q(0, 6)} // one source group, one duplicate

			results := e.EstimateBatch(context.Background(), batch)
			cached := 0
			for _, r := range results {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				if r.Cached {
					cached++
				}
			}
			if cached != 1 {
				t.Errorf("cold batch: %d results flagged Cached, want 1 (the duplicate)", cached)
			}
			st := e.Stats()
			if st.DedupedQueries != 1 {
				t.Errorf("cold batch: DedupedQueries %d, want 1", st.DedupedQueries)
			}
			if st.CacheHits != 0 {
				t.Errorf("cold batch: CacheHits %d, want 0 — a dedup must not count as a hit", st.CacheHits)
			}
			if st.CacheMisses != 2 {
				t.Errorf("cold batch: CacheMisses %d, want 2 (unique targets only)", st.CacheMisses)
			}
			if st.Queries != 3 {
				t.Errorf("cold batch: Queries %d, want 3", st.Queries)
			}

			// Warm repeat: both unique targets hit the LRU; the duplicate
			// is still a dedup, not a second hit.
			for _, r := range e.EstimateBatch(context.Background(), batch) {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				if !r.Cached {
					t.Errorf("warm batch: result (%d,%d) not flagged Cached", r.S, r.T)
				}
			}
			st = e.Stats()
			if st.CacheHits != 2 {
				t.Errorf("warm batch: CacheHits %d, want 2", st.CacheHits)
			}
			if st.DedupedQueries != 2 {
				t.Errorf("warm batch: DedupedQueries %d, want 2", st.DedupedQueries)
			}
			if st.CacheMisses != 2 {
				t.Errorf("warm batch: CacheMisses %d, want 2 (no recomputation)", st.CacheMisses)
			}
			if st.Queries != 6 {
				t.Errorf("warm batch: Queries %d, want 6", st.Queries)
			}
			if es := st.Estimators[est]; es.Queries != 6 {
				t.Errorf("estimator row Queries %d, want 6", es.Queries)
			}
		})
	}
}

// TestGroupedBatchMatchesSingleLargeGroup drives a wide source group
// (well past the lone-target fallback) through EstimateBatch for each
// amortizing estimator and checks every answer against the single-query
// path on a fresh engine. For PackMC this pins the counter-based-stream
// contract: one amortized pack sweep must be bit-identical to per-target
// queries.
func TestGroupedBatchMatchesSingleLargeGroup(t *testing.T) {
	for _, est := range []string{"ProbTree", "PackMC"} {
		t.Run(est, func(t *testing.T) {
			cfg := Config{Workers: 4, MaxK: 300, Seed: 42, CacheSize: 0,
				Estimators: []string{est}}
			batch := testEngine(t, cfg)
			single := testEngine(t, cfg)
			var qs []Query
			for d := 1; d < 20; d++ {
				qs = append(qs, Query{S: 0, T: uncertain.NodeID(d), K: 200, Estimator: est})
			}
			for i, res := range batch.EstimateBatch(context.Background(), qs) {
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				want := single.Estimate(context.Background(), qs[i])
				if res.Reliability != want.Reliability {
					t.Errorf("query %d: batch %v vs single %v", i, res.Reliability, want.Reliability)
				}
			}
		})
	}
}
