package engine

import (
	"context"
	"sync"
	"testing"

	"relcomp/internal/arena"
	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// Wide-kernel engine integration: the 256- and 512-lane PackMC variants
// must behave as first-class pool citizens — batch == single, anytime ==
// fixed at ε=0, deterministic under concurrency — and pool replicas must
// never share arena scratch (each replica owns its arena; two concurrent
// borrowers touching one arena would corrupt both queries' counts).

var wideNames = []string{"PackMC", "PackMC256", "PackMC512", "ParallelPackMC"}

// TestWideAnytimeBatchMatchesSingle: anytime batches over the wide
// kernels (grouped lockstep path) return exactly what sequential anytime
// Estimate calls return, at every pack width.
func TestWideAnytimeBatchMatchesSingle(t *testing.T) {
	const eps, k = 0.2, 400
	qs := anytimeQueries(wideNames, eps, k)
	ctx := context.Background()

	single := testEngine(t, Config{Workers: 1, MaxK: k, Seed: 9, Estimators: wideNames})
	batch := testEngine(t, Config{Workers: 4, MaxK: k, Seed: 9, Estimators: wideNames})
	results := batch.EstimateBatch(ctx, qs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		want := single.Estimate(ctx, qs[i])
		if want.Err != nil {
			t.Fatalf("single %d: %v", i, want.Err)
		}
		if res.Reliability != want.Reliability {
			t.Errorf("query %d (%s %d->%d): batch %v != single %v",
				i, qs[i].Estimator, qs[i].S, qs[i].T, res.Reliability, want.Reliability)
		}
		if res.SamplesUsed != want.SamplesUsed {
			t.Errorf("query %d (%s): batch used %d, single used %d",
				i, qs[i].Estimator, res.SamplesUsed, want.SamplesUsed)
		}
	}
}

// TestWideSourceRootedKinds: single-source, top-k, k-terminal, and
// evidence-conditioned queries answer through the wide kernels (which are
// evidence-capable and groupable like PackMC) with in-range values, and
// identically across engine instances.
func TestWideSourceRootedKinds(t *testing.T) {
	cfg := Config{Workers: 2, MaxK: 300, Seed: 42, CacheSize: 0}
	a := testEngine(t, cfg)
	b := testEngine(t, cfg)
	ctx := context.Background()
	for _, name := range []string{"PackMC256", "PackMC512"} {
		qs := []Query{
			{Kind: KindSingleSource, S: 0, K: 200, Estimator: name},
			{Kind: KindTopK, S: 0, K: 200, TopK: 3, Estimator: name},
			{S: 0, T: 5, K: 200, Estimator: name, Evidence: Evidence{Include: []uncertain.EdgeID{0}}},
		}
		for i, q := range qs {
			ra, rb := a.Estimate(ctx, q), b.Estimate(ctx, q)
			if ra.Err != nil || rb.Err != nil {
				t.Fatalf("%s query %d: %v / %v", name, i, ra.Err, rb.Err)
			}
			if ra.Reliability != rb.Reliability {
				t.Errorf("%s query %d: %v vs %v across engines", name, i, ra.Reliability, rb.Reliability)
			}
			for v, r := range ra.Reliabilities {
				if r != rb.Reliabilities[v] {
					t.Fatalf("%s query %d: Reliabilities[%d] differs: %v vs %v", name, i, v, r, rb.Reliabilities[v])
				}
			}
			if len(ra.TopTargets) != len(rb.TopTargets) {
				t.Fatalf("%s query %d: top-k sizes differ", name, i)
			}
			for j := range ra.TopTargets {
				if ra.TopTargets[j] != rb.TopTargets[j] {
					t.Errorf("%s query %d: top-k entry %d differs", name, i, j)
				}
			}
		}
	}
}

// scratchArenaOwner is the slice of the estimator surface the arena
// regression cares about: every PackMC-family kernel exposes its arena.
type scratchArenaOwner interface {
	ScratchArena() *arena.Arena
}

// TestArenaScratchNotSharedAcrossReplicas: every replica a pool can hand
// out owns a distinct arena — two borrowers of the same pool must never
// see the same *arena.Arena (pointer identity), or concurrent queries
// would interleave writes into one scratch region.
func TestArenaScratchNotSharedAcrossReplicas(t *testing.T) {
	e := testEngine(t, Config{Workers: 4, MaxK: 300, Seed: 1,
		Estimators: []string{"PackMC", "PackMC256", "PackMC512"}})
	for _, name := range []string{"PackMC", "PackMC256", "PackMC512"} {
		p := e.state.Load().pools[name]
		seen := make(map[*arena.Arena]int)
		var borrowed []core.Estimator
		for i := 0; i < 4; i++ {
			inst := p.get()
			borrowed = append(borrowed, inst)
			owner, ok := inst.(scratchArenaOwner)
			if !ok {
				t.Fatalf("%s replica %T exposes no ScratchArena", name, inst)
			}
			ar := owner.ScratchArena()
			if ar == nil {
				t.Fatalf("%s replica has nil arena", name)
			}
			if prev, dup := seen[ar]; dup {
				t.Fatalf("%s replicas %d and %d share one arena %p", name, prev, i, ar)
			}
			seen[ar] = i
		}
		for _, inst := range borrowed {
			p.put(inst)
		}
	}
}

// TestWideConcurrentMatchesSequential runs the wide-kernel workload from
// many goroutines against one engine (exercised with -race in CI): the
// concurrent answers must equal a sequential baseline, which they can
// only do if no two in-flight queries share scratch.
func TestWideConcurrentMatchesSequential(t *testing.T) {
	cfg := Config{Workers: 4, MaxK: 300, Seed: 7, CacheSize: 0,
		Estimators: []string{"PackMC256", "PackMC512"}}
	e := testEngine(t, cfg)
	baseline := testEngine(t, Config{Workers: 1, MaxK: 300, Seed: 7, CacheSize: 0,
		Estimators: []string{"PackMC256", "PackMC512"}})
	qs := testQueries([]string{"PackMC256", "PackMC512"})
	want := make([]float64, len(qs))
	ctx := context.Background()
	for i, q := range qs {
		res := baseline.Estimate(ctx, q)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[i] = res.Reliability
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(qs))
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range qs {
				// Interleave the order per goroutine so borrowers collide.
				j := (i + w) % len(qs)
				res := e.Estimate(ctx, qs[j])
				if res.Err != nil {
					errs <- res.Err.Error()
					return
				}
				if res.Reliability != want[j] {
					errs <- qs[j].Estimator
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatalf("concurrent result diverged or failed: %s", msg)
	}
}
