package engine

import (
	"context"
	"sync/atomic"

	"relcomp/internal/uncertain"
)

// subChanCap bounds each subscription's delivery buffer. A slow consumer
// never blocks the re-estimation loop: when the buffer is full the oldest
// queued re-estimate is dropped in favor of the newest (stale reliability
// values are exactly the ones a subscriber does not want), with drops
// counted on the subscription.
const subChanCap = 8

// Subscription is a continuous query: a registered Request that is
// re-estimated whenever a committed mutation batch could have changed its
// answer, created by Engine.Subscribe.
type Subscription struct {
	// C delivers the initial estimate and every subsequent re-estimate.
	// It is closed after Close (or context cancellation) once the
	// subscription's goroutine has fully retired.
	C <-chan Response

	e      *Engine
	id     uint64
	src    uncertain.NodeID // internal source id, for invalidation-tag checks
	q      Request          // caller-space request, re-submitted per re-estimate
	c      chan Response
	notify chan struct{}
	cancel context.CancelFunc

	dropped atomic.Uint64
}

// Subscribe registers q as a continuous query. The subscription computes
// an initial estimate immediately, then re-estimates after every Apply
// whose mutated edges are reachable from q.S — batches that provably
// cannot move the answer (per the same conservative source-invalidation
// mask the result cache uses) are coalesced away, as are bursts of
// batches that land while a re-estimate is in flight (only the newest
// state is re-estimated). Estimates flow through the full engine path —
// routing, caching, admission, degradation — so a subscription under
// overload may receive degraded or errored responses like any client.
//
// ctx bounds the subscription's lifetime; Close releases it earlier.
func (e *Engine) Subscribe(ctx context.Context, q Request) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx compatibility defaulting at the API boundary itself
	}
	iq := q
	if e.relab != nil {
		iq = e.relab.requestIn(q)
	}
	if err := e.validate(e.state.Load(), iq); err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	sub := &Subscription{
		e:      e,
		src:    iq.S,
		q:      q,
		c:      make(chan Response, subChanCap),
		notify: make(chan struct{}, 1),
		cancel: cancel,
	}
	sub.C = sub.c
	e.subMu.Lock()
	e.subSeq++
	sub.id = e.subSeq
	e.subs[sub.id] = sub
	e.subMu.Unlock()
	go sub.run(sctx)
	return sub, nil
}

// Close ends the subscription. C is closed once the re-estimation
// goroutine retires; pending buffered responses remain readable first.
func (s *Subscription) Close() { s.cancel() }

// Dropped returns how many re-estimates were discarded unread because the
// consumer fell more than subChanCap responses behind.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// run is the subscription's re-estimation loop: estimate whenever the
// source's invalidation tag has moved since the last delivered estimate,
// then sleep until the next Apply notification or cancellation.
func (s *Subscription) run(ctx context.Context) {
	defer func() {
		s.e.subMu.Lock()
		delete(s.e.subs, s.id)
		s.e.subMu.Unlock()
		close(s.c)
	}()
	first := true
	var lastTag uint64
	for {
		st := s.e.state.Load()
		if tag := st.srcTag(s.src); first || tag != lastTag {
			first, lastTag = false, tag
			res := s.e.Estimate(ctx, s.q)
			if res.Err != nil && ctx.Err() != nil {
				return
			}
			s.deliver(res)
		}
		select {
		case <-ctx.Done():
			return
		case <-s.notify:
		}
	}
}

// deliver enqueues one response, dropping the oldest queued response when
// the consumer is full (drop-oldest keeps the freshest estimates).
func (s *Subscription) deliver(res Response) {
	for {
		select {
		case s.c <- res:
			return
		default:
		}
		select {
		case <-s.c:
			s.dropped.Add(1)
		default:
			// The consumer drained between the two selects; retry the send.
		}
	}
}

// notifySubs pokes every live subscription after a committed batch. The
// per-subscription notify channel has capacity one and the send never
// blocks: consecutive batches coalesce into a single wakeup, and each
// subscription decides from its source's invalidation tag whether the
// batch concerns it.
func (e *Engine) notifySubs() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	for _, sub := range e.subs { //lint:allow maprange wakeup fan-out is commutative: every subscriber gets one non-blocking poke
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}
