package engine

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

// requestGraph is a small bridge network with known structure, used where
// exact per-node reasoning matters more than scale.
func requestGraph(t testing.TB) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(6)
	for _, e := range []uncertain.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 0, To: 2, P: 0.8},
		{From: 1, To: 3, P: 0.7},
		{From: 2, To: 4, P: 0.9},
		{From: 1, To: 4, P: 0.5},
		{From: 3, To: 5, P: 0.8},
		{From: 4, To: 5, P: 0.7},
	} {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestEveryKindThroughEstimate: each kind of the union is accepted by
// Estimate and fills exactly its own payload.
func TestEveryKindThroughEstimate(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 400, Seed: 42, CacheSize: 64})
	ctx := context.Background()

	scalarKinds := []Request{
		{Kind: KindReliability, S: 0, T: 5, K: 200, Estimator: "MC"},
		{Kind: KindDistance, S: 0, T: 5, D: 3, K: 200},
		{Kind: KindKTerminal, S: 0, Targets: []uncertain.NodeID{3, 4}, K: 200},
	}
	for _, q := range scalarKinds {
		res := e.Estimate(ctx, q)
		if res.Err != nil {
			t.Fatalf("%s: %v", q.kind(), res.Err)
		}
		if res.Reliability < 0 || res.Reliability > 1 {
			t.Errorf("%s: reliability %v", q.kind(), res.Reliability)
		}
		if res.Reliabilities != nil || res.TopTargets != nil {
			t.Errorf("%s: scalar kind filled a multi payload", q.kind())
		}
		if res.SamplesUsed != q.K {
			t.Errorf("%s: fixed query drew %d of %d", q.kind(), res.SamplesUsed, q.K)
		}
	}

	ss := e.Estimate(ctx, Request{Kind: KindSingleSource, S: 0, K: 200})
	if ss.Err != nil {
		t.Fatal(ss.Err)
	}
	if len(ss.Reliabilities) != e.Graph().NumNodes() {
		t.Fatalf("single-source returned %d values for %d nodes", len(ss.Reliabilities), e.Graph().NumNodes())
	}
	if ss.Reliabilities[0] != 1 {
		t.Errorf("single-source R(s,s) = %v", ss.Reliabilities[0])
	}
	if ss.Used != sharedName {
		t.Errorf("single-source default estimator %q, want %q", ss.Used, sharedName)
	}

	tk := e.Estimate(ctx, Request{Kind: KindTopK, S: 0, TopK: 5, K: 200})
	if tk.Err != nil {
		t.Fatal(tk.Err)
	}
	if len(tk.TopTargets) == 0 || len(tk.TopTargets) > 5 {
		t.Fatalf("topk returned %d targets", len(tk.TopTargets))
	}
	for i := 1; i < len(tk.TopTargets); i++ {
		prev, cur := tk.TopTargets[i-1], tk.TopTargets[i]
		if cur.R > prev.R || (cur.R == prev.R && cur.Node < prev.Node) {
			t.Errorf("topk not sorted at %d: %+v then %+v", i, prev, cur)
		}
	}
}

// TestKindDefaultsAndValidation: malformed kind requests are rejected
// with errors, not panics.
func TestKindDefaultsAndValidation(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 200, Seed: 1})
	bad := []Request{
		{Kind: "bogus", S: 0, T: 5, K: 100},                                                                      // unknown kind
		{Kind: KindDistance, S: 0, T: 5, K: 100},                                                                 // d missing
		{Kind: KindDistance, S: 0, T: 5, D: -2, K: 100},                                                          // d negative
		{Kind: KindDistance, S: 0, T: 5, D: 2, K: 100, Estimator: "RSS"},                                         // non-MC distance
		{Kind: KindTopK, S: 0, K: 100},                                                                           // topk missing
		{Kind: KindTopK, S: 0, TopK: -1, K: 100},                                                                 // topk negative
		{Kind: KindTopK, S: 0, TopK: 3, K: 100, Estimator: "RSS"},                                                // not multi-target
		{Kind: KindKTerminal, S: 0, K: 100},                                                                      // no targets
		{Kind: KindKTerminal, S: 0, Targets: []uncertain.NodeID{999999}, K: 100},                                 // target range
		{Kind: KindSingleSource, S: -4, K: 100},                                                                  // s range
		{Kind: KindSingleSource, S: 0, K: 0},                                                                     // no budget
		{S: 0, T: 5, K: 100, Evidence: Evidence{Include: []uncertain.EdgeID{999999}}},                            // evidence range
		{S: 0, T: 5, K: 100, Evidence: Evidence{Include: []uncertain.EdgeID{1}, Exclude: []uncertain.EdgeID{1}}}, // contradiction
		{S: 0, T: 5, K: 100, Estimator: "BFSSharing", Evidence: Evidence{Exclude: []uncertain.EdgeID{1}}},        // index-based + evidence
		{S: 0, T: 5, K: 100, Estimator: BoundsName, Evidence: Evidence{Exclude: []uncertain.EdgeID{1}}},          // bounds + evidence
	}
	for _, q := range bad {
		if res := e.Estimate(context.Background(), q); res.Err == nil {
			t.Errorf("request %+v accepted", q)
		}
	}
}

// TestKindCaching: non-plain results are cached on the full request
// identity — kind, parameters, and evidence all separate entries.
func TestKindCaching(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 300, Seed: 9, CacheSize: 128})
	ctx := context.Background()
	reqs := []Request{
		{Kind: KindDistance, S: 0, T: 5, D: 2, K: 100},
		{Kind: KindDistance, S: 0, T: 5, D: 3, K: 100}, // different d
		{Kind: KindTopK, S: 0, TopK: 3, K: 100},
		{Kind: KindTopK, S: 0, TopK: 4, K: 100}, // different topk
		{Kind: KindSingleSource, S: 0, K: 100},
		{Kind: KindKTerminal, S: 0, Targets: []uncertain.NodeID{3, 4}, K: 100},
		{Kind: KindKTerminal, S: 0, Targets: []uncertain.NodeID{3, 5}, K: 100}, // different targets
		{S: 0, T: 5, K: 100, Evidence: Evidence{Exclude: []uncertain.EdgeID{0}}},
		{S: 0, T: 5, K: 100, Evidence: Evidence{Exclude: []uncertain.EdgeID{1}}}, // different evidence
		{S: 0, T: 5, K: 100, Evidence: Evidence{Include: []uncertain.EdgeID{0}}}, // include != exclude
	}
	first := make([]Response, len(reqs))
	for i, q := range reqs {
		first[i] = e.Estimate(ctx, q)
		if first[i].Err != nil {
			t.Fatalf("request %d: %v", i, first[i].Err)
		}
		if first[i].Cached {
			t.Fatalf("request %d cached on first sight", i)
		}
	}
	for i, q := range reqs {
		res := e.Estimate(ctx, q)
		if !res.Cached {
			t.Errorf("request %d not cached on replay", i)
		}
		if res.Reliability != first[i].Reliability ||
			!reflect.DeepEqual(res.Reliabilities, first[i].Reliabilities) ||
			!reflect.DeepEqual(res.TopTargets, first[i].TopTargets) {
			t.Errorf("request %d: cache changed the answer", i)
		}
		if res.SamplesUsed != first[i].SamplesUsed {
			t.Errorf("request %d: cached samples %d != %d", i, res.SamplesUsed, first[i].SamplesUsed)
		}
	}
}

// TestMixedKindBatchMatchesSingle: a batch mixing every kind returns
// positionally aligned results identical to sequential Estimate calls,
// and deduplicates identical non-plain requests.
func TestMixedKindBatchMatchesSingle(t *testing.T) {
	mk := func() *Engine {
		return testEngine(t, Config{Workers: 4, MaxK: 300, Seed: 77, CacheSize: 256})
	}
	batchEng, singleEng := mk(), mk()
	ctx := context.Background()
	reqs := []Request{
		{S: 0, T: 5, K: 100, Estimator: "MC"},
		{Kind: KindTopK, S: 0, TopK: 4, K: 150},
		{Kind: KindSingleSource, S: 1, K: 100},
		{Kind: KindDistance, S: 0, T: 6, D: 3, K: 100},
		{Kind: KindKTerminal, S: 0, Targets: []uncertain.NodeID{4, 5}, K: 100},
		{Kind: KindTopK, S: 0, TopK: 4, K: 150}, // duplicate of #1
		{S: 2, T: 6, K: 100, Estimator: "BFSSharing"},
		{S: 0, T: 5, K: 100, Evidence: Evidence{Exclude: []uncertain.EdgeID{2}}},
	}
	got := batchEng.EstimateBatch(ctx, reqs)
	if len(got) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(got), len(reqs))
	}
	for i, q := range reqs {
		want := singleEng.Estimate(ctx, q)
		if got[i].Err != nil || want.Err != nil {
			t.Fatalf("request %d: batch err %v, single err %v", i, got[i].Err, want.Err)
		}
		if got[i].Reliability != want.Reliability ||
			!reflect.DeepEqual(got[i].Reliabilities, want.Reliabilities) ||
			!reflect.DeepEqual(got[i].TopTargets, want.TopTargets) {
			t.Errorf("request %d (%s): batch answer differs from single", i, q.kind())
		}
	}
	if !got[5].Cached {
		t.Errorf("duplicate top-k request not answered by reuse")
	}
	st := batchEng.Stats()
	for _, kind := range []Kind{KindReliability, KindTopK, KindSingleSource, KindDistance, KindKTerminal} {
		if st.Kinds[string(kind)] == 0 {
			t.Errorf("stats missing kind %q: %v", kind, st.Kinds)
		}
	}
}

// TestTopKSeparationStopsEarly is the acceptance check for anytime top-k:
// with Eps set the ranking terminates by CI separation using fewer
// samples than the fixed-K run draws.
func TestTopKSeparationStopsEarly(t *testing.T) {
	g := requestGraph(t)
	const maxK = 4000
	mk := func() *Engine {
		e, err := New(g, Config{Workers: 1, MaxK: maxK, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ctx := context.Background()
	fixed := mk().Estimate(ctx, Request{Kind: KindTopK, S: 0, TopK: 2, K: maxK})
	if fixed.Err != nil {
		t.Fatal(fixed.Err)
	}
	if fixed.SamplesUsed != maxK {
		t.Fatalf("fixed top-k drew %d, want %d", fixed.SamplesUsed, maxK)
	}
	adaptive := mk().Estimate(ctx, Request{Kind: KindTopK, S: 0, TopK: 2, K: maxK, Eps: 0.05})
	if adaptive.Err != nil {
		t.Fatal(adaptive.Err)
	}
	if adaptive.StopReason != string(core.StopSeparated) {
		t.Errorf("adaptive top-k stop reason %q, want %q", adaptive.StopReason, core.StopSeparated)
	}
	if adaptive.SamplesUsed >= fixed.SamplesUsed {
		t.Errorf("adaptive top-k drew %d samples, no savings vs fixed %d",
			adaptive.SamplesUsed, fixed.SamplesUsed)
	}
	// The separated ranking must agree with the fixed ranking's set on
	// this clearly-separated graph.
	if len(adaptive.TopTargets) != len(fixed.TopTargets) {
		t.Fatalf("adaptive ranking size %d vs fixed %d", len(adaptive.TopTargets), len(fixed.TopTargets))
	}
	for i := range fixed.TopTargets {
		if adaptive.TopTargets[i].Node != fixed.TopTargets[i].Node {
			t.Errorf("rank %d: adaptive node %d vs fixed node %d",
				i, adaptive.TopTargets[i].Node, fixed.TopTargets[i].Node)
		}
	}
}

// TestSingleSourceAnytime: per-target retirement serves single-source
// requests with an eps target.
func TestSingleSourceAnytime(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 2000, Seed: 3})
	res := e.Estimate(context.Background(), Request{Kind: KindSingleSource, S: 0, K: 2000, Eps: 0.2})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.SamplesUsed <= 0 || res.SamplesUsed > 2000 {
		t.Fatalf("samples used %d", res.SamplesUsed)
	}
	if res.StopReason == "" {
		t.Error("anytime single-source reported no stop reason")
	}
	if res.Reliabilities[0] != 1 {
		t.Errorf("R(s,s) = %v", res.Reliabilities[0])
	}
}

// TestEvidenceConditioning: evidence overlays change the answer in the
// physically required direction — excluding a bridge edge lowers
// reliability, including it raises it — and the overlay matches the exact
// conditional value.
func TestEvidenceConditioning(t *testing.T) {
	g := requestGraph(t)
	e, err := New(g, Config{Workers: 1, MaxK: 60000, Seed: 11, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k = 60000
	base := e.Estimate(ctx, Request{S: 0, T: 5, K: k, Estimator: "MC"})
	// Edge ids follow sorted (from, to) order: id 0 is 0->1, id 1 is 0->2.
	incl := e.Estimate(ctx, Request{S: 0, T: 5, K: k, Estimator: "MC",
		Evidence: Evidence{Include: []uncertain.EdgeID{0}}})
	excl := e.Estimate(ctx, Request{S: 0, T: 5, K: k, Estimator: "MC",
		Evidence: Evidence{Exclude: []uncertain.EdgeID{0}}})
	for _, r := range []Response{base, incl, excl} {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if !(excl.Reliability < base.Reliability && base.Reliability < incl.Reliability) {
		t.Errorf("conditioning order violated: excl %.4f, base %.4f, incl %.4f",
			excl.Reliability, base.Reliability, incl.Reliability)
	}
	// Exact conditional value over the conditioned graph.
	cond, err := uncertain.Condition(g, nil, []uncertain.EdgeID{0})
	if err != nil {
		t.Fatal(err)
	}
	exact := exactReliability(t, cond, 0, 5)
	if math.Abs(excl.Reliability-exact) > 0.02 {
		t.Errorf("evidence-excluded estimate %.4f vs exact conditional %.4f", excl.Reliability, exact)
	}
	// The overlay is cached: an immediate replay hits the result cache
	// without rebuilding anything.
	if res := e.Estimate(ctx, Request{S: 0, T: 5, K: k, Estimator: "MC",
		Evidence: Evidence{Exclude: []uncertain.EdgeID{0}}}); !res.Cached {
		t.Error("evidence request not cached on replay")
	}
}

// exactReliability brute-forces R(s,t) by possible-world enumeration —
// viable only for the tiny request graph (7 edges → 128 worlds).
func exactReliability(t *testing.T, g *uncertain.Graph, s, tt uncertain.NodeID) float64 {
	t.Helper()
	m := g.NumEdges()
	if m > 20 {
		t.Fatalf("graph too large for enumeration: %d edges", m)
	}
	total := 0.0
	for world := 0; world < 1<<m; world++ {
		p := 1.0
		for e := 0; e < m; e++ {
			ep := g.Edge(uncertain.EdgeID(e)).P
			if world&(1<<e) != 0 {
				p *= ep
			} else {
				p *= 1 - ep
			}
		}
		if p == 0 {
			continue
		}
		// BFS over the world's edges.
		reach := map[uncertain.NodeID]bool{s: true}
		frontier := []uncertain.NodeID{s}
		for len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			ids := g.OutEdgeIDs(v)
			tos := g.OutNeighbors(v)
			for i, w := range tos {
				if world&(1<<uint(ids[i])) != 0 && !reach[w] {
					reach[w] = true
					frontier = append(frontier, w)
				}
			}
		}
		if reach[tt] {
			total += p
		}
	}
	return total
}

// TestCompatSeedsRoundTrip: the compat helpers invert the engine's seed
// chains exactly.
func TestCompatSeedsRoundTrip(t *testing.T) {
	for _, raw := range []uint64{0, 1, 42, 0xdeadbeefcafe, ^uint64(0)} {
		if got := mix64(unmix64(raw)); got != raw {
			t.Fatalf("mix64(unmix64(%#x)) = %#x", raw, got)
		}
		if got := unmix64(mix64(raw)); got != raw {
			t.Fatalf("unmix64(mix64(%#x)) = %#x", raw, got)
		}
		cfg := CompatReplicaSeed("BFSSharing", raw)
		if got := replicaSeed(cfg, "BFSSharing"); got != raw {
			t.Errorf("CompatReplicaSeed: replicaSeed = %#x, want %#x", got, raw)
		}
		cfg = CompatQuerySeed("MC", 3, 9, 500, raw)
		if got := querySeed(cfg, "MC", 3, 9, 500); got != raw {
			t.Errorf("CompatQuerySeed: querySeed = %#x, want %#x", got, raw)
		}
		req := Request{Kind: KindKTerminal, S: 2, Targets: []uncertain.NodeID{4}, K: 300}
		cfg = CompatRequestSeed(req, raw)
		if got := querySeed(cfg, ktName, 2, 2, 300); got != raw {
			t.Errorf("CompatRequestSeed: querySeed = %#x, want %#x", got, raw)
		}
	}
}

// TestFingerprintIDs: order- and duplicate-insensitive, set-sensitive.
func TestFingerprintIDs(t *testing.T) {
	a := fingerprintIDs(1, []uncertain.NodeID{3, 1, 2})
	b := fingerprintIDs(1, []uncertain.NodeID{2, 3, 1, 1})
	if a != b {
		t.Errorf("permutation/duplicate changed fingerprint: %v vs %v", a, b)
	}
	if c := fingerprintIDs(1, []uncertain.NodeID{3, 1}); c == a {
		t.Errorf("distinct sets collide: %v", c)
	}
	if z := fingerprintIDs(1, nil); z != ([2]uint64{}) {
		t.Errorf("empty set fingerprint %v, want zero", z)
	}
	ev := Evidence{Include: []uncertain.EdgeID{1}, Exclude: []uncertain.EdgeID{2}}
	flipped := Evidence{Include: []uncertain.EdgeID{2}, Exclude: []uncertain.EdgeID{1}}
	if fingerprintEvidence(ev) == fingerprintEvidence(flipped) {
		t.Error("include/exclude swap not distinguished")
	}
}

// TestDistancePoolsShareReplicas: repeated distance queries at one hop
// bound reuse the per-d pool rather than constructing estimators.
func TestDistancePoolsShareReplicas(t *testing.T) {
	e := testEngine(t, Config{Workers: 2, MaxK: 200, Seed: 4})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if res := e.Estimate(ctx, Request{Kind: KindDistance, S: 0, T: 5, D: 2, K: 100}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	ds := e.state.Load().dist
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if len(ds.pools) != 1 {
		t.Fatalf("%d distance pools for one hop bound", len(ds.pools))
	}
	if n := ds.pools[2].size(); n != 1 {
		t.Errorf("sequential distance queries built %d replicas, want 1", n)
	}
}

// TestDistanceMonotoneInD: R_d grows with d and is capped by plain
// reliability, across the engine path.
func TestDistanceMonotoneInD(t *testing.T) {
	g := requestGraph(t)
	e, err := New(g, Config{Workers: 1, MaxK: 40000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k = 40000
	r2 := e.Estimate(ctx, Request{Kind: KindDistance, S: 0, T: 5, D: 2, K: k}).Reliability
	r3 := e.Estimate(ctx, Request{Kind: KindDistance, S: 0, T: 5, D: 3, K: k}).Reliability
	if r2 > r3+0.02 {
		t.Errorf("R_2 (%.4f) exceeds R_3 (%.4f)", r2, r3)
	}
	plain := e.Estimate(ctx, Request{S: 0, T: 5, K: k, Estimator: "MC"}).Reliability
	if r3 < plain-0.02 {
		t.Errorf("R_3 (%.4f) below unbounded R (%.4f) on a 3-hop graph", r3, plain)
	}
}

// TestKindDeadline: a distance request under an effectively-zero deadline
// still answers, reports a stop reason, and is not cached.
func TestKindDeadline(t *testing.T) {
	e := testEngine(t, Config{Workers: 1, MaxK: 2000, Seed: 6, CacheSize: 64})
	ctx := context.Background()
	q := Request{Kind: KindDistance, S: 0, T: 5, D: 3, K: 2000, Deadline: time.Microsecond}
	res := e.Estimate(ctx, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.StopReason == "" {
		t.Error("deadline request reported no stop reason")
	}
	if rep := e.Estimate(ctx, q); rep.Cached {
		t.Error("deadline-truncated kind result was cached")
	}
}
