package harness

import (
	"fmt"
	"io"
	"math"
	"time"

	"relcomp/internal/convergence"
	"relcomp/internal/core"
)

// Ablations beyond the paper: DESIGN.md calls out two design choices worth
// isolating — the ProbTree decomposition width (the paper fixes w = 2 for
// losslessness) and the sequential-only restriction (MC parallelizes
// trivially). These experiments quantify both.

func init() {
	register("ablation-width", "Ablation: ProbTree decomposition width w ∈ {1,2,3} (lastFM)", runAblationWidth)
	register("ablation-parallel", "Ablation: ParallelMC worker scaling vs sequential MC (BioMine)", runAblationParallel)
	register("ablation-packmc", "Extension: PackMC word-packed sampling vs MC (speedup and agreement)", runAblationPackMC)
}

// runAblationWidth shows why the paper fixes w=2: w=1 collapses too little
// of the graph (large root, slow queries), while w=3 collapses more but
// loses the losslessness guarantee (accuracy drifts from MC).
func runAblationWidth(r *Runner, w io.Writer) error {
	const dataset = "lastFM"
	g, err := r.Graph(dataset)
	if err != nil {
		return err
	}
	pairs, err := r.Pairs(dataset, r.opts.Hops)
	if err != nil {
		return err
	}
	k := 1000
	if k > r.opts.MaxK {
		k = r.opts.MaxK
	}
	mc := core.NewMC(g, r.opts.Seed)
	base := convergence.Evaluate(mc, pairs, k, r.opts.Repeats, r.opts.Seed+3)

	tbl := newTable(w)
	tbl.row("w", "bags", "root nodes", "build (s)", "query (s)", "|R - R_MC| avg")
	for _, width := range []int{1, 2, 3} {
		var pt *core.ProbTree
		build := timeIt(func() {
			pt = core.NewProbTreeWith(g, r.opts.Seed, width, nil)
		})
		st := convergence.Evaluate(pt, pairs, k, r.opts.Repeats, r.opts.Seed+4)
		dev := 0.0
		for i := range st.Mean {
			dev += math.Abs(st.Mean[i] - base.Mean[i])
		}
		dev /= float64(len(st.Mean))
		qt := perQueryTime(pt, pairs, k)
		tbl.row(width, pt.NumBags(), pt.RootSize(), secs(build), secs(qt), fmt.Sprintf("%.5f", dev))
	}
	tbl.flush()
	return nil
}

// runAblationPackMC contrasts the bit-parallel world-packed sampler
// against the sequential MC baseline at equal K on every dataset: the
// per-query speedup of packing 64 worlds into one traversal, and the
// statistical agreement that packing must not disturb (PackMC draws the
// same number of independent Bernoulli worlds, so the mean difference is
// pure sampling noise).
func runAblationPackMC(r *Runner, w io.Writer) error {
	tbl := newTable(w)
	tbl.row("Dataset", "MC time/query (s)", "PackMC time/query (s)", "speedup", "|R_Pack - R_MC| avg")
	for _, name := range []string{"lastFM", "NetHept", "AS_Topology", "DBLP_0.2", "BioMine"} {
		g, err := r.Graph(name)
		if err != nil {
			return err
		}
		pairs, err := r.Pairs(name, r.opts.Hops)
		if err != nil {
			return err
		}
		k := 1000
		if k > r.opts.MaxK {
			k = r.opts.MaxK
		}
		mc := core.NewMC(g, r.opts.Seed)
		pm := core.NewPackMC(g, r.opts.Seed)
		base := convergence.Evaluate(mc, pairs, k, r.opts.Repeats, r.opts.Seed+7)
		packed := convergence.Evaluate(pm, pairs, k, r.opts.Repeats, r.opts.Seed+8)
		dev := 0.0
		for i := range base.Mean {
			dev += math.Abs(packed.Mean[i] - base.Mean[i])
		}
		dev /= float64(len(base.Mean))
		mcTime := perQueryTime(mc, pairs, k)
		pmTime := perQueryTime(pm, pairs, k)
		speedup := "inf"
		if pmTime > 0 {
			speedup = fmt.Sprintf("%.1f", mcTime.Seconds()/pmTime.Seconds())
		}
		tbl.row(name, secs(mcTime), secs(pmTime), speedup, fmt.Sprintf("%.5f", dev))
	}
	tbl.flush()
	fmt.Fprintln(w, "(same K, same number of independent worlds: the deviation column is sampling noise)")
	return nil
}

// runAblationParallel measures the wall-clock scaling of the sharded MC
// estimator, which matches MC statistically but splits the sample budget
// over W goroutines.
func runAblationParallel(r *Runner, w io.Writer) error {
	const dataset = "BioMine"
	g, err := r.Graph(dataset)
	if err != nil {
		return err
	}
	pairs, err := r.Pairs(dataset, r.opts.Hops)
	if err != nil {
		return err
	}
	k := 1000
	if k > r.opts.MaxK {
		k = r.opts.MaxK
	}

	mc := core.NewMC(g, r.opts.Seed)
	seqTime := perQueryTime(mc, pairs, k)
	seqR := convergence.Evaluate(mc, pairs, k, 3, r.opts.Seed+5).RK()
	tbl := newTable(w)
	tbl.row("Estimator", "workers", "time/query (s)", "speedup", "R_K")
	tbl.row("MC", 1, secs(seqTime), "1.00", fmt.Sprintf("%.4f", seqR))
	for _, workers := range []int{1, 2, 4, 8} {
		p := core.NewParallelMC(g, r.opts.Seed, workers)
		var total time.Duration
		for _, pr := range pairs {
			total += timeIt(func() { p.Estimate(pr.S, pr.T, k) })
		}
		qt := total / time.Duration(len(pairs))
		rk := convergence.Evaluate(p, pairs, k, 3, r.opts.Seed+6).RK()
		tbl.row("ParallelMC", workers, secs(qt),
			fmt.Sprintf("%.2f", seqTime.Seconds()/qt.Seconds()),
			fmt.Sprintf("%.4f", rk))
	}
	tbl.flush()
	return nil
}
