package harness

import (
	"fmt"
	"time"

	"relcomp/internal/convergence"
	"relcomp/internal/core"
	"relcomp/internal/memtrack"
	"relcomp/internal/uncertain"
	"relcomp/internal/workload"
)

// EstEval holds everything the paper's tables report about one estimator
// on one dataset: the convergence sweep, statistics at convergence and at
// the fixed K=1000 the prior literature used, wall times, and memory.
type EstEval struct {
	Name      string
	Sweep     convergence.Result
	Converged bool
	ConvK     int // K at convergence, or the sweep cap if never converged

	StatsAtConv  convergence.PairStats
	StatsAtFixed convergence.PairStats // at FixedK (1000 by default)

	TimeAtConv  time.Duration // average per query at ConvK
	TimeAtFixed time.Duration // average per query at FixedK
	MemoryBytes int64         // online memory at convergence
}

// PerSample returns the average time per sample at convergence.
func (e *EstEval) PerSample() time.Duration {
	if e.ConvK == 0 {
		return 0
	}
	return e.TimeAtConv / time.Duration(e.ConvK)
}

// DatasetEval bundles the evaluation of the full estimator set on one
// dataset, including the MC-at-convergence per-pair baseline that the
// relative errors of Eq. 14 are measured against.
type DatasetEval struct {
	Dataset  string
	Graph    *uncertain.Graph
	Pairs    []workload.Pair
	FixedK   int
	Ests     []*EstEval // in EstimatorSet order
	Baseline []float64  // MC per-pair reliability at its convergence
}

// Est returns the evaluation of the named estimator.
func (d *DatasetEval) Est(name string) (*EstEval, error) {
	for _, e := range d.Ests {
		if e.Name == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("harness: estimator %q not evaluated on %s", name, d.Dataset)
}

// RelErr returns Eq. 14 for the given per-pair means against the MC
// baseline, as a percentage.
func (d *DatasetEval) RelErr(means []float64) float64 {
	re, err := convergence.RelativeError(means, d.Baseline)
	if err != nil {
		return 0
	}
	return re * 100
}

// Evaluate runs (and caches) the full estimator-set evaluation on a
// dataset: convergence sweeps, fixed-K statistics, timings, and memory.
func (r *Runner) Evaluate(dataset string) (*DatasetEval, error) {
	if d, ok := r.evals[dataset]; ok {
		return d, nil
	}

	g, err := r.Graph(dataset)
	if err != nil {
		return nil, err
	}
	pairs, err := r.Pairs(dataset, r.opts.Hops)
	if err != nil {
		return nil, err
	}
	fixedK := 1000
	if fixedK > r.opts.MaxK {
		fixedK = r.opts.MaxK
	}
	d := &DatasetEval{Dataset: dataset, Graph: g, Pairs: pairs, FixedK: fixedK}
	cfg := r.convConfig()

	for _, name := range EstimatorSet {
		est, err := r.NewEstimator(name, g)
		if err != nil {
			return nil, err
		}
		ee := &EstEval{Name: name}
		ee.Sweep = convergence.Sweep(est, pairs, cfg)
		ee.Converged = ee.Sweep.ConvergedAt > 0
		if ee.Converged {
			ee.ConvK = ee.Sweep.ConvergedAt
			ee.StatsAtConv = *ee.Sweep.AtConverged
		} else {
			ee.ConvK = cfg.MaxK
			ee.StatsAtConv = convergence.Evaluate(est, pairs, ee.ConvK, cfg.Repeats, cfg.SeedBase)
		}
		ee.StatsAtFixed = convergence.Evaluate(est, pairs, fixedK, cfg.Repeats, cfg.SeedBase+1)

		ee.TimeAtConv = perQueryTime(est, pairs, ee.ConvK)
		ee.TimeAtFixed = perQueryTime(est, pairs, fixedK)
		ee.MemoryBytes = measureMemory(est, pairs, ee.ConvK)
		d.Ests = append(d.Ests, ee)
	}

	mc, err := d.Est("MC")
	if err != nil {
		return nil, err
	}
	d.Baseline = mc.StatsAtConv.Mean
	r.evals[dataset] = d
	return d, nil
}

// perQueryTime measures the average wall time per query at sample size k,
// excluding any index resampling between queries.
func perQueryTime(est core.Estimator, pairs []workload.Pair, k int) time.Duration {
	if len(pairs) == 0 {
		return 0
	}
	total := timeQueries(est, pairs, k)
	return total / time.Duration(len(pairs))
}

// measureMemory reports the online memory of one query at sample size k:
// the analytic resident footprint where available, otherwise the heap
// delta of the call.
func measureMemory(est core.Estimator, pairs []workload.Pair, k int) int64 {
	if len(pairs) == 0 {
		return memtrack.Bytes(est)
	}
	p := pairs[0]
	return memtrack.Measure(est, func() { est.Estimate(p.S, p.T, k) })
}

// gb renders bytes as gigabytes with three decimals, the unit of Fig. 12.
func gb(b int64) string { return fmt.Sprintf("%.4f", float64(b)/(1<<30)) }

// secs renders a duration in seconds with three significant decimals.
func secs(t time.Duration) string { return fmt.Sprintf("%.4f", t.Seconds()) }

// ms renders a duration in milliseconds.
func ms(t time.Duration) string { return fmt.Sprintf("%.4f", float64(t.Microseconds())/1000) }
