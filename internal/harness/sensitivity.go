package harness

import (
	"fmt"
	"io"

	"relcomp/internal/convergence"
	"relcomp/internal/core"
	"relcomp/internal/uncertain"
)

func init() {
	register("fig14", "Sensitivity to s-t distance: convergence K and relative error (BioMine)", runFig14)
	register("fig15", "Sensitivity to s-t distance: running time at convergence (BioMine)", runFig15)
	register("fig16", "Sensitivity to the recursive sample-size threshold (BioMine, K=1000)", runFig16)
	register("fig17", "Sensitivity to the stratum count r of RSS (BioMine)", runFig17)
}

// distanceSensitivity evaluates the estimator set on BioMine workloads at
// hop distances 2, 4, 6, 8 and caches nothing (these runs are specific to
// Figures 14–15).
func (r *Runner) distanceSweeps(dataset string, hops []int) (map[int]map[string]distResult, *uncertain.Graph, error) {
	g, err := r.Graph(dataset)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[int]map[string]distResult)
	cfg := r.convConfig()
	for _, h := range hops {
		pairs, err := r.Pairs(dataset, h)
		if err != nil {
			// Large hop distances can be unreachable at small scales;
			// report and skip.
			out[h] = nil
			continue
		}
		byEst := make(map[string]distResult)
		var baseline []float64
		for _, name := range EstimatorSet {
			est, err := r.NewEstimator(name, g)
			if err != nil {
				return nil, nil, err
			}
			sweep := convergence.Sweep(est, pairs, cfg)
			convK := sweep.ConvergedAt
			var st convergence.PairStats
			if convK > 0 {
				st = *sweep.AtConverged
			} else {
				convK = cfg.MaxK
				st = convergence.Evaluate(est, pairs, convK, cfg.Repeats, cfg.SeedBase)
			}
			dr := distResult{
				convK:     convK,
				converged: sweep.ConvergedAt > 0,
				stats:     st,
				time:      perQueryTime(est, pairs, convK),
			}
			if name == "MC" {
				baseline = st.Mean
			}
			byEst[name] = dr
		}
		for name, dr := range byEst {
			re, err := convergence.RelativeError(dr.stats.Mean, baseline)
			if err == nil {
				dr.relErr = re * 100
			}
			byEst[name] = dr
		}
		out[h] = byEst
	}
	return out, g, nil
}

type distResult struct {
	convK     int
	converged bool
	stats     convergence.PairStats
	time      interface{ Seconds() float64 }
	relErr    float64
}

var distHops = []int{2, 4, 6, 8}

// runFig14 reproduces Figure 14: per hop distance h, the K needed for
// convergence (a) and the relative error at convergence (b).
func runFig14(r *Runner, w io.Writer) error {
	sweeps, _, err := r.distanceSweeps("BioMine", distHops)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("Estimator", "h", "K(conv)", "R(conv)", "RelErr vs MC (%)")
	for _, name := range EstimatorSet {
		for _, h := range distHops {
			byEst := sweeps[h]
			if byEst == nil {
				tbl.row(name, h, "-", "no pairs at this distance", "")
				continue
			}
			dr := byEst[name]
			kStr := fmt.Sprint(dr.convK)
			if !dr.converged {
				kStr = fmt.Sprintf(">%d", dr.convK)
			}
			tbl.row(name, h, kStr,
				fmt.Sprintf("%.4f", dr.stats.RK()),
				fmt.Sprintf("%.3f", dr.relErr))
		}
	}
	tbl.flush()
	return nil
}

// runFig15 reproduces Figure 15: running time at convergence per hop
// distance, split into the paper's "faster" and "slower" estimator panels.
func runFig15(r *Runner, w io.Writer) error {
	sweeps, _, err := r.distanceSweeps("BioMine", distHops)
	if err != nil {
		return err
	}
	groups := [][]string{
		{"ProbTree", "LP+", "RHH", "RSS"}, // Fig. 15(a) faster estimators
		{"MC", "BFSSharing"},              // Fig. 15(b) slower estimators
	}
	for gi, grp := range groups {
		fmt.Fprintf(w, "-- panel (%c) --\n", 'a'+gi)
		tbl := newTable(w)
		tbl.row("Estimator", "h", "Time@conv (s)")
		for _, name := range grp {
			for _, h := range distHops {
				byEst := sweeps[h]
				if byEst == nil {
					tbl.row(name, h, "-")
					continue
				}
				dr := byEst[name]
				tbl.row(name, h, fmt.Sprintf("%.4f", dr.time.Seconds()))
			}
		}
		tbl.flush()
	}
	return nil
}

// runFig16 reproduces Figure 16: variance and running time of RHH and RSS
// as the non-recursive fallback threshold grows, with MC as the reference
// line; the paper's sweet spot is threshold = 5.
func runFig16(r *Runner, w io.Writer) error {
	const dataset = "BioMine"
	g, err := r.Graph(dataset)
	if err != nil {
		return err
	}
	pairs, err := r.Pairs(dataset, r.opts.Hops)
	if err != nil {
		return err
	}
	k := 1000
	if k > r.opts.MaxK {
		k = r.opts.MaxK
	}

	mc := core.NewMC(g, r.opts.Seed)
	mcStats := convergence.Evaluate(mc, pairs, k, r.opts.Repeats, r.opts.Seed+5)
	mcTime := perQueryTime(mc, pairs, k)
	fmt.Fprintf(w, "MC reference at K=%d: variance %.3g, time %s s\n", k, mcStats.VK(), secs(mcTime))

	thresholds := []int{2, 5, 10, 20, 50, 100}
	tbl := newTable(w)
	tbl.row("Method", "Threshold", "Variance", "Time (s)")
	for _, th := range thresholds {
		rhh := core.NewRHHThreshold(g, r.opts.Seed, th)
		st := convergence.Evaluate(rhh, pairs, k, r.opts.Repeats, r.opts.Seed+uint64(th))
		tbl.row("RHH", th, fmt.Sprintf("%.3g", st.VK()), secs(perQueryTime(rhh, pairs, k)))
	}
	for _, th := range thresholds {
		rss := core.NewRSSParams(g, r.opts.Seed, th, core.DefaultStratumCount)
		st := convergence.Evaluate(rss, pairs, k, r.opts.Repeats, r.opts.Seed+uint64(th))
		tbl.row("RSS", th, fmt.Sprintf("%.3g", st.VK()), secs(perQueryTime(rss, pairs, k)))
	}
	tbl.flush()
	return nil
}

// runFig17 reproduces Figure 17: variance and running time of RSS as the
// stratum count r grows, at K=500 and K=1000; variance stops improving
// past r = 50 and time is insensitive to r.
func runFig17(r *Runner, w io.Writer) error {
	const dataset = "BioMine"
	g, err := r.Graph(dataset)
	if err != nil {
		return err
	}
	pairs, err := r.Pairs(dataset, r.opts.Hops)
	if err != nil {
		return err
	}
	ks := []int{500, 1000}
	stratums := []int{5, 10, 20, 50, 80, 100}
	tbl := newTable(w)
	tbl.row("K", "r", "Variance", "Time (s)")
	for _, k := range ks {
		if k > r.opts.MaxK {
			k = r.opts.MaxK
		}
		for _, sr := range stratums {
			rss := core.NewRSSParams(g, r.opts.Seed, core.DefaultRecursiveThreshold, sr)
			st := convergence.Evaluate(rss, pairs, k, r.opts.Repeats, r.opts.Seed+uint64(sr))
			tbl.row(k, sr, fmt.Sprintf("%.3g", st.VK()), secs(perQueryTime(rss, pairs, k)))
		}
	}
	tbl.flush()
	return nil
}
