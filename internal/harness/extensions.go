package harness

import (
	"fmt"
	"io"
	"math"

	"relcomp/internal/bounds"
	"relcomp/internal/convergence"
	"relcomp/internal/repworld"
)

// Extension experiments covering the remaining branches of the paper's
// taxonomy (Fig. 2): polynomial-time bounds and representative possible
// worlds, each contrasted against the sampling estimators on the same
// workloads.

func init() {
	register("ablation-bounds", "Extension: polynomial-time bounds vs MC estimates (all datasets)", runAblationBounds)
	register("ablation-repworld", "Extension: representative-world heuristic vs MC (accuracy cost)", runAblationRepWorld)
}

// runAblationBounds checks, per dataset, how often the O(m log n) bounds
// already bracket the sampled reliability tightly — when they do, a
// practitioner can skip sampling entirely.
func runAblationBounds(r *Runner, w io.Writer) error {
	tbl := newTable(w)
	tbl.row("Dataset", "avg lower", "avg MC", "avg upper", "avg gap", "violations")
	for _, name := range []string{"lastFM", "NetHept", "AS_Topology", "BioMine"} {
		g, err := r.Graph(name)
		if err != nil {
			return err
		}
		pairs, err := r.Pairs(name, r.opts.Hops)
		if err != nil {
			return err
		}
		mc, err := r.NewEstimator("MC", g)
		if err != nil {
			return err
		}
		k := 1000
		if k > r.opts.MaxK {
			k = r.opts.MaxK
		}
		st := convergence.Evaluate(mc, pairs, k, r.opts.Repeats, r.opts.Seed+13)

		var loSum, hiSum, mcSum, gapSum float64
		violations := 0
		for i, p := range pairs {
			lo, hi, err := bounds.Bounds(g, p.S, p.T)
			if err != nil {
				return err
			}
			est := st.Mean[i]
			loSum += lo
			hiSum += hi
			mcSum += est
			gapSum += hi - lo
			// Allow sampling noise: 3 standard errors.
			slack := 3 * math.Sqrt(st.Var[i]/float64(r.opts.Repeats))
			if est < lo-slack-0.01 || est > hi+slack+0.01 {
				violations++
			}
		}
		n := float64(len(pairs))
		tbl.row(name,
			fmt.Sprintf("%.4f", loSum/n),
			fmt.Sprintf("%.4f", mcSum/n),
			fmt.Sprintf("%.4f", hiSum/n),
			fmt.Sprintf("%.4f", gapSum/n),
			violations)
	}
	tbl.flush()
	fmt.Fprintln(w, "(violations counts MC estimates outside [lower-3se, upper+3se]; expected 0)")
	return nil
}

// runAblationRepWorld quantifies the accuracy a single representative
// world gives up against sampling: its answers are 0/1, so its absolute
// error on mid-range reliabilities is structural, not statistical.
func runAblationRepWorld(r *Runner, w io.Writer) error {
	tbl := newTable(w)
	tbl.row("Dataset", "avg |RepWorld - MC|", "avg |MC(rerun) - MC|", "discrepancy/node")
	for _, name := range []string{"lastFM", "AS_Topology", "BioMine"} {
		g, err := r.Graph(name)
		if err != nil {
			return err
		}
		pairs, err := r.Pairs(name, r.opts.Hops)
		if err != nil {
			return err
		}
		k := 1000
		if k > r.opts.MaxK {
			k = r.opts.MaxK
		}
		mc, err := r.NewEstimator("MC", g)
		if err != nil {
			return err
		}
		base := convergence.Evaluate(mc, pairs, k, r.opts.Repeats, r.opts.Seed+17)
		rerun := convergence.Evaluate(mc, pairs, k, r.opts.Repeats, r.opts.Seed+18)

		rw := repworld.NewEstimator(g)
		var rwErr, mcErr float64
		for i, p := range pairs {
			rwErr += math.Abs(rw.Estimate(p.S, p.T, 1) - base.Mean[i])
			mcErr += math.Abs(rerun.Mean[i] - base.Mean[i])
		}
		n := float64(len(pairs))
		disc, err := repworld.Discrepancy(g, rw.World())
		if err != nil {
			return err
		}
		tbl.row(name,
			fmt.Sprintf("%.4f", rwErr/n),
			fmt.Sprintf("%.4f", mcErr/n),
			fmt.Sprintf("%.3f", disc/float64(g.NumNodes())))
	}
	tbl.flush()
	fmt.Fprintln(w, "(the representative world answers 0/1, so its error dwarfs re-sampling noise)")
	return nil
}
