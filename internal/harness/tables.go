package harness

import (
	"fmt"
	"io"

	"relcomp/internal/convergence"
	"relcomp/internal/datasets"
)

func init() {
	for i, spec := range datasets.All() {
		reTable := fmt.Sprintf("table%d", 3+i)
		timeTable := fmt.Sprintf("table%d", 9+i)
		name := spec.Name
		register(reTable, "Relative error at convergence and at K=1000: "+name,
			func(r *Runner, w io.Writer) error { return runRelErrTable(r, w, name) })
		register(timeTable, "Running time at convergence, at K=1000, and per sample: "+name,
			func(r *Runner, w io.Writer) error { return runTimeTable(r, w, name) })
	}
}

// runRelErrTable reproduces Tables 3–8: per estimator, the convergence K,
// the average reliability and relative error at convergence and at the
// fixed K=1000 of the prior literature, plus the pairwise deviation of
// relative errors across estimators (Eq. 15).
func runRelErrTable(r *Runner, w io.Writer, dataset string) error {
	d, err := r.Evaluate(dataset)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("Estimator", "K(conv)", "R(conv)", "RE(conv) %", fmt.Sprintf("R(K=%d)", d.FixedK), fmt.Sprintf("RE(K=%d) %%", d.FixedK))
	var reConv, reFixed []float64
	for _, ee := range d.Ests {
		rc := d.RelErr(ee.StatsAtConv.Mean)
		rf := d.RelErr(ee.StatsAtFixed.Mean)
		reConv = append(reConv, rc)
		reFixed = append(reFixed, rf)
		tbl.row(ee.Name, ee.ConvK,
			fmt.Sprintf("%.4f", ee.StatsAtConv.RK()),
			fmt.Sprintf("%.2f", rc),
			fmt.Sprintf("%.4f", ee.StatsAtFixed.RK()),
			fmt.Sprintf("%.2f", rf))
	}
	tbl.row("Pairwise Deviation", "",
		"", fmt.Sprintf("%.2f", convergence.PairwiseDeviation(reConv)),
		"", fmt.Sprintf("%.2f", convergence.PairwiseDeviation(reFixed)))
	tbl.flush()
	return nil
}

// runTimeTable reproduces Tables 9–14: per estimator, the average
// per-query running time at convergence and at K=1000, and the time per
// sample in milliseconds.
func runTimeTable(r *Runner, w io.Writer, dataset string) error {
	d, err := r.Evaluate(dataset)
	if err != nil {
		return err
	}
	tbl := newTable(w)
	tbl.row("Estimator", "K(conv)", "Time@conv (s)", fmt.Sprintf("Time@K=%d (s)", d.FixedK), "Time/sample (ms)")
	for _, ee := range d.Ests {
		tbl.row(ee.Name, ee.ConvK,
			secs(ee.TimeAtConv),
			secs(ee.TimeAtFixed),
			ms(ee.PerSample()))
	}
	tbl.flush()
	return nil
}
