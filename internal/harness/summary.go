package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"relcomp/internal/datasets"
)

func init() {
	register("table2", "Properties of datasets (nodes, edges, edge-probability profile)", runTable2)
	register("table17", "Summary and recommendation (stars derived from measured data)", runTable17)
}

// runTable2 reproduces Table 2: the per-dataset graph sizes and
// edge-probability statistics, computed from the synthetic stand-ins.
func runTable2(r *Runner, w io.Writer) error {
	tbl := newTable(w)
	tbl.row("Dataset", "#Nodes", "#Edges", "Edge Prob: Mean±SD, Quartiles")
	for _, spec := range datasets.All() {
		g, err := r.Graph(spec.Name)
		if err != nil {
			return err
		}
		tbl.row(spec.Name, g.NumNodes(), g.NumEdges(), g.ProbSummary().String())
	}
	tbl.flush()
	return nil
}

// runTable17 reproduces Table 17: a 1–4 star ranking of the six estimators
// on variance, accuracy, running time, and memory — derived from the
// measured evaluations rather than copied from the paper, so it doubles as
// a self-check of the qualitative findings.
func runTable17(r *Runner, w io.Writer) error {
	// Aggregate each metric across all datasets (geometric-mean ranks).
	type agg struct {
		variance float64
		relErr   float64
		time     time.Duration
		memory   int64
		n        int
	}
	metrics := make(map[string]*agg)
	for _, name := range EstimatorSet {
		metrics[name] = &agg{}
	}
	for _, spec := range datasets.All() {
		d, err := r.Evaluate(spec.Name)
		if err != nil {
			return err
		}
		for _, ee := range d.Ests {
			m := metrics[ee.Name]
			m.variance += ee.StatsAtFixed.VK()
			m.relErr += d.RelErr(ee.StatsAtConv.Mean)
			m.time += ee.TimeAtConv
			m.memory += ee.MemoryBytes
			m.n++
		}
	}

	// Stars: rank ascending (smaller is better) -> 4..1 stars in two
	// buckets of ties like the paper (top third 4 stars, etc.).
	starsFor := func(value func(*agg) float64) map[string]int {
		type kv struct {
			name string
			v    float64
		}
		var list []kv
		for _, name := range EstimatorSet {
			list = append(list, kv{name, value(metrics[name])})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].v < list[j].v })
		out := make(map[string]int)
		for rank, e := range list {
			// 6 estimators -> stars 4,4,3,3,2,1.
			stars := []int{4, 4, 3, 3, 2, 1}[rank]
			out[e.name] = stars
		}
		return out
	}
	variance := starsFor(func(a *agg) float64 { return a.variance })
	accuracy := starsFor(func(a *agg) float64 { return a.relErr })
	runtime := starsFor(func(a *agg) float64 { return a.time.Seconds() })
	memory := starsFor(func(a *agg) float64 { return float64(a.memory) })

	star := func(n int) string {
		s := ""
		for i := 0; i < n; i++ {
			s += "*"
		}
		return s
	}
	tbl := newTable(w)
	tbl.row("Method", "Variance", "Accuracy", "Running Time", "Memory")
	for _, name := range EstimatorSet {
		tbl.row(name, star(variance[name]), star(accuracy[name]), star(runtime[name]), star(memory[name]))
	}
	tbl.flush()
	fmt.Fprintln(w, "(stars derived from this run's measurements; paper Table 17 ranks"+
		" RHH/RSS best on variance & time, MC/LP+ best on memory, ProbTree balanced)")
	return nil
}
