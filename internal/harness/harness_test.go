package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions makes the experiments finish in seconds for testing.
func tinyOptions() Options {
	return Options{
		Scale:    0.03,
		Pairs:    4,
		Hops:     2,
		Repeats:  4,
		InitialK: 100,
		StepK:    100,
		MaxK:     400,
		Rho:      0.01, // loose threshold so sweeps converge fast
		Seed:     5,
	}
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(Options{})
	if r.Options() != Defaults() {
		t.Errorf("zero options not replaced by defaults: %+v", r.Options())
	}
	p := PaperScale()
	if p.Pairs != 100 || p.Repeats != 100 {
		t.Errorf("paper scale wrong: %+v", p)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(tinyOptions())
	g1, err := r.Graph("lastFM")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := r.Graph("lastFM")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("graph not cached")
	}
	p1, err := r.Pairs("lastFM", 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Pairs("lastFM", 2)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Error("pairs not cached")
	}
	if _, err := r.Graph("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNewEstimatorNames(t *testing.T) {
	r := NewRunner(tinyOptions())
	g, err := r.Graph("lastFM")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range append(append([]string{}, ExtendedEstimatorSet...), "LP", "ProbTree+LP+", "ProbTree+RHH", "ProbTree+RSS") {
		est, err := r.NewEstimator(name, g)
		if err != nil {
			t.Fatal(err)
		}
		if est.Name() != name {
			t.Errorf("estimator %q reports name %q", name, est.Name())
		}
	}
	if _, err := r.NewEstimator("bogus", g); err == nil {
		t.Error("unknown estimator accepted")
	}
}

func TestEvaluateProducesBaseline(t *testing.T) {
	r := NewRunner(tinyOptions())
	d, err := r.Evaluate("lastFM")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ests) != len(EstimatorSet) {
		t.Fatalf("%d estimator evals", len(d.Ests))
	}
	if len(d.Baseline) != len(d.Pairs) {
		t.Fatalf("baseline %d values for %d pairs", len(d.Baseline), len(d.Pairs))
	}
	mc, err := d.Est("MC")
	if err != nil {
		t.Fatal(err)
	}
	if mc.ConvK <= 0 || mc.TimeAtConv < 0 {
		t.Errorf("MC eval fields: %+v", mc)
	}
	if _, err := d.Est("nope"); err == nil {
		t.Error("unknown estimator lookup accepted")
	}
	// Cache hit.
	d2, err := r.Evaluate("lastFM")
	if err != nil {
		t.Fatal(err)
	}
	if d != d2 {
		t.Error("evaluation not cached")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	want := []string{
		"fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17",
		"table3", "table4", "table5", "table6", "table7", "table8",
		"table9", "table10", "table11", "table12", "table13", "table14",
		"table15", "table16",
	}
	for _, name := range want {
		if _, err := ByName(name); err != nil {
			t.Errorf("experiment %s missing: %v", name, err)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunAllExperiments executes every registered experiment end-to-end on
// a tiny configuration: the integration test of the whole measurement
// pipeline (datasets -> workloads -> estimators -> metrics -> tables).
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("harness integration test")
	}
	r := NewRunner(tinyOptions())
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(r, &buf); err != nil {
				t.Fatalf("%s: %v", exp.Name, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Errorf("%s produced no output", exp.Name)
			}
		})
	}
}

// TestRunAllTopLevel covers the RunAll driver on a pair of cheap
// experiments by temporarily checking its formatting contract.
func TestRunAllHeaderFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("harness integration test")
	}
	r := NewRunner(tinyOptions())
	var buf bytes.Buffer
	if err := RunAll(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== fig5", "=== table3", "=== table17"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestTableWriter(t *testing.T) {
	var buf bytes.Buffer
	tbl := newTable(&buf)
	tbl.row("a", 1, 2.5)
	tbl.row("bb", 10, "x")
	tbl.flush()
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "bb") {
		t.Errorf("table output %q", out)
	}
}
