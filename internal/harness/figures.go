package harness

import (
	"fmt"
	"io"

	"relcomp/internal/convergence"
	"relcomp/internal/datasets"
)

func init() {
	register("fig5", "LP bias: reliability of MC vs LP+ vs LP at convergence (DBLP, BioMine)", runFig5)
	register("fig7", "Estimator variance and convergence: ρ_K vs K on all datasets", runFig7)
	register("fig8", "Reliability vs K against MC at very large K (BioMine)", runFig8)
	register("fig9", "Trade-off: relative error / time / memory vs K (lastFM)", figTradeoff("lastFM"))
	register("fig10", "Trade-off: relative error / time / memory vs K (AS Topology)", figTradeoff("AS_Topology"))
	register("fig11", "Trade-off: relative error / time / memory vs K (BioMine)", figTradeoff("BioMine"))
	register("fig12", "Online memory usage per estimator on all datasets", runFig12)
}

// runFig5 reproduces Figure 5: the uncorrected lazy-propagation sampler
// (LP) overestimates reliability, while the corrected LP+ tracks MC.
func runFig5(r *Runner, w io.Writer) error {
	tbl := newTable(w)
	tbl.row("Dataset", "MC", "LP+", "LP")
	for _, name := range []string{"DBLP_0.2", "BioMine"} {
		d, err := r.Evaluate(name)
		if err != nil {
			return err
		}
		mc, err := d.Est("MC")
		if err != nil {
			return err
		}
		lpp, err := d.Est("LP+")
		if err != nil {
			return err
		}
		// LP is not part of the regular estimator set: evaluate it at
		// MC's convergence K.
		lpEst, err := r.NewEstimator("LP", d.Graph)
		if err != nil {
			return err
		}
		lpStats := convergence.Evaluate(lpEst, d.Pairs, mc.ConvK, r.opts.Repeats, r.opts.Seed+99)
		tbl.row(name,
			fmt.Sprintf("%.4f", mc.StatsAtConv.RK()),
			fmt.Sprintf("%.4f", lpp.StatsAtConv.RK()),
			fmt.Sprintf("%.4f", lpStats.RK()))
	}
	tbl.flush()
	return nil
}

// runFig7 reproduces Figure 7(a–f): for every dataset the sweep of the
// dispersion ratio ρ_K = V_K/R_K per estimator, with the convergence K.
func runFig7(r *Runner, w io.Writer) error {
	for _, spec := range datasets.All() {
		d, err := r.Evaluate(spec.Name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "-- %s --\n", spec.Name)
		tbl := newTable(w)
		tbl.row("Estimator", "K", "rho_K (x1e-3)", "V_K", "R_K", "converged")
		for _, ee := range d.Ests {
			for _, pt := range ee.Sweep.Curve {
				conv := ""
				if ee.Converged && pt.K == ee.ConvK {
					conv = "<== convergence"
				}
				tbl.row(ee.Name, pt.K,
					fmt.Sprintf("%.4f", pt.Rho*1000),
					fmt.Sprintf("%.3g", pt.VK),
					fmt.Sprintf("%.4f", pt.RK),
					conv)
			}
			if !ee.Converged {
				tbl.row(ee.Name, "-", "-", "-", "-", "did not converge by MaxK")
			}
		}
		tbl.flush()
	}
	return nil
}

// runFig8 reproduces Figure 8: the reliability each estimator reports as K
// grows, against MC at a very large K (the paper uses K=10000 ≈ 4×MaxK).
func runFig8(r *Runner, w io.Writer) error {
	const dataset = "BioMine"
	d, err := r.Evaluate(dataset)
	if err != nil {
		return err
	}
	refK := 4 * r.opts.MaxK
	mcRef, err := r.NewEstimator("MC", d.Graph)
	if err != nil {
		return err
	}
	refStats := convergence.Evaluate(mcRef, d.Pairs, refK, 1, r.opts.Seed+123)
	fmt.Fprintf(w, "MC reference at K=%d: R = %.4f (dashed line in the paper)\n", refK, refStats.RK())

	tbl := newTable(w)
	tbl.row("Estimator", "K", "R_K", "convergence")
	for _, ee := range d.Ests {
		for _, pt := range ee.Sweep.Curve {
			conv := ""
			if ee.Converged && pt.K == ee.ConvK {
				conv = "<== convergence"
			}
			tbl.row(ee.Name, pt.K, fmt.Sprintf("%.4f", pt.RK), conv)
		}
	}
	tbl.flush()
	return nil
}

// figTradeoff reproduces Figures 9–11: per sweep point, the relative error
// against the MC baseline, the per-query running time, and the online
// memory usage.
func figTradeoff(dataset string) func(r *Runner, w io.Writer) error {
	return func(r *Runner, w io.Writer) error {
		d, err := r.Evaluate(dataset)
		if err != nil {
			return err
		}
		tbl := newTable(w)
		tbl.row("Estimator", "K", "RelErr (%)", "Time (s)", "Memory (GB)")
		for _, name := range EstimatorSet {
			ee, err := d.Est(name)
			if err != nil {
				return err
			}
			est, err := r.NewEstimator(name, d.Graph)
			if err != nil {
				return err
			}
			for k := r.opts.InitialK; k <= ee.ConvK; k += r.opts.StepK {
				st := convergence.Evaluate(est, d.Pairs, k, r.opts.Repeats, r.opts.Seed+uint64(k))
				t := perQueryTime(est, d.Pairs, k)
				mem := measureMemory(est, d.Pairs, k)
				tbl.row(name, k,
					fmt.Sprintf("%.3f", d.RelErr(st.Mean)),
					secs(t), gb(mem))
			}
		}
		tbl.flush()
		return nil
	}
}

// runFig12 reproduces Figure 12: the online memory usage of each estimator
// at convergence, per dataset.
func runFig12(r *Runner, w io.Writer) error {
	tbl := newTable(w)
	header := []interface{}{"Dataset"}
	for _, n := range EstimatorSet {
		header = append(header, n)
	}
	tbl.row(header...)
	for _, spec := range datasets.All() {
		d, err := r.Evaluate(spec.Name)
		if err != nil {
			return err
		}
		row := []interface{}{spec.Name}
		for _, name := range EstimatorSet {
			ee, err := d.Est(name)
			if err != nil {
				return err
			}
			row = append(row, gb(ee.MemoryBytes))
		}
		tbl.row(row...)
	}
	tbl.flush()
	fmt.Fprintln(w, "(GB; expected ordering MC < LP+ < ProbTree < BFSSharing < RHH ≈ RSS)")
	return nil
}
