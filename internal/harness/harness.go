// Package harness orchestrates the paper's evaluation: it wires datasets,
// query workloads, estimators, and the convergence machinery into one
// runner per table and figure of the paper (see DESIGN.md §5 for the
// experiment index). Every experiment prints the same rows or series the
// paper reports, at a configurable scale.
package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"relcomp/internal/convergence"
	"relcomp/internal/core"
	"relcomp/internal/datasets"
	"relcomp/internal/uncertain"
	"relcomp/internal/workload"
)

// Options scales the evaluation. The zero value is not usable; start from
// Defaults (laptop scale) or PaperScale (the paper's settings, hours of
// compute).
type Options struct {
	Scale    float64 // dataset scale factor (1.0 = laptop default sizes)
	Pairs    int     // s-t pairs per dataset (paper: 100)
	Hops     int     // s-t shortest-path distance (paper: 2)
	Repeats  int     // T repetitions behind each variance (paper: 100)
	InitialK int     // first sample size (paper: 250)
	StepK    int     // sweep step (paper: 250)
	MaxK     int     // sweep cap (also the BFS Sharing index width bound)
	Rho      float64 // convergence threshold (paper: 0.001)
	Seed     uint64
}

// Defaults returns laptop-scale options: small enough that the full suite
// finishes in minutes, large enough that every qualitative finding of the
// paper reproduces.
func Defaults() Options {
	return Options{
		Scale:    1.0,
		Pairs:    20,
		Hops:     2,
		Repeats:  15,
		InitialK: 250,
		StepK:    250,
		MaxK:     2500,
		Rho:      convergence.DefaultRho,
		Seed:     42,
	}
}

// PaperScale returns the paper's settings (100 pairs, T=100). Running the
// full suite at this scale takes hours even on the scaled-down datasets.
func PaperScale() Options {
	o := Defaults()
	o.Pairs = 100
	o.Repeats = 100
	return o
}

// Runner caches datasets, workloads, and evaluations across experiments.
type Runner struct {
	opts   Options
	graphs map[string]*uncertain.Graph
	pairs  map[string][]workload.Pair // key: dataset/hops
	evals  map[string]*DatasetEval
}

// NewRunner returns a Runner with the given options (zero fields replaced
// by Defaults).
func NewRunner(opts Options) *Runner {
	d := Defaults()
	if opts.Scale <= 0 {
		opts.Scale = d.Scale
	}
	if opts.Pairs <= 0 {
		opts.Pairs = d.Pairs
	}
	if opts.Hops <= 0 {
		opts.Hops = d.Hops
	}
	if opts.Repeats <= 0 {
		opts.Repeats = d.Repeats
	}
	if opts.InitialK <= 0 {
		opts.InitialK = d.InitialK
	}
	if opts.StepK <= 0 {
		opts.StepK = d.StepK
	}
	if opts.MaxK <= 0 {
		opts.MaxK = d.MaxK
	}
	if opts.Rho <= 0 {
		opts.Rho = d.Rho
	}
	if opts.Seed == 0 {
		opts.Seed = d.Seed
	}
	return &Runner{
		opts:   opts,
		graphs: make(map[string]*uncertain.Graph),
		pairs:  make(map[string][]workload.Pair),
		evals:  make(map[string]*DatasetEval),
	}
}

// Options returns the runner's effective options.
func (r *Runner) Options() Options { return r.opts }

// Graph returns (generating and caching) the named dataset.
func (r *Runner) Graph(name string) (*uncertain.Graph, error) {
	if g, ok := r.graphs[name]; ok {
		return g, nil
	}
	spec, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	g := spec.Generate(r.opts.Scale, r.opts.Seed)
	r.graphs[name] = g
	return g, nil
}

// Pairs returns (generating and caching) the workload for a dataset at the
// given hop distance.
func (r *Runner) Pairs(name string, hops int) ([]workload.Pair, error) {
	key := fmt.Sprintf("%s/%d", name, hops)
	if p, ok := r.pairs[key]; ok {
		return p, nil
	}
	g, err := r.Graph(name)
	if err != nil {
		return nil, err
	}
	p, err := workload.Pairs(g, r.opts.Pairs, hops, r.opts.Seed+uint64(hops))
	if err != nil {
		return nil, err
	}
	r.pairs[key] = p
	return p, nil
}

// EstimatorSet names the six estimators in the paper's table order.
var EstimatorSet = []string{"MC", "BFSSharing", "ProbTree", "LP+", "RHH", "RSS"}

// ExtendedEstimatorSet appends the extensions beyond the paper — the
// word-packed PackMC and the multi-core shards — so table/figure sweeps
// and callers of NewEstimator can include them alongside the paper's six.
var ExtendedEstimatorSet = append(append([]string{}, EstimatorSet...),
	"PackMC", "PackMC256", "PackMC512", "ParallelMC", "ParallelPackMC")

// NewEstimator constructs one of the named estimators over g. BFS Sharing
// is built with index width = the runner's MaxK.
func (r *Runner) NewEstimator(name string, g *uncertain.Graph) (core.Estimator, error) {
	seed := r.opts.Seed + 1
	switch name {
	case "MC":
		return core.NewMC(g, seed), nil
	case "PackMC":
		return core.NewPackMC(g, seed), nil
	case "PackMC256":
		return core.NewWidePackMC(g, seed, 256), nil
	case "PackMC512":
		return core.NewWidePackMC(g, seed, 512), nil
	case "ParallelMC":
		return core.NewParallelMC(g, seed, 0), nil
	case "ParallelPackMC":
		return core.NewParallelPackMC(g, seed, 0), nil
	case "BFSSharing":
		return core.NewBFSSharing(g, seed, r.opts.MaxK), nil
	case "ProbTree":
		return core.NewProbTree(g, seed), nil
	case "LP+":
		return core.NewLazyProp(g, seed), nil
	case "LP":
		return core.NewLazyPropOriginal(g, seed), nil
	case "RHH":
		return core.NewRHH(g, seed), nil
	case "RSS":
		return core.NewRSS(g, seed), nil
	case "ProbTree+LP+":
		return core.NewProbTreeWith(g, seed, core.DefaultTreeWidth, func(qg *uncertain.Graph, s uint64) core.Estimator {
			return core.NewLazyProp(qg, s)
		}), nil
	case "ProbTree+RHH":
		return core.NewProbTreeWith(g, seed, core.DefaultTreeWidth, func(qg *uncertain.Graph, s uint64) core.Estimator {
			return core.NewRHH(qg, s)
		}), nil
	case "ProbTree+RSS":
		return core.NewProbTreeWith(g, seed, core.DefaultTreeWidth, func(qg *uncertain.Graph, s uint64) core.Estimator {
			return core.NewRSS(qg, s)
		}), nil
	}
	return nil, fmt.Errorf("harness: unknown estimator %q", name)
}

// convConfig translates the options into a convergence.Config.
func (r *Runner) convConfig() convergence.Config {
	return convergence.Config{
		InitialK: r.opts.InitialK,
		StepK:    r.opts.StepK,
		MaxK:     r.opts.MaxK,
		Repeats:  r.opts.Repeats,
		Rho:      r.opts.Rho,
		SeedBase: r.opts.Seed + 7,
	}
}

// timeIt measures fn's wall time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// timeQueries measures the total wall time of running est once on every
// pair with sample size k, excluding index resampling.
func timeQueries(est core.Estimator, pairs []workload.Pair, k int) time.Duration {
	var total time.Duration
	for _, p := range pairs {
		total += timeIt(func() { est.Estimate(p.S, p.T, k) })
	}
	return total
}

// table is a small aligned-text table writer.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(r *Runner, w io.Writer) error
}

var registry []Experiment

func register(name, title string, run func(r *Runner, w io.Writer) error) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// Experiments returns every registered experiment sorted by name.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (see `experiments -list`)", name)
}

// RunAll executes every experiment in registration (paper) order.
func RunAll(r *Runner, w io.Writer) error {
	for _, e := range registry {
		fmt.Fprintf(w, "=== %s — %s ===\n", e.Name, e.Title)
		if err := e.Run(r, w); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
