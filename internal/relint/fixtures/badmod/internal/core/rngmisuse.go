// Package core is a deliberately non-compliant fixture: it lives in an
// internal/core path and reaches for math/rand, which detrand must
// reject. CI runs relint over this module and asserts a nonzero exit,
// proving the vettool wiring actually fails the build on violations.
package core

import "math/rand"

// Draw is the canonical violation: global, seed-free randomness inside
// a package whose outputs must be replayable from (seed, round, pack).
func Draw() float64 {
	return rand.Float64()
}
