package relint

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// Nopanic enforces the library panic policy. In internal/snapshot — the
// package that parses untrusted bytes — panicking is forbidden outright
// (the corruption tests assert "never a panic"). In every other library
// package a panic is allowed only as a documented invariant violation:
// either the enclosing function is a Must* helper, or the panic message
// is a constant prefixed with the package name ("core: ...") so the
// contract it enforces is stated at the site. Data-dependent panics like
// panic(err) are flagged — they launder runtime errors into crashes.
var Nopanic = &Analyzer{
	Name: "nopanic",
	Doc: "library panics must be documented invariant violations (pkg-prefixed " +
		"constant message or Must* helper); decode packages never panic",
	SkipMainPkgs: true,
	Run:          runNopanic,
}

var mustFuncRe = regexp.MustCompile(`(?i)^must`)

func runNopanic(p *Pass) error {
	decodePkg := PathHasSuffix(p.Path, "internal/snapshot")
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isMust := mustFuncRe.MatchString(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !p.IsBuiltin(call, "panic") {
					return true
				}
				switch {
				case decodePkg:
					p.Reportf(call.Pos(),
						"panic in decode package %s: untrusted input must surface as a wrapped ErrCorrupt/ErrVersion error", p.Pkg.Name())
				case isMust:
					// Must* helpers panic by contract.
				case len(call.Args) == 1 && isInvariantMessage(p, call.Args[0]):
					// Documented invariant violation.
				default:
					p.Reportf(call.Pos(),
						"undocumented panic in library package %s: use a %q-prefixed constant message for invariant violations, or return an error", p.Pkg.Name(), p.Pkg.Name()+": ")
				}
				return true
			})
		}
	}
	return nil
}

// isInvariantMessage reports whether the panic argument is a constant
// string (or fmt.Sprintf of one) carrying the package-name prefix that
// marks documented invariant panics, e.g. panic("core: width must be >= 1").
func isInvariantMessage(p *Pass, arg ast.Expr) bool {
	prefix := p.Pkg.Name() + ": "
	switch arg := ast.Unparen(arg).(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(arg.Value)
		return err == nil && strings.HasPrefix(s, prefix)
	case *ast.CallExpr:
		fn := p.Callee(arg)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
			return false
		}
		if len(arg.Args) == 0 {
			return false
		}
		lit, ok := ast.Unparen(arg.Args[0]).(*ast.BasicLit)
		if !ok {
			return false
		}
		s, err := strconv.Unquote(lit.Value)
		return err == nil && strings.HasPrefix(s, prefix)
	}
	return false
}
