// Package lib is the directive-semantics fixture, checked
// programmatically (not via want comments) by TestDirectives.
package lib

import "errors"

func suppressedSameLine() {
	panic(errors.New("a")) //lint:allow nopanic reviewed: fixture case
}

func suppressedLineAbove() {
	//lint:allow nopanic reviewed: fixture case
	panic(errors.New("b"))
}

func missingReason() {
	//lint:allow nopanic
	panic(errors.New("c"))
}

func wrongAnalyzer() {
	panic(errors.New("d")) //lint:allow detrand reason for the wrong analyzer
}

func tooFarAbove() {
	//lint:allow nopanic two lines up does not count

	panic(errors.New("e"))
}
