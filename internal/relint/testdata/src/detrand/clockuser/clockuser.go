// Package clockuser is outside detrand's scope (its import path has no
// deterministic-package suffix), so wall-clock reads are legal here.
package clockuser

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}
