// Package core is a detrand fixture standing in for a deterministic
// estimator package (import path suffix internal/core).
package core

import (
	"math/rand" // want "import of math/rand in a deterministic package"
	"time"
)

func sample() float64 {
	_ = time.Now() // want "wall-clock read time.Now"
	var t0 time.Time
	_ = time.Since(t0) // want "wall-clock read time.Since"
	_ = time.Until(t0) // want "wall-clock read time.Until"
	return rand.Float64()
}

func deadlinePacing() time.Time {
	// The documented escape hatch: anytime deadline stopping may read the
	// clock, with the waiver stating so at the site.
	return time.Now() //lint:allow detrand deadline stopping is documented wall-clock-dependent
}

func notTheClock() {
	// Same-named methods on other types stay legal.
	var c fakeClock
	_ = c.Now()
}

type fakeClock struct{}

func (fakeClock) Now() int { return 0 }
