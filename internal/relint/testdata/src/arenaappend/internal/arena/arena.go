// Package arena is the fixture stub of the real internal/arena: defined
// slice types backed by recycled slabs. Inside this package the slab
// machinery may grow buffers, so its own appends are exempt.
package arena

type (
	Uint64s  []uint64
	NodeIDs  []int32
	Float64s []float64
)

type Arena struct {
	u64 []uint64
}

func (a *Arena) Uint64s(n int) Uint64s {
	if len(a.u64) < n {
		a.u64 = append(a.u64, make([]uint64, n-len(a.u64))...) // slab growth: in bounds here
	}
	return Uint64s(a.u64[:n])
}

func (a *Arena) grow(extra Uint64s) Uint64s {
	return append(extra, 0) // still the arena package: exempt
}
