// Package use exercises arenaappend from outside internal/arena.
package use

import "arenaappend/internal/arena"

func violations(a *arena.Arena) arena.Uint64s {
	buf := a.Uint64s(8)
	buf = append(buf, 1) // want "append on arena-owned arena.Uint64s"
	reuse := buf[:0]
	reuse = append(reuse, 2)         // want "append on arena-owned arena.Uint64s"
	_ = append(a.Uint64s(4), buf...) // want "append on arena-owned arena.Uint64s"
	return reuse
}

func typed(ids arena.NodeIDs, fs arena.Float64s) {
	ids = append(ids, 7) // want "append on arena-owned arena.NodeIDs"
	fs = append(fs, 0.5) // want "append on arena-owned arena.Float64s"
	_, _ = ids, fs
}

func legal(a *arena.Arena) []uint64 {
	buf := a.Uint64s(8)
	buf[0] = 1 // writes in range are fine; only growth is banned
	heap := make([]uint64, 0, len(buf))
	heap = append(heap, buf...) // appending arena data to a heap slice is fine

	// Converting to the raw slice type sheds the defined type: the
	// deliberate, greppable escape hatch.
	raw := []uint64(buf)
	raw = append(raw, 9)
	return heap
}
