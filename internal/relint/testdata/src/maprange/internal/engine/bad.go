// Package engine is a maprange fixture standing in for a deterministic
// package (import path suffix internal/engine).
package engine

import "sort"

func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { //lint:allow maprange keys are collected then sorted before any order can escape
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRangeIsFine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

type counts map[string]int

func namedMapType(c counts) int {
	total := 0
	for range c { // want "map iteration order is randomized"
		total++
	}
	return total
}
