// Package engine is a ctxflow fixture standing in for the engine package
// (import path suffix internal/engine).
package engine

import "context"

func withCtx(ctx context.Context) {
	_ = context.Background() // want "context.Background inside a function that already receives a context.Context"
	_ = context.TODO()       // want "context.TODO inside a function that already receives a context.Context"
	_ = ctx
}

func closureInheritsObligation(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want "context.Background inside a function that already receives a context.Context"
	}
}

func entryPointMintsItsOwn() {
	// No ctx parameter: this is where a context may legitimately begin.
	_ = context.Background()
}

func nilDefaulting(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx compatibility defaulting at the API boundary itself
	}
	return ctx
}
