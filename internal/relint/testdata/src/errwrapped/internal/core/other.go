package core

import "fmt"

// loadOther lives in a file that is not on the errwrapped decode list
// (only snapshot.go and index_io.go are), so it stays out of scope even
// with a decode-shaped name.
func loadOther(b []byte) error {
	return fmt.Errorf("core: unreadable: %d bytes", len(b))
}
