// Package core is an errwrapped fixture for the file-scoped core-side
// loaders: only decode-named functions in internal/core/snapshot.go are
// in scope; write-side functions keep their plain error style.
package core

import "fmt"

func loadIndex(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("core: empty index") // want "fmt.Errorf without %w in decode path loadIndex"
	}
	return nil
}

func indexFromData(n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative count %d", n) // want "fmt.Errorf without %w in decode path indexFromData"
	}
	return nil
}

func writeIndex(n int) error {
	if n < 0 {
		return fmt.Errorf("core: cannot write %d entries", n) // write side: out of scope
	}
	return nil
}
