// Package snapshot is an errwrapped fixture standing in for the decode
// package (import path suffix internal/snapshot): every function here is
// a decode path.
package snapshot

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the one legal errors.New site.
var (
	ErrCorrupt = errors.New("snapshot: corrupt file")
	ErrVersion = errors.New("snapshot: unsupported format version")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func decodeHeader(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("short header: %d bytes", len(b)) // want "fmt.Errorf without %w in decode path decodeHeader"
	}
	if b[0] != 'R' {
		return errors.New("bad magic") // want "errors.New in decode path decodeHeader"
	}
	if b[1] == 0 {
		panic("zero section") // want "panic in decode path decodeHeader"
	}
	if b[2] == 0 {
		return corruptf("empty section table")
	}
	return fmt.Errorf("%w: file version %d", ErrVersion, b[3])
}

func writerSideAssertion(typ uint32) {
	if typ == 0 {
		//lint:allow errwrapped write-side builder invariant, never sees untrusted bytes
		panic(fmt.Sprintf("snapshot: reserved section type %#x", typ))
	}
}
