// Package snapshot is a nopanic fixture for the decode package: no panic
// is acceptable on the untrusted-bytes path, documented or not.
package snapshot

func decode(b []byte) byte {
	if len(b) == 0 {
		panic("snapshot: empty input") // want "panic in decode package snapshot"
	}
	return b[0]
}
