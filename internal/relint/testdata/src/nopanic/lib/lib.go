// Package lib is a nopanic fixture for an ordinary library package: a
// panic must be a documented invariant violation — a "lib: "-prefixed
// constant message or a Must* helper — never a laundered runtime error.
package lib

import (
	"errors"
	"fmt"
)

func documentedInvariant(width int) {
	if width < 1 {
		panic("lib: width must be >= 1")
	}
}

func documentedSprintf(width int) {
	if width < 1 {
		panic(fmt.Sprintf("lib: width %d must be >= 1", width))
	}
}

func MustParse(s string) int {
	if s == "" {
		panic(errors.New("empty")) // Must* helpers panic by contract
	}
	return len(s)
}

func launderedError() {
	if err := errors.New("boom"); err != nil {
		panic(err) // want "undocumented panic in library package lib"
	}
}

func bareMessage() {
	panic("something went wrong") // want "undocumented panic in library package lib"
}

func wrongPrefix() {
	panic("otherpkg: not ours") // want "undocumented panic in library package lib"
}

func waived(v any) {
	panic(v) //lint:allow nopanic fixture demonstrating a reviewed re-raise
}
