// Command mainpkg shows nopanic exempting binaries: a main package owns
// its process and may crash on startup errors.
package main

import "errors"

func main() {
	if err := errors.New("usage"); err != nil {
		panic(err)
	}
}
