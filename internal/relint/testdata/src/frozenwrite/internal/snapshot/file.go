// Package snapshot is a frozenwrite fixture stub of the real snapshot
// container (import path suffix internal/snapshot): its File accessors
// hand out slices that may alias a read-only memory mapping.
package snapshot

type File struct {
	words []uint64
}

func (f *File) Uint64s(typ uint32) ([]uint64, error) { return f.words, nil }

func (f *File) Bytes(typ uint32) ([]byte, error) { return nil, nil }

// Count returns a scalar: not a section slice, so not a frozen source.
func (f *File) Count(typ uint32) int { return len(f.words) }
