// Package uncertain is a frozenwrite fixture stub of the graph package
// (import path suffix internal/uncertain): RawCSR columns alias graph or
// mapped storage and must never be written.
package uncertain

type NodeID int32

type RawCSR struct {
	NumNodes int
	OutIndex []int32
	OutTo    []NodeID
}
