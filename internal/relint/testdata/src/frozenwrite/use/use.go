// Package use exercises frozenwrite from outside internal/snapshot.
package use

import (
	"frozenwrite/internal/snapshot"
	"frozenwrite/internal/uncertain"
)

func directWrite(f *snapshot.File) {
	mustUint64s(f)[0] = 1 // fine: helper copies are not tracked
}

func accessorWrites(f *snapshot.File) uint64 {
	words, _ := f.Uint64s(1)
	words[0] = 7             // want "write through a frozen snapshot-backed slice"
	words[1]++               // want "write through a frozen snapshot-backed slice"
	copy(words, []uint64{1}) // want "copy into a frozen snapshot-backed slice"
	_ = append(words, 2)     // want "append into a frozen snapshot-backed slice"
	local := make([]uint64, 4)
	copy(local, words) // reading a frozen slice is fine
	return words[0]
}

func rawCSRWrites(r uncertain.RawCSR) {
	r.OutTo[0] = 3    // want "write through a frozen snapshot-backed slice"
	r.OutIndex[1] = 2 // want "write through a frozen snapshot-backed slice"
	r.NumNodes = 9    // scalar field: not a frozen column
}

func scratchRebuild(f *snapshot.File) {
	words, _ := f.Uint64s(1)
	scratch := make([]uint64, len(words))
	copy(scratch, words)
	scratch[0] = 1 // heap copy: writable
	//lint:allow frozenwrite fixture demonstrating the escape hatch on a heap-loaded, provably unmapped section
	words[0] = scratch[0]
}

func mustUint64s(f *snapshot.File) []uint64 {
	v, err := f.Uint64s(1)
	if err != nil {
		return nil
	}
	out := make([]uint64, len(v))
	copy(out, v)
	return out
}
