package use

import (
	"syscall"
	"unsafe" // want "import of unsafe outside internal/snapshot"
)

func alias(x *uint16) byte {
	return *(*byte)(unsafe.Pointer(x))
}

func mapSomething(fd int) ([]byte, error) {
	return syscall.Mmap(fd, 0, 4096, syscall.PROT_READ, syscall.MAP_SHARED) // want "syscall.Mmap outside internal/snapshot"
}
