package relint

import (
	"go/ast"
	"strconv"
)

// Detrand enforces the determinism contract of the estimator packages:
// every sampler answer is a pure function of (seed, round, pack, edge), so
// nothing below the engine API may observe ambient randomness or the wall
// clock. All variates must come from internal/rng counter streams.
//
// Deadline-based anytime stopping is the documented exception — it is
// explicitly nondeterministic (deadline results are never cached) — and
// its few clock reads carry //lint:allow detrand directives.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand and wall-clock reads in deterministic estimator packages; " +
		"randomness must flow through internal/rng counter streams",
	PkgSuffixes: []string{
		"internal/core",
		"internal/rng",
		"internal/uncertain",
		"internal/bitvec",
		"internal/repworld",
	},
	Run: runDetrand,
}

func runDetrand(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				p.Reportf(imp.Pos(),
					"import of %s in a deterministic package: draw variates from internal/rng counter streams instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.Callee(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Until":
				p.Reportf(call.Pos(),
					"wall-clock read time.%s in a deterministic package: sampler results must be a pure function of the counter-based seed", fn.Name())
			}
			return true
		})
	}
	return nil
}
