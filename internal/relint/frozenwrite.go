package relint

import (
	"go/ast"
	"go/types"
)

// Frozenwrite enforces the frozen-index contract: slices handed out by
// internal/snapshot section accessors and the uncertain.RawCSR columns
// alias a read-only memory mapping — a write through them is a SIGSEGV on
// mapped files and silent index corruption on heap loads. It also confines
// the machinery that makes aliasing possible (package unsafe,
// syscall.Mmap) to internal/snapshot itself.
var Frozenwrite = &Analyzer{
	Name: "frozenwrite",
	Doc: "no writes through snapshot section slices or uncertain.RawCSR columns; " +
		"unsafe and syscall.Mmap stay confined to internal/snapshot",
	SkipPkgSuffixes: []string{"internal/snapshot"},
	Run:             runFrozenwrite,
}

func runFrozenwrite(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			if imp.Path.Value == `"unsafe"` {
				p.Reportf(imp.Pos(),
					"import of unsafe outside internal/snapshot: pointer aliasing of mapped memory is confined to the snapshot package")
			}
		}
		frozen := frozenLocals(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isFrozenExpr(p, frozen, ix.X) {
						p.Reportf(lhs.Pos(),
							"write through a frozen snapshot-backed slice: the backing array may be a read-only memory mapping")
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isFrozenExpr(p, frozen, ix.X) {
					p.Reportf(n.Pos(),
						"write through a frozen snapshot-backed slice: the backing array may be a read-only memory mapping")
				}
			case *ast.CallExpr:
				if (p.IsBuiltin(n, "copy") || p.IsBuiltin(n, "append")) &&
					len(n.Args) > 0 && isFrozenExpr(p, frozen, n.Args[0]) {
					p.Reportf(n.Pos(),
						"%s into a frozen snapshot-backed slice: the backing array may be a read-only memory mapping",
						ast.Unparen(n.Fun).(*ast.Ident).Name)
				}
				if fn := p.Callee(n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "syscall" {
					switch fn.Name() {
					case "Mmap", "Munmap", "Mprotect":
						p.Reportf(n.Pos(),
							"syscall.%s outside internal/snapshot: memory mapping is confined to the snapshot package", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// frozenLocals collects the objects of local variables bound directly from
// a frozen-source call (`words, err := f.Uint64s(...)`). One lexical pass,
// no flow analysis: rebinding a frozen name to something safe later in the
// function keeps it flagged — the fix is a fresh name, which is clearer
// anyway.
func frozenLocals(p *Pass, f *ast.File) map[types.Object]bool {
	frozen := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isFrozenSource(p, call) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				frozen[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				frozen[obj] = true
			}
		}
		return true
	})
	return frozen
}

// isFrozenSource reports whether call is a snapshot.File section accessor:
// any method on internal/snapshot's File type whose first result is a
// slice (Bytes, Uint64s, Int32s, Float64s, and their NoVerify variants).
func isFrozenSource(p *Pass, call *ast.CallExpr) bool {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil || !PathHasSuffix(fn.Pkg().Path(), "internal/snapshot") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := derefNamed(sig.Recv().Type())
	if !ok || named.Obj().Name() != "File" {
		return false
	}
	if sig.Results().Len() == 0 {
		return false
	}
	_, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice)
	return isSlice
}

// isFrozenExpr reports whether e denotes frozen snapshot-backed storage:
// a direct accessor call, a local bound from one, or a column selected
// from an uncertain.RawCSR value (which aliases graph or mapped storage).
func isFrozenExpr(p *Pass, frozen map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return isFrozenSource(p, e)
	case *ast.Ident:
		obj := p.Info.Uses[e]
		return obj != nil && frozen[obj]
	case *ast.SelectorExpr:
		named, ok := derefNamed(p.Info.TypeOf(e.X))
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil || !PathHasSuffix(obj.Pkg().Path(), "internal/uncertain") || obj.Name() != "RawCSR" {
			return false
		}
		_, isSlice := p.Info.TypeOf(e).Underlying().(*types.Slice)
		return isSlice
	}
	return false
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
