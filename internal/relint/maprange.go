package relint

import (
	"go/ast"
	"go/types"
)

// Maprange enforces order-stabilized iteration in the packages whose
// outputs must be bit-identical across runs: Go randomizes map iteration
// order, so any `range` over a map in a deterministic package is flagged.
// Iterate a sorted key slice instead, or — when the loop provably cannot
// leak its order (e.g. a commutative reduction) — waive the finding with
// //lint:allow maprange <reason>.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc: "forbid map iteration in deterministic packages; iterate sorted keys " +
		"so request/target set order never depends on map hash seeds",
	PkgSuffixes: []string{
		"internal/core",
		"internal/engine",
		"internal/rng",
		"internal/snapshot",
		"internal/uncertain",
		"internal/bitvec",
		"internal/bounds",
	},
	Run: runMaprange,
}

func runMaprange(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(rs.Pos(),
					"map iteration order is randomized: iterate a sorted key slice so results stay bit-identical across runs")
			}
			return true
		})
	}
	return nil
}
