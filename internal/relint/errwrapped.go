package relint

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// Errwrapped enforces the corruption-error contract of the decode paths:
// a malformed or version-skewed snapshot must surface as an error wrapping
// ErrCorrupt or ErrVersion (callers dispatch on errors.Is), and decode
// code must never panic on untrusted bytes. Concretely, inside decode
// functions every fmt.Errorf must wrap with %w (use corruptf, or wrap a
// sentinel directly), errors.New is forbidden, and panic is forbidden.
//
// Scope: all of internal/snapshot, plus the decode functions of the
// core-side loaders (internal/core/snapshot.go, internal/core/index_io.go)
// — functions named like Load*/Open*/Read*/new*, or *FromFile/*FromData.
var Errwrapped = &Analyzer{
	Name: "errwrapped",
	Doc: "decode-path errors must wrap ErrCorrupt/ErrVersion with %w; " +
		"no naked fmt.Errorf, errors.New, or panic on untrusted bytes",
	PkgSuffixes: []string{"internal/snapshot"},
	ExtraFileSuffixes: []string{
		"internal/core/snapshot.go",
		"internal/core/index_io.go",
	},
	Run: runErrwrapped,
}

// decodeFuncRe identifies decode entry points in the extra (core-side)
// files. Inside internal/snapshot every function is a decode function.
var decodeFuncRe = regexp.MustCompile(`(?i)^(load|open|read|decode|parse|unmarshal|new)|from(file|data|bytes|snapshot|reader)`)

func runErrwrapped(p *Pass) error {
	inSnapshotPkg := matchesAny(p.Path, p.Analyzer.PkgSuffixes)
	for _, f := range p.Files {
		if p.IsTestFile(f) || !p.InScopeFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !inSnapshotPkg && !decodeFuncRe.MatchString(fd.Name.Name) {
				continue
			}
			checkDecodeFunc(p, fd)
		}
	}
	return nil
}

func checkDecodeFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p.IsBuiltin(call, "panic") {
			p.Reportf(call.Pos(),
				"panic in decode path %s: corrupted input must return an error wrapping ErrCorrupt, never panic", fd.Name.Name)
			return true
		}
		fn := p.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "errors.New":
			p.Reportf(call.Pos(),
				"errors.New in decode path %s: wrap ErrCorrupt/ErrVersion with %%w so errors.Is dispatch keeps working", fd.Name.Name)
		case "fmt.Errorf":
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true // non-constant format: can't prove either way
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			p.Reportf(call.Pos(),
				"fmt.Errorf without %%w in decode path %s: wrap ErrCorrupt/ErrVersion (e.g. corruptf) so errors.Is dispatch keeps working", fd.Name.Name)
		}
		return true
	})
}
