package relint

// All returns the full invariant-checker pack in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrand,
		Maprange,
		Ctxflow,
		Frozenwrite,
		Arenaappend,
		Errwrapped,
		Nopanic,
	}
}
