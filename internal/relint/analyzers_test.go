package relint_test

import (
	"testing"

	"relcomp/internal/relint"
	"relcomp/internal/relint/relinttest"
)

func TestDetrand(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Detrand, "detrand/internal/core")
}

func TestDetrandOutOfScope(t *testing.T) {
	// Wall-clock reads outside the deterministic packages are legal.
	relinttest.Run(t, "testdata", relint.Detrand, "detrand/clockuser")
}

func TestMaprange(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Maprange, "maprange/internal/engine")
}

func TestCtxflow(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Ctxflow, "ctxflow/internal/engine")
}

func TestFrozenwrite(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Frozenwrite, "frozenwrite/use")
}

func TestFrozenwriteExemptsSnapshotPkg(t *testing.T) {
	// The snapshot package itself owns the mapping machinery: its own
	// writes (and its unsafe usage in the real repo) are in bounds.
	relinttest.Run(t, "testdata", relint.Frozenwrite, "frozenwrite/internal/snapshot")
}

func TestArenaappend(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Arenaappend, "arenaappend/use")
}

func TestArenaappendExemptsArenaPkg(t *testing.T) {
	// The arena package owns the slab machinery; its own growth appends
	// are the one legal site.
	relinttest.Run(t, "testdata", relint.Arenaappend, "arenaappend/internal/arena")
}

func TestErrwrapped(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Errwrapped, "errwrapped/internal/snapshot")
}

func TestErrwrappedCoreFileScope(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Errwrapped, "errwrapped/internal/core")
}

func TestNopanicLibrary(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Nopanic, "nopanic/lib")
}

func TestNopanicDecodePackage(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Nopanic, "nopanic/internal/snapshot")
}

func TestNopanicSkipsMainPackages(t *testing.T) {
	relinttest.Run(t, "testdata", relint.Nopanic, "nopanic/mainpkg")
}
