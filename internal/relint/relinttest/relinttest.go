// Package relinttest is the golden-file harness for the relint analyzer
// pack, modeled on golang.org/x/tools/go/analysis/analysistest but built
// on the standard library only. Fixture packages live under
// testdata/src/<importpath>/; imports between fixture packages resolve
// within that tree, everything else loads from the standard library via
// the source importer. Expected findings are declared in the fixtures as
//
//	someCode() // want "regexp" "another regexp"
//
// comments on the flagged line: every diagnostic must match a want on its
// line, and every want must be matched by a diagnostic.
package relinttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"relcomp/internal/relint"
)

// Run loads testdata/src/<path> and checks a's diagnostics against the
// fixture's want comments.
func Run(t *testing.T, testdata string, a *relint.Analyzer, path string) {
	t.Helper()
	pkg := Load(t, testdata, path)
	diags, err := relint.Run(pkg, []*relint.Analyzer{a})
	if err != nil {
		t.Fatalf("relint.Run(%s, %s): %v", a.Name, path, err)
	}
	checkWants(t, pkg, diags)
}

// Load parses and type-checks the fixture package at testdata/src/<path>.
func Load(t *testing.T, testdata, path string) *relint.Package {
	t.Helper()
	l := &loader{
		root: filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*types.Package),
		std:  importer.For("source", nil),
	}
	pkg, files, info, err := l.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return &relint.Package{Path: path, Fset: l.fset, Files: files, Types: pkg, Info: info}
}

type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
	std  types.Importer
}

// Import resolves fixture-tree packages first, then falls back to the
// standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		pkg, _, _, err := l.load(path)
		return pkg, err
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[path] = pkg
	return pkg, files, info, nil
}

// A want is one expected-diagnostic declaration.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

func checkWants(t *testing.T, pkg *relint.Package, diags []relint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
