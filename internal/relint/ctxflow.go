package relint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context threading below the engine API surface: once a
// function has received a context.Context, minting a fresh
// context.Background()/context.TODO() severs the caller's cancellation
// and deadline from every sampler loop underneath it — the anytime
// stopping layer silently stops honoring ctx. The received context must
// be threaded through instead.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "functions that receive a context.Context must thread it down; " +
		"no context.Background()/context.TODO() below the engine API surface",
	PkgSuffixes: []string{"internal/engine"},
	Run:         runCtxflow,
}

func runCtxflow(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Walk(&ctxVisitor{p: p}, f)
	}
	return nil
}

// ctxVisitor walks with a "some enclosing function has a ctx parameter"
// flag; each function node returns a child visitor with the flag updated,
// so closures inherit their enclosing function's obligation.
type ctxVisitor struct {
	p     *Pass
	inCtx bool
}

func (v *ctxVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return &ctxVisitor{p: v.p, inCtx: v.inCtx || v.hasCtxParam(n.Type)}
	case *ast.FuncLit:
		return &ctxVisitor{p: v.p, inCtx: v.inCtx || v.hasCtxParam(n.Type)}
	case *ast.CallExpr:
		if !v.inCtx {
			return v
		}
		fn := v.p.Callee(n)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			switch fn.Name() {
			case "Background", "TODO":
				v.p.Reportf(n.Pos(),
					"context.%s inside a function that already receives a context.Context: thread the caller's ctx so cancellation and deadlines reach the samplers", fn.Name())
			}
		}
	}
	return v
}

func (v *ctxVisitor) hasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(v.p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
