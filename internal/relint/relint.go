// Package relint is the repo's invariant-checker pack: a small set of
// static analyzers that mechanically enforce the contracts the engine's
// bit-identical determinism guarantee rests on — counter-based rng
// streams, order-stabilized iteration, context threading, frozen
// mmap-backed indexes, and typed corruption errors in decode paths.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is built on the standard library
// only, so the module stays dependency-free: cmd/relint drives the pack
// either standalone over Go package patterns or as a `go vet -vettool`.
//
// Suppression: a finding may be waived with a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a directive without one is itself reported — so every
// escape hatch is documented at the call site.
package relint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer checks one invariant. Scope is declarative so the runner,
// the tests, and the docs agree on where a contract applies.
type Analyzer struct {
	Name string
	Doc  string

	// PkgSuffixes limits the analyzer to packages whose import path ends
	// with one of these path suffixes. Empty means every package.
	PkgSuffixes []string
	// SkipPkgSuffixes exempts packages (checked after PkgSuffixes).
	SkipPkgSuffixes []string
	// ExtraFileSuffixes pulls single files of otherwise out-of-scope
	// packages into scope (matched against the slash-separated file path).
	ExtraFileSuffixes []string
	// SkipMainPkgs exempts package main (binaries own their process and
	// may panic, time, and mint contexts at will).
	SkipMainPkgs bool

	Run func(*Pass) error
}

// A Package is one loaded, type-checked package — produced either by the
// vettool driver (export data) or by the test loader (source).
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Diagnostic is one reported finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file. Test code exercises
// invariant boundaries deliberately (clock-based deadlines, corrupted
// columns), so every analyzer in the pack skips it.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// Callee resolves the *types.Func a call expression invokes, or nil for
// builtins, conversions, and indirect calls.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltin reports whether a call invokes the named builtin.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// PathHasSuffix reports whether import or file path ends with suffix on a
// path-segment boundary.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func matchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// applies reports whether a runs on pkg at all; file-level scoping
// (ExtraFileSuffixes, test files) is the analyzer's own job.
func (a *Analyzer) applies(pkg *Package) bool {
	if a.SkipMainPkgs && pkg.Types != nil && pkg.Types.Name() == "main" {
		return false
	}
	if matchesAny(pkg.Path, a.SkipPkgSuffixes) {
		return false
	}
	if len(a.PkgSuffixes) == 0 {
		return true
	}
	if matchesAny(pkg.Path, a.PkgSuffixes) {
		return true
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if matchesAny(name, a.ExtraFileSuffixes) {
			return true
		}
	}
	return false
}

// InScopeFile reports whether the analyzer's package-level scope covers f,
// or f is explicitly pulled in via ExtraFileSuffixes. Analyzers with
// ExtraFileSuffixes call this to avoid checking unrelated files of a
// package that is in scope only through one of its files.
func (p *Pass) InScopeFile(f *ast.File) bool {
	a := p.Analyzer
	if len(a.PkgSuffixes) == 0 || matchesAny(p.Path, a.PkgSuffixes) {
		return true
	}
	return matchesAny(p.Fset.Position(f.Package).Filename, a.ExtraFileSuffixes)
}

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
}

var directiveRe = regexp.MustCompile(`^//lint:allow\s+(\S+)(?:\s+(.*))?$`)

// collectDirectives maps filename → line → directives found there.
func collectDirectives(pkg *Package) map[string]map[int][]directive {
	out := make(map[string]map[int][]directive)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], directive{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					pos:      pos,
				})
			}
		}
	}
	return out
}

// Run executes every in-scope analyzer over pkg, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.applies(pkg) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("relint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	dirs := collectDirectives(pkg)
	allowed := func(d Diagnostic) bool {
		byLine := dirs[d.Pos.Filename]
		if byLine == nil {
			return false
		}
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range byLine[line] {
				if dir.analyzer == d.Analyzer && dir.reason != "" {
					return true
				}
			}
		}
		return false
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed(d) {
			kept = append(kept, d)
		}
	}

	// A directive without a reason is a contract violation of its own:
	// the escape hatch exists so that waivers stay documented.
	for _, byLine := range dirs {
		for _, ds := range byLine {
			for _, dir := range ds {
				if dir.reason == "" {
					kept = append(kept, Diagnostic{
						Pos:      dir.pos,
						Analyzer: "relint",
						Message:  fmt.Sprintf("lint:allow %s directive is missing its mandatory reason", dir.analyzer),
					})
				}
			}
		}
	}

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}
