package relint

import (
	"go/ast"
	"go/types"
)

// Arenaappend enforces internal/arena's append ban: the allocator hands
// out defined slice types (arena.Uint64s and friends) whose backing
// storage is a shared bump-allocated slab. An append either grows in
// place and overlaps the slab's next allocation, or reallocates onto the
// heap so the "arena-backed" buffer silently stops being one; both are
// bugs that only surface as data corruption under load. Inside the arena
// package itself the slab machinery may grow buffers; everywhere else
// append on an arena-owned type is a vet failure.
var Arenaappend = &Analyzer{
	Name: "arenaappend",
	Doc: "no append on arena-owned slice types outside internal/arena; " +
		"growth corrupts the slab or silently migrates the buffer to the heap",
	SkipPkgSuffixes: []string{"internal/arena"},
	Run:             runArenaappend,
}

func runArenaappend(p *Pass) error {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.IsBuiltin(call, "append") || len(call.Args) == 0 {
				return true
			}
			if name, ok := arenaOwnedType(p, call.Args[0]); ok {
				p.Reportf(call.Pos(),
					"append on arena-owned %s: the buffer belongs to a recycled slab — size it up front with the arena allocator instead",
					name)
			}
			return true
		})
	}
	return nil
}

// arenaOwnedType reports whether e's type is one of internal/arena's
// defined slice types (directly or re-sliced — slicing preserves the
// defined type). A conversion to the raw slice type sheds the name and
// with it the ban; that is the deliberate, greppable escape hatch.
func arenaOwnedType(p *Pass, e ast.Expr) (string, bool) {
	named, ok := p.Info.TypeOf(e).(*types.Named)
	if !ok {
		return "", false
	}
	if _, isSlice := named.Underlying().(*types.Slice); !isSlice {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !PathHasSuffix(obj.Pkg().Path(), "internal/arena") {
		return "", false
	}
	return "arena." + obj.Name(), true
}
