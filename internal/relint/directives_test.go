package relint_test

import (
	"strings"
	"testing"

	"relcomp/internal/relint"
	"relcomp/internal/relint/relinttest"
)

// TestDirectives pins the //lint:allow contract: same-line and
// line-above directives with a reason suppress, a directive without a
// reason both fails to suppress and is reported itself, a directive for
// a different analyzer does not suppress, and distance matters.
func TestDirectives(t *testing.T) {
	pkg := relinttest.Load(t, "testdata", "directives/lib")
	diags, err := relint.Run(pkg, []*relint.Analyzer{relint.Nopanic})
	if err != nil {
		t.Fatal(err)
	}

	type wanted struct {
		line     int
		analyzer string
		substr   string
	}
	wants := []wanted{
		{17, "relint", "missing its mandatory reason"},
		{18, "nopanic", "undocumented panic"}, // reasonless directive does not suppress
		{22, "nopanic", "undocumented panic"}, // wrong-analyzer directive does not suppress
		{28, "nopanic", "undocumented panic"}, // directive two lines up does not suppress
	}

	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diag %d = %v; want line %d analyzer %s message ~%q", i, d, w.line, w.analyzer, w.substr)
		}
	}
}
