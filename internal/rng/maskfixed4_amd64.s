//go:build amd64

#include "textflag.h"

// func maskAtFixed4Asm(keys *[4]uint64, q uint64, need, mask, decided *[4]uint64)
//
// Vector form of MaskAtFixed4's bit-sliced mid-range loop: the four counter
// chains live one per qword lane of a 256-bit register, so each digit costs
// two VPMULLQ instead of four serialized scalar splitmix chains (8 IMULs).
// The digit schedule is identical to the scalar loop — two digits per stop
// check, at most 64 digits — so both paths decide the same lane sets with
// the same values and the build-time choice is invisible in results.
//
// Register map:
//   Y0 counters   Y1 undecided  Y2 result   Y3 need
//   Y4 golden     Y5 splitmix M1            Y6 splitmix M2
//   Y7 w          Y8 scratch    Y9 nb (digit mask)  Y10 bm (^nb)
//   Y11 qq digits (replicated)  Y12 all-ones
//   K1 pending-lane test        K2 need!=0 writeback mask
TEXT ·maskAtFixed4Asm(SB), NOSPLIT, $0-40
	MOVQ keys+0(FP), AX
	MOVQ need+16(FP), BX
	MOVQ mask+24(FP), DI
	MOVQ decided+32(FP), SI

	VMOVDQU64    (AX), Y0
	VMOVDQU64    (BX), Y3
	VPBROADCASTQ q+8(FP), Y11

	VPTERNLOGQ $0xFF, Y12, Y12, Y12 // all-ones
	MOVQ       $0x9e3779b97f4a7c15, AX
	VPBROADCASTQ AX, Y4
	MOVQ       $0xbf58476d1ce4e5b9, AX
	VPBROADCASTQ AX, Y5
	MOVQ       $0x94d049bb133111eb, AX
	VPBROADCASTQ AX, Y6

	VPXORQ   Y8, Y8, Y8
	VPCMPUQ  $4, Y8, Y3, K2 // K2: words with need != 0
	VMOVDQA64 Y12, Y1       // u = all-ones (zero-need lanes never written back)
	VPXORQ   Y2, Y2, Y2     // r = 0

	MOVQ $32, CX

loop:
	// ---- digit 1 ----
	VPSRAQ $63, Y11, Y9  // nb: all-ones iff current digit is 1
	VPXORQ Y12, Y9, Y10  // bm = ^nb
	VPSLLQ $1, Y11, Y11
	VPADDQ Y4, Y0, Y0    // c += golden

	VPSRLQ  $30, Y0, Y8  // w = splitmix64(c)
	VPXORQ  Y0, Y8, Y7
	VPMULLQ Y5, Y7, Y7
	VPSRLQ  $27, Y7, Y8
	VPXORQ  Y8, Y7, Y7
	VPMULLQ Y6, Y7, Y7
	VPSRLQ  $31, Y7, Y8
	VPXORQ  Y8, Y7, Y7

	VPANDNQ Y1, Y7, Y8   // t = u &^ w
	VPANDQ  Y9, Y8, Y8
	VPORQ   Y8, Y2, Y2   // r |= u &^ w & nb
	VPXORQ  Y10, Y7, Y8
	VPANDQ  Y8, Y1, Y1   // u &= w ^ bm

	// ---- digit 2 ----
	VPSRAQ $63, Y11, Y9
	VPXORQ Y12, Y9, Y10
	VPSLLQ $1, Y11, Y11
	VPADDQ Y4, Y0, Y0

	VPSRLQ  $30, Y0, Y8
	VPXORQ  Y0, Y8, Y7
	VPMULLQ Y5, Y7, Y7
	VPSRLQ  $27, Y7, Y8
	VPXORQ  Y8, Y7, Y7
	VPMULLQ Y6, Y7, Y7
	VPSRLQ  $31, Y7, Y8
	VPXORQ  Y8, Y7, Y7

	VPANDNQ Y1, Y7, Y8
	VPANDQ  Y9, Y8, Y8
	VPORQ   Y8, Y2, Y2
	VPXORQ  Y10, Y7, Y8
	VPANDQ  Y8, Y1, Y1

	// stop once every needed lane is decided
	VPANDQ   Y3, Y1, Y8
	VPTESTMQ Y8, Y8, K1
	KORTESTB K1, K1
	JZ       done
	DECQ     CX
	JNZ      loop

done:
	VMOVDQU64 Y2, K2, (DI)  // mask, drawn words only
	VPANDNQ   Y12, Y1, Y1   // decided = ^u
	VMOVDQU64 Y1, K2, (SI)
	VZEROUPPER
	RET
