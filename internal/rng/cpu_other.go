//go:build !amd64

package rng

// Non-amd64 builds always take the scalar path of MaskAtFixed4; the two
// paths are bit-identical, so cross-architecture results agree.
const useAVX512 = false

func maskAtFixed4Asm(keys *[4]uint64, q uint64, need, mask, decided *[4]uint64) {
	panic("rng: maskAtFixed4Asm without AVX-512")
}
