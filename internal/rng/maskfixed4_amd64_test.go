//go:build amd64

package rng

import "testing"

// TestMaskAtFixed4AsmMatchesScalar pins the AVX-512 path to the portable
// scalar body bit for bit: same masks, same decided sets, and untouched
// storage for zero-need words. The two implementations must stay
// interchangeable or pack width / build host would leak into sampled worlds.
func TestMaskAtFixed4AsmMatchesScalar(t *testing.T) {
	if !useAVX512 {
		t.Skip("no AVX-512 on this machine; scalar path is the only path")
	}
	qs := []uint64{
		fixedSparseCutoff,
		fixedSparseCutoff + 12345,
		FixedProb(0.1), FixedProb(0.25), FixedProb(0.5),
		FixedProb(0.6180339887), FixedProb(0.75), FixedProb(0.9),
		^uint64(0) - fixedSparseCutoff,
	}
	needs := [][4]uint64{
		{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
		{1, 0, 0, 0},
		{0, 0, 0, 1 << 63},
		{0xdeadbeef, 0, ^uint64(0), 0},
		{0, 0, 0, 0},
		{1, 2, 4, 8},
	}
	for qi, q := range qs {
		for ni, nd := range needs {
			base := splitmix64(uint64(qi)*1000003 + uint64(ni))
			keys := [4]uint64{
				splitmix64(base + 11),
				splitmix64(base + 22),
				splitmix64(base + 33),
				splitmix64(base + 44),
			}
			// Distinct sentinel garbage per word proves zero-need words
			// are left untouched by both paths.
			var sm, sd, vm, vd [4]uint64
			for w := range sm {
				sm[w], sd[w] = 0x1111*uint64(w+1), 0x2222*uint64(w+1)
				vm[w], vd[w] = sm[w], sd[w]
			}
			need := nd
			maskAtFixed4Scalar(keys[0], keys[1], keys[2], keys[3], q, &need, &sm, &sd)
			need = nd
			maskAtFixed4Asm(&keys, q, &need, &vm, &vd)
			if sm != vm || sd != vd {
				t.Fatalf("q=%#x need=%v:\n scalar mask=%v dec=%v\n vector mask=%v dec=%v",
					q, nd, sm, sd, vm, vd)
			}
			for w, n := range nd {
				if n != 0 && vd[w]&n != n {
					t.Fatalf("q=%#x need=%v word %d: needed lanes undecided (dec=%#x)", q, nd, w, vd[w])
				}
			}
		}
	}
}
