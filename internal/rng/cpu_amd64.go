//go:build amd64

package rng

// useAVX512 gates the vector path of MaskAtFixed4: AVX-512 F+DQ+VL give
// VPMULLQ on 256-bit registers, which runs the four fused splitmix chains
// as single vector multiplies. The scalar and vector paths walk the same
// digit trajectories two digits per stop-check, so every decided lane gets
// the identical value either way and the choice is invisible in results.
var useAVX512 = detectAVX512()

// cpuid and xgetbv0 are implemented in cpu_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() uint64

func detectAVX512() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	// The OS must context-switch XMM+YMM and the AVX-512 opmask/ZMM state.
	const xcr0Needed = 1<<1 | 1<<2 | 1<<5 | 1<<6 | 1<<7
	if xgetbv0()&xcr0Needed != xcr0Needed {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16
	const avx512dq = 1 << 17
	const avx512vl = 1 << 31
	return b7&(avx512f|avx512dq|avx512vl) == avx512f|avx512dq|avx512vl
}

// maskAtFixed4Asm is the AVX-512 body of MaskAtFixed4's bit-sliced
// mid-range: four interleaved digit trajectories, two digits per
// stop-check, masked writeback for zero-need words. Implemented in
// maskfixed4_amd64.s; only called when useAVX512 is true.
//
//go:noescape
func maskAtFixed4Asm(keys *[4]uint64, q uint64, need, mask, decided *[4]uint64)
