package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d/100 times", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reproduce stream at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean %.4f, want ≈ 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(3)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("Bernoulli(%v) rate %.4f", p, rate)
		}
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(4)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d count %d, want ≈ %.0f", v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(5).Intn(0)
}

// TestGeometricMean: E[X] = (1-p)/p for the failures-before-success
// geometric.
func TestGeometricMean(t *testing.T) {
	r := New(6)
	for _, p := range []float64{0.05, 0.3, 0.7, 1} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / n
		want := (1 - p) / p
		tol := 0.05 * (want + 0.02)
		if math.Abs(mean-want) > tol+0.01 {
			t.Errorf("Geometric(%v) mean %.4f, want %.4f", p, mean, want)
		}
	}
}

// TestGeometricDistribution: P(X=0) must equal p itself.
func TestGeometricZeroMass(t *testing.T) {
	r := New(8)
	const p, n = 0.37, 200000
	zeros := 0
	for i := 0; i < n; i++ {
		if r.Geometric(p) == 0 {
			zeros++
		}
	}
	rate := float64(zeros) / n
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("P(X=0) = %.4f, want %.4f", rate, p)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	New(9).Geometric(0)
}

// TestMask64Density: every bit position of Mask64 must be set at rate p,
// across the sparse, complemented, and degenerate branches.
func TestMask64Density(t *testing.T) {
	r := New(12)
	for _, p := range []float64{0, 0.02, 0.3, 0.5, 0.7, 0.97, 1} {
		const n = 20000
		counts := make([]int, 64)
		for i := 0; i < n; i++ {
			m := r.Mask64(p)
			for b := 0; b < 64; b++ {
				if m&(1<<uint(b)) != 0 {
					counts[b]++
				}
			}
		}
		for b, c := range counts {
			rate := float64(c) / n
			if math.Abs(rate-p) > 0.015 {
				t.Fatalf("Mask64(%v) bit %d rate %.4f", p, b, rate)
			}
		}
	}
}

// TestMask64BitIndependence: adjacent bits must not be correlated (the
// skip chain must not couple neighbors).
func TestMask64BitIndependence(t *testing.T) {
	r := New(13)
	const p, n = 0.3, 100000
	both := 0
	for i := 0; i < n; i++ {
		m := r.Mask64(p)
		if m&3 == 3 {
			both++
		}
	}
	rate := float64(both) / n
	if math.Abs(rate-p*p) > 0.01 {
		t.Errorf("P(bit0 & bit1) = %.4f, want %.4f", rate, p*p)
	}
}

// TestFillMask: the redrawn range has density p and bits outside the range
// are untouched, for sub-word, word-spanning, and unaligned ranges.
func TestFillMask(t *testing.T) {
	r := New(14)
	for _, c := range []struct{ lo, hi int }{{0, 64}, {3, 61}, {10, 200}, {64, 256}, {5, 6}} {
		const n = 8000
		words := 4
		set := 0
		for i := 0; i < n; i++ {
			dst := []uint64{^uint64(0), 0, ^uint64(0), 0}
			guard := append([]uint64(nil), dst...)
			r.FillMask(dst, c.lo, c.hi, 0.25)
			for b := 0; b < words*64; b++ {
				in := b >= c.lo && b < c.hi
				bit := dst[b>>6]&(1<<(uint(b)&63)) != 0
				if !in {
					if bit != (guard[b>>6]&(1<<(uint(b)&63)) != 0) {
						t.Fatalf("range [%d,%d): bit %d outside range changed", c.lo, c.hi, b)
					}
				} else if bit {
					set++
				}
			}
		}
		rate := float64(set) / float64(n*(c.hi-c.lo))
		if math.Abs(rate-0.25) > 0.02 {
			t.Errorf("range [%d,%d): density %.4f, want 0.25", c.lo, c.hi, rate)
		}
	}
}

// TestFillMaskDegenerate: the p <= 0, p >= 1, and empty-range branches.
func TestFillMaskDegenerate(t *testing.T) {
	r := New(15)
	dst := []uint64{^uint64(0), ^uint64(0)}
	r.FillMask(dst, 4, 100, 0)
	for b := 4; b < 100; b++ {
		if dst[b>>6]&(1<<(uint(b)&63)) != 0 {
			t.Fatalf("FillMask(p=0) left bit %d set", b)
		}
	}
	r.FillMask(dst, 4, 100, 1)
	for b := 4; b < 100; b++ {
		if dst[b>>6]&(1<<(uint(b)&63)) == 0 {
			t.Fatalf("FillMask(p=1) left bit %d clear", b)
		}
	}
	before := append([]uint64(nil), dst...)
	r.FillMask(dst, 7, 7, 0.5)
	if dst[0] != before[0] || dst[1] != before[1] {
		t.Error("empty range modified dst")
	}
}

// TestMaskAtTinyProbability: sub-1e-18 probabilities must yield (almost
// surely) empty words — the regression case where the geometric skip's
// float-to-int conversion overflowed and set ~3% of bits instead.
func TestMaskAtTinyProbability(t *testing.T) {
	set := 0
	for key := uint64(0); key < 2000; key++ {
		set += bits.OnesCount64(MaskAt(key*977+1, math.Pow(2, -64)))
	}
	if set != 0 {
		t.Errorf("MaskAt(2^-64) set %d bits over 2000 words, want 0", set)
	}
	m, dec := MaskAtFixed(3, FixedProb(1e-300), ^uint64(0))
	if m != 0 || dec != ^uint64(0) {
		t.Errorf("MaskAtFixed(tiny p) = %x decided %x", m, dec)
	}
}

// TestMaskAtNeedConsistency: extending the need set must keep every
// previously decided lane — the trajectory-replay contract PackMC's edge
// cache relies on.
func TestMaskAtNeedConsistency(t *testing.T) {
	for key := uint64(1); key < 500; key++ {
		p := 0.05 + float64(key%9)*0.1
		small, decS := MaskAtNeed(key, p, 1<<(key%64))
		full, decF := MaskAtNeed(key, p, ^uint64(0))
		if decF != ^uint64(0) {
			t.Fatalf("key %d: full need left lanes undecided: %x", key, decF)
		}
		if small&decS != full&decS {
			t.Fatalf("key %d: decided lanes changed between needs: %x vs %x (decided %x)",
				key, small, full, decS)
		}
	}
}

func TestFillMaskPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{{-1, 4}, {5, 4}, {0, 129}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FillMask range [%d,%d) did not panic", c.lo, c.hi)
				}
			}()
			New(16).FillMask(make([]uint64, 2), c.lo, c.hi, 0.5)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%32)
		dst := make([]int, n)
		r.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := New(10)
	const lambda, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Errorf("Exp(%v) mean %.4f, want %.4f", lambda, mean, 1/lambda)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(11).Exp(0)
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if a, b := r.Uint64(), r.Uint64(); a == 0 && b == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestMaskAtFixedWordsMatchesNarrow(t *testing.T) {
	// Each drawn word must be exactly MaskAtFixed at its own key; words
	// with zero need must keep the caller's cached values. Sweep the
	// probability regimes so the sentinel, sparse, and bit-sliced branches
	// are all hit.
	for _, p := range []float64{0.001, 0.05, 0.3, 0.5, 0.8, 0.97, 1} {
		q := FixedProb(p)
		keys := []uint64{11, 22, 33, 44, 55, 66, 77, 88}
		need := []uint64{^uint64(0), 1, 0, 0xFF00, 0, 1 << 63, 3, 0}
		mask := make([]uint64, 8)
		dec := make([]uint64, 8)
		for w := range mask { // sentinel garbage that zero-need words must keep
			mask[w] = 0xDEAD + uint64(w)
			dec[w] = 0xBEEF + uint64(w)
		}
		MaskAtFixedWords(keys, q, need, mask, dec)
		for w := range keys {
			if need[w] == 0 {
				if mask[w] != 0xDEAD+uint64(w) || dec[w] != 0xBEEF+uint64(w) {
					t.Fatalf("p=%v word %d: zero-need word was overwritten", p, w)
				}
				continue
			}
			wantM, wantD := MaskAtFixed(keys[w], q, need[w])
			if mask[w] != wantM || dec[w] != wantD {
				t.Fatalf("p=%v word %d: got (%#x,%#x), want (%#x,%#x)",
					p, w, mask[w], dec[w], wantM, wantD)
			}
		}
	}
	MaskAtFixedWords(nil, FixedProb(0.5), nil, nil, nil) // empty call is a no-op
}

func TestMaskAtFixed4MatchesNarrow(t *testing.T) {
	// The fused draw may decide MORE lanes than the narrow per-word calls
	// (it runs until the slowest word is satisfied), but on every lane the
	// narrow call decides the values must agree exactly, the decided set
	// must be a superset, and the extra lanes must match what a full replay
	// of the word's trajectory would produce. Zero-need words keep the
	// caller's cached values.
	for _, p := range []float64{0.001, 0.05, 0.3, 0.5, 0.8, 0.97, 1} {
		q := FixedProb(p)
		for _, need := range [][4]uint64{
			{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
			{1, 1 << 63, 0xFF00, 3},
			{^uint64(0), 0, 1, 0},
			{0, 0, 0, 7},
		} {
			keys := [4]uint64{101, 202, 303, 404}
			var mask, dec [4]uint64
			for w := range mask { // sentinel garbage zero-need words must keep
				mask[w] = 0xDEAD + uint64(w)
				dec[w] = 0xBEEF + uint64(w)
			}
			nd := need
			MaskAtFixed4(keys[0], keys[1], keys[2], keys[3], q, &nd, &mask, &dec)
			for w := range keys {
				if need[w] == 0 {
					if mask[w] != 0xDEAD+uint64(w) || dec[w] != 0xBEEF+uint64(w) {
						t.Fatalf("p=%v word %d: zero-need word was overwritten", p, w)
					}
					continue
				}
				narrowM, narrowD := MaskAtFixed(keys[w], q, need[w])
				if dec[w]&narrowD != narrowD {
					t.Fatalf("p=%v word %d: decided %#x is not a superset of narrow %#x",
						p, w, dec[w], narrowD)
				}
				if mask[w]&narrowD != narrowM&narrowD {
					t.Fatalf("p=%v word %d: mask %#x disagrees with narrow %#x on decided lanes %#x",
						p, w, mask[w], narrowM, narrowD)
				}
				// Lanes the fused loop over-decided must equal a full replay.
				fullM, fullD := MaskAtFixed(keys[w], q, dec[w])
				if fullD&dec[w] != dec[w] || mask[w] != fullM&dec[w] {
					t.Fatalf("p=%v word %d: over-decided lanes diverge from replay", p, w)
				}
			}
		}
	}
}
