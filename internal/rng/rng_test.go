package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d/100 times", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reproduce stream at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean %.4f, want ≈ 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(3)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("Bernoulli(%v) rate %.4f", p, rate)
		}
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(4)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d count %d, want ≈ %.0f", v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(5).Intn(0)
}

// TestGeometricMean: E[X] = (1-p)/p for the failures-before-success
// geometric.
func TestGeometricMean(t *testing.T) {
	r := New(6)
	for _, p := range []float64{0.05, 0.3, 0.7, 1} {
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / n
		want := (1 - p) / p
		tol := 0.05 * (want + 0.02)
		if math.Abs(mean-want) > tol+0.01 {
			t.Errorf("Geometric(%v) mean %.4f, want %.4f", p, mean, want)
		}
	}
}

// TestGeometricDistribution: P(X=0) must equal p itself.
func TestGeometricZeroMass(t *testing.T) {
	r := New(8)
	const p, n = 0.37, 200000
	zeros := 0
	for i := 0; i < n; i++ {
		if r.Geometric(p) == 0 {
			zeros++
		}
	}
	rate := float64(zeros) / n
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("P(X=0) = %.4f, want %.4f", rate, p)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	New(9).Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%32)
		dst := make([]int, n)
		r.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := New(10)
	const lambda, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Errorf("Exp(%v) mean %.4f, want %.4f", lambda, mean, 1/lambda)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	New(11).Exp(0)
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if a, b := r.Uint64(), r.Uint64(); a == 0 && b == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}
