// Package rng provides fast, deterministic pseudo-random number generation
// for the reliability estimators. Hot sampling loops draw billions of
// variates, so the package uses a xoshiro256++ core seeded via splitmix64
// rather than math/rand, and exposes the exact variates the estimators
// need: uniform floats, Bernoulli trials against an edge probability, and
// geometric "failures before first success" counts for lazy propagation.
//
// All generators in this package are deterministic given their seed and are
// NOT safe for concurrent use; create one per goroutine.
package rng

import "math"

// Source is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli reports whether a trial with success probability p succeeds.
// p <= 0 never succeeds; p >= 1 always succeeds.
func (r *Source) Bernoulli(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return r.Float64() < p
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling; the slight modulo bias
	// of the plain multiply-shift is below 2^-32 for the n used here, but we
	// do the rejection step anyway for correctness under testing/quick.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Geometric returns the number of failed Bernoulli(p) trials before the
// first success, i.e. a variate X with P(X=k) = (1-p)^k p for k = 0,1,2,...
// This matches the lazy-propagation semantics of Li et al. [30]: X is the
// number of possible worlds to skip before the edge next exists.
//
// p must be in (0, 1]; p >= 1 always returns 0.
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	// Inversion: X = floor(ln U / ln(1-p)), U uniform in (0,1).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	x := math.Floor(math.Log(u) / math.Log1p(-p))
	if x < 0 {
		return 0
	}
	const maxGeo = 1 << 40 // clamp pathological tails (p ~ 1e-12)
	if x > maxGeo {
		return maxGeo
	}
	return int(x)
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1
// (Fisher–Yates).
func (r *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive lambda")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}
