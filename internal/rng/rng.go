// Package rng provides fast, deterministic pseudo-random number generation
// for the reliability estimators. Hot sampling loops draw billions of
// variates, so the package uses a xoshiro256++ core seeded via splitmix64
// rather than math/rand, and exposes the exact variates the estimators
// need: uniform floats, Bernoulli trials against an edge probability, and
// geometric "failures before first success" counts for lazy propagation.
//
// All generators in this package are deterministic given their seed and are
// NOT safe for concurrent use; create one per goroutine.
package rng

import (
	"fmt"
	"math"

	"relcomp/internal/bitvec"
)

// Source is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby seeds
// yield uncorrelated streams.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// golden is the SplitMix64 increment (the 64-bit golden ratio).
const golden = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 finalizer: successive values of
// splitmix64(key + i·golden) form a high-quality counter-based stream.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += golden
		return splitmix64(sm)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = golden
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli reports whether a trial with success probability p succeeds.
// p <= 0 never succeeds; p >= 1 always succeeds.
func (r *Source) Bernoulli(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return r.Float64() < p
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling; the slight modulo bias
	// of the plain multiply-shift is below 2^-32 for the n used here, but we
	// do the rejection step anyway for correctness under testing/quick.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Geometric returns the number of failed Bernoulli(p) trials before the
// first success, i.e. a variate X with P(X=k) = (1-p)^k p for k = 0,1,2,...
// This matches the lazy-propagation semantics of Li et al. [30]: X is the
// number of possible worlds to skip before the edge next exists.
//
// p must be in (0, 1]; p >= 1 always returns 0.
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	// Inversion: X = floor(ln U / ln(1-p)), U uniform in (0,1).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	x := math.Floor(math.Log(u) / math.Log1p(-p))
	if x < 0 {
		return 0
	}
	const maxGeo = 1 << 40 // clamp pathological tails (p ~ 1e-12)
	if x > maxGeo {
		return maxGeo
	}
	return int(x)
}

// sparseMaskCutoff is the probability below which Mask64 skips
// geometrically between set bits instead of slicing bits: under it a word
// holds less than one expected set bit, so a single skip usually clears
// the whole word.
const sparseMaskCutoff = 1.0 / 64

// Mask64 returns a word of 64 independent Bernoulli(p) bits: bit i is set
// with probability p.
//
// For low p it skips geometrically between set bits — the technique the
// BFS Sharing index uses to sample edge bit-vectors — so a word costs
// O(64·p) draws instead of 64; for high p the complement is skipped and
// inverted. Mid-range p uses bit-sliced inversion: all 64 lanes compare
// their uniform bit streams against p's binary expansion at once,
// deciding a word in ~log2(64) cheap draws with no transcendental calls.
//
// p <= 0 yields the zero word; p >= 1 yields all ones.
func (r *Source) Mask64(p float64) uint64 {
	switch {
	case p >= 1:
		return ^uint64(0)
	case p <= 0:
		return 0
	case p < sparseMaskCutoff:
		return r.sparseMask64(p)
	case p > 1-sparseMaskCutoff:
		return ^r.sparseMask64(1 - p)
	}
	// Bit-sliced inversion, most significant bit of p's expansion first.
	// A lane's (implicit) uniform variate is below p iff at the first
	// digit where they differ the uniform has 0 and p has 1. und tracks
	// the lanes whose digits have matched p's so far; each draw decides
	// half of them in expectation, so the loop almost always ends long
	// before j runs out. Truncating p to 64 digits perturbs the success
	// probability by less than 2^-64 — far below Float64's own 2^-53
	// comparison granularity.
	q := uint64(p * (1 << 32) * (1 << 32))
	und := ^uint64(0)
	var res uint64
	for j := 63; j >= 0 && und != 0; j-- {
		w := r.Uint64()
		if q>>uint(j)&1 == 1 {
			res |= und &^ w // uniform digit 0 under p digit 1: below p
			und &= w
		} else {
			und &^= w // uniform digit 1 over p digit 0: above p
		}
	}
	return res
}

// MaskAt returns a word of 64 independent Bernoulli(p) bits drawn from the
// counter-based SplitMix64 stream identified by key: the result is a pure
// function of (key, p), and distinct keys yield independent words. It uses
// the same sparse/dense geometric-skip and mid-range bit-slicing branches
// as Mask64, but with no generator state to seed.
func MaskAt(key uint64, p float64) uint64 {
	m, _ := MaskAtNeed(key, p, ^uint64(0))
	return m
}

// MaskAtNeed is MaskAt restricted to the lanes in need: it returns the
// mask and the set of lanes whose bits are final, which always covers
// need. Lanes outside the returned decided set are reported as 0 but are
// NOT drawn — a later call with a larger need replays the same pure
// trajectory further, so decided lanes never change across calls with the
// same key. PackMC uses this to probe an edge for just the worlds that
// reached it: once most worlds have hit the target, a probe needs 2–3
// lanes and the bit-sliced loop exits after ~log2|need| draws instead of
// ~log2(64).
func MaskAtNeed(key uint64, p float64, need uint64) (mask, decided uint64) {
	return MaskAtFixed(key, FixedProb(p), need)
}

// FixedProb converts a probability to the 64-bit fixed point the mask
// samplers draw against: the success rate becomes exactly q/2^64, within
// 2^-64 of p (finer than Float64's own 2^-53 comparison granularity).
// p >= 1 maps to the reserved all-ones word meaning "certain" (q = 2^64
// itself is not representable); p <= 0 maps to zero. Hot paths precompute
// this per edge so each mask draw skips the float classification.
func FixedProb(p float64) uint64 {
	switch {
	case p >= 1:
		return ^uint64(0)
	case p <= 0:
		return 0
	}
	q := uint64(p * (1 << 32) * (1 << 32))
	if q == ^uint64(0) { // rounding must not reach the "certain" sentinel
		q--
	}
	if q == 0 { // nor must a positive p collapse to "never"
		q = 1
	}
	return q
}

// fixedSparseCutoff mirrors sparseMaskCutoff in fixed point.
const fixedSparseCutoff = uint64(1) << 58 // (1/64) · 2^64

// MaskAtFixed is MaskAtNeed for a FixedProb-converted probability.
func MaskAtFixed(key, q, need uint64) (mask, decided uint64) {
	switch {
	case q == ^uint64(0):
		return ^uint64(0), ^uint64(0)
	case q == 0:
		return 0, ^uint64(0)
	case q < fixedSparseCutoff:
		return sparseMaskAt(key, float64(q)*(1.0/(1<<32)/(1<<32))), ^uint64(0)
	case q > ^uint64(0)-fixedSparseCutoff:
		return ^sparseMaskAt(key, float64(^q)*(1.0/(1<<32)/(1<<32))), ^uint64(0)
	}
	// Bit-sliced inversion; see Mask64 for the derivation. The digit
	// branch is folded into mask arithmetic — b is 0 or 1, so b-1 and -b
	// select between the two updates without a data-dependent jump. und
	// lanes are still undecided; every draw halves them in expectation.
	und := ^uint64(0)
	var res uint64
	ctr := key
	for j := 63; j >= 0 && und&need != 0; j-- {
		ctr += golden
		w := splitmix64(ctr)
		b := q >> uint(j) & 1
		res |= und &^ w & -b
		und &= w ^ (b - 1)
	}
	return res, ^und
}

// MaskAtFixedWords is the multi-word (wide-pack) form of MaskAtFixed: it
// draws up to len(keys) independent 64-lane Bernoulli words in one call,
// word w from the counter stream at keys[w], restricted to the lanes of
// need[w]. A word whose need is zero is skipped entirely — mask[w] and
// decided[w] keep whatever the caller cached there; every other word
// receives exactly what MaskAtFixed(keys[w], q, need[w]) returns. Each
// drawn word replays its own pure counter trajectory, so a wide draw is
// bit-identical to the repeated narrow draws and pack width can never
// change sampled values. mask, need, and decided must each hold at least
// len(keys) words.
func MaskAtFixedWords(keys []uint64, q uint64, need, mask, decided []uint64) {
	if len(keys) == 0 {
		return
	}
	_ = need[len(keys)-1]
	_ = mask[len(keys)-1]
	_ = decided[len(keys)-1]
	for w, key := range keys {
		if need[w] == 0 {
			continue
		}
		mask[w], decided[w] = MaskAtFixed(key, q, need[w])
	}
}

// MaskAtFixed4 draws four independent 64-lane Bernoulli words in one fused
// loop, word w from the counter stream at keyw, restricted to the lanes of
// need[w]. A word whose need is zero is skipped: mask[w] and decided[w]
// keep whatever the caller cached there. Every drawn word is bit-identical
// to MaskAtFixed(keyw, q, need[w]) on all lanes the narrow call decides,
// and may decide additional lanes — those carry the same values a later
// replay of the trajectory would produce, so callers can cache them.
//
// The point of fusing is throughput, not fewer draws: the four splitmix
// chains are data-independent, so interleaving them hides the multiply/xor
// latency that serial per-word draws pay in full, and the wider decided
// sets suppress later replay draws on the same edge.
func MaskAtFixed4(key0, key1, key2, key3, q uint64, need, mask, decided *[4]uint64) {
	if q == ^uint64(0) || q == 0 || q < fixedSparseCutoff || q > ^uint64(0)-fixedSparseCutoff {
		// Sentinel and sparse regimes have word-local fast paths; the
		// fused loop only pays off in the bit-sliced mid-range.
		if need[0] != 0 {
			mask[0], decided[0] = MaskAtFixed(key0, q, need[0])
		}
		if need[1] != 0 {
			mask[1], decided[1] = MaskAtFixed(key1, q, need[1])
		}
		if need[2] != 0 {
			mask[2], decided[2] = MaskAtFixed(key2, q, need[2])
		}
		if need[3] != 0 {
			mask[3], decided[3] = MaskAtFixed(key3, q, need[3])
		}
		return
	}
	if useAVX512 {
		// Same digit schedule, four chains in qword lanes; bit-identical
		// to maskAtFixed4Scalar (see maskfixed4_amd64.s).
		keys := [4]uint64{key0, key1, key2, key3}
		maskAtFixed4Asm(&keys, q, need, mask, decided)
		return
	}
	maskAtFixed4Scalar(key0, key1, key2, key3, q, need, mask, decided)
}

// maskAtFixed4Scalar is the portable mid-range body of MaskAtFixed4 and the
// reference the vector path is tested against. q must be strictly between
// the sparse cutoffs.
func maskAtFixed4Scalar(key0, key1, key2, key3, q uint64, need, mask, decided *[4]uint64) {
	n0, n1, n2, n3 := need[0], need[1], need[2], need[3]
	var u0, u1, u2, u3 uint64
	if n0 != 0 {
		u0 = ^uint64(0)
	}
	if n1 != 0 {
		u1 = ^uint64(0)
	}
	if n2 != 0 {
		u2 = ^uint64(0)
	}
	if n3 != 0 {
		u3 = ^uint64(0)
	}
	var r0, r1, r2, r3 uint64
	c0, c1, c2, c3 := key0, key1, key2, key3
	// Two digits per trip: deciding lanes past the point every need is
	// satisfied is harmless (the extra lanes carry their replay values),
	// so the stop check only needs to run once per pair of digits, and the
	// eight interleaved splitmix chains keep the multiplier ports busy. qq
	// is a shift register over q's digits, high bit first.
	qq := q
	for j := 0; j < 32; j++ {
		if (u0&n0)|(u1&n1)|(u2&n2)|(u3&n3) == 0 {
			break
		}
		b := qq >> 63
		qq <<= 1
		nb, bm := -b, b-1
		c0 += golden
		w := splitmix64(c0)
		r0 |= u0 &^ w & nb
		u0 &= w ^ bm
		c1 += golden
		w = splitmix64(c1)
		r1 |= u1 &^ w & nb
		u1 &= w ^ bm
		c2 += golden
		w = splitmix64(c2)
		r2 |= u2 &^ w & nb
		u2 &= w ^ bm
		c3 += golden
		w = splitmix64(c3)
		r3 |= u3 &^ w & nb
		u3 &= w ^ bm
		b = qq >> 63
		qq <<= 1
		nb, bm = -b, b-1
		c0 += golden
		w = splitmix64(c0)
		r0 |= u0 &^ w & nb
		u0 &= w ^ bm
		c1 += golden
		w = splitmix64(c1)
		r1 |= u1 &^ w & nb
		u1 &= w ^ bm
		c2 += golden
		w = splitmix64(c2)
		r2 |= u2 &^ w & nb
		u2 &= w ^ bm
		c3 += golden
		w = splitmix64(c3)
		r3 |= u3 &^ w & nb
		u3 &= w ^ bm
	}
	if n0 != 0 {
		mask[0], decided[0] = r0, ^u0
	}
	if n1 != 0 {
		mask[1], decided[1] = r1, ^u1
	}
	if n2 != 0 {
		mask[2], decided[2] = r2, ^u2
	}
	if n3 != 0 {
		mask[3], decided[3] = r3, ^u3
	}
}

// sparseMaskAt draws a 64-bit Bernoulli(p) word from the counter stream at
// key by geometric skips, for p in (0, sparseMaskCutoff).
func sparseMaskAt(key uint64, p float64) uint64 {
	var m uint64
	lnq := math.Log1p(-p)
	ctr := key
	for i := 0; ; i++ {
		ctr += golden
		u := float64(splitmix64(ctr)>>11) * (1.0 / (1 << 53))
		if u == 0 {
			i--
			continue
		}
		// Compare as float before converting: for tiny p the skip is
		// astronomically large and int() of an out-of-range float is
		// platform-defined (minint on amd64), which the old clamp turned
		// into a spurious set bit.
		f := math.Log(u) / lnq
		if f >= float64(64-i) {
			return m
		}
		skip := int(f)
		if skip < 0 {
			skip = 0
		}
		i += skip
		m |= 1 << uint(i)
	}
}

// sparseMask64 draws a 64-bit Bernoulli(p) word by geometric skips, for
// p in (0, 1/2].
func (r *Source) sparseMask64(p float64) uint64 {
	var m uint64
	for i := r.Geometric(p); i < 64; i += 1 + r.Geometric(p) {
		m |= 1 << uint(i)
	}
	return m
}

// FillMask redraws bits [lo, hi) of dst as independent Bernoulli(p) bits
// (bit i lives at bit i%64 of word i/64), leaving bits outside the range
// untouched. Like Mask64 it skips geometrically between the minority bits,
// so the cost is O((hi-lo)·min(p, 1-p)) draws — this is what makes
// low-probability datasets orders of magnitude cheaper to index. It panics
// if the range is invalid or extends past dst.
func (r *Source) FillMask(dst []uint64, lo, hi int, p float64) {
	if lo < 0 || hi < lo || hi > len(dst)*64 {
		panic(fmt.Sprintf("rng: invalid mask range [%d,%d) over %d words", lo, hi, len(dst)))
	}
	if lo == hi {
		return
	}
	v := bitvec.Vector(dst)
	switch {
	case p >= 1:
		v.SetRange(lo, hi)
	case p <= 0:
		v.ClearRange(lo, hi)
	case p > 0.5:
		// Dense: start from all ones and skip-clear the complement.
		v.SetRange(lo, hi)
		q := 1 - p
		for i := lo + r.Geometric(q); i < hi; i += 1 + r.Geometric(q) {
			dst[i>>6] &^= 1 << (uint(i) & 63)
		}
	default:
		v.ClearRange(lo, hi)
		for i := lo + r.Geometric(p); i < hi; i += 1 + r.Geometric(p) {
			dst[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1
// (Fisher–Yates).
func (r *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive lambda")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / lambda
}
