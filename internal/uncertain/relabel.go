package uncertain

import (
	"fmt"
	"sort"
)

// This file implements degree-sorted CSR relabeling: renaming nodes so
// that high-out-degree hubs get the lowest ids. Sampling traversals spend
// most of their time streaming the CSR rows of hub nodes; after
// relabeling, those rows (and the per-node scratch the kernels key by
// node id) cluster at the front of their arrays and share cache lines
// instead of being scattered across the whole graph. The relabeled graph
// is semantically identical — only the names change — so any estimator
// runs on it unmodified; callers that must preserve the external id
// surface (the engine) translate queries in and results out with the
// permutation.
//
// Permutation contract: perm[old] = new for nodes. Relabel additionally
// returns edgeMap[oldEdge] = newEdge, because the Builder re-sorts edges
// by (from, to) and edge ids are positional. Sampling streams are keyed
// by edge id, so a relabeled graph draws different (but identically
// distributed) worlds than the original — relabeling preserves the
// estimator contract and the distribution, not the bit-exact stream.

// DegreePerm returns the degree-sorting permutation of g: perm[old] = new,
// where new ids are assigned by descending out-degree, ties broken by
// ascending old id. It is deterministic, so writer and reader of a
// snapshot derive the same permutation from the same graph.
func DegreePerm(g *Graph) []NodeID {
	n := g.NumNodes()
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.OutDegree(order[i]), g.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	perm := make([]NodeID, n)
	for newID, old := range order {
		perm[old] = NodeID(newID)
	}
	return perm
}

// InversePerm returns the inverse permutation: inv[perm[v]] = v.
func InversePerm(perm []NodeID) []NodeID {
	inv := make([]NodeID, len(perm))
	for old, new := range perm {
		inv[new] = NodeID(old)
	}
	return inv
}

// checkPerm validates that perm is a permutation of [0, n).
func checkPerm(perm []NodeID, n int) error {
	if len(perm) != n {
		return fmt.Errorf("uncertain: permutation has %d entries for %d nodes", len(perm), n)
	}
	seen := make([]bool, n)
	for old, new := range perm {
		if new < 0 || int(new) >= n {
			return fmt.Errorf("uncertain: perm[%d] = %d outside [0, %d)", old, new, n)
		}
		if seen[new] {
			return fmt.Errorf("uncertain: perm maps two nodes to %d", new)
		}
		seen[new] = true
	}
	return nil
}

// Relabel returns g with every node v renamed to perm[v]: the same edges,
// the same probabilities, a freshly sorted CSR. Because edge ids are
// positional in the (from, to)-sorted edge list, they move too; the
// returned edgeMap gives edgeMap[oldEdge] = newEdge so callers can
// translate edge-keyed state (evidence conditions, snapshot sections)
// across the rename. RelabelInverse(Relabel(g, perm)) reconstructs a
// graph isomorphic to g with the original names.
func Relabel(g *Graph, perm []NodeID) (*Graph, []EdgeID, error) {
	if err := checkPerm(perm, g.NumNodes()); err != nil {
		return nil, nil, err
	}
	b := NewBuilder(g.NumNodes()).SetName(g.Name())
	for _, e := range g.Edges() {
		if err := b.AddEdge(perm[e.From], perm[e.To], e.P); err != nil {
			return nil, nil, err
		}
	}
	ng := b.Build()
	if ng.NumEdges() != g.NumEdges() {
		// Cannot happen for a graph that itself came out of Build (parallel
		// edges were already merged), but guard the invariant the edge map
		// depends on.
		return nil, nil, fmt.Errorf("uncertain: relabel merged %d edges to %d",
			g.NumEdges(), ng.NumEdges())
	}
	// New edge ids are the ranks of the renamed (from, to) pairs: sort the
	// old ids by renamed endpoint and read the ranks off.
	m := g.NumEdges()
	idx := make([]EdgeID, m)
	for i := range idx {
		idx[i] = EdgeID(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, c := g.Edge(idx[i]), g.Edge(idx[j])
		af, at := perm[a.From], perm[a.To]
		cf, ct := perm[c.From], perm[c.To]
		if af != cf {
			return af < cf
		}
		return at < ct
	})
	edgeMap := make([]EdgeID, m)
	for newID, oldID := range idx {
		edgeMap[oldID] = EdgeID(newID)
	}
	return ng, edgeMap, nil
}

// RelabelInverse undoes a Relabel: given the graph produced with perm, it
// relabels by InversePerm(perm), restoring the original node names (and
// therefore the original edge ids, since the sorted edge list is
// determined by the names).
func RelabelInverse(g *Graph, perm []NodeID) (*Graph, []EdgeID, error) {
	return Relabel(g, InversePerm(perm))
}

// IsDegreeSorted reports whether g's nodes are already in descending
// out-degree order — the layout DegreePerm produces. Useful to detect a
// relabeled CSR without carrying the permutation around.
func IsDegreeSorted(g *Graph) bool {
	for v := 1; v < g.NumNodes(); v++ {
		if g.OutDegree(NodeID(v)) > g.OutDegree(NodeID(v-1)) {
			return false
		}
	}
	return true
}

// DegreeStats summarizes g's out-degree distribution: the maximum, the
// mean, and the 99th percentile (the degree at rank ceil(0.99·n) of the
// ascending order; the maximum for tiny graphs).
func DegreeStats(g *Graph) (max int, mean float64, p99 int) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0, 0
	}
	degs := make([]int, n)
	total := 0
	for v := range degs {
		d := g.OutDegree(NodeID(v))
		degs[v] = d
		total += d
		if d > max {
			max = d
		}
	}
	sort.Ints(degs)
	r := (99*n + 99) / 100 // ceil(0.99·n), 1-based rank
	if r > n {
		r = n
	}
	p99 = degs[r-1]
	return max, float64(total) / float64(n), p99
}
