package uncertain

import "fmt"

// Condition returns the uncertain graph conditioned on partial knowledge
// of the world: every edge in include definitely exists (probability 1)
// and every edge in exclude definitely does not (removed). Reliability on
// the conditioned graph equals the conditional reliability
// R(s,t | E1 ⊆ world, E2 ∩ world = ∅) of the original graph — the
// conditional-reliability query of Khan et al. (TKDE 2018), and the same
// conditioning that underlies the recursive estimators' prefix groups.
func Condition(g *Graph, include, exclude []EdgeID) (*Graph, error) {
	m := EdgeID(g.NumEdges())
	state := make([]int8, m)
	for _, e := range include {
		if e < 0 || e >= m {
			return nil, fmt.Errorf("uncertain: include edge %d out of range [0,%d)", e, m)
		}
		state[e] = 1
	}
	for _, e := range exclude {
		if e < 0 || e >= m {
			return nil, fmt.Errorf("uncertain: exclude edge %d out of range [0,%d)", e, m)
		}
		if state[e] == 1 {
			return nil, fmt.Errorf("uncertain: edge %d both included and excluded", e)
		}
		state[e] = -1
	}
	b := NewBuilder(g.NumNodes()).SetName(g.Name() + "-conditioned")
	for id, e := range g.Edges() {
		switch state[id] {
		case -1:
			continue
		case 1:
			b.MustAddEdge(e.From, e.To, 1)
		default:
			b.MustAddEdge(e.From, e.To, e.P)
		}
	}
	return b.Build(), nil
}

// FindEdge returns the id of the edge from -> to, or -1 if absent.
func (g *Graph) FindEdge(from, to NodeID) EdgeID {
	if from < 0 || int(from) >= g.n {
		return -1
	}
	ids := g.OutEdgeIDs(from)
	tos := g.OutNeighbors(from)
	for i, w := range tos {
		if w == to {
			return ids[i]
		}
	}
	return -1
}
