package uncertain

import "fmt"

// Condition returns the uncertain graph conditioned on partial knowledge
// of the world: every edge in include definitely exists (probability 1)
// and every edge in exclude definitely does not (removed). Reliability on
// the conditioned graph equals the conditional reliability
// R(s,t | E1 ⊆ world, E2 ∩ world = ∅) of the original graph — the
// conditional-reliability query of Khan et al. (TKDE 2018), and the same
// conditioning that underlies the recursive estimators' prefix groups.
func Condition(g *Graph, include, exclude []EdgeID) (*Graph, error) {
	state, err := conditionState(g, include, exclude)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(g.NumNodes()).SetName(g.Name() + "-conditioned")
	for id, e := range g.Edges() {
		switch state[id] {
		case -1:
			continue
		case 1:
			b.MustAddEdge(e.From, e.To, 1)
		default:
			b.MustAddEdge(e.From, e.To, e.P)
		}
	}
	return b.Build(), nil
}

// conditionState validates a conditioning set against g and returns the
// per-edge verdict: 1 include, -1 exclude, 0 untouched. It is the single
// home of the conditioning contract — id ranges, and no edge both
// included and excluded — shared by Condition, Overlay, and CheckCondition.
func conditionState(g *Graph, include, exclude []EdgeID) ([]int8, error) {
	m := EdgeID(g.NumEdges())
	state := make([]int8, m)
	for _, e := range include {
		if e < 0 || e >= m {
			return nil, fmt.Errorf("uncertain: include edge %d out of range [0,%d)", e, m)
		}
		state[e] = 1
	}
	for _, e := range exclude {
		if e < 0 || e >= m {
			return nil, fmt.Errorf("uncertain: exclude edge %d out of range [0,%d)", e, m)
		}
		if state[e] == 1 {
			return nil, fmt.Errorf("uncertain: edge %d both included and excluded", e)
		}
		state[e] = -1
	}
	return state, nil
}

// CheckCondition validates a conditioning/evidence set against g without
// building anything — the validation half of Condition and Overlay, for
// callers (the engine's request validation) that must reject bad evidence
// before any work is done.
func CheckCondition(g *Graph, include, exclude []EdgeID) error {
	_, err := conditionState(g, include, exclude)
	return err
}

// Overlay is Condition without the rebuild: it returns a graph that
// SHARES the receiver's CSR topology (adjacency, edge ids, indices) and
// copies only the probability columns, with included edges pinned to 1 and
// excluded edges pinned to 0. Excluded edges therefore stay present in the
// adjacency — at probability 0 they exist in no possible world, so every
// sampling estimator treats them as absent (the rng layer's Bernoulli and
// mask samplers handle p ∈ {0, 1} exactly) — and node/edge ids are
// unchanged, which is what lets a serving layer condition a query
// per-request against evidence without invalidating anything keyed by id.
// Cost is O(m) for the probability copy versus Condition's full
// sort-merge-rebuild; the topology arrays are not duplicated.
//
// Estimators that precompute structure from probabilities (the offline
// indexes) must still be rebuilt per overlay; Overlay targets the
// index-free samplers.
func Overlay(g *Graph, include, exclude []EdgeID) (*Graph, error) {
	state, err := conditionState(g, include, exclude)
	if err != nil {
		return nil, err
	}
	ov := *g // share topology slices
	ov.name = g.name + "-evidence"
	ov.edges = make([]Edge, len(g.edges))
	copy(ov.edges, g.edges)
	for id := range ov.edges {
		switch state[id] {
		case 1:
			ov.edges[id].P = 1
		case -1:
			ov.edges[id].P = 0
		}
	}
	ov.outProb = make([]float64, len(g.outProb))
	for i, id := range g.outEdge {
		ov.outProb[i] = ov.edges[id].P
	}
	return &ov, nil
}

// FindEdge returns the id of the edge from -> to, or -1 if absent.
func (g *Graph) FindEdge(from, to NodeID) EdgeID {
	if from < 0 || int(from) >= g.n {
		return -1
	}
	ids := g.OutEdgeIDs(from)
	tos := g.OutNeighbors(from)
	for i, w := range tos {
		if w == to {
			return ids[i]
		}
	}
	return -1
}
