package uncertain

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text format is one header line "n m" followed by m lines
// "from to prob", whitespace separated, '#' comments and blank lines
// ignored. This matches the layout the original RelComp C++ release uses
// for its datasets.

// Write serializes g to w in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", g.Name()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.From, e.To, e.P); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph from r in the text format. The optional name is
// attached to the returned graph.
func Read(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var b *Builder
	wantEdges := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("uncertain: line %d: want header \"n m\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("uncertain: line %d: bad node count: %v", line, err)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("uncertain: line %d: bad edge count: %v", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("uncertain: line %d: negative header values", line)
			}
			b = NewBuilder(n).SetName(name)
			wantEdges = m
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("uncertain: line %d: want \"from to prob\", got %q", line, text)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: bad from: %v", line, err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: bad to: %v", line, err)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: bad probability: %v", line, err)
		}
		if err := b.AddEdge(NodeID(from), NodeID(to), p); err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("uncertain: empty input")
	}
	if b.NumEdges() != wantEdges {
		return nil, fmt.Errorf("uncertain: header promised %d edges, got %d", wantEdges, b.NumEdges())
	}
	return b.Build(), nil
}

// WriteFile writes g to path in the text format.
func WriteFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a graph from path; the graph's name is the path's base.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return Read(f, name)
}
