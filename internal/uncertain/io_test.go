package uncertain

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	b := NewBuilder(4).SetName("roundtrip")
	b.MustAddEdge(0, 1, 0.25)
	b.MustAddEdge(1, 2, 0.5)
	b.MustAddEdge(3, 0, 0.125)
	g := b.Build()

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", g2, g)
	}
	for i, e := range g.Edges() {
		if g2.Edge(EdgeID(i)) != e {
			t.Errorf("edge %d changed: %v vs %v", i, g2.Edge(EdgeID(i)), e)
		}
	}
}

func TestReadMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"comment only":     "# nothing\n",
		"bad header":       "x y\n",
		"header too short": "3\n",
		"negative header":  "-1 2\n",
		"bad edge arity":   "2 1\n0 1\n",
		"bad from":         "2 1\nx 1 0.5\n",
		"bad to":           "2 1\n0 y 0.5\n",
		"bad prob":         "2 1\n0 1 z\n",
		"prob zero":        "2 1\n0 1 0\n",
		"prob above one":   "2 1\n0 1 1.5\n",
		"self loop":        "2 1\n0 0 0.5\n",
		"out of range":     "2 1\n0 5 0.5\n",
		"count mismatch":   "2 2\n0 1 0.5\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input), "bad"); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	input := "# header comment\n\n3 2\n# edges\n0 1 0.5\n\n1 2 0.25\n"
	g, err := Read(strings.NewReader(input), "ok")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges %d, want 2", g.NumEdges())
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	b := NewBuilder(3)
	b.MustAddEdge(0, 2, 0.75)
	g := b.Build()
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != "g.txt" {
		t.Errorf("name %q", g2.Name())
	}
	if g2.NumEdges() != 1 || g2.Edge(0).P != 0.75 {
		t.Error("content changed")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.txt")); !os.IsNotExist(err) {
		t.Errorf("missing file: got %v, want not-exist error", err)
	}
}
