package uncertain

import (
	"math"
	"testing"
	"testing/quick"

	"relcomp/internal/rng"
)

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		from, to NodeID
		p        float64
	}{
		{-1, 0, 0.5},  // negative from
		{0, 3, 0.5},   // to out of range
		{1, 1, 0.5},   // self loop
		{0, 1, 0},     // zero probability
		{0, 1, -0.2},  // negative probability
		{0, 1, 1.001}, // above one
		{0, 1, math.NaN()},
	}
	for _, c := range cases {
		if err := b.AddEdge(c.from, c.to, c.p); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) accepted", c.from, c.to, c.p)
		}
	}
	if b.NumEdges() != 0 {
		t.Errorf("invalid edges were recorded: %d", b.NumEdges())
	}
	if err := b.AddEdge(0, 1, 1.0); err != nil {
		t.Errorf("p=1 rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative node count did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestMustAddEdgePanics(t *testing.T) {
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge did not panic")
		}
	}()
	b.MustAddEdge(0, 0, 0.5)
}

func TestCSRConsistency(t *testing.T) {
	b := NewBuilder(4).SetName("csr")
	b.MustAddEdge(0, 1, 0.1)
	b.MustAddEdge(0, 2, 0.2)
	b.MustAddEdge(1, 2, 0.3)
	b.MustAddEdge(3, 0, 0.4)
	g := b.Build()

	if g.Name() != "csr" || g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("basic shape wrong: %v", g)
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 || g.OutDegree(2) != 0 {
		t.Error("degrees wrong")
	}
	// Every out edge appears in the target's in-adjacency.
	for v := NodeID(0); v < 4; v++ {
		ids := g.OutEdgeIDs(v)
		tos := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for i, id := range ids {
			e := g.Edge(id)
			if e.From != v || e.To != tos[i] || e.P != ps[i] {
				t.Errorf("out slot mismatch at %d/%d", v, i)
			}
			found := false
			for _, iid := range g.InEdgeIDs(e.To) {
				if iid == id {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d missing from in-adjacency of %d", id, e.To)
			}
		}
	}
	if g.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
	if g.String() == "" {
		t.Error("String empty")
	}
}

func TestParallelEdgeMerge(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(0, 1, 0.5)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("parallel edges not merged: %d", g.NumEdges())
	}
	if got := g.Edge(0).P; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("merged probability %v, want 0.75 (noisy-or)", got)
	}
}

func TestAddBidirected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddBidirected(0, 1, 0.4); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 2 || g.OutDegree(0) != 1 || g.OutDegree(1) != 1 {
		t.Error("bidirected edge wrong")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph shape")
	}
	g2 := NewBuilder(5).Build()
	if g2.OutDegree(3) != 0 || g2.InDegree(0) != 0 {
		t.Error("edgeless graph degrees")
	}
}

// Property: CSR round-trips the edge multiset (after dedup) for random
// graphs.
func TestCSRProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < r.Intn(60); i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			b.MustAddEdge(u, v, 0.01+0.99*r.Float64())
		}
		g := b.Build()
		// Out-CSR and in-CSR must each cover every edge exactly once.
		outSeen := make([]bool, g.NumEdges())
		inSeen := make([]bool, g.NumEdges())
		for v := NodeID(0); int(v) < n; v++ {
			for _, id := range g.OutEdgeIDs(v) {
				if outSeen[id] {
					return false
				}
				outSeen[id] = true
			}
			for _, id := range g.InEdgeIDs(v) {
				if inSeen[id] {
					return false
				}
				inSeen[id] = true
			}
		}
		for i := range outSeen {
			if !outSeen[i] || !inSeen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProbSummary(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2)
	b.MustAddEdge(1, 2, 0.4)
	s := b.Build().ProbSummary()
	if math.Abs(s.Mean-0.3) > 1e-12 || s.N != 2 {
		t.Errorf("summary %+v", s)
	}
}

func TestHopDistances(t *testing.T) {
	b := NewBuilder(5)
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(1, 2, 0.5)
	b.MustAddEdge(2, 3, 0.5)
	g := b.Build()
	d := g.HopDistances(0, -1)
	want := []int32{0, 1, 2, 3, -1}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
	d = g.HopDistances(0, 2)
	if d[3] != -1 || d[2] != 2 {
		t.Errorf("bounded BFS wrong: %v", d)
	}
}

func TestReachable(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(2, 3, 0.5)
	g := b.Build()
	if !g.Reachable(0, 1) || !g.Reachable(0, 0) {
		t.Error("reachability false negative")
	}
	if g.Reachable(0, 3) || g.Reachable(1, 0) {
		t.Error("reachability false positive")
	}
}

func TestDiameter(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(1, 2, 0.5)
	b.MustAddEdge(2, 3, 0.5)
	g := b.Build()
	if d := g.Diameter(0); d != 3 {
		t.Errorf("diameter %d, want 3", d)
	}
	if d := g.Diameter(2); d < 1 {
		t.Errorf("sampled diameter %d", d)
	}
	if d := NewBuilder(0).Build().Diameter(0); d != 0 {
		t.Errorf("empty diameter %d", d)
	}
}
