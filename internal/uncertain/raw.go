package uncertain

import "fmt"

// RawCSR is the flat-array view of a Graph's CSR storage, the exchange
// format between a Graph and the persistent snapshot store: every field is
// a plain numeric column that can be written to — and memory-mapped back
// from — disk without per-element encoding. The arrays obey the same
// invariants Build establishes; FromRawCSR revalidates them all, so a
// column set read from an untrusted file either reconstructs a well-formed
// Graph or fails, never producing one that later panics mid-query.
type RawCSR struct {
	Name     string
	NumNodes int

	// Out-adjacency CSR: node v's edge slots are OutIndex[v]..OutIndex[v+1].
	OutIndex []int32
	OutTo    []NodeID
	OutProb  []float64
	OutEdge  []EdgeID

	// In-adjacency CSR over the same edges, keyed by destination.
	InIndex []int32
	InFrom  []NodeID
	InEdge  []EdgeID
}

// RawCSR returns the graph's backing arrays. The slices alias graph
// storage and must not be modified.
func (g *Graph) RawCSR() RawCSR {
	return RawCSR{
		Name:     g.name,
		NumNodes: g.n,
		OutIndex: g.outIndex,
		OutTo:    g.outTo,
		OutProb:  g.outProb,
		OutEdge:  g.outEdge,
		InIndex:  g.inIndex,
		InFrom:   g.inFrom,
		InEdge:   g.inEdge,
	}
}

// FromRawCSR reconstructs a Graph directly over the given arrays, which
// the Graph aliases from then on (the caller must not modify them — they
// may be a read-only memory mapping). Only the edge list is materialized,
// derived from the out-CSR columns.
//
// Every structural invariant is checked: monotone index arrays, id ranges,
// probabilities in (0,1], no self loops, a permutation edge numbering, and
// in-CSR consistency with the out-CSR. A violation returns an error
// describing the first problem found.
func FromRawCSR(r RawCSR) (*Graph, error) {
	n := r.NumNodes
	if n < 0 {
		return nil, fmt.Errorf("uncertain: negative node count %d", n)
	}
	if len(r.OutIndex) != n+1 || len(r.InIndex) != n+1 {
		return nil, fmt.Errorf("uncertain: index arrays have %d/%d entries, want %d",
			len(r.OutIndex), len(r.InIndex), n+1)
	}
	m := len(r.OutTo)
	if len(r.OutProb) != m || len(r.OutEdge) != m || len(r.InFrom) != m || len(r.InEdge) != m {
		return nil, fmt.Errorf("uncertain: edge columns disagree on length: to=%d prob=%d edge=%d from=%d inedge=%d",
			len(r.OutTo), len(r.OutProb), len(r.OutEdge), len(r.InFrom), len(r.InEdge))
	}
	if err := checkIndex("out", r.OutIndex, m); err != nil {
		return nil, err
	}
	if err := checkIndex("in", r.InIndex, m); err != nil {
		return nil, err
	}

	// Walk the out-CSR: range checks, plus the edge list it defines. The
	// edge numbering must be a permutation of [0, m).
	edges := make([]Edge, m)
	seen := make([]bool, m)
	for v := 0; v < n; v++ {
		for s := r.OutIndex[v]; s < r.OutIndex[v+1]; s++ {
			to, p, id := r.OutTo[s], r.OutProb[s], r.OutEdge[s]
			if to < 0 || int(to) >= n {
				return nil, fmt.Errorf("uncertain: out slot %d: head %d out of range [0,%d)", s, to, n)
			}
			if NodeID(v) == to {
				return nil, fmt.Errorf("uncertain: out slot %d: self loop at node %d", s, v)
			}
			if !(p > 0 && p <= 1) {
				return nil, fmt.Errorf("uncertain: out slot %d: probability %v outside (0,1]", s, p)
			}
			if id < 0 || int(id) >= m {
				return nil, fmt.Errorf("uncertain: out slot %d: edge id %d out of range [0,%d)", s, id, m)
			}
			if seen[id] {
				return nil, fmt.Errorf("uncertain: edge id %d assigned to two out slots", id)
			}
			seen[id] = true
			edges[id] = Edge{From: NodeID(v), To: to, P: p}
		}
	}

	// Cross-check the in-CSR against the edge list the out-CSR defined.
	// All m ids were seen (m slots, all distinct), so edges is complete.
	inSeen := make([]bool, m)
	for v := 0; v < n; v++ {
		for s := r.InIndex[v]; s < r.InIndex[v+1]; s++ {
			id := r.InEdge[s]
			if id < 0 || int(id) >= m {
				return nil, fmt.Errorf("uncertain: in slot %d: edge id %d out of range [0,%d)", s, id, m)
			}
			if inSeen[id] {
				return nil, fmt.Errorf("uncertain: edge id %d assigned to two in slots", id)
			}
			inSeen[id] = true
			e := edges[id]
			if e.To != NodeID(v) || e.From != r.InFrom[s] {
				return nil, fmt.Errorf("uncertain: in slot %d: edge %d is (%d,%d), in-CSR says (%d,%d)",
					s, id, e.From, e.To, r.InFrom[s], v)
			}
		}
	}

	return &Graph{
		name:     r.Name,
		n:        n,
		outIndex: r.OutIndex,
		outTo:    r.OutTo,
		outProb:  r.OutProb,
		outEdge:  r.OutEdge,
		inIndex:  r.InIndex,
		inFrom:   r.InFrom,
		inEdge:   r.InEdge,
		edges:    edges,
	}, nil
}

// checkIndex validates one CSR index array: starts at 0, monotone
// non-decreasing, ends at m.
func checkIndex(which string, idx []int32, m int) error {
	if idx[0] != 0 {
		return fmt.Errorf("uncertain: %s-index starts at %d, want 0", which, idx[0])
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] < idx[i-1] {
			return fmt.Errorf("uncertain: %s-index decreases at node %d (%d -> %d)", which, i-1, idx[i-1], idx[i])
		}
	}
	if int(idx[len(idx)-1]) != m {
		return fmt.Errorf("uncertain: %s-index ends at %d, want %d edges", which, idx[len(idx)-1], m)
	}
	return nil
}
