package uncertain

import "fmt"

// Dynamic-graph support: ApplyDeltas derives a successor Graph from an
// immutable one under a batch of edge-probability changes, preserving
// node and edge ids so everything keyed by id (indexes, caches, evidence
// sets) stays addressable across the change.
//
// Removal is represented as a tombstone: the edge keeps its id and its
// adjacency slot but its probability drops to 0, so it exists in no
// possible world — the same convention Overlay uses for excluded
// evidence, and one every sampling path already handles exactly (the rng
// layer's Bernoulli and mask fills treat p <= 0 as never-exists).
// A tombstoned edge can be resurrected by a later delta with p > 0.
// Truly new adjacency (a pair the graph has never seen) is appended with
// a fresh edge id past the existing range; existing ids never move.
//
// The successor therefore relaxes the Builder's (0,1] probability
// invariant to [0,1] on surviving ids. Graphs with tombstones are a
// runtime-only shape: the snapshot loaders keep the strict invariant,
// and persistence of a mutated graph goes through snapshot-plus-
// mutation-log replay instead of direct serialization.

// EdgeDelta is one edge change addressed by endpoints. Applied to an
// existing pair it replaces the probability (0 tombstones the edge; any
// value in [0,1] is legal, including resurrecting a tombstone). Applied
// to an absent pair it appends a new edge, which requires p in (0,1].
type EdgeDelta struct {
	From NodeID
	To   NodeID
	P    float64
}

// ApplyDeltas returns a new Graph reflecting the batch, plus the ids of
// every edge whose probability differs from g's (appended edges
// included), in ascending id order. Later deltas in the batch override
// earlier ones for the same pair; a batch whose net effect is nil
// returns g itself with no changed ids. g is not modified.
func ApplyDeltas(g *Graph, deltas []EdgeDelta) (*Graph, []EdgeID, error) {
	if len(deltas) == 0 {
		return g, nil, nil
	}
	edges := append([]Edge(nil), g.edges...)
	var added []Edge
	addedIdx := make(map[[2]NodeID]int)
	for _, d := range deltas {
		if d.From < 0 || int(d.From) >= g.n || d.To < 0 || int(d.To) >= g.n {
			return nil, nil, fmt.Errorf("uncertain: delta edge (%d,%d) out of range [0,%d)", d.From, d.To, g.n)
		}
		if d.From == d.To {
			return nil, nil, fmt.Errorf("uncertain: delta self loop at node %d", d.From)
		}
		if id := g.FindEdge(d.From, d.To); id >= 0 {
			if !(d.P >= 0 && d.P <= 1) {
				return nil, nil, fmt.Errorf("uncertain: delta edge (%d,%d) probability %v outside [0,1]", d.From, d.To, d.P)
			}
			edges[id].P = d.P
			continue
		}
		if !(d.P > 0 && d.P <= 1) {
			return nil, nil, fmt.Errorf("uncertain: new edge (%d,%d) probability %v outside (0,1]", d.From, d.To, d.P)
		}
		if j, ok := addedIdx[[2]NodeID{d.From, d.To}]; ok {
			added[j].P = d.P
			continue
		}
		addedIdx[[2]NodeID{d.From, d.To}] = len(added)
		added = append(added, Edge{From: d.From, To: d.To, P: d.P})
	}

	var changed []EdgeID
	for id := range edges {
		if edges[id].P != g.edges[id].P {
			changed = append(changed, EdgeID(id))
		}
	}
	for j := range added {
		changed = append(changed, EdgeID(len(edges)+j))
	}
	if len(changed) == 0 {
		return g, nil, nil
	}

	if len(added) == 0 {
		// Probability-only change: share the topology arrays like Overlay
		// and copy just the probability columns.
		ng := *g
		ng.edges = edges
		ng.outProb = make([]float64, len(g.outProb))
		for i, id := range g.outEdge {
			ng.outProb[i] = edges[id].P
		}
		return &ng, changed, nil
	}
	return buildCSR(g.name, g.n, append(edges, added...)), changed, nil
}
