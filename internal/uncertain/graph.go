// Package uncertain implements the uncertain (probabilistic) graph model of
// the paper: a directed graph G = (V, E, P) whose edges carry independent
// existence probabilities in (0, 1]. Under possible-world semantics G
// represents 2^m deterministic graphs, each obtained by keeping every edge e
// independently with probability P(e) (Eq. 1 of the paper).
//
// The Graph type is an immutable compressed-sparse-row structure with both
// out- and in-adjacency (the BFS Sharing estimator needs in-neighbors), and
// is shared read-only by all estimators; per-query scratch state lives in
// the estimators. Graphs are constructed through a Builder or the text I/O
// in io.go.
package uncertain

import (
	"fmt"
	"sort"

	"relcomp/internal/stats"
)

// NodeID identifies a node; nodes are dense integers in [0, NumNodes).
type NodeID = int32

// EdgeID identifies an edge; edges are dense integers in [0, NumEdges).
type EdgeID = int32

// Edge is one directed probabilistic edge.
type Edge struct {
	From NodeID
	To   NodeID
	P    float64
}

// Graph is an immutable uncertain graph in CSR form.
type Graph struct {
	name string
	n    int

	// Out-adjacency CSR: for node v, the edge slots are
	// outIndex[v] .. outIndex[v+1].
	outIndex []int32
	outTo    []NodeID
	outProb  []float64
	outEdge  []EdgeID

	// In-adjacency CSR (same edges, keyed by destination).
	inIndex []int32
	inFrom  []NodeID
	inEdge  []EdgeID

	edges []Edge
}

// Name returns the graph's human-readable name ("" if unset).
func (g *Graph) Name() string { return g.name }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns |E| (directed edges).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns the backing edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outIndex[v+1] - g.outIndex[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inIndex[v+1] - g.inIndex[v])
}

// OutEdgeIDs returns the ids of v's outgoing edges. The slice aliases graph
// storage and must not be modified.
func (g *Graph) OutEdgeIDs(v NodeID) []EdgeID {
	return g.outEdge[g.outIndex[v]:g.outIndex[v+1]]
}

// OutNeighbors returns the heads of v's outgoing edges, aligned with
// OutProbs and OutEdgeIDs. The slice aliases graph storage.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	return g.outTo[g.outIndex[v]:g.outIndex[v+1]]
}

// OutSpan returns the half-open CSR slot range of v's outgoing edges:
// OutNeighbors(v)[i], OutProbs(v)[i], and OutEdgeIDs(v)[i] occupy slot
// lo+i, and every edge owns exactly one slot in [0, NumEdges). Estimators
// that keep per-edge scratch can index it by slot instead of edge id, so a
// node scan touches its edge state sequentially regardless of the order
// edges were inserted in.
func (g *Graph) OutSpan(v NodeID) (lo, hi int) {
	return int(g.outIndex[v]), int(g.outIndex[v+1])
}

// OutProbs returns the probabilities of v's outgoing edges, aligned with
// OutNeighbors. The slice aliases graph storage.
func (g *Graph) OutProbs(v NodeID) []float64 {
	return g.outProb[g.outIndex[v]:g.outIndex[v+1]]
}

// InEdgeIDs returns the ids of v's incoming edges. The slice aliases graph
// storage.
func (g *Graph) InEdgeIDs(v NodeID) []EdgeID {
	return g.inEdge[g.inIndex[v]:g.inIndex[v+1]]
}

// InNeighbors returns the tails of v's incoming edges, aligned with
// InEdgeIDs. The slice aliases graph storage.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	return g.inFrom[g.inIndex[v]:g.inIndex[v+1]]
}

// ProbSummary summarizes the edge-probability distribution in the style of
// the paper's Table 2. It panics if the graph has no edges.
func (g *Graph) ProbSummary() stats.Summary {
	ps := make([]float64, len(g.edges))
	for i, e := range g.edges {
		ps[i] = e.P
	}
	return stats.Summarize(ps)
}

// MemoryBytes returns the approximate in-memory footprint of the CSR
// structure, used by the harness's memory accounting.
func (g *Graph) MemoryBytes() int64 {
	var b int64
	b += int64(len(g.outIndex)+len(g.inIndex)) * 4
	b += int64(len(g.outTo)+len(g.outEdge)+len(g.inFrom)+len(g.inEdge)) * 4
	b += int64(len(g.outProb)) * 8
	b += int64(len(g.edges)) * 24
	return b
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("uncertain.Graph{%s: n=%d m=%d}", g.name, g.n, len(g.edges))
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; construct with NewBuilder.
type Builder struct {
	name  string
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("uncertain: negative node count")
	}
	return &Builder{n: n}
}

// SetName sets the graph's name.
func (b *Builder) SetName(name string) *Builder {
	b.name = name
	return b
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge adds a directed edge from -> to with existence probability p.
// It returns an error if the endpoints are out of range, the edge is a self
// loop, or p is outside (0, 1].
func (b *Builder) AddEdge(from, to NodeID, p float64) error {
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		return fmt.Errorf("uncertain: edge (%d,%d) out of range [0,%d)", from, to, b.n)
	}
	if from == to {
		return fmt.Errorf("uncertain: self loop at node %d", from)
	}
	if !(p > 0 && p <= 1) {
		return fmt.Errorf("uncertain: edge (%d,%d) probability %v outside (0,1]", from, to, p)
	}
	b.edges = append(b.edges, Edge{From: from, To: to, P: p})
	return nil
}

// AddBidirected adds both directions of an undirected relation, each with
// probability p, as the paper's bi-directed datasets (LastFM, NetHEPT,
// DBLP) do.
func (b *Builder) AddBidirected(u, v NodeID, p float64) error {
	if err := b.AddEdge(u, v, p); err != nil {
		return err
	}
	return b.AddEdge(v, u, p)
}

// MustAddEdge is AddEdge that panics on error, for use in generators whose
// inputs are valid by construction.
func (b *Builder) MustAddEdge(from, to NodeID, p float64) {
	if err := b.AddEdge(from, to, p); err != nil {
		panic(err)
	}
}

// Build produces the immutable Graph. Parallel edges (same from/to added
// more than once) are merged into a single edge whose probability is the
// probability that at least one copy exists: 1 - Π(1-p_i). Build leaves the
// builder reusable but further edges will not affect the built graph.
func (b *Builder) Build() *Graph {
	return buildCSR(b.name, b.n, mergeParallel(b.edges))
}

// buildCSR materializes the CSR arrays for an edge list whose ids are the
// slice positions. Shared by Build (after parallel-merge) and ApplyDeltas
// (which appends new edges past an existing id range).
func buildCSR(name string, n int, edges []Edge) *Graph {
	g := &Graph{
		name:  name,
		n:     n,
		edges: edges,
	}
	m := len(edges)

	g.outIndex = make([]int32, n+1)
	g.inIndex = make([]int32, n+1)
	for _, e := range edges {
		g.outIndex[e.From+1]++
		g.inIndex[e.To+1]++
	}
	for v := 0; v < n; v++ {
		g.outIndex[v+1] += g.outIndex[v]
		g.inIndex[v+1] += g.inIndex[v]
	}

	g.outTo = make([]NodeID, m)
	g.outProb = make([]float64, m)
	g.outEdge = make([]EdgeID, m)
	g.inFrom = make([]NodeID, m)
	g.inEdge = make([]EdgeID, m)

	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for id, e := range edges {
		op := g.outIndex[e.From] + outPos[e.From]
		g.outTo[op] = e.To
		g.outProb[op] = e.P
		g.outEdge[op] = EdgeID(id)
		outPos[e.From]++

		ip := g.inIndex[e.To] + inPos[e.To]
		g.inFrom[ip] = e.From
		g.inEdge[ip] = EdgeID(id)
		inPos[e.To]++
	}
	return g
}

// mergeParallel sorts edges by (from, to) and merges duplicates with the
// noisy-or combination 1 - Π(1-p).
func mergeParallel(in []Edge) []Edge {
	if len(in) == 0 {
		return nil
	}
	edges := append([]Edge(nil), in...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	out := edges[:1]
	for _, e := range edges[1:] {
		last := &out[len(out)-1]
		if e.From == last.From && e.To == last.To {
			q := (1 - last.P) * (1 - e.P)
			last.P = 1 - q
			continue
		}
		out = append(out, e)
	}
	return out
}
