package uncertain

import (
	"reflect"
	"strings"
	"testing"

	"relcomp/internal/rng"
)

func rawTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.SetName("raw-test")
	edges := []Edge{
		{0, 1, 0.9}, {1, 2, 0.8}, {2, 3, 0.7}, {0, 3, 0.5},
		{3, 4, 0.6}, {4, 5, 1.0}, {5, 0, 0.1}, {2, 5, 0.25},
	}
	for _, e := range edges {
		b.MustAddEdge(e.From, e.To, e.P)
	}
	return b.Build()
}

func TestRawCSRRoundTrip(t *testing.T) {
	g := rawTestGraph(t)
	g2, err := FromRawCSR(g.RawCSR())
	if err != nil {
		t.Fatalf("FromRawCSR: %v", err)
	}
	if g2.Name() != g.Name() || g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: got (%q,%d,%d), want (%q,%d,%d)",
			g2.Name(), g2.NumNodes(), g2.NumEdges(), g.Name(), g.NumNodes(), g.NumEdges())
	}
	if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Errorf("edge lists differ:\n got %v\nwant %v", g2.Edges(), g.Edges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		if !reflect.DeepEqual(g2.OutNeighbors(id), g.OutNeighbors(id)) {
			t.Errorf("node %d: out-neighbors differ", v)
		}
		if !reflect.DeepEqual(g2.InNeighbors(id), g.InNeighbors(id)) {
			t.Errorf("node %d: in-neighbors differ", v)
		}
		if !reflect.DeepEqual(g2.OutProbs(id), g.OutProbs(id)) {
			t.Errorf("node %d: out-probs differ", v)
		}
	}
}

func TestRawCSRRoundTripRandom(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 10; trial++ {
		b := NewBuilder(50)
		for i := 0; i < 300; i++ {
			from, to := NodeID(r.Intn(50)), NodeID(r.Intn(50))
			if from == to {
				continue
			}
			b.MustAddEdge(from, to, 0.05+0.9*r.Float64())
		}
		g := b.Build()
		g2, err := FromRawCSR(g.RawCSR())
		if err != nil {
			t.Fatalf("trial %d: FromRawCSR: %v", trial, err)
		}
		if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
			t.Fatalf("trial %d: edge lists differ", trial)
		}
	}
}

// cloneRaw deep-copies a RawCSR so a test can corrupt one column without
// touching the source graph's aliased storage.
func cloneRaw(r RawCSR) RawCSR {
	r.OutIndex = append([]int32(nil), r.OutIndex...)
	r.OutTo = append([]NodeID(nil), r.OutTo...)
	r.OutProb = append([]float64(nil), r.OutProb...)
	r.OutEdge = append([]EdgeID(nil), r.OutEdge...)
	r.InIndex = append([]int32(nil), r.InIndex...)
	r.InFrom = append([]NodeID(nil), r.InFrom...)
	r.InEdge = append([]EdgeID(nil), r.InEdge...)
	return r
}

func TestFromRawCSRRejectsInvalid(t *testing.T) {
	g := rawTestGraph(t)
	cases := []struct {
		name   string
		mutate func(r *RawCSR)
		want   string // substring of the error
	}{
		{"negative node count", func(r *RawCSR) { r.NumNodes = -1 }, "negative node count"},
		{"out-index wrong length", func(r *RawCSR) { r.OutIndex = r.OutIndex[:3] }, "index arrays"},
		{"edge columns disagree", func(r *RawCSR) { r.OutProb = r.OutProb[:2] }, "disagree on length"},
		{"out-index bad start", func(r *RawCSR) { r.OutIndex[0] = 1 }, "starts at"},
		{"out-index decreases", func(r *RawCSR) { r.OutIndex[2] = r.OutIndex[1] - 1 }, "decreases"},
		{"out-index bad end", func(r *RawCSR) { r.OutIndex[len(r.OutIndex)-1]-- }, "ends at"},
		{"head out of range", func(r *RawCSR) { r.OutTo[0] = 99 }, "out of range"},
		{"negative head", func(r *RawCSR) { r.OutTo[0] = -2 }, "out of range"},
		{"self loop", func(r *RawCSR) { r.OutTo[0] = 0 }, "self loop"},
		{"probability zero", func(r *RawCSR) { r.OutProb[1] = 0 }, "probability"},
		{"probability above one", func(r *RawCSR) { r.OutProb[1] = 1.5 }, "probability"},
		{"edge id out of range", func(r *RawCSR) { r.OutEdge[0] = EdgeID(len(r.OutTo)) }, "out of range"},
		{"duplicate edge id", func(r *RawCSR) { r.OutEdge[1] = r.OutEdge[0] }, "two out slots"},
		{"in edge id duplicated", func(r *RawCSR) { r.InEdge[1] = r.InEdge[0] }, "two in slots"},
		{"in-CSR endpoint mismatch", func(r *RawCSR) {
			// Swap two in-slots' from columns without swapping edge ids.
			r.InFrom[0], r.InFrom[1] = r.InFrom[1], r.InFrom[0]
		}, "in-CSR says"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := cloneRaw(g.RawCSR())
			tc.mutate(&raw)
			if _, err := FromRawCSR(raw); err == nil {
				t.Fatal("invalid RawCSR accepted")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
