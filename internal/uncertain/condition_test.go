package uncertain

import "testing"

func overlayTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5)
	b.MustAddEdge(0, 2, 0.6)
	b.MustAddEdge(1, 3, 0.7)
	b.MustAddEdge(2, 3, 0.8)
	return b.Build()
}

// TestOverlayPinsProbabilities: included edges read 1, excluded edges 0,
// the rest unchanged — consistently through both the edge list and the
// out-adjacency probability column.
func TestOverlayPinsProbabilities(t *testing.T) {
	g := overlayTestGraph(t)
	ov, err := Overlay(g, []EdgeID{1}, []EdgeID{2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[EdgeID]float64{0: 0.5, 1: 1, 2: 0, 3: 0.8}
	for id, p := range want {
		if got := ov.Edge(id).P; got != p {
			t.Errorf("edge %d: P = %v, want %v", id, got, p)
		}
	}
	for v := NodeID(0); int(v) < ov.NumNodes(); v++ {
		ids := ov.OutEdgeIDs(v)
		ps := ov.OutProbs(v)
		for i, id := range ids {
			if ps[i] != want[id] {
				t.Errorf("out-prob of edge %d: %v, want %v", id, ps[i], want[id])
			}
		}
	}
	// The base graph is untouched.
	if g.Edge(1).P != 0.6 || g.Edge(2).P != 0.7 {
		t.Error("overlay mutated the base graph")
	}
}

// TestOverlaySharesTopology: the overlay aliases the base CSR arrays
// (that is the point — no rebuild), copying only the probability columns.
func TestOverlaySharesTopology(t *testing.T) {
	g := overlayTestGraph(t)
	ov, err := Overlay(g, nil, []EdgeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if &ov.outTo[0] != &g.outTo[0] || &ov.inFrom[0] != &g.inFrom[0] ||
		&ov.outEdge[0] != &g.outEdge[0] || &ov.outIndex[0] != &g.outIndex[0] {
		t.Error("overlay duplicated topology arrays")
	}
	if &ov.outProb[0] == &g.outProb[0] {
		t.Error("overlay shares the probability column it must copy")
	}
	if ov.NumNodes() != g.NumNodes() || ov.NumEdges() != g.NumEdges() {
		t.Error("overlay changed graph dimensions")
	}
}

// TestOverlayValidation mirrors Condition's error contract.
func TestOverlayValidation(t *testing.T) {
	g := overlayTestGraph(t)
	if _, err := Overlay(g, []EdgeID{99}, nil); err == nil {
		t.Error("out-of-range include accepted")
	}
	if _, err := Overlay(g, nil, []EdgeID{-1}); err == nil {
		t.Error("negative exclude accepted")
	}
	if _, err := Overlay(g, []EdgeID{1}, []EdgeID{1}); err == nil {
		t.Error("contradictory evidence accepted")
	}
}
