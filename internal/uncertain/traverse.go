package uncertain

// Deterministic traversals over the graph skeleton (probabilities ignored).
// These support workload generation (h-hop pair selection) and structural
// checks inside the estimators.

// HopDistances returns the BFS hop distance from s to every node over the
// directed skeleton, with -1 for unreachable nodes. maxHops < 0 means
// unbounded.
func (g *Graph) HopDistances(s NodeID, maxHops int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, s)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxHops >= 0 && int(dist[v]) >= maxHops {
			continue
		}
		for _, w := range g.OutNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Reachable reports whether t is reachable from s over the directed
// skeleton (every edge assumed present).
func (g *Graph) Reachable(s, t NodeID) bool {
	if s == t {
		return true
	}
	seen := make([]bool, g.n)
	seen[s] = true
	stack := []NodeID{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.OutNeighbors(v) {
			if w == t {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// Diameter returns the longest finite BFS eccentricity over a sample of
// source nodes (all nodes if sample <= 0 or sample >= n). It is an estimate
// used only for reporting, not for correctness.
func (g *Graph) Diameter(sample int) int {
	if g.n == 0 {
		return 0
	}
	step := 1
	if sample > 0 && sample < g.n {
		step = g.n / sample
		if step == 0 {
			step = 1
		}
	}
	best := 0
	for s := 0; s < g.n; s += step {
		dist := g.HopDistances(NodeID(s), -1)
		for _, d := range dist {
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}
