package uncertain

import (
	"testing"
)

func relabelTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6).SetName("relabel-test")
	// Node 3 is the hub (out-degree 3), node 0 has none.
	edges := []Edge{
		{From: 3, To: 0, P: 0.5},
		{From: 3, To: 1, P: 0.25},
		{From: 3, To: 5, P: 0.75},
		{From: 1, To: 2, P: 0.5},
		{From: 1, To: 4, P: 0.9},
		{From: 2, To: 3, P: 0.1},
	}
	for _, e := range edges {
		b.MustAddEdge(e.From, e.To, e.P)
	}
	return b.Build()
}

func TestDegreePermSortsHubsFirst(t *testing.T) {
	g := relabelTestGraph(t)
	perm := DegreePerm(g)
	// Descending out-degree, ties by old id: 3(3), 1(2), 2(1), then 0, 4, 5.
	want := []NodeID{3, 1, 2, 0, 4, 5} // order[new] = old
	inv := InversePerm(perm)
	for newID, old := range want {
		if inv[newID] != old {
			t.Fatalf("rank %d: node %d, want %d (inv=%v)", newID, inv[newID], old, inv)
		}
	}
	rg, _, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !IsDegreeSorted(rg) {
		t.Fatalf("relabeled graph not degree-sorted")
	}
	if IsDegreeSorted(g) {
		t.Fatalf("original graph reports degree-sorted")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := relabelTestGraph(t)
	perm := DegreePerm(g)
	rg, edgeMap, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumNodes() != g.NumNodes() || rg.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d vs %d/%d", rg.NumNodes(), rg.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if rg.Name() != g.Name() {
		t.Fatalf("name changed: %q", rg.Name())
	}
	// Every old edge must reappear under its mapped id with renamed
	// endpoints and the same probability.
	seen := make([]bool, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		old := g.Edge(EdgeID(id))
		ne := rg.Edge(edgeMap[id])
		if ne.From != perm[old.From] || ne.To != perm[old.To] || ne.P != old.P {
			t.Fatalf("edge %d: got %+v, want (%d->%d p=%v)", id, ne, perm[old.From], perm[old.To], old.P)
		}
		if seen[edgeMap[id]] {
			t.Fatalf("edge map not injective at %d", edgeMap[id])
		}
		seen[edgeMap[id]] = true
	}
}

func TestRelabelInverseRoundTrips(t *testing.T) {
	g := relabelTestGraph(t)
	perm := DegreePerm(g)
	rg, _, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := RelabelInverse(rg, perm)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumEdges(); id++ {
		if back.Edge(EdgeID(id)) != g.Edge(EdgeID(id)) {
			t.Fatalf("edge %d: %+v != %+v", id, back.Edge(EdgeID(id)), g.Edge(EdgeID(id)))
		}
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := relabelTestGraph(t)
	for _, perm := range [][]NodeID{
		{0, 1, 2},             // wrong length
		{0, 1, 2, 3, 4, 9},    // out of range
		{0, 1, 2, 3, 4, 4},    // duplicate
		{0, 1, 2, 3, 4, -1},   // negative
		{5, 4, 3, 2, 1, 0, 0}, // wrong length (long)
	} {
		if _, _, err := Relabel(g, perm); err == nil {
			t.Fatalf("perm %v accepted", perm)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := relabelTestGraph(t)
	max, mean, p99 := DegreeStats(g)
	if max != 3 {
		t.Fatalf("max = %d, want 3", max)
	}
	if mean != 1.0 { // 6 edges / 6 nodes
		t.Fatalf("mean = %v, want 1", mean)
	}
	if p99 != 3 { // rank ceil(0.99*6)=6 of [0 0 0 1 2 3]
		t.Fatalf("p99 = %d, want 3", p99)
	}
	empty := NewBuilder(0).Build()
	if m, me, p := DegreeStats(empty); m != 0 || me != 0 || p != 0 {
		t.Fatalf("empty stats = %d %v %d", m, me, p)
	}
}
