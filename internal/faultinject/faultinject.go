// Package faultinject is the repo's deterministic fault-injection
// harness: named injection points compiled into the serving runtime
// (estimator panics, slow replicas, snapshot read faults, memory
// pressure, clock skew) behind one process-global Injector that costs a
// single atomic load when disabled — the default for every production
// process, which never calls Set.
//
// Sites consult the harness with a stable 64-bit key derived from the
// work item's identity (the engine uses its per-query stream seed), so a
// seeded injector fires on the same requests on every run, independent of
// goroutine scheduling. That is what lets the soak tests assert exact
// behavior under faults: with the same workload and the same injector
// seed, the set of injected requests is a pure function of the inputs,
// and every uninjected request must still answer bit-identically to a
// fault-free run.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Point names one injection site. Sites are compiled into production
// code, so the set is small and stable; each constant documents where it
// fires.
type Point uint8

const (
	// EstimatorPanic fires inside the engine's estimator execution, at
	// the point a replica's Estimate (or sampler session) is about to
	// run. The site panics, exercising the engine's per-unit containment
	// and pool-discard paths.
	EstimatorPanic Point = iota
	// SlowReplica fires at the same site and delays the replica by the
	// injector's Delay, exercising queue-wait deadlines, degradation,
	// and cancellation mid-batch.
	SlowReplica
	// SnapshotRead fires in internal/snapshot's container open path and
	// surfaces as a wrapped ErrCorrupt, exercising the heap-rebuild
	// degradation at server startup.
	SnapshotRead
	// SnapshotFlip fires in internal/snapshot's Verify checksum sweep,
	// standing in for a bit-flipped payload: Verify reports a wrapped
	// ErrCorrupt without any real byte needing to change (the mapping is
	// read-only).
	SnapshotFlip
	// MemPressure fires in the engine's admission controller and forces
	// its memory-watermark signal on, exercising the degradation ladder
	// without having to inflate the real heap.
	MemPressure
	// ClockSkew fires in the admission controller's queue-wait deadline,
	// shrinking (positive skew) or stretching (negative skew) the wait a
	// queued request is allowed, as a skewed clock would.
	ClockSkew

	numPoints = int(ClockSkew) + 1
)

// String returns the point's stable name (used in logs and errors).
func (p Point) String() string {
	switch p {
	case EstimatorPanic:
		return "estimator-panic"
	case SlowReplica:
		return "slow-replica"
	case SnapshotRead:
		return "snapshot-read"
	case SnapshotFlip:
		return "snapshot-flip"
	case MemPressure:
		return "mem-pressure"
	case ClockSkew:
		return "clock-skew"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// Outcome is an injector's verdict for one site consultation. The zero
// Outcome means "no fault": the site proceeds untouched.
type Outcome struct {
	// Panic instructs the site to panic (EstimatorPanic).
	Panic bool
	// Err is an error the site must surface (SnapshotRead, SnapshotFlip);
	// the site wraps it in its own typed error (e.g. ErrCorrupt).
	Err error
	// Delay is how long the site must sleep before proceeding
	// (SlowReplica).
	Delay time.Duration
	// Skew shifts a deadline the site is about to honor (ClockSkew):
	// positive skew makes the deadline earlier.
	Skew time.Duration
	// Fire is the generic boolean signal (MemPressure).
	Fire bool
}

// Injector decides what happens at an injection point. key identifies the
// work item deterministically (the engine passes its per-query stream
// seed; sites with no natural identity pass 0), so a seeded injector's
// verdicts are reproducible regardless of scheduling. Implementations
// must be safe for concurrent use.
type Injector interface {
	At(p Point, key uint64) Outcome
}

// holder wraps the interface so the global can live in an atomic.Pointer.
type holder struct{ inj Injector }

var active atomic.Pointer[holder]

// Set installs inj as the process-global injector and returns a restore
// function that reinstates the previous one — tests defer it so injection
// never leaks across test boundaries. Set(nil) disables injection.
func Set(inj Injector) (restore func()) {
	var h *holder
	if inj != nil {
		h = &holder{inj: inj}
	}
	prev := active.Swap(h)
	return func() { active.Store(prev) }
}

// Enabled reports whether an injector is installed. Sites may use it to
// skip building keys when injection is off; the helpers below already
// fold the check in.
func Enabled() bool { return active.Load() != nil }

// Check consults the installed injector; with none installed it returns
// the zero Outcome at the cost of one atomic load.
func Check(p Point, key uint64) Outcome {
	h := active.Load()
	if h == nil {
		return Outcome{}
	}
	return h.inj.At(p, key)
}

// Sleep consults p and sleeps the instructed delay, if any.
func Sleep(p Point, key uint64) {
	if d := Check(p, key).Delay; d > 0 {
		time.Sleep(d)
	}
}

// MaybePanic consults p and panics when instructed — the estimator-fault
// site. It never fires without an installed injector.
func MaybePanic(p Point, key uint64) {
	if Check(p, key).Panic {
		panic(fmt.Sprintf("faultinject: injected %s (key %#x)", p, key))
	}
}

// ErrorAt consults p and returns the error to inject, nil when none.
func ErrorAt(p Point, key uint64) error {
	return Check(p, key).Err
}

// FireAt consults p and reports the boolean signal (MemPressure).
func FireAt(p Point, key uint64) bool {
	return Check(p, key).Fire
}

// SkewAt consults p and returns the deadline skew to apply.
func SkewAt(p Point, key uint64) time.Duration {
	return Check(p, key).Skew
}

// ErrInjected is the base of the errors a Seeded injector returns from
// its error-bearing points, so tests can errors.Is their way back to
// "this failure was injected, not real".
var ErrInjected = errors.New("faultinject: injected fault")

// Seeded is the standard deterministic injector: each point fires with a
// configured probability, decided by hashing (seed, point, key) — never
// by a global RNG — so the fired set is a pure function of the workload,
// stable under concurrency and replay. Configure before installing; the
// With* setters are not safe to call once the injector is shared.
type Seeded struct {
	seed  uint64
	rate  [numPoints]float64
	delay time.Duration // SlowReplica sleep when it fires
	skew  time.Duration // ClockSkew shift when it fires
	fired [numPoints]atomic.Uint64
}

// NewSeeded returns a Seeded injector with every rate zero.
func NewSeeded(seed uint64) *Seeded { return &Seeded{seed: seed} }

// WithRate sets the firing probability of p (clamped to [0, 1]) and
// returns the injector for chaining.
func (s *Seeded) WithRate(p Point, rate float64) *Seeded {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s.rate[p] = rate
	return s
}

// WithDelay sets the sleep a fired SlowReplica injects.
func (s *Seeded) WithDelay(d time.Duration) *Seeded {
	s.delay = d
	return s
}

// WithSkew sets the deadline shift a fired ClockSkew injects.
func (s *Seeded) WithSkew(d time.Duration) *Seeded {
	s.skew = d
	return s
}

// Fired reports how many times p has fired since construction.
func (s *Seeded) Fired(p Point) uint64 { return s.fired[p].Load() }

// Fires reports whether p fires for key, without counting — the replay
// predicate soak tests use to decide which requests were injected.
func (s *Seeded) Fires(p Point, key uint64) bool {
	if s.rate[p] <= 0 {
		return false
	}
	// splitmix64 finalizer over (seed, point, key): uniform enough for a
	// firing decision and exactly reproducible.
	z := s.seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15 ^ key
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < s.rate[p]
}

// At implements Injector.
func (s *Seeded) At(p Point, key uint64) Outcome {
	if !s.Fires(p, key) {
		return Outcome{}
	}
	s.fired[p].Add(1)
	out := Outcome{}
	switch p {
	case EstimatorPanic:
		out.Panic = true
	case SlowReplica:
		out.Delay = s.delay
	case SnapshotRead, SnapshotFlip:
		out.Err = fmt.Errorf("%w at %s (key %#x)", ErrInjected, p, key)
	case MemPressure:
		out.Fire = true
	case ClockSkew:
		out.Skew = s.skew
	}
	return out
}
