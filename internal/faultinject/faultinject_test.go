package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDisabledIsZero: with no injector installed, every helper is a
// no-op returning zero values — the production fast path.
func TestDisabledIsZero(t *testing.T) {
	if Enabled() {
		t.Fatal("injector enabled at package init")
	}
	if out := Check(EstimatorPanic, 123); out != (Outcome{}) {
		t.Fatalf("Check with no injector = %+v, want zero", out)
	}
	if err := ErrorAt(SnapshotRead, 1); err != nil {
		t.Fatalf("ErrorAt with no injector = %v", err)
	}
	if FireAt(MemPressure, 0) {
		t.Fatal("FireAt with no injector fired")
	}
	if SkewAt(ClockSkew, 0) != 0 {
		t.Fatal("SkewAt with no injector skewed")
	}
	MaybePanic(EstimatorPanic, 42) // must not panic
	Sleep(SlowReplica, 42)         // must not sleep
}

// TestSetRestore: Set installs, restore reinstates the previous injector
// (including nil), and nested Set/restore pairs unwind correctly.
func TestSetRestore(t *testing.T) {
	a := NewSeeded(1).WithRate(MemPressure, 1)
	b := NewSeeded(2)
	restoreA := Set(a)
	if !Enabled() || !FireAt(MemPressure, 0) {
		t.Fatal("first injector not active")
	}
	restoreB := Set(b)
	if FireAt(MemPressure, 0) {
		t.Fatal("second injector did not replace the first")
	}
	restoreB()
	if !FireAt(MemPressure, 0) {
		t.Fatal("restore did not reinstate the first injector")
	}
	restoreA()
	if Enabled() {
		t.Fatal("outer restore did not disable injection")
	}
}

// TestSeededDeterministic: Fires is a pure function of (seed, point,
// key) — identical across calls and across equal-seeded injectors — and
// different seeds decide differently somewhere.
func TestSeededDeterministic(t *testing.T) {
	a := NewSeeded(7).WithRate(EstimatorPanic, 0.3)
	b := NewSeeded(7).WithRate(EstimatorPanic, 0.3)
	c := NewSeeded(8).WithRate(EstimatorPanic, 0.3)
	diff := 0
	for key := uint64(0); key < 2000; key++ {
		fa, fb := a.Fires(EstimatorPanic, key), b.Fires(EstimatorPanic, key)
		if fa != fb {
			t.Fatalf("equal-seeded injectors disagree at key %d", key)
		}
		if fa != c.Fires(EstimatorPanic, key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds never disagree — firing ignores the seed")
	}
}

// TestSeededRate: the empirical firing rate over many keys approximates
// the configured probability, and rate 0 / rate 1 are exact.
func TestSeededRate(t *testing.T) {
	s := NewSeeded(42).WithRate(SlowReplica, 0.2)
	fired := 0
	const n = 20000
	for key := uint64(0); key < n; key++ {
		if s.Fires(SlowReplica, key) {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("empirical rate %.3f, want ~0.2", got)
	}
	always := NewSeeded(1).WithRate(EstimatorPanic, 1)
	never := NewSeeded(1) // rate 0
	for key := uint64(0); key < 100; key++ {
		if !always.Fires(EstimatorPanic, key) {
			t.Fatalf("rate 1 did not fire at key %d", key)
		}
		if never.Fires(EstimatorPanic, key) {
			t.Fatalf("rate 0 fired at key %d", key)
		}
	}
}

// TestSeededOutcomes: each point's fired Outcome carries the right
// payload, and the fired counters track consultations.
func TestSeededOutcomes(t *testing.T) {
	s := NewSeeded(1).
		WithRate(EstimatorPanic, 1).
		WithRate(SlowReplica, 1).
		WithRate(SnapshotRead, 1).
		WithRate(SnapshotFlip, 1).
		WithRate(MemPressure, 1).
		WithRate(ClockSkew, 1).
		WithDelay(3 * time.Millisecond).
		WithSkew(50 * time.Millisecond)

	if out := s.At(EstimatorPanic, 0); !out.Panic {
		t.Fatal("EstimatorPanic outcome lacks Panic")
	}
	if out := s.At(SlowReplica, 0); out.Delay != 3*time.Millisecond {
		t.Fatalf("SlowReplica delay %v", out.Delay)
	}
	if out := s.At(SnapshotRead, 0); !errors.Is(out.Err, ErrInjected) {
		t.Fatalf("SnapshotRead err %v, want ErrInjected", out.Err)
	}
	if out := s.At(SnapshotFlip, 0); !errors.Is(out.Err, ErrInjected) {
		t.Fatalf("SnapshotFlip err %v, want ErrInjected", out.Err)
	}
	if out := s.At(MemPressure, 0); !out.Fire {
		t.Fatal("MemPressure outcome lacks Fire")
	}
	if out := s.At(ClockSkew, 0); out.Skew != 50*time.Millisecond {
		t.Fatalf("ClockSkew skew %v", out.Skew)
	}
	for p := EstimatorPanic; int(p) < numPoints; p++ {
		if got := s.Fired(p); got != 1 {
			t.Fatalf("Fired(%s) = %d, want 1", p, got)
		}
	}
}

// TestMaybePanicPanics: the panic helper actually panics when instructed.
func TestMaybePanicPanics(t *testing.T) {
	restore := Set(NewSeeded(1).WithRate(EstimatorPanic, 1))
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatal("MaybePanic did not panic with a firing injector")
		}
	}()
	MaybePanic(EstimatorPanic, 99)
}

// TestConcurrentConsultation: concurrent Check/Set races are safe (run
// under -race in CI).
func TestConcurrentConsultation(t *testing.T) {
	s := NewSeeded(3).WithRate(MemPressure, 0.5)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					Check(MemPressure, uint64(w*1000+i))
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		restore := Set(s)
		restore()
	}
	close(stop)
	wg.Wait()
}

// TestPointStrings: every point has a distinct stable name.
func TestPointStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := EstimatorPanic; int(p) < numPoints; p++ {
		name := p.String()
		if name == "" || seen[name] {
			t.Fatalf("point %d name %q empty or duplicated", p, name)
		}
		seen[name] = true
	}
}
