package exact

import (
	"math"
	"testing"
	"testing/quick"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

func buildGraph(t *testing.T, n int, edges []uncertain.Edge) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return b.Build()
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleEdge(t *testing.T) {
	g := buildGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.3}})
	for _, fn := range []func(*uncertain.Graph, uncertain.NodeID, uncertain.NodeID) (float64, error){Enumerate, Factoring} {
		r, err := fn(g, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, 0.3, 1e-12) {
			t.Errorf("R(0,1) = %v, want 0.3", r)
		}
		// Reverse direction is unreachable.
		r, err = fn(g, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r != 0 {
			t.Errorf("R(1,0) = %v, want 0", r)
		}
	}
}

func TestSeriesPath(t *testing.T) {
	// 0 -> 1 -> 2: reliability is the product of the edge probabilities.
	g := buildGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 0.5},
		{From: 1, To: 2, P: 0.4},
	})
	want := 0.5 * 0.4
	r, err := Enumerate(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, want, 1e-12) {
		t.Errorf("Enumerate = %v, want %v", r, want)
	}
	r, err = Factoring(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, want, 1e-12) {
		t.Errorf("Factoring = %v, want %v", r, want)
	}
}

func TestParallelPaths(t *testing.T) {
	// Two disjoint 0->x->3 paths: R = 1 - (1-p1p2)(1-p3p4).
	g := buildGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 3, P: 0.8},
		{From: 0, To: 2, P: 0.5},
		{From: 2, To: 3, P: 0.7},
	})
	want := 1 - (1-0.9*0.8)*(1-0.5*0.7)
	for _, fn := range []func(*uncertain.Graph, uncertain.NodeID, uncertain.NodeID) (float64, error){Enumerate, Factoring} {
		r, err := fn(g, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, want, 1e-12) {
			t.Errorf("R = %v, want %v", r, want)
		}
	}
}

func TestBridgeGraph(t *testing.T) {
	// The classic Wheatstone bridge: 0->1, 0->2, 1->3, 2->3, and bridge
	// 1->2. Known closed form by conditioning on the bridge.
	p := map[string]float64{"01": 0.6, "02": 0.5, "13": 0.55, "23": 0.45, "12": 0.3}
	g := buildGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: p["01"]},
		{From: 0, To: 2, P: p["02"]},
		{From: 1, To: 3, P: p["13"]},
		{From: 2, To: 3, P: p["23"]},
		{From: 1, To: 2, P: p["12"]},
	})
	// Condition on bridge 1->2.
	// Present: R = 1-(1-p01)(1-p02·...) — easier: with 1->2 present,
	// paths: 0-1-3, 0-2-3, 0-1-2-3.
	withBridge := func() float64 {
		// Enumerate the remaining 4 edges exactly.
		total := 0.0
		edges := []struct {
			name     string
			from, to int
		}{{"01", 0, 1}, {"02", 0, 2}, {"13", 1, 3}, {"23", 2, 3}}
		for mask := 0; mask < 16; mask++ {
			pr := 1.0
			adj := map[int][]int{1: {2}} // bridge present
			for i, e := range edges {
				if mask&(1<<i) != 0 {
					pr *= p[e.name]
					adj[e.from] = append(adj[e.from], e.to)
				} else {
					pr *= 1 - p[e.name]
				}
			}
			// reachability 0 -> 3
			seen := map[int]bool{0: true}
			stack := []int{0}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
			if seen[3] {
				total += pr
			}
		}
		return total
	}()
	withoutBridge := 1 - (1-p["01"]*p["13"])*(1-p["02"]*p["23"])
	want := p["12"]*withBridge + (1-p["12"])*withoutBridge

	for _, fn := range []func(*uncertain.Graph, uncertain.NodeID, uncertain.NodeID) (float64, error){Enumerate, Factoring} {
		r, err := fn(g, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, want, 1e-12) {
			t.Errorf("R = %v, want %v", r, want)
		}
	}
}

func TestSourceEqualsTarget(t *testing.T) {
	g := buildGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	r, err := Enumerate(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("R(1,1) = %v, want 1", r)
	}
	r, err = Factoring(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("R(0,0) = %v, want 1", r)
	}
}

func TestQueryValidation(t *testing.T) {
	g := buildGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	if _, err := Enumerate(g, -1, 1); err == nil {
		t.Error("Enumerate accepted negative source")
	}
	if _, err := Factoring(g, 0, 99); err == nil {
		t.Error("Factoring accepted out-of-range target")
	}
}

func TestEnumerationLimit(t *testing.T) {
	b := uncertain.NewBuilder(30)
	for i := 0; i < 28; i++ {
		if err := b.AddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if _, err := Enumerate(g, 0, 29); err == nil {
		t.Error("Enumerate accepted graph above the edge limit")
	}
	// Factoring has no such limit and the chain has a product closed form.
	r, err := Factoring(g, 0, 28)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.5, 28)
	if !almostEqual(r, want, 1e-15) {
		t.Errorf("Factoring chain = %v, want %v", r, want)
	}
}

// randomGraph builds a random graph with n nodes and m edges (valid by
// construction, no self loops; parallel edges merge in the builder).
func randomGraph(r *rng.Source, n, m int) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for i := 0; i < m; i++ {
		from := uncertain.NodeID(r.Intn(n))
		to := uncertain.NodeID(r.Intn(n))
		if from == to {
			continue
		}
		p := 0.05 + 0.9*r.Float64()
		b.MustAddEdge(from, to, p)
	}
	return b.Build()
}

// TestFactoringMatchesEnumeration cross-checks the two independent exact
// algorithms on random small graphs.
func TestFactoringMatchesEnumeration(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	seedCounter := uint64(0)
	f := func(seed uint64) bool {
		seedCounter++
		r := rng.New(seed + seedCounter)
		n := 2 + r.Intn(6)
		m := r.Intn(11)
		g := randomGraph(r, n, m)
		if g.NumEdges() > MaxEnumerationEdges {
			return true
		}
		s := uncertain.NodeID(r.Intn(n))
		tt := uncertain.NodeID(r.Intn(n))
		re, err := Enumerate(g, s, tt)
		if err != nil {
			return false
		}
		rf, err := Factoring(g, s, tt)
		if err != nil {
			return false
		}
		return almostEqual(re, rf, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReliabilityBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		g := randomGraph(r, n, r.Intn(9))
		s := uncertain.NodeID(r.Intn(n))
		tt := uncertain.NodeID(r.Intn(n))
		rel, err := Factoring(g, s, tt)
		if err != nil {
			return false
		}
		return rel >= 0 && rel <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
