// Package exact computes exact s-t reliability for small uncertain graphs.
// The problem is #P-complete (Valiant 1979; Ball 1986), so these routines
// are exponential and intended as ground truth for testing the sampling
// estimators, not for production queries.
//
// Two independent algorithms are provided so they can cross-check each
// other: brute-force enumeration of all 2^m possible worlds, and the
// classical factoring (conditioning) recursion with series path/cut
// termination.
package exact

import (
	"fmt"

	"relcomp/internal/uncertain"
)

// MaxEnumerationEdges bounds Enumerate; 2^25 worlds is ~33M BFS runs.
const MaxEnumerationEdges = 25

// Enumerate computes R(s,t) by summing Pr(G)·I_G(s,t) over all 2^m possible
// worlds (Eq. 2 of the paper). It returns an error if the graph has more
// than MaxEnumerationEdges edges.
func Enumerate(g *uncertain.Graph, s, t uncertain.NodeID) (float64, error) {
	m := g.NumEdges()
	if m > MaxEnumerationEdges {
		return 0, fmt.Errorf("exact: %d edges exceeds enumeration limit %d", m, MaxEnumerationEdges)
	}
	if err := checkQuery(g, s, t); err != nil {
		return 0, err
	}
	if s == t {
		return 1, nil
	}

	edges := g.Edges()
	total := 0.0
	seen := make([]bool, g.NumNodes())
	stack := make([]uncertain.NodeID, 0, g.NumNodes())
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		pr := 1.0
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				pr *= e.P
			} else {
				pr *= 1 - e.P
			}
		}
		if pr == 0 {
			continue
		}
		if reachableUnderMask(g, s, t, mask, seen, stack) {
			total += pr
		}
	}
	return total, nil
}

func reachableUnderMask(g *uncertain.Graph, s, t uncertain.NodeID, mask uint64, seen []bool, stack []uncertain.NodeID) bool {
	for i := range seen {
		seen[i] = false
	}
	seen[s] = true
	stack = stack[:0]
	stack = append(stack, s)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ids := g.OutEdgeIDs(v)
		tos := g.OutNeighbors(v)
		for i, id := range ids {
			if mask&(1<<uint(id)) == 0 {
				continue
			}
			w := tos[i]
			if w == t {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// Factoring computes R(s,t) by the factoring theorem:
//
//	R = P(e)·R(G|e present) + (1-P(e))·R(G|e absent)
//
// choosing e adjacent to the set of nodes already known reachable from s,
// and terminating a branch as soon as the included edges contain an s-t
// path (R=1) or no undetermined or included edge leaves the reached set
// without hitting t (R=0). Worst case exponential, but far faster than
// Enumerate on sparse graphs.
func Factoring(g *uncertain.Graph, s, t uncertain.NodeID) (float64, error) {
	if err := checkQuery(g, s, t); err != nil {
		return 0, err
	}
	if s == t {
		return 1, nil
	}
	f := &factorer{
		g:     g,
		t:     t,
		state: make([]int8, g.NumEdges()),
		seen:  make([]bool, g.NumNodes()),
	}
	return f.rec(s), nil
}

type factorer struct {
	g     *uncertain.Graph
	t     uncertain.NodeID
	state []int8 // 0 undetermined, 1 included, -1 excluded
	seen  []bool
	stack []uncertain.NodeID
}

// rec returns the reliability conditioned on the current edge states.
func (f *factorer) rec(s uncertain.NodeID) float64 {
	// Reached set over included edges; pick the first undetermined edge
	// leaving it.
	for i := range f.seen {
		f.seen[i] = false
	}
	f.seen[s] = true
	f.stack = f.stack[:0]
	f.stack = append(f.stack, s)
	pick := uncertain.EdgeID(-1)
	for len(f.stack) > 0 {
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		ids := f.g.OutEdgeIDs(v)
		tos := f.g.OutNeighbors(v)
		for i, id := range ids {
			switch f.state[id] {
			case 1:
				w := tos[i]
				if w == f.t {
					return 1
				}
				if !f.seen[w] {
					f.seen[w] = true
					f.stack = append(f.stack, w)
				}
			case 0:
				if pick < 0 && !f.seen[tos[i]] {
					pick = id
				}
			}
		}
	}
	if pick < 0 {
		// No undetermined edge leaves the reached set and t was not
		// reached: every s-t path crosses an excluded edge or a
		// determined-closed frontier, so reliability is 0.
		return 0
	}

	p := f.g.Edge(pick).P
	f.state[pick] = 1
	r1 := f.rec(s)
	f.state[pick] = -1
	r0 := f.rec(s)
	f.state[pick] = 0
	return p*r1 + (1-p)*r0
}

func checkQuery(g *uncertain.Graph, s, t uncertain.NodeID) error {
	n := uncertain.NodeID(g.NumNodes())
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("exact: query (%d,%d) out of range [0,%d)", s, t, n)
	}
	return nil
}
