// Package arena provides a recycling bump allocator for per-query
// estimator scratch. The sampling hot paths open and close short-lived
// working sets — per-node hit counters for a multi-target sweep, lane
// buffers for a wide pack — on every query; allocating them with make()
// hands the garbage collector O(n) of garbage per query, which under
// engine concurrency turns into measurable GC pressure. An Arena instead
// carves those slices out of a handful of persistent slabs and reclaims
// them all at once with Reset, so steady-state queries allocate nothing.
//
// # Ownership and lifetime
//
// An Arena is owned by exactly one estimator instance and shares that
// instance's concurrency contract: not safe for concurrent use. The
// engine's replica pools hand each borrowed estimator — and therefore
// its arena — to one worker at a time, which is what keeps concurrent
// queries from ever sharing scratch (asserted by the engine's -race
// tests).
//
// Memory returned by the allocation methods is valid until the owning
// instance's next query begins (each query calls Reset first). A caller
// that must keep data past that point — a returned result slice, for
// example — must copy it out; estimator results handed to engine callers
// are always heap-allocated for this reason.
//
// # The append ban
//
// The allocation methods return defined slice types (Uint64s, Int64s,
// Float64s, NodeIDs) rather than raw slices. Appending to an
// arena-owned slice is always a bug: either it grows in place and
// silently overlaps the next allocation from the same slab, or it
// reallocates onto the heap and the "arena-backed" buffer quietly stops
// being one. The defined types give the relint arenaappend analyzer a
// mechanical handle: append on any of them outside this package is a
// vet failure.
package arena

import "relcomp/internal/uncertain"

// Uint64s, Int64s, Float64s, and NodeIDs are arena-owned slices. They
// index and slice like their underlying types; appending to them outside
// this package is forbidden (enforced by relint's arenaappend analyzer).
type (
	Uint64s  []uint64
	Int64s   []int64
	Float64s []float64
	NodeIDs  []uncertain.NodeID
)

// Arena is the allocator: one persistent slab per element kind, carved
// by a bump offset, recycled wholesale by Reset. The zero value is ready
// to use.
type Arena struct {
	u64 slab[uint64]
	i64 slab[int64]
	f64 slab[float64]
	ids slab[uncertain.NodeID]
}

// slab is one element kind's backing store. When a request outgrows the
// current buffer a larger one replaces it; outstanding slices keep the
// old buffer alive until their owning query ends, so growth never
// invalidates memory the current query handed out.
type slab[T uint64 | int64 | float64 | uncertain.NodeID] struct {
	buf []T
	off int
}

// alloc returns n zeroed elements from the slab.
func (s *slab[T]) alloc(n int) []T {
	if n < 0 {
		panic("arena: negative allocation size")
	}
	if s.off+n > len(s.buf) {
		grown := 2 * len(s.buf)
		if grown < s.off+n {
			grown = s.off + n
		}
		s.buf = make([]T, grown)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out)
	return out
}

// Reset reclaims every allocation at once. The owning estimator calls it
// at the start of each query; all slices handed out earlier are dead from
// the caller's point of view (their memory will be re-carved) and must
// not be used again.
func (a *Arena) Reset() {
	a.u64.off = 0
	a.i64.off = 0
	a.f64.off = 0
	a.ids.off = 0
}

// Uint64s returns n zeroed uint64s valid until the next Reset.
func (a *Arena) Uint64s(n int) Uint64s { return a.u64.alloc(n) }

// Int64s returns n zeroed int64s valid until the next Reset.
func (a *Arena) Int64s(n int) Int64s { return a.i64.alloc(n) }

// Float64s returns n zeroed float64s valid until the next Reset.
func (a *Arena) Float64s(n int) Float64s { return a.f64.alloc(n) }

// NodeIDs returns n zeroed node ids valid until the next Reset.
func (a *Arena) NodeIDs(n int) NodeIDs { return a.ids.alloc(n) }

// MemoryBytes reports the arena's slab footprint.
func (a *Arena) MemoryBytes() int64 {
	return int64(cap(a.u64.buf))*8 + int64(cap(a.i64.buf))*8 +
		int64(cap(a.f64.buf))*8 + int64(cap(a.ids.buf))*4
}
