package arena

import "testing"

func TestAllocZeroedAndDisjoint(t *testing.T) {
	var a Arena
	x := a.Int64s(10)
	y := a.Int64s(10)
	if len(x) != 10 || len(y) != 10 {
		t.Fatalf("lengths: %d, %d", len(x), len(y))
	}
	for i := range x {
		x[i] = int64(i + 1)
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %d after writing x; allocations overlap", i, v)
		}
	}
	x2 := a.Uint64s(3)
	f := a.Float64s(3)
	ids := a.NodeIDs(3)
	if len(x2) != 3 || len(f) != 3 || len(ids) != 3 {
		t.Fatalf("mixed-kind lengths wrong")
	}
}

func TestResetRecycles(t *testing.T) {
	var a Arena
	x := a.Int64s(1000)
	x[0] = 42
	a.Reset()
	y := a.Int64s(1000)
	if &x[0] != &y[0] {
		t.Fatalf("Reset did not recycle the slab")
	}
	if y[0] != 0 {
		t.Fatalf("recycled allocation not zeroed: %d", y[0])
	}
}

func TestGrowthKeepsOldAllocationsValid(t *testing.T) {
	var a Arena
	x := a.Uint64s(8)
	for i := range x {
		x[i] = uint64(i) + 100
	}
	// Outgrow the slab: x must keep its values (it aliases the old buffer).
	y := a.Uint64s(1 << 16)
	_ = y
	for i := range x {
		if x[i] != uint64(i)+100 {
			t.Fatalf("x[%d] corrupted by slab growth", i)
		}
	}
}

func TestFullSliceExpressionBlocksInPlaceGrowth(t *testing.T) {
	var a Arena
	x := a.Int64s(4)
	y := a.Int64s(4)
	if cap(x) != 4 {
		t.Fatalf("allocation capacity %d exposes slab tail", cap(x))
	}
	// Even an (illegal) append cannot clobber y: capacity is clamped, so
	// growth must reallocate off-slab.
	z := append([]int64(x), 7)
	z[0] = -1
	if y[0] != 0 || x[0] != 0 {
		t.Fatalf("append aliased arena memory: x[0]=%d y[0]=%d", x[0], y[0])
	}
}

func TestZeroLengthAndMemory(t *testing.T) {
	var a Arena
	if s := a.Int64s(0); len(s) != 0 {
		t.Fatalf("zero-length alloc returned %d elems", len(s))
	}
	a.Uint64s(10)
	a.NodeIDs(10)
	if a.MemoryBytes() < 10*8+10*4 {
		t.Fatalf("MemoryBytes %d below slab sizes", a.MemoryBytes())
	}
}
