// Package memtrack measures the online memory footprint of estimators for
// the paper's memory comparison (Fig. 12). Two complementary measurements
// are combined: the analytic resident-bytes report of estimators that
// implement core.MemoryReporter (exact for index and scratch structures),
// and the Go heap delta around a call (captures transient allocation).
//
// It also provides Monitor, a cheap throttled heap gauge the engine's
// admission controller uses as its memory-pressure watermark.
package memtrack

import (
	"runtime"
	"sync/atomic"
	"time"

	"relcomp/internal/core"
)

// Bytes returns the analytic memory footprint of est (0 if the estimator
// does not report one).
func Bytes(est core.Estimator) int64 {
	if r, ok := est.(core.MemoryReporter); ok {
		return r.MemoryBytes()
	}
	return 0
}

// HeapDelta runs fn and returns the growth of the Go heap across it, in
// bytes (never negative). A GC is forced before each reading, so this is
// suitable for coarse per-query accounting, not for micro-measurements.
func HeapDelta(fn func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	d := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return d
}

// Measure runs fn and returns the larger of the analytic footprint after
// the call and the heap delta across it, which is the "online memory
// usage" number the harness reports.
func Measure(est core.Estimator, fn func()) int64 {
	delta := HeapDelta(fn)
	if a := Bytes(est); a > delta {
		return a
	}
	return delta
}

// Monitor is a throttled gauge of the Go heap for watermark checks on hot
// paths: Over costs two atomic loads between refreshes, and at most one
// caller per refresh interval pays the runtime.ReadMemStats read (which
// briefly stops the world — the throttle exists so admission checks never
// serialize behind it). All methods are safe for concurrent use.
type Monitor struct {
	soft    int64 // watermark bytes; <= 0 means the watermark never trips
	refresh int64 // nanoseconds between ReadMemStats reads
	heap    atomic.Int64
	nextAt  atomic.Int64 // unix nanos after which the next refresh may run
}

// defaultRefresh bounds how stale a Monitor reading can be; 100ms is far
// finer than the seconds-scale pressure episodes admission reacts to.
const defaultRefresh = 100 * time.Millisecond

// NewMonitor returns a Monitor that reports Over once the Go heap
// exceeds softBytes, re-reading the heap at most every refresh (<= 0
// means 100ms). softBytes <= 0 builds a monitor that never trips, so
// callers can wire it unconditionally.
func NewMonitor(softBytes int64, refresh time.Duration) *Monitor {
	if refresh <= 0 {
		refresh = defaultRefresh
	}
	return &Monitor{soft: softBytes, refresh: int64(refresh)}
}

// HeapBytes returns the most recent heap-in-use reading, refreshing it if
// the throttle window has elapsed.
func (m *Monitor) HeapBytes() int64 {
	now := time.Now().UnixNano()
	next := m.nextAt.Load()
	if now >= next && m.nextAt.CompareAndSwap(next, now+m.refresh) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.heap.Store(int64(ms.HeapInuse))
	}
	return m.heap.Load()
}

// Over reports whether the heap watermark is exceeded.
func (m *Monitor) Over() bool {
	if m == nil || m.soft <= 0 {
		return false
	}
	return m.HeapBytes() > m.soft
}

// Soft returns the configured watermark (0 when the monitor never trips).
func (m *Monitor) Soft() int64 {
	if m == nil || m.soft < 0 {
		return 0
	}
	return m.soft
}
