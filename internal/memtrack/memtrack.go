// Package memtrack measures the online memory footprint of estimators for
// the paper's memory comparison (Fig. 12). Two complementary measurements
// are combined: the analytic resident-bytes report of estimators that
// implement core.MemoryReporter (exact for index and scratch structures),
// and the Go heap delta around a call (captures transient allocation).
package memtrack

import (
	"runtime"

	"relcomp/internal/core"
)

// Bytes returns the analytic memory footprint of est (0 if the estimator
// does not report one).
func Bytes(est core.Estimator) int64 {
	if r, ok := est.(core.MemoryReporter); ok {
		return r.MemoryBytes()
	}
	return 0
}

// HeapDelta runs fn and returns the growth of the Go heap across it, in
// bytes (never negative). A GC is forced before each reading, so this is
// suitable for coarse per-query accounting, not for micro-measurements.
func HeapDelta(fn func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	d := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return d
}

// Measure runs fn and returns the larger of the analytic footprint after
// the call and the heap delta across it, which is the "online memory
// usage" number the harness reports.
func Measure(est core.Estimator, fn func()) int64 {
	delta := HeapDelta(fn)
	if a := Bytes(est); a > delta {
		return a
	}
	return delta
}
