package memtrack

import (
	"testing"

	"relcomp/internal/core"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

func fixture() *uncertain.Graph {
	r := rng.New(3)
	b := uncertain.NewBuilder(50)
	for i := 0; i < 150; i++ {
		u, v := uncertain.NodeID(r.Intn(50)), uncertain.NodeID(r.Intn(50))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.3+0.5*r.Float64())
	}
	return b.Build()
}

func TestBytes(t *testing.T) {
	g := fixture()
	mc := core.NewMC(g, 1)
	if Bytes(mc) <= 0 {
		t.Error("MC reports no analytic footprint")
	}
}

// heapSink keeps the allocation live across the post-measurement GC.
var heapSink []byte

func TestHeapDeltaNonNegative(t *testing.T) {
	if d := HeapDelta(func() {}); d < 0 {
		t.Errorf("empty delta %d", d)
	}
	d := HeapDelta(func() { heapSink = make([]byte, 1<<22) })
	if d < 1<<21 {
		t.Errorf("4MiB allocation measured as %d bytes", d)
	}
	heapSink = nil
}

func TestMeasureCoversIndex(t *testing.T) {
	g := fixture()
	bs := core.NewBFSSharing(g, 1, 2048)
	m := Measure(bs, func() { bs.Estimate(0, 49, 2048) })
	// The analytic footprint (index + node vectors) must dominate here.
	if m < bs.IndexBytes() {
		t.Errorf("Measure %d below index size %d", m, bs.IndexBytes())
	}
}
