package memtrack

import (
	"testing"
	"time"

	"relcomp/internal/core"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

func fixture() *uncertain.Graph {
	r := rng.New(3)
	b := uncertain.NewBuilder(50)
	for i := 0; i < 150; i++ {
		u, v := uncertain.NodeID(r.Intn(50)), uncertain.NodeID(r.Intn(50))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.3+0.5*r.Float64())
	}
	return b.Build()
}

func TestBytes(t *testing.T) {
	g := fixture()
	mc := core.NewMC(g, 1)
	if Bytes(mc) <= 0 {
		t.Error("MC reports no analytic footprint")
	}
}

// heapSink keeps the allocation live across the post-measurement GC.
var heapSink []byte

func TestHeapDeltaNonNegative(t *testing.T) {
	if d := HeapDelta(func() {}); d < 0 {
		t.Errorf("empty delta %d", d)
	}
	d := HeapDelta(func() { heapSink = make([]byte, 1<<22) })
	if d < 1<<21 {
		t.Errorf("4MiB allocation measured as %d bytes", d)
	}
	heapSink = nil
}

// TestMonitorWatermark: a tiny watermark trips immediately, a huge one
// never does, and the nil / disabled monitors are safe no-ops.
func TestMonitorWatermark(t *testing.T) {
	tiny := NewMonitor(1, time.Millisecond)
	if !tiny.Over() {
		t.Error("1-byte watermark not exceeded by a live Go heap")
	}
	if tiny.HeapBytes() <= 0 {
		t.Error("HeapBytes reported a non-positive heap")
	}
	huge := NewMonitor(1<<50, time.Millisecond)
	if huge.Over() {
		t.Error("1 PiB watermark reported exceeded")
	}
	off := NewMonitor(0, 0)
	if off.Over() {
		t.Error("disabled monitor tripped")
	}
	if off.Soft() != 0 {
		t.Errorf("disabled monitor Soft() = %d", off.Soft())
	}
	var nilMon *Monitor
	if nilMon.Over() || nilMon.Soft() != 0 {
		t.Error("nil monitor not a safe no-op")
	}
}

// TestMonitorThrottle: between refreshes the reading is served from the
// cached value (the throttle is what makes Over hot-path safe). The test
// observes the cache by checking the reading stays fixed inside a long
// refresh window even as the heap grows.
func TestMonitorThrottle(t *testing.T) {
	m := NewMonitor(1, time.Hour)
	first := m.HeapBytes() // pays the first read, arms the hour window
	heapSink = make([]byte, 1<<23)
	defer func() { heapSink = nil }()
	if got := m.HeapBytes(); got != first {
		t.Errorf("reading moved inside the refresh window: %d -> %d", first, got)
	}
}

func TestMeasureCoversIndex(t *testing.T) {
	g := fixture()
	bs := core.NewBFSSharing(g, 1, 2048)
	m := Measure(bs, func() { bs.Estimate(0, 49, 2048) })
	// The analytic footprint (index + node vectors) must dominate here.
	if m < bs.IndexBytes() {
		t.Errorf("Measure %d below index size %d", m, bs.IndexBytes())
	}
}
