// Package datasets generates the synthetic stand-ins for the six
// real-world uncertain graphs of the paper's evaluation (Table 2). The
// original crawls are not redistributable and exceed laptop scale, so each
// generator reproduces the two properties that drive estimator behaviour:
// the topology family (social power-law, co-authorship communities,
// autonomous-system mesh, collaboration network, heterogeneous biological
// graph) and — exactly as specified in Section 3.1.2 of the paper — the
// edge-probability model.
//
// All generators are deterministic given their seed, and take a scale
// factor so the full-size shapes can be regenerated on larger hardware
// (scale 1.0 is the laptop default; the paper's sizes correspond to scale
// ~4–100 depending on the dataset).
package datasets

import (
	"fmt"
	"math"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// Spec names a dataset and its generator.
type Spec struct {
	Name     string
	Generate func(scale float64, seed uint64) *uncertain.Graph
}

// All returns the six datasets in the paper's order (Table 2).
func All() []Spec {
	return []Spec{
		{"lastFM", LastFM},
		{"NetHept", NetHEPT},
		{"AS_Topology", ASTopology},
		{"DBLP_0.2", DBLP02},
		{"DBLP_0.05", DBLP005},
		{"BioMine", BioMine},
	}
}

// ByName returns the named dataset spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 8 {
		n = 8
	}
	return n
}

// powerLawPairs generates an undirected preferential-attachment edge list:
// each new node attaches to deg earlier nodes chosen proportionally to
// their current degree, yielding the heavy-tailed degree distribution of
// social and topology graphs.
func powerLawPairs(n, deg int, r *rng.Source) [][2]uncertain.NodeID {
	if n < 2 {
		return nil
	}
	pairs := make([][2]uncertain.NodeID, 0, n*deg)
	// targets repeats every endpoint once per incident edge, so uniform
	// sampling from it is degree-proportional sampling.
	targets := make([]uncertain.NodeID, 0, 2*n*deg)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		d := deg
		if v < deg {
			d = v
		}
		for i := 0; i < d; i++ {
			u := targets[r.Intn(len(targets))]
			if u == uncertain.NodeID(v) {
				continue
			}
			pairs = append(pairs, [2]uncertain.NodeID{uncertain.NodeID(v), u})
			targets = append(targets, u)
		}
		for i := 0; i < d; i++ {
			targets = append(targets, uncertain.NodeID(v))
		}
	}
	return pairs
}

// LastFM mimics the Last.FM musical social network: a bi-directed
// power-law communication graph whose edge probability is the inverse of
// the out-degree of the node the edge leaves (paper §3.1.2).
func LastFM(scale float64, seed uint64) *uncertain.Graph {
	r := rng.New(seed)
	n := scaled(1700, scale)
	// Attachment degree 2 reproduces the paper's average out-degree of
	// ~3.4 and hence its 1/out-degree probability profile (mean ≈ 0.29).
	pairs := powerLawPairs(n, 2, r)

	// First materialize the bi-directed skeleton to know the out-degrees.
	outDeg := make([]int, n)
	seen := make(map[[2]uncertain.NodeID]bool, len(pairs)*2)
	var uniq [][2]uncertain.NodeID
	for _, pr := range pairs {
		u, v := pr[0], pr[1]
		if u > v {
			u, v = v, u
		}
		k := [2]uncertain.NodeID{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, k)
		outDeg[u]++
		outDeg[v]++
	}

	b := uncertain.NewBuilder(n).SetName("lastFM")
	for _, pr := range uniq {
		u, v := pr[0], pr[1]
		b.MustAddEdge(u, v, 1/float64(outDeg[u]))
		b.MustAddEdge(v, u, 1/float64(outDeg[v]))
	}
	return b.Build()
}

// NetHEPT mimics the arXiv High-Energy-Physics-Theory co-authorship graph:
// papers are simulated as small author cliques, edges are bi-directed, and
// every edge draws its probability uniformly from {0.1, 0.01, 0.001}
// (paper §3.1.2).
func NetHEPT(scale float64, seed uint64) *uncertain.Graph {
	r := rng.New(seed)
	n := scaled(3800, scale)
	papers := scaled(5200, scale)
	probs := []float64{0.1, 0.01, 0.001}

	b := uncertain.NewBuilder(n).SetName("NetHept")
	seen := make(map[[2]uncertain.NodeID]bool)
	addPair := func(u, v uncertain.NodeID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		k := [2]uncertain.NodeID{u, v}
		if seen[k] {
			return
		}
		seen[k] = true
		p := probs[r.Intn(len(probs))]
		b.MustAddEdge(u, v, p)
		p = probs[r.Intn(len(probs))]
		b.MustAddEdge(v, u, p)
	}

	// A small pool of prolific authors makes the degree distribution
	// heavy-tailed, as in real co-authorship graphs.
	hubs := n / 20
	for i := 0; i < papers; i++ {
		k := 2 + r.Intn(3) // 2-4 authors
		authors := make([]uncertain.NodeID, k)
		for j := range authors {
			if r.Float64() < 0.3 {
				authors[j] = uncertain.NodeID(r.Intn(hubs))
			} else {
				authors[j] = uncertain.NodeID(r.Intn(n))
			}
		}
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				addPair(authors[x], authors[y])
			}
		}
	}
	return b.Build()
}

// ASTopology mimics the CAIDA autonomous-system topology: a
// preferential-attachment mesh observed over 120 simulated monthly
// snapshots. Each link is born at a random snapshot and persists in every
// later snapshot with a per-link stability; its probability is, exactly as
// in the paper, the fraction of follow-up snapshots that contain it.
func ASTopology(scale float64, seed uint64) *uncertain.Graph {
	r := rng.New(seed)
	n := scaled(5000, scale)
	pairs := powerLawPairs(n, 2, r)
	const snapshots = 120

	b := uncertain.NewBuilder(n).SetName("AS_Topology")
	seen := make(map[[2]uncertain.NodeID]bool, len(pairs))
	for _, pr := range pairs {
		u, v := pr[0], pr[1]
		if u > v {
			u, v = v, u
		}
		k := [2]uncertain.NodeID{u, v}
		if seen[k] {
			continue
		}
		seen[k] = true

		// Per-link stability: square of a uniform gives the observed
		// right-skewed distribution (mean ~0.23 as in Table 2).
		stability := r.Float64() * r.Float64()
		birth := r.Intn(snapshots - 1)
		window := snapshots - birth - 1
		present := 1 // the first observation itself
		for s := 0; s < window; s++ {
			if r.Bernoulli(stability) {
				present++
			}
		}
		p := float64(present) / float64(window+1)
		b.MustAddEdge(u, v, p)
		b.MustAddEdge(v, u, p)
	}
	return b.Build()
}

// dblp generates the shared DBLP collaboration topology with per-pair
// collaboration counts, then derives probabilities with the paper's
// exponential cdf p = 1 - exp(-c/mu).
func dblp(scale float64, seed uint64, mu float64, name string) *uncertain.Graph {
	r := rng.New(seed)
	n := scaled(8000, scale)
	papers := scaled(14000, scale)

	counts := make(map[[2]uncertain.NodeID]int)
	hubs := n / 25
	for i := 0; i < papers; i++ {
		k := 2 + r.Intn(3)
		authors := make([]uncertain.NodeID, k)
		for j := range authors {
			if r.Float64() < 0.35 {
				authors[j] = uncertain.NodeID(r.Intn(hubs))
			} else {
				authors[j] = uncertain.NodeID(r.Intn(n))
			}
		}
		for x := 0; x < k; x++ {
			for y := x + 1; y < k; y++ {
				u, v := authors[x], authors[y]
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				counts[[2]uncertain.NodeID{u, v}]++
			}
		}
	}

	// Repeated collaborations: teams that publish together keep doing so,
	// so the per-pair count follows 1 + Geometric. The resulting µ=5
	// quartiles {0.18, 0.33, 0.45} (c = 1, 2, 3) match the paper's
	// Table 2. The draw is keyed by the pair so that DBLP02 and DBLP005
	// derive identical counts from the same seed.
	b := uncertain.NewBuilder(n).SetName(name)
	for pr, c := range counts {
		pairRng := rng.New(seed ^ (uint64(pr[0])<<32 | uint64(uint32(pr[1]))))
		c += pairRng.Geometric(0.45)
		p := 1 - math.Exp(-float64(c)/mu)
		b.MustAddEdge(pr[0], pr[1], p)
		b.MustAddEdge(pr[1], pr[0], p)
	}
	return b.Build()
}

// DBLP02 is the DBLP collaboration graph with µ = 5 (mean probability
// ≈ 0.2 as in the paper's "DBLP 0.2").
func DBLP02(scale float64, seed uint64) *uncertain.Graph {
	return dblp(scale, seed, 5, "DBLP_0.2")
}

// DBLP005 is the same topology with µ = 20 ("DBLP 0.05"). The paper
// derives both graphs from the same collaboration counts; passing the same
// seed to DBLP02 and DBLP005 reproduces that.
func DBLP005(scale float64, seed uint64) *uncertain.Graph {
	return dblp(scale, seed, 20, "DBLP_0.05")
}

// BioMine mimics the BIOMINE biological database graph: a directed
// heterogeneous graph over genes, proteins, and other biological concepts
// whose edge probability is the product of three simulated criteria —
// relevance of the relationship type, informativeness (penalizing high
// degrees), and confidence in the specific relationship — as in Eronen &
// Toivonen (2012).
func BioMine(scale float64, seed uint64) *uncertain.Graph {
	r := rng.New(seed)
	n := scaled(7000, scale)
	pairs := powerLawPairs(n, 3, r)

	// Node types with per-type relationship relevance.
	types := make([]int, n)
	for v := range types {
		types[v] = r.Intn(4) // gene, protein, article, phenotype
	}
	relevance := [4][4]float64{
		{0.80, 0.95, 0.55, 0.70},
		{0.95, 0.85, 0.60, 0.75},
		{0.55, 0.60, 0.50, 0.55},
		{0.70, 0.75, 0.55, 0.65},
	}

	deg := make([]int, n)
	for _, pr := range pairs {
		deg[pr[0]]++
		deg[pr[1]]++
	}

	b := uncertain.NewBuilder(n).SetName("BioMine")
	seen := make(map[[2]uncertain.NodeID]bool, len(pairs))
	for _, pr := range pairs {
		u, v := pr[0], pr[1]
		k := [2]uncertain.NodeID{u, v}
		if u == v || seen[k] {
			continue
		}
		seen[k] = true

		rel := relevance[types[u]][types[v]]
		info := 1 / math.Log(2+float64(deg[u]+deg[v])/3)
		conf := 0.3 + 0.7*r.Float64()
		p := rel * info * conf
		if p > 1 {
			p = 1
		}
		b.MustAddEdge(u, v, p)
		// BioMine is directed; a minority of phenomena are annotated in
		// both directions.
		if r.Float64() < 0.3 {
			conf2 := 0.3 + 0.7*r.Float64()
			p2 := rel * info * conf2
			if p2 > 1 {
				p2 = 1
			}
			b.MustAddEdge(v, u, p2)
		}
	}
	return b.Build()
}
