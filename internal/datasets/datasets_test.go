package datasets

import (
	"math"
	"testing"

	"relcomp/internal/uncertain"
)

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range All() {
		g := spec.Generate(0.05, 7)
		if g.NumNodes() < 8 {
			t.Errorf("%s: only %d nodes", spec.Name, g.NumNodes())
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", spec.Name)
		}
		if g.Name() != spec.Name {
			t.Errorf("%s: graph named %q", spec.Name, g.Name())
		}
		for _, e := range g.Edges() {
			if !(e.P > 0 && e.P <= 1) {
				t.Fatalf("%s: edge probability %v out of range", spec.Name, e.P)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("lastFM"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, spec := range All() {
		a := spec.Generate(0.05, 11)
		b := spec.Generate(0.05, 11)
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: same seed, different shapes", spec.Name)
		}
		for i := range a.Edges() {
			if a.Edge(uncertain.EdgeID(i)) != b.Edge(uncertain.EdgeID(i)) {
				t.Fatalf("%s: same seed, different edge %d", spec.Name, i)
			}
		}
		c := spec.Generate(0.05, 12)
		if a.NumEdges() == c.NumEdges() {
			same := true
			for i := range a.Edges() {
				if a.Edge(uncertain.EdgeID(i)) != c.Edge(uncertain.EdgeID(i)) {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s: different seeds produced identical graphs", spec.Name)
			}
		}
	}
}

func TestScaling(t *testing.T) {
	small := LastFM(0.05, 3)
	big := LastFM(0.2, 3)
	if big.NumNodes() <= small.NumNodes() {
		t.Errorf("scaling has no effect: %d vs %d", big.NumNodes(), small.NumNodes())
	}
}

// TestLastFMProbabilityModel: edge probability is 1/outdeg of the source.
func TestLastFMProbabilityModel(t *testing.T) {
	g := LastFM(0.05, 5)
	for v := uncertain.NodeID(0); int(v) < g.NumNodes(); v++ {
		deg := g.OutDegree(v)
		for _, p := range g.OutProbs(v) {
			if math.Abs(p-1/float64(deg)) > 1e-9 {
				t.Fatalf("node %d (deg %d): probability %v, want %v", v, deg, p, 1/float64(deg))
			}
		}
	}
}

// TestNetHEPTProbabilityModel: probabilities come from {0.1, 0.01, 0.001}.
func TestNetHEPTProbabilityModel(t *testing.T) {
	g := NetHEPT(0.05, 5)
	allowed := map[float64]bool{0.1: true, 0.01: true, 0.001: true}
	counts := map[float64]int{}
	for _, e := range g.Edges() {
		if !allowed[e.P] {
			t.Fatalf("probability %v outside the trinary model", e.P)
		}
		counts[e.P]++
	}
	for p := range allowed {
		if counts[p] == 0 {
			t.Errorf("probability %v never drawn", p)
		}
	}
}

// TestASTopologyProbabilityModel: snapshot-ratio probabilities are
// multiples of 1/(window+1) in (0,1] and bi-directed with equal values.
func TestASTopologyProbabilityModel(t *testing.T) {
	g := ASTopology(0.05, 5)
	for _, e := range g.Edges() {
		if e.P <= 0 || e.P > 1 {
			t.Fatalf("probability %v out of range", e.P)
		}
	}
	s := g.ProbSummary()
	if s.Mean < 0.1 || s.Mean > 0.5 {
		t.Errorf("AS mean probability %.3f far from the paper's 0.23", s.Mean)
	}
}

// TestDBLPProbabilityModel: both variants share topology; µ=5 yields
// higher probabilities than µ=20, and every probability is 1-exp(-c/µ)
// for integer c.
func TestDBLPProbabilityModel(t *testing.T) {
	g02 := DBLP02(0.05, 9)
	g005 := DBLP005(0.05, 9)
	if g02.NumEdges() != g005.NumEdges() {
		t.Fatalf("DBLP variants differ in topology: %d vs %d edges", g02.NumEdges(), g005.NumEdges())
	}
	for i := range g02.Edges() {
		e02, e005 := g02.Edge(uncertain.EdgeID(i)), g005.Edge(uncertain.EdgeID(i))
		if e02.From != e005.From || e02.To != e005.To {
			t.Fatal("DBLP variants have different edges")
		}
		if e02.P <= e005.P {
			t.Fatalf("µ=5 probability %v not above µ=20 probability %v", e02.P, e005.P)
		}
		// c = -µ·ln(1-p) must be a positive integer (same for both).
		c := -5 * math.Log(1-e02.P)
		if math.Abs(c-math.Round(c)) > 1e-6 || c < 0.5 {
			t.Fatalf("probability %v not of the form 1-exp(-c/5)", e02.P)
		}
	}
	if m := g02.ProbSummary().Mean; m < 0.1 || m > 0.5 {
		t.Errorf("DBLP 0.2 mean probability %.3f implausible", m)
	}
	if m := g005.ProbSummary().Mean; m > 0.2 {
		t.Errorf("DBLP 0.05 mean probability %.3f implausible", m)
	}
}

// TestBioMineDirected: BioMine is the one directed dataset — some reverse
// edges must be missing.
func TestBioMineDirected(t *testing.T) {
	g := BioMine(0.05, 5)
	reverse := make(map[[2]uncertain.NodeID]bool, g.NumEdges())
	for _, e := range g.Edges() {
		reverse[[2]uncertain.NodeID{e.From, e.To}] = true
	}
	asymmetric := 0
	for _, e := range g.Edges() {
		if !reverse[[2]uncertain.NodeID{e.To, e.From}] {
			asymmetric++
		}
	}
	if asymmetric == 0 {
		t.Error("BioMine came out fully bi-directed")
	}
}

// TestSizeOrdering: the stand-ins keep the paper's dataset size ordering.
func TestSizeOrdering(t *testing.T) {
	seed := uint64(4)
	lfm := LastFM(0.1, seed)
	hept := NetHEPT(0.1, seed)
	as := ASTopology(0.1, seed)
	dblp := DBLP02(0.1, seed)
	if !(lfm.NumNodes() < hept.NumNodes() && hept.NumNodes() < as.NumNodes() && as.NumNodes() < dblp.NumNodes()) {
		t.Errorf("node ordering broken: %d %d %d %d",
			lfm.NumNodes(), hept.NumNodes(), as.NumNodes(), dblp.NumNodes())
	}
}
