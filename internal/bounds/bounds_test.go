package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

func buildGraph(t *testing.T, n int, edges []uncertain.Edge) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func randomGraph(r *rng.Source, n, m int) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := uncertain.NodeID(r.Intn(n)), uncertain.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.05+0.9*r.Float64())
	}
	return b.Build()
}

func TestMostReliablePathChain(t *testing.T) {
	g := buildGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 2, P: 0.8},
		{From: 2, To: 3, P: 0.7},
	})
	p, err := MostReliablePath(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Prob-0.9*0.8*0.7) > 1e-12 {
		t.Errorf("prob %v", p.Prob)
	}
	if len(p.Nodes) != 4 || p.Nodes[0] != 0 || p.Nodes[3] != 3 {
		t.Errorf("path %v", p.Nodes)
	}
}

func TestMostReliablePathPicksBetterRoute(t *testing.T) {
	// Short low-prob route vs long high-prob route.
	g := buildGraph(t, 5, []uncertain.Edge{
		{From: 0, To: 4, P: 0.2},
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 2, P: 0.9},
		{From: 2, To: 3, P: 0.9},
		{From: 3, To: 4, P: 0.9},
	})
	p, err := MostReliablePath(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 0.9 * 0.9 * 0.9 // 0.6561 > 0.2
	if math.Abs(p.Prob-want) > 1e-12 {
		t.Errorf("prob %v, want %v", p.Prob, want)
	}
	if len(p.Nodes) != 5 {
		t.Errorf("path %v", p.Nodes)
	}
}

func TestMostReliablePathUnreachable(t *testing.T) {
	g := buildGraph(t, 3, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	p, err := MostReliablePath(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Prob != 0 || p.Nodes != nil {
		t.Errorf("unreachable path %+v", p)
	}
	p, err = MostReliablePath(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Prob != 1 || len(p.Nodes) != 1 {
		t.Errorf("s==t path %+v", p)
	}
	if _, err := MostReliablePath(g, 0, 9); err == nil {
		t.Error("out-of-range target accepted")
	}
}

// TestMostReliablePathOptimal compares against brute-force path search on
// random small graphs.
func TestMostReliablePathOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		g := randomGraph(r, n, r.Intn(12))
		s := uncertain.NodeID(r.Intn(n))
		tt := uncertain.NodeID(r.Intn(n))
		got, err := MostReliablePath(g, s, tt)
		if err != nil {
			return false
		}
		want := bestPathBrute(g, s, tt)
		return math.Abs(got.Prob-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// bestPathBrute finds the max-probability simple path by DFS enumeration.
func bestPathBrute(g *uncertain.Graph, s, t uncertain.NodeID) float64 {
	if s == t {
		return 1
	}
	visited := make([]bool, g.NumNodes())
	best := 0.0
	var dfs func(v uncertain.NodeID, prob float64)
	dfs = func(v uncertain.NodeID, prob float64) {
		if v == t {
			if prob > best {
				best = prob
			}
			return
		}
		visited[v] = true
		tos := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for i, w := range tos {
			if !visited[w] {
				dfs(w, prob*ps[i])
			}
		}
		visited[v] = false
	}
	dfs(s, 1)
	return best
}

// TestBoundsSandwichExact: lower <= exact <= upper on random small graphs
// (the defining property of the bounds).
func TestBoundsSandwichExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		g := randomGraph(r, n, r.Intn(12))
		if g.NumEdges() > exact.MaxEnumerationEdges {
			return true
		}
		s := uncertain.NodeID(r.Intn(n))
		tt := uncertain.NodeID(r.Intn(n))
		lo, hi, err := Bounds(g, s, tt)
		if err != nil {
			return false
		}
		ex, err := exact.Factoring(g, s, tt)
		if err != nil {
			return false
		}
		const tol = 1e-9
		return lo <= ex+tol && ex <= hi+tol && lo >= -tol && hi <= 1+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBoundsTightOnSeriesParallel(t *testing.T) {
	// Single path: both bounds are exact.
	g := buildGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 0.6},
		{From: 1, To: 2, P: 0.5},
	})
	lo, hi, err := Bounds(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-0.3) > 1e-12 {
		t.Errorf("lower %v, want 0.3 (path product)", lo)
	}
	if hi < 0.3 || hi > 0.6+1e-12 {
		t.Errorf("upper %v outside [0.3, 0.6]", hi)
	}

	// Two disjoint parallel paths: the lower bound is exact.
	g2 := buildGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 3, P: 0.8},
		{From: 0, To: 2, P: 0.5},
		{From: 2, To: 3, P: 0.7},
	})
	want := 1 - (1-0.9*0.8)*(1-0.5*0.7)
	lo2, _, err := Bounds(g2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo2-want) > 1e-9 {
		t.Errorf("disjoint-paths lower bound %v, want exact %v", lo2, want)
	}
}

func TestBoundsUnreachable(t *testing.T) {
	g := buildGraph(t, 3, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	lo, hi, err := Bounds(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 0 {
		t.Errorf("unreachable bounds (%v, %v)", lo, hi)
	}
	lo, hi, err = Bounds(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 || hi != 1 {
		t.Errorf("s==t bounds (%v, %v)", lo, hi)
	}
}

func TestChernoffSamples(t *testing.T) {
	// Eq. 5 with eps=0.1, lambda=0.05, R=0.5: K = 3/(0.01*0.5)*ln(40).
	k, err := ChernoffSamples(0.1, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(3 / (0.01 * 0.5) * math.Log(40)))
	if k != want {
		t.Errorf("K = %d, want %d", k, want)
	}
	// Lower reliability needs more samples.
	k2, err := ChernoffSamples(0.1, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k2 <= k {
		t.Errorf("K(R=0.05) = %d not above K(R=0.5) = %d", k2, k)
	}
	for _, bad := range [][3]float64{{0, 0.1, 0.5}, {0.1, 0, 0.5}, {0.1, 1, 0.5}, {0.1, 0.1, 0}, {0.1, 0.1, 2}} {
		if _, err := ChernoffSamples(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("ChernoffSamples(%v) accepted", bad)
		}
	}
}
