// Package bounds implements polynomial-time lower and upper bounds on s-t
// reliability, the "theory" branch of the paper's taxonomy of the
// reliability problem (Fig. 2, refs [5,7,8,16,27,35]), plus the
// most-reliable-path query ([9,22,26]) and the Chernoff sample-size bound
// the paper quotes as Eq. 5.
//
// Bounds are useful to practitioners in two ways the paper highlights:
// they sanity-check sampling estimates for free, and they can prune
// queries entirely (if the upper bound is below a threshold, no sampling
// is needed).
package bounds

import (
	"fmt"
	"math"

	"relcomp/internal/uncertain"
)

// Path is a most-reliable s-t path: the node sequence and its probability
// (the product of its edge probabilities).
type Path struct {
	Nodes []uncertain.NodeID
	Prob  float64
}

// MostReliablePath returns the s-t path maximizing the product of edge
// probabilities, via Dijkstra on the -log transform. The probability of
// the returned path is a lower bound on R(s,t). If t is unreachable it
// returns a zero-probability path with nil nodes.
func MostReliablePath(g *uncertain.Graph, s, t uncertain.NodeID) (Path, error) {
	if err := checkQuery(g, s, t); err != nil {
		return Path{}, err
	}
	if s == t {
		return Path{Nodes: []uncertain.NodeID{s}, Prob: 1}, nil
	}
	n := g.NumNodes()
	const inf = math.MaxFloat64
	dist := make([]float64, n) // -log prob
	prev := make([]uncertain.NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[s] = 0

	// Binary heap of (cost, node).
	type item struct {
		cost float64
		node uncertain.NodeID
	}
	heap := []item{{0, s}}
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].cost <= heap[i].cost {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].cost < heap[small].cost {
				small = l
			}
			if r < len(heap) && heap[r].cost < heap[small].cost {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}

	for len(heap) > 0 {
		it := pop()
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		if v == t {
			break
		}
		tos := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for i, w := range tos {
			c := dist[v] - math.Log(ps[i])
			if c < dist[w] {
				dist[w] = c
				prev[w] = v
				push(item{c, w})
			}
		}
	}
	if dist[t] == inf {
		return Path{}, nil
	}
	var nodes []uncertain.NodeID
	for v := t; v != -1; v = prev[v] {
		nodes = append(nodes, v)
		if v == s {
			break
		}
	}
	// Reverse.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	return Path{Nodes: nodes, Prob: math.Exp(-dist[t])}, nil
}

// LowerBound returns a polynomial-time lower bound on R(s,t): the
// disjoint-products bound over greedily extracted edge-disjoint
// most-reliable paths (cf. Ball & Provan). Edge-disjoint paths exist
// independently, so R >= 1 - Π(1 - Prob(path_i)).
func LowerBound(g *uncertain.Graph, s, t uncertain.NodeID) (float64, error) {
	if err := checkQuery(g, s, t); err != nil {
		return 0, err
	}
	if s == t {
		return 1, nil
	}
	// Work on a mutable copy of the edge set: removed edges are marked.
	removed := make(map[[2]uncertain.NodeID]bool)
	miss := 1.0
	for iter := 0; iter < 16; iter++ {
		p, err := mostReliablePathAvoiding(g, s, t, removed)
		if err != nil {
			return 0, err
		}
		if p.Prob == 0 {
			break
		}
		miss *= 1 - p.Prob
		for i := 0; i+1 < len(p.Nodes); i++ {
			removed[[2]uncertain.NodeID{p.Nodes[i], p.Nodes[i+1]}] = true
		}
	}
	return 1 - miss, nil
}

// mostReliablePathAvoiding is MostReliablePath restricted to edges not in
// the removed set.
func mostReliablePathAvoiding(g *uncertain.Graph, s, t uncertain.NodeID, removed map[[2]uncertain.NodeID]bool) (Path, error) {
	if len(removed) == 0 {
		return MostReliablePath(g, s, t)
	}
	// Rebuild a filtered graph. This is O(m) per call but LowerBound only
	// performs a handful of iterations.
	b := uncertain.NewBuilder(g.NumNodes())
	for _, e := range g.Edges() {
		if removed[[2]uncertain.NodeID{e.From, e.To}] {
			continue
		}
		// Tombstoned edges (p = 0, from dynamic-graph removal) lie on no
		// path; dropping them here keeps the Builder's (0,1] invariant.
		if e.P <= 0 {
			continue
		}
		b.MustAddEdge(e.From, e.To, e.P)
	}
	return MostReliablePath(b.Build(), s, t)
}

// UpperBound returns a polynomial-time upper bound on R(s,t): the minimum
// over a family of s-t edge cuts of the probability that at least one cut
// edge exists. Any cut C gives R <= 1 - Π_{e∈C}(1-P(e)); the family
// examined here consists of the BFS level cuts from s (all edges from
// level < i to level >= i) and the out-cut of s / in-cut of t.
func UpperBound(g *uncertain.Graph, s, t uncertain.NodeID) (float64, error) {
	if err := checkQuery(g, s, t); err != nil {
		return 0, err
	}
	if s == t {
		return 1, nil
	}
	dist := g.HopDistances(s, -1)
	if dist[t] < 0 {
		return 0, nil // structurally unreachable
	}
	best := 1.0
	// Level cuts: edges crossing from dist < level to dist >= level (or
	// unreachable). Every s-t path crosses each level 1..dist[t].
	for level := int32(1); level <= dist[t]; level++ {
		miss := 1.0
		for _, e := range g.Edges() {
			df, dt := dist[e.From], dist[e.To]
			if df >= 0 && df < level && (dt < 0 || dt >= level) {
				miss *= 1 - e.P
			}
		}
		if ub := 1 - miss; ub < best {
			best = ub
		}
	}
	// In-cut of t: every path ends with an in-edge of t.
	miss := 1.0
	for _, id := range g.InEdgeIDs(t) {
		miss *= 1 - g.Edge(id).P
	}
	if ub := 1 - miss; ub < best {
		best = ub
	}
	return best, nil
}

// Bounds returns (lower, upper) together.
func Bounds(g *uncertain.Graph, s, t uncertain.NodeID) (lo, hi float64, err error) {
	lo, err = LowerBound(g, s, t)
	if err != nil {
		return 0, 0, err
	}
	hi, err = UpperBound(g, s, t)
	if err != nil {
		return 0, 0, err
	}
	// Guard against floating-point crossing on near-degenerate inputs.
	if lo > hi {
		lo = hi
	}
	return lo, hi, nil
}

// ChernoffSamples returns the Monte Carlo sample size that guarantees
// Pr(|R̂ - R| >= eps·R) <= lambda for a reliability at least rLow,
// following Eq. 5 of the paper (Potamias et al.):
//
//	K >= 3/(eps²·R) · ln(2/lambda)
func ChernoffSamples(eps, lambda, rLow float64) (int, error) {
	if !(eps > 0) || !(lambda > 0 && lambda < 1) || !(rLow > 0 && rLow <= 1) {
		return 0, fmt.Errorf("bounds: need eps > 0, lambda in (0,1), rLow in (0,1]; got %v, %v, %v", eps, lambda, rLow)
	}
	k := 3 / (eps * eps * rLow) * math.Log(2/lambda)
	return int(math.Ceil(k)), nil
}

func checkQuery(g *uncertain.Graph, s, t uncertain.NodeID) error {
	n := uncertain.NodeID(g.NumNodes())
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("bounds: query (%d,%d) out of range [0,%d)", s, t, n)
	}
	return nil
}
