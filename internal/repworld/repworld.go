// Package repworld extracts a single representative possible world from an
// uncertain graph, the "pursuit of a good possible world" branch of the
// paper's taxonomy (Fig. 2, Parchas et al. SIGMOD 2014; Song et al.
// DASFAA 2016). Queries on the representative world are deterministic and
// extremely fast, at the cost of collapsing the probability distribution —
// the paper classifies this as a *simplified version* of the reliability
// problem, and the harness's ablation shows exactly what that
// simplification costs in accuracy.
//
// The extraction follows the degree-based principle of ADR: include edges
// so that every node's in/out degree in the representative world is as
// close as possible to its expected degree in the uncertain graph.
package repworld

import (
	"fmt"
	"math"
	"sort"

	"relcomp/internal/uncertain"
)

// Extract returns a deterministic subgraph of g (every kept edge with
// probability 1) whose node degrees approximate the expected degrees of
// g. The extraction is deterministic.
func Extract(g *uncertain.Graph) *uncertain.Graph {
	n := g.NumNodes()
	expOut := make([]float64, n)
	expIn := make([]float64, n)
	for _, e := range g.Edges() {
		expOut[e.From] += e.P
		expIn[e.To] += e.P
	}

	// Greedy pass: consider edges by decreasing probability; keep an edge
	// when both endpoints still fall short of their expected degree, i.e.
	// keeping it reduces total degree discrepancy.
	type cand struct {
		e uncertain.Edge
	}
	cands := make([]cand, 0, g.NumEdges())
	for _, e := range g.Edges() {
		cands = append(cands, cand{e})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].e.P != cands[j].e.P {
			return cands[i].e.P > cands[j].e.P
		}
		if cands[i].e.From != cands[j].e.From {
			return cands[i].e.From < cands[j].e.From
		}
		return cands[i].e.To < cands[j].e.To
	})

	curOut := make([]float64, n)
	curIn := make([]float64, n)
	keep := make([]bool, len(cands))
	// gain of adding edge (u,v): reduction of |curOut[u]-expOut[u]| +
	// |curIn[v]-expIn[v]| when incrementing both by 1.
	gain := func(e uncertain.Edge) float64 {
		du := math.Abs(curOut[e.From]+1-expOut[e.From]) - math.Abs(curOut[e.From]-expOut[e.From])
		dv := math.Abs(curIn[e.To]+1-expIn[e.To]) - math.Abs(curIn[e.To]-expIn[e.To])
		return -(du + dv) // positive = discrepancy shrinks
	}
	for i, c := range cands {
		if gain(c.e) > 0 {
			keep[i] = true
			curOut[c.e.From]++
			curIn[c.e.To]++
		}
	}
	// Rewiring pass: re-examine skipped edges once more; earlier greedy
	// choices may have left residual capacity.
	for i, c := range cands {
		if keep[i] {
			continue
		}
		if gain(c.e) > 0 {
			keep[i] = true
			curOut[c.e.From]++
			curIn[c.e.To]++
		}
	}

	b := uncertain.NewBuilder(n).SetName(g.Name() + "-repworld")
	for i, c := range cands {
		if keep[i] {
			b.MustAddEdge(c.e.From, c.e.To, 1)
		}
	}
	return b.Build()
}

// Discrepancy returns Σ_v |deg_world(v) − E[deg_G(v)]| over out- and
// in-degrees: the objective the extraction minimizes (lower is more
// representative).
func Discrepancy(g, world *uncertain.Graph) (float64, error) {
	if g.NumNodes() != world.NumNodes() {
		return 0, fmt.Errorf("repworld: node counts differ (%d vs %d)", g.NumNodes(), world.NumNodes())
	}
	n := g.NumNodes()
	expOut := make([]float64, n)
	expIn := make([]float64, n)
	for _, e := range g.Edges() {
		expOut[e.From] += e.P
		expIn[e.To] += e.P
	}
	d := 0.0
	for v := uncertain.NodeID(0); int(v) < n; v++ {
		d += math.Abs(float64(world.OutDegree(v)) - expOut[v])
		d += math.Abs(float64(world.InDegree(v)) - expIn[v])
	}
	return d, nil
}

// Estimator answers s-t reliability queries on the representative world:
// 1 if t is reachable from s in it, 0 otherwise, regardless of the sample
// budget. It exists to quantify (in the harness ablation) how much
// accuracy the one-world simplification gives up against sampling.
type Estimator struct {
	world *uncertain.Graph
}

// NewEstimator extracts the representative world of g once.
func NewEstimator(g *uncertain.Graph) *Estimator {
	return &Estimator{world: Extract(g)}
}

// World returns the extracted representative world.
func (e *Estimator) World() *uncertain.Graph { return e.world }

// Name implements the core.Estimator contract.
func (e *Estimator) Name() string { return "RepWorld" }

// Estimate implements the core.Estimator contract; k is ignored (the
// answer is deterministic).
func (e *Estimator) Estimate(s, t uncertain.NodeID, k int) float64 {
	n := uncertain.NodeID(e.world.NumNodes())
	if s < 0 || s >= n || t < 0 || t >= n || k <= 0 {
		panic(fmt.Sprintf("repworld: invalid query (%d,%d,%d)", s, t, k))
	}
	if e.world.Reachable(s, t) {
		return 1
	}
	return 0
}
