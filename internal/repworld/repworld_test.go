package repworld

import (
	"math"
	"testing"
	"testing/quick"

	"relcomp/internal/datasets"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

func randomGraph(r *rng.Source, n, m int) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := uncertain.NodeID(r.Intn(n)), uncertain.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 0.05+0.9*r.Float64())
	}
	return b.Build()
}

func TestExtractDeterministic(t *testing.T) {
	g := datasets.LastFM(0.05, 9)
	a, b := Extract(g), Extract(g)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("extraction not deterministic")
	}
	for i := range a.Edges() {
		if a.Edge(uncertain.EdgeID(i)) != b.Edge(uncertain.EdgeID(i)) {
			t.Fatal("extraction not deterministic")
		}
	}
}

func TestExtractSubgraphWithCertainEdges(t *testing.T) {
	r := rng.New(3)
	g := randomGraph(r, 20, 60)
	w := Extract(g)
	orig := make(map[[2]uncertain.NodeID]bool)
	for _, e := range g.Edges() {
		orig[[2]uncertain.NodeID{e.From, e.To}] = true
	}
	for _, e := range w.Edges() {
		if e.P != 1 {
			t.Fatalf("representative edge with probability %v", e.P)
		}
		if !orig[[2]uncertain.NodeID{e.From, e.To}] {
			t.Fatalf("edge (%d,%d) not in the original graph", e.From, e.To)
		}
	}
}

// TestExtractBeatsNaiveThreshold: the degree-based extraction must have a
// discrepancy no worse than keeping all edges or the p>=0.5 threshold
// world — the baseline Parchas et al. improve upon.
func TestExtractBeatsNaiveThreshold(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := datasets.BioMine(0.05, seed)
		w := Extract(g)
		dw, err := Discrepancy(g, w)
		if err != nil {
			t.Fatal(err)
		}
		// Threshold world.
		b := uncertain.NewBuilder(g.NumNodes())
		for _, e := range g.Edges() {
			if e.P >= 0.5 {
				b.MustAddEdge(e.From, e.To, 1)
			}
		}
		dthr, err := Discrepancy(g, b.Build())
		if err != nil {
			t.Fatal(err)
		}
		// Full world.
		bf := uncertain.NewBuilder(g.NumNodes())
		for _, e := range g.Edges() {
			bf.MustAddEdge(e.From, e.To, 1)
		}
		dfull, err := Discrepancy(g, bf.Build())
		if err != nil {
			t.Fatal(err)
		}
		if dw > dthr || dw > dfull {
			t.Errorf("seed %d: extraction discrepancy %.1f worse than threshold %.1f / full %.1f",
				seed, dw, dthr, dfull)
		}
	}
}

// TestDiscrepancyProperty: discrepancy is non-negative and zero iff the
// world matches expected degrees exactly (certain graphs reproduce
// themselves).
func TestDiscrepancyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		// A certain graph: all probabilities 1.
		b := uncertain.NewBuilder(n)
		for i := 0; i < r.Intn(20); i++ {
			u, v := uncertain.NodeID(r.Intn(n)), uncertain.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			b.MustAddEdge(u, v, 1)
		}
		g := b.Build()
		w := Extract(g)
		d, err := Discrepancy(g, w)
		if err != nil {
			return false
		}
		// Expected degrees are integers; the extraction must match them
		// exactly by keeping every edge.
		return math.Abs(d) < 1e-9 && w.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiscrepancyMismatchedGraphs(t *testing.T) {
	g1 := uncertain.NewBuilder(2).Build()
	g2 := uncertain.NewBuilder(3).Build()
	if _, err := Discrepancy(g1, g2); err == nil {
		t.Error("mismatched node counts accepted")
	}
}

func TestEstimator(t *testing.T) {
	b := uncertain.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.99)
	b.MustAddEdge(1, 2, 0.99)
	g := b.Build()
	e := NewEstimator(g)
	if e.Name() != "RepWorld" {
		t.Errorf("name %q", e.Name())
	}
	if e.World().NumNodes() != 3 {
		t.Error("world shape")
	}
	// Near-certain chain must be kept.
	if got := e.Estimate(0, 2, 1); got != 1 {
		t.Errorf("R = %v on near-certain chain", got)
	}
	if got := e.Estimate(2, 0, 1); got != 0 {
		t.Errorf("reverse R = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid query did not panic")
		}
	}()
	e.Estimate(0, 5, 1)
}

// TestEstimatorCollapsesDistribution documents the known failure mode the
// harness ablation quantifies: on a single 50/50 edge the representative
// world must answer 0 or 1, never 0.5.
func TestEstimatorCollapsesDistribution(t *testing.T) {
	b := uncertain.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.5)
	e := NewEstimator(b.Build())
	got := e.Estimate(0, 1, 1000)
	if got != 0 && got != 1 {
		t.Errorf("representative estimate %v, want 0 or 1", got)
	}
}
