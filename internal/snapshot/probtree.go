package snapshot

// ProbTreeData is the columnar (structure-of-arrays) encoding of a
// ProbTree decomposition: per-bag scalars as parallel arrays, and each
// bag's variable-length lists (nodes, raw edges, contributions, children)
// as one concatenated array plus a numBags+1 offset array. This is what
// the container stores; internal/core converts it to and from its bag
// structs. Edge lists are split into from/to/p columns so each column is
// a homogeneous numeric section.
type ProbTreeData struct {
	Width    int
	Root     int
	NumNodes int

	BagOf   []int32 // node -> covering bag, -1 if in root
	Covered []int32 // per bag: eliminated node, -1 for root
	Parent  []int32 // per bag: parent bag, -1 for root

	NodeOff []uint64
	Nodes   []int32

	RawOff         []uint64
	RawFrom, RawTo []int32
	RawP           []float64

	ContribOff             []uint64
	ContribFrom, ContribTo []int32
	ContribP               []float64

	ChildOff []uint64
	Children []int32
}

// NumBags returns the number of bags including the root.
func (d *ProbTreeData) NumBags() int { return len(d.Covered) }

// AddProbTree adds the decomposition's sections.
func AddProbTree(w *Writer, d *ProbTreeData) {
	w.AddUint64s(SecPTMeta, []uint64{
		uint64(d.Width), uint64(d.Root), uint64(d.NumBags()), uint64(d.NumNodes),
	})
	w.AddInt32s(SecPTBagOf, d.BagOf)
	w.AddInt32s(SecPTCovered, d.Covered)
	w.AddInt32s(SecPTParent, d.Parent)
	w.AddUint64s(SecPTNodeOff, d.NodeOff)
	w.AddInt32s(SecPTNodes, d.Nodes)
	w.AddUint64s(SecPTRawOff, d.RawOff)
	w.AddInt32s(SecPTRawFrom, d.RawFrom)
	w.AddInt32s(SecPTRawTo, d.RawTo)
	w.AddFloat64s(SecPTRawP, d.RawP)
	w.AddUint64s(SecPTContribOff, d.ContribOff)
	w.AddInt32s(SecPTContribFrom, d.ContribFrom)
	w.AddInt32s(SecPTContribTo, d.ContribTo)
	w.AddFloat64s(SecPTContribP, d.ContribP)
	w.AddUint64s(SecPTChildOff, d.ChildOff)
	w.AddInt32s(SecPTChildren, d.Children)
}

// LoadProbTree reads and structurally validates the decomposition
// sections. Array-shape and id-range invariants are checked here (so a
// corrupted file cannot index out of range during conversion); semantic
// checks that need the graph (edge endpoints, probabilities) happen in
// the core conversion.
func LoadProbTree(f *File) (*ProbTreeData, error) {
	meta, err := f.Uint64s(SecPTMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 4 {
		return nil, corruptf("probtree.meta has %d entries, want 4", len(meta))
	}
	d := &ProbTreeData{
		Width:    int(meta[0]),
		Root:     int(meta[1]),
		NumNodes: int(meta[3]),
	}
	bags := int(meta[2])
	if d.Width < 1 || bags < 1 || d.NumNodes < 0 || d.Root < 0 || d.Root >= bags {
		return nil, corruptf("probtree.meta implausible: width=%d root=%d bags=%d nodes=%d",
			d.Width, d.Root, bags, d.NumNodes)
	}

	load32 := func(typ uint32, want int, dst *[]int32) error {
		v, err := f.Int32s(typ)
		if err != nil {
			return err
		}
		if want >= 0 && len(v) != want {
			return corruptf("section %s has %d entries, want %d", SectionName(typ), len(v), want)
		}
		*dst = v
		return nil
	}
	loadF := func(typ uint32, want int, dst *[]float64) error {
		v, err := f.Float64s(typ)
		if err != nil {
			return err
		}
		if want >= 0 && len(v) != want {
			return corruptf("section %s has %d entries, want %d", SectionName(typ), len(v), want)
		}
		*dst = v
		return nil
	}
	loadOff := func(typ uint32, dst *[]uint64) error {
		v, err := f.Uint64s(typ)
		if err != nil {
			return err
		}
		if len(v) != bags+1 {
			return corruptf("section %s has %d entries, want %d", SectionName(typ), len(v), bags+1)
		}
		if v[0] != 0 {
			return corruptf("section %s starts at %d, want 0", SectionName(typ), v[0])
		}
		for i := 1; i < len(v); i++ {
			if v[i] < v[i-1] {
				return corruptf("section %s decreases at bag %d", SectionName(typ), i-1)
			}
		}
		*dst = v
		return nil
	}

	if err := load32(SecPTBagOf, d.NumNodes, &d.BagOf); err != nil {
		return nil, err
	}
	if err := load32(SecPTCovered, bags, &d.Covered); err != nil {
		return nil, err
	}
	if err := load32(SecPTParent, bags, &d.Parent); err != nil {
		return nil, err
	}
	if err := loadOff(SecPTNodeOff, &d.NodeOff); err != nil {
		return nil, err
	}
	if err := load32(SecPTNodes, int(d.NodeOff[bags]), &d.Nodes); err != nil {
		return nil, err
	}
	if err := loadOff(SecPTRawOff, &d.RawOff); err != nil {
		return nil, err
	}
	nraw := int(d.RawOff[bags])
	if err := load32(SecPTRawFrom, nraw, &d.RawFrom); err != nil {
		return nil, err
	}
	if err := load32(SecPTRawTo, nraw, &d.RawTo); err != nil {
		return nil, err
	}
	if err := loadF(SecPTRawP, nraw, &d.RawP); err != nil {
		return nil, err
	}
	if err := loadOff(SecPTContribOff, &d.ContribOff); err != nil {
		return nil, err
	}
	ncon := int(d.ContribOff[bags])
	if err := load32(SecPTContribFrom, ncon, &d.ContribFrom); err != nil {
		return nil, err
	}
	if err := load32(SecPTContribTo, ncon, &d.ContribTo); err != nil {
		return nil, err
	}
	if err := loadF(SecPTContribP, ncon, &d.ContribP); err != nil {
		return nil, err
	}
	if err := loadOff(SecPTChildOff, &d.ChildOff); err != nil {
		return nil, err
	}
	if err := load32(SecPTChildren, int(d.ChildOff[bags]), &d.Children); err != nil {
		return nil, err
	}

	for v, b := range d.BagOf {
		if b < -1 || int(b) >= bags {
			return nil, corruptf("probtree.bagOf[%d] = %d out of range [-1,%d)", v, b, bags)
		}
	}
	for i, c := range d.Covered {
		if c < -1 || int(c) >= d.NumNodes {
			return nil, corruptf("probtree.covered[%d] = %d out of range [-1,%d)", i, c, d.NumNodes)
		}
	}
	for i, p := range d.Parent {
		if p < -1 || int(p) >= bags {
			return nil, corruptf("probtree.parent[%d] = %d out of range [-1,%d)", i, p, bags)
		}
	}
	for i, c := range d.Children {
		if c < 0 || int(c) >= bags {
			return nil, corruptf("probtree.children[%d] = %d out of range [0,%d)", i, c, bags)
		}
	}
	for i, v := range d.Nodes {
		if v < 0 || int(v) >= d.NumNodes {
			return nil, corruptf("probtree.nodes[%d] = %d out of range [0,%d)", i, v, d.NumNodes)
		}
	}
	return d, nil
}
