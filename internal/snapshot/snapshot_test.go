package snapshot

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testImage builds a small valid container with one section of each typed
// kind and returns its serialized bytes.
func testImage(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.AddBytes(SecManifest, []byte(`{"tool":"test"}`), 15)
	w.AddUint64s(SecBFSMeta, []uint64{3, 1 << 40, 0, 7})
	w.AddInt32s(SecGraphOutTo, []int32{-1, 0, 5, 1 << 20})
	w.AddFloat64s(SecGraphOutProb, []float64{0.25, 1, 0.001})
	w.AddUint64s(SecBFSWords, []uint64{0xdeadbeef, 0, ^uint64(0)})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func TestWriterReaderRoundTrip(t *testing.T) {
	img := testImage(t)
	f, err := FromBytes(img)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if f.Mapped() {
		t.Error("in-memory file reports Mapped")
	}
	if f.Size() != int64(len(img)) {
		t.Errorf("Size = %d, want %d", f.Size(), len(img))
	}

	raw, err := f.Bytes(SecManifest)
	if err != nil || string(raw) != `{"tool":"test"}` {
		t.Errorf("manifest section = %q, %v", raw, err)
	}
	u, err := f.Uint64s(SecBFSMeta)
	if err != nil || len(u) != 4 || u[0] != 3 || u[1] != 1<<40 || u[3] != 7 {
		t.Errorf("uint64 section = %v, %v", u, err)
	}
	i32, err := f.Int32s(SecGraphOutTo)
	if err != nil || len(i32) != 4 || i32[0] != -1 || i32[3] != 1<<20 {
		t.Errorf("int32 section = %v, %v", i32, err)
	}
	f64, err := f.Float64s(SecGraphOutProb)
	if err != nil || len(f64) != 3 || f64[0] != 0.25 || f64[1] != 1 || f64[2] != 0.001 {
		t.Errorf("float64 section = %v, %v", f64, err)
	}
	nv, err := f.Uint64sNoVerify(SecBFSWords)
	if err != nil || len(nv) != 3 || nv[0] != 0xdeadbeef || nv[2] != ^uint64(0) {
		t.Errorf("no-verify uint64 section = %v, %v", nv, err)
	}
	if err := f.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if !f.Has(SecBFSWords) || f.Has(SecPTMeta) {
		t.Error("Has answers wrong")
	}
	if _, err := f.Bytes(SecPTMeta); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing section error = %v, want ErrCorrupt", err)
	}
}

func TestSectionAlignment(t *testing.T) {
	f, err := FromBytes(testImage(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sections() {
		if s.Offset%64 != 0 {
			t.Errorf("section %s at offset %d, not 64-byte aligned", s.Name, s.Offset)
		}
	}
}

func TestEmptySectionRoundTrip(t *testing.T) {
	w := NewWriter()
	w.AddUint64s(SecBFSWords, nil)
	w.AddInt32s(SecGraphOutTo, []int32{})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if u, err := f.Uint64s(SecBFSWords); err != nil || len(u) != 0 {
		t.Errorf("empty uint64 section = %v, %v", u, err)
	}
	if v, err := f.Int32s(SecGraphOutTo); err != nil || len(v) != 0 {
		t.Errorf("empty int32 section = %v, %v", v, err)
	}
}

func TestEmptyContainer(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("zero-section container rejected: %v", err)
	}
	if len(f.Sections()) != 0 {
		t.Errorf("sections = %v, want none", f.Sections())
	}
}

func TestDuplicateSectionPanicsOnWrite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("adding a duplicate section type did not panic")
		}
	}()
	w := NewWriter()
	w.AddUint64s(SecBFSMeta, []uint64{1})
	w.AddUint64s(SecBFSMeta, []uint64{2})
}

func TestOpenFile(t *testing.T) {
	img := testImage(t)
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	// On platforms with mmap support the file must come back mapped —
	// the zero-copy path is the point of the format.
	if !f.Mapped() {
		t.Log("Open fell back to heap (platform without mmap?)")
	}
	if err := f.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	u, err := f.Uint64s(SecBFSMeta)
	if err != nil || len(u) != 4 || u[1] != 1<<40 {
		t.Errorf("mapped uint64 section = %v, %v", u, err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Error("Open on a missing file succeeded")
	}
}

func TestReadFrom(t *testing.T) {
	img := testImage(t)
	f, err := ReadFrom(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapped() {
		t.Error("stream-read file reports Mapped")
	}
	if err := f.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// fixTableCRC recomputes the section-table checksum after a test mutation
// of the table, so the mutation under test is the only corruption.
func fixTableCRC(data []byte) {
	nsec := int(getU32(data[12:]))
	table := data[headerSize : headerSize+nsec*entrySize]
	putU32(data[24:], crc32.Checksum(table, castagnoli))
}

func TestCorruptionDetection(t *testing.T) {
	base := testImage(t)
	// Every case mutates a private copy of a valid image, then opens it
	// and decodes every section. Whatever the mutation, the outcome must
	// be an error wrapping wantErr — never a panic, never silent success.
	cases := []struct {
		name    string
		mutate  func(data []byte) []byte
		wantErr error
	}{
		{"truncated below header", func(d []byte) []byte { return d[:headerSize-1] }, ErrCorrupt},
		{"truncated mid table", func(d []byte) []byte { return d[:headerSize+entrySize+5] }, ErrCorrupt},
		{"truncated mid payload", func(d []byte) []byte { return d[:len(d)-7] }, ErrCorrupt},
		{"empty file", func(d []byte) []byte { return nil }, ErrCorrupt},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrCorrupt},
		{"future version", func(d []byte) []byte { putU32(d[8:], Version+1); return d }, ErrVersion},
		{"version zero", func(d []byte) []byte { putU32(d[8:], 0); return d }, ErrVersion},
		{"huge section count", func(d []byte) []byte { putU32(d[12:], maxSections+1); return d }, ErrCorrupt},
		{"section count past file", func(d []byte) []byte { putU32(d[12:], 9999); return d }, ErrCorrupt},
		{"wrong file size", func(d []byte) []byte { putU64(d[16:], uint64(len(d))+64); return d }, ErrCorrupt},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0xff) }, ErrCorrupt},
		{"table bit flip", func(d []byte) []byte { d[headerSize+3] ^= 0x40; return d }, ErrCorrupt},
		{"payload bit flip", func(d []byte) []byte { d[len(d)-2] ^= 0x01; return d }, ErrCorrupt},
		{"misaligned section offset", func(d []byte) []byte {
			putU64(d[headerSize+entrySize+8:], getU64(d[headerSize+entrySize+8:])+4)
			fixTableCRC(d)
			return d
		}, ErrCorrupt},
		{"section past end of file", func(d []byte) []byte {
			putU64(d[headerSize+16:], uint64(len(d))*2)
			fixTableCRC(d)
			return d
		}, ErrCorrupt},
		{"duplicate section type", func(d []byte) []byte {
			// Retype entry 1 to entry 0's type.
			putU32(d[headerSize+entrySize:], getU32(d[headerSize:]))
			fixTableCRC(d)
			return d
		}, ErrCorrupt},
		{"count disagrees with length", func(d []byte) []byte {
			// Entry 1 is the SecBFSMeta []uint64 section; grow its count.
			putU64(d[headerSize+entrySize+24:], getU64(d[headerSize+entrySize+24:])+1)
			fixTableCRC(d)
			return d
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			f, err := FromBytes(data)
			if err == nil {
				// Structure parsed; the corruption must surface when the
				// sections are actually decoded and checksummed.
				_, merr := f.Bytes(SecManifest)
				_, uerr := f.Uint64s(SecBFSMeta)
				verr := f.Verify()
				err = errors.Join(merr, uerr, verr)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want one wrapping %v", err, tc.wantErr)
			}
		})
	}
}

func TestSectionNames(t *testing.T) {
	if got := SectionName(SecBFSWords); got != "bfs.words" {
		t.Errorf("SectionName(SecBFSWords) = %q", got)
	}
	if got := SectionName(0xeeee); !strings.Contains(got, "unknown") {
		t.Errorf("SectionName(unknown) = %q", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	w := NewWriter()
	man := Manifest{Tool: "test", GraphName: "g", Nodes: 10, Edges: 20, EngineSeed: 42, MaxK: 500, HasBFS: true}
	if err := w.AddManifest(man); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if got != man {
		t.Errorf("manifest round trip: got %+v, want %+v", got, man)
	}
}

func TestManifestCorrupt(t *testing.T) {
	w := NewWriter()
	w.AddBytes(SecManifest, []byte("not json"), 8)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadManifest(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("LoadManifest on garbage = %v, want ErrCorrupt", err)
	}
}
