package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedImage builds a small valid container exercising every typed
// section kind plus a manifest, so mutations start from a parseable file
// and quickly reach the interior decode paths rather than dying at the
// magic-number check.
func fuzzSeedImage(tb testing.TB) []byte {
	tb.Helper()
	w := NewWriter()
	if err := w.AddManifest(Manifest{Tool: "fuzz", GraphName: "g", Nodes: 2, Edges: 2}); err != nil {
		tb.Fatalf("AddManifest: %v", err)
	}
	w.AddUint64s(SecBFSMeta, []uint64{3, 2, 7})
	w.AddUint64s(SecBFSWords, []uint64{0xdeadbeef, 0, ^uint64(0)})
	w.AddInt32s(SecGraphOutIndex, []int32{0, 1, 2})
	w.AddInt32s(SecGraphOutTo, []int32{1, 0})
	w.AddFloat64s(SecGraphOutProb, []float64{0.5, 0.25})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		tb.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// FuzzSnapshotOpen is the crash-resistance contract for the decode path:
// FromBytes on arbitrary bytes either succeeds or returns an error
// wrapping ErrCorrupt or ErrVersion — it must never panic, and on
// success every section accessor must stay within the same error
// contract. CI runs this for a short smoke window on every push.
func FuzzSnapshotOpen(f *testing.F) {
	valid := fuzzSeedImage(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RELSNAP1"))
	// Truncations at structurally interesting offsets: inside the header,
	// at the section-table boundary, and mid-payload.
	for _, n := range []int{1, 7, 8, 16, 63, 64, len(valid) / 2, len(valid) - 1} {
		if n >= 0 && n < len(valid) {
			f.Add(valid[:n])
		}
	}
	// Single-bit flips spread across header, table, and payloads.
	for i := 0; i < len(valid); i += 97 {
		mut := bytes.Clone(valid)
		mut[i] ^= 1 << (i % 8)
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := FromBytes(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("FromBytes error is not ErrCorrupt/ErrVersion: %v", err)
			}
			return
		}
		defer file.Close()

		// A file that opened must keep its accessors panic-free and its
		// errors typed, whatever the fuzzer did to the interior bytes.
		if err := file.Verify(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify error is not ErrCorrupt: %v", err)
		}
		if _, err := file.LoadManifest(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("LoadManifest error is not ErrCorrupt: %v", err)
		}
		for _, s := range file.Sections() {
			if _, err := file.Bytes(s.Type); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Bytes(%#x) error is not ErrCorrupt: %v", s.Type, err)
			}
			if _, err := file.Uint64s(s.Type); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Uint64s(%#x) error is not ErrCorrupt: %v", s.Type, err)
			}
			if _, err := file.Int32s(s.Type); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Int32s(%#x) error is not ErrCorrupt: %v", s.Type, err)
			}
			if _, err := file.Float64s(s.Type); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Float64s(%#x) error is not ErrCorrupt: %v", s.Type, err)
			}
		}
		if _, err := LoadGraph(file, "out"); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("LoadGraph error is not ErrCorrupt: %v", err)
		}
		if _, err := LoadProbTree(file); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("LoadProbTree error is not ErrCorrupt: %v", err)
		}
	})
}
