package snapshot

import "relcomp/internal/uncertain"

// AddGraph adds the graph's CSR columns as sections. The Writer aliases
// the graph's storage; the graph must stay alive until WriteTo returns.
func AddGraph(w *Writer, g *uncertain.Graph) {
	r := g.RawCSR()
	w.AddInt32s(SecGraphOutIndex, r.OutIndex)
	w.AddInt32s(SecGraphOutTo, r.OutTo)
	w.AddFloat64s(SecGraphOutProb, r.OutProb)
	w.AddInt32s(SecGraphOutEdge, r.OutEdge)
	w.AddInt32s(SecGraphInIndex, r.InIndex)
	w.AddInt32s(SecGraphInFrom, r.InFrom)
	w.AddInt32s(SecGraphInEdge, r.InEdge)
}

// LoadGraph reconstructs the graph over the file's CSR sections. The
// numeric columns alias the file image (NodeID and EdgeID are int32
// aliases); only the edge list is materialized. uncertain.FromRawCSR
// revalidates every structural invariant, and the column reads verify
// their checksums, so a corrupted file fails here rather than panicking
// inside a later query.
func LoadGraph(f *File, name string) (*uncertain.Graph, error) {
	outIndex, err := f.Int32s(SecGraphOutIndex)
	if err != nil {
		return nil, err
	}
	outTo, err := f.Int32s(SecGraphOutTo)
	if err != nil {
		return nil, err
	}
	outProb, err := f.Float64s(SecGraphOutProb)
	if err != nil {
		return nil, err
	}
	outEdge, err := f.Int32s(SecGraphOutEdge)
	if err != nil {
		return nil, err
	}
	inIndex, err := f.Int32s(SecGraphInIndex)
	if err != nil {
		return nil, err
	}
	inFrom, err := f.Int32s(SecGraphInFrom)
	if err != nil {
		return nil, err
	}
	inEdge, err := f.Int32s(SecGraphInEdge)
	if err != nil {
		return nil, err
	}
	if len(outIndex) == 0 {
		return nil, corruptf("graph.outIndex is empty")
	}
	g, err := uncertain.FromRawCSR(uncertain.RawCSR{
		Name:     name,
		NumNodes: len(outIndex) - 1,
		OutIndex: outIndex,
		OutTo:    outTo,
		OutProb:  outProb,
		OutEdge:  outEdge,
		InIndex:  inIndex,
		InFrom:   inFrom,
		InEdge:   inEdge,
	})
	if err != nil {
		return nil, corruptf("%v", err)
	}
	return g, nil
}
