// Package snapshot implements the persistent on-disk container for the
// immutable offline structures of the paper's index-based estimators: the
// CSR graph with edge probabilities, the BFS Sharing edge bit-vector
// arena, and the ProbTree decomposition. The paper's Fig. 13(c) measures
// "index loading time" — the cost of bringing a pre-built index back into
// memory — and this package drives it toward O(page faults): files are
// memory-mapped read-only and the large numeric sections are aliased in
// place rather than decoded.
//
// The container is a sectioned binary format:
//
//	offset 0:  64-byte header
//	           magic "RELSNAP1" | version u32 | sections u32 |
//	           fileSize u64 | tableCRC u32 | reserved (zeros)
//	offset 64: section table, 32 bytes per section
//	           type u32 | crc u32 (crc32c of payload) |
//	           offset u64 | length u64 | count u64
//	then:      section payloads, each 64-byte aligned, zero padded
//
// All integers are little-endian. Payload offsets are aligned to 64 bytes
// so that u64/f64 sections can be aliased on any mapping (pages are
// page-aligned; heap fallbacks are checked at alias time) and so section
// starts never share a cache line with the previous payload's tail.
//
// Corruption never panics: a truncated file, bad magic, or failed
// checksum surfaces as an error wrapping ErrCorrupt; an unknown format
// version wraps ErrVersion. Checksums on the bulk sections (the BFS word
// arena dominates file size) are verified only by an explicit Verify call
// — an Open followed by queries stays lazy and pays only page faults —
// while the header, table, and every section a caller actually decodes
// through the verifying accessors are checked up front.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"relcomp/internal/faultinject"
)

// Magic identifies a snapshot file; the trailing "1" is part of the magic,
// not the version (the version field can move independently).
const Magic = "RELSNAP1"

// Version is the current format version. Readers reject other versions
// with ErrVersion.
const Version = 1

const (
	headerSize = 64
	entrySize  = 32
	align      = 64
)

// maxSections bounds the section count a reader will accept, so a
// corrupted count cannot drive a huge allocation before the table
// checksum is even checked.
const maxSections = 1 << 16

var (
	// ErrCorrupt is wrapped by every error caused by a malformed,
	// truncated, or checksum-failing snapshot file.
	ErrCorrupt = errors.New("snapshot: corrupt file")
	// ErrVersion is wrapped when the file is a valid snapshot of an
	// unsupported format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
)

// castagnoli is the CRC-32C table; the polynomial has hardware support on
// amd64 and arm64, so checksumming runs near memory bandwidth.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// section is one parsed table entry.
type section struct {
	typ    uint32
	crc    uint32
	offset uint64
	length uint64
	count  uint64
}

// SectionInfo describes one section for inspection tools.
type SectionInfo struct {
	Type   uint32
	Name   string
	Offset uint64
	Length uint64
	Count  uint64
	CRC    uint32
}

// Writer accumulates sections and serializes the container. Payload
// slices are aliased, not copied; the caller must keep them unchanged
// until WriteTo returns.
type Writer struct {
	sections []section
	payloads [][]byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// AddBytes adds a raw byte section. count is the caller's element count
// (stored verbatim in the table; the typed accessors cross-check it
// against the length on load).
func (w *Writer) AddBytes(typ uint32, payload []byte, count int) {
	for _, s := range w.sections {
		if s.typ == typ {
			//lint:allow nopanic write-side builder invariant: section types are compile-time constants, not untrusted input
			panic(fmt.Sprintf("snapshot: duplicate section type %#x", typ)) //lint:allow errwrapped write-side AddBytes never sees untrusted bytes
		}
	}
	w.sections = append(w.sections, section{
		typ:    typ,
		crc:    crc32.Checksum(payload, castagnoli),
		length: uint64(len(payload)),
		count:  uint64(count),
	})
	w.payloads = append(w.payloads, payload)
}

// AddUint64s adds a []uint64 section.
func (w *Writer) AddUint64s(typ uint32, v []uint64) { w.AddBytes(typ, u64Bytes(v), len(v)) }

// AddInt32s adds a []int32 section.
func (w *Writer) AddInt32s(typ uint32, v []int32) { w.AddBytes(typ, i32Bytes(v), len(v)) }

// AddFloat64s adds a []float64 section.
func (w *Writer) AddFloat64s(typ uint32, v []float64) { w.AddBytes(typ, f64Bytes(v), len(v)) }

// WriteTo serializes the container. It lays out payloads in insertion
// order at 64-byte aligned offsets, then emits header, table, and
// payloads with padding.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	off := uint64(alignUp(headerSize + entrySize*len(w.sections)))
	for i := range w.sections {
		w.sections[i].offset = off
		off = alignUp(int(off) + int(w.sections[i].length))
	}
	fileSize := off
	if len(w.sections) > 0 {
		last := &w.sections[len(w.sections)-1]
		fileSize = last.offset + last.length // no trailing padding
	}

	table := make([]byte, entrySize*len(w.sections))
	for i, s := range w.sections {
		e := table[i*entrySize:]
		putU32(e[0:], s.typ)
		putU32(e[4:], s.crc)
		putU64(e[8:], s.offset)
		putU64(e[16:], s.length)
		putU64(e[24:], s.count)
	}

	header := make([]byte, headerSize)
	copy(header, Magic)
	putU32(header[8:], Version)
	putU32(header[12:], uint32(len(w.sections)))
	putU64(header[16:], fileSize)
	putU32(header[24:], crc32.Checksum(table, castagnoli))

	var n int64
	write := func(b []byte) error {
		k, err := out.Write(b)
		n += int64(k)
		return err
	}
	if err := write(header); err != nil {
		return n, err
	}
	if err := write(table); err != nil {
		return n, err
	}
	pos := uint64(headerSize + len(table))
	var pad [align]byte
	for i, s := range w.sections {
		if s.offset > pos {
			if err := write(pad[:s.offset-pos]); err != nil {
				return n, err
			}
			pos = s.offset
		}
		if err := write(w.payloads[i]); err != nil {
			return n, err
		}
		pos += s.length
	}
	return n, nil
}

func alignUp(n int) uint64 { return uint64((n + align - 1) &^ (align - 1)) }

// File is an open snapshot. The data is either a read-only memory mapping
// (Mapped reports true) or a heap buffer; either way sections returned by
// the accessors alias it and stay valid until Close.
type File struct {
	data     []byte
	sections []section
	unmap    func() error
	mapped   bool
	verified []bool // per-section: payload CRC already checked
}

// Open opens the snapshot at path, memory-mapping it read-only where the
// platform supports it and reading it into the heap otherwise. The
// header, section table, and table checksum are validated; payload
// checksums are validated lazily (see File.Bytes and Verify).
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	// Fault-injection site: a read fault on the container surfaces exactly
	// like a truncated or unreadable file — wrapped in ErrCorrupt so
	// callers' degradation paths (heap rebuild at server startup) engage.
	if ferr := faultinject.ErrorAt(faultinject.SnapshotRead, uint64(st.Size())); ferr != nil {
		return nil, corruptf("read fault on %s: %v", path, ferr)
	}
	if data, unmap, ok := mmapFile(f, st.Size()); ok {
		sf, err := newFile(data, true, unmap)
		if err != nil {
			unmap()
			return nil, err
		}
		return sf, nil
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return newFile(data, false, nil)
}

// ReadFrom reads a snapshot stream into the heap. Heap-backed files are
// writable by the structures loaded over them (there is no read-only
// mapping to fault on).
func ReadFrom(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return FromBytes(data)
}

// FromBytes parses an in-memory snapshot image. The File aliases data.
func FromBytes(data []byte) (*File, error) {
	return newFile(data, false, nil)
}

func newFile(data []byte, mapped bool, unmap func() error) (*File, error) {
	if len(data) < headerSize {
		return nil, corruptf("file is %d bytes, shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != Magic {
		return nil, corruptf("bad magic %q", data[:8])
	}
	if v := getU32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	nsec := int(getU32(data[12:]))
	if nsec > maxSections {
		return nil, corruptf("section count %d exceeds limit %d", nsec, maxSections)
	}
	if size := getU64(data[16:]); size != uint64(len(data)) {
		return nil, corruptf("header says %d bytes, file has %d (truncated?)", size, len(data))
	}
	tableEnd := headerSize + nsec*entrySize
	if tableEnd > len(data) {
		return nil, corruptf("section table extends past end of file")
	}
	table := data[headerSize:tableEnd]
	if got := crc32.Checksum(table, castagnoli); got != getU32(data[24:]) {
		return nil, corruptf("section table checksum mismatch")
	}

	sections := make([]section, nsec)
	for i := range sections {
		e := table[i*entrySize:]
		s := section{
			typ:    getU32(e[0:]),
			crc:    getU32(e[4:]),
			offset: getU64(e[8:]),
			length: getU64(e[16:]),
			count:  getU64(e[24:]),
		}
		if s.offset%align != 0 {
			return nil, corruptf("section %#x at misaligned offset %d", s.typ, s.offset)
		}
		if s.offset > uint64(len(data)) || s.length > uint64(len(data))-s.offset {
			return nil, corruptf("section %#x spans [%d,+%d), past the %d-byte file",
				s.typ, s.offset, s.length, len(data))
		}
		for _, prev := range sections[:i] {
			if prev.typ == s.typ {
				return nil, corruptf("duplicate section type %#x", s.typ)
			}
		}
		sections[i] = s
	}
	return &File{
		data:     data,
		sections: sections,
		unmap:    unmap,
		mapped:   mapped,
		verified: make([]bool, nsec),
	}, nil
}

// Mapped reports whether the file is backed by a read-only memory
// mapping. Structures loaded over a mapped file must never be written.
func (f *File) Mapped() bool { return f.mapped }

// Size returns the snapshot image size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Close releases the mapping, if any. Sections handed out by the
// accessors must not be used after Close.
func (f *File) Close() error {
	if f == nil || f.unmap == nil {
		return nil
	}
	u := f.unmap
	f.unmap = nil
	f.data = nil
	return u()
}

// Has reports whether a section of the given type is present.
func (f *File) Has(typ uint32) bool {
	_, ok := f.find(typ)
	return ok
}

func (f *File) find(typ uint32) (int, bool) {
	for i := range f.sections {
		if f.sections[i].typ == typ {
			return i, true
		}
	}
	return 0, false
}

func (f *File) payload(i int) []byte {
	s := f.sections[i]
	return f.data[s.offset : s.offset+s.length : s.offset+s.length]
}

// Bytes returns a section's payload after verifying its checksum (once;
// later calls are free). The slice aliases the file image: read-only when
// the file is mapped.
func (f *File) Bytes(typ uint32) ([]byte, error) {
	i, ok := f.find(typ)
	if !ok {
		return nil, corruptf("missing section %s", SectionName(typ))
	}
	p := f.payload(i)
	if !f.verified[i] {
		if got := crc32.Checksum(p, castagnoli); got != f.sections[i].crc {
			return nil, corruptf("section %s checksum mismatch (file %#08x, data %#08x)",
				SectionName(typ), f.sections[i].crc, got)
		}
		f.verified[i] = true
	}
	return p, nil
}

// BytesNoVerify returns a section's payload without checksumming it. The
// loaders use it for the bulk sections so a cold open stays O(page
// faults); Verify covers them on demand.
func (f *File) BytesNoVerify(typ uint32) ([]byte, int, error) {
	i, ok := f.find(typ)
	if !ok {
		return nil, 0, corruptf("missing section %s", SectionName(typ))
	}
	return f.payload(i), int(f.sections[i].count), nil
}

// Verify checksums every section payload, faulting the whole file in.
// relsnap verify and the corruption tests use it; serving paths do not.
func (f *File) Verify() error {
	for i := range f.sections {
		if f.verified[i] {
			continue
		}
		// Fault-injection site: a bit-flipped payload is indistinguishable
		// from a checksum mismatch, so the injected fault reports one
		// without any real byte changing (the mapping is read-only).
		if ferr := faultinject.ErrorAt(faultinject.SnapshotFlip,
			uint64(f.sections[i].typ)<<32|uint64(f.sections[i].crc)); ferr != nil {
			return corruptf("section %s checksum mismatch: %v",
				SectionName(f.sections[i].typ), ferr)
		}
		p := f.payload(i)
		if got := crc32.Checksum(p, castagnoli); got != f.sections[i].crc {
			return corruptf("section %s checksum mismatch (file %#08x, data %#08x)",
				SectionName(f.sections[i].typ), f.sections[i].crc, got)
		}
		f.verified[i] = true
	}
	return nil
}

// Sections lists the file's sections in file order, for inspection.
func (f *File) Sections() []SectionInfo {
	out := make([]SectionInfo, len(f.sections))
	for i, s := range f.sections {
		out[i] = SectionInfo{
			Type:   s.typ,
			Name:   SectionName(s.typ),
			Offset: s.offset,
			Length: s.length,
			Count:  s.count,
			CRC:    s.crc,
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}
