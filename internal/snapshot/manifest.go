package snapshot

import "encoding/json"

// Manifest is the snapshot's self-description, stored as a JSON section
// so inspection tools can show it without knowing the numeric sections.
// EngineSeed and MaxK pin the engine configuration the indexes were built
// under: an engine started from the snapshot must use exactly these for
// its answers to be bit-identical to one that built the indexes itself.
type Manifest struct {
	Tool        string `json:"tool,omitempty"`
	GraphName   string `json:"graph"`
	Nodes       int64  `json:"nodes"`
	Edges       int64  `json:"edges"`
	EngineSeed  uint64 `json:"engineSeed"`
	MaxK        int    `json:"maxK,omitempty"`
	PTWidth     int    `json:"ptWidth,omitempty"`
	HasBFS      bool   `json:"hasBFS"`
	HasProbTree bool   `json:"hasProbTree"`
	CreatedUnix int64  `json:"createdUnix,omitempty"`
	// DegreeRelabeled marks a snapshot whose stored graph is the
	// degree-sorted rename of the original; the relabel.* sections carry
	// the id translation. Old snapshots decode with it false.
	DegreeRelabeled bool `json:"degreeRelabeled,omitempty"`
	// Epoch is the mutation epoch of the stored graph: 0 for a snapshot of
	// a never-mutated graph (old snapshots decode with 0), the engine's
	// epoch at write time otherwise. A sidecar mutation log replayed over
	// this snapshot must chain from exactly this epoch.
	Epoch uint64 `json:"epoch,omitempty"`
}

// AddManifest adds the manifest section.
func (w *Writer) AddManifest(m Manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	w.AddBytes(SecManifest, b, len(b))
	return nil
}

// LoadManifest decodes the manifest section.
func (f *File) LoadManifest() (Manifest, error) {
	b, err := f.Bytes(SecManifest)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, corruptf("manifest: %v", err)
	}
	return m, nil
}
