package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Section types. The numbering is part of the format: readers look
// sections up by type, so values must never be reused for a different
// meaning within a format version.
const (
	SecManifest uint32 = 0x01 // JSON Manifest

	SecGraphOutIndex uint32 = 0x10 // []int32, n+1
	SecGraphOutTo    uint32 = 0x11 // []int32, m
	SecGraphOutProb  uint32 = 0x12 // []float64, m
	SecGraphOutEdge  uint32 = 0x13 // []int32, m
	SecGraphInIndex  uint32 = 0x14 // []int32, n+1
	SecGraphInFrom   uint32 = 0x15 // []int32, m
	SecGraphInEdge   uint32 = 0x16 // []int32, m

	SecBFSMeta  uint32 = 0x20 // []uint64: width, valid, numEdges
	SecBFSWords uint32 = 0x21 // []uint64: the edge bit-vector arena

	SecPTMeta        uint32 = 0x30 // []uint64: width, root, numBags, numNodes
	SecPTBagOf       uint32 = 0x31 // []int32, numNodes
	SecPTCovered     uint32 = 0x32 // []int32, numBags
	SecPTParent      uint32 = 0x33 // []int32, numBags
	SecPTNodeOff     uint32 = 0x34 // []uint64, numBags+1
	SecPTNodes       uint32 = 0x35 // []int32, concat of bag node lists
	SecPTRawOff      uint32 = 0x36 // []uint64, numBags+1
	SecPTRawFrom     uint32 = 0x37 // []int32
	SecPTRawTo       uint32 = 0x38 // []int32
	SecPTRawP        uint32 = 0x39 // []float64
	SecPTContribOff  uint32 = 0x3a // []uint64, numBags+1
	SecPTContribFrom uint32 = 0x3b // []int32
	SecPTContribTo   uint32 = 0x3c // []int32
	SecPTContribP    uint32 = 0x3d // []float64
	SecPTChildOff    uint32 = 0x3e // []uint64, numBags+1
	SecPTChildren    uint32 = 0x3f // []int32, concat of bag child lists

	// Degree-relabeled snapshots: the stored graph is the degree-sorted
	// rename and these sections carry the id translation back to the
	// caller's original ids. Absent in un-relabeled snapshots; old readers
	// that predate them ignore unknown sections.
	SecRelabelToOld     uint32 = 0x40 // []int32, n: internal node id -> external
	SecRelabelEdgeToNew uint32 = 0x41 // []int32, m: external edge id -> internal
)

var sectionNames = map[uint32]string{
	SecManifest:      "manifest",
	SecGraphOutIndex: "graph.outIndex",
	SecGraphOutTo:    "graph.outTo",
	SecGraphOutProb:  "graph.outProb",
	SecGraphOutEdge:  "graph.outEdge",
	SecGraphInIndex:  "graph.inIndex",
	SecGraphInFrom:   "graph.inFrom",
	SecGraphInEdge:   "graph.inEdge",
	SecBFSMeta:       "bfs.meta",
	SecBFSWords:      "bfs.words",
	SecPTMeta:        "probtree.meta",
	SecPTBagOf:       "probtree.bagOf",
	SecPTCovered:     "probtree.covered",
	SecPTParent:      "probtree.parent",
	SecPTNodeOff:     "probtree.nodeOff",
	SecPTNodes:       "probtree.nodes",
	SecPTRawOff:      "probtree.rawOff",
	SecPTRawFrom:     "probtree.rawFrom",
	SecPTRawTo:       "probtree.rawTo",
	SecPTRawP:        "probtree.rawP",
	SecPTContribOff:  "probtree.contribOff",
	SecPTContribFrom: "probtree.contribFrom",
	SecPTContribTo:   "probtree.contribTo",
	SecPTContribP:    "probtree.contribP",
	SecPTChildOff:    "probtree.childOff",
	SecPTChildren:    "probtree.children",

	SecRelabelToOld:     "relabel.toOld",
	SecRelabelEdgeToNew: "relabel.edgeToNew",
}

// SectionName returns a human-readable name for a section type.
func SectionName(typ uint32) string {
	if n, ok := sectionNames[typ]; ok {
		return n
	}
	return fmt.Sprintf("unknown(%#x)", typ)
}

// hostLE reports whether the host is little-endian — the only case in
// which sections can be aliased in place. Big-endian hosts fall back to
// copy-decoding, so the on-disk format stays portable.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Typed accessors. Each checks that the stored element count matches the
// payload length, then returns a slice that aliases the file image when
// the host is little-endian and the payload is suitably aligned (payload
// offsets are 64-byte aligned, so a page-aligned mapping always is; a
// heap buffer is checked), and a decoded copy otherwise.

// Uint64s returns a []uint64 section, verifying its checksum.
func (f *File) Uint64s(typ uint32) ([]uint64, error) {
	p, err := f.Bytes(typ)
	if err != nil {
		return nil, err
	}
	return asUint64s(typ, p, f.count(typ))
}

// Uint64sNoVerify returns a []uint64 section without checksumming it.
func (f *File) Uint64sNoVerify(typ uint32) ([]uint64, error) {
	p, count, err := f.BytesNoVerify(typ)
	if err != nil {
		return nil, err
	}
	return asUint64s(typ, p, count)
}

// Int32s returns a []int32 section, verifying its checksum.
func (f *File) Int32s(typ uint32) ([]int32, error) {
	p, err := f.Bytes(typ)
	if err != nil {
		return nil, err
	}
	return asInt32s(typ, p, f.count(typ))
}

// Float64s returns a []float64 section, verifying its checksum.
func (f *File) Float64s(typ uint32) ([]float64, error) {
	p, err := f.Bytes(typ)
	if err != nil {
		return nil, err
	}
	return asFloat64s(typ, p, f.count(typ))
}

func (f *File) count(typ uint32) int {
	i, _ := f.find(typ) // callers only reach here after a successful read
	return int(f.sections[i].count)
}

func asUint64s(typ uint32, p []byte, count int) ([]uint64, error) {
	if len(p) != count*8 {
		return nil, corruptf("section %s: %d bytes cannot hold %d uint64s", SectionName(typ), len(p), count)
	}
	if count == 0 {
		return nil, nil
	}
	if hostLE && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), count), nil
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	return out, nil
}

func asInt32s(typ uint32, p []byte, count int) ([]int32, error) {
	if len(p) != count*4 {
		return nil, corruptf("section %s: %d bytes cannot hold %d int32s", SectionName(typ), len(p), count)
	}
	if count == 0 {
		return nil, nil
	}
	if hostLE && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), count), nil
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out, nil
}

func asFloat64s(typ uint32, p []byte, count int) ([]float64, error) {
	if len(p) != count*8 {
		return nil, corruptf("section %s: %d bytes cannot hold %d float64s", SectionName(typ), len(p), count)
	}
	if count == 0 {
		return nil, nil
	}
	if hostLE && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), count), nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return out, nil
}

// Write-side encoders: alias the caller's slice as bytes on little-endian
// hosts, copy-encode elsewhere.

func u64Bytes(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], x)
	}
	return out
}

func i32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// Header field helpers (the header and table are small; plain
// binary.LittleEndian keeps them portable).

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
