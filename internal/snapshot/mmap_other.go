//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package snapshot

import "os"

// mmapFile on platforms without a (stdlib-reachable) mmap: always decline,
// so Open falls back to reading the file into the heap.
func mmapFile(*os.File, int64) ([]byte, func() error, bool) {
	return nil, nil, false
}
