//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package snapshot

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. A false third result means the
// platform or this particular file cannot be mapped (empty files, exotic
// filesystems) and the caller should fall back to reading into the heap.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return data, func() error { return syscall.Munmap(data) }, true
}
