package core

import (
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// MC is the baseline Monte Carlo estimator (Fishman 1986), Algorithm 1 of
// the paper: for each of the K samples it runs a BFS from s that samples
// each encountered edge on demand with its probability, stopping early as
// soon as t is reached. The fraction of samples in which t was reached is
// an unbiased estimate of R(s,t) with variance R(1-R)/K (Eq. 3–4).
type MC struct {
	g     *uncertain.Graph
	rng   *rng.Source
	seen  *epochSet
	queue []uncertain.NodeID
}

// mcQueueCap is the initial BFS queue capacity of an MC instance.
const mcQueueCap = 256

// NewMC returns an MC estimator over g with the given random seed.
func NewMC(g *uncertain.Graph, seed uint64) *MC {
	return &MC{
		g:     g,
		rng:   rng.New(seed),
		seen:  newEpochSet(g.NumNodes()),
		queue: make([]uncertain.NodeID, 0, mcQueueCap),
	}
}

// Name implements Estimator.
func (mc *MC) Name() string { return "MC" }

// Reseed implements Seeder.
func (mc *MC) Reseed(seed uint64) { mc.rng.Seed(seed) }

// Estimate implements Estimator.
func (mc *MC) Estimate(s, t uncertain.NodeID, k int) float64 {
	mustValidQuery(mc.g, s, t, k)
	if s == t {
		return 1
	}
	hits := 0
	for i := 0; i < k; i++ {
		if mc.sampleOnce(s, t) {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// sampleOnce draws one possible world lazily and reports whether t is
// reachable from s in it. Each edge is probed at most once per sample
// because every node is dequeued at most once.
func (mc *MC) sampleOnce(s, t uncertain.NodeID) bool {
	g, r := mc.g, mc.rng
	mc.seen.nextRound()
	mc.seen.visit(s)
	q := mc.queue[:0]
	q = append(q, s)
	for head := 0; head < len(q); head++ {
		v := q[head]
		tos := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for i, w := range tos {
			if mc.seen.visited(w) {
				continue
			}
			if !r.Bernoulli(ps[i]) {
				continue
			}
			if w == t {
				mc.queue = q
				return true
			}
			mc.seen.visit(w)
			q = append(q, w)
		}
	}
	mc.queue = q
	return false
}

// Sampler implements IncrementalEstimator: MC's sample stream is
// sequential, so a session advanced in chunks accumulates exactly the hit
// count one Estimate call with the summed budget would — Advance(a);
// Advance(b) is bit-identical to Estimate(s, t, a+b).
func (mc *MC) Sampler(s, t uncertain.NodeID) Sampler {
	mustValidQuery(mc.g, s, t, 1)
	if s == t {
		return &trivialSampler{estimate: 1}
	}
	return &mcSampler{mc: mc, s: s, t: t}
}

type mcSampler struct {
	mc      *MC
	s, t    uncertain.NodeID
	n, hits int
}

func (x *mcSampler) Advance(dk int) {
	checkAdvance(dk, x.n, 0)
	for i := 0; i < dk; i++ {
		if x.mc.sampleOnce(x.s, x.t) {
			x.hits++
		}
	}
	x.n += dk
}

func (x *mcSampler) Snapshot() SampleSnapshot { return binomialSnapshot(x.hits, x.n, 0) }

// MemoryBytes implements MemoryReporter: MC keeps only the visited set and
// the BFS queue beyond the shared graph.
func (mc *MC) MemoryBytes() int64 {
	return mc.seen.bytes() + int64(cap(mc.queue))*4
}

var _ IncrementalEstimator = (*MC)(nil)
