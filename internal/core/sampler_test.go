package core

import (
	"context"
	"math"
	"testing"
	"time"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// samplerGraph builds a mid-size random graph with mixed probabilities so
// chunk boundaries land in interesting places (partial packs, partial
// words, multi-hop paths).
func samplerGraph(tb testing.TB) *uncertain.Graph {
	tb.Helper()
	r := rng.New(41)
	b := uncertain.NewBuilder(60)
	for i := 0; i < 240; i++ {
		u, v := uncertain.NodeID(r.Intn(60)), uncertain.NodeID(r.Intn(60))
		if u == v {
			continue
		}
		b.AddEdge(u, v, 0.05+0.9*r.Float64())
	}
	return b.Build()
}

// TestSamplerChunkedMatchesOneShot is the contract test of the tentpole:
// for every natively incremental estimator, Advance(a); Advance(b); ...
// must equal Estimate(s, t, a+b+...) exactly — not statistically.
func TestSamplerChunkedMatchesOneShot(t *testing.T) {
	g := samplerGraph(t)
	const seed = 97
	builders := []struct {
		name string
		make func() Estimator
	}{
		{"MC", func() Estimator { return NewMC(g, seed) }},
		{"PackMC", func() Estimator { return NewPackMC(g, seed) }},
		{"ParallelPackMC", func() Estimator { return NewParallelPackMC(g, seed, 3) }},
		{"BFSSharing", func() Estimator { return NewBFSSharing(g, seed, 2048) }},
		{"LP+", func() Estimator { return NewLazyProp(g, seed) }},
		{"ProbTree", func() Estimator { return NewProbTree(g, seed) }},
	}
	chunkings := [][]int{
		{1000},
		{1, 999},
		{100, 60, 840},
		{63, 64, 65, 808},
		{500, 500},
	}
	pairs := [][2]uncertain.NodeID{{0, 7}, {3, 42}, {11, 11}}
	for _, b := range builders {
		for _, pr := range pairs {
			s, tt := pr[0], pr[1]
			// One-shot reference from a fresh instance.
			want := b.make().Estimate(s, tt, 1000)
			if s == tt && want != 1 {
				t.Fatalf("%s: s==t estimate %v", b.name, want)
			}
			for _, chunks := range chunkings {
				est := b.make()
				sp := NewSampler(est, s, tt)
				total := 0
				for _, dk := range chunks {
					sp.Advance(dk)
					total += dk
				}
				snap := sp.Snapshot()
				if snap.N != total {
					t.Fatalf("%s %v chunks %v: N=%d want %d", b.name, pr, chunks, snap.N, total)
				}
				if snap.Estimate != want {
					t.Errorf("%s (%d,%d) chunks %v: chunked %v != one-shot %v",
						b.name, s, tt, chunks, snap.Estimate, want)
				}
			}
		}
	}
}

// TestSamplerSessionsMatchSuccessiveEstimates: opening sessions back to
// back must walk the same stream as successive Estimate calls, so pooled
// replicas behave identically whether they serve fixed or adaptive
// queries.
func TestSamplerSessionsMatchSuccessiveEstimates(t *testing.T) {
	g := samplerGraph(t)
	const seed, k = 123, 640
	for _, mk := range []struct {
		name string
		make func() Estimator
	}{
		{"MC", func() Estimator { return NewMC(g, seed) }},
		{"PackMC", func() Estimator { return NewPackMC(g, seed) }},
		{"LP+", func() Estimator { return NewLazyProp(g, seed) }},
	} {
		ref := mk.make()
		want1 := ref.Estimate(2, 9, k)
		want2 := ref.Estimate(2, 9, k)

		est := mk.make()
		sp := NewSampler(est, 2, 9)
		sp.Advance(k)
		got1 := sp.Snapshot().Estimate
		sp = NewSampler(est, 2, 9)
		sp.Advance(k)
		got2 := sp.Snapshot().Estimate
		if got1 != want1 || got2 != want2 {
			t.Errorf("%s: sessions (%v, %v) != estimates (%v, %v)", mk.name, got1, got2, want1, want2)
		}
	}
}

// TestRestartSamplerMatchesEstimate: the restart adapter's first Advance
// must be exactly one Estimate call, and later Advances must re-run at the
// summed budget with the naturally advanced stream.
func TestRestartSamplerMatchesEstimate(t *testing.T) {
	g := samplerGraph(t)
	for _, mk := range []struct {
		name string
		make func() Estimator
	}{
		{"RHH", func() Estimator { return NewRHH(g, 7) }},
		{"RSS", func() Estimator { return NewRSS(g, 7) }},
	} {
		want := mk.make().Estimate(0, 7, 500)
		sp := NewSampler(mk.make(), 0, 7)
		sp.Advance(500)
		if got := sp.Snapshot().Estimate; got != want {
			t.Errorf("%s: single Advance %v != Estimate %v", mk.name, got, want)
		}
		// Chunked restarts track the growing budget.
		ref := mk.make()
		r1 := ref.Estimate(0, 7, 200)
		r2 := ref.Estimate(0, 7, 500)
		sp = NewSampler(mk.make(), 0, 7)
		sp.Advance(200)
		if got := sp.Snapshot().Estimate; got != r1 {
			t.Errorf("%s: chunk 1 %v != restart ref %v", mk.name, got, r1)
		}
		sp.Advance(300)
		if got := sp.Snapshot().Estimate; got != r2 {
			t.Errorf("%s: chunk 2 %v != restart ref %v", mk.name, got, r2)
		}
	}
}

// TestAllSamplerMatchesEstimateAll: the multi-target sessions must agree
// with EstimateAll bit for bit at equal total samples, chunked or not.
func TestAllSamplerMatchesEstimateAll(t *testing.T) {
	g := samplerGraph(t)
	const seed, k = 55, 900
	type allEst = SourceSampler
	for _, mk := range []struct {
		name string
		make func() allEst
	}{
		{"PackMC", func() allEst { return NewPackMC(g, seed) }},
		{"BFSSharing", func() allEst { return &NewBFSSharing(g, seed, 2048).BFSQuerier }},
	} {
		want := mk.make().EstimateAll(4, k)
		for _, chunks := range [][]int{{k}, {100, 300, 500}, {1, 63, 836}} {
			est := mk.make()
			ms := est.AllSampler(4)
			for _, dk := range chunks {
				ms.Advance(dk)
			}
			if ms.N() != k {
				t.Fatalf("%s: N=%d want %d", mk.name, ms.N(), k)
			}
			for v := 0; v < g.NumNodes(); v++ {
				got := ms.SnapshotOf(uncertain.NodeID(v)).Estimate
				if got != want[v] {
					t.Errorf("%s chunks %v target %d: %v != EstimateAll %v",
						mk.name, chunks, v, got, want[v])
				}
			}
		}
	}
}

// TestAdaptiveEstimateFullBudgetBitIdentity: with every stopping rule
// disabled, AdaptiveEstimate must return exactly the fixed-K result.
func TestAdaptiveEstimateFullBudgetBitIdentity(t *testing.T) {
	g := samplerGraph(t)
	const seed, k = 31, 1500
	for _, mk := range []struct {
		name string
		make func() Estimator
	}{
		{"MC", func() Estimator { return NewMC(g, seed) }},
		{"PackMC", func() Estimator { return NewPackMC(g, seed) }},
		{"BFSSharing", func() Estimator { return NewBFSSharing(g, seed, 2048) }},
		{"LP+", func() Estimator { return NewLazyProp(g, seed) }},
		{"ProbTree", func() Estimator { return NewProbTree(g, seed) }},
		{"RHH", func() Estimator { return NewRHH(g, seed) }},
		{"RSS", func() Estimator { return NewRSS(g, seed) }},
	} {
		want := mk.make().Estimate(1, 8, k)
		res := AdaptiveEstimate(NewSampler(mk.make(), 1, 8), AdaptiveOptions{MaxK: k})
		if res.Estimate != want {
			t.Errorf("%s: adaptive ε=0 %v != fixed-K %v", mk.name, res.Estimate, want)
		}
		if res.Samples != k || res.Reason != StopMaxK {
			t.Errorf("%s: samples=%d reason=%q, want %d/max_k", mk.name, res.Samples, res.Reason, k)
		}
	}
}

// TestAdaptiveEstimateStopsEarly: an easy query (high reliability, small
// CI) must terminate well under the budget with reason eps, and the
// estimate must be near the truth.
func TestAdaptiveEstimateStopsEarly(t *testing.T) {
	// Two-node graph with a near-certain edge: converges in a few hundred
	// samples at ε = 0.05.
	b := uncertain.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.98)
	g := b.Build()
	const maxK = 200000
	res := AdaptiveEstimate(NewSampler(NewMC(g, 5), 0, 1), AdaptiveOptions{Eps: 0.05, MaxK: maxK})
	if res.Reason != StopEps {
		t.Fatalf("reason %q, want eps (result %+v)", res.Reason, res)
	}
	if res.Samples >= maxK/10 {
		t.Errorf("easy query used %d of %d samples", res.Samples, maxK)
	}
	if math.Abs(res.Estimate-0.98) > 0.05 {
		t.Errorf("estimate %v far from 0.98", res.Estimate)
	}
	if res.HalfWidth <= 0 || res.HalfWidth > 0.05*1.05 {
		t.Errorf("half-width %v inconsistent with ε=0.05 at estimate %v", res.HalfWidth, res.Estimate)
	}
}

// TestAdaptiveEstimateTrivialSession: a zero-half-width session (s == t)
// is exact from the start — the MinK guard must not force phantom
// samples onto it.
func TestAdaptiveEstimateTrivialSession(t *testing.T) {
	g := samplerGraph(t)
	res := AdaptiveEstimate(NewSampler(NewMC(g, 5), 4, 4), AdaptiveOptions{Eps: 0.1, MaxK: 10000})
	if res.Estimate != 1 || res.Samples != 0 || res.Reason != StopEps {
		t.Fatalf("trivial session did not stop at zero samples: %+v", res)
	}
	// Same through the lockstep path: a target equal to the source
	// retires on the first scan.
	pm := NewPackMC(g, 5)
	rs := AdaptiveEstimateAll(pm.AllSampler(4), []uncertain.NodeID{4, 9}, AdaptiveOptions{Eps: 0.1, MaxK: 1 << 20})
	if rs[0].Estimate != 1 || rs[0].Samples != 0 || rs[0].Reason != StopEps {
		t.Errorf("lockstep trivial target %+v", rs[0])
	}
	if rs[1].Samples == 0 {
		t.Errorf("real target retired without samples: %+v", rs[1])
	}
}

// TestAdaptiveEstimateZeroReliability: a disconnected pair must terminate
// via the absolute floor rather than sampling forever toward an impossible
// relative target.
func TestAdaptiveEstimateZeroReliability(t *testing.T) {
	b := uncertain.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5)
	g := b.Build() // node 2 unreachable
	res := AdaptiveEstimate(NewSampler(NewMC(g, 5), 0, 2), AdaptiveOptions{Eps: 0.1, MaxK: 1 << 20})
	if res.Estimate != 0 {
		t.Fatalf("estimate %v for unreachable pair", res.Estimate)
	}
	if res.Reason != StopEps {
		t.Fatalf("reason %q, want eps via absolute floor", res.Reason)
	}
	if res.Samples >= 1<<20 {
		t.Errorf("unreachable pair burned the whole budget (%d)", res.Samples)
	}
}

// TestAdaptiveEstimateDeadline: an expired deadline stops the run at the
// first check.
func TestAdaptiveEstimateDeadline(t *testing.T) {
	g := samplerGraph(t)
	res := AdaptiveEstimate(NewSampler(NewMC(g, 5), 0, 7), AdaptiveOptions{
		Eps:      1e-9,
		MaxK:     1 << 30,
		Deadline: time.Now().Add(-time.Second),
	})
	if res.Reason != StopDeadline {
		t.Fatalf("reason %q, want deadline", res.Reason)
	}
	// A live deadline bounds the run to roughly its duration.
	start := time.Now()
	res = AdaptiveEstimate(NewSampler(NewMC(g, 5), 0, 7), AdaptiveOptions{
		Eps:      1e-9,
		MaxK:     1 << 30,
		Deadline: time.Now().Add(30 * time.Millisecond),
	})
	if res.Reason != StopDeadline {
		t.Fatalf("live deadline: reason %q", res.Reason)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline overshot: ran %v", elapsed)
	}
	if res.Samples <= 0 {
		t.Errorf("deadline run drew no samples")
	}
}

// TestAdaptiveEstimateCanceledContext: cancellation terminates between
// chunks.
func TestAdaptiveEstimateCanceledContext(t *testing.T) {
	g := samplerGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := AdaptiveEstimate(NewSampler(NewMC(g, 5), 0, 7), AdaptiveOptions{
		Eps:  1e-9,
		MaxK: 1 << 30,
		Ctx:  ctx,
	})
	if res.Reason != StopCanceled {
		t.Fatalf("reason %q, want canceled", res.Reason)
	}
}

// TestAdaptiveEstimateRespectsCap: a BFS Sharing sampler is bounded by its
// index width even under a larger budget.
func TestAdaptiveEstimateRespectsCap(t *testing.T) {
	g := samplerGraph(t)
	bs := NewBFSSharing(g, 9, 512)
	res := AdaptiveEstimate(NewSampler(bs, 0, 7), AdaptiveOptions{Eps: 1e-12, MaxK: 1 << 20})
	if res.Samples != 512 || res.Reason != StopMaxK {
		t.Fatalf("cap not honored: samples=%d reason=%q", res.Samples, res.Reason)
	}
}

// TestAdaptiveEstimateAllLockstep: the lockstep group session retires easy
// targets early while hard targets keep sampling, and ε=0 is bit-identical
// to EstimateAll.
func TestAdaptiveEstimateAllLockstep(t *testing.T) {
	// Source 0 with a near-certain edge to 1 (easy) and a 3-hop 0.5³
	// chain to 4 (harder).
	b := uncertain.NewBuilder(5)
	b.MustAddEdge(0, 1, 0.99)
	b.MustAddEdge(0, 2, 0.5)
	b.MustAddEdge(2, 3, 0.5)
	b.MustAddEdge(3, 4, 0.5)
	g := b.Build()
	targets := []uncertain.NodeID{1, 4}

	const budget = 1 << 18
	pm := NewPackMC(g, 77)
	results := AdaptiveEstimateAll(pm.AllSampler(0), targets, AdaptiveOptions{Eps: 0.02, MaxK: budget})
	if results[0].Reason != StopEps {
		t.Fatalf("easy target: %+v", results[0])
	}
	if results[1].Reason != StopEps {
		t.Fatalf("hard target: %+v", results[1])
	}
	if results[0].Samples >= results[1].Samples {
		t.Errorf("easy target (%d samples) did not retire before hard (%d)",
			results[0].Samples, results[1].Samples)
	}
	if math.Abs(results[0].Estimate-0.99) > 0.02 {
		t.Errorf("easy estimate %v", results[0].Estimate)
	}
	if math.Abs(results[1].Estimate-0.125) > 0.02 {
		t.Errorf("hard estimate %v", results[1].Estimate)
	}

	// ε = 0: one full-budget sweep, bit-identical to EstimateAll.
	const k = 1000
	pmA := NewPackMC(g, 33)
	want := pmA.EstimateAll(0, k)
	pmB := NewPackMC(g, 33)
	got := AdaptiveEstimateAll(pmB.AllSampler(0), targets, AdaptiveOptions{MaxK: k})
	for i, tt := range targets {
		if got[i].Estimate != want[tt] {
			t.Errorf("ε=0 lockstep target %d: %v != %v", tt, got[i].Estimate, want[tt])
		}
		if got[i].Samples != k || got[i].Reason != StopMaxK {
			t.Errorf("ε=0 lockstep target %d: %+v", tt, got[i])
		}
	}
}

// TestCountRange cross-checks the bit-range population count against the
// naive loop.
func TestCountRange(t *testing.T) {
	r := rng.New(3)
	v := make([]uint64, 4)
	for i := range v {
		v[i] = r.Uint64()
	}
	naive := func(lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			if v[i>>6]&(1<<(uint(i)&63)) != 0 {
				n++
			}
		}
		return n
	}
	for _, rg := range [][2]int{{0, 0}, {0, 1}, {0, 64}, {0, 256}, {1, 63}, {63, 65}, {64, 128}, {100, 101}, {5, 250}, {192, 256}} {
		if got, want := countRange(v, rg[0], rg[1]), naive(rg[0], rg[1]); got != want {
			t.Errorf("countRange(%d,%d) = %d, want %d", rg[0], rg[1], got, want)
		}
	}
}
