package core

import (
	"math"
	"testing"

	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// exactKTerminal enumerates all worlds and checks that every target is
// reachable from s.
func exactKTerminal(g *uncertain.Graph, s uncertain.NodeID, targets []uncertain.NodeID) float64 {
	m := g.NumEdges()
	total := 0.0
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		pr := 1.0
		for i, e := range g.Edges() {
			if mask&(1<<uint(i)) != 0 {
				pr *= e.P
			} else {
				pr *= 1 - e.P
			}
		}
		reach := map[uncertain.NodeID]bool{s: true}
		stack := []uncertain.NodeID{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ids := g.OutEdgeIDs(v)
			tos := g.OutNeighbors(v)
			for i, id := range ids {
				if mask&(1<<uint(id)) != 0 && !reach[tos[i]] {
					reach[tos[i]] = true
					stack = append(stack, tos[i])
				}
			}
		}
		all := true
		for _, t := range targets {
			if !reach[t] {
				all = false
				break
			}
		}
		if all {
			total += pr
		}
	}
	return total
}

func TestKTerminalMatchesExact(t *testing.T) {
	r := rng.New(103)
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(4)
		g := randomTestGraph(r, n, 4+r.Intn(8))
		targets := []uncertain.NodeID{uncertain.NodeID(n - 1), uncertain.NodeID(n - 2)}
		want := exactKTerminal(g, 0, targets)
		kt, err := NewKTerminal(g, uint64(trial)+7, targets)
		if err != nil {
			t.Fatal(err)
		}
		got := kt.Estimate(0, 30000)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("trial %d: %.4f, exact %.4f", trial, got, want)
		}
	}
}

func TestKTerminalSingleTargetEqualsST(t *testing.T) {
	r := rng.New(107)
	g := randomTestGraph(r, 8, 20)
	want, err := exact.Factoring(g, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := NewKTerminal(g, 5, []uncertain.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	if got := kt.Estimate(0, 40000); math.Abs(got-want) > 0.02 {
		t.Errorf("|T|=1: %.4f, exact s-t %.4f", got, want)
	}
}

func TestKTerminalAtMostMinimum(t *testing.T) {
	// P(all targets reachable) <= min_t P(t reachable).
	r := rng.New(109)
	g := randomTestGraph(r, 10, 25)
	targets := []uncertain.NodeID{5, 7, 9}
	kt, err := NewKTerminal(g, 5, targets)
	if err != nil {
		t.Fatal(err)
	}
	all := kt.Estimate(0, 20000)
	mc := NewMC(g, 5)
	for _, tgt := range targets {
		single := mc.Estimate(0, tgt, 20000)
		if all > single+0.02 {
			t.Errorf("P(all)=%.4f exceeds P(%d)=%.4f", all, tgt, single)
		}
	}
}

func TestKTerminalValidation(t *testing.T) {
	g := testGraph(t, 3, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	if _, err := NewKTerminal(g, 1, nil); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := NewKTerminal(g, 1, []uncertain.NodeID{99}); err == nil {
		t.Error("out-of-range target accepted")
	}
	kt, err := NewKTerminal(g, 1, []uncertain.NodeID{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(kt.Targets()) != 1 {
		t.Errorf("duplicates not removed: %v", kt.Targets())
	}
	if kt.Name() != "KTerminal(|T|=1)" {
		t.Errorf("name %q", kt.Name())
	}
	if kt.MemoryBytes() <= 0 {
		t.Error("no memory reported")
	}
	// Source in target set counts as reached.
	kt2, err := NewKTerminal(g, 1, []uncertain.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := kt2.Estimate(0, 100); got != 1 {
		t.Errorf("source-only target set: %v", got)
	}
}

func TestConditionTransform(t *testing.T) {
	g := testGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 0.5}, // id 0
		{From: 1, To: 2, P: 0.5}, // id 1
		{From: 0, To: 2, P: 0.5}, // id 2
	})
	// Condition on 0->1 present and 0->2 absent: R(0,2) = P(1->2) = 0.5.
	cg, err := uncertain.Condition(g, []uncertain.EdgeID{0}, []uncertain.EdgeID{2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Factoring(cg, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-0.5) > 1e-12 {
		t.Errorf("conditioned exact %.4f, want 0.5", want)
	}
	// Validation.
	if _, err := uncertain.Condition(g, []uncertain.EdgeID{99}, nil); err == nil {
		t.Error("out-of-range include accepted")
	}
	if _, err := uncertain.Condition(g, nil, []uncertain.EdgeID{-1}); err == nil {
		t.Error("negative exclude accepted")
	}
	if _, err := uncertain.Condition(g, []uncertain.EdgeID{0}, []uncertain.EdgeID{0}); err == nil {
		t.Error("contradictory condition accepted")
	}
}

func TestFindEdge(t *testing.T) {
	g := testGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 0.5},
		{From: 1, To: 2, P: 0.5},
	})
	if id := g.FindEdge(0, 1); id != 0 {
		t.Errorf("FindEdge(0,1) = %d", id)
	}
	if id := g.FindEdge(1, 0); id != -1 {
		t.Errorf("FindEdge(1,0) = %d, want -1", id)
	}
	if id := g.FindEdge(-1, 0); id != -1 {
		t.Errorf("FindEdge(-1,0) = %d, want -1", id)
	}
}
