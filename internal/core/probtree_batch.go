package core

import (
	"relcomp/internal/uncertain"
)

// Source-grouped ProbTree splicing. A batch of same-source queries repeats
// the s-side half of Algorithm 8 for every target: the leaf-to-root chain
// of s, its raw edges, and the contributions of its untouched children are
// identical across the group. QueryGraphAll expands that chain once and
// splices each target against the pre-collected s-side material, so a
// group of n targets pays one s-side expansion plus n cheap t-side walks
// instead of n full expansions (each of which scans every bag).

// ptSpan remembers where one child's contribution sits inside a
// pre-concatenated segment, so a target whose chain passes through that
// child can skip exactly its slice.
type ptSpan struct {
	start, end int
}

// ptSeg is one s-chain bag's pre-collected donation: its raw edges
// followed by the contributions of its children that are off the s-chain,
// in child order — exactly what QueryGraph's scan emits for the bag when
// the target's chain avoids it.
type ptSeg struct {
	bag   int
	edges []uncertain.Edge
}

// QueryGraphAll splices the query graph of (s, t) for every t in ts,
// expanding and collecting the s-side bag chain once for the whole group.
// Result i is exactly what Splice(s, ts[i]) returns — same renamed node
// ids, same edge order — so inner estimates over the group splice are
// bit-identical to per-query splicing. All result graphs are materialized
// at once; when the group is large and the spliced graphs are not small,
// prefer QueryGraphEach, which streams one splice at a time at O(1) graph
// memory.
func (q *ProbTreeQuerier) QueryGraphAll(s uncertain.NodeID, ts []uncertain.NodeID) []SplicedQuery {
	out := make([]SplicedQuery, len(ts))
	q.QueryGraphEach(s, ts, func(i int, sq SplicedQuery) {
		out[i] = sq
	})
	return out
}

// QueryGraphEach is the streaming form of QueryGraphAll: it performs the
// same once-per-group s-side expansion and calls fn(i, splice) for each
// target in order, without retaining the spliced graphs. Callers that
// consume each splice immediately (estimate and discard) keep peak memory
// at one spliced graph regardless of group size. fn must not call back
// into the querier's splice methods (it may estimate on the delivered
// graph, which is independent of the splice scratch).
//
// Per target the work is O(|t-chain| + spliced edges): the per-query
// path's full scan over every bag (and over every child of every expanded
// bag) is replaced by whole-segment copies of the pre-collected s-side
// material, with at most one span skipped via an O(1) lookup.
func (q *ProbTreeQuerier) QueryGraphEach(s uncertain.NodeID, ts []uncertain.NodeID, fn func(i int, sq SplicedQuery)) {
	ix := q.ix

	// Stamp and collect the s-side chain. Bag indices ascend along the
	// chain (every child precedes its parent, the root comes last), which
	// the per-target merge below relies on.
	q.stampRound++
	sStamp := q.stampRound
	chain := q.chainScratch[:0]
	for b := ix.bagOf[s]; b >= 0; b = int32(ix.bags[b].parent) {
		q.expandedStamp[b] = sStamp
		chain = append(chain, int(b))
	}
	if q.expandedStamp[ix.root] != sStamp { // s lives in the root bag
		q.expandedStamp[ix.root] = sStamp
		chain = append(chain, ix.root)
	}
	q.chainScratch = chain

	// Pre-concatenate each s-chain bag's donation. Exactly one child of
	// one s-chain bag can lie on any single target's chain — the topmost
	// t-only bag, child of the bag where the two chains meet — so per
	// target the segments are emitted whole except for at most one
	// skipped span, found through spanOf in O(1).
	segs := make([]ptSeg, len(chain))
	spanOf := make(map[int]ptSpanRef)
	for i, bag := range chain {
		bg := &ix.bags[bag]
		seg := ptSeg{bag: bag}
		seg.edges = append(seg.edges, bg.raw...)
		for _, c := range bg.children {
			if q.expandedStamp[c] == sStamp {
				continue
			}
			spanOf[c] = ptSpanRef{seg: i, span: ptSpan{
				start: len(seg.edges),
				end:   len(seg.edges) + len(ix.bags[c].contrib),
			}}
			seg.edges = append(seg.edges, ix.bags[c].contrib...)
		}
		segs[i] = seg
	}

	for i, t := range ts {
		if t == s {
			fn(i, SplicedQuery{Same: true})
			continue
		}
		fn(i, q.spliceAgainstChain(s, t, sStamp, segs, spanOf))
	}
}

// ptSpanRef locates one child's contribution span within the group's
// pre-collected segments.
type ptSpanRef struct {
	seg  int
	span ptSpan
}

// spliceAgainstChain splices one target against the pre-collected s-side
// segments, reproducing QueryGraph's bag-index edge order exactly.
func (q *ProbTreeQuerier) spliceAgainstChain(s, t uncertain.NodeID, sStamp int32, segs []ptSeg, spanOf map[int]ptSpanRef) SplicedQuery {
	ix := q.ix

	// Walk the target's chain up until the s-chain absorbs it. The bags
	// collected here are exactly the expanded bags QueryGraph would visit
	// beyond the s-chain, in ascending index order.
	q.stampRound++
	tStamp := q.stampRound
	tOnly := q.tChainScratch[:0]
	for b := ix.bagOf[t]; b >= 0 && q.expandedStamp[b] != sStamp; b = int32(ix.bags[b].parent) {
		q.expandedStamp[b] = tStamp
		tOnly = append(tOnly, int(b))
	}
	q.tChainScratch = tOnly

	// The only s-side span any target can knock out belongs to the
	// topmost t-only bag (its parent is where the chains meet).
	skipSeg, skip := -1, ptSpan{}
	if len(tOnly) > 0 {
		if ref, ok := spanOf[tOnly[len(tOnly)-1]]; ok {
			skipSeg, skip = ref.seg, ref.span
		}
	}

	// Merge the two ascending chains so bags donate edges in exactly the
	// index order QueryGraph's full scan produces.
	edges := q.edgeScratch[:0]
	si, ti := 0, 0
	for si < len(segs) || ti < len(tOnly) {
		if ti >= len(tOnly) || (si < len(segs) && segs[si].bag < tOnly[ti]) {
			seg := &segs[si]
			if si == skipSeg {
				// Skip the contribution of the child the target's chain
				// expands; its raw edges are donated when the merge
				// reaches it.
				edges = append(edges, seg.edges[:skip.start]...)
				edges = append(edges, seg.edges[skip.end:]...)
			} else {
				edges = append(edges, seg.edges...)
			}
			si++
		} else {
			bg := &ix.bags[tOnly[ti]]
			ti++
			edges = append(edges, bg.raw...)
			for _, c := range bg.children {
				if st := q.expandedStamp[c]; st != sStamp && st != tStamp {
					edges = append(edges, ix.bags[c].contrib...)
				}
			}
		}
	}
	q.edgeScratch = edges

	qg, qs, qt := q.buildSpliced(s, t, edges)
	return SplicedQuery{G: qg, S: qs, T: qt, OK: len(edges) > 0}
}
