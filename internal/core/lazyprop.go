package core

import (
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// LazyProp is the lazy propagation sampling estimator of Li et al. (SIGMOD
// 2017), Algorithm 6 of the paper. Instead of probing every frontier edge
// in every sample, each visited node keeps a min-heap of its out-neighbors
// keyed by the round (expansion count) at which the connecting edge next
// exists; the round gaps are geometric variates with the edge probability,
// so an edge with probability p is probed only ~p·K times across K samples
// instead of K times.
//
// The original paper re-schedules a just-probed neighbor at X' + c_v, which
// the comparison paper proves wrong (Example 1): every re-scheduled edge
// fires one round earlier than its geometric gap dictates, inflating the
// estimated reliability — the overestimation that dominates in practice
// and that Fig. 5 of the paper demonstrates. The corrected LP+ schedules
// at X' + c_v + 1. Both variants are provided: NewLazyProp builds LP+ and
// NewLazyPropOriginal builds the biased LP for reproducing Fig. 5.
type LazyProp struct {
	g         *uncertain.Graph
	rng       *rng.Source
	corrected bool

	init    []bool
	counter []int64     // c_v: number of completed expansions of v
	heaps   [][]lpEntry // per-node min-heap on round
	touched []uncertain.NodeID

	seen   *epochSet
	stack  []uncertain.NodeID
	repush []lpEntry
}

// lpEntry schedules out-neighbor slot (index into OutNeighbors(v)) to be
// probed at the given expansion round of v.
type lpEntry struct {
	round int64
	slot  int32
}

// NewLazyProp returns the corrected LP+ estimator.
func NewLazyProp(g *uncertain.Graph, seed uint64) *LazyProp {
	return newLazyProp(g, seed, true)
}

// NewLazyPropOriginal returns the original LP estimator with the
// scheduling bug of [30] left intact, for reproducing the bias shown in
// Fig. 5 of the paper. Do not use it for real queries.
func NewLazyPropOriginal(g *uncertain.Graph, seed uint64) *LazyProp {
	return newLazyProp(g, seed, false)
}

func newLazyProp(g *uncertain.Graph, seed uint64, corrected bool) *LazyProp {
	n := g.NumNodes()
	return &LazyProp{
		g:         g,
		rng:       rng.New(seed),
		corrected: corrected,
		init:      make([]bool, n),
		counter:   make([]int64, n),
		heaps:     make([][]lpEntry, n),
		seen:      newEpochSet(n),
	}
}

// Name implements Estimator.
func (l *LazyProp) Name() string {
	if l.corrected {
		return "LP+"
	}
	return "LP"
}

// Corrected reports whether this instance uses the fixed (LP+) scheduling.
func (l *LazyProp) Corrected() bool { return l.corrected }

// Reseed implements Seeder.
func (l *LazyProp) Reseed(seed uint64) { l.rng.Seed(seed) }

// Estimate implements Estimator.
func (l *LazyProp) Estimate(s, t uncertain.NodeID, k int) float64 {
	mustValidQuery(l.g, s, t, k)
	if s == t {
		return 1
	}
	// Node heaps and counters persist across the k samples of one call
	// (that is the whole point of the scheme) but must be fresh between
	// calls.
	l.resetSchedule()

	hits := 0
	for i := 0; i < k; i++ {
		if l.sampleOnce(s, t) {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// resetSchedule clears the persistent per-node schedules of the previous
// query, shared by Estimate's prologue and Sampler's open so the two
// entry points start sessions from provably identical state.
func (l *LazyProp) resetSchedule() {
	for _, v := range l.touched {
		l.init[v] = false
		l.counter[v] = 0
		l.heaps[v] = l.heaps[v][:0]
	}
	l.touched = l.touched[:0]
}

func (l *LazyProp) sampleOnce(s, t uncertain.NodeID) bool {
	g := l.g
	l.seen.nextRound()
	l.seen.visit(s)
	h := l.stack[:0]
	h = append(h, s)
	found := false
	for len(h) > 0 {
		v := h[len(h)-1]
		h = h[:len(h)-1]

		if !l.init[v] {
			l.initNode(v)
		}
		cv := l.counter[v]
		heap := l.heaps[v]
		tos := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		// Entries re-scheduled during this expansion are pushed only after
		// the drain finishes, exactly as in [30]: a re-drawn entry is not
		// re-examined within the same possible world. The drain fires every
		// entry that is due or overdue (round <= c_v). For LP+ both details
		// are no-ops — its re-scheduled rounds are always >= c_v+1, so
		// entries are popped exactly when their round comes up. For the
		// original LP they reproduce the bias of the paper's Example 1: an
		// X' >= 1 entry lands at c_v+X' instead of c_v+1+X' and fires one
		// round early (overestimation, the dominant error), and an X'=0
		// entry fires again at the very next expansion.
		repush := l.repush[:0]
		for len(heap) > 0 && heap[0].round <= cv {
			slot := heap[0].slot
			nbr := tos[slot]
			heapPop(&heap)
			// Re-schedule the neighbor: after X' further failures it
			// exists again. The corrected schedule counts from the NEXT
			// round (c_v + 1); the original counts from c_v, which is
			// the bug demonstrated in the paper's Example 1.
			x := int64(l.rng.Geometric(ps[slot]))
			base := cv
			if l.corrected {
				base = cv + 1
			}
			repush = append(repush, lpEntry{round: x + base, slot: slot})

			if !found && !l.seen.visited(nbr) {
				if nbr == t {
					found = true
					// Keep draining entries scheduled for this round so
					// the persistent schedule stays consistent, but stop
					// expanding new nodes.
					continue
				}
				l.seen.visit(nbr)
				h = append(h, nbr)
			}
		}
		for _, e := range repush {
			heapPush(&heap, e)
		}
		l.repush = repush
		l.heaps[v] = heap
		l.counter[v] = cv + 1
		if found {
			break
		}
	}
	l.stack = h
	return found
}

// initNode lazily creates v's schedule: every out-neighbor gets an initial
// geometric round.
func (l *LazyProp) initNode(v uncertain.NodeID) {
	ps := l.g.OutProbs(v)
	heap := l.heaps[v][:0]
	for slot, p := range ps {
		x := int64(l.rng.Geometric(p))
		heap = append(heap, lpEntry{round: x, slot: int32(slot)})
	}
	heapify(heap)
	l.heaps[v] = heap
	l.counter[v] = 0
	l.init[v] = true
	l.touched = append(l.touched, v)
}

// Sampler implements IncrementalEstimator. A session resets the persistent
// schedule once at open — exactly what Estimate does between calls — and
// each Advance continues drawing samples against the live heaps, so
// chunked advancement is bit-identical to one Estimate call with the
// summed budget (the schedule persisting across the samples of a call is
// the whole point of lazy propagation).
func (l *LazyProp) Sampler(s, t uncertain.NodeID) Sampler {
	mustValidQuery(l.g, s, t, 1)
	if s == t {
		return &trivialSampler{estimate: 1}
	}
	l.resetSchedule()
	return &lpSampler{l: l, s: s, t: t}
}

type lpSampler struct {
	l       *LazyProp
	s, t    uncertain.NodeID
	n, hits int
}

func (x *lpSampler) Advance(dk int) {
	checkAdvance(dk, x.n, 0)
	for i := 0; i < dk; i++ {
		if x.l.sampleOnce(x.s, x.t) {
			x.hits++
		}
	}
	x.n += dk
}

func (x *lpSampler) Snapshot() SampleSnapshot { return binomialSnapshot(x.hits, x.n, 0) }

var _ IncrementalEstimator = (*LazyProp)(nil)

// MemoryBytes implements MemoryReporter: LP adds a counter per node and a
// geometric-schedule heap per visited node's neighbors.
func (l *LazyProp) MemoryBytes() int64 {
	m := int64(len(l.init)) + int64(len(l.counter))*8
	for _, h := range l.heaps {
		m += int64(cap(h)) * 12
	}
	m += l.seen.bytes() + int64(cap(l.stack)+cap(l.touched))*4
	return m
}

// Minimal slice-backed binary min-heap on lpEntry.round. Inlined rather
// than using container/heap to keep the per-probe cost at a few
// nanoseconds.

func heapify(h []lpEntry) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func heapPush(h *[]lpEntry, e lpEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].round <= s[i].round {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func heapPop(h *[]lpEntry) lpEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	if len(s) > 1 {
		siftDown(s, 0)
	}
	return top
}

func siftDown(h []lpEntry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].round < h[smallest].round {
			smallest = l
		}
		if r < n && h[r].round < h[smallest].round {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
