// Package core implements the six s-t reliability estimators compared by
// the paper, behind one Estimator interface:
//
//   - MC            — Monte Carlo sampling with per-sample lazy BFS (Alg. 1)
//   - BFSSharing    — offline K-world bit-vector index + shared BFS with
//     cascading updates (Alg. 2–3)
//   - RHH           — recursive sampling of Jin et al. (Alg. 4)
//   - RSS           — recursive stratified sampling of Li et al. (Alg. 5)
//   - LazyProp      — lazy propagation sampling (Alg. 6), in both the
//     original (biased) LP form and the corrected LP+ form
//   - ProbTree      — FWD tree-decomposition index (Alg. 7–8) wrapping any
//     inner estimator
//
// All estimators are deterministic given their seed and are not safe for
// concurrent use; create one per goroutine. They share the read-only
// *uncertain.Graph.
package core

import (
	"fmt"

	"relcomp/internal/uncertain"
)

// Estimator estimates the s-t reliability of a fixed uncertain graph.
type Estimator interface {
	// Name returns the estimator's short name as used in the paper's
	// tables ("MC", "BFSSharing", "ProbTree", "LP+", "RHH", "RSS", ...).
	Name() string

	// Estimate returns an estimate of R(s,t) using a total budget of k
	// samples. It panics if s or t is out of range or k <= 0; use
	// CheckQuery for validated input.
	Estimate(s, t uncertain.NodeID, k int) float64
}

// MemoryReporter is implemented by estimators that can report the resident
// bytes of their online scratch state and (for index-based methods) their
// index, for the paper's memory-usage comparison (Fig. 12).
type MemoryReporter interface {
	MemoryBytes() int64
}

// Seeder is implemented by estimators whose random stream can be reset;
// the convergence harness reseeds between the T repetitions of Eq. 11.
type Seeder interface {
	Reseed(seed uint64)
}

// CheckQuery validates an s-t query against g.
func CheckQuery(g *uncertain.Graph, s, t uncertain.NodeID, k int) error {
	n := uncertain.NodeID(g.NumNodes())
	if s < 0 || s >= n {
		return fmt.Errorf("core: source %d out of range [0,%d)", s, n)
	}
	if t < 0 || t >= n {
		return fmt.Errorf("core: target %d out of range [0,%d)", t, n)
	}
	if k <= 0 {
		return fmt.Errorf("core: sample budget %d must be positive", k)
	}
	return nil
}

func mustValidQuery(g *uncertain.Graph, s, t uncertain.NodeID, k int) {
	if err := CheckQuery(g, s, t, k); err != nil {
		panic(err)
	}
}

// epochSet is a reusable visited-set over node ids: marking is O(1) and
// clearing between samples is a single counter increment, which matters
// when an estimate runs thousands of BFS rounds.
type epochSet struct {
	mark  []int32
	epoch int32
}

func newEpochSet(n int) *epochSet {
	return &epochSet{mark: make([]int32, n)}
}

// nextRound invalidates all marks.
func (e *epochSet) nextRound() {
	e.epoch++
	if e.epoch == 0 { // wrapped: do the O(n) clear once every 2^31 rounds
		for i := range e.mark {
			e.mark[i] = 0
		}
		e.epoch = 1
	}
}

func (e *epochSet) visit(v uncertain.NodeID) { e.mark[v] = e.epoch }

func (e *epochSet) visited(v uncertain.NodeID) bool { return e.mark[v] == e.epoch }

func (e *epochSet) bytes() int64 { return int64(len(e.mark)) * 4 }
