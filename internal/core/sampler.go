package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"relcomp/internal/uncertain"
)

// This file defines the anytime estimation contract layered over the
// fixed-K Estimator interface: a Sampler is an open estimation session for
// one (s, t) query that accumulates samples incrementally, and
// AdaptiveEstimate is the sequential stopping layer that advances a
// sampler in growing chunks until an accuracy target, the paper's
// dispersion criterion, a deadline, or the sample budget ends the run.
//
// The sampling estimators advance bit-identically to their one-shot
// Estimate: Advance(a); Advance(b) accumulates exactly the state
// Estimate(s, t, a+b) would compute, because their sample streams are
// either sequential (MC, LP+) or counter-based per world (PackMC, BFS
// Sharing's pre-sampled index). The recursive estimators (RHH, RSS)
// cannot accumulate — their per-sample allocation depends on the total
// budget — so they satisfy the contract through a restart adapter that
// re-runs the full estimate at each grown budget; driven by
// AdaptiveEstimate's geometric chunk schedule, the total restart work
// stays within a constant factor of the final budget.

// SampleSnapshot is the running state of a Sampler.
type SampleSnapshot struct {
	// Estimate is the running reliability estimate over the N samples
	// drawn so far (0 when N == 0).
	Estimate float64
	// N is the number of samples consumed so far.
	N int
	// HalfWidth is a 95% confidence-interval half-width for Estimate,
	// computed from the Agresti–Coull adjusted proportion so it is
	// positive (and shrinking) even while the running estimate sits at
	// exactly 0 or 1. For the recursive estimators it is the MC binomial
	// half-width, a conservative bound (their variance is provably lower).
	HalfWidth float64
	// Variance estimates Var(Estimate), the variance of the running mean
	// — the quantity the paper's dispersion criterion ρ = V/R divides by
	// the reliability.
	Variance float64
	// Cap bounds the total samples the sampler can ever draw (the index
	// width for BFS Sharing); 0 means unbounded.
	Cap int
}

// Sampler is an incremental estimation session for one (s, t) query.
// Samplers borrow their estimator's scratch state and random stream, so at
// most one sampler per estimator instance may be open at a time, and the
// estimator must not be used directly while the session is open.
type Sampler interface {
	// Advance draws dk further samples, accumulating hit and variance
	// state. It panics if dk is negative or exceeds the sampler's Cap.
	Advance(dk int)
	// Snapshot returns the running estimate, sample count, and confidence
	// half-width. It does not draw samples.
	Snapshot() SampleSnapshot
}

// IncrementalEstimator is implemented by estimators that can open an
// incremental sampling session. Every estimator in the package satisfies
// it: the sampling methods advance natively and bit-identically to their
// one-shot Estimate; RHH and RSS adapt via restart-doubling.
type IncrementalEstimator interface {
	Estimator
	Sampler(s, t uncertain.NodeID) Sampler
}

// NewSampler opens an incremental session for (s, t) on est: the
// estimator's native sampler when it implements IncrementalEstimator, a
// restart-doubling adapter otherwise. A fresh session advanced once by k
// returns exactly what est.Estimate(s, t, k) would from the same state.
func NewSampler(est Estimator, s, t uncertain.NodeID) Sampler {
	if ie, ok := est.(IncrementalEstimator); ok {
		return ie.Sampler(s, t)
	}
	return newRestartSampler(est, s, t)
}

// normalZ is the two-sided 95% normal quantile used for HalfWidth.
const normalZ = 1.959963984540054

// binomialSnapshot builds the snapshot shared by the Bernoulli-mean
// samplers: estimate hits/n, Agresti–Coull half-width, binomial variance
// of the mean.
func binomialSnapshot(hits, n, capN int) SampleSnapshot {
	snap := SampleSnapshot{N: n, Cap: capN}
	if n == 0 {
		snap.HalfWidth = 1
		return snap
	}
	p := float64(hits) / float64(n)
	snap.Estimate = p
	// Agresti–Coull: add z²/2 pseudo-successes and failures so the width
	// is informative at p ∈ {0, 1} and converges to the Wald width.
	nAdj := float64(n) + normalZ*normalZ
	pAdj := (float64(hits) + normalZ*normalZ/2) / nAdj
	snap.HalfWidth = normalZ * math.Sqrt(pAdj*(1-pAdj)/nAdj)
	snap.Variance = p * (1 - p) / float64(n)
	return snap
}

// estimateSnapshot is binomialSnapshot for samplers that track a running
// estimate rather than a hit count (the restart adapter).
func estimateSnapshot(estimate float64, n, capN int) SampleSnapshot {
	snap := binomialSnapshot(int(estimate*float64(n)+0.5), n, capN)
	snap.Estimate = estimate // keep the exact value, not the rounded ratio
	return snap
}

// trivialSampler serves the degenerate queries (s == t, provably
// disconnected splices) whose answer needs no samples: the estimate is
// fixed and the half-width zero, so any stopping rule fires immediately.
type trivialSampler struct {
	estimate float64
	n        int
}

func (t *trivialSampler) Advance(dk int) {
	checkAdvance(dk, t.n, 0)
	t.n += dk
}

func (t *trivialSampler) Snapshot() SampleSnapshot {
	return SampleSnapshot{Estimate: t.estimate, N: t.n}
}

// checkAdvance validates an Advance request against the samples drawn so
// far and the sampler's cap (0 = unbounded).
func checkAdvance(dk, n, capN int) {
	if dk < 0 {
		panic(fmt.Sprintf("core: Advance(%d) with negative chunk", dk))
	}
	if capN > 0 && n+dk > capN {
		panic(fmt.Sprintf("core: Advance(%d) past sampler cap %d (have %d)", dk, capN, n))
	}
}

// restartSampler adapts a fixed-K estimator to the Sampler contract by
// re-running the full estimate at each accumulated budget. The underlying
// random stream advances naturally across restarts, so successive runs are
// independent and the whole session is deterministic given the estimator's
// seed; a fresh session advanced once by k is exactly one Estimate(s,t,k)
// call. Driven by a geometric (doubling) chunk schedule the total work is
// at most a constant factor of one full-budget run.
type restartSampler struct {
	est      Estimator
	s, t     uncertain.NodeID
	n        int
	estimate float64
	capN     int
}

func newRestartSampler(est Estimator, s, t uncertain.NodeID) Sampler {
	return &restartSampler{est: est, s: s, t: t}
}

// newRestartSamplerCap is newRestartSampler with a total-sample cap.
func newRestartSamplerCap(est Estimator, s, t uncertain.NodeID, capN int) Sampler {
	return &restartSampler{est: est, s: s, t: t, capN: capN}
}

func (r *restartSampler) Advance(dk int) {
	checkAdvance(dk, r.n, r.capN)
	if dk == 0 {
		return
	}
	r.n += dk
	r.estimate = r.est.Estimate(r.s, r.t, r.n)
}

func (r *restartSampler) Snapshot() SampleSnapshot {
	return estimateSnapshot(r.estimate, r.n, r.capN)
}

// StopReason reports which rule terminated an adaptive estimate.
type StopReason string

const (
	// StopEps: the relative confidence half-width reached the ε target.
	StopEps StopReason = "eps"
	// StopRho: the paper's dispersion criterion ρ = V/R dropped below the
	// configured threshold (§3.1.4, Eq. 11–13).
	StopRho StopReason = "rho"
	// StopDeadline: the wall-clock deadline expired.
	StopDeadline StopReason = "deadline"
	// StopMaxK: the sample budget (or the sampler's cap) was exhausted.
	StopMaxK StopReason = "max_k"
	// StopCanceled: the context was canceled.
	StopCanceled StopReason = "canceled"
	// StopSeparated: a top-k query's ranking converged — the k-th and
	// (k+1)-th candidates' confidence intervals no longer overlap, so more
	// samples cannot change the answer set (see AdaptiveTopK).
	StopSeparated StopReason = "separated"
	// StopDegraded: the serving layer answered below the requested
	// fidelity under overload — at the floor of the degradation ladder the
	// answer is the analytic-bounds midpoint with no sampling at all. The
	// core stopping rules never emit this reason; it exists here so the
	// vocabulary of termination reports stays in one place.
	StopDegraded StopReason = "degraded"
)

// AdaptiveOptions configures AdaptiveEstimate.
type AdaptiveOptions struct {
	// Eps is the target relative half-width: sampling stops once
	// HalfWidth <= Eps·Estimate (or <= Eps·AbsFloor for estimates near
	// zero, so provably-unreachable pairs terminate too). <= 0 disables
	// the accuracy rule.
	Eps float64
	// AbsFloor is the estimate floor for the relative-ε comparison;
	// <= 0 means 0.01.
	AbsFloor float64
	// Rho stops sampling when Variance/Estimate < Rho, the paper's
	// per-query analogue of the workload dispersion criterion. <= 0
	// disables the rule.
	Rho float64
	// MaxK is the hard sample budget; it must be positive. The sampler's
	// own Cap further bounds it.
	MaxK int
	// MinK is the number of samples drawn before the ε and ρ rules
	// engage, guarding against lucky early streaks; <= 0 means 128.
	MinK int
	// Chunk is the first chunk size; <= 0 means 256. When Prior is set
	// the chunk may start larger (see Prior).
	Chunk int
	// Growth is the geometric chunk growth factor; values <= 1 mean 2.
	Growth float64
	// Prior, when in (0, 1), is an a-priori reliability estimate (e.g.
	// the midpoint of the analytic bounds). With Eps it predicts the
	// sample count the accuracy target will need and fast-forwards the
	// chunk schedule there, skipping convergence checks that cannot
	// succeed yet.
	Prior float64
	// Deadline, when non-zero, bounds the wall clock: no new chunk starts
	// after it, and chunk sizes are trimmed to the projected remaining
	// time once a per-sample cost estimate exists.
	Deadline time.Time
	// Ctx, when non-nil, cancels the run between chunks.
	Ctx context.Context
}

// AdaptiveResult reports an adaptive estimate and its termination.
type AdaptiveResult struct {
	Estimate  float64
	Samples   int        // samples actually drawn
	HalfWidth float64    // achieved 95% half-width
	Reason    StopReason // rule that ended the run
}

// epsSatisfied reports whether snap meets the relative half-width target.
func epsSatisfied(snap SampleSnapshot, eps, absFloor float64) bool {
	return snap.HalfWidth <= eps*math.Max(snap.Estimate, absFloor)
}

// rhoSatisfied reports whether snap meets the dispersion criterion.
func rhoSatisfied(snap SampleSnapshot, rho float64) bool {
	if snap.Estimate <= 0 {
		// The paper guards ρ = V/R at R = 0: zero reliability with zero
		// variance counts as converged.
		return snap.Variance == 0
	}
	return snap.Variance/snap.Estimate < rho
}

// priorChunk predicts from a prior reliability p the sample count at which
// the relative-ε rule can first fire (solving z·sqrt(p(1-p)/n) = ε·p) and
// returns it as a starting chunk, so the schedule does not crawl through
// doomed convergence checks.
func priorChunk(p, eps float64) int {
	if eps <= 0 || p <= 0 || p >= 1 {
		return 0
	}
	n := normalZ * normalZ * (1 - p) / (eps * eps * p)
	if n > 1<<30 {
		return 1 << 30
	}
	return int(n)
}

// AdaptiveEstimate advances sp in geometrically growing chunks until the
// relative half-width reaches opts.Eps, the dispersion criterion fires,
// the deadline expires, the context is canceled, or the sample budget
// opts.MaxK (or the sampler's cap) is exhausted — whichever happens first.
//
// With every stopping rule disabled (Eps <= 0, Rho <= 0, no deadline, no
// context) the full budget is drawn in a single Advance, so the result is
// bit-identical to the fixed-K path for every sampler — including the
// restart adapter, which then runs exactly one full-budget estimate.
func AdaptiveEstimate(sp Sampler, opts AdaptiveOptions) AdaptiveResult {
	if opts.MaxK <= 0 {
		panic(fmt.Sprintf("core: AdaptiveEstimate budget %d must be positive", opts.MaxK))
	}
	maxK := opts.MaxK
	snap := sp.Snapshot()
	if snap.Cap > 0 && snap.Cap < maxK {
		maxK = snap.Cap
	}
	finish := func(reason StopReason) AdaptiveResult {
		snap = sp.Snapshot()
		return AdaptiveResult{
			Estimate:  snap.Estimate,
			Samples:   snap.N,
			HalfWidth: snap.HalfWidth,
			Reason:    reason,
		}
	}
	hasDeadline := !opts.Deadline.IsZero()
	if opts.Eps <= 0 && opts.Rho <= 0 && !hasDeadline && opts.Ctx == nil {
		// No stopping rule: one full-budget draw, the fixed-K fast path.
		sp.Advance(maxK - snap.N)
		return finish(StopMaxK)
	}

	absFloor := opts.AbsFloor
	if absFloor <= 0 {
		absFloor = 0.01
	}
	minK := opts.MinK
	if minK <= 0 {
		minK = 128
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = 256
	}
	if pc := priorChunk(opts.Prior, opts.Eps); pc > chunk {
		chunk = pc
	}
	growth := opts.Growth
	if growth <= 1 {
		growth = 2
	}

	//lint:allow detrand deadline pacing: Deadline stopping is documented wall-clock-dependent and its results are never cached
	start := time.Now()
	for {
		snap = sp.Snapshot()
		// MinK guards against lucky early streaks, but a zero half-width
		// is exact (trivial sessions: s == t, provably disconnected
		// splices) — no amount of further sampling can change it, so the
		// rules engage immediately and no phantom samples are drawn.
		if snap.N >= minK || snap.HalfWidth == 0 {
			if opts.Eps > 0 && epsSatisfied(snap, opts.Eps, absFloor) {
				return finish(StopEps)
			}
			if opts.Rho > 0 && rhoSatisfied(snap, opts.Rho) {
				return finish(StopRho)
			}
		}
		if snap.N >= maxK {
			return finish(StopMaxK)
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return finish(StopCanceled)
		}
		dk := chunk
		if dk > maxK-snap.N {
			dk = maxK - snap.N
		}
		if hasDeadline {
			remaining := time.Until(opts.Deadline) //lint:allow detrand deadline stopping is documented wall-clock-dependent
			if remaining <= 0 {
				return finish(StopDeadline)
			}
			// Trim the chunk to the samples the remaining time should
			// afford, once elapsed work gives a per-sample cost estimate.
			//lint:allow detrand deadline chunk trimming is documented wall-clock-dependent
			if elapsed := time.Since(start); elapsed > 0 && snap.N > 0 {
				perSample := elapsed / time.Duration(snap.N)
				if perSample > 0 {
					if affordable := int(remaining / perSample); affordable < dk {
						dk = affordable
					}
				}
			}
			if dk < 1 {
				dk = 1
			}
		}
		sp.Advance(dk)
		chunk = growChunk(chunk, growth)
	}
}

// growChunk applies the geometric schedule with an overflow-safe ceiling.
func growChunk(chunk int, growth float64) int {
	const maxChunk = 1 << 30
	next := float64(chunk) * growth
	if next > maxChunk {
		return maxChunk
	}
	return int(next)
}

// MultiSampler is an incremental estimation session answering every target
// of one source at once — the anytime form of SourceEstimator, implemented
// by the estimators whose one traversal computes all targets (BFS
// Sharing's queriers, PackMC). Advance extends the shared traversal; the
// per-target snapshots all share the same sample count.
type MultiSampler interface {
	// Advance draws dk further samples for every target.
	Advance(dk int)
	// N returns the samples drawn so far.
	N() int
	// Cap bounds the total samples (0 = unbounded).
	Cap() int
	// SnapshotOf returns the running state for one target.
	SnapshotOf(t uncertain.NodeID) SampleSnapshot
}

// SourceSampler is implemented by estimators that can open a MultiSampler.
type SourceSampler interface {
	SourceEstimator
	AllSampler(s uncertain.NodeID) MultiSampler
}

// AdaptiveEstimateAll is the lockstep batch form of AdaptiveEstimate: it
// advances ms chunk by chunk and retires each target as its own stopping
// rule fires, ending the shared traversal as soon as every target is
// retired (or the budget, deadline, or context ends it for all). A retired
// target's estimate and sample count are frozen at retirement. The result
// slice is aligned with targets.
//
// With every stopping rule disabled the whole group is drawn in a single
// Advance, bit-identical to one EstimateAll call at the full budget.
func AdaptiveEstimateAll(ms MultiSampler, targets []uncertain.NodeID, opts AdaptiveOptions) []AdaptiveResult {
	if opts.MaxK <= 0 {
		panic(fmt.Sprintf("core: AdaptiveEstimateAll budget %d must be positive", opts.MaxK))
	}
	maxK := opts.MaxK
	if c := ms.Cap(); c > 0 && c < maxK {
		maxK = c
	}
	results := make([]AdaptiveResult, len(targets))
	retired := make([]bool, len(targets))
	retire := func(i int, reason StopReason) {
		snap := ms.SnapshotOf(targets[i])
		results[i] = AdaptiveResult{
			Estimate:  snap.Estimate,
			Samples:   snap.N,
			HalfWidth: snap.HalfWidth,
			Reason:    reason,
		}
		retired[i] = true
	}
	retireAll := func(reason StopReason) []AdaptiveResult {
		for i := range targets {
			if !retired[i] {
				retire(i, reason)
			}
		}
		return results
	}
	hasDeadline := !opts.Deadline.IsZero()
	if opts.Eps <= 0 && opts.Rho <= 0 && !hasDeadline && opts.Ctx == nil {
		ms.Advance(maxK - ms.N())
		return retireAll(StopMaxK)
	}

	absFloor := opts.AbsFloor
	if absFloor <= 0 {
		absFloor = 0.01
	}
	minK := opts.MinK
	if minK <= 0 {
		minK = 128
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = 256
	}
	if pc := priorChunk(opts.Prior, opts.Eps); pc > chunk {
		chunk = pc
	}
	growth := opts.Growth
	if growth <= 1 {
		growth = 2
	}

	//lint:allow detrand deadline pacing: Deadline stopping is documented wall-clock-dependent and its results are never cached
	start := time.Now()
	live := len(targets)
	for {
		engaged := ms.N() >= minK
		for i := range targets {
			if retired[i] {
				continue
			}
			snap := ms.SnapshotOf(targets[i])
			// As in AdaptiveEstimate, a zero half-width is exact and
			// bypasses the MinK guard (e.g. a target equal to the source).
			if !engaged && snap.HalfWidth != 0 {
				continue
			}
			switch {
			case opts.Eps > 0 && epsSatisfied(snap, opts.Eps, absFloor):
				retire(i, StopEps)
				live--
			case opts.Rho > 0 && rhoSatisfied(snap, opts.Rho):
				retire(i, StopRho)
				live--
			}
		}
		if live == 0 {
			return results
		}
		n := ms.N()
		if n >= maxK {
			return retireAll(StopMaxK)
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return retireAll(StopCanceled)
		}
		dk := chunk
		if dk > maxK-n {
			dk = maxK - n
		}
		if hasDeadline {
			remaining := time.Until(opts.Deadline) //lint:allow detrand deadline stopping is documented wall-clock-dependent
			if remaining <= 0 {
				return retireAll(StopDeadline)
			}
			//lint:allow detrand deadline chunk trimming is documented wall-clock-dependent
			if elapsed := time.Since(start); elapsed > 0 && n > 0 {
				perSample := elapsed / time.Duration(n)
				if perSample > 0 {
					if affordable := int(remaining / perSample); affordable < dk {
						dk = affordable
					}
				}
			}
			if dk < 1 {
				dk = 1
			}
		}
		ms.Advance(dk)
		chunk = growChunk(chunk, growth)
	}
}
