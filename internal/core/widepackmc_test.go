package core

import (
	"fmt"
	"math/bits"
	"testing"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// wideTestGraph builds a random graph with edge probabilities in
// [pLo, pHi) — the width-identity tests sweep probability regimes because
// the rng draw path branches on them (sparse skips vs bit-sliced loop).
func wideTestGraph(n, m int, pLo, pHi float64, seed uint64) *uncertain.Graph {
	r := rng.New(seed)
	b := uncertain.NewBuilder(n)
	for i := 0; i < m; i++ {
		from := uncertain.NodeID(r.Intn(n))
		to := uncertain.NodeID(r.Intn(n))
		if from == to {
			continue
		}
		b.MustAddEdge(from, to, pLo+(pHi-pLo)*r.Float64())
	}
	return b.Build()
}

var wideRegimes = []struct {
	name       string
	pLo, pHi   float64
	n, m       int
	seed       uint64
	graphLanes int
}{
	{name: "sparse", pLo: 0.02, pHi: 0.1, n: 300, m: 1800, seed: 3},
	{name: "mid", pLo: 0.2, pHi: 0.6, n: 200, m: 1200, seed: 5},
	{name: "dense", pLo: 0.7, pHi: 0.98, n: 120, m: 900, seed: 9},
}

// TestWidePackMCEstimateBitIdentical is the tentpole acceptance check:
// WidePackMC at 256 and 512 lanes returns bit-identical estimates to
// PackMC for the same (seed, round) state, across probability regimes and
// k values that exercise every partial-final-pack shape.
func TestWidePackMCEstimateBitIdentical(t *testing.T) {
	ks := []int{1, 2, 63, 64, 65, 127, 128, 129, 250, 255, 256, 257, 300, 511, 512, 513, 700}
	for _, reg := range wideRegimes {
		g := wideTestGraph(reg.n, reg.m, reg.pLo, reg.pHi, reg.seed)
		for _, lanes := range []int{256, 512} {
			t.Run(fmt.Sprintf("%s/lanes=%d", reg.name, lanes), func(t *testing.T) {
				narrow := NewPackMC(g, 42)
				wide := NewWidePackMC(g, 42, lanes)
				s, tgt := uncertain.NodeID(0), uncertain.NodeID(g.NumNodes()-1)
				for _, k := range ks {
					// Matched round sequence: both instances advance one
					// round per call.
					want := narrow.Estimate(s, tgt, k)
					got := wide.Estimate(s, tgt, k)
					if got != want {
						t.Fatalf("k=%d: wide %v != narrow %v", k, got, want)
					}
				}
			})
		}
	}
}

// TestWidePackMCEstimateAllBitIdentical checks the batch-engine surface:
// one wide multi-target sweep equals PackMC's, node for node.
func TestWidePackMCEstimateAllBitIdentical(t *testing.T) {
	for _, reg := range wideRegimes {
		g := wideTestGraph(reg.n, reg.m, reg.pLo, reg.pHi, reg.seed)
		for _, lanes := range []int{256, 512} {
			t.Run(fmt.Sprintf("%s/lanes=%d", reg.name, lanes), func(t *testing.T) {
				narrow := NewPackMC(g, 77)
				wide := NewWidePackMC(g, 77, lanes)
				for _, k := range []int{1, 64, 129, 256, 300, 512, 600} {
					want := narrow.EstimateAll(0, k)
					got := wide.EstimateAll(0, k)
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("k=%d node %d: wide %v != narrow %v", k, v, got[v], want[v])
						}
					}
				}
			})
		}
	}
}

// TestWidePackMCSamplerChunking checks the anytime surface: any Advance
// chunking of a wide sampler lands on the same estimate as one-shot
// PackMC at the summed budget — lane outcomes are counter-based, so chunk
// boundaries are invisible at every width.
func TestWidePackMCSamplerChunking(t *testing.T) {
	g := wideTestGraph(200, 1200, 0.2, 0.6, 5)
	chunkings := [][]int{
		{700},
		{1, 63, 64, 65, 507},
		{256, 256, 188},
		{512, 188},
		{100, 100, 100, 100, 100, 100, 100},
	}
	for _, lanes := range []int{256, 512} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			ref := NewPackMC(g, 13)
			want := ref.Estimate(0, uncertain.NodeID(g.NumNodes()-1), 700)
			for _, chunks := range chunkings {
				wide := NewWidePackMC(g, 13, lanes)
				sm := wide.Sampler(0, uncertain.NodeID(g.NumNodes()-1))
				for _, dk := range chunks {
					sm.Advance(dk)
				}
				snap := sm.Snapshot()
				if snap.N != 700 || snap.Estimate != want {
					t.Fatalf("chunks %v: got %v (n=%d), want %v", chunks, snap.Estimate, snap.N, want)
				}
			}
		})
	}
}

// TestWidePackMCAllSamplerBitIdentical checks the anytime multi-target
// surface against EstimateAll at the summed budget.
func TestWidePackMCAllSamplerBitIdentical(t *testing.T) {
	g := wideTestGraph(200, 1200, 0.2, 0.6, 5)
	for _, lanes := range []int{256, 512} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			ref := NewPackMC(g, 21)
			want := ref.EstimateAll(0, 600)
			wide := NewWidePackMC(g, 21, lanes)
			ms := wide.AllSampler(0)
			for _, dk := range []int{1, 63, 192, 344} {
				ms.Advance(dk)
			}
			if ms.N() != 600 {
				t.Fatalf("N = %d, want 600", ms.N())
			}
			for v := range want {
				if got := ms.SnapshotOf(uncertain.NodeID(v)).Estimate; got != want[v] {
					t.Fatalf("node %d: %v != %v", v, got, want[v])
				}
			}
		})
	}
}

// TestParallelPackMCLanesBitIdentical checks sharding: a parallel wide
// estimator equals sequential PackMC for any worker count, including
// shard boundaries that split a wide pack mid-group.
func TestParallelPackMCLanesBitIdentical(t *testing.T) {
	g := wideTestGraph(200, 1200, 0.2, 0.6, 5)
	s, tgt := uncertain.NodeID(0), uncertain.NodeID(g.NumNodes()-1)
	for _, lanes := range []int{64, 256, 512} {
		for _, workers := range []int{1, 3, 7} {
			t.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(t *testing.T) {
				ref := NewPackMC(g, 99)
				par := NewParallelPackMCLanes(g, 99, workers, lanes)
				for _, k := range []int{65, 257, 700} {
					want := ref.Estimate(s, tgt, k)
					if got := par.Estimate(s, tgt, k); got != want {
						t.Fatalf("k=%d: parallel %v != sequential %v", k, got, want)
					}
				}
				// Anytime path, with chunks unaligned to both pack widths.
				ref2 := NewPackMC(g, 99)
				want := ref2.Estimate(s, tgt, 700)
				par2 := NewParallelPackMCLanes(g, 99, workers, lanes)
				sm := par2.Sampler(s, tgt)
				for _, dk := range []int{37, 300, 363} {
					sm.Advance(dk)
				}
				if got := sm.Snapshot().Estimate; got != want {
					t.Fatalf("sampler: parallel %v != sequential %v", got, want)
				}
			})
		}
	}
}

// TestWidePackMCDenseSwitchBitIdentical forces the frontier-density
// switch both ways — always-pull (threshold 1) and never-pull (0) — and
// checks the values never move: the dense pull sweeps compute the same
// per-lane reachability fixpoint as the push cascade.
func TestWidePackMCDenseSwitchBitIdentical(t *testing.T) {
	for _, reg := range wideRegimes {
		g := wideTestGraph(reg.n, reg.m, reg.pLo, reg.pHi, reg.seed)
		s, tgt := uncertain.NodeID(0), uncertain.NodeID(g.NumNodes()-1)
		for _, lanes := range []int{256, 512} {
			t.Run(fmt.Sprintf("%s/lanes=%d", reg.name, lanes), func(t *testing.T) {
				narrow := NewPackMC(g, 8)
				push := NewWidePackMC(g, 8, lanes)
				push.denseThreshold = 0 // never switch
				pull := NewWidePackMC(g, 8, lanes)
				pull.denseThreshold = 1 // switch as soon as the worklist backs up
				for _, k := range []int{129, 512} {
					want := narrow.Estimate(s, tgt, k)
					if got := push.Estimate(s, tgt, k); got != want {
						t.Fatalf("push-only k=%d: %v != %v", k, got, want)
					}
					if got := pull.Estimate(s, tgt, k); got != want {
						t.Fatalf("pull-forced k=%d: %v != %v", k, got, want)
					}
				}
				// EstimateAll under forced pull: the multi-target fixpoint and
				// touched bookkeeping must survive the mode switch too.
				wantAll := narrow.EstimateAll(s, 300)
				pushAll := push.EstimateAll(s, 300)
				pullAll := pull.EstimateAll(s, 300)
				for v := range wantAll {
					if pushAll[v] != wantAll[v] || pullAll[v] != wantAll[v] {
						t.Fatalf("EstimateAll node %d: push %v pull %v want %v",
							v, pushAll[v], pullAll[v], wantAll[v])
					}
				}
			})
		}
	}
}

// TestWidePackMCTrivial covers the s==t shortcut and constructor
// validation.
func TestWidePackMCTrivial(t *testing.T) {
	g := wideTestGraph(50, 200, 0.2, 0.6, 5)
	wide := NewWidePackMC(g, 1, 256)
	if got := wide.Estimate(3, 3, 100); got != 1 {
		t.Fatalf("s==t estimate = %v, want 1", got)
	}
	if wide.Name() != "PackMC256" || wide.Lanes() != 256 {
		t.Fatalf("Name/Lanes = %q/%d", wide.Name(), wide.Lanes())
	}
	if NewWidePackMC(g, 1, 512).Name() != "PackMC512" {
		t.Fatalf("512-lane name wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("NewWidePackMC(128) did not panic")
		}
	}()
	NewWidePackMC(g, 1, 128)
}

// TestWidePackMCReseedReplays checks Seeder semantics: after Reseed the
// next query replays the first query's worlds, like PackMC.
func TestWidePackMCReseedReplays(t *testing.T) {
	g := wideTestGraph(200, 1200, 0.2, 0.6, 5)
	wide := NewWidePackMC(g, 4, 256)
	first := wide.Estimate(0, 19, 320)
	if again := wide.Estimate(0, 19, 320); again == first {
		// Not impossible, but successive rounds drawing the same estimate on
		// this graph would be a (tolerated) coincidence; the real assertion
		// is below.
		t.Logf("successive rounds coincided: %v", again)
	}
	wide.Reseed(4)
	if got := wide.Estimate(0, 19, 320); got != first {
		t.Fatalf("post-Reseed estimate %v != first %v", got, first)
	}
}

// TestActiveLanesExhaustive sweeps every (j, k) shape up to several wide
// packs: the final partial pack must expose exactly the worlds below k at
// every width, including k=0 and k=1.
func TestActiveLanesExhaustive(t *testing.T) {
	const maxK = 1100 // > 2 wide packs at 512 lanes
	for k := 0; k <= maxK; k++ {
		total := 0
		for j := 0; j <= maxK/64+2; j++ {
			m := activeLanes(j, k)
			for lane := 0; lane < 64; lane++ {
				world := j*64 + lane
				want := world < k
				if got := m>>uint(lane)&1 == 1; got != want {
					t.Fatalf("activeLanes(%d, %d) lane %d = %v, want %v", j, k, lane, got, want)
				}
			}
			total += bits.OnesCount64(m)
		}
		if total != k {
			t.Fatalf("activeLanes masks for k=%d cover %d worlds", k, total)
		}
	}
}

// TestLaneMaskExhaustive sweeps lane ranges over pack boundaries at every
// width-relevant offset: the per-pack masks must partition [lo, hi).
func TestLaneMaskExhaustive(t *testing.T) {
	bounds := []int{0, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 575, 1100}
	for _, lo := range bounds {
		for _, hi := range bounds {
			if hi < lo {
				continue
			}
			total := 0
			for j := 0; j*64 < hi+128; j++ {
				m := laneMask(j, lo, hi)
				for lane := 0; lane < 64; lane++ {
					world := j*64 + lane
					want := world >= lo && world < hi
					if got := m>>uint(lane)&1 == 1; got != want {
						t.Fatalf("laneMask(%d, %d, %d) lane %d = %v, want %v", j, lo, hi, lane, got, want)
					}
				}
				total += bits.OnesCount64(m)
			}
			if total != hi-lo {
				t.Fatalf("laneMask masks for [%d, %d) cover %d worlds", lo, hi, total)
			}
		}
	}
}

// TestMemoryBytesWide sanity-checks the arithmetic reporters against the
// graph size.
func TestMemoryBytesWide(t *testing.T) {
	g := wideTestGraph(200, 1200, 0.2, 0.6, 5)
	wide := NewWidePackMC(g, 1, 512)
	min := int64(g.NumNodes()*8*16 + g.NumEdges()*8*16)
	if got := wide.MemoryBytes(); got < min {
		t.Fatalf("MemoryBytes %d below word-group floor %d", got, min)
	}
	par := NewParallelPackMCLanes(g, 1, 4, 256)
	if got := par.MemoryBytes(); got < 4*int64(g.NumNodes()*4*16) {
		t.Fatalf("parallel MemoryBytes %d too small", got)
	}
}
