package core

import (
	"math"
	"sort"
	"testing"

	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// --- ParallelMC ---

func TestParallelMCMatchesExact(t *testing.T) {
	r := rng.New(91)
	g := randomTestGraph(r, 10, 24)
	want, err := exact.Factoring(g, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		p := NewParallelMC(g, 5, workers)
		got := p.Estimate(0, 9, 40000)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("workers=%d: %.4f, exact %.4f", workers, got, want)
		}
	}
}

func TestParallelMCEdgeCases(t *testing.T) {
	g := testGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	p := NewParallelMC(g, 1, 4)
	if p.Name() != "ParallelMC" {
		t.Errorf("name %q", p.Name())
	}
	if got := p.Estimate(1, 1, 10); got != 1 {
		t.Errorf("R(1,1) = %v", got)
	}
	// More workers than samples.
	if got := p.Estimate(0, 1, 2); got < 0 || got > 1 {
		t.Errorf("tiny budget estimate %v", got)
	}
	if p.MemoryBytes() <= 0 {
		t.Error("no memory reported")
	}
	p.Reseed(7)
	a := p.Estimate(0, 1, 1000)
	p.Reseed(7)
	b := p.Estimate(0, 1, 1000)
	if a != b {
		t.Errorf("reseeded parallel estimates differ: %v vs %v", a, b)
	}
}

// --- Single-source / top-k ---

func TestEstimateAllMatchesPerPair(t *testing.T) {
	r := rng.New(93)
	g := randomTestGraph(r, 10, 25)
	const k = 60000
	bs := NewBFSSharing(g, 3, k)
	all := bs.EstimateAll(0, k)
	if len(all) != g.NumNodes() {
		t.Fatalf("got %d values", len(all))
	}
	if all[0] != 1 {
		t.Errorf("R(s,s) = %v", all[0])
	}
	for v := uncertain.NodeID(1); int(v) < g.NumNodes(); v++ {
		want, err := exact.Factoring(g, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(all[v]-want) > 0.02 {
			t.Errorf("node %d: %.4f, exact %.4f", v, all[v], want)
		}
	}
}

func TestTopKReliableTargets(t *testing.T) {
	r := rng.New(97)
	g := randomTestGraph(r, 12, 30)
	const k = 4000
	bs := NewBFSSharing(g, 3, k)
	top, err := TopKReliableTargets(bs, g, 0, 5, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 5 {
		t.Fatalf("returned %d > 5", len(top))
	}
	if !sort.SliceIsSorted(top, func(i, j int) bool {
		if top[i].R != top[j].R {
			return top[i].R > top[j].R
		}
		return top[i].Node < top[j].Node
	}) {
		t.Error("results not sorted by reliability")
	}
	for _, tr := range top {
		if tr.Node == 0 {
			t.Error("source included in top-k")
		}
	}

	// Generic path (per-candidate estimation) must broadly agree on the
	// membership of the very top entry.
	mc := NewMC(g, 3)
	topMC, err := TopKReliableTargets(mc, g, 0, 5, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 0 && len(topMC) > 0 {
		if math.Abs(top[0].R-topMC[0].R) > 0.05 {
			t.Errorf("BFSSharing top (%v) and MC top (%v) disagree", top[0], topMC[0])
		}
	}

	if _, err := TopKReliableTargets(mc, g, 0, 0, k); err == nil {
		t.Error("topK=0 accepted")
	}
	if _, err := TopKReliableTargets(mc, g, -1, 3, k); err == nil {
		t.Error("invalid source accepted")
	}
}

// --- Distance-constrained reliability ---

// exactDistanceConstrained enumerates all worlds and checks reachability
// within d hops, as the ground truth.
func exactDistanceConstrained(g *uncertain.Graph, s, t uncertain.NodeID, d int) float64 {
	m := g.NumEdges()
	total := 0.0
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		pr := 1.0
		for i, e := range g.Edges() {
			if mask&(1<<uint(i)) != 0 {
				pr *= e.P
			} else {
				pr *= 1 - e.P
			}
		}
		// BFS with hop budget over present edges.
		dist := map[uncertain.NodeID]int{s: 0}
		queue := []uncertain.NodeID{s}
		found := s == t
		for head := 0; head < len(queue) && !found; head++ {
			v := queue[head]
			if dist[v] >= d {
				continue
			}
			ids := g.OutEdgeIDs(v)
			tos := g.OutNeighbors(v)
			for i, id := range ids {
				if mask&(1<<uint(id)) == 0 {
					continue
				}
				w := tos[i]
				if _, ok := dist[w]; ok {
					continue
				}
				dist[w] = dist[v] + 1
				if w == t {
					found = true
					break
				}
				queue = append(queue, w)
			}
		}
		if found {
			total += pr
		}
	}
	return total
}

func TestDistanceConstrainedMC(t *testing.T) {
	// 0->1->2 plus shortcut 0->2: R_1 uses only the shortcut, R_2 both.
	g := testGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 0.8},
		{From: 1, To: 2, P: 0.8},
		{From: 0, To: 2, P: 0.3},
	})
	const k = 100000
	for d := 1; d <= 3; d++ {
		want := exactDistanceConstrained(g, 0, 2, d)
		dc := NewDistanceConstrainedMC(g, 7, d)
		got := dc.Estimate(0, 2, k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("d=%d: %.4f, exact %.4f", d, got, want)
		}
	}
	// Unbounded d equals plain reliability.
	want, err := exact.Factoring(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dc := NewDistanceConstrainedMC(g, 7, 10)
	if got := dc.Estimate(0, 2, k); math.Abs(got-want) > 0.01 {
		t.Errorf("large d: %.4f, plain exact %.4f", got, want)
	}
}

func TestDistanceConstrainedMCMonotone(t *testing.T) {
	r := rng.New(101)
	g := randomTestGraph(r, 8, 20)
	const k = 20000
	prev := -1.0
	for d := 1; d <= 6; d++ {
		dc := NewDistanceConstrainedMC(g, 7, d)
		got := dc.Estimate(0, 7, k)
		if got < prev-0.02 {
			t.Errorf("R_d not (approximately) monotone: d=%d gives %.4f after %.4f", d, got, prev)
		}
		prev = got
	}
}

func TestDistanceConstrainedMCValidation(t *testing.T) {
	g := testGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	dc := NewDistanceConstrainedMC(g, 1, 2)
	if dc.Name() != "MC(d<=2)" || dc.Bound() != 2 {
		t.Errorf("name %q bound %d", dc.Name(), dc.Bound())
	}
	if dc.Estimate(0, 0, 10) != 1 {
		t.Error("R_d(s,s) != 1")
	}
	if dc.MemoryBytes() <= 0 {
		t.Error("no memory reported")
	}
	defer func() {
		if recover() == nil {
			t.Error("d=0 did not panic")
		}
	}()
	NewDistanceConstrainedMC(g, 1, 0)
}
