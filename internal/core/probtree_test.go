package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// randomDAG builds a random DAG (edges only from lower to higher id), on
// which the ProbTree fold is exact: reverse reachability is impossible, so
// the direction-independence adaptation loses nothing.
func randomDAG(r *rng.Source, n, m int) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := uncertain.NodeID(r.Intn(n))
		v := uncertain.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		b.MustAddEdge(u, v, 0.05+0.9*r.Float64())
	}
	return b.Build()
}

// randomTree builds a random bi-directed tree; every node has skeleton
// degree <= its child count + 1, so the decomposition collapses the whole
// graph and the index must stay exact.
func randomTree(r *rng.Source, n int) *uncertain.Graph {
	b := uncertain.NewBuilder(n)
	for v := 1; v < n; v++ {
		parent := uncertain.NodeID(r.Intn(v))
		p := 0.1 + 0.8*r.Float64()
		b.MustAddEdge(uncertain.NodeID(v), parent, p)
		b.MustAddEdge(parent, uncertain.NodeID(v), p)
	}
	return b.Build()
}

// queryGraphExact computes the exact reliability of the spliced query
// graph, isolating the index transformation from sampling noise.
func queryGraphExact(t *testing.T, pt *ProbTree, s, tt uncertain.NodeID) float64 {
	t.Helper()
	qg, qs, qt, ok := pt.QueryGraph(s, tt)
	if !ok {
		return 0
	}
	r, err := exact.Factoring(qg, qs, qt)
	if err != nil {
		t.Fatalf("exact on query graph: %v", err)
	}
	return r
}

// TestProbTreeLosslessOnTrees: on bi-directed trees the w=2 decomposition
// must preserve reliability exactly (bags have at most one uncovered node,
// so no approximation enters at all).
func TestProbTreeLosslessOnTrees(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(9)
		g := randomTree(r, n)
		pt := NewProbTree(g, 1)
		for q := 0; q < 5; q++ {
			s := uncertain.NodeID(r.Intn(n))
			tt := uncertain.NodeID(r.Intn(n))
			if s == tt {
				continue
			}
			want, err := exact.Factoring(g, s, tt)
			if err != nil {
				t.Fatal(err)
			}
			got := queryGraphExact(t, pt, s, tt)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("trial %d: tree query (%d,%d): index %.6f, exact %.6f",
					trial, s, tt, got, want)
			}
		}
	}
}

// TestProbTreeLosslessOnDAGs: on DAGs only one direction per contribution
// pair can be non-zero, so the fold is exact too.
func TestProbTreeLosslessOnDAGs(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(7)
		g := randomDAG(r, n, 3+r.Intn(10))
		pt := NewProbTree(g, 1)
		for q := 0; q < 4; q++ {
			s := uncertain.NodeID(r.Intn(n))
			tt := uncertain.NodeID(r.Intn(n))
			if s == tt {
				continue
			}
			want, err := exact.Factoring(g, s, tt)
			if err != nil {
				t.Fatal(err)
			}
			got := queryGraphExact(t, pt, s, tt)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("trial %d: DAG query (%d,%d): index %.6f, exact %.6f (m=%d)",
					trial, s, tt, got, want, g.NumEdges())
			}
		}
	}
}

// TestProbTreeNearLosslessGeneral: on general bi-directed graphs the
// direction-independence adaptation may introduce tiny error; the paper
// treats w=2 as lossless in practice. Assert the deviation stays small.
func TestProbTreeNearLosslessGeneral(t *testing.T) {
	r := rng.New(17)
	worst := 0.0
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(6)
		g := randomTestGraph(r, n, 3+r.Intn(9))
		if g.NumEdges() > exact.MaxEnumerationEdges {
			continue
		}
		pt := NewProbTree(g, 1)
		for q := 0; q < 4; q++ {
			s := uncertain.NodeID(r.Intn(n))
			tt := uncertain.NodeID(r.Intn(n))
			if s == tt {
				continue
			}
			want, err := exact.Factoring(g, s, tt)
			if err != nil {
				t.Fatal(err)
			}
			got := queryGraphExact(t, pt, s, tt)
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.05 {
		t.Errorf("worst index deviation %.4f exceeds 0.05", worst)
	}
	t.Logf("worst ProbTree query-graph deviation from exact: %.6f", worst)
}

// TestProbTreeStructureInvariants checks the decomposition bookkeeping on
// random graphs via testing/quick: every non-root node is covered exactly
// once, parents contain their children's uncovered nodes, and parent
// indices always point to later-created bags (or the root).
func TestProbTreeStructureInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(20)
		g := randomTestGraph(r, n, r.Intn(40))
		pt := NewProbTree(g, 1)

		coveredCount := make(map[uncertain.NodeID]int)
		for i, b := range pt.ix.bags {
			if i == pt.ix.root {
				if b.covered != -1 {
					return false
				}
				continue
			}
			coveredCount[b.covered]++
			if b.parent == i || b.parent < 0 {
				return false
			}
			if b.parent != pt.ix.root && b.parent < i {
				// Parents are eliminated after their children.
				return false
			}
			parentNodes := make(map[uncertain.NodeID]bool)
			for _, u := range pt.ix.bags[b.parent].nodes {
				parentNodes[u] = true
			}
			for _, u := range b.nodes {
				if u != b.covered && !parentNodes[u] {
					return false
				}
			}
		}
		for _, c := range coveredCount {
			if c != 1 {
				return false
			}
		}
		// bagOf agrees with the bags.
		for v := 0; v < n; v++ {
			if bi := pt.ix.bagOf[v]; bi >= 0 {
				if pt.ix.bags[bi].covered != uncertain.NodeID(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestProbTreeEdgeConservation: every original edge is owned by exactly
// one bag (counting the root).
func TestProbTreeEdgeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(15)
		g := randomTestGraph(r, n, r.Intn(30))
		pt := NewProbTree(g, 1)
		total := 0
		for _, b := range pt.ix.bags {
			total += len(b.raw)
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestProbTreeQueryGraphSmaller: on tree-like graphs the spliced query
// graph must be no larger than the original.
func TestProbTreeQueryGraphSmaller(t *testing.T) {
	r := rng.New(23)
	g := randomTree(r, 200)
	pt := NewProbTree(g, 1)
	if pt.RootSize() > 3 {
		t.Errorf("tree decomposition left %d nodes in the root", pt.RootSize())
	}
	qg, _, _, ok := pt.QueryGraph(5, 150)
	if !ok {
		t.Fatal("query graph empty for connected tree")
	}
	if qg.NumEdges() >= g.NumEdges() {
		t.Errorf("query graph has %d edges, original %d: no reduction", qg.NumEdges(), g.NumEdges())
	}
}

// TestProbTreeInnerCoupling: the coupled estimators produce consistent
// estimates and carry composed names.
func TestProbTreeInnerCoupling(t *testing.T) {
	r := rng.New(29)
	g := randomTree(r, 12)
	want, err := exact.Factoring(g, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]InnerFactory{
		"ProbTree+LP+": func(qg *uncertain.Graph, s uint64) Estimator { return NewLazyProp(qg, s) },
		"ProbTree+RHH": func(qg *uncertain.Graph, s uint64) Estimator { return NewRHH(qg, s) },
		"ProbTree+RSS": func(qg *uncertain.Graph, s uint64) Estimator { return NewRSS(qg, s) },
	}
	for name, f := range factories {
		pt := NewProbTreeWith(g, 3, DefaultTreeWidth, f)
		if pt.Name() != name {
			t.Errorf("Name = %q, want %q", pt.Name(), name)
		}
		got := pt.Estimate(0, 11, 20000)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s: R = %.4f, exact %.4f", name, got, want)
		}
	}
}

// TestProbTreeIndexRoundTrip: serialize + load must preserve structure and
// estimates.
func TestProbTreeIndexRoundTrip(t *testing.T) {
	r := rng.New(31)
	g := randomTestGraph(r, 30, 60)
	pt := NewProbTree(g, 5)
	var buf bytes.Buffer
	if err := pt.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProbTree(g, &buf, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumBags() != pt.NumBags() || loaded.RootSize() != pt.RootSize() {
		t.Fatalf("loaded index shape mismatch: bags %d/%d root %d/%d",
			loaded.NumBags(), pt.NumBags(), loaded.RootSize(), pt.RootSize())
	}
	a := pt.Estimate(0, 29, 5000)
	b := loaded.Estimate(0, 29, 5000)
	if a != b {
		t.Errorf("estimates diverge after round trip: %v vs %v", a, b)
	}
	// Loading against a mismatched graph must fail.
	other := randomTestGraph(rng.New(32), 31, 60)
	buf.Reset()
	if err := pt.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProbTree(other, &buf, 5, nil); err == nil {
		t.Error("LoadProbTree accepted an index for a different graph")
	}
}

// TestSmallReliability sanity-checks the exact per-bag fold helper.
func TestSmallReliability(t *testing.T) {
	// Two parallel paths 0->1 direct (0.5) and 0->2->1 (0.6*0.7).
	edges := []uncertain.Edge{
		{From: 0, To: 1, P: 0.5},
		{From: 0, To: 2, P: 0.6},
		{From: 2, To: 1, P: 0.7},
	}
	want := 1 - (1-0.5)*(1-0.6*0.7)
	if got := smallReliability(edges, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("smallReliability = %v, want %v", got, want)
	}
	// Parallel duplicate edges merge with noisy-or.
	dup := []uncertain.Edge{
		{From: 0, To: 1, P: 0.5},
		{From: 0, To: 1, P: 0.5},
	}
	if got := smallReliability(dup, 0, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("parallel merge = %v, want 0.75", got)
	}
	if got := smallReliability(edges, 1, 0); got != 0 {
		t.Errorf("reverse = %v, want 0", got)
	}
}

// TestProbTreeWidthOne still produces valid estimates (degenerate
// decomposition; only degree-1 chains collapse).
func TestProbTreeWidthOne(t *testing.T) {
	r := rng.New(37)
	g := randomTree(r, 20)
	pt := NewProbTreeWith(g, 1, 1, nil)
	want, err := exact.Factoring(g, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	got := queryGraphExact(t, pt, 0, 19)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("w=1 index: %.6f, exact %.6f", got, want)
	}
}
