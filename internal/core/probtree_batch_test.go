package core

import (
	"testing"
	"testing/quick"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// graphsEqual compares two graphs structurally: node count plus the exact
// edge list (order-sensitive after the builder's canonicalization).
func graphsEqual(a, b *uncertain.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// TestQueryGraphAllMatchesQueryGraph: the source-grouped splice must
// produce, for every target, exactly the graph the per-query splice
// produces — same renamed endpoints, same edge list — on random graphs
// and widths. This is the property the engine's batch determinism relies
// on: inner estimates over group-spliced graphs are bit-identical to
// per-query ones.
func TestQueryGraphAllMatchesQueryGraph(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(30)
		g := randomTestGraph(r, n, r.Intn(70))
		width := 1 + r.Intn(2)
		ix := NewProbTreeIndex(g, width)
		grouped := ix.Querier(1, nil)
		perQuery := ix.Querier(1, nil)

		s := uncertain.NodeID(r.Intn(n))
		ts := make([]uncertain.NodeID, 0, 8)
		for len(ts) < 8 {
			ts = append(ts, uncertain.NodeID(r.Intn(n)))
		}
		ts = append(ts, s) // the same-node case must round-trip too

		all := grouped.QueryGraphAll(s, ts)
		for i, tt := range ts {
			want := perQuery.Splice(s, tt)
			got := all[i]
			if got.Same != want.Same || got.OK != want.OK {
				t.Logf("seed %d: (%d,%d) flags got %+v want %+v", seed, s, tt, got, want)
				return false
			}
			if want.Same || !want.OK {
				continue
			}
			if got.S != want.S || got.T != want.T {
				t.Logf("seed %d: (%d,%d) endpoints got (%d,%d) want (%d,%d)",
					seed, s, tt, got.S, got.T, want.S, want.T)
				return false
			}
			if !graphsEqual(got.G, want.G) {
				t.Logf("seed %d: (%d,%d) spliced graphs differ:\n%v\nvs\n%v",
					seed, s, tt, got.G, want.G)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestEstimateSplicedMatchesEstimate: reseeding before each
// EstimateSpliced over a group splice reproduces per-query Estimate calls
// exactly, which is how the engine's batch path stays bit-identical to
// its single-query path.
func TestEstimateSplicedMatchesEstimate(t *testing.T) {
	r := rng.New(17)
	g := randomTestGraph(r, 25, 60)
	ix := NewProbTreeIndex(g, DefaultTreeWidth)
	grouped := ix.Querier(1, nil)
	perQuery := ix.Querier(1, nil)

	s := uncertain.NodeID(0)
	ts := []uncertain.NodeID{1, 5, 9, 13, 17, 21, 0}
	const k = 400
	all := grouped.QueryGraphAll(s, ts)
	for i, tt := range ts {
		seed := 1000*uint64(i) + 7
		grouped.Reseed(seed)
		got := grouped.EstimateSpliced(all[i], k)
		perQuery.Reseed(seed)
		want := perQuery.Estimate(s, tt, k)
		if got != want {
			t.Errorf("target %d: grouped %v, per-query %v", tt, got, want)
		}
	}
}

// TestProbTreeSharedIndexQueriers: queriers sharing one index must report
// the identical index object and answer like a privately owned ProbTree.
func TestProbTreeSharedIndexQueriers(t *testing.T) {
	r := rng.New(29)
	g := randomTestGraph(r, 30, 70)
	owned := NewProbTree(g, 3)
	ix := NewProbTreeIndex(g, DefaultTreeWidth)
	q1, q2 := ix.Querier(3, nil), ix.Querier(3, nil)
	if q1.Index() != ix || q2.Index() != ix {
		t.Fatal("queriers do not report the shared index")
	}
	for s := uncertain.NodeID(0); s < 4; s++ {
		for d := uncertain.NodeID(4); d < 8; d++ {
			owned.Reseed(42)
			want := owned.Estimate(s, d, 300)
			q1.Reseed(42)
			if got := q1.Estimate(s, d, 300); got != want {
				t.Fatalf("querier 1 (%d,%d) = %v, owned = %v", s, d, got, want)
			}
			q2.Reseed(42)
			if got := q2.Estimate(s, d, 300); got != want {
				t.Fatalf("querier 2 (%d,%d) = %v, owned = %v", s, d, got, want)
			}
		}
	}
}
