package core

import (
	"fmt"
	"io"

	"relcomp/internal/bitvec"
	"relcomp/internal/rng"
	"relcomp/internal/snapshot"
	"relcomp/internal/uncertain"
)

// This file bridges the estimators' offline index types to the snapshot
// container (internal/snapshot): section encodings for BFSIndex and
// ProbTreeIndex, and the Snapshot bundle that holds a graph plus its
// indexes loaded from one file.
//
// Loading is zero-copy for the heavy data: the BFS word arena, the graph
// CSR columns, and the ProbTree node lists alias the mapped file image.
// Small derived structures (edge lists, bag child slices) are
// materialized. An index loaded over a read-only mapping is frozen — its
// mutators (Resample and friends) panic instead of faulting — while one
// loaded from a heap-backed stream stays mutable, matching the behavior
// of the previous gob-based loaders.

// addBFSIndex adds the BFS Sharing index sections: a small meta record
// and the word arena. Only a fully valid draw may be persisted — a
// prefix-resampled index would mix world generations on reload.
func addBFSIndex(w *snapshot.Writer, ix *BFSIndex) error {
	if ix.valid != ix.width {
		return fmt.Errorf("core: cannot snapshot a prefix-resampled BFSSharing index (valid %d of width %d)",
			ix.valid, ix.width)
	}
	w.AddUint64s(snapshot.SecBFSMeta, []uint64{
		uint64(ix.width), uint64(ix.valid), uint64(ix.g.NumEdges()),
	})
	w.AddUint64s(snapshot.SecBFSWords, ix.edgeBits.Words())
	return nil
}

// bfsIndexFromFile reconstructs a BFSIndex whose word arena aliases the
// file image. The meta section is always checksum-verified; the bulk word
// section is verified only for heap-backed files (a stream read touches
// every byte anyway), never for mappings (that would fault the whole file
// in and destroy the O(page faults) cold start — relsnap verify covers
// it). A mapped index comes back frozen.
func bfsIndexFromFile(g *uncertain.Graph, f *snapshot.File, seed uint64) (*BFSIndex, error) {
	meta, err := f.Uint64s(snapshot.SecBFSMeta)
	if err != nil {
		return nil, err
	}
	if len(meta) != 3 {
		return nil, fmt.Errorf("%w: bfs.meta has %d entries, want 3", snapshot.ErrCorrupt, len(meta))
	}
	width, valid, numEdges := int(meta[0]), int(meta[1]), int(meta[2])
	if numEdges != g.NumEdges() {
		return nil, fmt.Errorf("%w: index built for %d edges, graph has %d", snapshot.ErrCorrupt, numEdges, g.NumEdges())
	}
	if width <= 0 || valid != width {
		return nil, fmt.Errorf("%w: bfs.meta implausible: width=%d valid=%d", snapshot.ErrCorrupt, width, valid)
	}
	var words []uint64
	if f.Mapped() {
		words, err = f.Uint64sNoVerify(snapshot.SecBFSWords)
	} else {
		words, err = f.Uint64s(snapshot.SecBFSWords)
	}
	if err != nil {
		return nil, err
	}
	arena, err := bitvec.ArenaFromWords(words, numEdges, width)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return &BFSIndex{
		g:        g,
		seed:     seed,
		row:      rng.New(0),
		width:    width,
		valid:    valid,
		edgeBits: arena,
		frozen:   f.Mapped(),
	}, nil
}

// probTreeToData flattens the decomposition into the container's columnar
// form.
func probTreeToData(ix *ProbTreeIndex) *snapshot.ProbTreeData {
	bags := len(ix.bags)
	d := &snapshot.ProbTreeData{
		Width:      ix.width,
		Root:       ix.root,
		NumNodes:   ix.g.NumNodes(),
		BagOf:      ix.bagOf,
		Covered:    make([]int32, bags),
		Parent:     make([]int32, bags),
		NodeOff:    make([]uint64, bags+1),
		RawOff:     make([]uint64, bags+1),
		ContribOff: make([]uint64, bags+1),
		ChildOff:   make([]uint64, bags+1),
	}
	for i := range ix.bags {
		b := &ix.bags[i]
		d.Covered[i] = int32(b.covered)
		d.Parent[i] = int32(b.parent)
		d.Nodes = append(d.Nodes, b.nodes...)
		for _, e := range b.raw {
			d.RawFrom = append(d.RawFrom, e.From)
			d.RawTo = append(d.RawTo, e.To)
			d.RawP = append(d.RawP, e.P)
		}
		for _, e := range b.contrib {
			d.ContribFrom = append(d.ContribFrom, e.From)
			d.ContribTo = append(d.ContribTo, e.To)
			d.ContribP = append(d.ContribP, e.P)
		}
		for _, c := range b.children {
			d.Children = append(d.Children, int32(c))
		}
		d.NodeOff[i+1] = uint64(len(d.Nodes))
		d.RawOff[i+1] = uint64(len(d.RawFrom))
		d.ContribOff[i+1] = uint64(len(d.ContribFrom))
		d.ChildOff[i+1] = uint64(len(d.Children))
	}
	return d
}

// probTreeIndexFromData rebuilds a ProbTreeIndex from the columnar form.
// Each bag's node list aliases the (possibly mapped) concat array —
// queriers only read it — while edge lists and child slices are
// materialized. Semantic checks the structural loader could not do run
// here: node counts against the graph, edge endpoints, probabilities.
func probTreeIndexFromData(g *uncertain.Graph, d *snapshot.ProbTreeData) (*ProbTreeIndex, error) {
	if d.NumNodes != g.NumNodes() {
		return nil, fmt.Errorf("%w: index built for %d nodes, graph has %d", snapshot.ErrCorrupt, d.NumNodes, g.NumNodes())
	}
	bags := d.NumBags()
	ix := &ProbTreeIndex{
		g:     g,
		width: d.Width,
		root:  d.Root,
		bagOf: d.BagOf,
		bags:  make([]ptBag, bags),
	}
	edgeList := func(which string, off []uint64, i int, from, to []int32, p []float64) ([]uncertain.Edge, error) {
		lo, hi := off[i], off[i+1]
		if lo == hi {
			return nil, nil
		}
		out := make([]uncertain.Edge, hi-lo)
		for j := lo; j < hi; j++ {
			e := uncertain.Edge{From: from[j], To: to[j], P: p[j]}
			if e.From < 0 || int(e.From) >= d.NumNodes || e.To < 0 || int(e.To) >= d.NumNodes {
				return nil, fmt.Errorf("%w: probtree bag %d %s edge (%d,%d) out of range [0,%d)",
					snapshot.ErrCorrupt, i, which, e.From, e.To, d.NumNodes)
			}
			if !(e.P > 0 && e.P <= 1) {
				return nil, fmt.Errorf("%w: probtree bag %d %s edge probability %v outside (0,1]",
					snapshot.ErrCorrupt, i, which, e.P)
			}
			out[j-lo] = e
		}
		return out, nil
	}
	for i := 0; i < bags; i++ {
		b := &ix.bags[i]
		b.covered = d.Covered[i]
		b.parent = int(d.Parent[i])
		b.nodes = d.Nodes[d.NodeOff[i]:d.NodeOff[i+1]:d.NodeOff[i+1]]
		var err error
		if b.raw, err = edgeList("raw", d.RawOff, i, d.RawFrom, d.RawTo, d.RawP); err != nil {
			return nil, err
		}
		if b.contrib, err = edgeList("contrib", d.ContribOff, i, d.ContribFrom, d.ContribTo, d.ContribP); err != nil {
			return nil, err
		}
		if lo, hi := d.ChildOff[i], d.ChildOff[i+1]; lo < hi {
			b.children = make([]int, hi-lo)
			for j := lo; j < hi; j++ {
				b.children[j-lo] = int(d.Children[j])
			}
		}
	}
	return ix, nil
}

// Snapshot is a graph plus its offline indexes loaded from one container
// file. Close releases the mapping; every loaded structure aliases it, so
// nothing loaded from the snapshot may be used after Close.
type Snapshot struct {
	Manifest snapshot.Manifest
	Graph    *uncertain.Graph
	BFS      *BFSIndex      // nil if the snapshot holds no BFS index
	ProbTree *ProbTreeIndex // nil if the snapshot holds no ProbTree index

	// Degree-relabel translation, present only when the manifest's
	// DegreeRelabeled flag is set: Graph is then the degree-sorted rename
	// of the original, RelabelToOld maps internal node ids back to the
	// caller's, and RelabelEdgeToNew maps the caller's edge ids to the
	// rename's. Both slices may alias the file mapping.
	RelabelToOld     []int32
	RelabelEdgeToNew []int32

	f *snapshot.File
}

// WriteSnapshot serializes a graph and its indexes (either may be nil)
// into one container. The manifest's graph fields are filled in; the
// caller provides the engine-level fields (EngineSeed, MaxK, PTWidth).
func WriteSnapshot(w io.Writer, g *uncertain.Graph, bfs *BFSIndex, pt *ProbTreeIndex, man snapshot.Manifest) error {
	return WriteSnapshotWithRelabel(w, g, bfs, pt, man, nil, nil)
}

// WriteSnapshotWithRelabel is WriteSnapshot for a degree-relabeled graph:
// toOld (internal node id -> original) and edgeToNew (original edge id ->
// internal) are persisted alongside the graph, and the manifest is marked
// DegreeRelabeled. Both nil writes an ordinary snapshot.
func WriteSnapshotWithRelabel(w io.Writer, g *uncertain.Graph, bfs *BFSIndex, pt *ProbTreeIndex, man snapshot.Manifest, toOld, edgeToNew []int32) error {
	if (toOld != nil) != (edgeToNew != nil) {
		return fmt.Errorf("core: relabel sections must be written together (toOld nil: %v, edgeToNew nil: %v)",
			toOld == nil, edgeToNew == nil)
	}
	if toOld != nil {
		if len(toOld) != g.NumNodes() || len(edgeToNew) != g.NumEdges() {
			return fmt.Errorf("core: relabel sections sized %d nodes / %d edges, graph has %d / %d",
				len(toOld), len(edgeToNew), g.NumNodes(), g.NumEdges())
		}
		man.DegreeRelabeled = true
	}
	man.GraphName = g.Name()
	man.Nodes = int64(g.NumNodes())
	man.Edges = int64(g.NumEdges())
	man.HasBFS = bfs != nil
	man.HasProbTree = pt != nil
	sw := snapshot.NewWriter()
	if err := sw.AddManifest(man); err != nil {
		return err
	}
	snapshot.AddGraph(sw, g)
	if toOld != nil {
		sw.AddInt32s(snapshot.SecRelabelToOld, toOld)
		sw.AddInt32s(snapshot.SecRelabelEdgeToNew, edgeToNew)
	}
	if bfs != nil {
		if bfs.g != g {
			return fmt.Errorf("core: BFS index was built over a different graph")
		}
		if err := addBFSIndex(sw, bfs); err != nil {
			return err
		}
	}
	if pt != nil {
		if pt.g != g {
			return fmt.Errorf("core: ProbTree index was built over a different graph")
		}
		snapshot.AddProbTree(sw, probTreeToData(pt))
	}
	_, err := sw.WriteTo(w)
	return err
}

// OpenSnapshot opens the container at path — memory-mapped read-only
// where the platform allows — and reconstructs the graph and whatever
// indexes it holds. The caller owns the returned Snapshot and must Close
// it when the graph and indexes are no longer in use.
func OpenSnapshot(path string) (*Snapshot, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := newSnapshot(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// ReadSnapshot reads a container stream into the heap and reconstructs
// its contents. Heap-backed snapshots need no Close and their indexes
// stay mutable.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	f, err := snapshot.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return newSnapshot(f)
}

func newSnapshot(f *snapshot.File) (*Snapshot, error) {
	man, err := f.LoadManifest()
	if err != nil {
		return nil, err
	}
	g, err := snapshot.LoadGraph(f, man.GraphName)
	if err != nil {
		return nil, err
	}
	if int64(g.NumNodes()) != man.Nodes || int64(g.NumEdges()) != man.Edges {
		return nil, fmt.Errorf("%w: manifest says n=%d m=%d, graph sections hold n=%d m=%d",
			snapshot.ErrCorrupt, man.Nodes, man.Edges, g.NumNodes(), g.NumEdges())
	}
	s := &Snapshot{Manifest: man, Graph: g, f: f}
	if man.DegreeRelabeled {
		if s.RelabelToOld, err = f.Int32s(snapshot.SecRelabelToOld); err != nil {
			return nil, err
		}
		if s.RelabelEdgeToNew, err = f.Int32s(snapshot.SecRelabelEdgeToNew); err != nil {
			return nil, err
		}
		if len(s.RelabelToOld) != g.NumNodes() || len(s.RelabelEdgeToNew) != g.NumEdges() {
			return nil, fmt.Errorf("%w: relabel sections sized %d nodes / %d edges, graph has %d / %d",
				snapshot.ErrCorrupt, len(s.RelabelToOld), len(s.RelabelEdgeToNew), g.NumNodes(), g.NumEdges())
		}
	}
	if f.Has(snapshot.SecBFSWords) {
		if s.BFS, err = bfsIndexFromFile(g, f, man.EngineSeed); err != nil {
			return nil, err
		}
	}
	if f.Has(snapshot.SecPTMeta) {
		d, err := snapshot.LoadProbTree(f)
		if err != nil {
			return nil, err
		}
		if s.ProbTree, err = probTreeIndexFromData(g, d); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Mapped reports whether the snapshot is backed by a read-only memory
// mapping (its BFS index is then frozen).
func (s *Snapshot) Mapped() bool { return s.f.Mapped() }

// SizeBytes returns the container image size.
func (s *Snapshot) SizeBytes() int64 { return s.f.Size() }

// Verify checksums every section of the underlying container, faulting
// the whole file in.
func (s *Snapshot) Verify() error { return s.f.Verify() }

// Sections lists the container's sections, for inspection tools.
func (s *Snapshot) Sections() []snapshot.SectionInfo { return s.f.Sections() }

// Close releases the underlying mapping, if any. The graph and indexes
// loaded from the snapshot must not be used afterwards.
func (s *Snapshot) Close() error { return s.f.Close() }
