package core

import (
	"runtime"
	"sync"

	"relcomp/internal/uncertain"
)

// ParallelMC is a multi-core extension of the baseline Monte Carlo
// estimator. The paper restricts its comparison to sequential algorithms
// (its §1 explicitly excludes distributed ones); ParallelMC is the obvious
// next step it leaves open: MC samples are embarrassingly parallel, so the
// K-sample budget is sharded over W workers with independent RNG streams.
// The estimate is statistically identical to MC's (same unbiasedness and
// variance), only wall-clock time changes.
//
// Unlike the other estimators, ParallelMC's Estimate is itself safe for
// the internal concurrency it manages, but the type still must not be
// shared between goroutines.
type ParallelMC struct {
	g       *uncertain.Graph
	seed    uint64
	epoch   uint64
	workers int
	pool    sync.Pool // *MC workers
}

// NewParallelMC returns a ParallelMC with workers goroutines (0 means
// GOMAXPROCS).
func NewParallelMC(g *uncertain.Graph, seed uint64, workers int) *ParallelMC {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelMC{g: g, seed: seed, workers: workers}
	p.pool.New = func() interface{} { return NewMC(g, seed) }
	return p
}

// Name implements Estimator.
func (p *ParallelMC) Name() string { return "ParallelMC" }

// Reseed implements Seeder.
func (p *ParallelMC) Reseed(seed uint64) {
	p.seed = seed
	p.epoch = 0
}

// Estimate implements Estimator: it shards k samples over the workers and
// averages the per-shard hit counts. Each worker accumulates its count
// locally and hands it back over a channel — workers writing adjacent
// elements of a shared slice would false-share cache lines and serialize
// on coherence traffic exactly in the loop this type exists to speed up.
func (p *ParallelMC) Estimate(s, t uncertain.NodeID, k int) float64 {
	mustValidQuery(p.g, s, t, k)
	if s == t {
		return 1
	}
	p.epoch++
	return float64(p.shardHits(s, t, p.epoch, k)) / float64(k)
}

// shardHits draws `total` samples sharded over the workers of epoch
// `epoch` and returns the hit count — Estimate's fan-out, reused by the
// incremental sampler.
func (p *ParallelMC) shardHits(s, t uncertain.NodeID, epoch uint64, total int) int {
	workers := p.workers
	if workers > total {
		workers = total
	}
	results := make(chan int, workers)
	for w := 0; w < workers; w++ {
		share := total / workers
		if w < total%workers {
			share++
		}
		go func(w, share int) {
			mc := p.pool.Get().(*MC)
			// Derive an independent stream per (epoch, worker).
			mc.Reseed(mix(p.seed, epoch, uint64(w)))
			n := 0
			for i := 0; i < share; i++ {
				if mc.sampleOnce(s, t) {
					n++
				}
			}
			p.pool.Put(mc)
			results <- n
		}(w, share)
	}
	hits := 0
	for w := 0; w < workers; w++ {
		hits += <-results
	}
	return hits
}

// Sampler implements IncrementalEstimator. Each Advance is one sharded
// draw under a fresh epoch, so a session advanced once by k is
// bit-identical to Estimate(s, t, k); chunked advancement accumulates
// statistically identical (but not bit-identical) hits, because
// ParallelMC's sample sharding — like its worker count — shapes the
// per-worker streams.
func (p *ParallelMC) Sampler(s, t uncertain.NodeID) Sampler {
	mustValidQuery(p.g, s, t, 1)
	if s == t {
		return &trivialSampler{estimate: 1}
	}
	return &parallelMCSampler{p: p, s: s, t: t}
}

type parallelMCSampler struct {
	p       *ParallelMC
	s, t    uncertain.NodeID
	n, hits int
}

func (x *parallelMCSampler) Advance(dk int) {
	checkAdvance(dk, x.n, 0)
	if dk == 0 {
		return
	}
	x.p.epoch++
	x.hits += x.p.shardHits(x.s, x.t, x.p.epoch, dk)
	x.n += dk
}

func (x *parallelMCSampler) Snapshot() SampleSnapshot { return binomialSnapshot(x.hits, x.n, 0) }

// mix combines the seed, query epoch, and worker id into one stream seed
// (splitmix64 finalizer).
func mix(seed, epoch, worker uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*epoch + 0xbf58476d1ce4e5b9*worker + 1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MemoryBytes implements MemoryReporter: one MC scratch per worker — the
// epoch-set (4 bytes per node) plus the initial BFS queue — computed
// arithmetically rather than by allocating a throwaway MC just to
// measure it.
func (p *ParallelMC) MemoryBytes() int64 {
	per := int64(p.g.NumNodes())*4 + mcQueueCap*4
	return per * int64(p.workers)
}

var _ IncrementalEstimator = (*ParallelMC)(nil)
