package core

import (
	"fmt"
	"sort"

	"relcomp/internal/uncertain"
)

// Advanced queries built on the six estimators. The paper notes (§2.9)
// that "many of the efficient sampling and indexing strategies that we
// investigate in this work can also be employed to answer such advanced
// queries"; this file implements the two it repeatedly references:
//
//   - single-source / top-k reliability search — the query BFS Sharing was
//     originally designed for (Zhu et al., ICDM 2015),
//   - distance-constrained reachability — the query RHH was originally
//     designed for (Jin et al., PVLDB 2011).

// SourceEstimator is implemented by estimators that can answer every
// target of one source in a single traversal (BFS Sharing's queriers);
// batch layers use it to amortize same-source query groups.
type SourceEstimator interface {
	Estimator
	EstimateAll(s uncertain.NodeID, k int) []float64
}

// EstimateAll runs the shared BFS once and returns the reliability of
// every node from the source s, which is what one BFS Sharing traversal
// actually computes (the s-t query of Algorithm 2 just reads one entry).
// The returned slice has one value per node; unvisited nodes have 0.
func (q *BFSQuerier) EstimateAll(s uncertain.NodeID, k int) []float64 {
	// Reuse Estimate's traversal by querying any target; the node vectors
	// left behind cover every reached node.
	g := q.ix.g
	mustValidQuery(g, s, s, k)
	if k > q.ix.width {
		panic(fmt.Sprintf("core: BFSSharing asked for %d samples but index width is %d", k, q.ix.width))
	}
	// Run the traversal with t = s (never early-terminates BFS Sharing
	// anyway — the method has no early termination).
	q.Estimate(s, wrapTarget(s, g.NumNodes()), k)
	out := make([]float64, g.NumNodes())
	for v := range out {
		if uncertain.NodeID(v) == s {
			out[v] = 1
			continue
		}
		if q.inSet[v] {
			out[v] = float64(countPrefix(q.nodeBits.Vec(v), k)) / float64(k)
		}
	}
	return out
}

// wrapTarget picks a target distinct from s so Estimate's validation
// passes (single-node graphs keep s, where R = 1 trivially).
func wrapTarget(s uncertain.NodeID, n int) uncertain.NodeID {
	if n <= 1 {
		return s
	}
	if s == 0 {
		return 1
	}
	return 0
}

// Reliability pairs a node with its estimated reliability from a source.
type Reliability struct {
	Node uncertain.NodeID
	R    float64
}

// TopKReliableTargets returns the k nodes with the highest estimated
// reliability from s (excluding s itself), the top-k reliability search
// of Zhu et al. When the estimator is a SourceEstimator (BFS Sharing),
// one shared traversal answers the whole query; any other estimator is
// called once per candidate node (quadratically slower, provided for
// comparison).
func TopKReliableTargets(est Estimator, g *uncertain.Graph, s uncertain.NodeID, topK, samples int) ([]Reliability, error) {
	if err := CheckQuery(g, s, s, samples); err != nil {
		return nil, err
	}
	if topK <= 0 {
		return nil, fmt.Errorf("core: topK %d must be positive", topK)
	}
	var all []Reliability
	if bs, ok := est.(SourceEstimator); ok {
		rs := bs.EstimateAll(s, samples)
		for v, r := range rs {
			if uncertain.NodeID(v) != s && r > 0 {
				all = append(all, Reliability{uncertain.NodeID(v), r})
			}
		}
	} else {
		for v := uncertain.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v == s {
				continue
			}
			if r := est.Estimate(s, v, samples); r > 0 {
				all = append(all, Reliability{v, r})
			}
		}
	}
	sortReliabilities(all)
	if len(all) > topK {
		all = all[:topK]
	}
	return all, nil
}

// sortReliabilities orders a ranking by reliability descending, ties broken
// by ascending NodeID. The stable sort plus the total tie-break make every
// ranking deterministic: two nodes with equal estimates always appear in
// NodeID order, whatever order the candidates were scanned in.
func sortReliabilities(all []Reliability) {
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].R != all[j].R {
			return all[i].R > all[j].R
		}
		return all[i].Node < all[j].Node
	})
}

// DistanceConstrainedMC estimates the d-hop constrained reliability
// R_d(s,t): the probability that t is reachable from s within at most d
// hops — the query recursive sampling was originally proposed for. It is
// a Monte Carlo estimator with the same guarantees as MC.
type DistanceConstrainedMC struct {
	mc   *MC
	d    int
	dist []int32
}

// NewDistanceConstrainedMC returns an estimator of R_d(s,t) with hop bound
// d >= 1.
func NewDistanceConstrainedMC(g *uncertain.Graph, seed uint64, d int) *DistanceConstrainedMC {
	if d < 1 {
		panic(fmt.Sprintf("core: distance bound %d must be >= 1", d))
	}
	return &DistanceConstrainedMC{
		mc:   NewMC(g, seed),
		d:    d,
		dist: make([]int32, g.NumNodes()),
	}
}

// Name implements Estimator.
func (dc *DistanceConstrainedMC) Name() string { return fmt.Sprintf("MC(d<=%d)", dc.d) }

// Reseed implements Seeder.
func (dc *DistanceConstrainedMC) Reseed(seed uint64) { dc.mc.Reseed(seed) }

// Bound returns the hop bound d.
func (dc *DistanceConstrainedMC) Bound() int { return dc.d }

// Estimate implements Estimator.
func (dc *DistanceConstrainedMC) Estimate(s, t uncertain.NodeID, k int) float64 {
	mc := dc.mc
	mustValidQuery(mc.g, s, t, k)
	if s == t {
		return 1
	}
	hits := 0
	for i := 0; i < k; i++ {
		if dc.sampleOnce(s, t) {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// sampleOnce is MC's lazy BFS with a hop budget.
func (dc *DistanceConstrainedMC) sampleOnce(s, t uncertain.NodeID) bool {
	mc := dc.mc
	g, r := mc.g, mc.rng
	mc.seen.nextRound()
	mc.seen.visit(s)
	dc.dist[s] = 0
	q := mc.queue[:0]
	q = append(q, s)
	for head := 0; head < len(q); head++ {
		v := q[head]
		if int(dc.dist[v]) >= dc.d {
			continue
		}
		tos := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for i, w := range tos {
			if mc.seen.visited(w) {
				continue
			}
			if !r.Bernoulli(ps[i]) {
				continue
			}
			if w == t {
				mc.queue = q
				return true
			}
			mc.seen.visit(w)
			dc.dist[w] = dc.dist[v] + 1
			q = append(q, w)
		}
	}
	mc.queue = q
	return false
}

// MemoryBytes implements MemoryReporter.
func (dc *DistanceConstrainedMC) MemoryBytes() int64 {
	return dc.mc.MemoryBytes() + int64(len(dc.dist))*4
}

// Sampler implements IncrementalEstimator. The per-sample BFS consumes the
// random stream sequentially, exactly like Estimate's loop, so Advance(a);
// Advance(b) accumulates the hit count Estimate(s, t, a+b) would.
func (dc *DistanceConstrainedMC) Sampler(s, t uncertain.NodeID) Sampler {
	mustValidQuery(dc.mc.g, s, t, 1)
	if s == t {
		return &trivialSampler{estimate: 1}
	}
	return &distanceSampler{dc: dc, s: s, t: t}
}

type distanceSampler struct {
	dc      *DistanceConstrainedMC
	s, t    uncertain.NodeID
	n, hits int
}

func (x *distanceSampler) Advance(dk int) {
	checkAdvance(dk, x.n, 0)
	for i := 0; i < dk; i++ {
		if x.dc.sampleOnce(x.s, x.t) {
			x.hits++
		}
	}
	x.n += dk
}

func (x *distanceSampler) Snapshot() SampleSnapshot { return binomialSnapshot(x.hits, x.n, 0) }

var _ IncrementalEstimator = (*DistanceConstrainedMC)(nil)
