package core

import (
	"fmt"
	"testing"

	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// benchGraph builds a mid-sized random graph with mixed probabilities, the
// shape the sampling kernels spend their time on.
func benchGraph(n, m int) *uncertain.Graph {
	r := rng.New(11)
	b := uncertain.NewBuilder(n)
	for i := 0; i < m; i++ {
		from := uncertain.NodeID(r.Intn(n))
		to := uncertain.NodeID(r.Intn(n))
		if from == to {
			continue
		}
		b.MustAddEdge(from, to, 0.05+0.9*r.Float64())
	}
	return b.Build()
}

// BenchmarkParallelMCWorkers pins the worker-combining path of ParallelMC
// (worker-local accumulation, no shared hit slice): the scaling across
// worker counts is the regression signal for reintroduced sharing.
func BenchmarkParallelMCWorkers(b *testing.B) {
	g := benchGraph(2000, 10000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := NewParallelMC(g, 7, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Estimate(0, uncertain.NodeID(g.NumNodes()-1), 4096)
			}
		})
	}
}

// BenchmarkPackVsMCKernel compares the per-query cost of the word-packed
// sampler against plain MC at equal K on one shared graph — the kernel
// behind the dataset-level BenchmarkPackMC at the repository root.
func BenchmarkPackVsMCKernel(b *testing.B) {
	g := benchGraph(2000, 10000)
	t := uncertain.NodeID(g.NumNodes() - 1)
	for _, bc := range []struct {
		name string
		est  Estimator
	}{
		{"MC", NewMC(g, 7)},
		{"PackMC", NewPackMC(g, 7)},
		{"PackMC256", NewWidePackMC(g, 7, 256)},
		{"PackMC512", NewWidePackMC(g, 7, 512)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bc.est.Estimate(0, t, 1024)
			}
		})
	}
}
