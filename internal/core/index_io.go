package core

import (
	"io"

	"relcomp/internal/snapshot"
	"relcomp/internal/uncertain"
)

// Index persistence. Both index-based estimators can serialize their
// offline structures and be reconstructed against the same graph, which is
// what the paper's Fig. 13(c) "index loading time" measures: the cost of
// bringing a pre-built index into main memory before answering queries.
//
// The stream encoding is the snapshot container (internal/snapshot): a
// single-index stream is a container holding just that index's sections,
// so the same checksummed format serves both the per-index io.Writer API
// here and the bundled graph+indexes files of OpenSnapshot. The old gob
// encoding is gone; these functions keep its signatures.

// WriteIndex serializes the offline index (edge bit vectors) to w.
func (ix *BFSIndex) WriteIndex(w io.Writer) error {
	sw := snapshot.NewWriter()
	if err := addBFSIndex(sw, ix); err != nil {
		return err
	}
	_, err := sw.WriteTo(w)
	return err
}

// WriteIndex serializes the querier's shared offline index to w.
func (q *BFSQuerier) WriteIndex(w io.Writer) error { return q.ix.WriteIndex(w) }

// LoadBFSIndex reconstructs a shared BFS Sharing index from its serialized
// form over the same graph it was built from. The stream is read into the
// heap, so the index stays mutable (resamplable), like the indexes this
// package builds itself.
func LoadBFSIndex(g *uncertain.Graph, rd io.Reader, seed uint64) (*BFSIndex, error) {
	f, err := snapshot.ReadFrom(rd)
	if err != nil {
		return nil, err
	}
	return bfsIndexFromFile(g, f, seed)
}

// LoadBFSSharing reconstructs a BFSSharing estimator from a serialized
// index over the same graph it was built from.
func LoadBFSSharing(g *uncertain.Graph, rd io.Reader, seed uint64) (*BFSSharing, error) {
	ix, err := LoadBFSIndex(g, rd, seed)
	if err != nil {
		return nil, err
	}
	return &BFSSharing{BFSQuerier{ix: ix}}, nil
}

// WriteIndex serializes the FWD tree (bags, parent links, pre-computed
// contributions) to w.
func (ix *ProbTreeIndex) WriteIndex(w io.Writer) error {
	sw := snapshot.NewWriter()
	snapshot.AddProbTree(sw, probTreeToData(ix))
	_, err := sw.WriteTo(w)
	return err
}

// WriteIndex serializes the querier's shared offline index to w.
func (q *ProbTreeQuerier) WriteIndex(w io.Writer) error { return q.ix.WriteIndex(w) }

// LoadProbTreeIndex reconstructs a shared FWD index from its serialized
// form over the same graph it was built from.
func LoadProbTreeIndex(g *uncertain.Graph, rd io.Reader) (*ProbTreeIndex, error) {
	f, err := snapshot.ReadFrom(rd)
	if err != nil {
		return nil, err
	}
	d, err := snapshot.LoadProbTree(f)
	if err != nil {
		return nil, err
	}
	return probTreeIndexFromData(g, d)
}

// LoadProbTree reconstructs a ProbTree estimator from a serialized index
// over the same graph, with the given inner estimator factory (nil = MC).
func LoadProbTree(g *uncertain.Graph, rd io.Reader, seed uint64, inner InnerFactory) (*ProbTree, error) {
	ix, err := LoadProbTreeIndex(g, rd)
	if err != nil {
		return nil, err
	}
	return &ProbTree{*ix.Querier(seed, inner)}, nil
}
