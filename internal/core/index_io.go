package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"relcomp/internal/bitvec"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// Index persistence. Both index-based estimators can serialize their
// offline structures and be reconstructed against the same graph, which is
// what the paper's Fig. 13(c) "index loading time" measures: the cost of
// bringing a pre-built index into main memory before answering queries.

type bfsSharingIndexFile struct {
	Width    int
	NumEdges int
	Words    []uint64
}

// WriteIndex serializes the offline index (edge bit vectors) to w.
func (b *BFSSharing) WriteIndex(w io.Writer) error {
	return gob.NewEncoder(w).Encode(bfsSharingIndexFile{
		Width:    b.width,
		NumEdges: b.g.NumEdges(),
		Words:    b.edgeBits.Words(),
	})
}

// LoadBFSSharing reconstructs a BFSSharing estimator from a serialized
// index over the same graph it was built from.
func LoadBFSSharing(g *uncertain.Graph, rd io.Reader, seed uint64) (*BFSSharing, error) {
	var f bfsSharingIndexFile
	if err := gob.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding BFSSharing index: %w", err)
	}
	if f.NumEdges != g.NumEdges() {
		return nil, fmt.Errorf("core: index built for %d edges, graph has %d", f.NumEdges, g.NumEdges())
	}
	if f.Width <= 0 {
		return nil, fmt.Errorf("core: invalid index width %d", f.Width)
	}
	arena, err := bitvec.ArenaFromWords(f.Words, f.NumEdges, f.Width)
	if err != nil {
		return nil, fmt.Errorf("core: reconstructing BFSSharing index: %w", err)
	}
	b := &BFSSharing{g: g, width: f.Width, edgeBits: arena, rng: rng.New(seed)}
	return b, nil
}

type probTreeBagFile struct {
	Covered  int32
	Nodes    []uncertain.NodeID
	Raw      []uncertain.Edge
	Parent   int
	Children []int
	Contrib  []uncertain.Edge
}

type probTreeIndexFile struct {
	Width    int
	NumNodes int
	Root     int
	BagOf    []int32
	Bags     []probTreeBagFile
}

// WriteIndex serializes the FWD tree (bags, parent links, pre-computed
// contributions) to w.
func (pt *ProbTree) WriteIndex(w io.Writer) error {
	f := probTreeIndexFile{
		Width:    pt.width,
		NumNodes: pt.g.NumNodes(),
		Root:     pt.root,
		BagOf:    pt.bagOf,
		Bags:     make([]probTreeBagFile, len(pt.bags)),
	}
	for i, b := range pt.bags {
		f.Bags[i] = probTreeBagFile{
			Covered:  b.covered,
			Nodes:    b.nodes,
			Raw:      b.raw,
			Parent:   b.parent,
			Children: b.children,
			Contrib:  b.contrib,
		}
	}
	return gob.NewEncoder(w).Encode(f)
}

// LoadProbTree reconstructs a ProbTree estimator from a serialized index
// over the same graph, with the given inner estimator factory (nil = MC).
func LoadProbTree(g *uncertain.Graph, rd io.Reader, seed uint64, inner InnerFactory) (*ProbTree, error) {
	var f probTreeIndexFile
	if err := gob.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding ProbTree index: %w", err)
	}
	if f.NumNodes != g.NumNodes() {
		return nil, fmt.Errorf("core: index built for %d nodes, graph has %d", f.NumNodes, g.NumNodes())
	}
	if f.Root < 0 || f.Root >= len(f.Bags) {
		return nil, fmt.Errorf("core: invalid root bag %d of %d", f.Root, len(f.Bags))
	}
	name := "ProbTree"
	if inner == nil {
		inner = func(qg *uncertain.Graph, s uint64) Estimator { return NewMC(qg, s) }
	} else {
		probe := inner(uncertain.NewBuilder(1).Build(), 1)
		if probe.Name() != "MC" {
			name = "ProbTree+" + probe.Name()
		}
	}
	pt := &ProbTree{
		g:         g,
		width:     f.Width,
		inner:     inner,
		root:      f.Root,
		bagOf:     f.BagOf,
		innerName: name,
	}
	pt.bags = make([]ptBag, len(f.Bags))
	for i, b := range f.Bags {
		pt.bags[i] = ptBag{
			covered:  b.Covered,
			nodes:    b.Nodes,
			raw:      b.Raw,
			parent:   b.Parent,
			children: b.Children,
			contrib:  b.Contrib,
		}
	}
	pt.expandedStamp = make([]int32, len(pt.bags))
	pt.nodeOf = make(map[uncertain.NodeID]uncertain.NodeID)
	pt.rng = rng.New(seed)
	return pt, nil
}
