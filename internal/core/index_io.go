package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"relcomp/internal/bitvec"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// Index persistence. Both index-based estimators can serialize their
// offline structures and be reconstructed against the same graph, which is
// what the paper's Fig. 13(c) "index loading time" measures: the cost of
// bringing a pre-built index into main memory before answering queries.

type bfsSharingIndexFile struct {
	Width    int
	NumEdges int
	Words    []uint64
}

// WriteIndex serializes the offline index (edge bit vectors) to w.
func (ix *BFSIndex) WriteIndex(w io.Writer) error {
	return gob.NewEncoder(w).Encode(bfsSharingIndexFile{
		Width:    ix.width,
		NumEdges: ix.g.NumEdges(),
		Words:    ix.edgeBits.Words(),
	})
}

// WriteIndex serializes the querier's shared offline index to w.
func (q *BFSQuerier) WriteIndex(w io.Writer) error { return q.ix.WriteIndex(w) }

// LoadBFSIndex reconstructs a shared BFS Sharing index from its serialized
// form over the same graph it was built from.
func LoadBFSIndex(g *uncertain.Graph, rd io.Reader, seed uint64) (*BFSIndex, error) {
	var f bfsSharingIndexFile
	if err := gob.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding BFSSharing index: %w", err)
	}
	if f.NumEdges != g.NumEdges() {
		return nil, fmt.Errorf("core: index built for %d edges, graph has %d", f.NumEdges, g.NumEdges())
	}
	if f.Width <= 0 {
		return nil, fmt.Errorf("core: invalid index width %d", f.Width)
	}
	arena, err := bitvec.ArenaFromWords(f.Words, f.NumEdges, f.Width)
	if err != nil {
		return nil, fmt.Errorf("core: reconstructing BFSSharing index: %w", err)
	}
	return &BFSIndex{
		g:        g,
		rng:      rng.New(seed),
		width:    f.Width,
		valid:    f.Width, // a serialized index is one consistent draw
		edgeBits: arena,
	}, nil
}

// LoadBFSSharing reconstructs a BFSSharing estimator from a serialized
// index over the same graph it was built from.
func LoadBFSSharing(g *uncertain.Graph, rd io.Reader, seed uint64) (*BFSSharing, error) {
	ix, err := LoadBFSIndex(g, rd, seed)
	if err != nil {
		return nil, err
	}
	return &BFSSharing{BFSQuerier{ix: ix}}, nil
}

type probTreeBagFile struct {
	Covered  int32
	Nodes    []uncertain.NodeID
	Raw      []uncertain.Edge
	Parent   int
	Children []int
	Contrib  []uncertain.Edge
}

type probTreeIndexFile struct {
	Width    int
	NumNodes int
	Root     int
	BagOf    []int32
	Bags     []probTreeBagFile
}

// WriteIndex serializes the FWD tree (bags, parent links, pre-computed
// contributions) to w.
func (ix *ProbTreeIndex) WriteIndex(w io.Writer) error {
	f := probTreeIndexFile{
		Width:    ix.width,
		NumNodes: ix.g.NumNodes(),
		Root:     ix.root,
		BagOf:    ix.bagOf,
		Bags:     make([]probTreeBagFile, len(ix.bags)),
	}
	for i, b := range ix.bags {
		f.Bags[i] = probTreeBagFile{
			Covered:  b.covered,
			Nodes:    b.nodes,
			Raw:      b.raw,
			Parent:   b.parent,
			Children: b.children,
			Contrib:  b.contrib,
		}
	}
	return gob.NewEncoder(w).Encode(f)
}

// WriteIndex serializes the querier's shared offline index to w.
func (q *ProbTreeQuerier) WriteIndex(w io.Writer) error { return q.ix.WriteIndex(w) }

// LoadProbTreeIndex reconstructs a shared FWD index from its serialized
// form over the same graph it was built from.
func LoadProbTreeIndex(g *uncertain.Graph, rd io.Reader) (*ProbTreeIndex, error) {
	var f probTreeIndexFile
	if err := gob.NewDecoder(rd).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding ProbTree index: %w", err)
	}
	if f.NumNodes != g.NumNodes() {
		return nil, fmt.Errorf("core: index built for %d nodes, graph has %d", f.NumNodes, g.NumNodes())
	}
	if f.Root < 0 || f.Root >= len(f.Bags) {
		return nil, fmt.Errorf("core: invalid root bag %d of %d", f.Root, len(f.Bags))
	}
	ix := &ProbTreeIndex{
		g:     g,
		width: f.Width,
		root:  f.Root,
		bagOf: f.BagOf,
		bags:  make([]ptBag, len(f.Bags)),
	}
	for i, b := range f.Bags {
		ix.bags[i] = ptBag{
			covered:  b.Covered,
			nodes:    b.Nodes,
			raw:      b.Raw,
			parent:   b.Parent,
			children: b.Children,
			contrib:  b.Contrib,
		}
	}
	return ix, nil
}

// LoadProbTree reconstructs a ProbTree estimator from a serialized index
// over the same graph, with the given inner estimator factory (nil = MC).
func LoadProbTree(g *uncertain.Graph, rd io.Reader, seed uint64, inner InnerFactory) (*ProbTree, error) {
	ix, err := LoadProbTreeIndex(g, rd)
	if err != nil {
		return nil, err
	}
	return &ProbTree{*ix.Querier(seed, inner)}, nil
}
