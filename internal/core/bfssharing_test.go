package core

import (
	"bytes"
	"math"
	"testing"

	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// TestBFSSharingCascade exercises the cascading update of Algorithm 3: in
// this diamond-with-back-edge graph, node 1 is visited before node 2, but
// worlds reaching 1 only via 2 -> 1 must still be credited to 1's
// downstream edge, which requires the cascade.
func TestBFSSharingCascade(t *testing.T) {
	// s=0, t=3. Paths: 0->1->3 and 0->2->1->3 (via back edge 2->1).
	g := testGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.3},
		{From: 0, To: 2, P: 0.9},
		{From: 2, To: 1, P: 0.9},
		{From: 1, To: 3, P: 0.8},
	})
	want, err := exact.Factoring(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBFSSharing(g, 3, 200000)
	got := bs.Estimate(0, 3, 200000)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("cascade graph: R = %.4f, exact %.4f", got, want)
	}
}

// TestBFSSharingCycle: reachability through a directed cycle must be
// handled by the fixpoint propagation without hanging.
func TestBFSSharingCycle(t *testing.T) {
	g := testGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 2, P: 0.9},
		{From: 2, To: 1, P: 0.9}, // cycle 1 <-> 2
		{From: 2, To: 3, P: 0.9},
	})
	want, err := exact.Factoring(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBFSSharing(g, 4, 100000)
	got := bs.Estimate(0, 3, 100000)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("cycle graph: R = %.4f, exact %.4f", got, want)
	}
}

// TestBFSSharingPrefix: estimates with k below the index width use only
// the first k worlds and remain unbiased.
func TestBFSSharingPrefix(t *testing.T) {
	r := rng.New(41)
	g := randomTestGraph(r, 8, 16)
	want, err := exact.Factoring(g, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBFSSharing(g, 5, 50000)
	got := bs.Estimate(0, 7, 20000) // k < width
	if math.Abs(got-want) > 0.03 {
		t.Errorf("prefix estimate: R = %.4f, exact %.4f", got, want)
	}
}

// TestBFSSharingResampleIndependence: resampling redraws the worlds, so
// two estimates with different resamples differ (almost surely) while both
// staying near the truth.
func TestBFSSharingResampleIndependence(t *testing.T) {
	r := rng.New(43)
	g := randomTestGraph(r, 10, 25)
	bs := NewBFSSharing(g, 7, 2000)
	a := bs.Estimate(0, 9, 2000)
	bs.Resample()
	b := bs.Estimate(0, 9, 2000)
	if a == b {
		// Identical estimates after a resample are possible but unlikely
		// unless reliability is degenerate.
		if a != 0 && a != 1 {
			t.Errorf("estimates identical across resample: %v", a)
		}
	}
	bs.ResamplePrefix(500)
	c := bs.Estimate(0, 9, 500)
	if c < 0 || c > 1 {
		t.Errorf("prefix-resampled estimate %v out of range", c)
	}
}

// TestBFSSharingWidthExceeded: asking for more samples than the index
// width must panic (the index simply has no more worlds).
func TestBFSSharingWidthExceeded(t *testing.T) {
	g := testGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	bs := NewBFSSharing(g, 1, 64)
	defer func() {
		if recover() == nil {
			t.Error("Estimate beyond index width did not panic")
		}
	}()
	bs.Estimate(0, 1, 65)
}

// TestBFSSharingIndexRoundTrip: the serialized index reproduces identical
// estimates, and loading against the wrong graph fails.
func TestBFSSharingIndexRoundTrip(t *testing.T) {
	r := rng.New(47)
	g := randomTestGraph(r, 12, 30)
	bs := NewBFSSharing(g, 9, 1024)
	var buf bytes.Buffer
	if err := bs.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBFSSharing(g, &buf, 9)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Width() != bs.Width() {
		t.Fatalf("width %d after load, want %d", loaded.Width(), bs.Width())
	}
	if a, b := bs.Estimate(0, 11, 1024), loaded.Estimate(0, 11, 1024); a != b {
		t.Errorf("estimates diverge after round trip: %v vs %v", a, b)
	}

	other := randomTestGraph(rng.New(48), 12, 29)
	if other.NumEdges() != g.NumEdges() {
		buf.Reset()
		if err := bs.WriteIndex(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBFSSharing(other, &buf, 9); err == nil {
			t.Error("LoadBFSSharing accepted an index for a different graph")
		}
	}
}

// TestBFSSharingIndexBits: the sampled bit densities match the edge
// probabilities (law of large numbers over the index width).
func TestBFSSharingIndexBits(t *testing.T) {
	g := testGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 0.25},
		{From: 1, To: 2, P: 0.75},
	})
	const width = 100000
	bs := NewBFSSharing(g, 11, width)
	for id := 0; id < g.NumEdges(); id++ {
		p := g.Edge(uncertain.EdgeID(id)).P
		density := float64(bs.ix.edgeBits.Vec(id).Count()) / width
		if math.Abs(density-p) > 0.01 {
			t.Errorf("edge %d: bit density %.4f, probability %.4f", id, density, p)
		}
	}
}

// TestCountPrefix checks the masked popcount helper at word boundaries.
func TestCountPrefix(t *testing.T) {
	v := make([]uint64, 2)
	v[0] = ^uint64(0)
	v[1] = 0b1011
	cases := []struct{ k, want int }{
		{0, 0}, {1, 1}, {63, 63}, {64, 64}, {65, 65}, {66, 66}, {67, 66}, {68, 67}, {128, 67},
	}
	for _, c := range cases {
		if got := countPrefix(v, c.k); got != c.want {
			t.Errorf("countPrefix(k=%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// TestResamplePrefixTracksValidWidth: ResamplePrefix(k) must leave the
// index tail untouched (it belongs to the previous draw) and shrink the
// valid prefix to k, and a subsequent Estimate with a larger budget must
// refresh the missing range before reading it — never mixing freshly
// drawn worlds with the previous draw's tail, and never reading the
// zeroed slack of the prefix draw's final word.
func TestResamplePrefixTracksValidWidth(t *testing.T) {
	r := rng.New(99)
	g := randomTestGraph(r, 30, 80) // enough edges that a redraw is visible
	const width = 192               // three words per edge vector
	bs := NewBFSSharing(g, 5, width)
	if got := bs.Index().ValidPrefix(); got != width {
		t.Fatalf("fresh index valid prefix %d, want %d", got, width)
	}
	snapshot := func() []uint64 {
		return append([]uint64(nil), bs.ix.edgeBits.Words()...)
	}
	words := func(ws []uint64, edge, word int) uint64 { return ws[edge*3+word] }

	before := snapshot()
	bs.ResamplePrefix(64)
	if got := bs.Index().ValidPrefix(); got != 64 {
		t.Fatalf("valid prefix after ResamplePrefix(64) = %d, want 64", got)
	}
	mid := snapshot()
	prefixChanged := false
	for e := 0; e < g.NumEdges(); e++ {
		if words(mid, e, 0) != words(before, e, 0) {
			prefixChanged = true
		}
		// The tail is the previous draw and must be byte-identical — the
		// old implementation zeroed the rest of the last redrawn word.
		for w := 1; w < 3; w++ {
			if words(mid, e, w) != words(before, e, w) {
				t.Fatalf("edge %d word %d disturbed by prefix resample", e, w)
			}
		}
	}
	if !prefixChanged {
		t.Fatal("ResamplePrefix(64) did not redraw the prefix")
	}

	// An estimate above the valid prefix refreshes [64, 192) first.
	if r := bs.Estimate(0, 1, width); r < 0 || r > 1 {
		t.Fatalf("estimate %v out of range", r)
	}
	if got := bs.Index().ValidPrefix(); got != width {
		t.Fatalf("valid prefix after Estimate(%d) = %d, want %d", width, got, width)
	}
	after := snapshot()
	tailChanged := false
	for e := 0; e < g.NumEdges(); e++ {
		if words(after, e, 0) != words(mid, e, 0) {
			t.Fatalf("edge %d prefix word redrawn by the tail refresh", e)
		}
		for w := 1; w < 3; w++ {
			if words(after, e, w) != words(mid, e, w) {
				tailChanged = true
			}
		}
	}
	if !tailChanged {
		t.Fatal("Estimate above the valid prefix did not refresh the stale tail")
	}
}

// TestSharedIndexManyQueriers: independent queriers over one shared index
// must agree with a privately owned estimator bit for bit, and report the
// identical index object.
func TestSharedIndexManyQueriers(t *testing.T) {
	r := rng.New(7)
	g := randomTestGraph(r, 40, 120)
	const width = 300
	owned := NewBFSSharing(g, 11, width)
	ix := NewBFSIndex(g, 11, width)
	q1, q2 := ix.Querier(), ix.Querier()
	if q1.Index() != ix || q2.Index() != ix {
		t.Fatal("queriers do not report the shared index")
	}
	for s := uncertain.NodeID(0); s < 5; s++ {
		for d := uncertain.NodeID(5); d < 10; d++ {
			want := owned.Estimate(s, d, width)
			if got := q1.Estimate(s, d, width); got != want {
				t.Fatalf("querier 1 (%d,%d) = %v, owned = %v", s, d, got, want)
			}
			if got := q2.Estimate(s, d, width); got != want {
				t.Fatalf("querier 2 (%d,%d) = %v, owned = %v", s, d, got, want)
			}
		}
	}
	if q1.MemoryBytes() != ix.Bytes()+q1.ScratchBytes() {
		t.Errorf("MemoryBytes %d != index %d + scratch %d",
			q1.MemoryBytes(), ix.Bytes(), q1.ScratchBytes())
	}
}
