package core

import (
	"fmt"

	"relcomp/internal/bitvec"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// BFSSharing is the index-based estimator of Zhu et al. (ICDM 2015),
// Algorithms 2–3 of the paper. Offline it samples L possible worlds and
// stores, per edge, an L-bit vector whose i-th bit says whether the edge
// exists in world i. Online, an s-t query runs a single BFS over the
// compact structure, carrying per-node L-bit reachability vectors and
// performing the cascading updates of Algorithm 3; the estimate is the
// fraction of set bits in the target's vector.
//
// As the paper's complexity correction establishes, the online time is
// O(K(m+n)) — NOT independent of K — because each node and edge can be
// revisited up to K times by cascading updates, and no early termination is
// possible.
type BFSSharing struct {
	g   *uncertain.Graph
	rng *rng.Source

	width    int // L: bits sampled per edge in the index
	edgeBits *bitvec.Arena

	// Online scratch, allocated on first query (the paper counts node
	// vectors as online memory).
	nodeBits  *bitvec.Arena
	inSet     []bool
	worklist  []uncertain.NodeID
	cascadeQ  []uncertain.NodeID
	buildSecs float64
}

// NewBFSSharing builds the offline index with width pre-sampled possible
// worlds (the paper uses a safe bound L=1500 since the convergence K is not
// known a priori). Estimate may then be called with any k <= width.
func NewBFSSharing(g *uncertain.Graph, seed uint64, width int) *BFSSharing {
	if width <= 0 {
		panic(fmt.Sprintf("core: BFSSharing width %d must be positive", width))
	}
	b := &BFSSharing{
		g:     g,
		rng:   rng.New(seed),
		width: width,
	}
	b.buildIndex()
	return b
}

// buildIndex (re)samples every edge's bit vector: bit i of edge e is set
// with probability P(e), independently.
func (b *BFSSharing) buildIndex() {
	if b.edgeBits == nil {
		b.edgeBits = bitvec.NewArena(b.g.NumEdges(), b.width)
	}
	b.resampleBits(b.width)
}

// resampleBits redraws the first k bits of every edge vector. Sampling
// uses geometric skips between set bits, so an edge of probability p costs
// O(p·k) rather than O(k) — this makes low-probability datasets (NetHEPT)
// orders of magnitude cheaper to index while producing exactly independent
// Bernoulli(p) bits.
func (b *BFSSharing) resampleBits(k int) {
	g := b.g
	words := bitvec.WordsFor(k)
	for id := 0; id < g.NumEdges(); id++ {
		p := g.Edge(uncertain.EdgeID(id)).P
		v := b.edgeBits.Vec(id)[:words]
		v.Zero()
		for i := b.rng.Geometric(p); i < k; i += 1 + b.rng.Geometric(p) {
			v.Set(i)
		}
	}
}

// Resample regenerates the whole index. The paper (Table 15) charges this
// per query when successive queries must be independent.
func (b *BFSSharing) Resample() { b.resampleBits(b.width) }

// ResamplePrefix regenerates only the first k bits of the index, which is
// all a subsequent Estimate with the same k will read. The convergence
// harness uses this to avoid redrawing the full safe-bound width between
// repeated runs at small K.
func (b *BFSSharing) ResamplePrefix(k int) {
	if k > b.width {
		k = b.width
	}
	b.resampleBits(k)
}

// Width returns the index width L.
func (b *BFSSharing) Width() int { return b.width }

// Name implements Estimator.
func (b *BFSSharing) Name() string { return "BFSSharing" }

// Reseed implements Seeder. Reseeding alone does not change the index; call
// Resample afterwards to draw new worlds.
func (b *BFSSharing) Reseed(seed uint64) { b.rng.Seed(seed) }

// Estimate implements Estimator. k must not exceed the index width; the
// query uses the first k pre-sampled worlds.
func (b *BFSSharing) Estimate(s, t uncertain.NodeID, k int) float64 {
	mustValidQuery(b.g, s, t, k)
	if k > b.width {
		panic(fmt.Sprintf("core: BFSSharing asked for %d samples but index width is %d", k, b.width))
	}
	if s == t {
		return 1
	}
	g := b.g
	if b.nodeBits == nil {
		b.nodeBits = bitvec.NewArena(g.NumNodes(), b.width)
		b.inSet = make([]bool, g.NumNodes())
	}

	// Only the first words covering k bits participate; the final word is
	// masked at counting time.
	words := bitvec.WordsFor(k)
	vec := func(arena *bitvec.Arena, i int) bitvec.Vector {
		return arena.Vec(i)[:words]
	}

	// Reset the node vectors and visited set for the touched nodes of the
	// previous query.
	b.nodeBits.ZeroAll()
	for i := range b.inSet {
		b.inSet[i] = false
	}

	// Is <- all ones over the first k bits.
	is := b.nodeBits.Vec(int(s))
	is.Fill(k)
	b.inSet[s] = true

	// Worklist BFS (Algorithm 2).
	wl := b.worklist[:0]
	wl = append(wl, g.OutNeighbors(s)...)
	for head := 0; head < len(wl); head++ {
		v := wl[head]
		if b.inSet[v] {
			continue
		}
		b.inSet[v] = true
		iv := vec(b.nodeBits, int(v))

		// Absorb all visited in-neighbors: Iv |= Iin & Ie(in,v).
		ins := g.InNeighbors(v)
		ids := g.InEdgeIDs(v)
		for i, in := range ins {
			if b.inSet[in] {
				bitvec.OrAndInto(iv, vec(b.nodeBits, int(in)), vec(b.edgeBits, int(ids[i])))
			}
		}

		outs := g.OutNeighbors(v)
		oids := g.OutEdgeIDs(v)
		for i, out := range outs {
			if !b.inSet[out] {
				wl = append(wl, out)
			} else {
				b.cascadeUpdate(v, out, oids[i], words)
			}
		}
	}
	b.worklist = wl

	it := vec(b.nodeBits, int(t))
	return float64(countPrefix(it, k)) / float64(k)
}

// cascadeUpdate implements Algorithm 3: after Iv gained worlds, push them
// through already-visited out-neighbors until a fixpoint. Termination is
// guaranteed because vectors only ever gain bits.
func (b *BFSSharing) cascadeUpdate(v, u uncertain.NodeID, e uncertain.EdgeID, words int) {
	g := b.g
	vec := func(arena *bitvec.Arena, i int) bitvec.Vector {
		return arena.Vec(i)[:words]
	}
	if !bitvec.OrAndInto(vec(b.nodeBits, int(u)), vec(b.nodeBits, int(v)), vec(b.edgeBits, int(e))) {
		return
	}
	q := b.cascadeQ[:0]
	q = append(q, u)
	for head := 0; head < len(q); head++ {
		w := q[head]
		iw := vec(b.nodeBits, int(w))
		outs := g.OutNeighbors(w)
		oids := g.OutEdgeIDs(w)
		for i, x := range outs {
			if !b.inSet[x] {
				continue
			}
			if bitvec.OrAndInto(vec(b.nodeBits, int(x)), iw, vec(b.edgeBits, int(oids[i]))) {
				q = append(q, x)
			}
		}
	}
	b.cascadeQ = q
}

// countPrefix counts set bits among the first k bits of v.
func countPrefix(v bitvec.Vector, k int) int {
	full := k >> 6
	n := 0
	for i := 0; i < full; i++ {
		n += onesCount(v[i])
	}
	if rem := uint(k) & 63; rem != 0 {
		n += onesCount(v[full] & ((1 << rem) - 1))
	}
	return n
}

func onesCount(w uint64) int {
	// Delegate to math/bits via bitvec to keep a single implementation.
	return bitvec.Vector{w}.Count()
}

// IndexBytes returns the size of the offline index (edge bit vectors).
func (b *BFSSharing) IndexBytes() int64 { return b.edgeBits.Bytes() }

// MemoryBytes implements MemoryReporter: the loaded index plus the online
// node vectors and BFS state.
func (b *BFSSharing) MemoryBytes() int64 {
	m := b.IndexBytes()
	if b.nodeBits != nil {
		m += b.nodeBits.Bytes()
		m += int64(len(b.inSet))
	}
	m += int64(cap(b.worklist)+cap(b.cascadeQ)) * 4
	return m
}
