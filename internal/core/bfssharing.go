package core

import (
	"fmt"
	"math/bits"

	"relcomp/internal/bitvec"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// BFS Sharing is the index-based estimator of Zhu et al. (ICDM 2015),
// Algorithms 2–3 of the paper. Offline it samples L possible worlds and
// stores, per edge, an L-bit vector whose i-th bit says whether the edge
// exists in world i. Online, an s-t query runs a single BFS over the
// compact structure, carrying per-node L-bit reachability vectors and
// performing the cascading updates of Algorithm 3; the estimate is the
// fraction of set bits in the target's vector.
//
// As the paper's complexity correction establishes, the online time is
// O(K(m+n)) — NOT independent of K — because each node and edge can be
// revisited up to K times by cascading updates, and no early termination is
// possible.
//
// The implementation splits the estimator along the paper's offline/online
// boundary: BFSIndex is the offline product (the edge bit-vector arena,
// built once and read-only afterwards), and BFSQuerier is a lightweight
// online handle (node vectors, visited set, worklists) over an index. Any
// number of queriers may share one index from concurrent goroutines, which
// is what lets a serving layer keep index memory O(1) in its worker count;
// each individual querier serves one goroutine at a time. BFSSharing
// bundles a privately owned index with one querier, preserving the
// original single-instance API (including resampling) for the harness and
// the convergence sweeps.

// BFSIndex is the offline BFS Sharing index: per edge, the first `width`
// bits record the edge's existence in `width` independently pre-sampled
// possible worlds (the paper uses a safe bound L = 1500 since the
// convergence K is not known a priori).
//
// Once built, the index is read-only for queriers and safe to share. The
// resampling methods (Resample, ResamplePrefix, and the lazy tail refresh
// an Estimate above the valid prefix triggers) mutate it and require the
// caller to own the index exclusively — they exist for the convergence
// harness, which charges an index redraw between independent runs, not for
// shared serving.
type BFSIndex struct {
	g *uncertain.Graph

	// Row streams are counter-based: every edge's bit vector is drawn from
	// its own stream seeded by (seed, gen, edge id, range start), so one
	// edge's worlds can be redrawn — after a probability mutation — without
	// touching, or even reading, any other row. gen distinguishes
	// independent full redraws (the convergence harness charges one per
	// run); the engine never resamples, so its indexes stay at gen 0 and an
	// incrementally repaired index is bit-identical to a fresh build over
	// the mutated graph.
	seed uint64
	gen  uint64
	row  *rng.Source // reusable stream, reseeded per row while (re)building

	// reseeded marks a Reseed whose redraw has not happened yet: the next
	// Resample keeps gen 0 so Reseed(s)+Resample reproduces NewBFSIndex(s)
	// exactly, as the sequential-stream implementation did.
	reseeded bool

	width    int // L: bits sampled per edge in the index
	valid    int // bits [0, valid) are from the latest draw
	edgeBits *bitvec.Arena

	// frozen marks an index whose words alias a read-only memory mapping
	// (snapshot load): resampling would write through the mapping and
	// fault, so the mutators refuse up front with a clear message.
	frozen bool
}

// NewBFSIndex samples the offline index: bit i of edge e is set with
// probability P(e), independently, for i < width.
func NewBFSIndex(g *uncertain.Graph, seed uint64, width int) *BFSIndex {
	if width <= 0 {
		panic(fmt.Sprintf("core: BFSSharing width %d must be positive", width))
	}
	ix := &BFSIndex{
		g:        g,
		seed:     seed,
		row:      rng.New(0),
		width:    width,
		edgeBits: bitvec.NewArena(g.NumEdges(), width),
	}
	ix.resampleRange(0, width)
	ix.valid = width
	return ix
}

// rowSeed keys edge id's stream for a draw starting at bit lo. The range
// start participates so a lazy tail refresh ([valid, k), see ensureValid)
// and a prefix draw ([0, k)) are independent rather than replays.
func (ix *BFSIndex) rowSeed(id, lo int) uint64 {
	return mix(ix.seed, ix.gen, uint64(uint32(id))<<32|uint64(uint32(lo)))
}

// resampleRange redraws bits [lo, hi) of every edge vector, leaving bits
// outside the range untouched. Sampling delegates to rng.FillMask — the
// same geometric-skip mask generator PackMC uses online — so an edge of
// probability p costs O((hi-lo)·min(p, 1-p)) rather than O(hi-lo) while
// producing exactly independent Bernoulli(p) bits.
func (ix *BFSIndex) resampleRange(lo, hi int) {
	if ix.frozen {
		panic("core: BFSSharing index loaded from a read-only snapshot mapping is immutable; rebuild with NewBFSIndex to resample")
	}
	g := ix.g
	for id := 0; id < g.NumEdges(); id++ {
		ix.row.Seed(ix.rowSeed(id, lo))
		ix.row.FillMask(ix.edgeBits.Vec(id), lo, hi, g.Edge(uncertain.EdgeID(id)).P)
	}
}

// repairRow redraws one edge's full row from its counter-based stream —
// exactly the bits a from-scratch build at the current (seed, gen) would
// give it.
func (ix *BFSIndex) repairRow(id int) {
	ix.row.Seed(ix.rowSeed(id, 0))
	ix.row.FillMask(ix.edgeBits.Vec(id), 0, ix.width, ix.g.Edge(uncertain.EdgeID(id)).P)
}

// Repair returns a new index over newG in which only the rows named in
// changed are redrawn; every other row's words are copied verbatim.
// newG must preserve ix's edge ids (it may append new ones past the old
// range — ApplyDeltas guarantees both). The receiver is not modified, so
// Repair works on a frozen snapshot-mapped index too; the result owns its
// words and is never frozen. At gen 0 — the engine's case — the result is
// bit-identical to NewBFSIndex(newG, seed, width).
func (ix *BFSIndex) Repair(newG *uncertain.Graph, changed []uncertain.EdgeID) *BFSIndex {
	oldM, newM := ix.g.NumEdges(), newG.NumEdges()
	if newM < oldM {
		panic("core: BFSSharing repair target graph has fewer edges than the index")
	}
	out := &BFSIndex{
		g:        newG,
		seed:     ix.seed,
		gen:      ix.gen,
		row:      rng.New(0),
		width:    ix.width,
		valid:    ix.valid,
		edgeBits: bitvec.NewArena(newM, ix.width),
	}
	for id := 0; id < oldM; id++ {
		copy(out.edgeBits.Vec(id), ix.edgeBits.Vec(id))
	}
	for id := oldM; id < newM; id++ {
		out.repairRow(id)
	}
	for _, id := range changed {
		if int(id) < oldM {
			out.repairRow(int(id))
		}
	}
	return out
}

// Resample regenerates the whole index. The paper (Table 15) charges this
// per query when successive queries must be independent. Requires
// exclusive ownership of the index.
func (ix *BFSIndex) Resample() {
	ix.nextGen()
	ix.resampleRange(0, ix.width)
	ix.valid = ix.width
}

// nextGen advances to the next independent draw, except immediately after
// a Reseed, whose first redraw is the new seed's canonical gen-0 draw.
func (ix *BFSIndex) nextGen() {
	if ix.reseeded {
		ix.reseeded = false
		return
	}
	ix.gen++
}

// ResamplePrefix regenerates only the first k bits of the index, which is
// all a subsequent Estimate with the same k will read. The convergence
// harness uses this to avoid redrawing the full safe-bound width between
// repeated runs at small K. Bits at or beyond k keep the previous draw;
// the valid prefix shrinks to k, and a later Estimate with a larger budget
// refreshes the missing range before reading it (see ensureValid) so fresh
// and stale worlds are never mixed in one estimate. Requires exclusive
// ownership of the index.
func (ix *BFSIndex) ResamplePrefix(k int) {
	if k > ix.width {
		k = ix.width
	}
	if k < 0 {
		k = 0
	}
	ix.nextGen()
	ix.resampleRange(0, k)
	ix.valid = k
}

// ensureValid extends the valid prefix to cover k bits, redrawing the
// stale range [valid, k) left behind by an earlier ResamplePrefix. The
// refresh mutates the index, so — like ResamplePrefix itself — it only
// ever runs under exclusive ownership: an index that was never
// prefix-resampled is fully valid and this is a no-op.
func (ix *BFSIndex) ensureValid(k int) {
	if k <= ix.valid {
		return
	}
	ix.resampleRange(ix.valid, k)
	ix.valid = k
}

// Width returns the index width L.
func (ix *BFSIndex) Width() int { return ix.width }

// Graph returns the graph the index was built over.
func (ix *BFSIndex) Graph() *uncertain.Graph { return ix.g }

// ValidPrefix returns how many leading bits of every edge vector belong to
// the latest draw. It equals Width unless ResamplePrefix shrank it.
func (ix *BFSIndex) ValidPrefix() int { return ix.valid }

// Bytes returns the size of the index's edge bit-vector arena.
func (ix *BFSIndex) Bytes() int64 { return ix.edgeBits.Bytes() }

// Querier returns a fresh online handle over the index. The handle holds
// only the online scratch (node vectors, visited set, worklists), so it is
// cheap to construct; many handles may share one index, each serving a
// single goroutine.
func (ix *BFSIndex) Querier() *BFSQuerier { return &BFSQuerier{ix: ix} }

// BFSQuerier is the online half of BFS Sharing: per-borrower scratch over
// a shared read-only BFSIndex. It implements Estimator. Not safe for
// concurrent use — one querier per goroutine; the shared index is.
type BFSQuerier struct {
	ix *BFSIndex

	// Online scratch, allocated on first query (the paper counts node
	// vectors as online memory).
	nodeBits *bitvec.Arena
	inSet    []bool
	visited  []uncertain.NodeID // nodes marked in inSet by the last run
	worklist []uncertain.NodeID
	cascadeQ []uncertain.NodeID
}

// Index returns the shared offline index this querier reads.
func (q *BFSQuerier) Index() *BFSIndex { return q.ix }

// Width returns the index width L.
func (q *BFSQuerier) Width() int { return q.ix.width }

// Name implements Estimator.
func (q *BFSQuerier) Name() string { return "BFSSharing" }

// Estimate implements Estimator. k must not exceed the index width; the
// query uses the first k pre-sampled worlds.
func (q *BFSQuerier) Estimate(s, t uncertain.NodeID, k int) float64 {
	ix := q.ix
	mustValidQuery(ix.g, s, t, k)
	if k > ix.width {
		panic(fmt.Sprintf("core: BFSSharing asked for %d samples but index width is %d", k, ix.width))
	}
	ix.ensureValid(k)
	if s == t {
		return 1
	}
	q.runRange(s, 0, k)
	return float64(countPrefix(q.nodeBits.Vec(int(t)), k)) / float64(k)
}

// runRange runs the shared BFS of Algorithm 2 restricted to the
// pre-sampled worlds [lo, hi): afterwards, bits [lo, hi) of every visited
// node's vector hold its reachability in those worlds. Each world's bit
// column evolves independently under the OR-AND updates, so a run over a
// sub-range computes exactly the restriction of a full run — which is what
// lets the incremental samplers advance world ranges chunk by chunk and
// add up counts bit-identically to one full traversal. Bits outside
// [lo, hi) inside the covering words are left meaningless (their source
// bit is never seeded) and must not be read.
func (q *BFSQuerier) runRange(s uncertain.NodeID, lo, hi int) {
	ix := q.ix
	g := ix.g
	if q.nodeBits == nil {
		q.nodeBits = bitvec.NewArena(g.NumNodes(), ix.width)
		q.inSet = make([]bool, g.NumNodes())
	}

	// Only the words covering [lo, hi) participate; boundary words are
	// masked at counting time.
	loWord, hiWord := lo>>6, bitvec.WordsFor(hi)
	vec := func(arena *bitvec.Arena, i int) bitvec.Vector {
		return arena.Vec(i)[loWord:hiWord]
	}

	// Reset the node vectors and visited set for the touched nodes of the
	// previous run.
	q.nodeBits.ZeroAll()
	for i := range q.inSet {
		q.inSet[i] = false
	}

	// Is <- all ones over the worlds of the range.
	q.nodeBits.Vec(int(s)).SetRange(lo, hi)
	q.inSet[s] = true
	q.visited = append(q.visited[:0], s)

	// Worklist BFS (Algorithm 2).
	wl := q.worklist[:0]
	wl = append(wl, g.OutNeighbors(s)...)
	for head := 0; head < len(wl); head++ {
		v := wl[head]
		if q.inSet[v] {
			continue
		}
		q.inSet[v] = true
		q.visited = append(q.visited, v)
		iv := vec(q.nodeBits, int(v))

		// Absorb all visited in-neighbors: Iv |= Iin & Ie(in,v).
		ins := g.InNeighbors(v)
		ids := g.InEdgeIDs(v)
		for i, in := range ins {
			if q.inSet[in] {
				bitvec.OrAndInto(iv, vec(q.nodeBits, int(in)), vec(ix.edgeBits, int(ids[i])))
			}
		}

		outs := g.OutNeighbors(v)
		oids := g.OutEdgeIDs(v)
		for i, out := range outs {
			if !q.inSet[out] {
				wl = append(wl, out)
			} else {
				q.cascadeUpdate(v, out, oids[i], loWord, hiWord)
			}
		}
	}
	q.worklist = wl
}

// cascadeUpdate implements Algorithm 3: after Iv gained worlds, push them
// through already-visited out-neighbors until a fixpoint. Termination is
// guaranteed because vectors only ever gain bits.
func (q *BFSQuerier) cascadeUpdate(v, u uncertain.NodeID, e uncertain.EdgeID, loWord, hiWord int) {
	g := q.ix.g
	vec := func(arena *bitvec.Arena, i int) bitvec.Vector {
		return arena.Vec(i)[loWord:hiWord]
	}
	if !bitvec.OrAndInto(vec(q.nodeBits, int(u)), vec(q.nodeBits, int(v)), vec(q.ix.edgeBits, int(e))) {
		return
	}
	queue := q.cascadeQ[:0]
	queue = append(queue, u)
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		iw := vec(q.nodeBits, int(w))
		outs := g.OutNeighbors(w)
		oids := g.OutEdgeIDs(w)
		for i, x := range outs {
			if !q.inSet[x] {
				continue
			}
			if bitvec.OrAndInto(vec(q.nodeBits, int(x)), iw, vec(q.ix.edgeBits, int(oids[i]))) {
				queue = append(queue, x)
			}
		}
	}
	q.cascadeQ = queue
}

// Sampler implements IncrementalEstimator. Each Advance runs the shared
// BFS over the next world range of the pre-sampled index, so Advance(a);
// Advance(b) accumulates exactly the hit count Estimate(s, t, a+b) counts
// over worlds [0, a+b). The index width caps the session.
func (q *BFSQuerier) Sampler(s, t uncertain.NodeID) Sampler {
	mustValidQuery(q.ix.g, s, t, 1)
	if s == t {
		return &trivialSampler{estimate: 1}
	}
	return &bfsSampler{q: q, s: s, t: t}
}

type bfsSampler struct {
	q       *BFSQuerier
	s, t    uncertain.NodeID
	n, hits int
}

func (x *bfsSampler) Advance(dk int) {
	q := x.q
	checkAdvance(dk, x.n, q.ix.width)
	if dk == 0 {
		return
	}
	lo, hi := x.n, x.n+dk
	q.ix.ensureValid(hi)
	q.runRange(x.s, lo, hi)
	x.hits += countRange(q.nodeBits.Vec(int(x.t)), lo, hi)
	x.n = hi
}

func (x *bfsSampler) Snapshot() SampleSnapshot { return binomialSnapshot(x.hits, x.n, x.q.ix.width) }

// AllSampler implements SourceSampler: the anytime form of EstimateAll.
// Each Advance runs one shared traversal over the next world range and
// accumulates every visited node's hit count, so after n total samples
// SnapshotOf(t) matches EstimateAll(s, n)[t] bit for bit.
func (q *BFSQuerier) AllSampler(s uncertain.NodeID) MultiSampler {
	mustValidQuery(q.ix.g, s, s, 1)
	return &bfsAllSampler{q: q, s: s, counts: make([]int64, q.ix.g.NumNodes())}
}

type bfsAllSampler struct {
	q      *BFSQuerier
	s      uncertain.NodeID
	n      int
	counts []int64
}

func (a *bfsAllSampler) Advance(dk int) {
	q := a.q
	checkAdvance(dk, a.n, q.ix.width)
	if dk == 0 {
		return
	}
	lo, hi := a.n, a.n+dk
	q.ix.ensureValid(hi)
	q.runRange(a.s, lo, hi)
	// Only the nodes the traversal visited can hold worlds; scanning the
	// compact visited list keeps a chunk at O(visited), not O(NumNodes).
	for _, v := range q.visited {
		if v != a.s {
			a.counts[v] += int64(countRange(q.nodeBits.Vec(int(v)), lo, hi))
		}
	}
	a.n = hi
}

func (a *bfsAllSampler) N() int   { return a.n }
func (a *bfsAllSampler) Cap() int { return a.q.ix.width }

func (a *bfsAllSampler) SnapshotOf(t uncertain.NodeID) SampleSnapshot {
	if t == a.s {
		return SampleSnapshot{Estimate: 1, N: a.n, Cap: a.q.ix.width}
	}
	return binomialSnapshot(int(a.counts[t]), a.n, a.q.ix.width)
}

var (
	_ IncrementalEstimator = (*BFSQuerier)(nil)
	_ SourceSampler        = (*BFSQuerier)(nil)
)

// countRange counts set bits among bits [lo, hi) of v.
func countRange(v bitvec.Vector, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	if loW == hiW {
		return bits.OnesCount64(v[loW] >> (uint(lo) & 63) & bitvec.LowBits(hi-lo))
	}
	n := bits.OnesCount64(v[loW] >> (uint(lo) & 63))
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(v[w])
	}
	return n + bits.OnesCount64(v[hiW]&bitvec.LowBits(hi-hiW*64))
}

// countPrefix counts set bits among the first k bits of v. It calls
// math/bits directly — wrapping each word in a one-element bitvec.Vector
// just to count it would allocate in the per-query hot path.
func countPrefix(v bitvec.Vector, k int) int {
	full := k >> 6
	n := 0
	for i := 0; i < full; i++ {
		n += bits.OnesCount64(v[i])
	}
	if rem := k & 63; rem != 0 {
		n += bits.OnesCount64(v[full] & bitvec.LowBits(rem))
	}
	return n
}

// IndexBytes returns the size of the offline index (edge bit vectors).
func (q *BFSQuerier) IndexBytes() int64 { return q.ix.Bytes() }

// ScratchBytes returns the size of this handle's online state alone: node
// vectors, visited set, and BFS worklists. This is the marginal memory of
// one more querier over a shared index.
func (q *BFSQuerier) ScratchBytes() int64 {
	var m int64
	if q.nodeBits != nil {
		m += q.nodeBits.Bytes()
		m += int64(len(q.inSet))
	}
	m += int64(cap(q.worklist)+cap(q.cascadeQ)+cap(q.visited)) * 4
	return m
}

// MemoryBytes implements MemoryReporter: the loaded index plus the online
// node vectors and BFS state. Handles sharing one index each report the
// full index size; use ScratchBytes for the marginal cost of a handle.
func (q *BFSQuerier) MemoryBytes() int64 { return q.IndexBytes() + q.ScratchBytes() }

// BFSSharing bundles a privately owned BFSIndex with one querier — the
// original single-owner estimator API used by the harness and the
// convergence sweeps. The resampling methods mutate the index, so a
// BFSSharing must not hand its index to other queriers.
type BFSSharing struct {
	BFSQuerier
}

// NewBFSSharing builds the offline index with width pre-sampled possible
// worlds and returns the estimator that owns it. Estimate may then be
// called with any k <= width.
func NewBFSSharing(g *uncertain.Graph, seed uint64, width int) *BFSSharing {
	return &BFSSharing{BFSQuerier{ix: NewBFSIndex(g, seed, width)}}
}

// Resample regenerates the whole index (Table 15 charges this per query
// when successive queries must be independent).
func (b *BFSSharing) Resample() { b.ix.Resample() }

// ResamplePrefix regenerates only the first k bits of the index; see
// BFSIndex.ResamplePrefix.
func (b *BFSSharing) ResamplePrefix(k int) { b.ix.ResamplePrefix(k) }

// Reseed implements Seeder. Reseeding alone does not change the index;
// call Resample afterwards to draw new worlds — the first redraw after a
// Reseed reproduces NewBFSIndex(g, seed, width) bit for bit.
func (b *BFSSharing) Reseed(seed uint64) {
	b.ix.seed = seed
	b.ix.gen = 0
	b.ix.reseeded = true
}
