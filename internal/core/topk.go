package core

import (
	"fmt"
	"sort"
	"time"

	"relcomp/internal/uncertain"
)

// Anytime top-k reliability search: the sequential-stopping form of
// TopKReliableTargets. A fixed-budget top-k draws the full K for every
// candidate even when the ranking was already decided after a few hundred
// samples; AdaptiveTopK instead advances one shared multi-target session
// (BFS Sharing's or PackMC's AllSampler) in growing chunks and stops as
// soon as the ranking is statistically settled — the CI-separation rule of
// the top-k literature: once the k-th and (k+1)-th candidates' confidence
// intervals are disjoint, no further sample can move a node across the
// top-k boundary.

// TopKResult reports an anytime top-k ranking and its termination.
type TopKResult struct {
	// Top is the ranking: up to topK candidates with positive estimates,
	// ordered by reliability descending, ties broken by ascending NodeID.
	Top []Reliability
	// Samples is the number of shared samples the session drew.
	Samples int
	// Reason is the rule that ended the run (StopSeparated when the
	// ranking converged early).
	Reason StopReason
}

// AdaptiveTopK advances ms in geometrically growing chunks until the top-k
// boundary separates — the k-th candidate's CI lower bound exceeds the
// (k+1)-th candidate's CI upper bound, candidates ordered by point
// estimate — or the budget opts.MaxK (or the sampler's cap), the deadline,
// or the context ends the run. opts.Eps does not gate termination here
// (separation is the top-k stopping rule); the prior/chunk schedule fields
// are honored as in AdaptiveEstimate. With len(candidates) <= topK the
// boundary is vacuous and the run stops at the MinK guard.
func AdaptiveTopK(ms MultiSampler, candidates []uncertain.NodeID, topK int, opts AdaptiveOptions) TopKResult {
	if opts.MaxK <= 0 {
		panic(fmt.Sprintf("core: AdaptiveTopK budget %d must be positive", opts.MaxK))
	}
	if topK <= 0 {
		panic(fmt.Sprintf("core: AdaptiveTopK topK %d must be positive", topK))
	}
	maxK := opts.MaxK
	if c := ms.Cap(); c > 0 && c < maxK {
		maxK = c
	}
	minK := opts.MinK
	if minK <= 0 {
		minK = 128
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = 256
	}
	if pc := priorChunk(opts.Prior, opts.Eps); pc > chunk {
		chunk = pc
	}
	growth := opts.Growth
	if growth <= 1 {
		growth = 2
	}
	hasDeadline := !opts.Deadline.IsZero()

	// order is reused across rounds: candidate indices sorted by estimate
	// descending, NodeID ascending — the same total order the final
	// ranking uses, so the boundary pair is well-defined under ties.
	order := make([]int, len(candidates))
	ests := make([]float64, len(candidates))
	hws := make([]float64, len(candidates))
	finish := func(reason StopReason) TopKResult {
		var top []Reliability
		for _, t := range candidates {
			snap := ms.SnapshotOf(t)
			if snap.Estimate > 0 {
				top = append(top, Reliability{t, snap.Estimate})
			}
		}
		sortReliabilities(top)
		if len(top) > topK {
			top = top[:topK]
		}
		return TopKResult{Top: top, Samples: ms.N(), Reason: reason}
	}
	separated := func() bool {
		if len(candidates) <= topK {
			return true // no boundary: every candidate is in the answer set
		}
		for i, t := range candidates {
			snap := ms.SnapshotOf(t)
			ests[i], hws[i] = snap.Estimate, snap.HalfWidth
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if ests[ia] != ests[ib] {
				return ests[ia] > ests[ib]
			}
			return candidates[ia] < candidates[ib]
		})
		kth, next := order[topK-1], order[topK]
		return ests[kth]-hws[kth] > ests[next]+hws[next]
	}

	//lint:allow detrand deadline pacing: Deadline stopping is documented wall-clock-dependent and its results are never cached
	start := time.Now()
	for {
		n := ms.N()
		if n >= minK && separated() {
			return finish(StopSeparated)
		}
		if n >= maxK {
			return finish(StopMaxK)
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return finish(StopCanceled)
		}
		dk := chunk
		if dk > maxK-n {
			dk = maxK - n
		}
		if hasDeadline {
			remaining := time.Until(opts.Deadline) //lint:allow detrand deadline stopping is documented wall-clock-dependent
			if remaining <= 0 {
				return finish(StopDeadline)
			}
			//lint:allow detrand deadline chunk trimming is documented wall-clock-dependent
			if elapsed := time.Since(start); elapsed > 0 && n > 0 {
				perSample := elapsed / time.Duration(n)
				if perSample > 0 {
					if affordable := int(remaining / perSample); affordable < dk {
						dk = affordable
					}
				}
			}
			if dk < 1 {
				dk = 1
			}
		}
		ms.Advance(dk)
		chunk = growChunk(chunk, growth)
	}
}
