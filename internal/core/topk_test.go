package core

import (
	"testing"

	"relcomp/internal/uncertain"
)

// tieGraph has two targets reachable with certainty (estimate exactly 1)
// and one weaker target, so rankings exercise the tie-break.
func tieGraph(t *testing.T) *uncertain.Graph {
	t.Helper()
	b := uncertain.NewBuilder(4)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(0, 3, 0.3)
	return b.Build()
}

// TestTopKTieBreakDeterministic: equal reliabilities rank by ascending
// NodeID, on both the shared-traversal and the per-candidate paths.
func TestTopKTieBreakDeterministic(t *testing.T) {
	g := tieGraph(t)
	const k = 500
	paths := map[string]Estimator{
		"source-estimator": NewBFSSharing(g, 42, k),
		"per-candidate":    NewMC(g, 42),
	}
	for name, est := range paths {
		top, err := TopKReliableTargets(est, g, 0, 3, k)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(top) != 3 {
			t.Fatalf("%s: %d results", name, len(top))
		}
		if top[0].Node != 1 || top[1].Node != 2 {
			t.Errorf("%s: tied nodes ranked [%d, %d], want [1, 2]", name, top[0].Node, top[1].Node)
		}
		if top[0].R != 1 || top[1].R != 1 {
			t.Errorf("%s: certain nodes estimated [%v, %v], want 1", name, top[0].R, top[1].R)
		}
		if top[2].Node != 3 {
			t.Errorf("%s: weak node ranked %d", name, top[2].Node)
		}
	}
}

// TestAdaptiveTopKSeparates: a clearly separated ranking terminates by CI
// separation well under the budget, agreeing with the full-budget ranking.
func TestAdaptiveTopKSeparates(t *testing.T) {
	b := uncertain.NewBuilder(4)
	b.MustAddEdge(0, 1, 0.9)
	b.MustAddEdge(0, 2, 0.5)
	b.MustAddEdge(0, 3, 0.1)
	g := b.Build()
	const maxK = 20000
	candidates := []uncertain.NodeID{1, 2, 3}

	full := NewBFSSharing(g, 7, maxK)
	want, err := TopKReliableTargets(full, g, 0, 2, maxK)
	if err != nil {
		t.Fatal(err)
	}

	bs := NewBFSSharing(g, 7, maxK)
	res := AdaptiveTopK(bs.AllSampler(0), candidates, 2, AdaptiveOptions{Eps: 0.05, MaxK: maxK})
	if res.Reason != StopSeparated {
		t.Fatalf("reason %q, want %q", res.Reason, StopSeparated)
	}
	if res.Samples >= maxK {
		t.Fatalf("no early termination: %d of %d samples", res.Samples, maxK)
	}
	if len(res.Top) != len(want) {
		t.Fatalf("ranking size %d, want %d", len(res.Top), len(want))
	}
	for i := range want {
		if res.Top[i].Node != want[i].Node {
			t.Errorf("rank %d: node %d, want %d", i, res.Top[i].Node, want[i].Node)
		}
	}
}

// TestAdaptiveTopKBudgetExhaustion: an inseparable tie runs to the budget
// and reports max_k.
func TestAdaptiveTopKBudgetExhaustion(t *testing.T) {
	g := tieGraph(t) // nodes 1 and 2 are exactly tied at 1.0
	const maxK = 1024
	bs := NewBFSSharing(g, 3, maxK)
	res := AdaptiveTopK(bs.AllSampler(0), []uncertain.NodeID{1, 2, 3}, 1, AdaptiveOptions{Eps: 0.05, MaxK: maxK})
	if res.Reason != StopMaxK {
		t.Fatalf("tied boundary stopped with %q, want %q", res.Reason, StopMaxK)
	}
	if res.Samples != maxK {
		t.Errorf("drew %d of %d", res.Samples, maxK)
	}
	if len(res.Top) != 1 || res.Top[0].Node != 1 {
		t.Errorf("tie resolved to %+v, want node 1 by NodeID order", res.Top)
	}
}

// TestDistanceSamplerMatchesEstimate: chunked advancement accumulates
// exactly the fixed-K estimate's hit count.
func TestDistanceSamplerMatchesEstimate(t *testing.T) {
	g := tieGraph(t)
	for _, chunks := range [][]int{{400}, {100, 300}, {1, 99, 150, 150}} {
		total := 0
		for _, c := range chunks {
			total += c
		}
		want := NewDistanceConstrainedMC(g, 99, 2).Estimate(0, 3, total)
		sp := NewDistanceConstrainedMC(g, 99, 2).Sampler(0, 3)
		for _, c := range chunks {
			sp.Advance(c)
		}
		snap := sp.Snapshot()
		if snap.N != total || snap.Estimate != want {
			t.Errorf("chunks %v: sampler %v after %d, Estimate %v", chunks, snap.Estimate, snap.N, want)
		}
	}
}

// TestKTerminalSamplerMatchesEstimate: same contract for the k-terminal
// session.
func TestKTerminalSamplerMatchesEstimate(t *testing.T) {
	g := tieGraph(t)
	targets := []uncertain.NodeID{1, 3}
	for _, chunks := range [][]int{{500}, {200, 300}, {7, 493}} {
		total := 0
		for _, c := range chunks {
			total += c
		}
		ref, err := NewKTerminal(g, 123, targets)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Estimate(0, total)
		kt, err := NewKTerminal(g, 123, targets)
		if err != nil {
			t.Fatal(err)
		}
		sp := kt.Sampler(0)
		for _, c := range chunks {
			sp.Advance(c)
		}
		snap := sp.Snapshot()
		if snap.N != total || snap.Estimate != want {
			t.Errorf("chunks %v: sampler %v after %d, Estimate %v", chunks, snap.Estimate, snap.N, want)
		}
	}
}
