package core

import (
	"math"
	"testing"

	"relcomp/internal/exact"
	"relcomp/internal/rng"
	"relcomp/internal/uncertain"
)

// TestLazyPropNames distinguishes the corrected and original variants.
func TestLazyPropNames(t *testing.T) {
	g := testGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.5}})
	if n := NewLazyProp(g, 1).Name(); n != "LP+" {
		t.Errorf("corrected name = %q, want LP+", n)
	}
	if n := NewLazyPropOriginal(g, 1).Name(); n != "LP" {
		t.Errorf("original name = %q, want LP", n)
	}
	if !NewLazyProp(g, 1).Corrected() || NewLazyPropOriginal(g, 1).Corrected() {
		t.Error("Corrected flags wrong")
	}
}

// TestLazyPropOriginalOverestimates reproduces the paper's Fig. 5 /
// Example 1 finding: the original LP schedule (X' + c_v) systematically
// overestimates reliability, while LP+ matches the truth. A two-node
// single-edge graph isolates the effect: the true reliability is p.
func TestLazyPropOriginalOverestimates(t *testing.T) {
	g := testGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.3}})
	const k = 100000
	lpPlus := NewLazyProp(g, 5).Estimate(0, 1, k)
	lpOrig := NewLazyPropOriginal(g, 5).Estimate(0, 1, k)
	if math.Abs(lpPlus-0.3) > 0.01 {
		t.Errorf("LP+ = %.4f, want ≈ 0.30", lpPlus)
	}
	if lpOrig <= lpPlus+0.02 {
		t.Errorf("LP (%.4f) does not overestimate vs LP+ (%.4f) as in the paper", lpOrig, lpPlus)
	}
}

// TestLazyPropOriginalBiasOnPath: the bias compounds on longer paths.
func TestLazyPropOriginalBiasOnPath(t *testing.T) {
	g := testGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.4},
		{From: 2, To: 3, P: 0.4},
	})
	want := 0.4 * 0.4 * 0.4
	const k = 200000
	lpPlus := NewLazyProp(g, 7).Estimate(0, 3, k)
	lpOrig := NewLazyPropOriginal(g, 7).Estimate(0, 3, k)
	if math.Abs(lpPlus-want) > 0.01 {
		t.Errorf("LP+ = %.4f, want ≈ %.4f", lpPlus, want)
	}
	if lpOrig < want+0.02 {
		t.Errorf("LP = %.4f shows no overestimation over exact %.4f", lpOrig, want)
	}
}

// TestLazyPropMatchesMC: LP+ is statistically equivalent to MC; over a
// batch of random graphs their estimates agree within sampling error.
func TestLazyPropMatchesMC(t *testing.T) {
	r := rng.New(53)
	const k = 30000
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(6)
		g := randomTestGraph(r, n, 4+r.Intn(12))
		s := uncertain.NodeID(r.Intn(n))
		tt := uncertain.NodeID(r.Intn(n))
		if s == tt {
			continue
		}
		mc := NewMC(g, uint64(trial)+100).Estimate(s, tt, k)
		lp := NewLazyProp(g, uint64(trial)+200).Estimate(s, tt, k)
		if math.Abs(mc-lp) > 0.02 {
			t.Errorf("trial %d: MC %.4f vs LP+ %.4f diverge", trial, mc, lp)
		}
	}
}

// TestLazyPropSchedulePersistence: heaps persist across samples within one
// Estimate call but must not leak across calls — two identical calls with
// reseeding give identical results, and a second call without reseeding
// still gives a valid (fresh-state) estimate.
func TestLazyPropSchedulePersistence(t *testing.T) {
	r := rng.New(59)
	g := randomTestGraph(r, 10, 24)
	lp := NewLazyProp(g, 17)
	a := lp.Estimate(0, 9, 5000)
	lp.Reseed(17)
	b := lp.Estimate(0, 9, 5000)
	if a != b {
		t.Errorf("reseeded estimate %v differs from original %v", a, b)
	}
	c := lp.Estimate(0, 9, 5000)
	if c < 0 || c > 1 {
		t.Errorf("estimate %v out of range on reused estimator", c)
	}
}

// TestLazyPropHighProbability: probability-1 edges exist in every world
// (geometric variate 0 every round).
func TestLazyPropHighProbability(t *testing.T) {
	g := testGraph(t, 3, []uncertain.Edge{
		{From: 0, To: 1, P: 1},
		{From: 1, To: 2, P: 1},
	})
	if got := NewLazyProp(g, 1).Estimate(0, 2, 1000); got != 1 {
		t.Errorf("certain chain via LP+ = %v, want 1", got)
	}
}

// TestLazyPropLowProbability: very low probabilities are where the lazy
// schedule pays off; the estimate must stay unbiased.
func TestLazyPropLowProbability(t *testing.T) {
	g := testGraph(t, 2, []uncertain.Edge{{From: 0, To: 1, P: 0.01}})
	const k = 400000
	got := NewLazyProp(g, 3).Estimate(0, 1, k)
	if math.Abs(got-0.01) > 0.002 {
		t.Errorf("LP+ on p=0.01 edge: %.5f, want ≈ 0.01", got)
	}
}

// TestLPHeap exercises the inlined binary heap directly.
func TestLPHeap(t *testing.T) {
	var h []lpEntry
	rounds := []int64{5, 1, 9, 3, 3, 0, 7}
	for i, rd := range rounds {
		heapPush(&h, lpEntry{round: rd, slot: int32(i)})
	}
	prev := int64(-1)
	for len(h) > 0 {
		e := heapPop(&h)
		if e.round < prev {
			t.Fatalf("heap pop out of order: %d after %d", e.round, prev)
		}
		prev = e.round
	}
	// heapify path.
	h = append(h[:0],
		lpEntry{round: 4}, lpEntry{round: 2}, lpEntry{round: 6}, lpEntry{round: 1})
	heapify(h)
	if h[0].round != 1 {
		t.Errorf("heapify min = %d, want 1", h[0].round)
	}
}

// TestExactReferenceForLPGraphs cross-checks the LP test fixtures against
// the exact baseline, guarding the expected values used above.
func TestExactReferenceForLPGraphs(t *testing.T) {
	g := testGraph(t, 4, []uncertain.Edge{
		{From: 0, To: 1, P: 0.4},
		{From: 1, To: 2, P: 0.4},
		{From: 2, To: 3, P: 0.4},
	})
	want, err := exact.Enumerate(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-0.064) > 1e-12 {
		t.Errorf("exact chain reliability %v, want 0.064", want)
	}
}
